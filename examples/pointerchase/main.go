// Pointerchase compares all four prefetchers on the suite's irregular
// workloads — the access patterns the paper's introduction motivates:
// miss-driven prefetchers have nothing to train on when addresses come from
// loaded pointers, while B-Fetch can still cover a record's other blocks and
// any regular streams interleaved with the chase.
package main

import (
	"fmt"
	"log"

	bfetch "repro"
)

func main() {
	apps := []string{"mcf", "astar", "milc", "gromacs", "soplex"}
	kinds := []bfetch.PrefetcherKind{
		bfetch.PFNone, bfetch.PFStride, bfetch.PFSMS, bfetch.PFBFetch,
	}
	opts := bfetch.RunOpts{WarmupInsts: 50_000, MeasureInsts: 150_000}

	fmt.Printf("%-10s", "workload")
	for _, k := range kinds[1:] {
		fmt.Printf("  %-18s", k)
	}
	fmt.Println("\n" + "(speedup over no-prefetch; accuracy = useful / issued)")

	for _, app := range apps {
		base, err := bfetch.RunSolo(bfetch.DefaultConfig(bfetch.PFNone), app, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", app)
		for _, k := range kinds[1:] {
			res, err := bfetch.RunSolo(bfetch.DefaultConfig(k), app, opts)
			if err != nil {
				log.Fatal(err)
			}
			speedup := res.IPC[0] / base.IPC[0]
			issued := res.Core[0].PrefetchIssued
			acc := 0.0
			if issued > 0 {
				acc = float64(res.L1D[0].PrefetchUseful) / float64(issued)
			}
			fmt.Printf("  %5.2fx (acc %3.0f%%) ", speedup, 100*acc)
		}
		fmt.Println()
	}
	fmt.Println("\nNote how accuracy separates the prefetchers even where speedups")
	fmt.Println("are close: inaccurate prefetches become pollution under sharing")
	fmt.Println("(see the multiprogram example).")
}
