// Multiprogram runs a four-application mix on a 4-core CMP with a shared
// LLC and DRAM channel — the paper's headline scenario (§V-B2): under
// sharing, prefetch *accuracy* matters as much as coverage, because useless
// prefetches from one core evict other cores' data ("friendly fire").
package main

import (
	"fmt"
	"log"

	bfetch "repro"
)

func main() {
	mix := []string{"mcf", "lbm", "libquantum", "milc"}
	kinds := []bfetch.PrefetcherKind{
		bfetch.PFNone, bfetch.PFStride, bfetch.PFSMS, bfetch.PFBFetch,
	}
	opts := bfetch.RunOpts{WarmupInsts: 50_000, MeasureInsts: 150_000}

	// Weighted speedup denominators: each app alone, per prefetcher.
	solo := map[bfetch.PrefetcherKind]map[string]float64{}
	for _, k := range kinds {
		solo[k] = map[string]float64{}
		for _, app := range mix {
			res, err := bfetch.RunSolo(bfetch.DefaultConfig(k), app, opts)
			if err != nil {
				log.Fatal(err)
			}
			solo[k][app] = res.IPC[0]
		}
	}

	fmt.Printf("4-core mix: %v\n\n", mix)
	var baselineWS float64
	for _, k := range kinds {
		res, err := bfetch.Run(bfetch.DefaultConfig(k), mix, opts)
		if err != nil {
			log.Fatal(err)
		}
		ws := 0.0
		var useful, useless uint64
		for i, app := range mix {
			ws += res.IPC[i] / solo[k][app]
			useful += res.L1D[i].PrefetchUseful
			useless += res.L1D[i].PrefetchUseless
		}
		line := fmt.Sprintf("%-8s weighted speedup %.3f", k, ws)
		if k == bfetch.PFNone {
			baselineWS = ws
		} else {
			line += fmt.Sprintf("  (%.1f%% over baseline; useful %d / useless %d)",
				100*(ws/baselineWS-1), useful, useless)
		}
		fmt.Println(line)
	}
	fmt.Println("\nLLC and DRAM are shared: compare the useless-prefetch counts with")
	fmt.Println("the weighted speedups to see the pollution effect the paper targets.")
}
