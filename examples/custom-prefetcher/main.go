// Custom-prefetcher demonstrates the extension surface: implement the
// Prefetcher interface, plug it into a system through the PFCustom factory
// hook, and compare it against the built-ins. The example engine is a tiny
// next-two-lines prefetcher written against the same hooks B-Fetch uses.
package main

import (
	"fmt"
	"log"

	bfetch "repro"
)

// nextTwo prefetches the two sequentially following cache blocks on every
// demand miss. Embedding PrefetcherBase provides no-op implementations of
// the hooks it does not use (decode, commit, feedback).
type nextTwo struct {
	bfetch.PrefetcherBase
	pending []bfetch.PrefetchRequest
}

func (p *nextTwo) Name() string { return "next-two" }

func (p *nextTwo) OnAccess(a bfetch.AccessInfo) {
	if a.Hit || a.Write {
		return
	}
	block := a.Addr &^ 63
	p.pending = append(p.pending,
		bfetch.PrefetchRequest{Addr: block + 64, LoadPC: a.PC},
		bfetch.PrefetchRequest{Addr: block + 128, LoadPC: a.PC},
	)
}

// AppendTick drains up to two requests per cycle into the caller's buffer,
// like a real prefetch queue. (PrefetcherBase's Idle reports false, so the
// event-driven clock keeps ticking this engine whenever its core runs — a
// custom Idle override returning len(p.pending) == 0 would let the simulator
// skip cycles while the queue is empty.)
func (p *nextTwo) AppendTick(dst []bfetch.PrefetchRequest, now uint64) []bfetch.PrefetchRequest {
	n := min(2, len(p.pending))
	dst = append(dst, p.pending[:n]...)
	p.pending = p.pending[:copy(p.pending, p.pending[n:])]
	return dst
}

func (p *nextTwo) StorageBits() int { return 64 * 42 } // its queue

func main() {
	cfg := bfetch.DefaultConfig(bfetch.PFCustom)
	cfg.Factory = func(_ *bfetch.BranchPredictor, _ *bfetch.BranchConfidence) bfetch.Prefetcher {
		return &nextTwo{}
	}

	opts := bfetch.RunOpts{WarmupInsts: 50_000, MeasureInsts: 150_000}
	app := "libquantum"

	base, err := bfetch.RunSolo(bfetch.DefaultConfig(bfetch.PFNone), app, opts)
	if err != nil {
		log.Fatal(err)
	}
	custom, err := bfetch.RunSolo(cfg, app, opts)
	if err != nil {
		log.Fatal(err)
	}
	bf, err := bfetch.RunSolo(bfetch.DefaultConfig(bfetch.PFBFetch), app, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s\n", app)
	fmt.Printf("  baseline  IPC %.3f\n", base.IPC[0])
	fmt.Printf("  next-two  IPC %.3f (%.2fx) — issued %d, useful %d\n",
		custom.IPC[0], custom.IPC[0]/base.IPC[0],
		custom.Core[0].PrefetchIssued, custom.L1D[0].PrefetchUseful)
	fmt.Printf("  B-Fetch   IPC %.3f (%.2fx) — issued %d, useful %d\n",
		bf.IPC[0], bf.IPC[0]/base.IPC[0],
		bf.Core[0].PrefetchIssued, bf.L1D[0].PrefetchUseful)
}
