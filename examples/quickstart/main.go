// Quickstart: assemble a small streaming kernel in the toy ISA, wrap it as a
// workload, and measure it with and without B-Fetch on the paper's Table II
// baseline system.
package main

import (
	"fmt"
	"log"

	bfetch "repro"
)

// A 4 MB unit-stride reduction: the simplest possible prefetchable loop.
const kernel = `
    movi r16, 0x100000     ; array base
    movi r10, 524288       ; words (4 MB)
    movi r5, 0             ; sum
loop:
    ld   r1, 0(r16)
    add  r5, r5, r1
    addi r16, r16, 8
    addi r10, r10, -1
    bnez r10, loop
    halt
`

func main() {
	prog, err := bfetch.Assemble(kernel)
	if err != nil {
		log.Fatal(err)
	}
	w := bfetch.NewWorkload("sum4mb", "unit-stride reduction", "streaming", true,
		func() (*bfetch.Program, *bfetch.Memory) {
			// The array reads as zeros; only the access pattern matters.
			return prog, bfetch.NewMemory()
		})

	opts := bfetch.RunOpts{WarmupInsts: 50_000, MeasureInsts: 200_000}
	var baselineIPC float64
	for _, kind := range []bfetch.PrefetcherKind{bfetch.PFNone, bfetch.PFBFetch} {
		cfg := bfetch.DefaultConfig(kind)
		sys, err := bfetch.NewSystem(cfg, []bfetch.Workload{w})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(opts.WarmupInsts, 100_000_000); err != nil {
			log.Fatal(err)
		}
		sys.ResetStats()
		if err := sys.Run(opts.MeasureInsts, 100_000_000); err != nil {
			log.Fatal(err)
		}
		res := sys.Snapshot()

		fmt.Printf("prefetcher=%-8s IPC=%.3f  L1D miss=%.2f%%  prefetches issued=%d useful=%d\n",
			kind, res.IPC[0], 100*res.L1D[0].MissRate(),
			res.Core[0].PrefetchIssued, res.L1D[0].PrefetchUseful)
		if kind == bfetch.PFNone {
			baselineIPC = res.IPC[0]
		} else {
			fmt.Printf("\nB-Fetch speedup over baseline: %.2fx\n", res.IPC[0]/baselineIPC)
		}
	}
}
