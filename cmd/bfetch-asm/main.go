// Command bfetch-asm assembles, disassembles, and functionally executes
// programs in the repository's toy ISA — handy when writing new workload
// kernels or reproducing the paper's code examples.
//
// Usage:
//
//	bfetch-asm -run prog.s               # assemble and execute
//	bfetch-asm -run prog.s -max 100000   # bounded execution
//	bfetch-asm -dis prog.s               # assemble then disassemble (round-trip)
//	bfetch-asm -run prog.s -trace t.bin  # record a memory/branch trace
//	bfetch-asm -dump t.bin               # print a recorded trace
//	echo 'movi r1, 42
//	halt' | bfetch-asm -run -
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

func main() {
	var (
		runFile   = flag.String("run", "", "assemble and execute FILE ('-' for stdin)")
		disFile   = flag.String("dis", "", "assemble FILE and print its disassembly")
		dumpFile  = flag.String("dump", "", "print the trace recorded in FILE")
		traceFile = flag.String("trace", "", "with -run: record the memory/branch trace to FILE")
		max       = flag.Uint64("max", 1_000_000, "maximum instructions to execute")
		regs      = flag.Bool("regs", true, "print non-zero registers after the run")
	)
	flag.Parse()

	switch {
	case *dumpFile != "":
		dumpTrace(*dumpFile)
	case *disFile != "":
		prog := assemble(*disFile)
		fmt.Print(isa.Disassemble(prog))
	case *runFile != "" && *traceFile != "":
		prog := assemble(*runFile)
		out, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		n, err := trace.Record(out, prog, mem.New(), *max)
		if err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions; trace written to %s\n", n, *traceFile)
	case *runFile != "":
		prog := assemble(*runFile)
		cpu := emu.New(prog, mem.New())
		n, err := cpu.Run(*max)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions (halted=%v)\n", n, cpu.Halted)
		if *regs {
			for i, v := range cpu.Regs {
				if v != 0 {
					fmt.Printf("  r%-2d = %-20d %#x\n", i, v, uint64(v))
				}
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func dumpTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	kinds := map[trace.Kind]string{
		trace.KindLoad: "LD", trace.KindStore: "ST",
		trace.KindBranch: "BR", trace.KindJump: "JMP",
	}
	for {
		e, err := r.Read()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			fatal(err)
		}
		switch e.Kind {
		case trace.KindLoad, trace.KindStore:
			fmt.Printf("%-3s pc=%#x addr=%#x\n", kinds[e.Kind], e.PC, e.Addr)
		default:
			fmt.Printf("%-3s pc=%#x taken=%v\n", kinds[e.Kind], e.PC, e.Taken)
		}
	}
}

func assemble(path string) *isa.Program {
	var (
		src []byte
		err error
	)
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		fatal(err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	return prog
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfetch-asm:", err)
	os.Exit(1)
}
