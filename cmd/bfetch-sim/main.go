// Command bfetch-sim runs one simulation and prints its statistics: a
// workload (or mix) on a chosen prefetcher configuration.
//
// Usage:
//
//	bfetch-sim -workloads mcf -pf bfetch
//	bfetch-sim -workloads mcf,lbm,milc,astar -pf sms -measure 500000
//	bfetch-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		apps    = flag.String("workloads", "mcf", "comma-separated workloads, one per core")
		pf      = flag.String("pf", "bfetch", "prefetcher: none|stride|sms|bfetch|perfect|nextn")
		width   = flag.Int("width", 4, "pipeline width")
		ff      = flag.Uint64("ff", 0, "fast-forward instructions per core, emulated functionally before the cycle core boots")
		warmup  = flag.Uint64("warmup", 100_000, "warmup instructions per core")
		measure = flag.Uint64("measure", 300_000, "measured instructions per core")
		conf    = flag.Float64("conf", 0.75, "B-Fetch path confidence threshold")
		simloop = flag.String("simloop", "auto", "clock strategy: auto, event, or naive (escape hatch)")
		list    = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			tag := "cache-resident"
			if w.MemoryIntensive {
				tag = "memory-intensive"
			}
			fmt.Printf("  %-12s %-9s %-16s %s\n", w.Name, w.Character, tag, w.Description)
		}
		return
	}

	loop, err := sim.ParseLoopMode(*simloop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
		os.Exit(1)
	}

	cfg := sim.Default(sim.PrefetcherKind(*pf))
	cfg.CPU = cfg.CPU.WithWidth(*width)
	cfg.BFetch.PathThreshold = *conf
	names := strings.Split(*apps, ",")

	res, err := sim.Run(cfg, names, sim.RunOpts{
		FastForwardInsts: *ff, WarmupInsts: *warmup, MeasureInsts: *measure, Loop: loop,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("prefetcher=%s width=%d cores=%d ff=%d warmup=%d measure=%d\n\n",
		*pf, *width, len(names), *ff, *warmup, *measure)
	for i, name := range names {
		cs := res.Core[i]
		l1 := res.L1D[i]
		fmt.Printf("core %d: %s\n", i, name)
		fmt.Printf("  IPC            %.3f  (%d instructions, %d cycles)\n", res.IPC[i], cs.Committed, cs.Cycles)
		fmt.Printf("  branches       %d committed, %.2f%% mispredicted\n",
			cs.BranchesCommitted, 100*cs.BranchMissRate())
		fmt.Printf("  L1D            %d accesses, %.2f%% miss\n", l1.Accesses, 100*l1.MissRate())
		fmt.Printf("  loads          %d (L1 hit %d / miss %d, forwards %d)\n",
			cs.LoadsCommitted, cs.LoadL1Hits, cs.LoadL1Misses, cs.StoreForwards)
		fmt.Printf("  prefetches     %d issued, %d dropped-resident, %d useful, %d useless\n",
			cs.PrefetchIssued, cs.PrefetchDropped, l1.PrefetchUseful, l1.PrefetchUseless)
		fmt.Println()
	}
	fmt.Printf("LLC: %d accesses, %.2f%% miss\n", res.LLC.Accesses, 100*res.LLC.MissRate())
	fmt.Printf("DRAM: %d demand fills, %d prefetch fills, %d writebacks, %d stall cycles\n",
		res.DRAM.DemandFills, res.DRAM.PrefetchFills, res.DRAM.Writebacks, res.DRAM.StallCycles)
}
