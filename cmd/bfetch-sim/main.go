// Command bfetch-sim runs one simulation and prints its statistics: a
// workload (or mix) on a chosen prefetcher configuration.
//
// Usage:
//
//	bfetch-sim -workloads mcf -pf bfetch
//	bfetch-sim -workloads mcf,lbm,milc,astar -pf sms -measure 500000
//	bfetch-sim -workloads mcf -obs report.json           # observability report
//	bfetch-sim -workloads mcf -obs - -obstrace pf.trace  # + sampled event trace
//	bfetch-sim -validate-obs report.json                 # schema-check any obs JSON
//	bfetch-sim -workloads mcf -store results/store       # reuse/populate the artifact store
//	bfetch-sim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	var (
		apps     = flag.String("workloads", "mcf", "comma-separated workloads, one per core")
		pf       = flag.String("pf", "bfetch", "prefetcher: none|stride|sms|bfetch|perfect|nextn")
		width    = flag.Int("width", 4, "pipeline width")
		ff       = flag.Uint64("ff", 0, "fast-forward instructions per core, emulated functionally before the cycle core boots")
		warmup   = flag.Uint64("warmup", 100_000, "warmup instructions per core")
		measure  = flag.Uint64("measure", 300_000, "measured instructions per core")
		conf     = flag.Float64("conf", 0.75, "B-Fetch path confidence threshold")
		simloop  = flag.String("simloop", "auto", "clock strategy: auto, event, or naive (escape hatch)")
		emuloop  = flag.String("emuloop", "auto", "functional-emulation engine: auto, compiled, or interp (escape hatch)")
		simpar   = flag.Int("simpar", 0, "core workers (bulk-synchronous parallel stepping; 0/1 = serial, results byte-identical)")
		scale    = flag.Bool("scale", false, "use the scale-out memory system (banked LLC, channeled DRAM) sized for the core count")
		cpistack = flag.Bool("cpistack", false, "attribute every core cycle to a CPI-stack bucket and print the breakdown")
		tsEvery  = flag.Uint64("ts", 0, "sample the metrics registry every N cycles into the obs report's time series (0 disables)")
		storeDir = flag.String("store", "", "durable artifact store directory: answer this run from disk if cached there, write it back otherwise (ignored when tracing)")
		list     = flag.Bool("list", false, "list workloads and exit")

		obsOut     = flag.String("obs", "", "write this run's observability report (bfetch-obs-run/v1 JSON) to this file, '-' for stdout")
		obsTrace   = flag.String("obstrace", "", "dump the sampled prefetch lifecycle trace (binary internal/trace encoding) to this file")
		traceEvery = flag.Uint64("obstrace-every", 64, "keep 1 in N lifecycle events in the trace ring")
		traceCap   = flag.Int("obstrace-cap", 1<<16, "trace ring-buffer capacity in events")

		validate = flag.String("validate-obs", "", "validate an obs JSON document (run report, runs file, or status) and exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
			os.Exit(1)
		}
		schema, err := obs.ValidateReport(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim: validate:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s\n", *validate, schema)
		return
	}

	if *list {
		for _, w := range workload.All() {
			tag := "cache-resident"
			if w.MemoryIntensive {
				tag = "memory-intensive"
			}
			fmt.Printf("  %-12s %-9s %-16s %s\n", w.Name, w.Character, tag, w.Description)
		}
		return
	}

	loop, err := sim.ParseLoopMode(*simloop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
		os.Exit(1)
	}
	exec, err := emu.ParseExecMode(*emuloop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
		os.Exit(1)
	}
	emu.DefaultExec = exec

	names := strings.Split(*apps, ",")
	cfg := sim.Default(sim.PrefetcherKind(*pf))
	if *scale {
		cfg = sim.DefaultScale(sim.PrefetcherKind(*pf), len(names))
	}
	cfg.CPU = cfg.CPU.WithWidth(*width)
	cfg.BFetch.PathThreshold = *conf
	cfg.CPU.CPIStack = *cpistack
	cfg.TSInterval = *tsEvery

	var tr *obs.Trace
	if *obsTrace != "" {
		tr = obs.NewTrace(*traceCap, *traceEvery)
	}
	opts := sim.RunOpts{
		FastForwardInsts: *ff, WarmupInsts: *warmup, MeasureInsts: *measure, Loop: loop,
		CoreWorkers: *simpar,
	}
	var res sim.Result
	start := time.Now()
	if *storeDir != "" && tr == nil {
		// Route through the runner so the durable store's two-tier lookup
		// applies: a repeated invocation is answered from disk.
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
			os.Exit(1)
		}
		eng := runner.NewSequential()
		eng.SetStore(st)
		res, err = eng.Run(runner.Multi(cfg, names, opts))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
			os.Exit(1)
		}
		if m := st.Metrics(); m.Hits > 0 {
			fmt.Fprintf(os.Stderr, "store: answered from %s (no simulation run)\n", *storeDir)
		}
	} else {
		if *storeDir != "" {
			fmt.Fprintln(os.Stderr, "store: -obstrace requested, bypassing the store (traces record live execution)")
		}
		var err error
		res, err = sim.RunTraced(cfg, names, opts, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
			os.Exit(1)
		}
	}
	wall := time.Since(start)

	fmt.Printf("prefetcher=%s width=%d cores=%d ff=%d warmup=%d measure=%d\n\n",
		*pf, *width, len(names), *ff, *warmup, *measure)
	for i, name := range names {
		cs := res.Core[i]
		l1 := res.L1D[i]
		fmt.Printf("core %d: %s\n", i, name)
		fmt.Printf("  IPC            %.3f  (%d instructions, %d cycles)\n", res.IPC[i], cs.Committed, cs.Cycles)
		fmt.Printf("  branches       %d committed, %.2f%% mispredicted\n",
			cs.BranchesCommitted, 100*cs.BranchMissRate())
		fmt.Printf("  L1D            %d accesses, %.2f%% miss\n", l1.Accesses, 100*l1.MissRate())
		fmt.Printf("  loads          %d (L1 hit %d / miss %d, forwards %d)\n",
			cs.LoadsCommitted, cs.LoadL1Hits, cs.LoadL1Misses, cs.StoreForwards)
		fmt.Printf("  prefetches     %d issued, %d dropped-resident, %d useful, %d useless\n",
			cs.PrefetchIssued, cs.PrefetchDropped, l1.PrefetchUseful, l1.PrefetchUseless)
		if i < len(res.Lifecycle) {
			lc := res.Lifecycle[i]
			fmt.Printf("  pf lifecycle   %d timely, %d late, %d useless-evicted, %d polluting (acc %.2f, cov %.2f, tml %.2f)\n",
				lc.UsefulTimely, lc.UsefulLate, lc.UselessEvicted, lc.Polluting,
				lc.Accuracy(), lc.Coverage(), lc.Timeliness())
		}
		if *cpistack && cs.Cycles > 0 {
			fmt.Printf("  cpi stack     ")
			for b := obs.CPIBucket(0); b < obs.NumCPIBuckets; b++ {
				if v := cs.CPI[b]; v > 0 {
					fmt.Printf(" %s=%.1f%%", obs.CPIBucketNames[b], 100*float64(v)/float64(cs.Cycles))
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Printf("LLC: %d accesses, %.2f%% miss\n", res.LLC.Accesses, 100*res.LLC.MissRate())
	fmt.Printf("DRAM: %d demand fills, %d prefetch fills, %d writebacks, %d stall cycles\n",
		res.DRAM.DemandFills, res.DRAM.PrefetchFills, res.DRAM.Writebacks, res.DRAM.StallCycles)
	if ts := res.TS; ts != nil {
		fmt.Printf("time series: %d rows × %d columns, every %d cycles from cycle %d\n",
			len(ts.Rows), len(ts.Names), ts.Interval, ts.Base)
	}

	if *obsOut != "" {
		if err := writeObsReport(*obsOut, *pf, names, res, wall); err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
			os.Exit(1)
		}
	}
	if tr != nil {
		if err := dumpTrace(*obsTrace, tr); err != nil {
			fmt.Fprintln(os.Stderr, "bfetch-sim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d of %d lifecycle events kept)\n", *obsTrace, tr.Kept(), tr.Seen())
	}
}

// writeObsReport emits the run's bfetch-obs-run/v1 document: the lifecycle
// classification, its quality ratios, and the full metrics-registry snapshot.
func writeObsReport(path, engine string, apps []string, res sim.Result, wall time.Duration) error {
	var insts uint64
	for _, cs := range res.Core {
		insts += cs.Committed
	}
	r := obs.RunReport{
		Engine:      engine,
		Apps:        apps,
		Cycles:      res.Cycles,
		Insts:       insts,
		IPC:         res.IPC,
		PerCore:     res.Lifecycle,
		Metrics:     res.Metrics,
		TS:          res.TS,
		WallSeconds: wall.Seconds(),
	}
	r.Finalize()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// dumpTrace writes the sampled ring-buffer trace in the internal/trace
// binary encoding (readable with trace.NewReader).
func dumpTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
