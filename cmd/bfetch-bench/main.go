// Command bfetch-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfetch-bench -list
//	bfetch-bench -exp fig8
//	bfetch-bench -exp all -out results/
//	bfetch-bench -exp fig9 -warmup 100000 -measure 300000 -mixes 29
//	bfetch-bench -exp all -j 8            # 8 simulations in flight
//	bfetch-bench -exp fig8 -seq           # sequential escape hatch
//	bfetch-bench -exp all -cpuprofile cpu.pprof
//
// Each experiment prints its table(s) to stdout; with -out set, CSVs are
// written alongside. Simulation points fan out over -j workers (default
// GOMAXPROCS) and repeated points — e.g. the no-prefetch baseline shared by
// every speedup figure — are simulated once per invocation; the cache
// hit/miss counts are reported per experiment on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfetch-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID      = flag.String("exp", "", "experiment id (fig1, fig3, fig7..fig15, tab1, tab2, ablation, or 'all')")
		list       = flag.Bool("list", false, "list experiments and exit")
		outDir     = flag.String("out", "", "directory for CSV output (optional)")
		warmup     = flag.Uint64("warmup", 100_000, "warmup instructions per core")
		measure    = flag.Uint64("measure", 300_000, "measured instructions per core")
		mixes      = flag.Int("mixes", 29, "number of multiprogrammed mixes")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		jobs       = flag.Int("j", 0, "simulations in flight (0 = GOMAXPROCS)")
		seq        = flag.Bool("seq", false, "run simulations sequentially on one goroutine (escape hatch)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
			fmt.Printf("  %-9s paper: %s\n", "", e.Paper)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	eng := runner.New(*jobs)
	if *seq {
		eng = runner.NewSequential()
	}

	params := harness.DefaultParams()
	params.Opts = sim.RunOpts{WarmupInsts: *warmup, MeasureInsts: *measure}
	params.Mixes = *mixes
	params.Runner = eng
	if *workloads != "" {
		params.Workloads = strings.Split(*workloads, ",")
	}
	if !*quiet {
		params.Log = os.Stderr
	}

	var todo []harness.Experiment
	if *expID == "all" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			todo = append(todo, e)
		}
	}

	var prev runner.Stats
	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s: %s (%d workers)\n", e.ID, e.Title, eng.Workers())
		tables, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "%s finished in %s (%d sims run, cache: %d hits, %d misses)\n",
			e.ID, time.Since(start).Round(time.Millisecond),
			st.Runs-prev.Runs, st.Hits-prev.Hits, st.Misses-prev.Misses)
		prev = st
		for i, t := range tables {
			fmt.Println(t)
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					return err
				}
				name := e.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", e.ID, i+1)
				}
				path := filepath.Join(*outDir, name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
	if st := eng.Stats(); st.Hits > 0 || len(todo) > 1 {
		fmt.Fprintf(os.Stderr, "total: %d sims run, cache: %d hits, %d misses\n",
			st.Runs, st.Hits, st.Misses)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
