// Command bfetch-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfetch-bench -list
//	bfetch-bench -exp fig8
//	bfetch-bench -exp all -out results/
//	bfetch-bench -exp fig9 -warmup 100000 -measure 300000 -mixes 29
//
// Each experiment prints its table(s) to stdout; with -out set, CSVs are
// written alongside.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id (fig1, fig3, fig7..fig15, tab1, tab2, ablation, or 'all')")
		list      = flag.Bool("list", false, "list experiments and exit")
		outDir    = flag.String("out", "", "directory for CSV output (optional)")
		warmup    = flag.Uint64("warmup", 100_000, "warmup instructions per core")
		measure   = flag.Uint64("measure", 300_000, "measured instructions per core")
		mixes     = flag.Int("mixes", 29, "number of multiprogrammed mixes")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
			fmt.Printf("  %-9s paper: %s\n", "", e.Paper)
		}
		return
	}

	params := harness.DefaultParams()
	params.Opts = sim.RunOpts{WarmupInsts: *warmup, MeasureInsts: *measure}
	params.Mixes = *mixes
	if *workloads != "" {
		params.Workloads = strings.Split(*workloads, ",")
	}
	if !*quiet {
		params.Log = os.Stderr
	}

	var todo []harness.Experiment
	if *expID == "all" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(params)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(os.Stderr, "%s finished in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
		for i, t := range tables {
			fmt.Println(t)
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					fatal(err)
				}
				name := e.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", e.ID, i+1)
				}
				path := filepath.Join(*outDir, name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfetch-bench:", err)
	os.Exit(1)
}
