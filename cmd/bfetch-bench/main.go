// Command bfetch-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfetch-bench -list
//	bfetch-bench -exp fig8
//	bfetch-bench -exp all -out results/
//	bfetch-bench -exp fig9 -warmup 100000 -measure 300000 -mixes 29
//	bfetch-bench -exp all -j 8            # 8 simulations in flight
//	bfetch-bench -exp fig8 -seq           # sequential escape hatch
//	bfetch-bench -exp all -store results/store   # durable artifact cache
//	bfetch-bench -exp all -cpuprofile cpu.pprof
//
// Each experiment prints its table(s) to stdout; with -out set, CSVs are
// written alongside. Simulation points fan out over -j workers (default
// GOMAXPROCS) and repeated points — e.g. the no-prefetch baseline shared by
// every speedup figure — are simulated once per invocation; the cache
// hit/miss counts are reported per experiment on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/emu"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfetch-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID      = flag.String("exp", "", "experiment id (fig1, fig3, fig7..fig15, tab1, tab2, ablation, or 'all')")
		list       = flag.Bool("list", false, "list experiments and exit")
		outDir     = flag.String("out", "", "directory for CSV output (optional)")
		ff         = flag.Uint64("ff", 1_000_000, "fast-forward instructions per core, emulated functionally (0 disables; each workload's prefix is checkpointed once and restored copy-on-write)")
		warmup     = flag.Uint64("warmup", 100_000, "warmup instructions per core")
		measure    = flag.Uint64("measure", 300_000, "measured instructions per core")
		mixes      = flag.Int("mixes", 29, "number of multiprogrammed mixes")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		jobs       = flag.Int("j", 0, "simulations in flight (0 = GOMAXPROCS)")
		seq        = flag.Bool("seq", false, "run simulations sequentially on one goroutine (escape hatch)")
		simloop    = flag.String("simloop", "auto", "clock strategy: auto, event, or naive (escape hatch)")
		emuloop    = flag.String("emuloop", "auto", "functional-emulation engine: auto, compiled, or interp (escape hatch)")
		simpar     = flag.Int("simpar", 0, "core workers per simulation (bulk-synchronous parallel stepping; 0/1 = serial, results byte-identical)")
		scaleCores = flag.String("scalecores", "", "comma-separated core counts for the scale experiment (default 2,4,8,16,64)")
		storeDir   = flag.String("store", "", "durable artifact store directory: results and checkpoints are read from disk before computing, and written back after (shared across invocations and -j settings)")
		benchJSON  = flag.String("benchjson", "", "write per-experiment simulation throughput to this JSON file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr   = flag.String("http", "", "serve live introspection on this address (/obs status, /obs/runs, /debug/vars, /debug/pprof)")
		obsJSON    = flag.String("obsjson", "", "write per-run observability reports (bfetch-obs/v1 JSON) to this file")
		linger     = flag.Duration("linger", 0, "keep the -http endpoint up this long after the last experiment")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
			fmt.Printf("  %-9s paper: %s\n", "", e.Paper)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	loop, err := sim.ParseLoopMode(*simloop)
	if err != nil {
		return err
	}
	exec, err := emu.ParseExecMode(*emuloop)
	if err != nil {
		return err
	}
	emu.DefaultExec = exec

	eng := runner.New(*jobs)
	if *seq {
		eng = runner.NewSequential()
	}
	if *obsJSON != "" || *httpAddr != "" {
		eng.SetRunReports(true)
	}
	var dstore *store.Store
	if *storeDir != "" {
		dstore, err = store.Open(*storeDir)
		if err != nil {
			return err
		}
		eng.SetStore(dstore)
		fmt.Fprintf(os.Stderr, "store: %s (result schema %s)\n", dstore.Dir(), store.ResultSchemaHash())
	}

	var curExp atomic.Value // string: experiment the batch loop is inside
	curExp.Store("")
	start := time.Now()
	if *httpAddr != "" {
		hub := obs.NewStreamHub()
		eng.SetStream(hub)
		srv, err := obs.Serve(*httpAddr,
			func() obs.Status {
				done, total := eng.Progress()
				st := eng.Stats()
				s := obs.Status{
					Schema:     obs.SchemaStatus,
					Experiment: curExp.Load().(string),
					JobsDone:   done, JobsTotal: total,
					Runs:      st.Runs,
					CacheHits: st.Hits, CacheMisses: st.Misses,
					CkptHits: st.CkptHits, CkptMisses: st.CkptMisses,
					SimCycles: st.SimCycles, SimInsts: st.SimInsts,
					UptimeSeconds: time.Since(start).Seconds(),
				}
				if s.UptimeSeconds > 0 {
					s.KCyclesPerSec = float64(s.SimCycles) / 1e3 / s.UptimeSeconds
				}
				if dstore != nil {
					m := dstore.Metrics()
					s.StoreHits, s.StoreMisses = m.Hits, m.Misses
					s.StoreBytesRead = m.BytesRead
					s.StoreReadSeconds = m.ReadTime.Seconds()
				}
				return s
			},
			func() obs.RunsFile {
				return obs.RunsFile{Schema: obs.SchemaRuns, Loop: loop.String(), Runs: eng.RunReports()}
			},
			hub)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/obs (stream at /obs/stream)\n", srv.Addr())
	}

	params := harness.DefaultParams()
	params.Opts = sim.RunOpts{FastForwardInsts: *ff, WarmupInsts: *warmup, MeasureInsts: *measure, Loop: loop, CoreWorkers: *simpar}
	params.Mixes = *mixes
	params.Runner = eng
	if *workloads != "" {
		params.Workloads = strings.Split(*workloads, ",")
	}
	if *scaleCores != "" {
		for _, s := range strings.Split(*scaleCores, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
				return fmt.Errorf("bad -scalecores entry %q", s)
			}
			params.ScaleCores = append(params.ScaleCores, n)
		}
	}
	if !*quiet {
		params.Log = os.Stderr
	}

	var todo []harness.Experiment
	if *expID == "all" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			todo = append(todo, e)
		}
	}

	var prev runner.Stats
	var bench benchReport
	bench.Loop = loop.String()
	bench.EmuLoop = exec.String()
	bench.CoreWorkers = *simpar
	bench.Workers = eng.Workers()
	bench.Store = *storeDir
	for _, e := range todo {
		start := time.Now()
		curExp.Store(e.ID)
		fmt.Fprintf(os.Stderr, "running %s: %s (%d workers)\n", e.ID, e.Title, eng.Workers())
		tables, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		wall := time.Since(start)
		st := eng.Stats()
		line := fmt.Sprintf("%s finished in %s (%d sims run, cache: %d hits, %d misses; ckpt: %d hits, %d misses)",
			e.ID, wall.Round(time.Millisecond),
			st.Runs-prev.Runs, st.Hits-prev.Hits, st.Misses-prev.Misses,
			st.CkptHits-prev.CkptHits, st.CkptMisses-prev.CkptMisses)
		if dstore != nil {
			line += fmt.Sprintf("; store: %d hits, %d misses",
				(st.StoreHits+st.StoreCkptHits)-(prev.StoreHits+prev.StoreCkptHits),
				(st.StoreMisses+st.StoreCkptMisses)-(prev.StoreMisses+prev.StoreCkptMisses))
		}
		fmt.Fprintln(os.Stderr, line)
		bench.add(e.ID, wall, prev, st)
		prev = st
		for i, t := range tables {
			fmt.Println(t)
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					return err
				}
				name := e.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", e.ID, i+1)
				}
				path := filepath.Join(*outDir, name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
	if st := eng.Stats(); st.Hits > 0 || len(todo) > 1 || dstore != nil {
		line := fmt.Sprintf("total: %d sims run, cache: %d hits, %d misses; ckpt: %d hits, %d misses; %d insts emulated",
			st.Runs, st.Hits, st.Misses, st.CkptHits, st.CkptMisses, st.EmuInsts)
		if dstore != nil {
			m := dstore.Metrics()
			line += fmt.Sprintf("; store: %d hits, %d misses, %d KB read in %s",
				m.Hits, m.Misses, m.BytesRead/1024, m.ReadTime.Round(time.Millisecond))
		}
		fmt.Fprintln(os.Stderr, line)
	}
	curExp.Store("")
	if *benchJSON != "" {
		if dstore != nil {
			m := dstore.Metrics()
			bench.storeMetrics = &m
		}
		if err := bench.write(*benchJSON, eng.Stats()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchJSON)
	}
	if *obsJSON != "" {
		f := obs.RunsFile{
			Schema:    obs.SchemaRuns,
			Generated: time.Now().UTC().Format(time.RFC3339),
			Loop:      loop.String(),
			Runs:      eng.RunReports(),
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*obsJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d run reports)\n", *obsJSON, len(f.Runs))
	}
	if *httpAddr != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "obs: lingering %s for scrapes\n", *linger)
		time.Sleep(*linger)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// benchReport is the machine-readable throughput record written by
// -benchjson, tracking the simulator's performance trajectory across PRs.
type benchReport struct {
	Generated string `json:"generated"`
	Loop      string `json:"loop"`
	// EmuLoop and CoreWorkers record which functional-emulation engine and
	// parallel-stepping setting produced the run: instrumented paths differ
	// in throughput (fig3 drives the interpreter-observed path, fig7 the
	// compiled one), so without this provenance a settings change reads as
	// a performance regression.
	EmuLoop     string `json:"emu_loop"`
	CoreWorkers int    `json:"core_workers"`
	Workers     int    `json:"workers"`
	// Store records the durable artifact store directory, empty when the run
	// computed everything in-process. wall_seconds under a warm store measure
	// disk reads, not simulation — the per-row store_state says which regime
	// each row's numbers come from, so regenerations are comparable.
	Store       string      `json:"store,omitempty"`
	Experiments []benchExp  `json:"experiments"`
	Total       *benchTotal `json:"total,omitempty"`

	storeMetrics *store.Metrics // final store counters, nil when -store unset
}

// benchExp reports one experiment's simulation throughput: cycles and
// instructions are summed over the measured window of every simulated core,
// and rates divide by the experiment's wall-clock time (so cache hits, which
// simulate nothing, depress the rate of repeated runs — by design).
// Emulator-driven experiments (fig3/fig7) report emu_insts instead of sim
// counters; experiments that compute without executing anything (tab1/tab2)
// are marked analytic, so no row is silently degenerate.
type benchExp struct {
	ID string `json:"id"`
	// Per-row provenance (duplicated from the report header so rows stay
	// self-describing when files are merged or rows are compared across
	// regenerations).
	SimLoop        string  `json:"sim_loop"`
	EmuLoop        string  `json:"emu_loop"`
	CoreWorkers    int     `json:"core_workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	Sims           uint64  `json:"sims"`
	CacheHits      uint64  `json:"cache_hits"`
	CkptHits       uint64  `json:"ckpt_hits,omitempty"`
	CkptMisses     uint64  `json:"ckpt_misses,omitempty"`
	SimCycles      uint64  `json:"sim_cycles"`
	SimInsts       uint64  `json:"sim_insts"`
	EmuInsts       uint64  `json:"emu_insts,omitempty"`
	KCyclesPerSec  float64 `json:"sim_kcycles_per_sec"`
	InstsPerSec    float64 `json:"committed_insts_per_sec"`
	EmuInstsPerSec float64 `json:"emu_insts_per_sec,omitempty"`
	// Durable-store traffic (result + checkpoint lookups) and the regime it
	// implies: "cold" rows computed and wrote back, "warm" rows were answered
	// entirely from disk (their wall_seconds measure I/O, not simulation),
	// "mixed" saw both, "idle" ran with a store but never consulted it
	// (analytic rows, or points absorbed by the memory tier). Absent when the
	// run had no store.
	StoreHits   uint64 `json:"store_hits,omitempty"`
	StoreMisses uint64 `json:"store_misses,omitempty"`
	StoreState  string `json:"store_state,omitempty"`
	// Analytic marks experiments that derive their tables from configuration
	// arithmetic alone (storage tables): no simulation, no emulation.
	Analytic bool `json:"analytic,omitempty"`
	// CPI carries the cpi_* bucket columns: cycles the experiment's executed
	// runs charged to each attribution bucket, keyed "cpi_<bucket>". Absent
	// unless runs attributed (cpu.Config.CPIStack — the cpistack experiment);
	// when every run attributed, the values sum to sim_cycles exactly.
	CPI map[string]uint64 `json:"cpi,omitempty"`
}

type benchTotal struct {
	WallSeconds    float64 `json:"wall_seconds"`
	Sims           uint64  `json:"sims"`
	CkptHits       uint64  `json:"ckpt_hits"`
	CkptMisses     uint64  `json:"ckpt_misses"`
	SimCycles      uint64  `json:"sim_cycles"`
	SimInsts       uint64  `json:"sim_insts"`
	EmuInsts       uint64  `json:"emu_insts"`
	KCyclesPerSec  float64 `json:"sim_kcycles_per_sec"`
	InstsPerSec    float64 `json:"committed_insts_per_sec"`
	EmuInstsPerSec float64 `json:"emu_insts_per_sec"`
	// Whole-run store traffic from the store's own counters (both artifact
	// kinds), absent when -store was unset.
	StoreHits        uint64  `json:"store_hits,omitempty"`
	StoreMisses      uint64  `json:"store_misses,omitempty"`
	StoreBytesRead   uint64  `json:"store_bytes_read,omitempty"`
	StoreReadSeconds float64 `json:"store_read_seconds,omitempty"`
	StoreState       string  `json:"store_state,omitempty"`
	// CPI: whole-run cpi_* bucket totals (see benchExp.CPI).
	CPI map[string]uint64 `json:"cpi,omitempty"`
}

func (b *benchReport) add(id string, wall time.Duration, prev, st runner.Stats) {
	sec := wall.Seconds()
	cycles := st.SimCycles - prev.SimCycles
	insts := st.SimInsts - prev.SimInsts
	exp := benchExp{
		ID:          id,
		SimLoop:     b.Loop,
		EmuLoop:     b.EmuLoop,
		CoreWorkers: b.CoreWorkers,
		WallSeconds: sec,
		Sims:        st.Runs - prev.Runs,
		CacheHits:   st.Hits - prev.Hits,
		CkptHits:    st.CkptHits - prev.CkptHits,
		CkptMisses:  st.CkptMisses - prev.CkptMisses,
		SimCycles:   cycles,
		SimInsts:    insts,
		EmuInsts:    st.EmuInsts - prev.EmuInsts,
	}
	if sec > 0 {
		exp.KCyclesPerSec = float64(cycles) / 1e3 / sec
		exp.InstsPerSec = float64(insts) / sec
		exp.EmuInstsPerSec = float64(exp.EmuInsts) / sec
	}
	if b.Store != "" {
		exp.StoreHits = (st.StoreHits + st.StoreCkptHits) - (prev.StoreHits + prev.StoreCkptHits)
		exp.StoreMisses = (st.StoreMisses + st.StoreCkptMisses) - (prev.StoreMisses + prev.StoreCkptMisses)
		exp.StoreState = storeState(exp.StoreHits, exp.StoreMisses)
	}
	exp.Analytic = exp.Sims == 0 && exp.CacheHits == 0 && exp.EmuInsts == 0 && exp.StoreHits == 0
	exp.CPI = cpiFields(st.SimCPI, prev.SimCPI)
	b.Experiments = append(b.Experiments, exp)
}

// cpiFields renders a CPI-stack delta as the cpi_* JSON columns, nil when
// nothing was attributed over the span.
func cpiFields(cur, prev obs.CPIStack) map[string]uint64 {
	var m map[string]uint64
	for b, v := range cur {
		if d := v - prev[b]; d > 0 {
			if m == nil {
				m = make(map[string]uint64, obs.NumCPIBuckets)
			}
			m["cpi_"+obs.CPIBucketNames[b]] = d
		}
	}
	return m
}

// storeState classifies a hit/miss delta into the provenance label the
// report rows carry.
func storeState(hits, misses uint64) string {
	switch {
	case hits == 0 && misses == 0:
		return "idle"
	case misses == 0:
		return "warm"
	case hits == 0:
		return "cold"
	default:
		return "mixed"
	}
}

func (b *benchReport) write(path string, st runner.Stats) error {
	b.Generated = time.Now().UTC().Format(time.RFC3339)
	var wall float64
	for _, e := range b.Experiments {
		wall += e.WallSeconds
	}
	total := benchTotal{
		WallSeconds: wall, Sims: st.Runs,
		CkptHits: st.CkptHits, CkptMisses: st.CkptMisses,
		SimCycles: st.SimCycles, SimInsts: st.SimInsts,
		EmuInsts: st.EmuInsts,
	}
	if wall > 0 {
		total.KCyclesPerSec = float64(st.SimCycles) / 1e3 / wall
		total.InstsPerSec = float64(st.SimInsts) / wall
		total.EmuInstsPerSec = float64(st.EmuInsts) / wall
	}
	if m := b.storeMetrics; m != nil {
		total.StoreHits, total.StoreMisses = m.Hits, m.Misses
		total.StoreBytesRead = m.BytesRead
		total.StoreReadSeconds = m.ReadTime.Seconds()
		total.StoreState = storeState(m.Hits, m.Misses)
	}
	total.CPI = cpiFields(st.SimCPI, obs.CPIStack{})
	b.Total = &total
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
