// Command bfetch-lint runs the repository's custom static-analysis suite
// (internal/lint) over the module. The AST layer (hotpath zero-allocation
// contract, transitive hotpath reachability, concurrency discipline,
// determinism rules, stats-reset audit) always runs; -compiler adds the
// compiler-witnessed layer (escape/inlining/bounds-check facts from
// `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'`, cached by build ID).
// It prints findings compiler-style and exits non-zero when any survive, so
// `make lint` / `make lint-full` and CI can gate on it.
//
// Usage:
//
//	bfetch-lint [-C dir] [-compiler] [-json] [-nocache] [-cachedir DIR]
//	            [-analyzer hotpath|hotcall|syncorder|determinism|statsreset|escape]
//
// With no -C it lints the module containing the working directory. -json
// emits one finding per line as {"file","line","col","analyzer","message"}
// for tooling; the default output matches the GitHub problem matcher shipped
// in .github/bfetch-lint-matcher.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	only := flag.String("analyzer", "", "restrict output to one analyzer (hotpath, hotcall, syncorder, determinism, statsreset, escape)")
	compiler := flag.Bool("compiler", false, "also run the compiler-witnessed escape analyzer (slower cold; fact table cached by build ID)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	noCache := flag.Bool("nocache", false, "bypass the compiler-fact cache (always rebuild diagnostics)")
	cacheDir := flag.String("cachedir", "", "override the compiler-fact cache directory (default: user cache dir/bfetch-lint)")
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Parse()

	if *only != "" {
		known := false
		for _, name := range lint.AnalyzerNames {
			if name == *only {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "bfetch-lint: unknown analyzer %q (have %s)\n",
				*only, strings.Join(lint.AnalyzerNames, ", "))
			os.Exit(2)
		}
	}
	if *only == "escape" {
		*compiler = true
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := lint.RunAll(root, lint.DefaultOptions(), *compiler,
		lint.CollectOptions{CacheDir: *cacheDir, NoCache: *noCache})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "bfetch-lint: warning: %s\n", w)
	}

	diags := res.Diags
	if *only != "" {
		kept := diags[:0]
		for _, d := range diags {
			if d.Analyzer == *only {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "bfetch-lint: %d package(s), %d analyzer(s) [%s], %d finding(s)\n",
			res.Packages, len(res.Ran), strings.Join(res.Ran, " "), len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
