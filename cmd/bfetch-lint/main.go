// Command bfetch-lint runs the repository's custom static-analysis suite
// (internal/lint) over the module: the hotpath zero-allocation contract, the
// determinism rules for the measurement packages, and the stats-reset field
// audit. It prints findings compiler-style and exits non-zero when any
// survive, so `make lint` and CI can gate on it.
//
// Usage:
//
//	bfetch-lint [-C dir] [-analyzer hotpath|determinism|statsreset]
//
// With no -C it lints the module containing the working directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	only := flag.String("analyzer", "", "restrict to one analyzer (hotpath, determinism, statsreset)")
	quiet := flag.Bool("q", false, "suppress the summary line")
	flag.Parse()

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.DefaultOptions())
	if *only != "" {
		kept := diags[:0]
		for _, d := range diags {
			if d.Analyzer == *only {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "bfetch-lint: %d package(s), %d finding(s)\n", len(pkgs), len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
