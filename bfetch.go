// Package bfetch is the public API of this repository: a from-scratch Go
// reproduction of "B-Fetch: Branch Prediction Directed Prefetching for
// Chip-Multiprocessors" (Kadjo et al., MICRO 2014).
//
// The package re-exports the user-facing surface of the internal packages:
//
//   - the simulated systems (single-core and CMP with shared LLC) and their
//     Table II baseline configuration,
//   - the four evaluated prefetchers (none/stride/SMS/B-Fetch, plus the
//     perfect-L1 oracle) and the Prefetcher interface for writing new ones,
//   - the 18 SPEC-named synthetic workloads and the toy-ISA toolchain for
//     building custom kernels,
//   - the experiment harness that regenerates every table and figure in the
//     paper's evaluation.
//
// Quick start:
//
//	cfg := bfetch.DefaultConfig(bfetch.PFBFetch)
//	res, err := bfetch.RunSolo(cfg, "mcf", bfetch.DefaultRunOpts())
//	fmt.Println(res.IPC[0])
//
// See the examples/ directory for complete programs.
package bfetch

import (
	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// System configuration and execution.

type (
	// Config describes a system under test (cores, caches, predictor,
	// prefetcher); see DefaultConfig.
	Config = sim.Config
	// RunOpts sets the fast-forward/warmup/measure protocol.
	RunOpts = sim.RunOpts
	// Result carries the measured counters of a run.
	Result = sim.Result
	// System is an assembled simulation, for callers that want to drive
	// the clock themselves.
	System = sim.System
	// PrefetcherKind selects one of the built-in prefetchers.
	PrefetcherKind = sim.PrefetcherKind
	// LoopMode selects the simulation clock strategy (see RunOpts.Loop):
	// the event-driven skipping loop (default) or the naive per-cycle
	// reference loop. Both produce bit-identical results.
	LoopMode = sim.LoopMode
)

// Simulation clock strategies.
const (
	LoopAuto  = sim.LoopAuto
	LoopEvent = sim.LoopEvent
	LoopNaive = sim.LoopNaive
)

// Built-in prefetcher kinds.
const (
	PFNone    = sim.PFNone
	PFStride  = sim.PFStride
	PFSMS     = sim.PFSMS
	PFBFetch  = sim.PFBFetch
	PFPerfect = sim.PFPerfect
	PFNextN   = sim.PFNextN
	PFCustom  = sim.PFCustom
)

// DefaultConfig returns the paper's Table II baseline with the given
// prefetcher.
func DefaultConfig(pf PrefetcherKind) Config { return sim.Default(pf) }

// DefaultRunOpts returns the experiments' measurement protocol: 1M
// instructions of functional fast-forward, 100k of cycle-accurate warmup,
// 300k measured — the paper's 10B/1B/1B phases scaled to the kernels.
func DefaultRunOpts() RunOpts { return sim.DefaultRunOpts() }

// NewSystem assembles a system running the given workloads, one per core.
func NewSystem(cfg Config, apps []Workload) (*System, error) { return sim.New(cfg, apps) }

// Run measures the named applications on a CMP (one core each).
func Run(cfg Config, appNames []string, opts RunOpts) (Result, error) {
	return sim.Run(cfg, appNames, opts)
}

// RunSolo measures one application on a single core.
func RunSolo(cfg Config, appName string, opts RunOpts) (Result, error) {
	return sim.RunSolo(cfg, appName, opts)
}

// B-Fetch engine configuration (the paper's contribution).

// BFetchConfig sizes the B-Fetch engine; see Config.BFetch.
type BFetchConfig = core.Config

// Workloads.

type (
	// Workload is one benchmark kernel.
	Workload = workload.Workload
	// Mix is one multiprogrammed workload combination.
	Mix = workload.Mix
)

// Workloads returns the 18 SPEC-named synthetic kernels.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up one kernel.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// NewWorkload wraps a custom program builder as a Workload.
func NewWorkload(name, description, character string, memoryIntensive bool,
	build func() (*Program, *Memory)) Workload {
	return workload.New(name, description, character, memoryIntensive, build)
}

// SelectMixes returns the count highest-contention n-application mixes under
// the FOA model, given per-workload FOA profiles (see FOAProfiles).
func SelectMixes(n, count int, foa map[string]float64) []Mix {
	return workload.SelectMixes(n, count, foa)
}

// FOAProfiles measures every workload's LLC reach rate over profileInsts
// functionally executed instructions.
func FOAProfiles(profileInsts uint64) (map[string]float64, error) {
	return workload.FOAProfiles(profileInsts)
}

// Toy-ISA toolchain, for building custom kernels.

type (
	// Program is an assembled toy-ISA program.
	Program = isa.Program
	// ProgramBuilder assembles programs in code.
	ProgramBuilder = isa.Builder
	// Memory is a simulated address space.
	Memory = mem.Memory
)

// Assemble parses toy-ISA assembly text.
func Assemble(src string) (*Program, error) { return isa.Assemble(src) }

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder() *ProgramBuilder { return isa.NewBuilder() }

// NewMemory returns an empty address space.
func NewMemory() *Memory { return mem.New() }

// Custom prefetchers.

type (
	// Prefetcher is the contract between a core and its prefetch engine.
	Prefetcher = prefetch.Prefetcher
	// PrefetcherBase provides no-op hooks for embedding.
	PrefetcherBase = prefetch.Base
	// PrefetchRequest is one prefetch a Prefetcher wants issued.
	PrefetchRequest = prefetch.Request
	// AccessInfo describes a demand L1D access delivered to OnAccess.
	AccessInfo = prefetch.AccessInfo
	// DecodeInfo describes a decoded control instruction (OnDecode).
	DecodeInfo = prefetch.DecodeInfo
	// CommitInfo describes a retiring instruction (OnCommit).
	CommitInfo = prefetch.CommitInfo
	// BranchPredictor is the shared tournament predictor handed to custom
	// prefetcher factories.
	BranchPredictor = branch.Predictor
	// BranchConfidence is the composite confidence estimator.
	BranchConfidence = branch.Confidence
)

// Experiments.

// Experiment reproduces one of the paper's tables or figures.
type Experiment = harness.Experiment

// ExperimentParams tunes an experiment run.
type ExperimentParams = harness.Params

// Table is the text/CSV table experiments return.
type Table = stats.Table

// Experiments lists every reproduced artifact (fig1..fig15, tab1, tab2,
// ablation).
func Experiments() []Experiment { return harness.All() }

// ExperimentByID fetches one experiment.
func ExperimentByID(id string) (Experiment, error) { return harness.ByID(id) }

// DefaultExperimentParams mirrors the paper's measurement protocol at
// simulation-friendly scale.
func DefaultExperimentParams() ExperimentParams { return harness.DefaultParams() }
