# Verification targets mirror ROADMAP.md so CI and humans run the same thing.

GO ?= go

.PHONY: all build test vet lint lint-full verify verify-full verify-race race bench bench-smoke bench-scale bench-json obs-smoke store-smoke clean

# Packages exercising concurrency: the parallel experiment engine, the
# copy-on-write memory forks, shared-checkpoint restores, and the durable
# store shared across workers.
RACE_PKGS = ./internal/runner ./internal/harness ./internal/workload \
	./internal/mem ./internal/ckpt ./internal/store

# BSP core-parallel stepping under the race detector: worker counts > 1 on a
# multi-core mix, plus the bound-error path. The full sim suite is too slow
# under -race; these tests are the ones that actually run the worker pool.
RACE_SIM = -run 'TestParallelWorkerCount|TestParallelEquivalenceOnError' ./internal/sim

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Custom static analysis (internal/lint), AST layer only — fast enough for
# tier-1: hot-path zero-allocation contract, transitive hotpath reachability,
# concurrency discipline, determinism rules, stats-reset audit. Exits
# non-zero on any finding.
lint:
	$(GO) run ./cmd/bfetch-lint

# Full two-layer gate: the AST analyzers plus the compiler-witnessed
# escape/inlining/bounds-check layer (go build -gcflags='-m=2 ...', facts
# cached per package by build ID — cold runs cost a build, warm runs
# milliseconds).
lint-full:
	$(GO) run ./cmd/bfetch-lint -compiler

# Tier-1 verify (ROADMAP.md).
verify: build vet test

# Full pass: tier-1 plus the two-layer bfetch-lint gate and the race leg
# over the concurrent packages.
verify-full: build vet
	$(GO) run ./cmd/bfetch-lint -compiler
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race $(RACE_SIM)

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race $(RACE_SIM)

verify-race: race

# Hot-path microbenchmarks (BenchmarkCoreCycle must report 0 allocs/op;
# MemReadWrite/MemFork/Checkpoint guard the fast-forward machinery;
# EmuInterp/EmuCompiled guard the threaded-code speedup and RobScan/RobBitmap
# the issue-stage selection kernel).
bench:
	$(GO) test -run xxx -bench 'CoreCycle|CacheAccess|BFetchTick|SimMemoryBound' \
		-benchmem ./internal/cpu ./internal/cache ./internal/core ./internal/sim
	$(GO) test -run xxx -bench 'MemReadWrite|MemFork|Checkpoint' \
		-benchmem ./internal/mem ./internal/ckpt
	$(GO) test -run xxx -bench 'EmuInterp|EmuCompiled|RobScan|RobBitmap' \
		-benchmem ./internal/emu ./internal/cpu

# CI leg: every kernel microbenchmark, executed 10 iterations each — not a
# measurement, a regression tripwire that keeps the benchmarks compiling and
# their setup/invariant checks (b.Fatal paths) running on every push. The
# root package's figure benchmarks run whole experiments (tens of seconds
# per op) and are excluded; they stay a manual `go test -bench Fig .` affair.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime=10x ./internal/...

# Scale-out smoke: the mix-8/16 slice of the scale experiment at a reduced
# protocol — exercises wide-mix generation, the banked LLC / channeled DRAM
# models and their per-bank metrics end to end without the cost of the full
# 2..64-core sweep.
bench-scale:
	$(GO) run ./cmd/bfetch-bench -exp scale -scalecores 8,16 \
		-ff 20000 -warmup 5000 -measure 20000 -q

# Refresh the machine-readable simulation-throughput record. Four workers is
# the recorded-baseline setting: parallel enough to exercise the caches,
# small enough that per-experiment wall times stay comparable across hosts.
# The store directory is wiped first so the recorded rows are always a cold
# run (store_state "cold") — a warm store would turn the throughput numbers
# into disk-read numbers. The populated store is left behind for reuse.
bench-json:
	rm -rf results/store
	$(GO) run ./cmd/bfetch-bench -exp all -q -benchjson BENCH_sim.json -j 4 \
		-store results/store

# Observability smoke test: tiny batch with the live -http endpoint up,
# scrape it, and validate every obs JSON document against its schema.
obs-smoke:
	./scripts/obs_smoke.sh

# Durable-store smoke test: one experiment run twice against a shared -store
# directory (second run: zero sims, 100% store hits, byte-identical CSVs),
# plus a -j 1 / -j 8 leg sharing one store.
store-smoke:
	./scripts/store_smoke.sh

clean:
	rm -rf results
