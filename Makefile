# Verification targets mirror ROADMAP.md so CI and humans run the same thing.

GO ?= go

.PHONY: all build test verify verify-full race bench bench-json clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verify (ROADMAP.md).
verify: build test

# Full pass: tier-1 plus vet and the race leg over the concurrent packages.
verify-full: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/runner ./internal/harness ./internal/workload

race:
	$(GO) test -race ./internal/runner ./internal/harness ./internal/workload

# Hot-path microbenchmarks (BenchmarkCoreCycle must report 0 allocs/op).
bench:
	$(GO) test -run xxx -bench 'CoreCycle|CacheAccess|BFetchTick|SimMemoryBound' \
		-benchmem ./internal/cpu ./internal/cache ./internal/core ./internal/sim

# Refresh the machine-readable simulation-throughput record.
bench-json:
	$(GO) run ./cmd/bfetch-bench -exp all -q -benchjson BENCH_sim.json

clean:
	rm -rf results
