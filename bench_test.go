package bfetch

// One benchmark per table and figure in the paper's evaluation (§V). Each
// runs the corresponding harness experiment at a reduced-but-representative
// budget and reports the headline scalar(s) as custom benchmark metrics, so
// `go test -bench=.` regenerates every artifact's key numbers. The full
// rows/series are printed by `go run ./cmd/bfetch-bench -exp all`.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchParams is the per-benchmark measurement budget: large enough for the
// qualitative shapes, small enough that the whole suite finishes in minutes.
func benchParams() harness.Params {
	return harness.Params{
		Opts:  sim.RunOpts{WarmupInsts: 25_000, MeasureInsts: 60_000},
		Mixes: 4,
	}
}

// lastRow returns the named row's numeric cells.
func lastRow(t *stats.Table, name string) []float64 {
	for _, row := range t.Rows {
		if row[0] != name {
			continue
		}
		var out []float64
		for _, cell := range row[1:] {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64); err == nil {
				out = append(out, v)
			}
		}
		return out
	}
	return nil
}

// runExperiment executes the experiment once per iteration and reports the
// geomean row of its first table under the given series names.
func runExperiment(b *testing.B, id string, geomeanRow string, series []string) {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if geomeanRow == "" {
			continue
		}
		vals := lastRow(tables[0], geomeanRow)
		for j, v := range vals {
			if j < len(series) {
				b.ReportMetric(v, series[j])
			}
		}
	}
}

func BenchmarkFig1PerfectUpperBound(b *testing.B) {
	runExperiment(b, "fig1", "Geomean", []string{"stride_x", "sms_x", "perfect_x"})
}

func BenchmarkFig3RegisterDeltas(b *testing.B) {
	e, _ := harness.ByID("fig3")
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		// Fraction of register deltas within one block at 1/3/12 BB depth.
		row := lastRow(tables[0], "1")
		for j, label := range []string{"reg1BB_cdf", "reg3BB_cdf", "reg12BB_cdf"} {
			if j < len(row) {
				b.ReportMetric(row[j], label)
			}
		}
	}
}

func BenchmarkFig7BranchesPerCycle(b *testing.B) {
	e, _ := harness.ByID("fig7")
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		row := lastRow(tables[0], "MEAN")
		if len(row) > 1 {
			b.ReportMetric(row[0], "frac_1branch")
			b.ReportMetric(row[1], "frac_2branch")
		}
	}
}

func BenchmarkTable1Storage(b *testing.B) {
	e, _ := harness.ByID("tab1")
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tables[0].Rows {
			if row[1] == "TOTAL" {
				if v, err := strconv.ParseFloat(row[3], 64); err == nil {
					b.ReportMetric(v, fmt.Sprintf("%s_KB", strings.ToLower(row[0])))
				}
			}
		}
	}
}

func BenchmarkTable2Config(b *testing.B) {
	runExperiment(b, "tab2", "", nil)
}

func BenchmarkFig8SingleThreaded(b *testing.B) {
	runExperiment(b, "fig8", "Geomean", []string{"stride_x", "sms_x", "bfetch_x"})
}

func BenchmarkFig9Mix2(b *testing.B) {
	// The mix table's "apps" column is non-numeric and is skipped by
	// lastRow, leaving exactly the three speedup series.
	runExperiment(b, "fig9", "Geomean", []string{"stride_x", "sms_x", "bfetch_x"})
}

func BenchmarkFig10Mix4(b *testing.B) {
	runExperiment(b, "fig10", "Geomean", []string{"stride_x", "sms_x", "bfetch_x"})
}

func BenchmarkFig11PrefetchQuality(b *testing.B) {
	e, _ := harness.ByID("fig11")
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		row := lastRow(tables[0], "TOTAL")
		if len(row) == 4 {
			b.ReportMetric(row[0], "sms_useful")
			b.ReportMetric(row[1], "sms_useless")
			b.ReportMetric(row[2], "bfetch_useful")
			b.ReportMetric(row[3], "bfetch_useless")
		}
	}
}

func BenchmarkFig12ConfidenceThreshold(b *testing.B) {
	runExperiment(b, "fig12", "Geomean", []string{"conf045_x", "conf075_x", "conf090_x"})
}

func BenchmarkFig13PredictorSize(b *testing.B) {
	e, _ := harness.ByID("fig13")
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		def := lastRow(tables[0], "Default")
		if len(def) >= 2 {
			b.ReportMetric(def[1], "bfetch_default_x")
		}
		big := lastRow(tables[0], "4x")
		if len(big) >= 2 {
			b.ReportMetric(big[1], "bfetch_4x_x")
		}
	}
}

func BenchmarkFig14PipelineWidth(b *testing.B) {
	runExperiment(b, "fig14", "Geomean", []string{"w2_x", "w4_x", "w8_x"})
}

func BenchmarkFig15StorageSensitivity(b *testing.B) {
	// Six scale points (the paper's four, plus 1/16 and 1/8 where the
	// synthetic kernels' smaller code footprints put the capacity knee).
	runExperiment(b, "fig15", "Geomean",
		[]string{"scale16th_x", "scale8th_x", "kb8_x", "kb10_x", "kb13_x", "kb19_x"})
}

func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablation", "Geomean",
		[]string{"full_x", "nofilter_x", "noloop_x", "nopatterns_x", "commitARF_x"})
}

// ------------------------------------------------------- engine speedup --
//
// The serial/parallel pair tracks the experiment engine's scaling in the
// perf trajectory: same fig8 workload grid, one goroutine vs GOMAXPROCS.
// Each iteration gets a fresh engine and baseline store so the run-cache
// cannot turn later iterations into lookups — the pair measures execution,
// not memoization.

func benchEngine(b *testing.B, mkEngine func() *runner.Engine) {
	b.Helper()
	e, err := harness.ByID("fig8")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Runner = mkEngine()
		p.Baselines = harness.NewBaselineStore()
		if _, err := e.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunnerSerial(b *testing.B) {
	benchEngine(b, runner.NewSequential)
}

func BenchmarkRunnerParallel(b *testing.B) {
	benchEngine(b, func() *runner.Engine { return runner.New(0) })
}
