#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test of the observability layer.
#
# Builds the binaries, runs a tiny experiment batch with the live
# introspection endpoint up, scrapes /obs and /obs/runs while the server
# lingers, and validates every JSON document (scraped and written) against
# the obs schemas with `bfetch-sim -validate-obs`. Run via `make obs-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"
      [ -n "${bench_pid:-}" ] && kill "$bench_pid" 2>/dev/null
      [ -n "${stream_pid:-}" ] && kill "$stream_pid" 2>/dev/null
      true' EXIT

echo "== build"
go build -o "$workdir/bfetch-bench" ./cmd/bfetch-bench
go build -o "$workdir/bfetch-sim" ./cmd/bfetch-sim

port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"

echo "== run tiny batch with -http $addr"
"$workdir/bfetch-bench" -exp fig8 -workloads mcf,lbm -ff 0 \
    -warmup 20000 -measure 20000 -q \
    -http "$addr" -linger 30s -obsjson "$workdir/obs.json" \
    >"$workdir/bench.out" 2>"$workdir/bench.err" &
bench_pid=$!

echo "== scrape endpoint"
ok=""
stream_pid=""
for _ in $(seq 1 50); do
    if curl -sf "http://$addr/obs" -o "$workdir/status.json" 2>/dev/null; then
        ok=1
        break
    fi
    if ! kill -0 "$bench_pid" 2>/dev/null; then
        echo "bfetch-bench exited before serving:" >&2
        cat "$workdir/bench.err" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$ok" ]; then
    echo "endpoint $addr never came up" >&2
    cat "$workdir/bench.err" >&2
    exit 1
fi

# Attach a live-stream client for the rest of the batch: every job still to
# finish publishes NDJSON progress/run events to it.
curl -sN --max-time 40 "http://$addr/obs/stream" -o "$workdir/stream.ndjson" &
stream_pid=$!

# Wait for the run reports to land on disk (written after the batch).
for _ in $(seq 1 150); do
    [ -s "$workdir/obs.json" ] && break
    sleep 0.2
done
[ -s "$workdir/obs.json" ] || { echo "obs.json never written" >&2; cat "$workdir/bench.err" >&2; exit 1; }

# Scrape the runs endpoint while the server lingers, then shut it down.
curl -sf "http://$addr/obs/runs" -o "$workdir/runs.json"
curl -sf "http://$addr/debug/vars" -o /dev/null
kill "$bench_pid" 2>/dev/null || true
wait "$bench_pid" 2>/dev/null || true
bench_pid=""

echo "== check live stream"
kill "$stream_pid" 2>/dev/null || true
wait "$stream_pid" 2>/dev/null || true
stream_pid=""
[ -s "$workdir/stream.ndjson" ] || { echo "/obs/stream produced no events" >&2; exit 1; }
grep -q '"event":"progress"' "$workdir/stream.ndjson" \
    || { echo "stream carried no progress events" >&2; head "$workdir/stream.ndjson" >&2; exit 1; }
grep -q '"event":"run"' "$workdir/stream.ndjson" \
    || { echo "stream carried no run events" >&2; head "$workdir/stream.ndjson" >&2; exit 1; }

echo "== single-run report + trace via bfetch-sim"
"$workdir/bfetch-sim" -workloads mcf -pf stride -warmup 20000 -measure 20000 \
    -obs "$workdir/run.json" -obstrace "$workdir/pf.trace" -obstrace-every 8 \
    >/dev/null 2>&1
[ -s "$workdir/pf.trace" ] || { echo "trace file empty" >&2; exit 1; }

echo "== attributed run with interval time series"
"$workdir/bfetch-sim" -workloads mcf -pf bfetch -warmup 20000 -measure 20000 \
    -cpistack -ts 2000 -obs "$workdir/run_cpi.json" >/dev/null 2>&1
grep -q 'bfetch-obs-ts/v1' "$workdir/run_cpi.json" \
    || { echo "run report carries no bfetch-obs-ts/v1 series" >&2; exit 1; }
grep -q '"c0.cpu.cpi.base"' "$workdir/run_cpi.json" \
    || { echo "run report carries no cpi buckets" >&2; exit 1; }

echo "== -exp cpistack smoke"
"$workdir/bfetch-bench" -exp cpistack -workloads mcf,lbm -ff 0 \
    -warmup 10000 -measure 10000 -q >"$workdir/cpistack.out" 2>&1 \
    || { cat "$workdir/cpistack.out" >&2; exit 1; }
grep -q 'llc_bank_queue' "$workdir/cpistack.out" \
    || { echo "cpistack tables missing queue buckets" >&2; cat "$workdir/cpistack.out" >&2; exit 1; }

echo "== validate schemas"
"$workdir/bfetch-sim" -validate-obs "$workdir/status.json"
"$workdir/bfetch-sim" -validate-obs "$workdir/runs.json"
"$workdir/bfetch-sim" -validate-obs "$workdir/obs.json"
"$workdir/bfetch-sim" -validate-obs "$workdir/run.json"
"$workdir/bfetch-sim" -validate-obs "$workdir/run_cpi.json"

echo "obs-smoke: OK"
