#!/usr/bin/env bash
# store_smoke.sh — end-to-end smoke test of the durable artifact store.
#
# Runs one experiment twice against a shared -store directory and asserts
# the contract the store ships with: the second run computes nothing (zero
# sims, zero store misses, 100% answered from disk) and its tables are
# byte-identical to the first run's. A second leg repeats the check across
# worker counts (-j 1 populates, -j 8 reads) — the disk tier must be as
# scheduling-independent as the in-memory one. Run via `make store-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/bfetch-bench" ./cmd/bfetch-bench

proto=(-exp fig8 -workloads mcf,lbm,milc -ff 50000 -warmup 10000 -measure 20000 -q)

echo "== cold run (populates the store)"
"$workdir/bfetch-bench" "${proto[@]}" -store "$workdir/store" \
    -out "$workdir/cold" >/dev/null 2>"$workdir/cold.err"
grep -q 'store:.*misses' "$workdir/cold.err" || {
    echo "cold run never reported store traffic:" >&2
    cat "$workdir/cold.err" >&2
    exit 1
}

echo "== warm run (must compute nothing)"
"$workdir/bfetch-bench" "${proto[@]}" -store "$workdir/store" \
    -out "$workdir/warm" >/dev/null 2>"$workdir/warm.err"
grep -q '^fig8 finished in .* (0 sims run' "$workdir/warm.err" || {
    echo "warm run simulated something:" >&2
    cat "$workdir/warm.err" >&2
    exit 1
}
grep -Eq 'store: [1-9][0-9]* hits, 0 misses' "$workdir/warm.err" || {
    echo "warm run was not 100% store hits:" >&2
    cat "$workdir/warm.err" >&2
    exit 1
}

echo "== cold vs warm tables byte-identical"
diff -r "$workdir/cold" "$workdir/warm"

echo "== worker-count invariance (-j 1 populates, -j 8 reads)"
"$workdir/bfetch-bench" "${proto[@]}" -store "$workdir/jstore" -j 1 \
    -out "$workdir/j1" >/dev/null 2>&1
"$workdir/bfetch-bench" "${proto[@]}" -store "$workdir/jstore" -j 8 \
    -out "$workdir/j8" >/dev/null 2>"$workdir/j8.err"
grep -q '^fig8 finished in .* (0 sims run' "$workdir/j8.err" || {
    echo "-j 8 over the -j 1 store recomputed:" >&2
    cat "$workdir/j8.err" >&2
    exit 1
}
diff -r "$workdir/j1" "$workdir/j8"

echo "store-smoke: OK"
