package bfetch

import (
	"strings"
	"testing"
)

// API-surface tests: the facade must expose a coherent, working view of the
// internal packages.

func TestWorkloadCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 18 {
		t.Fatalf("workloads = %d, want 18", len(ws))
	}
	if _, err := WorkloadByName("mcf"); err != nil {
		t.Error(err)
	}
}

func TestExperimentCatalog(t *testing.T) {
	es := Experiments()
	if len(es) < 14 {
		t.Fatalf("experiments = %d, want ≥ 14", len(es))
	}
	if _, err := ExperimentByID("fig8"); err != nil {
		t.Error(err)
	}
}

func TestAssembleAndRunCustomWorkload(t *testing.T) {
	prog, err := Assemble(`
		movi r16, 0x8000
		movi r10, 64
	loop:
		ld   r1, 0(r16)
		addi r16, r16, 64
		addi r10, r10, -1
		bnez r10, loop
	idle:
		jmp idle
	`)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload("probe", "test kernel", "streaming", false,
		func() (*Program, *Memory) { return prog, NewMemory() })
	sys, err := NewSystem(DefaultConfig(PFNone), []Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2000, 1_000_000); err != nil {
		t.Fatal(err)
	}
	res := sys.Snapshot()
	if res.IPC[0] <= 0 {
		t.Errorf("IPC = %v", res.IPC[0])
	}
	if res.L1D[0].Accesses == 0 {
		t.Error("no L1D traffic")
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig(PFBFetch)
	if cfg.CPU.Width != 4 || cfg.CPU.ROBEntries != 192 {
		t.Errorf("core config = %+v", cfg.CPU)
	}
	if cfg.LLCPerCore != 2<<20 {
		t.Errorf("LLC per core = %d", cfg.LLCPerCore)
	}
	if cfg.BFetch.PathThreshold != 0.75 || cfg.BFetch.FilterThreshold != 3 {
		t.Errorf("B-Fetch thresholds = %+v", cfg.BFetch)
	}
}

func TestTableIIExperimentPrints(t *testing.T) {
	e, err := ExperimentByID("tab2")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(DefaultExperimentParams())
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	for _, want := range []string{"192-entry ROB", "64KB", "256KB", "2MB/core", "200-cycle"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q:\n%s", want, s)
		}
	}
}
