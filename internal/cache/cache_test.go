package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fixedLevel is a backing store with constant latency, for unit tests.
type fixedLevel struct {
	latency  uint64
	accesses uint64
}

func (f *fixedLevel) Access(req Request, now uint64) uint64 {
	f.accesses++
	return now + f.latency
}

func smallCache(t *testing.T, next Level) *Cache {
	t.Helper()
	// 4 sets × 2 ways × 64 B = 512 B.
	return New(Config{Name: "T", Bytes: 512, Ways: 2, Latency: 2}, next)
}

func TestHitMiss(t *testing.T) {
	back := &fixedLevel{latency: 100}
	c := smallCache(t, back)
	d1 := c.Access(Request{BlockAddr: 1}, 0)
	if d1 != 102 {
		t.Errorf("miss completion = %d, want 102", d1)
	}
	d2 := c.Access(Request{BlockAddr: 1}, 200)
	if d2 != 202 {
		t.Errorf("hit completion = %d, want 202", d2)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestInFlightMerge(t *testing.T) {
	back := &fixedLevel{latency: 100}
	c := smallCache(t, back)
	c.Access(Request{BlockAddr: 1}, 0) // fills at 102
	d := c.Access(Request{BlockAddr: 1}, 10)
	if d != 102 {
		t.Errorf("merged access completes at %d, want 102 (the in-flight fill)", d)
	}
	if c.Stats.MergedInFlight != 1 {
		t.Errorf("merge not counted: %+v", c.Stats)
	}
	if back.accesses != 1 {
		t.Errorf("backing accesses = %d, want 1 (merged)", back.accesses)
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := smallCache(t, &fixedLevel{latency: 10})
	// Blocks 0, 4, 8 map to set 0 (4 sets); 2 ways.
	c.Access(Request{BlockAddr: 0}, 0)
	c.Access(Request{BlockAddr: 4}, 1)
	c.Access(Request{BlockAddr: 0}, 2) // touch 0; 4 is now LRU
	c.Access(Request{BlockAddr: 8}, 3) // evicts 4
	if !c.Contains(0) || c.Contains(4) || !c.Contains(8) {
		t.Errorf("LRU eviction wrong: 0:%v 4:%v 8:%v", c.Contains(0), c.Contains(4), c.Contains(8))
	}
}

func TestWritebackOnDirtyEvict(t *testing.T) {
	back := &fixedLevel{latency: 10}
	c := smallCache(t, back)
	c.Access(Request{BlockAddr: 0, Kind: Write}, 0)
	c.Access(Request{BlockAddr: 4}, 1)
	c.Access(Request{BlockAddr: 8}, 2) // evicts dirty block 0
	// backing saw: fill 0, fill 4, fill 8, writeback 0 = 4 accesses.
	if back.accesses != 4 {
		t.Errorf("backing accesses = %d, want 4 (3 fills + 1 writeback)", back.accesses)
	}
}

func TestWritebackIntoNextCache(t *testing.T) {
	back := &fixedLevel{latency: 10}
	l2 := New(Config{Name: "L2", Bytes: 1024, Ways: 2, Latency: 5}, back)
	l1 := smallCache(t, l2)
	l1.Access(Request{BlockAddr: 0, Kind: Write}, 0)
	l1.Access(Request{BlockAddr: 4}, 1)
	l1.Access(Request{BlockAddr: 8}, 2) // dirty 0 written back into L2
	if !l2.Contains(0) {
		t.Error("writeback victim not present in L2")
	}
}

func TestPrefetchUsefulUseless(t *testing.T) {
	var fb recorder
	c := smallCache(t, &fixedLevel{latency: 10})
	c.SetFeedback(&fb)

	c.Access(Request{BlockAddr: 1, Kind: PrefetchFill, LoadPC: 0xA0}, 0)
	c.Access(Request{BlockAddr: 1, Kind: Read}, 5) // demand touch → useful
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("useful = %d", c.Stats.PrefetchUseful)
	}
	if len(fb.useful) != 1 || fb.useful[0] != 0xA0 {
		t.Errorf("useful feedback = %v", fb.useful)
	}
	// A second demand touch must not double-count.
	c.Access(Request{BlockAddr: 1, Kind: Read}, 6)
	if c.Stats.PrefetchUseful != 1 {
		t.Error("useful double-counted")
	}

	// Prefetch into set 1 then evict untouched.
	c.Access(Request{BlockAddr: 5, Kind: PrefetchFill, LoadPC: 0xB0}, 10)
	c.Access(Request{BlockAddr: 9, Kind: Read}, 11)
	c.Access(Request{BlockAddr: 13, Kind: Read}, 12) // set 1 full; next evicts
	c.Access(Request{BlockAddr: 17, Kind: Read}, 13)
	if c.Stats.PrefetchUseless != 1 {
		t.Errorf("useless = %d (stats %+v)", c.Stats.PrefetchUseless, c.Stats)
	}
	if len(fb.useless) != 1 || fb.useless[0] != 0xB0 {
		t.Errorf("useless feedback = %v", fb.useless)
	}
}

type recorder struct {
	useful  []uint64
	useless []uint64
}

func (r *recorder) PrefetchUseful(loadPC uint64, _ uint64)  { r.useful = append(r.useful, loadPC) }
func (r *recorder) PrefetchUseless(loadPC uint64, _ uint64) { r.useless = append(r.useless, loadPC) }

func TestPerfectMode(t *testing.T) {
	back := &fixedLevel{latency: 1000}
	c := smallCache(t, back)
	c.Perfect = true
	if d := c.Access(Request{BlockAddr: 77}, 0); d != 2 {
		t.Errorf("perfect read completion = %d, want 2", d)
	}
	if back.accesses != 0 {
		t.Error("perfect mode should not touch backing store for reads")
	}
}

func TestDRAMBandwidthGate(t *testing.T) {
	d := NewDRAM()
	a := d.Access(Request{BlockAddr: 1}, 0)
	b := d.Access(Request{BlockAddr: 2}, 0)
	if a != 200 {
		t.Errorf("first fill = %d", a)
	}
	if b != 216 {
		t.Errorf("second fill = %d, want 216 (queued behind channel)", b)
	}
	if d.StallCycles != 16 {
		t.Errorf("stall cycles = %d", d.StallCycles)
	}
	// After the channel drains, no queueing.
	c := d.Access(Request{BlockAddr: 3}, 1000)
	if c != 1200 {
		t.Errorf("drained fill = %d", c)
	}
	if d.Transfers() != 3 {
		t.Errorf("transfers = %d", d.Transfers())
	}
}

func TestDRAMWritebackPosted(t *testing.T) {
	d := NewDRAM()
	done := d.Access(Request{BlockAddr: 1, Kind: Write}, 0)
	if done != 0 {
		t.Errorf("posted writeback completion = %d, want 0", done)
	}
	if d.Writebacks != 1 {
		t.Errorf("writebacks = %d", d.Writebacks)
	}
	// But it still occupies the channel.
	fill := d.Access(Request{BlockAddr: 2}, 0)
	if fill != 216 {
		t.Errorf("fill after writeback = %d, want 216", fill)
	}
}

func TestHierarchyASIDIsolation(t *testing.T) {
	dram := NewDRAM()
	llc := New(Config{Name: "L3", Bytes: 1 << 20, Ways: 16, Latency: 20}, dram)
	h0 := NewHierarchy(DefaultHierarchyConfig(), llc, 0)
	h1 := NewHierarchy(DefaultHierarchyConfig(), llc, 1)
	h0.Load(0x1000, 0)
	if h1.InL1(0x1000) {
		t.Error("cross-ASID aliasing in private caches")
	}
	// Same address, different ASIDs, must occupy distinct LLC blocks.
	h1.Load(0x1000, 100)
	if llc.Stats.Misses != 2 {
		t.Errorf("LLC misses = %d, want 2 (no cross-ASID sharing)", llc.Stats.Misses)
	}
}

func TestHierarchyPrefetchDedup(t *testing.T) {
	dram := NewDRAM()
	llc := New(Config{Name: "L3", Bytes: 1 << 20, Ways: 16, Latency: 20}, dram)
	h := NewHierarchy(DefaultHierarchyConfig(), llc, 0)
	if !h.Prefetch(0x2000, 0x400, 0) {
		t.Error("first prefetch dropped")
	}
	if h.Prefetch(0x2000, 0x400, 1) {
		t.Error("redundant prefetch not dropped")
	}
	if h.Prefetch(0x2010, 0x400, 2) {
		t.Error("prefetch to same block via different byte address not dropped")
	}
	if !h.InL1(0x2000) {
		t.Error("prefetched block not resident")
	}
	// A demand load to the prefetched block is a hit and marks it useful.
	h.Load(0x2008, 10)
	if h.L1D.Stats.PrefetchUseful != 1 {
		t.Errorf("useful = %d", h.L1D.Stats.PrefetchUseful)
	}
}

// Property: cache contents always match a reference model of set-associative
// LRU under random demand traffic (no prefetches, no in-flight subtleties —
// pure placement/replacement equivalence).
func TestQuickVsReferenceLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "Q", Bytes: 2048, Ways: 4, Latency: 1}, &fixedLevel{latency: 10})
		ref := newRefLRU(c.Sets(), c.Ways())
		for now := uint64(0); now < 400; now++ {
			ba := uint64(rng.Intn(64))
			c.Access(Request{BlockAddr: ba}, now)
			ref.access(ba)
		}
		for ba := uint64(0); ba < 64; ba++ {
			if c.Contains(ba) != ref.contains(ba) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// refLRU is an obviously-correct set-associative LRU model.
type refLRU struct {
	sets [][]uint64 // per-set MRU→LRU order of block addresses
	ways int
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{sets: make([][]uint64, sets), ways: ways}
}

func (r *refLRU) access(ba uint64) {
	s := int(ba) % len(r.sets)
	q := r.sets[s]
	for i, v := range q {
		if v == ba {
			q = append(append([]uint64{ba}, q[:i]...), q[i+1:]...)
			r.sets[s] = q
			return
		}
	}
	q = append([]uint64{ba}, q...)
	if len(q) > r.ways {
		q = q[:r.ways]
	}
	r.sets[s] = q
}

func (r *refLRU) contains(ba uint64) bool {
	for _, v := range r.sets[int(ba)%len(r.sets)] {
		if v == ba {
			return true
		}
	}
	return false
}
