// Package cache models the CMP memory hierarchy: set-associative write-back
// caches with LRU replacement, per-block prefetch metadata (for the paper's
// useful/useless accounting and B-Fetch's per-load filter feedback), and a
// functional-with-latency timing model.
//
// Timing model. An access walks the hierarchy at the cycle it issues and
// returns its completion cycle; blocks are installed immediately but carry a
// readyAt timestamp. A later access that finds a block with readyAt still in
// the future completes at readyAt — the same merging behaviour an MSHR file
// provides, at a fraction of the complexity. This preserves what a
// prefetching study needs: memory-level parallelism, pollution (installs
// evict victims), prefetch timeliness (a late prefetch still shortens the
// demand miss), and DRAM bandwidth contention (see Package-level DRAM).
package cache

import (
	"fmt"

	"repro/internal/obs"
)

// BlockBits is log2 of the cache block size; blocks are 64 bytes throughout,
// matching the paper.
const BlockBits = 6

// BlockBytes is the cache block size.
const BlockBytes = 1 << BlockBits

// AccessKind distinguishes traffic classes.
type AccessKind uint8

const (
	Read AccessKind = iota
	Write
	PrefetchFill
)

// Request is one hierarchy access. BlockAddr is the block-granular address
// (already ASID-extended by the caller for multiprogrammed runs).
type Request struct {
	BlockAddr uint64
	Kind      AccessKind
	// LoadPC is, for PrefetchFill requests, the PC of the load on whose
	// behalf the prefetcher issued the request; it flows into the block
	// metadata so eviction/use feedback can reach the per-load filter.
	LoadPC uint64
	// Class, when non-nil on a demand Read, collects CPI attribution for
	// the load as the request walks the hierarchy (see loadclass.go). It
	// rides down miss recursion and through deferred shared-port replay.
	Class *LoadClass
}

// Level is anything that can service a block request: a next-level cache or
// the DRAM model.
type Level interface {
	Access(req Request, now uint64) (doneAt uint64)
}

// FeedbackHandler receives prefetch-quality feedback from the L1D: a
// prefetched block was used by a demand access, or was evicted untouched.
// B-Fetch's per-load filter and the Figure 11 accounting both hang off this.
type FeedbackHandler interface {
	PrefetchUseful(loadPC uint64, blockAddr uint64)
	PrefetchUseless(loadPC uint64, blockAddr uint64)
}

type block struct {
	valid   bool
	tag     uint64 // block address
	dirty   bool
	readyAt uint64
	lastUse uint64

	prefetched bool // filled by a prefetch and not yet touched by demand
	pfLoadPC   uint64
	pfWasPf    bool // filled by prefetch at some point (for useful counting)
}

// Stats counts one cache's traffic.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Writes    uint64
	Evictions uint64

	PrefetchFills   uint64 // prefetch fills installed at this level
	PrefetchUseful  uint64 // prefetched blocks later touched by demand
	PrefetchUseless uint64 // prefetched blocks evicted untouched
	MergedInFlight  uint64 // accesses that hit a block still being filled
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Config sizes one cache.
type Config struct {
	Name     string
	Bytes    int    // total capacity
	Ways     int    // associativity
	Latency  uint64 // access latency in cycles
	Feedback bool   // deliver prefetch feedback from this level (L1D only)

	// Banks > 1 slices the cache into address-interleaved banks (power of
	// two; bank = low block-address bits) whose single read/write port
	// serializes same-cycle accesses: each access holds the bank for
	// BankBusy cycles, and later arrivals queue behind it. Used on the
	// shared LLC for scale-out configurations; Banks <= 1 (the default)
	// is the original unbanked timing.
	Banks    int
	BankBusy uint64
	// MSHRs caps outstanding misses per bank (0 = unbounded): a miss that
	// finds every MSHR busy waits for the earliest-completing fill to
	// drain. Only meaningful with Banks > 1.
	MSHRs int
}

// llcBank is one bank's port/MSHR occupancy state and counters.
type llcBank struct {
	nextFree uint64   // port free cycle
	mshr     []uint64 // fill-completion cycle per outstanding miss

	accesses    uint64
	queueCycles uint64 // cycles accesses waited for the bank port
	busyCycles  uint64 // port occupancy (accesses × BankBusy)
	mshrStalls  uint64 // misses that found all MSHRs busy
	mshrCycles  uint64 // cycles those misses waited for a free MSHR
}

// BankStats is a read-only snapshot of one bank's counters.
type BankStats struct {
	Accesses    uint64
	QueueCycles uint64
	BusyCycles  uint64
	MSHRStalls  uint64
	MSHRCycles  uint64
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg   Config  //bfetch:noreset configuration
	sets  int     //bfetch:noreset configuration
	ways  int     //bfetch:noreset configuration
	data  []block //bfetch:noreset cache contents persist across the window boundary
	next  Level   //bfetch:noreset wiring
	Stats Stats

	feedback FeedbackHandler //bfetch:noreset wiring

	// lc, when set (the L1D of an assembled system), classifies every
	// prefetch's lifecycle: issue, first use (timely or late), untouched
	// eviction, and pollution. All hooks are nil-safe no-ops when unset.
	lc *obs.Lifecycle //bfetch:noreset wiring

	// Perfect, when set on a first-level data cache, makes every demand
	// read complete at the hit latency: the paper's Perfect L1-D prefetcher
	// upper bound (Figure 1).
	Perfect bool //bfetch:noreset configuration

	// port, when set on a private cache, receives patch registrations for
	// blocks installed with a pending (sentinel) readyAt; the simulator
	// services it at end of cycle. See SharedPort.
	port *SharedPort //bfetch:noreset wiring

	banks    []llcBank
	bankMask uint64 //bfetch:noreset configuration

	// classLevel is the attribution level a hit at this cache stamps into a
	// classified request (see loadclass.go); inferred from the name.
	classLevel uint8 //bfetch:noreset configuration
}

// New builds a cache in front of next.
func New(cfg Config, next Level) *Cache {
	if next == nil {
		panic("cache: nil next level")
	}
	blocks := cfg.Bytes / BlockBytes
	if cfg.Ways <= 0 || blocks%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d blocks not divisible into %d ways", cfg.Name, blocks, cfg.Ways))
	}
	sets := blocks / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, sets))
	}
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		ways:       cfg.Ways,
		data:       make([]block, sets*cfg.Ways),
		next:       next,
		classLevel: classLevelOf(cfg.Name),
	}
	if cfg.Banks > 1 {
		if cfg.Banks&(cfg.Banks-1) != 0 {
			panic(fmt.Sprintf("cache %s: %d banks is not a power of two", cfg.Name, cfg.Banks))
		}
		c.banks = make([]llcBank, cfg.Banks)
		c.bankMask = uint64(cfg.Banks - 1)
		if cfg.MSHRs > 0 {
			for i := range c.banks {
				c.banks[i].mshr = make([]uint64, cfg.MSHRs)
			}
		}
	}
	return c
}

// Banks returns the bank count (1 when unbanked).
func (c *Cache) Banks() int {
	if c.banks == nil {
		return 1
	}
	return len(c.banks)
}

// BankSnapshot returns bank i's counters (zero value when unbanked).
func (c *Cache) BankSnapshot(i int) BankStats {
	if c.banks == nil {
		return BankStats{}
	}
	b := &c.banks[i]
	return BankStats{
		Accesses: b.accesses, QueueCycles: b.queueCycles, BusyCycles: b.busyCycles,
		MSHRStalls: b.mshrStalls, MSHRCycles: b.mshrCycles,
	}
}

// ResetStats zeroes the traffic counters and bank occupancy at a
// measurement-window boundary; cache contents are deliberately kept warm.
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	for i := range c.banks {
		b := &c.banks[i]
		b.nextFree = 0
		for j := range b.mshr {
			b.mshr[j] = 0
		}
		b.accesses, b.queueCycles, b.busyCycles = 0, 0, 0
		b.mshrStalls, b.mshrCycles = 0, 0
	}
}

// SetFeedback registers the prefetch feedback sink (normally the core's
// prefetcher adapter); only meaningful on the L1D.
func (c *Cache) SetFeedback(h FeedbackHandler) { c.feedback = h }

// SetLifecycle attaches the prefetch lifecycle classifier (nil detaches);
// only meaningful on the L1D, where prefetches fill.
func (c *Cache) SetLifecycle(lc *obs.Lifecycle) { c.lc = lc }

// PendingPrefetched counts resident prefetch-filled blocks not yet touched
// by demand. A stats reset credits these to the new window's issued count
// (obs.Lifecycle.CarryIn) so that the useful/useless events they generate
// later keep useful+useless <= issued within every measurement window.
// Cold path: called only at reset, never per access.
func (c *Cache) PendingPrefetched() uint64 {
	var n uint64
	for i := range c.data {
		if c.data[i].valid && c.data[i].prefetched {
			n++
		}
	}
	return n
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets and Ways expose geometry (used by storage accounting and tests).
func (c *Cache) Sets() int { return c.sets }
func (c *Cache) Ways() int { return c.ways }

// Blocks returns the total block count (used for the paper's "additional
// cache bits" overhead accounting).
func (c *Cache) Blocks() int { return c.sets * c.ways }

//bfetch:hotpath
func (c *Cache) setOf(blockAddr uint64) []block {
	s := int(blockAddr & uint64(c.sets-1))
	return c.data[s*c.ways : (s+1)*c.ways]
}

// lookup returns the way holding blockAddr, or nil.
//
//bfetch:hotpath
func (c *Cache) lookup(blockAddr uint64) *block {
	set := c.setOf(blockAddr)
	for i := range set {
		if set[i].valid && set[i].tag == blockAddr {
			return &set[i]
		}
	}
	return nil
}

// Contains reports whether the block is present (used by prefetch-queue
// dedup and tests); it does not touch LRU state.
//
//bfetch:hotpath
func (c *Cache) Contains(blockAddr uint64) bool { return c.lookup(blockAddr) != nil }

// victim returns the LRU way of the set, evicting its current contents.
// pfFill marks evictions caused by a prefetch-fill install, which arm the
// pollution detector for the displaced block.
//
//bfetch:hotpath
func (c *Cache) victim(blockAddr uint64, now uint64, pfFill bool) *block {
	set := c.setOf(blockAddr)
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if set[i].lastUse < v.lastUse {
			v = &set[i]
		}
	}
	if v.valid {
		if pfFill {
			c.lc.FillVictim(v.tag)
		}
		c.evict(v, now)
	}
	return v
}

//bfetch:hotpath
func (c *Cache) evict(b *block, now uint64) {
	c.Stats.Evictions++
	if b.prefetched {
		c.Stats.PrefetchUseless++
		c.lc.Evicted(b.pfLoadPC, b.tag, now, b.readyAt)
		if c.feedback != nil {
			c.feedback.PrefetchUseless(b.pfLoadPC, b.tag)
		}
	}
	if b.dirty {
		c.writeback(Request{BlockAddr: b.tag, Kind: Write}, now)
	}
	b.valid = false
}

// writeback pushes a dirty block to the next level, off the critical path.
//
//bfetch:hotpath
func (c *Cache) writeback(req Request, now uint64) {
	if nc, ok := c.next.(*Cache); ok {
		nc.WritebackInstall(req, now)
		return
	}
	// DRAM or SharedPort: posted write, charge bandwidth only.
	c.next.Access(req, now)
}

// WritebackInstall absorbs a dirty block arriving from an upper level:
// present → mark dirty, absent → allocate (non-inclusive hierarchy). On a
// banked cache the writeback occupies the bank port like any other access.
//
//bfetch:hotpath
func (c *Cache) WritebackInstall(req Request, now uint64) {
	if c.banks != nil {
		now, _ = c.bankArb(req.BlockAddr, now)
	}
	if b := c.lookup(req.BlockAddr); b != nil {
		b.dirty = true
		return
	}
	v := c.victim(req.BlockAddr, now, false)
	*v = block{valid: true, tag: req.BlockAddr, dirty: true, readyAt: now, lastUse: now}
}

// bankArb claims blockAddr's bank port at or after now, returning the grant
// cycle. Within a cycle, grant order is arrival order — which the simulator
// makes deterministic by servicing per-core ports in core-index order.
//
//bfetch:hotpath
func (c *Cache) bankArb(blockAddr, now uint64) (uint64, *llcBank) {
	b := &c.banks[blockAddr&c.bankMask]
	b.accesses++
	if b.nextFree > now {
		b.queueCycles += b.nextFree - now
		now = b.nextFree
	}
	b.nextFree = now + c.cfg.BankBusy
	b.busyCycles += c.cfg.BankBusy
	return now, b
}

// Access services a request, returning its completion cycle.
//
//bfetch:hotpath
func (c *Cache) Access(req Request, now uint64) uint64 {
	c.Stats.Accesses++
	if req.Kind == Write {
		c.Stats.Writes++
	}

	if c.Perfect && req.Kind == Read {
		c.Stats.Hits++
		if req.Class != nil {
			req.Class.Level = c.classLevel
		}
		return now + c.cfg.Latency
	}

	var bank *llcBank
	if c.banks != nil {
		arrived := now
		now, bank = c.bankArb(req.BlockAddr, now)
		if req.Class != nil {
			req.Class.BankQ += now - arrived
		}
	}

	if b := c.lookup(req.BlockAddr); b != nil {
		c.Stats.Hits++
		b.lastUse = now
		if req.Kind == Write {
			b.dirty = true
		}
		done := now + c.cfg.Latency
		if req.Kind != PrefetchFill && b.prefetched {
			// First demand touch of a prefetched block: it was useful — and
			// late if the demand still had to wait on the in-flight fill.
			b.prefetched = false
			c.Stats.PrefetchUseful++
			c.lc.Used(b.pfLoadPC, b.tag, now, b.readyAt, b.readyAt > done)
			if c.feedback != nil {
				c.feedback.PrefetchUseful(b.pfLoadPC, b.tag)
			}
		}
		if req.Class != nil {
			req.Class.Level = c.classLevel
			if b.pfWasPf && b.readyAt > done {
				// The demand merged with an in-flight prefetch fill: the
				// prefetch was late, but it partially hid the miss.
				req.Class.PFLate = true
			}
		}
		if b.readyAt > done {
			// Block still in flight: merge with the outstanding fill.
			c.Stats.MergedInFlight++
			done = b.readyAt
		}
		return done
	}

	// Miss: fetch from below, install here. A store miss fetches the block
	// like a read (write-allocate / read-for-ownership): the Write kind is
	// reserved for writebacks, which take the off-critical-path route in
	// writeback().
	c.Stats.Misses++
	fill := req
	if fill.Kind == Write {
		fill.Kind = Read
	}
	if req.Kind == PrefetchFill {
		c.Stats.PrefetchFills++
		c.lc.Issued(req.LoadPC, req.BlockAddr, now)
	} else {
		c.lc.DemandMiss(0, req.BlockAddr, now)
	}
	if bank != nil && bank.mshr != nil {
		// Claim the earliest-draining MSHR; a miss that finds every slot
		// busy past now waits for one to free before its fill can issue.
		slot := 0
		for i := 1; i < len(bank.mshr); i++ {
			if bank.mshr[i] < bank.mshr[slot] {
				slot = i
			}
		}
		if bank.mshr[slot] > now {
			bank.mshrStalls++
			bank.mshrCycles += bank.mshr[slot] - now
			if req.Class != nil {
				req.Class.MSHRQ += bank.mshr[slot] - now
			}
			now = bank.mshr[slot]
		}
		fillDone := c.next.Access(fill, now+c.cfg.Latency)
		bank.mshr[slot] = fillDone
		return c.install(req, now, fillDone)
	}
	fillDone := c.next.Access(fill, now+c.cfg.Latency)
	return c.install(req, now, fillDone)
}

// install places the missed block, registering a port patch when the fill's
// completion is still pending (deferred shared-level access).
//
//bfetch:hotpath
func (c *Cache) install(req Request, now, fillDone uint64) uint64 {
	v := c.victim(req.BlockAddr, now, req.Kind == PrefetchFill)
	*v = block{
		valid:   true,
		tag:     req.BlockAddr,
		dirty:   req.Kind == Write,
		readyAt: fillDone,
		lastUse: now,
	}
	if req.Kind == PrefetchFill {
		v.prefetched = true
		v.pfLoadPC = req.LoadPC
		v.pfWasPf = true
	}
	if IsPending(fillDone) {
		c.port.Defer(&v.readyAt, fillDone)
	}
	return fillDone
}

// RegisterObs exports the cache's counters into the metrics registry under
// prefix (e.g. "c0.l1d."). Collectors read the live Stats struct, so the
// hot path keeps its plain field increments.
func (c *Cache) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"accesses", func() uint64 { return c.Stats.Accesses })
	reg.Func(prefix+"hits", func() uint64 { return c.Stats.Hits })
	reg.Func(prefix+"misses", func() uint64 { return c.Stats.Misses })
	reg.Func(prefix+"writes", func() uint64 { return c.Stats.Writes })
	reg.Func(prefix+"evictions", func() uint64 { return c.Stats.Evictions })
	reg.Func(prefix+"pf_fills", func() uint64 { return c.Stats.PrefetchFills })
	reg.Func(prefix+"pf_useful", func() uint64 { return c.Stats.PrefetchUseful })
	reg.Func(prefix+"pf_useless", func() uint64 { return c.Stats.PrefetchUseless })
	reg.Func(prefix+"merged_inflight", func() uint64 { return c.Stats.MergedInFlight })
	for i := range c.banks {
		b := &c.banks[i]
		p := fmt.Sprintf("%sb%d.", prefix, i)
		reg.Func(p+"accesses", func() uint64 { return b.accesses })
		reg.Func(p+"queue_cycles", func() uint64 { return b.queueCycles })
		reg.Func(p+"busy_cycles", func() uint64 { return b.busyCycles })
		reg.Func(p+"mshr_stalls", func() uint64 { return b.mshrStalls })
		reg.Func(p+"mshr_cycles", func() uint64 { return b.mshrCycles })
	}
}

// Invalidate removes a block if present, without writeback (test support).
func (c *Cache) Invalidate(blockAddr uint64) {
	if b := c.lookup(blockAddr); b != nil {
		b.valid = false
	}
}
