package cache

// End-to-end lifecycle classification through the real cache access path:
// hand-built prefetch-fill and demand sequences must classify as timely,
// late, useless-evicted, and polluting exactly as the taxonomy defines.

import (
	"testing"

	"repro/internal/obs"
)

// newLifecycleCache builds a tiny direct-mapped L1 over DRAM so eviction
// targets are fully controlled: 4 sets × 1 way, 2-cycle hits, 200-cycle
// fills.
func newLifecycleCache(t *testing.T) (*Cache, *obs.Lifecycle, *obs.Registry) {
	t.Helper()
	dram := NewDRAM()
	c := New(Config{Name: "L1D", Bytes: 4 * BlockBytes, Ways: 1, Latency: 2}, dram)
	reg := obs.NewRegistry()
	lc := obs.NewLifecycle(reg, "pf.")
	c.SetLifecycle(lc)
	return c, lc, reg
}

func TestCacheClassifiesTimelyVsLate(t *testing.T) {
	c, lc, _ := newLifecycleCache(t)

	// Timely: fill block 0 at cycle 0 (ready ≈ 200+), first touch at 1000.
	c.Access(Request{BlockAddr: 0, Kind: PrefetchFill, LoadPC: 0x100}, 0)
	c.Access(Request{BlockAddr: 0, Kind: Read}, 1000)

	// Late: fill block 1 at cycle 1000, demand arrives at 1010 while the
	// fill is still in flight.
	c.Access(Request{BlockAddr: 1, Kind: PrefetchFill, LoadPC: 0x104}, 1000)
	c.Access(Request{BlockAddr: 1, Kind: Read}, 1010)

	st := lc.Stats()
	if st.Issued != 2 || st.UsefulTimely != 1 || st.UsefulLate != 1 {
		t.Errorf("stats = %+v, want issued 2, timely 1, late 1", st)
	}
	// Only the first demand touch classifies: a re-read adds nothing.
	c.Access(Request{BlockAddr: 0, Kind: Read}, 2000)
	if got := lc.Stats(); got.Useful() != 2 {
		t.Errorf("re-read reclassified: %+v", got)
	}
}

func TestCacheClassifiesUselessEviction(t *testing.T) {
	c, lc, _ := newLifecycleCache(t)

	// Prefetch block 0 into set 0, then displace it untouched with a demand
	// read of block 4 (same set in a 4-set direct-mapped cache).
	c.Access(Request{BlockAddr: 0, Kind: PrefetchFill, LoadPC: 0x100}, 0)
	c.Access(Request{BlockAddr: 4, Kind: Read}, 1000)

	st := lc.Stats()
	if st.UselessEvicted != 1 {
		t.Errorf("useless = %d, want 1 (stats %+v)", st.UselessEvicted, st)
	}
	if st.Useful() != 0 {
		t.Errorf("displaced untouched prefetch counted useful: %+v", st)
	}
}

func TestCacheClassifiesPollution(t *testing.T) {
	c, lc, _ := newLifecycleCache(t)

	// The program is using block 4 (set 0); a prefetch fill of block 0
	// displaces it; the demand re-miss of block 4 is pollution.
	c.Access(Request{BlockAddr: 4, Kind: Read}, 0)
	c.Access(Request{BlockAddr: 0, Kind: PrefetchFill, LoadPC: 0x100}, 500)
	c.Access(Request{BlockAddr: 4, Kind: Read}, 1000)

	st := lc.Stats()
	if st.Polluting != 1 {
		t.Errorf("polluting = %d, want 1 (stats %+v)", st.Polluting, st)
	}

	// A demand-caused eviction must NOT arm the pollution detector: block 0
	// (prefetched, now evicted by demand block 8) re-missing is ordinary.
	c.Access(Request{BlockAddr: 8, Kind: Read}, 2000)
	c.Access(Request{BlockAddr: 0, Kind: Read}, 3000)
	if got := lc.Stats(); got.Polluting != 1 {
		t.Errorf("demand eviction armed pollution detector: %+v", got)
	}
}

// TestLifecycleMatchesCacheStats pins the classifier to the cache's own
// feedback counters: useful (timely+late) must equal PrefetchUseful and
// useless-evicted must equal PrefetchUseless under a mixed workload, so the
// harness tables sourced from either agree.
func TestLifecycleMatchesCacheStats(t *testing.T) {
	c, lc, _ := newLifecycleCache(t)

	now := uint64(0)
	for i := 0; i < 200; i++ {
		ba := uint64(i*3) % 16
		kind := Read
		if i%4 == 0 {
			kind = PrefetchFill
		}
		c.Access(Request{BlockAddr: ba, Kind: kind, LoadPC: 0x100}, now)
		now += uint64(i%7) * 50
	}

	st := lc.Stats()
	if st.Useful() != c.Stats.PrefetchUseful {
		t.Errorf("lifecycle useful %d != cache PrefetchUseful %d",
			st.Useful(), c.Stats.PrefetchUseful)
	}
	if st.UselessEvicted > c.Stats.PrefetchUseless {
		t.Errorf("lifecycle useless %d > cache PrefetchUseless %d",
			st.UselessEvicted, c.Stats.PrefetchUseless)
	}
}

func TestPendingPrefetched(t *testing.T) {
	c, _, _ := newLifecycleCache(t)
	c.Access(Request{BlockAddr: 0, Kind: PrefetchFill, LoadPC: 0x100}, 0)
	c.Access(Request{BlockAddr: 1, Kind: PrefetchFill, LoadPC: 0x104}, 0)
	c.Access(Request{BlockAddr: 2, Kind: Read}, 0)
	if n := c.PendingPrefetched(); n != 2 {
		t.Errorf("PendingPrefetched = %d, want 2", n)
	}
	// A demand touch graduates the block out of the pending population.
	c.Access(Request{BlockAddr: 0, Kind: Read}, 1000)
	if n := c.PendingPrefetched(); n != 1 {
		t.Errorf("after touch: PendingPrefetched = %d, want 1", n)
	}
}
