package cache

// Per-load CPI attribution. A demand load that carries a *LoadClass through
// the hierarchy gets it annotated with the level that serviced the fill and
// the cycles the request spent queued at each structural hazard on the way
// (LLC bank port, LLC MSHR file, DRAM channel). The core's cycle-attribution
// stack (internal/obs CPIStack, charged from internal/cpu) replays those
// annotations as a piecewise walk over the load's head-of-ROB stall.
//
// Annotation timing. For a synchronous hierarchy the class is complete when
// Access returns. For a ported hierarchy (SharedPort) the shared-level legs
// run at end-of-cycle Service, so the class is complete once the issuing
// cycle's ports have been serviced — the same argument that makes deferred
// readyAt patching exact (see port.go) covers it: attribution only reads the
// class at cycles strictly after the issuing one.

// Load serving levels, deepest level that supplied the block.
const (
	LoadLevelL1 uint8 = iota
	LoadLevelL2
	LoadLevelLLC
	LoadLevelDRAM
)

// LoadClass is one demand load's attribution record. Queue waits are
// accumulated (a request can cross several queued structures); the level is
// last-writer-wins down the recursion, so it names the deepest level touched.
type LoadClass struct {
	Level  uint8  // Load serving level (LoadLevel*)
	BankQ  uint64 // cycles waiting for the LLC bank port
	MSHRQ  uint64 // cycles waiting for a free LLC MSHR
	ChanQ  uint64 // cycles waiting for a DRAM channel (bus + in-flight slot)
	PFLate bool   // merged with an in-flight prefetch fill (late, partially hidden)
}

// classLevelOf maps a cache's configured name to its attribution level.
// Private caches are named L1D/L2 by NewHierarchy; anything else (the shared
// "L3", ad-hoc test caches) classifies as the shared LLC level.
func classLevelOf(name string) uint8 {
	switch name {
	case "L1D":
		return LoadLevelL1
	case "L2":
		return LoadLevelL2
	}
	return LoadLevelLLC
}
