package cache

import "repro/internal/obs"

// DRAM is the off-chip memory model: a fixed access latency plus a channel
// bandwidth gate. Every block transfer (demand fill, prefetch fill, or
// writeback) occupies the channel for CyclesPerFill cycles; transfers queue
// behind one another, so prefetch-heavy or multiprogrammed runs feel the
// 12.8 GB/s memory-controller limit the paper imposes (§V-A).
//
// With a 3.2 GHz core clock, 12.8 GB/s is 64 bytes per 16 cycles, the
// default.
type DRAM struct {
	Latency       uint64 // access latency in cycles (Table II: 200)
	CyclesPerFill uint64 // channel occupancy per 64-byte transfer

	nextFree uint64

	// Traffic accounting.
	DemandFills   uint64
	PrefetchFills uint64
	Writebacks    uint64
	StallCycles   uint64 // cycles requests spent queued behind the channel
}

// NewDRAM returns the Table II DRAM model.
func NewDRAM() *DRAM {
	return &DRAM{Latency: 200, CyclesPerFill: 16}
}

// Access implements Level.
//
//bfetch:hotpath
func (d *DRAM) Access(req Request, now uint64) uint64 {
	start := now
	if d.nextFree > start {
		d.StallCycles += d.nextFree - start
		start = d.nextFree
	}
	d.nextFree = start + d.CyclesPerFill
	switch req.Kind {
	case PrefetchFill:
		d.PrefetchFills++
	case Write:
		d.Writebacks++
		// Writebacks are posted: they consume bandwidth but nothing waits
		// on them.
		return start
	default:
		d.DemandFills++
	}
	return start + d.Latency
}

// Transfers returns the total block transfers the channel carried.
func (d *DRAM) Transfers() uint64 { return d.DemandFills + d.PrefetchFills + d.Writebacks }

// RegisterObs exports the channel's traffic counters into the metrics
// registry under prefix (normally "dram.").
func (d *DRAM) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"demand_fills", func() uint64 { return d.DemandFills })
	reg.Func(prefix+"prefetch_fills", func() uint64 { return d.PrefetchFills })
	reg.Func(prefix+"writebacks", func() uint64 { return d.Writebacks })
	reg.Func(prefix+"stall_cycles", func() uint64 { return d.StallCycles })
}

// HierarchyConfig sizes one core's cache stack. The shared LLC and DRAM are
// created once per system and passed in.
type HierarchyConfig struct {
	L1Bytes   int
	L1Ways    int
	L1Latency uint64
	L2Bytes   int
	L2Ways    int
	L2Latency uint64
}

// DefaultHierarchyConfig returns the Table II per-core configuration:
// 64 KB 8-way 2-cycle L1D, 256 KB 8-way 10-cycle L2.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1Bytes: 64 << 10, L1Ways: 8, L1Latency: 2,
		L2Bytes: 256 << 10, L2Ways: 8, L2Latency: 10,
	}
}

// Hierarchy is one core's private cache stack in front of the shared levels.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
	// ASID tags every address so multiprogrammed address spaces do not
	// alias in the shared LLC.
	ASID uint64
}

// NewHierarchy builds a private L1D+L2 in front of the shared LLC.
func NewHierarchy(cfg HierarchyConfig, shared Level, asid int) *Hierarchy {
	l2 := New(Config{Name: "L2", Bytes: cfg.L2Bytes, Ways: cfg.L2Ways, Latency: cfg.L2Latency}, shared)
	l1 := New(Config{Name: "L1D", Bytes: cfg.L1Bytes, Ways: cfg.L1Ways, Latency: cfg.L1Latency, Feedback: true}, l2)
	return &Hierarchy{L1D: l1, L2: l2, ASID: uint64(asid)}
}

// extend tags a virtual byte address with the hierarchy's address-space ID.
// Workload addresses stay far below 2^48, so the tag bits are free.
//
//bfetch:hotpath
func (h *Hierarchy) extend(addr uint64) uint64 {
	return (addr >> BlockBits) | (h.ASID << 50)
}

// Load issues a demand read for the block containing addr, returning its
// completion cycle and whether it hit in the L1D.
//
//bfetch:hotpath
func (h *Hierarchy) Load(addr uint64, now uint64) (uint64, bool) {
	ba := h.extend(addr)
	hit := h.L1D.Perfect || h.L1D.Contains(ba)
	return h.L1D.Access(Request{BlockAddr: ba, Kind: Read}, now), hit
}

// Store issues a demand write (write-allocate) and returns its completion
// cycle; the core treats stores as posted at commit.
//
//bfetch:hotpath
func (h *Hierarchy) Store(addr uint64, now uint64) uint64 {
	return h.L1D.Access(Request{BlockAddr: h.extend(addr), Kind: Write}, now)
}

// Prefetch installs the block containing addr on behalf of loadPC. It
// returns false if the block was already present in the L1D (the prefetch
// was redundant and is dropped without touching lower levels).
//
//bfetch:hotpath
func (h *Hierarchy) Prefetch(addr uint64, loadPC uint64, now uint64) bool {
	ba := h.extend(addr)
	if h.L1D.Contains(ba) {
		return false
	}
	h.L1D.Access(Request{BlockAddr: ba, Kind: PrefetchFill, LoadPC: loadPC}, now)
	return true
}

// InL1 reports whether addr's block is resident in the L1D.
func (h *Hierarchy) InL1(addr uint64) bool { return h.L1D.Contains(h.extend(addr)) }
