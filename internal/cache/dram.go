package cache

import (
	"fmt"

	"repro/internal/obs"
)

// DRAM is the off-chip memory model: a fixed access latency plus a channel
// bandwidth gate. Every block transfer (demand fill, prefetch fill, or
// writeback) occupies a channel for CyclesPerFill cycles; transfers queue
// behind one another, so prefetch-heavy or multiprogrammed runs feel the
// 12.8 GB/s memory-controller limit the paper imposes (§V-A).
//
// With a 3.2 GHz core clock, 12.8 GB/s is 64 bytes per 16 cycles, the
// default.
//
// The default model has a single channel with unbounded in-flight transfers
// — exactly the original Table II gate. SetChannels opts into a scale-out
// controller: block addresses interleave across a power-of-two number of
// independent channels, and each channel additionally caps how many
// transfers may be in flight at once (command queued until the
// earliest-completing slot drains). Requests are granted FCFS in arrival
// order; arrival order itself is made deterministic by the simulator, which
// services per-core ports in core-index order within a cycle.
type DRAM struct {
	Latency       uint64 //bfetch:noreset configuration
	CyclesPerFill uint64 //bfetch:noreset configuration

	nextFree uint64 // single-channel fast path (chans == nil)

	chans       []dramChannel
	chanMask    uint64 //bfetch:noreset configuration
	maxInflight int    //bfetch:noreset configuration

	// Traffic accounting (aggregated across channels).
	DemandFills   uint64
	PrefetchFills uint64
	Writebacks    uint64
	StallCycles   uint64 // cycles requests spent queued behind a channel
}

// dramChannel is one independent channel's occupancy state and counters.
type dramChannel struct {
	nextFree uint64   // command/data bus free cycle
	slots    []uint64 // busy-until per in-flight transfer (len == maxInflight)

	transfers   uint64
	stallCycles uint64 // bus queueing delay absorbed by this channel
	slotCycles  uint64 // extra delay waiting for an in-flight slot
	busyCycles  uint64 // data-bus occupancy (transfers × CyclesPerFill)
}

// ChannelStats is a read-only snapshot of one channel's counters.
type ChannelStats struct {
	Transfers   uint64
	StallCycles uint64
	SlotCycles  uint64
	BusyCycles  uint64
}

// NewDRAM returns the Table II DRAM model.
func NewDRAM() *DRAM {
	return &DRAM{Latency: 200, CyclesPerFill: 16}
}

// SetChannels reconfigures the controller with `channels` address-interleaved
// channels (power of two) each capped at maxInflight concurrent transfers
// (0 = unbounded). channels <= 1 restores the single-channel model.
func (d *DRAM) SetChannels(channels, maxInflight int) error {
	if channels <= 1 {
		d.chans, d.chanMask, d.maxInflight = nil, 0, 0
		return nil
	}
	if channels&(channels-1) != 0 {
		return fmt.Errorf("cache: DRAM channels must be a power of two, got %d", channels)
	}
	d.chans = make([]dramChannel, channels)
	d.chanMask = uint64(channels - 1)
	d.maxInflight = maxInflight
	if maxInflight > 0 {
		for i := range d.chans {
			d.chans[i].slots = make([]uint64, maxInflight)
		}
	}
	return nil
}

// Channels returns the number of independent channels (1 for the default
// model).
func (d *DRAM) Channels() int {
	if d.chans == nil {
		return 1
	}
	return len(d.chans)
}

// ChannelSnapshot returns channel i's counters. For the single-channel
// default, channel 0 aliases the aggregate counters.
func (d *DRAM) ChannelSnapshot(i int) ChannelStats {
	if d.chans == nil {
		return ChannelStats{
			Transfers:   d.Transfers(),
			StallCycles: d.StallCycles,
			BusyCycles:  d.Transfers() * d.CyclesPerFill,
		}
	}
	c := &d.chans[i]
	return ChannelStats{Transfers: c.transfers, StallCycles: c.stallCycles, SlotCycles: c.slotCycles, BusyCycles: c.busyCycles}
}

// Access implements Level.
//
//bfetch:hotpath
func (d *DRAM) Access(req Request, now uint64) uint64 {
	start := now
	if d.chans == nil {
		if d.nextFree > start {
			d.StallCycles += d.nextFree - start
			if req.Class != nil {
				req.Class.ChanQ += d.nextFree - start
			}
			start = d.nextFree
		}
		d.nextFree = start + d.CyclesPerFill
	} else {
		c := &d.chans[req.BlockAddr&d.chanMask]
		if c.nextFree > start {
			c.stallCycles += c.nextFree - start
			d.StallCycles += c.nextFree - start
			if req.Class != nil {
				req.Class.ChanQ += c.nextFree - start
			}
			start = c.nextFree
		}
		if d.maxInflight > 0 {
			// Claim the earliest-draining in-flight slot; if all are busy
			// past start, the transfer waits for one to complete.
			slot := 0
			for i := 1; i < len(c.slots); i++ {
				if c.slots[i] < c.slots[slot] {
					slot = i
				}
			}
			if c.slots[slot] > start {
				c.slotCycles += c.slots[slot] - start
				d.StallCycles += c.slots[slot] - start
				if req.Class != nil {
					req.Class.ChanQ += c.slots[slot] - start
				}
				start = c.slots[slot]
			}
			if req.Kind == Write {
				c.slots[slot] = start + d.CyclesPerFill
			} else {
				c.slots[slot] = start + d.Latency
			}
		}
		c.nextFree = start + d.CyclesPerFill
		c.transfers++
		c.busyCycles += d.CyclesPerFill
	}
	switch req.Kind {
	case PrefetchFill:
		d.PrefetchFills++
	case Write:
		d.Writebacks++
		// Writebacks are posted: they consume bandwidth but nothing waits
		// on them.
		return start
	default:
		d.DemandFills++
		if req.Class != nil {
			req.Class.Level = LoadLevelDRAM
		}
	}
	return start + d.Latency
}

// Transfers returns the total block transfers the controller carried.
func (d *DRAM) Transfers() uint64 { return d.DemandFills + d.PrefetchFills + d.Writebacks }

// ResetStats zeroes the traffic counters and channel occupancy at a
// measurement-window boundary. The clock is monotonic across the boundary,
// so clearing occupancy declares the bus idle at window start — the same
// convention the caches use for block readyAt merging.
func (d *DRAM) ResetStats() {
	d.nextFree = 0
	for i := range d.chans {
		c := &d.chans[i]
		c.nextFree = 0
		for j := range c.slots {
			c.slots[j] = 0
		}
		c.transfers, c.stallCycles, c.slotCycles, c.busyCycles = 0, 0, 0, 0
	}
	d.DemandFills = 0
	d.PrefetchFills = 0
	d.Writebacks = 0
	d.StallCycles = 0
}

// RegisterObs exports the controller's traffic counters into the metrics
// registry under prefix (normally "dram."), plus per-channel occupancy and
// queueing-delay series when multiple channels are configured.
func (d *DRAM) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"demand_fills", func() uint64 { return d.DemandFills })
	reg.Func(prefix+"prefetch_fills", func() uint64 { return d.PrefetchFills })
	reg.Func(prefix+"writebacks", func() uint64 { return d.Writebacks })
	reg.Func(prefix+"stall_cycles", func() uint64 { return d.StallCycles })
	for i := range d.chans {
		c := &d.chans[i]
		p := fmt.Sprintf("%sch%d.", prefix, i)
		reg.Func(p+"transfers", func() uint64 { return c.transfers })
		reg.Func(p+"stall_cycles", func() uint64 { return c.stallCycles })
		reg.Func(p+"slot_cycles", func() uint64 { return c.slotCycles })
		reg.Func(p+"busy_cycles", func() uint64 { return c.busyCycles })
	}
}

// HierarchyConfig sizes one core's cache stack. The shared LLC and DRAM are
// created once per system and passed in.
type HierarchyConfig struct {
	L1Bytes   int
	L1Ways    int
	L1Latency uint64
	L2Bytes   int
	L2Ways    int
	L2Latency uint64
}

// DefaultHierarchyConfig returns the Table II per-core configuration:
// 64 KB 8-way 2-cycle L1D, 256 KB 8-way 10-cycle L2.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1Bytes: 64 << 10, L1Ways: 8, L1Latency: 2,
		L2Bytes: 256 << 10, L2Ways: 8, L2Latency: 10,
	}
}

// Hierarchy is one core's private cache stack in front of the shared levels.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
	// ASID tags every address so multiprogrammed address spaces do not
	// alias in the shared LLC.
	ASID uint64
	// Port, when non-nil, is the core's deferred gateway to the shared
	// levels; completion times carrying the pending bit are resolved when
	// the simulator services it at end of cycle.
	Port *SharedPort
}

// NewHierarchy builds a private L1D+L2 in front of the shared LLC.
func NewHierarchy(cfg HierarchyConfig, shared Level, asid int) *Hierarchy {
	l2 := New(Config{Name: "L2", Bytes: cfg.L2Bytes, Ways: cfg.L2Ways, Latency: cfg.L2Latency}, shared)
	l1 := New(Config{Name: "L1D", Bytes: cfg.L1Bytes, Ways: cfg.L1Ways, Latency: cfg.L1Latency, Feedback: true}, l2)
	return &Hierarchy{L1D: l1, L2: l2, ASID: uint64(asid)}
}

// NewHierarchyPorted builds a private stack whose shared-level traffic is
// deferred through the given per-core port (see SharedPort). The private
// caches register their pending block fills with the port so sentinel
// readyAt values are patched when the port is serviced.
func NewHierarchyPorted(cfg HierarchyConfig, port *SharedPort, asid int) *Hierarchy {
	h := NewHierarchy(cfg, port, asid)
	h.Port = port
	h.L1D.port = port
	h.L2.port = port
	return h
}

// DeferDone registers target (which currently holds the pending-tagged
// completion time sentinel) to be patched with the real completion cycle
// when the core's port is serviced.
//
//bfetch:hotpath
func (h *Hierarchy) DeferDone(target *uint64, sentinel uint64) {
	h.Port.Defer(target, sentinel)
}

// extend tags a virtual byte address with the hierarchy's address-space ID.
// Workload addresses stay far below 2^48, so the tag bits are free.
//
//bfetch:hotpath
func (h *Hierarchy) extend(addr uint64) uint64 {
	return (addr >> BlockBits) | (h.ASID << 50)
}

// Load issues a demand read for the block containing addr, returning its
// completion cycle and whether it hit in the L1D.
//
//bfetch:hotpath
func (h *Hierarchy) Load(addr uint64, now uint64) (uint64, bool) {
	ba := h.extend(addr)
	hit := h.L1D.Perfect || h.L1D.Contains(ba)
	return h.L1D.Access(Request{BlockAddr: ba, Kind: Read}, now), hit
}

// LoadClassified is Load with CPI attribution: cl (a reused per-ROB-entry
// record, zeroed by the caller) is annotated with the serving level and
// queue waits as the request walks the hierarchy. For deferred shared-level
// accesses the annotation completes at end-of-cycle port service, before
// any later cycle reads it.
//
//bfetch:hotpath
func (h *Hierarchy) LoadClassified(addr uint64, now uint64, cl *LoadClass) (uint64, bool) {
	ba := h.extend(addr)
	hit := h.L1D.Perfect || h.L1D.Contains(ba)
	return h.L1D.Access(Request{BlockAddr: ba, Kind: Read, Class: cl}, now), hit
}

// Store issues a demand write (write-allocate) and returns its completion
// cycle; the core treats stores as posted at commit.
//
//bfetch:hotpath
func (h *Hierarchy) Store(addr uint64, now uint64) uint64 {
	return h.L1D.Access(Request{BlockAddr: h.extend(addr), Kind: Write}, now)
}

// Prefetch installs the block containing addr on behalf of loadPC. It
// returns false if the block was already present in the L1D (the prefetch
// was redundant and is dropped without touching lower levels).
//
//bfetch:hotpath
func (h *Hierarchy) Prefetch(addr uint64, loadPC uint64, now uint64) bool {
	ba := h.extend(addr)
	if h.L1D.Contains(ba) {
		return false
	}
	h.L1D.Access(Request{BlockAddr: ba, Kind: PrefetchFill, LoadPC: loadPC}, now)
	return true
}

// InL1 reports whether addr's block is resident in the L1D.
func (h *Hierarchy) InL1(addr uint64) bool { return h.L1D.Contains(h.extend(addr)) }
