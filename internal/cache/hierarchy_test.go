package cache

import "testing"

// Hierarchy-level timing tests: the latency ladder of Table II must be
// visible end-to-end through a private L1D+L2 over a shared L3 and DRAM.

func tableIIStack() (*Hierarchy, *Cache, *DRAM) {
	dram := NewDRAM()
	llc := New(Config{Name: "L3", Bytes: 2 << 20, Ways: 16, Latency: 20}, dram)
	return NewHierarchy(DefaultHierarchyConfig(), llc, 0), llc, dram
}

func TestLatencyLadder(t *testing.T) {
	h, _, _ := tableIIStack()
	const addr = 0x4_0000

	// Cold: L1(2) + L2(10) + L3(20) + DRAM(200) = 232.
	done, hit := h.Load(addr, 0)
	if hit {
		t.Fatal("cold load hit")
	}
	if done != 232 {
		t.Errorf("cold load completes at %d, want 232", done)
	}

	// Warm L1: 2 cycles.
	done, hit = h.Load(addr, 1000)
	if !hit || done != 1002 {
		t.Errorf("L1 hit = %v, completes at %d, want 1002", hit, done)
	}

	// Evict from L1 only (fill conflicting blocks into its set), then the
	// block should come from L2 at 2+10.
	sets := h.L1D.Sets()
	for i := 1; i <= h.L1D.Ways(); i++ {
		h.Load(addr+uint64(i*sets*64), 2000+uint64(i))
	}
	if h.InL1(addr) {
		t.Fatal("victim block still in L1")
	}
	done, hit = h.Load(addr, 3000)
	if hit {
		t.Error("post-evict load reported as L1 hit")
	}
	if done != 3012 {
		t.Errorf("L2 hit completes at %d, want 3012", done)
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	h, _, dram := tableIIStack()
	h.Store(0x8000, 0)
	if !h.InL1(0x8000) {
		t.Error("store did not allocate in L1")
	}
	if dram.DemandFills != 1 {
		t.Errorf("store miss fills = %d, want 1", dram.DemandFills)
	}
	// A subsequent load hits the dirty block.
	if _, hit := h.Load(0x8000, 100); !hit {
		t.Error("load after store missed")
	}
}

func TestPrefetchFillsWholeLadder(t *testing.T) {
	h, llc, _ := tableIIStack()
	h.Prefetch(0xC000, 0x1000, 0)
	if !h.InL1(0xC000) {
		t.Error("prefetch not installed in L1")
	}
	if !h.L2.Contains(h.extend(0xC000)) || !llc.Contains(h.extend(0xC000)) {
		t.Error("prefetch fill did not populate lower levels")
	}
	// Demand load merges with the in-flight prefetch rather than
	// re-walking the hierarchy.
	done, hit := h.Load(0xC000, 10)
	if !hit {
		t.Error("demand on prefetched block missed")
	}
	if done != 232 { // the prefetch's fill time dominates
		t.Errorf("merged completion %d, want 232", done)
	}
	// Well after the fill, it's a plain 2-cycle hit.
	if done, _ := h.Load(0xC000, 5000); done != 5002 {
		t.Errorf("late hit completes at %d", done)
	}
}

func TestSharedLLCConflict(t *testing.T) {
	// Two cores thrash one LLC set through private hierarchies; the shared
	// cache must keep both ASIDs' blocks distinct while evicting by LRU.
	dram := NewDRAM()
	llc := New(Config{Name: "L3", Bytes: 1 << 20, Ways: 2, Latency: 20}, dram)
	h0 := NewHierarchy(DefaultHierarchyConfig(), llc, 0)
	h1 := NewHierarchy(DefaultHierarchyConfig(), llc, 1)
	h0.Load(0x10000, 0)
	h1.Load(0x10000, 1)
	before := dram.DemandFills
	if before != 2 {
		t.Fatalf("fills = %d, want 2 (no cross-ASID sharing)", before)
	}
	// Same ASID re-access: no new fill.
	h0.Load(0x10000, 10)
	if dram.DemandFills != before {
		t.Error("re-access refilled from DRAM")
	}
}
