package cache

import "testing"

// BenchmarkCacheAccess measures a demand load walking the full private
// hierarchy over a 1 MB working set: mostly L1 hits with a steady diet of
// L2/LLC refills, the mix the simulator sees on memory-heavy workloads.
func BenchmarkCacheAccess(b *testing.B) {
	dram := NewDRAM()
	llc := New(Config{Name: "L3", Bytes: 2 << 20, Ways: 16, Latency: 20}, dram)
	hier := NewHierarchy(DefaultHierarchyConfig(), llc, 0)

	const mask = 1<<20 - 1
	var addr, now uint64
	for i := 0; i < 1<<14; i++ { // warm the stack
		hier.Load(addr&mask, now)
		addr += 64
		now++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hier.Load(addr&mask, now)
		addr += 64
		now++
	}
}
