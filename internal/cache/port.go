// Deferred shared-level access. A SharedPort sits between one core's private
// L2 and the shared LLC. During a cycle the core runs against private state
// only: every request bound for the shared levels is queued, and the port
// hands back a *pending completion time* — a sentinel carrying the request's
// ticket number. At end of cycle the simulator services all ports in
// core-index order, replaying the queued requests into the LLC/DRAM and
// patching every location that captured a sentinel with the real completion
// cycle.
//
// Why this is exact. The only state a pending completion time can reach
// before the port is serviced is (a) the issuing load's ROB doneAt and
// (b) private-cache block readyAt fields — and both are only *compared
// against the clock* at cycles strictly after the current one (a sentinel
// is numerically huge, so mid-cycle "still in flight?" checks see exactly
// what a synchronous future completion would look like). In serial mode the
// simulator ticks cores in index order, so servicing ports in index order
// replays requests into the shared levels in precisely the order the
// synchronous model issued them: identical bank/channel state transitions,
// identical completion times, bit-identical results. That same argument is
// the determinism proof for parallel stepping — worker scheduling can
// reorder core *execution*, but never the port service order.
package cache

// PendingBase tags a completion time as unresolved: the low bits are the
// ticket of the queued request that will produce the real value. Simulated
// clocks stay far below 2^62, so the bit is unambiguous.
const PendingBase = uint64(1) << 62

// IsPending reports whether t is a pending-tagged completion time.
//
//bfetch:hotpath
func IsPending(t uint64) bool { return t >= PendingBase }

type portReq struct {
	req    Request
	at     uint64
	ticket int32 // -1: posted write, no ticket
}

type portPatch struct {
	target *uint64
	expect uint64 // sentinel the target must still hold to be patched
}

// SharedPort queues one core's shared-level traffic for end-of-cycle
// service. It implements Level so it can stand in as the L2's next level.
type SharedPort struct {
	shared Level // the LLC (or DRAM in LLC-less configs)

	reqs    []portReq
	tickets int32
	fills   []uint64 // resolved completion time per ticket
	patches []portPatch
}

// NewSharedPort builds a port in front of the shared level.
func NewSharedPort(shared Level) *SharedPort {
	return &SharedPort{
		shared:  shared,
		reqs:    make([]portReq, 0, 64),
		fills:   make([]uint64, 0, 32),
		patches: make([]portPatch, 0, 64),
	}
}

// Access implements Level: the request is queued, not serviced. Reads and
// prefetch fills return a pending-tagged ticket; writebacks are posted and
// return immediately (nothing ever waits on them).
//
//bfetch:hotpath
func (p *SharedPort) Access(req Request, now uint64) uint64 {
	if req.Kind == Write {
		p.reqs = append(p.reqs, portReq{req: req, at: now, ticket: -1})
		return now
	}
	t := p.tickets
	p.tickets++
	p.reqs = append(p.reqs, portReq{req: req, at: now, ticket: t})
	return PendingBase | uint64(t)
}

// Defer registers target to receive the real completion cycle of the pending
// request identified by sentinel — but only if target still holds sentinel
// at service time, so a block evicted and refilled within the same cycle is
// never clobbered.
//
//bfetch:hotpath
func (p *SharedPort) Defer(target *uint64, sentinel uint64) {
	p.patches = append(p.patches, portPatch{target: target, expect: sentinel})
}

// Pending reports whether the port holds unserviced requests or patches.
func (p *SharedPort) Pending() bool { return len(p.reqs) > 0 || len(p.patches) > 0 }

// Service replays the queued requests into the shared level in arrival
// order, then patches every registered location that still holds its
// sentinel. The caller (the simulator's end-of-cycle phase) invokes Service
// on all ports in core-index order — that ordering is the determinism
// contract.
//
//bfetch:hotpath
func (p *SharedPort) Service() {
	if len(p.reqs) == 0 {
		return
	}
	p.fills = p.fills[:0]
	for i := range p.reqs {
		r := &p.reqs[i]
		if r.ticket < 0 {
			if nc, ok := p.shared.(*Cache); ok {
				nc.WritebackInstall(r.req, r.at)
			} else {
				p.shared.Access(r.req, r.at)
			}
			continue
		}
		p.fills = append(p.fills, p.shared.Access(r.req, r.at))
	}
	for i := range p.patches {
		pa := &p.patches[i]
		if *pa.target == pa.expect {
			*pa.target = p.fills[pa.expect&^PendingBase]
		}
	}
	p.reqs = p.reqs[:0]
	p.patches = p.patches[:0]
	p.tickets = 0
}
