package cache

// Deterministic-contention tests for the scale-out shared-memory models.
// The banked LLC and the channeled DRAM promise two things: (1) requests to
// DIFFERENT banks/channels are fully independent — reordering them across
// one another changes no grant or latency — and (2) requests to the SAME
// bank/channel are served FCFS in arrival order, with occupancy (bank busy
// time, MSHRs, channel in-flight slots) applied exactly. The simulator
// pins arrival order by servicing per-core ports in core-index order; these
// tests pin the models' side of the contract.

import (
	"testing"
)

func newChanneledDRAM(t *testing.T, channels, inflight int) *DRAM {
	t.Helper()
	d := NewDRAM()
	d.Latency = 100
	d.CyclesPerFill = 4
	if err := d.SetChannels(channels, inflight); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDRAMChannelPermutationInvariance issues the same request set — two
// reads to each of four channels, all arriving at cycle 0 — in several
// cross-channel interleavings that preserve per-channel order, and requires
// identical per-address completion times and per-channel counters.
func TestDRAMChannelPermutationInvariance(t *testing.T) {
	// Channel = block address & 3; addr and addr+8 share a channel.
	orders := map[string][]uint64{
		"channel-major": {0, 8, 1, 9, 2, 10, 3, 11},
		"round-robin":   {0, 1, 2, 3, 8, 9, 10, 11},
		"reversed":      {3, 11, 2, 10, 1, 9, 0, 8},
	}
	type outcome struct {
		done               map[uint64]uint64
		stats              [4]ChannelStats
		fills, stallCycles uint64
	}
	results := map[string]outcome{}
	for name, order := range orders {
		d := newChanneledDRAM(t, 4, 2)
		o := outcome{done: map[uint64]uint64{}}
		for _, addr := range order {
			o.done[addr] = d.Access(Request{BlockAddr: addr, Kind: Read}, 0)
		}
		for c := 0; c < 4; c++ {
			o.stats[c] = d.ChannelSnapshot(c)
		}
		o.fills, o.stallCycles = d.DemandFills, d.StallCycles
		results[name] = o
	}
	ref := results["channel-major"]
	for name, o := range results {
		for addr, done := range ref.done {
			if o.done[addr] != done {
				t.Errorf("%s: addr %d completes at %d, channel-major at %d", name, addr, o.done[addr], done)
			}
		}
		if o.stats != ref.stats {
			t.Errorf("%s: channel counters diverge: %+v vs %+v", name, o.stats, ref.stats)
		}
		if o.fills != ref.fills || o.stallCycles != ref.stallCycles {
			t.Errorf("%s: aggregate counters diverge: fills %d/%d, stalls %d/%d",
				name, o.fills, ref.fills, o.stallCycles, ref.stallCycles)
		}
	}
}

// TestDRAMChannelFCFSInflight pins the exact same-channel timing: the bus
// serializes issues at CyclesPerFill apart, and once both in-flight slots
// are claimed, the third read waits for the earliest fill to drain.
func TestDRAMChannelFCFSInflight(t *testing.T) {
	d := newChanneledDRAM(t, 2, 2)
	// Three reads to channel 0, all arriving at cycle 0.
	// r1: bus at 0, slot 0 until 100            -> done 100
	// r2: bus at 4 (queued), slot 1 until 104   -> done 104
	// r3: bus at 8, both slots busy, waits for
	//     slot 0 to drain at 100, refills it    -> done 200
	want := []uint64{100, 104, 200}
	for i, w := range want {
		if got := d.Access(Request{BlockAddr: 0, Kind: Read}, 0); got != w {
			t.Errorf("read %d: done at %d, want %d", i+1, got, w)
		}
	}
	cs := d.ChannelSnapshot(0)
	if cs.Transfers != 3 {
		t.Errorf("channel 0 carried %d transfers, want 3", cs.Transfers)
	}
	if d.ChannelSnapshot(1).Transfers != 0 {
		t.Errorf("channel 1 saw traffic for channel-0 addresses")
	}
	// Writebacks are posted: they claim the bus and a slot on their channel
	// (addr 1 -> the idle channel 1) but return at their issue cycle —
	// nothing waits on them.
	if got := d.Access(Request{BlockAddr: 1, Kind: Write}, 0); got != 0 {
		t.Errorf("posted writeback returned %d, want its issue cycle 0", got)
	}
}

// TestLLCBankPermutationInvariance runs the banked-LLC analogue over a
// channeled DRAM with one channel per bank (so bank independence holds end
// to end): two demand misses per bank, arriving at cycle 0 in different
// cross-bank interleavings, must produce identical per-address latencies and
// per-bank counters.
func TestLLCBankPermutationInvariance(t *testing.T) {
	// Bank = block address & 3 = channel; addr and addr+8 share a bank.
	orders := map[string][]uint64{
		"bank-major":  {0, 8, 1, 9, 2, 10, 3, 11},
		"round-robin": {0, 1, 2, 3, 8, 9, 10, 11},
		"reversed":    {3, 11, 2, 10, 1, 9, 0, 8},
	}
	type outcome struct {
		done  map[uint64]uint64
		banks [4]BankStats
		stats Stats
	}
	results := map[string]outcome{}
	for name, order := range orders {
		llc := New(Config{
			Name: "L3", Bytes: 1 << 20, Ways: 16, Latency: 10,
			Banks: 4, BankBusy: 2, MSHRs: 4,
		}, newChanneledDRAM(t, 4, 0))
		o := outcome{done: map[uint64]uint64{}}
		for _, addr := range order {
			o.done[addr] = llc.Access(Request{BlockAddr: addr, Kind: Read}, 0)
		}
		for b := 0; b < 4; b++ {
			o.banks[b] = llc.BankSnapshot(b)
		}
		o.stats = llc.Stats
		results[name] = o
	}
	ref := results["bank-major"]
	for name, o := range results {
		for addr, done := range ref.done {
			if o.done[addr] != done {
				t.Errorf("%s: addr %d completes at %d, bank-major at %d", name, addr, o.done[addr], done)
			}
		}
		if o.banks != ref.banks {
			t.Errorf("%s: bank counters diverge: %+v vs %+v", name, o.banks, ref.banks)
		}
		if o.stats != ref.stats {
			t.Errorf("%s: cache stats diverge: %+v vs %+v", name, o.stats, ref.stats)
		}
	}
}

// TestLLCBankQueueingAndMSHR pins the exact same-bank arithmetic: same-cycle
// arrivals queue behind the bank port at BankBusy apart, and a miss that
// finds every MSHR claimed waits for the earliest outstanding fill.
func TestLLCBankQueueingAndMSHR(t *testing.T) {
	llc := New(Config{
		Name: "L3", Bytes: 1 << 20, Ways: 16, Latency: 10,
		Banks: 2, BankBusy: 3, MSHRs: 2,
	}, &fixedLevel{latency: 50})
	// Three reads to bank 0 (even block addresses), all arriving at cycle 0.
	// m1: port at 0, MSHR 0, fill issues at 10  -> done 60
	// m2: port at 3 (queued 3), MSHR 1,
	//     fill issues at 13                     -> done 63
	// m3: port at 6 (queued 6), both MSHRs busy,
	//     waits for MSHR 0 to drain at 60,
	//     fill issues at 70                     -> done 120
	want := []uint64{60, 63, 120}
	for i, w := range want {
		addr := uint64(2 * i)
		if got := llc.Access(Request{BlockAddr: addr, Kind: Read}, 0); got != w {
			t.Errorf("miss %d: done at %d, want %d", i+1, got, w)
		}
	}
	b := llc.BankSnapshot(0)
	wantBank := BankStats{
		Accesses: 3, QueueCycles: 9, BusyCycles: 9,
		MSHRStalls: 1, MSHRCycles: 54,
	}
	if b != wantBank {
		t.Errorf("bank 0 counters: %+v, want %+v", b, wantBank)
	}
	if other := llc.BankSnapshot(1); other != (BankStats{}) {
		t.Errorf("bank 1 saw traffic for bank-0 addresses: %+v", other)
	}
	// A hit pays only the bank port and the access latency.
	if got := llc.Access(Request{BlockAddr: 0, Kind: Read}, 200); got != 210 {
		t.Errorf("hit done at %d, want 210", got)
	}
}
