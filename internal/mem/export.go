package mem

import "sort"

// PageWords is the number of 64-bit words in one page.
const PageWords = PageBytes / 8

// PageImage is one page's externalized contents, the currency of checkpoint
// serialization (internal/store). Words holds the page as aligned 64-bit
// little-endian words, the same layout the Memory stores internally.
type PageImage struct {
	PN    uint64 // page number (byte address / PageBytes)
	Words [PageWords]uint64
}

// ExportPages returns a deep copy of the address space's visible contents as
// page images sorted by page number. All-zero pages are omitted: untouched
// memory reads as zero, so dropping them loses nothing (Equal treats absent
// and zero-filled pages alike) and keeps the export canonical — two
// architecturally equal address spaces export identical slices regardless of
// which zero pages each happened to materialize.
func (m *Memory) ExportPages() []PageImage {
	var zero page
	pns := make([]uint64, 0, len(m.pages)+len(m.ro))
	for pn, p := range m.pages {
		if *p != zero {
			pns = append(pns, pn)
		}
	}
	for pn, p := range m.ro {
		if _, shadowed := m.pages[pn]; !shadowed && *p != zero {
			pns = append(pns, pn)
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	out := make([]PageImage, len(pns))
	for i, pn := range pns {
		out[i].PN = pn
		out[i].Words = *m.lookup(pn)
	}
	return out
}

// FromPages reconstructs an address space from exported page images. The
// result is an independent private copy — mutating it cannot affect the
// source of the images. Page order does not matter; duplicate page numbers
// keep the last occurrence.
func FromPages(pages []PageImage) *Memory {
	m := New()
	for i := range pages {
		p := page(pages[i].Words)
		m.pages[pages[i].PN] = &p
	}
	return m
}
