package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestForkIsolation(t *testing.T) {
	m := New()
	m.Write64(0x1000, 7)
	m.Write64(0x9000, 11)

	f := m.Fork()
	if v := f.Read64(0x1000); v != 7 {
		t.Fatalf("fork read = %d, want 7", v)
	}
	// Child writes must not leak into the parent (or vice versa).
	f.Write64(0x1000, 8)
	if v := m.Read64(0x1000); v != 7 {
		t.Errorf("child write leaked into parent: %d", v)
	}
	m.Write64(0x9000, 12)
	if v := f.Read64(0x9000); v != 11 {
		t.Errorf("parent write leaked into child: %d", v)
	}
	// Untouched shared pages stay physically shared.
	if f.PrivateBytes() != PageBytes {
		t.Errorf("child private = %d, want one page", f.PrivateBytes())
	}
	if f.FootprintBytes() != 2*PageBytes {
		t.Errorf("child footprint = %d, want two pages", f.FootprintBytes())
	}
}

func TestForkOfFork(t *testing.T) {
	m := New()
	m.Write64(0, 1)
	a := m.Fork()
	a.Write64(8, 2)
	b := a.Fork()
	b.Write64(16, 3)
	if a.Read64(16) != 0 {
		t.Error("grandchild write leaked into child")
	}
	if b.Read64(0) != 1 || b.Read64(8) != 2 {
		t.Error("grandchild lost inherited contents")
	}
	if m.Read64(8) != 0 || m.Read64(16) != 0 {
		t.Error("descendant writes leaked into root")
	}
}

func TestFreezeIdempotentAndCloneEqual(t *testing.T) {
	m := New()
	for i := uint64(0); i < 64; i++ {
		m.Write64(i*PageBytes, i)
	}
	c := m.Clone()
	m.Freeze()
	m.Freeze() // second freeze of a clean frozen space is a no-op
	if !Equal(m, c) {
		t.Error("freeze changed contents")
	}
	f := m.Fork()
	if !Equal(f, c) {
		t.Error("fork differs from pre-freeze clone")
	}
	// Writing the parent after a freeze copies out, never mutating the base.
	m.Write64(0, 999)
	if f.Read64(0) != 0 {
		t.Error("post-freeze parent write reached the shared base")
	}
	if c2 := m.Clone(); c2.Read64(0) != 999 {
		t.Error("clone of COW parent missed private page")
	}
}

// TestConcurrentForks is the checkpoint-restore pattern: one frozen image,
// many goroutines forking and mutating their forks in parallel. Run under
// -race this pins the claim that a frozen base is safely shared.
func TestConcurrentForks(t *testing.T) {
	img := New()
	for i := uint64(0); i < 32; i++ {
		img.Write64(i*PageBytes, i+1)
	}
	img.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			f := img.Fork()
			for i := uint64(0); i < 32; i++ {
				if v := f.Read64(i * PageBytes); v != i+1 {
					t.Errorf("fork %d: read %d, want %d", g, v, i+1)
					return
				}
				f.Write64(i*PageBytes, g*1000+i)
			}
			for i := uint64(0); i < 32; i++ {
				if v := f.Read64(i * PageBytes); v != g*1000+i {
					t.Errorf("fork %d: readback %d at page %d", g, v, i)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	for i := uint64(0); i < 32; i++ {
		if v := img.Read64(i * PageBytes); v != i+1 {
			t.Errorf("base image mutated at page %d: %d", i, v)
		}
	}
}

// Property: interleaved writes to a fork and its parent behave exactly like
// writes to two independent deep copies.
func TestQuickForkVsClone(t *testing.T) {
	type op struct {
		ToFork bool
		Addr   uint16
		Val    uint64
	}
	f := func(init []uint16, ops []op) bool {
		m := New()
		for _, a := range init {
			m.Write64(uint64(a), uint64(a)+1)
		}
		refParent := m.Clone()
		refChild := m.Clone()
		child := m.Fork()
		for _, o := range ops {
			if o.ToFork {
				child.Write64(uint64(o.Addr), o.Val)
				refChild.Write64(uint64(o.Addr), o.Val)
			} else {
				m.Write64(uint64(o.Addr), o.Val)
				refParent.Write64(uint64(o.Addr), o.Val)
			}
		}
		return Equal(child, refChild) && Equal(m, refParent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkMemReadWrite exercises the Read64/Write64 hot path with the
// page-local access pattern the simulators produce; the one-entry
// translation cache in pageFor is what it measures.
func BenchmarkMemReadWrite(b *testing.B) {
	m := New()
	const span = 64 * PageBytes
	for a := uint64(0); a < span; a += PageBytes {
		m.Write64(a, a)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		// 8 accesses in one page, then move on — roughly a cache block walk.
		base := (uint64(i) * 512) % span
		for j := uint64(0); j < 8; j++ {
			sink += m.Read64(base + j*8)
			m.Write64(base+j*8, sink)
		}
	}
	_ = sink
}

// BenchmarkMemFork measures the steady-state cost of restoring from a
// frozen image: one O(1) fork plus a handful of copy-on-write page faults.
func BenchmarkMemFork(b *testing.B) {
	img := New()
	for a := uint64(0); a < 256*PageBytes; a += PageBytes {
		m64 := a * 3
		img.Write64(a, m64)
	}
	img.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := img.Fork()
		f.Write64(0, uint64(i)) // one COW fault
	}
}
