package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if v := m.Read64(0x1234); v != 0 {
		t.Errorf("untouched read = %#x", v)
	}
	if m.FootprintBytes() != 0 {
		t.Errorf("footprint after read = %d", m.FootprintBytes())
	}
}

func TestReadWrite64(t *testing.T) {
	m := New()
	m.Write64(0x1000, 0xDEADBEEFCAFEF00D)
	if v := m.Read64(0x1000); v != 0xDEADBEEFCAFEF00D {
		t.Errorf("read = %#x", v)
	}
	// Byte-level view must be little-endian.
	if b := m.Read8(0x1000); b != 0x0D {
		t.Errorf("low byte = %#x", b)
	}
	if b := m.Read8(0x1007); b != 0xDE {
		t.Errorf("high byte = %#x", b)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageBytes - 3) // straddles first page boundary
	m.Write64(addr, 0x1122334455667788)
	if v := m.Read64(addr); v != 0x1122334455667788 {
		t.Errorf("straddled read = %#x", v)
	}
	if m.FootprintBytes() != 2*PageBytes {
		t.Errorf("footprint = %d, want two pages", m.FootprintBytes())
	}
}

func TestSignedAccessors(t *testing.T) {
	m := New()
	m.WriteInt64(64, -42)
	if v := m.ReadInt64(64); v != -42 {
		t.Errorf("signed read = %d", v)
	}
}

func TestCloneIsolation(t *testing.T) {
	m := New()
	m.Write64(0, 7)
	c := m.Clone()
	c.Write64(0, 9)
	if m.Read64(0) != 7 {
		t.Error("clone write leaked into original")
	}
	if c.Read64(0) != 9 {
		t.Error("clone write lost")
	}
	m.Write64(8, 1)
	if c.Read64(8) != 0 {
		t.Error("original write leaked into clone")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	if !Equal(a, b) {
		t.Error("two empty spaces unequal")
	}
	a.Write64(0x100, 5)
	if Equal(a, b) {
		t.Error("differing spaces equal")
	}
	b.Write64(0x100, 5)
	if !Equal(a, b) {
		t.Error("identical spaces unequal")
	}
	// A page holding only zeros equals an absent page.
	a.Write64(0x9000, 1)
	a.Write64(0x9000, 0)
	if !Equal(a, b) {
		t.Error("zeroed page should equal absent page")
	}
}

// Property: a sequence of 64-bit writes at arbitrary (possibly overlapping,
// possibly straddling) addresses reads back exactly as a map-of-bytes model
// predicts.
func TestQuickVsByteModel(t *testing.T) {
	type op struct {
		Addr uint32
		Val  uint64
	}
	f := func(ops []op, probes []uint32) bool {
		m := New()
		model := map[uint64]byte{}
		for _, o := range ops {
			addr := uint64(o.Addr)
			m.Write64(addr, o.Val)
			for i := uint64(0); i < 8; i++ {
				model[addr+i] = byte(o.Val >> (8 * i))
			}
		}
		for _, p := range probes {
			addr := uint64(p)
			var want uint64
			for i := uint64(0); i < 8; i++ {
				want |= uint64(model[addr+i]) << (8 * i)
			}
			if m.Read64(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
