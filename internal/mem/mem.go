// Package mem provides the sparse, paged, byte-addressable memory backing
// every simulated address space. Pages are allocated on first touch, so a
// workload with a multi-gigabyte address range costs only its resident set.
package mem

import "encoding/binary"

// PageBytes is the allocation granularity.
const PageBytes = 4096

type page [PageBytes]byte

// Memory is one simulated address space. The zero value is not usable; call
// New. Memory is not safe for concurrent mutation; each simulated core owns
// its own address space (the workloads are multiprogrammed, not shared
// memory).
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	pn := addr / PageBytes
	p := m.pages[pn]
	if p == nil && alloc {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// Read8 returns the byte at addr; untouched memory reads as zero.
func (m *Memory) Read8(addr uint64) byte {
	if p := m.pageFor(addr, false); p != nil {
		return p[addr%PageBytes]
	}
	return 0
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.pageFor(addr, true)[addr%PageBytes] = v
}

// Read64 returns the little-endian 64-bit word at addr. The common case
// (access within one page) is fast-pathed; page-straddling accesses fall
// back to byte loops.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr % PageBytes
	if off <= PageBytes-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit word at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr % PageBytes
	if off <= PageBytes-8 {
		binary.LittleEndian.PutUint64(m.pageFor(addr, true)[off:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// ReadInt64 and WriteInt64 are signed conveniences used by the emulators.

func (m *Memory) ReadInt64(addr uint64) int64     { return int64(m.Read64(addr)) }
func (m *Memory) WriteInt64(addr uint64, v int64) { m.Write64(addr, uint64(v)) }

// FootprintBytes reports the resident size (touched pages × page size).
func (m *Memory) FootprintBytes() int { return len(m.pages) * PageBytes }

// Clone returns a deep copy of the address space. Simulation runs that
// compare configurations start from clones of one initialized image so that
// stores in one run cannot leak into another.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two address spaces have identical contents
// (zero-filled pages compare equal to absent pages).
func Equal(a, b *Memory) bool {
	return a.coveredBy(b) && b.coveredBy(a)
}

func (m *Memory) coveredBy(o *Memory) bool {
	for pn, p := range m.pages {
		q := o.pages[pn]
		if q == nil {
			if *p != (page{}) {
				return false
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}
