// Package mem provides the sparse, paged, byte-addressable memory backing
// every simulated address space. Pages are allocated on first touch, so a
// workload with a multi-gigabyte address range costs only its resident set.
//
// An address space can be forked copy-on-write (Freeze/Fork): forks share
// one frozen read-only page table and privately copy a page only on first
// write. Checkpoint restore (internal/ckpt) leans on this so N concurrent
// simulations booted from one fast-forward image share its footprint.
package mem

// PageBytes is the allocation granularity.
const PageBytes = 4096

// A page stores its bytes as 64-bit little-endian words: byte addr%8 of a
// word is bits [8k, 8k+8) of page[addr%PageBytes/8]. Keeping the hot
// currency (aligned 64-bit words, the only width the ISA loads and stores)
// as the storage format makes Read64/Write64 a single indexed access —
// small enough for the compiler to inline into the emulator loops.
type page [PageBytes / 8]uint64

// Memory is one simulated address space: a private writable page table over
// an optional frozen read-only base shared with other forks. The zero value
// is not usable; call New. Memory is not safe for concurrent mutation; each
// simulated core owns its own address space (the workloads are
// multiprogrammed, not shared memory). A frozen base, by contrast, is
// immutable and safely shared across goroutines — see Freeze.
type Memory struct {
	pages map[uint64]*page // private, writable
	ro    map[uint64]*page // frozen shared base (nil if never forked)

	// Direct-mapped software TLB for pageFor: Read64/Write64 sit on the
	// simulator's hottest path, and map lookups (hash, probe) dominate them
	// once a working set spans more than a page or two. Each entry caches
	// one translation; rw records whether the cached page is privately
	// owned (writable), so a read-only hit still falls through on writes
	// and the copy-on-write path runs. Entries go stale only at Freeze
	// (private pages become shared), which flushes the whole table.
	tlb [tlbSize]tlbEntry
}

// tlbSize is the number of direct-mapped translation entries; 2048 gives an
// 8 MB reach, covering the workload suite's largest hot region (lbm's two
// 4 MB grids) at a 48 KB cost per address space.
const tlbSize = 2048

type tlbEntry struct {
	pn uint64
	p  *page
	rw bool
}

// tlbIdx folds high page-number bits into the index. Workload images place
// distinct regions at addresses like 0x1000_0000 and 0x2000_0000, which are
// congruent modulo any power-of-two table size; a plain pn&mask index would
// make corresponding pages of two streamed regions evict each other every
// access.
func tlbIdx(pn uint64) uint64 { return (pn ^ (pn >> 11)) & (tlbSize - 1) }

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// pageFor translates addr to its backing page: TLB probe, then the private
// page table, then the shared read-only base. With alloc set, a write to a
// shared page privatizes a copy and a write to untouched memory faults in a
// fresh page — each allocates once per page, then the TLB absorbs every
// later access, so the fault exits are hatched cold paths.
//
//bfetch:hotpath
func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	pn := addr / PageBytes
	e := &m.tlb[tlbIdx(pn)]
	if e.p != nil && e.pn == pn && (e.rw || !alloc) {
		return e.p
	}
	if p := m.pages[pn]; p != nil {
		e.pn, e.p, e.rw = pn, p, true
		return p
	}
	if m.ro != nil {
		if q := m.ro[pn]; q != nil {
			if !alloc {
				e.pn, e.p, e.rw = pn, q, false
				return q
			}
			cp := *q //bfetch:alloc-ok first write to a shared page: copy it private
			m.pages[pn] = &cp
			e.pn, e.p, e.rw = pn, &cp, true
			return &cp
		}
	}
	if !alloc {
		return nil
	}
	p := new(page) //bfetch:alloc-ok
	m.pages[pn] = p
	e.pn, e.p, e.rw = pn, p, true
	return p
}

// Read8 returns the byte at addr; untouched memory reads as zero.
//
//bfetch:hotpath
func (m *Memory) Read8(addr uint64) byte {
	if p := m.pageFor(addr, false); p != nil {
		off := addr % PageBytes
		return byte(p[off/8] >> (8 * (off % 8)))
	}
	return 0
}

// Write8 stores one byte at addr.
//
//bfetch:hotpath
func (m *Memory) Write8(addr uint64, v byte) {
	p := m.pageFor(addr, true)
	off := addr % PageBytes
	sh := 8 * (off % 8)
	p[off/8] = p[off/8]&^(0xff<<sh) | uint64(v)<<sh
}

// Read64 returns the little-endian 64-bit word at addr. The TLB-hit aligned
// case — the only access the ISA's LD issues on every real workload — is a
// single indexed load, small enough to inline into the emulator loops; TLB
// misses, copy-on-write faults and misaligned accesses take the slow path.
//
//bfetch:hotpath
func (m *Memory) Read64(addr uint64) uint64 {
	pn := addr / PageBytes
	e := &m.tlb[tlbIdx(pn)]
	if e.p != nil && e.pn == pn && addr&7 == 0 {
		return e.p[addr%PageBytes/8]
	}
	return m.read64Slow(addr)
}

// read64Slow handles the TLB-missing and misaligned tails of Read64.
//
//bfetch:hotpath
func (m *Memory) read64Slow(addr uint64) uint64 {
	if addr&7 == 0 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return p[addr%PageBytes/8]
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit word at addr. Like Read64, the hit
// path inlines; a hit requires write ownership (e.rw), so copy-on-write
// faults always reach pageFor.
//
//bfetch:hotpath
func (m *Memory) Write64(addr uint64, v uint64) {
	pn := addr / PageBytes
	e := &m.tlb[tlbIdx(pn)]
	if e.p != nil && e.pn == pn && e.rw && addr&7 == 0 {
		e.p[addr%PageBytes/8] = v
		return
	}
	m.write64Slow(addr, v)
}

// Load64 is the inline-probe load for emulation hot loops: it returns the
// word at addr only when the translation is TLB-cached and the access is
// aligned, and reports whether it hit. It is small enough to inline at the
// call site; on a miss the caller falls back to Read64, which fills the TLB
// so the next probe of the page hits. (A wrapper that did the fallback
// itself could not inline: the Go inliner prices any call to a
// non-inlinable function above the whole inlining budget.)
func (m *Memory) Load64(addr uint64) (uint64, bool) {
	pn := addr / PageBytes
	e := &m.tlb[tlbIdx(pn)]
	if e.p != nil && e.pn == pn && addr&7 == 0 {
		return e.p[addr%PageBytes/8], true
	}
	return 0, false
}

// Store64 is the inline-probe store counterpart of Load64. A hit requires
// write ownership of the page, so copy-on-write faults always miss and
// reach the Write64 fallback.
func (m *Memory) Store64(addr uint64, v uint64) bool {
	pn := addr / PageBytes
	e := &m.tlb[tlbIdx(pn)]
	if e.p != nil && e.pn == pn && e.rw && addr&7 == 0 {
		e.p[addr%PageBytes/8] = v
		return true
	}
	return false
}

// write64Slow handles the TLB-missing, copy-on-write and misaligned tails
// of Write64.
//
//bfetch:hotpath
func (m *Memory) write64Slow(addr uint64, v uint64) {
	if addr&7 == 0 {
		m.pageFor(addr, true)[addr%PageBytes/8] = v
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// ReadInt64 and WriteInt64 are signed conveniences used by the emulators.

//bfetch:hotpath
func (m *Memory) ReadInt64(addr uint64) int64 { return int64(m.Read64(addr)) }

//bfetch:hotpath
func (m *Memory) WriteInt64(addr uint64, v int64) { m.Write64(addr, uint64(v)) }

// FootprintBytes reports the resident size (touched pages × page size).
// Shared frozen pages count once per address space; a fresh fork therefore
// reports the full image size even though the pages are physically shared —
// it is an architectural measure, not an allocator one.
func (m *Memory) FootprintBytes() int { return m.distinctPages() * PageBytes }

// PrivateBytes reports only the pages this address space owns outright:
// pages written since the last Freeze/Fork. For a copy-on-write fork this
// is the true incremental memory cost over the shared base.
func (m *Memory) PrivateBytes() int { return len(m.pages) * PageBytes }

func (m *Memory) distinctPages() int {
	n := len(m.pages)
	for pn := range m.ro {
		if _, shadowed := m.pages[pn]; !shadowed {
			n++
		}
	}
	return n
}

// Freeze seals the current contents into a shared read-only base: private
// pages merge over any existing base into a new frozen page table, and the
// private layer restarts empty. Subsequent writes copy pages back out
// (copy-on-write), so the frozen base is immutable from then on.
//
// Freeze is idempotent, and on an already-frozen Memory with no private
// pages it is read-only — which makes Fork safe to call concurrently on
// such a Memory (the checkpoint-restore pattern: freeze once at capture,
// fork many times in parallel).
func (m *Memory) Freeze() {
	if len(m.pages) == 0 && m.ro != nil {
		return
	}
	base := make(map[uint64]*page, len(m.pages)+len(m.ro))
	for pn, p := range m.ro {
		base[pn] = p
	}
	for pn, p := range m.pages {
		base[pn] = p
	}
	m.ro = base
	m.pages = make(map[uint64]*page)
	// The TLB may hold pages that just became shared; drop every claim of
	// write ownership.
	m.tlb = [tlbSize]tlbEntry{}
}

// Fork returns a copy-on-write child of this address space: the child (and,
// from now on, the parent) reads through a shared frozen snapshot of the
// current contents and copies a page privately on first write. Forking is
// O(resident pages) the first time (the Freeze) and O(1) afterwards, and
// the forks share the snapshot's footprint.
//
// Fork itself mutates the parent unless it is already frozen with no
// private writes; to fork one image from many goroutines, Freeze it first.
func (m *Memory) Fork() *Memory {
	m.Freeze()
	return &Memory{pages: make(map[uint64]*page), ro: m.ro}
}

// Clone returns a deep copy of the address space. Simulation runs that
// compare configurations start from clones of one initialized image so that
// stores in one run cannot leak into another. Unlike Fork, a clone shares
// nothing with its origin.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, p := range m.ro {
		cp := *p
		c.pages[pn] = &cp
	}
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two address spaces have identical contents
// (zero-filled pages compare equal to absent pages).
func Equal(a, b *Memory) bool {
	return a.coveredBy(b) && b.coveredBy(a)
}

// lookup returns the page visible at pn, private layer first.
func (m *Memory) lookup(pn uint64) *page {
	if p := m.pages[pn]; p != nil {
		return p
	}
	return m.ro[pn]
}

func (m *Memory) coveredBy(o *Memory) bool {
	check := func(pn uint64, p *page) bool {
		q := o.lookup(pn)
		if q == nil {
			return *p == (page{})
		}
		return *p == *q
	}
	for pn, p := range m.pages {
		if !check(pn, p) {
			return false
		}
	}
	for pn, p := range m.ro {
		if _, shadowed := m.pages[pn]; shadowed {
			continue
		}
		if !check(pn, p) {
			return false
		}
	}
	return true
}
