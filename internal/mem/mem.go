// Package mem provides the sparse, paged, byte-addressable memory backing
// every simulated address space. Pages are allocated on first touch, so a
// workload with a multi-gigabyte address range costs only its resident set.
//
// An address space can be forked copy-on-write (Freeze/Fork): forks share
// one frozen read-only page table and privately copy a page only on first
// write. Checkpoint restore (internal/ckpt) leans on this so N concurrent
// simulations booted from one fast-forward image share its footprint.
package mem

import "encoding/binary"

// PageBytes is the allocation granularity.
const PageBytes = 4096

type page [PageBytes]byte

// Memory is one simulated address space: a private writable page table over
// an optional frozen read-only base shared with other forks. The zero value
// is not usable; call New. Memory is not safe for concurrent mutation; each
// simulated core owns its own address space (the workloads are
// multiprogrammed, not shared memory). A frozen base, by contrast, is
// immutable and safely shared across goroutines — see Freeze.
type Memory struct {
	pages map[uint64]*page // private, writable
	ro    map[uint64]*page // frozen shared base (nil if never forked)

	// One-entry translation cache for pageFor: Read64/Write64 sit on the
	// simulator's hottest path, and consecutive accesses overwhelmingly hit
	// the same page, so remembering the last translation skips the map
	// lookup. lastRW records whether the cached page is privately owned
	// (writable); a read-only hit must still fall through on writes so the
	// copy-on-write path runs.
	lastPN   uint64
	lastPage *page
	lastRW   bool
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	pn := addr / PageBytes
	if m.lastPage != nil && m.lastPN == pn && (m.lastRW || !alloc) {
		return m.lastPage
	}
	if p := m.pages[pn]; p != nil {
		m.lastPN, m.lastPage, m.lastRW = pn, p, true
		return p
	}
	if m.ro != nil {
		if q := m.ro[pn]; q != nil {
			if !alloc {
				m.lastPN, m.lastPage, m.lastRW = pn, q, false
				return q
			}
			cp := *q // first write to a shared page: copy it private
			m.pages[pn] = &cp
			m.lastPN, m.lastPage, m.lastRW = pn, &cp, true
			return &cp
		}
	}
	if !alloc {
		return nil
	}
	p := new(page)
	m.pages[pn] = p
	m.lastPN, m.lastPage, m.lastRW = pn, p, true
	return p
}

// Read8 returns the byte at addr; untouched memory reads as zero.
func (m *Memory) Read8(addr uint64) byte {
	if p := m.pageFor(addr, false); p != nil {
		return p[addr%PageBytes]
	}
	return 0
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.pageFor(addr, true)[addr%PageBytes] = v
}

// Read64 returns the little-endian 64-bit word at addr. The common case
// (access within one page) is fast-pathed; page-straddling accesses fall
// back to byte loops.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr % PageBytes
	if off <= PageBytes-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit word at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr % PageBytes
	if off <= PageBytes-8 {
		binary.LittleEndian.PutUint64(m.pageFor(addr, true)[off:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// ReadInt64 and WriteInt64 are signed conveniences used by the emulators.

func (m *Memory) ReadInt64(addr uint64) int64     { return int64(m.Read64(addr)) }
func (m *Memory) WriteInt64(addr uint64, v int64) { m.Write64(addr, uint64(v)) }

// FootprintBytes reports the resident size (touched pages × page size).
// Shared frozen pages count once per address space; a fresh fork therefore
// reports the full image size even though the pages are physically shared —
// it is an architectural measure, not an allocator one.
func (m *Memory) FootprintBytes() int { return m.distinctPages() * PageBytes }

// PrivateBytes reports only the pages this address space owns outright:
// pages written since the last Freeze/Fork. For a copy-on-write fork this
// is the true incremental memory cost over the shared base.
func (m *Memory) PrivateBytes() int { return len(m.pages) * PageBytes }

func (m *Memory) distinctPages() int {
	n := len(m.pages)
	for pn := range m.ro {
		if _, shadowed := m.pages[pn]; !shadowed {
			n++
		}
	}
	return n
}

// Freeze seals the current contents into a shared read-only base: private
// pages merge over any existing base into a new frozen page table, and the
// private layer restarts empty. Subsequent writes copy pages back out
// (copy-on-write), so the frozen base is immutable from then on.
//
// Freeze is idempotent, and on an already-frozen Memory with no private
// pages it is read-only — which makes Fork safe to call concurrently on
// such a Memory (the checkpoint-restore pattern: freeze once at capture,
// fork many times in parallel).
func (m *Memory) Freeze() {
	if len(m.pages) == 0 && m.ro != nil {
		return
	}
	base := make(map[uint64]*page, len(m.pages)+len(m.ro))
	for pn, p := range m.ro {
		base[pn] = p
	}
	for pn, p := range m.pages {
		base[pn] = p
	}
	m.ro = base
	m.pages = make(map[uint64]*page)
	// The cache may hold a page that just became shared; drop any claim of
	// write ownership.
	m.lastPage = nil
}

// Fork returns a copy-on-write child of this address space: the child (and,
// from now on, the parent) reads through a shared frozen snapshot of the
// current contents and copies a page privately on first write. Forking is
// O(resident pages) the first time (the Freeze) and O(1) afterwards, and
// the forks share the snapshot's footprint.
//
// Fork itself mutates the parent unless it is already frozen with no
// private writes; to fork one image from many goroutines, Freeze it first.
func (m *Memory) Fork() *Memory {
	m.Freeze()
	return &Memory{pages: make(map[uint64]*page), ro: m.ro}
}

// Clone returns a deep copy of the address space. Simulation runs that
// compare configurations start from clones of one initialized image so that
// stores in one run cannot leak into another. Unlike Fork, a clone shares
// nothing with its origin.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, p := range m.ro {
		cp := *p
		c.pages[pn] = &cp
	}
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two address spaces have identical contents
// (zero-filled pages compare equal to absent pages).
func Equal(a, b *Memory) bool {
	return a.coveredBy(b) && b.coveredBy(a)
}

// lookup returns the page visible at pn, private layer first.
func (m *Memory) lookup(pn uint64) *page {
	if p := m.pages[pn]; p != nil {
		return p
	}
	return m.ro[pn]
}

func (m *Memory) coveredBy(o *Memory) bool {
	check := func(pn uint64, p *page) bool {
		q := o.lookup(pn)
		if q == nil {
			return *p == (page{})
		}
		return *p == *q
	}
	for pn, p := range m.pages {
		if !check(pn, p) {
			return false
		}
	}
	for pn, p := range m.ro {
		if _, shadowed := m.pages[pn]; shadowed {
			continue
		}
		if !check(pn, p) {
			return false
		}
	}
	return true
}
