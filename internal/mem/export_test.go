package mem

import "testing"

// TestExportImportRoundTrip pins the serialization substrate of durable
// checkpoints: export → import must reproduce the address space exactly,
// including contents that live in a frozen base under private overlays.
func TestExportImportRoundTrip(t *testing.T) {
	m := New()
	m.Write64(0x1000_0000, 0xdeadbeef)
	m.Write64(0x1000_0008, 42)
	m.Write8(0x2000_0003, 0x7f)
	m.Freeze()
	m.Write64(0x1000_0000, 0xfeedface) // private page shadowing frozen base
	m.Write64(0x3000_0000, 7)

	back := FromPages(m.ExportPages())
	if !Equal(m, back) {
		t.Fatal("export/import round trip lost contents")
	}
	if got := back.Read64(0x1000_0000); got != 0xfeedface {
		t.Errorf("shadowed page: got %#x, want 0xfeedface", got)
	}
	if got := back.Read8(0x2000_0003); got != 0x7f {
		t.Errorf("byte write: got %#x", got)
	}

	// The import is independent: writes to it must not reach the source.
	back.Write64(0x3000_0000, 99)
	if m.Read64(0x3000_0000) != 7 {
		t.Error("import aliases the exporter's pages")
	}
}

// TestExportCanonical pins the canonical-form property the checkpoint
// content fingerprint relies on: zero pages do not appear, page order is
// sorted, and two architecturally equal spaces that materialized different
// zero pages export identically.
func TestExportCanonical(t *testing.T) {
	a := New()
	a.Write64(0x2000, 5)
	a.Write64(0x1000, 3)
	a.Write64(0x9000, 0) // touched but all-zero: must not export

	b := New()
	b.Write64(0x1000, 3)
	b.Write64(0x2000, 5)

	pa, pb := a.ExportPages(), b.ExportPages()
	if len(pa) != 2 || len(pb) != 2 {
		t.Fatalf("exports have %d and %d pages, want 2 and 2 (zero pages must be dropped)", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("page %d differs between equal address spaces", i)
		}
	}
	if pa[0].PN >= pa[1].PN {
		t.Error("pages not sorted by page number")
	}
}

// TestExportEmpty covers the degenerate cases.
func TestExportEmpty(t *testing.T) {
	if pages := New().ExportPages(); len(pages) != 0 {
		t.Errorf("empty space exported %d pages", len(pages))
	}
	if m := FromPages(nil); m.Read64(0) != 0 {
		t.Error("import of no pages is not an empty space")
	}
}
