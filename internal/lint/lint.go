// Package lint is the repository's custom static-analysis suite: a
// two-layer system enforcing the invariants the simulator's performance and
// reproducibility rest on, using only the standard library (the module
// stays dependency-free).
//
// Layer 2 — whole-program AST (fast, runs on every `make lint`):
//
//   - hotpath: functions annotated //bfetch:hotpath (the per-cycle
//     simulation kernel) must not contain allocating constructs.
//   - hotcall: the transitive closure of functions reachable from a
//     //bfetch:hotpath root must be annotated (and therefore checked) or
//     provably trivially alloc-free — no un-annotated helper slips through.
//   - syncorder: no channel send while a mutex is held, lock acquisition
//     must respect the declared //bfetch:lockorder partial order, and sync
//     types must not be copied by value.
//   - determinism: the simulation/experiment packages must not consult
//     global randomness or wall clocks, and must not publish results from a
//     map iteration without an explicit sort.
//   - statsreset: every struct with a Reset/ResetStats method must account
//     for all of its fields — each field is either assigned in the method or
//     explicitly annotated //bfetch:noreset.
//
// Layer 1 — compiler-witnessed (`make lint-full`, facts.go/escape.go):
//
//   - escape: runs the real compiler with -m=2 and the BCE debug stream and
//     fails when a //bfetch:hotpath function heap-escapes a value, calls a
//     non-inlined callee without a //bfetch:noinline-ok reason, or a
//     //bfetch:bce loop retains a bounds check. The diagnostic fact table is
//     cached per package by build ID, so warm runs cost milliseconds.
//
// Escape hatches are deliberate and auditable: //bfetch:alloc-ok,
// //bfetch:wallclock, //bfetch:orderok and //bfetch:sync-ok suppress a
// single finding on the same or the following line; //bfetch:noinline-ok
// and //bfetch:coldcall require a reason string; //bfetch:noreset marks a
// struct field as learned/configuration state that a stats reset must
// preserve. DESIGN.md §6b–6c document the contract and annotation grammar.
package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AnalyzerNames lists every analyzer the suite runs, in gate order. The
// first five are the AST layer (Run); "escape" is the compiler-witnessed
// layer (Escape, fed by CollectFacts).
var AnalyzerNames = []string{"hotpath", "hotcall", "syncorder", "determinism", "statsreset", "escape"}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string // one of AnalyzerNames
	Message  string
}

// String formats the finding the way compilers do: file:line:col: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed directory of non-test Go files.
type Package struct {
	Rel   string // module-relative directory, "" for the root
	Dir   string // absolute or cleaned directory path
	Fset  *token.FileSet
	Files []*ast.File

	// markers caches, per file, the line numbers carrying each //bfetch:
	// suppression marker.
	markers map[*ast.File]map[string]map[int]bool

	// mapFieldCache memoizes the package's map-typed struct field names for
	// the determinism analyzer.
	mapFieldCache map[string]bool
}

// Options configures a Run.
type Options struct {
	// DeterminismPkgs lists the module-relative package directories the
	// determinism analyzer applies to. Hotpath and statsreset always run
	// module-wide (they trigger only on annotations/method names).
	DeterminismPkgs []string
}

// DefaultOptions scopes determinism to the packages whose output feeds
// recorded experiment results.
func DefaultOptions() Options {
	return Options{DeterminismPkgs: []string{
		"internal/sim", "internal/harness", "internal/runner", "internal/workload",
		"internal/obs", "internal/store",
	}}
}

// Run applies the AST-layer analyzers (hotpath, hotcall, syncorder,
// determinism, statsreset) to the packages and returns the surviving
// (unsuppressed) diagnostics sorted by position. The compiler-witnessed
// escape analyzer is separate (CollectFacts + Escape) because it shells out
// to the toolchain.
func Run(pkgs []*Package, opts Options) []Diagnostic {
	det := make(map[string]bool, len(opts.DeterminismPkgs))
	for _, p := range opts.DeterminismPkgs {
		det[p] = true
	}
	idx := buildModuleIndex(pkgs)
	fidx := buildFuncIndex(pkgs)
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, Hotpath(p, idx)...)
		out = append(out, StatsReset(p)...)
		out = append(out, SyncOrder(p)...)
		if det[p.Rel] {
			out = append(out, Determinism(p, idx)...)
		}
	}
	out = append(out, Hotcall(pkgs, fidx)...)
	sortDiags(out)
	return out
}

// RunResult is the outcome of the full two-layer gate.
type RunResult struct {
	Diags []Diagnostic
	Ran   []string // analyzers that actually executed, in gate order
	// Warnings carries non-fatal degradations — most importantly the
	// escape analyzer skipping itself because the toolchain's diagnostic
	// format was not recognized. A warning is not a pass: CI surfaces it.
	Warnings []string
	Packages int
}

// RunAll loads the module at root and applies the AST layer and, when
// compiler is true, the compiler-witnessed escape layer. An unrecognizable
// toolchain diagnostic format degrades escape to a skip-with-warning rather
// than an error (or a false pass).
func RunAll(root string, opts Options, compiler bool, copts CollectOptions) (RunResult, error) {
	pkgs, err := LoadModule(root)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Packages: len(pkgs)}
	res.Diags = Run(pkgs, opts)
	res.Ran = []string{"hotpath", "hotcall", "syncorder", "determinism", "statsreset"}
	if compiler {
		facts, ferr := CollectFacts(root, pkgs, copts)
		switch {
		case errors.Is(ferr, ErrNoFacts):
			res.Warnings = append(res.Warnings, ferr.Error())
		case ferr != nil:
			return res, ferr
		default:
			fidx := buildFuncIndex(pkgs)
			diags := Escape(pkgs, fidx, facts)
			res.Diags = append(res.Diags, diags...)
			res.Ran = append(res.Ran, "escape")
			sortDiags(res.Diags)
		}
	}
	return res, nil
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
}

// ---------------------------------------------------------------- markers --

// markerLines returns the set of lines in f whose comments carry marker
// (e.g. "bfetch:alloc-ok"), computing the file's marker table on first use.
func (p *Package) markerLines(f *ast.File, marker string) map[int]bool {
	if p.markers == nil {
		p.markers = make(map[*ast.File]map[string]map[int]bool)
	}
	byMarker, ok := p.markers[f]
	if !ok {
		byMarker = make(map[string]map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "bfetch:") {
					continue
				}
				name := text
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					name = text[:i]
				}
				line := p.Fset.Position(c.Pos()).Line
				if byMarker[name] == nil {
					byMarker[name] = make(map[int]bool)
				}
				byMarker[name][line] = true
			}
		}
		p.markers[f] = byMarker
	}
	return byMarker[marker]
}

// markerArgs returns, per line, the text following marker in f's comments
// (e.g. the reason string of //bfetch:noinline-ok or //bfetch:coldcall).
// Lines carrying the marker with no argument map to "".
func (p *Package) markerArgs(f *ast.File, marker string) map[int]string {
	out := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, marker) {
				continue
			}
			rest := text[len(marker):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // a different, longer marker name
			}
			out[p.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
		}
	}
	return out
}

// suppressed reports whether pos is covered by marker: the marker comment
// sits on the same line or on the line immediately above.
func (p *Package) suppressed(f *ast.File, pos token.Pos, marker string) bool {
	lines := p.markerLines(f, marker)
	if lines == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// report appends a diagnostic unless a suppression marker covers it.
func (p *Package) report(out *[]Diagnostic, f *ast.File, pos token.Pos,
	analyzer, marker, format string, args ...any) {
	if marker != "" && p.suppressed(f, pos, marker) {
		return
	}
	*out = append(*out, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// hasDirective reports whether the comment group contains the given
// //bfetch: directive. Directive-style comments (no space after //) are
// excluded from CommentGroup.Text, so the raw list is scanned.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// -------------------------------------------------------- module-wide index --

// moduleIndex carries the cross-package facts analyzers need without
// go/types: which functions return maps (so callers' map-typed variables can
// be tracked), which take variadic any parameters (argument boxing), and
// which named types are declared as slices or maps.
type moduleIndex struct {
	// mapResults maps "pkgbase.FuncName" and "rel|FuncName" to the indices
	// of map-typed results in that function's result list.
	mapResults map[string][]int
	// variadicAny marks functions declared with a ...any / ...interface{}
	// parameter, keyed like mapResults.
	variadicAny map[string]bool
	// sliceMapTypes marks named types declared as slice or map types, keyed
	// "pkgbase.TypeName" and "rel|TypeName".
	sliceMapTypes map[string]bool
}

func buildModuleIndex(pkgs []*Package) *moduleIndex {
	idx := &moduleIndex{
		mapResults:    make(map[string][]int),
		variadicAny:   make(map[string]bool),
		sliceMapTypes: make(map[string]bool),
	}
	for _, p := range pkgs {
		base := pkgBase(p.Rel)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv != nil {
						continue
					}
					if hasVariadicAny(d.Type) {
						idx.variadicAny[base+"."+d.Name.Name] = true
						idx.variadicAny[p.Rel+"|"+d.Name.Name] = true
					}
					if d.Type.Results == nil {
						continue
					}
					var mapIdx []int
					i := 0
					for _, field := range d.Type.Results.List {
						n := len(field.Names)
						if n == 0 {
							n = 1
						}
						for k := 0; k < n; k++ {
							if _, isMap := field.Type.(*ast.MapType); isMap {
								mapIdx = append(mapIdx, i)
							}
							i++
						}
					}
					if len(mapIdx) > 0 {
						idx.mapResults[base+"."+d.Name.Name] = mapIdx
						idx.mapResults[p.Rel+"|"+d.Name.Name] = mapIdx
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						switch t := ts.Type.(type) {
						case *ast.MapType:
							idx.sliceMapTypes[base+"."+ts.Name.Name] = true
							idx.sliceMapTypes[p.Rel+"|"+ts.Name.Name] = true
						case *ast.ArrayType:
							if t.Len == nil {
								idx.sliceMapTypes[base+"."+ts.Name.Name] = true
								idx.sliceMapTypes[p.Rel+"|"+ts.Name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return idx
}

// hasVariadicAny reports whether the signature ends in ...any or
// ...interface{}.
func hasVariadicAny(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	last := ft.Params.List[len(ft.Params.List)-1]
	el, ok := last.Type.(*ast.Ellipsis)
	if !ok {
		return false
	}
	switch t := el.Elt.(type) {
	case *ast.Ident:
		return t.Name == "any"
	case *ast.InterfaceType:
		return t.Methods == nil || len(t.Methods.List) == 0
	}
	return false
}

func pkgBase(rel string) string {
	if i := strings.LastIndexByte(rel, '/'); i >= 0 {
		return rel[i+1:]
	}
	return rel
}
