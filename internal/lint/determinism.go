package lint

import (
	"go/ast"
	"strconv"
)

// randSafe lists math/rand constructors that build a locally seeded
// generator — the required idiom. Everything else at package level draws
// from the global, unseeded source.
var randSafe = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism enforces the packages-under-measurement reproducibility
// contract: simulation results must be bit-identical run to run regardless
// of scheduling, so
//
//   - top-level math/rand functions (the shared global source) are banned;
//     workload builders must use a local seeded *rand.Rand
//     (rand.New(rand.NewSource(k))) — no escape hatch, fix the code;
//   - time.Now / time.Since feed wall-clock into results; uses that only
//     report elapsed time (runner throughput stats) are annotated
//     //bfetch:wallclock;
//   - ranging over a map while appending to a slice or printing publishes
//     iteration order into results. The sanctioned idiom — collect keys,
//     sort, iterate the sorted slice — is recognized: an append inside a map
//     range is allowed when a sort.* call on the same slice follows the
//     loop. //bfetch:orderok suppresses the rare deliberate case.
func Determinism(p *Package, idx *moduleIndex) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		randName, timeName := importNames(f)
		fields := mapFields(p)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			d := &detCheck{p: p, f: f, idx: idx, out: &out,
				randName: randName, timeName: timeName, mapFields: fields}
			d.mapVars = d.collectMapVars(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool { return d.visit(fd, n) })
		}
	}
	return out
}

type detCheck struct {
	p         *Package
	f         *ast.File
	idx       *moduleIndex
	out       *[]Diagnostic
	randName  string          // local name of the math/rand import, "" if absent
	timeName  string          // local name of the time import, "" if absent
	mapFields map[string]bool // field names of map type declared in this package
	mapVars   map[string]bool // local variables of map type in the current function
}

func (d *detCheck) visit(fd *ast.FuncDecl, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if d.randName != "" && x.Name == d.randName && !randSafe[sel.Sel.Name] &&
			ast.IsExported(sel.Sel.Name) {
			d.p.report(d.out, d.f, n.Pos(), "determinism", "",
				"global math/rand.%s draws from the shared unseeded source; use a local rand.New(rand.NewSource(seed))", sel.Sel.Name)
		}
		if d.timeName != "" && x.Name == d.timeName &&
			(sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
			d.p.report(d.out, d.f, n.Pos(), "determinism", "bfetch:wallclock",
				"time.%s reads the wall clock; annotate //bfetch:wallclock if this only feeds elapsed-time stats", sel.Sel.Name)
		}
	case *ast.RangeStmt:
		if d.isMapExpr(n.X) {
			d.mapRange(fd, n)
			// Keep descending: rand/time calls inside the body still need
			// their own checks, and nested map ranges get their own visit.
		}
	}
	return true
}

// mapRange inspects the body of a range over a map for order-sensitive
// publication.
func (d *detCheck) mapRange(fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if d.isMapExpr(n.X) {
				return false // the nested range gets its own mapRange via visit
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" || i >= len(n.Lhs) {
					continue
				}
				base := baseIdent(n.Lhs[i])
				if base != nil && sortDominates(fd, rs, base.Name) {
					continue // collect-keys-then-sort idiom
				}
				name := "<expr>"
				if base != nil {
					name = base.Name
				}
				d.p.report(d.out, d.f, call.Pos(), "determinism", "bfetch:orderok",
					"append to %q inside a map range publishes iteration order; sort the keys first (or sort %q afterwards)", name, name)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == "fmt" {
					d.p.report(d.out, d.f, n.Pos(), "determinism", "bfetch:orderok",
						"fmt.%s inside a map range emits output in iteration order; iterate sorted keys", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// sortDominates reports whether a sort.* call mentioning name appears in the
// function after the range statement — the collect-then-sort idiom.
func sortDominates(fd *ast.FuncDecl, rs *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "sort" {
			return true
		}
		for _, arg := range call.Args {
			hit := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && id.Name == name {
					hit = true
				}
				return !hit
			})
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isMapExpr reports whether the expression is map-typed, best-effort without
// go/types: tracked local variables, fields whose declared type in this
// package is a map, calls to module functions returning maps, and map
// literals.
func (d *detCheck) isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return d.mapVars[v.Name]
	case *ast.SelectorExpr:
		return d.mapFields[v.Sel.Name]
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if idxs := d.callMapResults(v); len(idxs) > 0 {
			return true
		}
	}
	return false
}

// callMapResults returns the map-typed result indices of a called module
// function, if known.
func (d *detCheck) callMapResults(call *ast.CallExpr) []int {
	if d.idx == nil {
		return nil
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return d.idx.mapResults[d.p.Rel+"|"+fun.Name]
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return d.idx.mapResults[x.Name+"."+fun.Sel.Name]
		}
	}
	return nil
}

// collectMapVars gathers the function's map-typed names: parameters declared
// map[...], locals built with make(map...), map literals, or assigned from
// calls with map-typed results.
func (d *detCheck) collectMapVars(fd *ast.FuncDecl) map[string]bool {
	vars := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, name := range field.Names {
					vars[name.Name] = true
				}
			}
		}
	}
	mark := func(name string, rhs ast.Expr) {
		switch v := rhs.(type) {
		case *ast.CompositeLit:
			if _, ok := v.Type.(*ast.MapType); ok {
				vars[name] = true
			}
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
				if _, isMap := v.Args[0].(*ast.MapType); isMap {
					vars[name] = true
				}
				return
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id.Name, n.Rhs[i])
					}
				}
			}
			// Multi-value: a, b := f() where f returns maps at known indices.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					for _, mi := range d.callMapResults(call) {
						if mi < len(n.Lhs) {
							if id, ok := n.Lhs[mi].(*ast.Ident); ok {
								vars[id.Name] = true
							}
						}
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						if _, isMap := vs.Type.(*ast.MapType); isMap {
							for _, name := range vs.Names {
								vars[name.Name] = true
							}
						}
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								mark(name.Name, vs.Values[i])
							}
						}
					}
				}
			}
		}
		return true
	})
	return vars
}

// mapFields returns the names of struct fields declared with map types
// anywhere in the package (selector-typed map detection without go/types).
func mapFields(p *Package) map[string]bool {
	if p.mapFieldCache != nil {
		return p.mapFieldCache
	}
	out := make(map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if _, isMap := field.Type.(*ast.MapType); isMap {
					for _, name := range field.Names {
						out[name.Name] = true
					}
				}
			}
			return true
		})
	}
	p.mapFieldCache = out
	return out
}

// importNames returns the local names of the math/rand and time imports.
func importNames(f *ast.File) (randName, timeName string) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "math/rand", "math/rand/v2":
			if name == "" {
				randName = "rand"
			} else {
				randName = name
			}
		case "time":
			if name == "" {
				timeName = "time"
			} else {
				timeName = name
			}
		}
	}
	return randName, timeName
}
