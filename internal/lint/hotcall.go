package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Hotcall closes the per-function blind spot of the hotpath analyzer: it
// builds an intra-module call graph, computes the transitive closure of
// every function reachable from a //bfetch:hotpath root, and requires each
// reachable function to be either annotated //bfetch:hotpath itself (and so
// checked by the hotpath and escape analyzers) or provable trivially
// alloc-free — a body that passes the hotpath allocation checks and calls
// nothing but safe builtins, math/bits-style pure stdlib, and other
// trivial/annotated functions.
//
// Call edges are resolved without go/types, best-effort but deliberately
// conservative: same-package functions by name, pkg.F through the file's
// module-internal imports, and methods first by receiver-type inference
// (receiver/parameter declarations and struct field types, followed through
// selector chains) then by name across the calling file's package and
// module-internal imports. Unresolvable calls (interface dispatch on
// unknown types, function values, stdlib) contribute no edge — hotpath
// implementations behind interfaces are expected to be annotated roots
// themselves, which the engine convention already guarantees.
//
// //bfetch:coldcall <reason> on (or immediately above) a call line severs
// that edge: the call is declared a cold sub-path (error exit, once-per-run
// slow path) whose callee is deliberately outside the hot contract. The
// reason string is mandatory.
func Hotcall(pkgs []*Package, fidx *funcIndex) []Diagnostic {
	var out []Diagnostic

	// Breadth-first closure from the annotated roots; seen records the
	// witnessing edge that first reached each function (nil for roots).
	seen := make(map[*funcNode]*callEdge)
	var queue []*funcNode
	for _, n := range fidx.nodes {
		if n.hotpath {
			seen[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range fidx.edges(cur) {
			if e.cold {
				continue
			}
			for _, callee := range e.targets {
				if _, ok := seen[callee]; ok {
					continue
				}
				ec := e
				seen[callee] = &ec
				queue = append(queue, callee)
			}
		}
	}

	trivial := fidx.trivialSet(seen)

	// Deterministic report order: by callee position.
	nodes := make([]*funcNode, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].decl.Pos() < nodes[j].decl.Pos() })

	for _, n := range nodes {
		if n.hotpath || trivial[n] {
			continue
		}
		via := seen[n]
		why := fidx.nonTrivialReason(n, trivial)
		caller, site := "<root>", ""
		if via != nil {
			caller = via.from.displayName()
			pos := via.from.p.Fset.Position(via.pos)
			site = fmt.Sprintf(" (call at %s:%d)", filepath.Base(pos.Filename), pos.Line)
		}
		n.p.report(&out, n.f, n.decl.Name.Pos(), "hotcall", "",
			"%s is reachable from the //bfetch:hotpath closure (via %s%s) but is neither annotated //bfetch:hotpath nor trivially alloc-free: %s",
			n.displayName(), caller, site, why)
	}

	// A coldcall hatch must carry a reason; a bare marker is unauditable.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for line, text := range p.markerArgs(f, "bfetch:coldcall") {
				if strings.TrimSpace(text) == "" {
					p.report(&out, f, f.Pos(), "hotcall", "",
						"%s:%d: //bfetch:coldcall requires a reason string", filepath.Base(p.Fset.Position(f.Pos()).Filename), line)
				}
			}
		}
	}
	return out
}

// ----------------------------------------------------------- function index --

// funcNode is one function or method declaration in the module.
type funcNode struct {
	p        *Package
	f        *ast.File
	decl     *ast.FuncDecl
	name     string // declared name
	recvType string // receiver type name, "" for plain functions
	hotpath  bool

	edgesOnce bool
	edgeList  []callEdge
}

func (n *funcNode) displayName() string {
	pkg := pkgBase(n.p.Rel)
	if pkg == "" {
		pkg = "main"
	}
	if n.recvType != "" {
		return fmt.Sprintf("%s.%s.%s", pkg, n.recvType, n.name)
	}
	return fmt.Sprintf("%s.%s", pkg, n.name)
}

// callEdge is one call site with its resolved candidate targets.
type callEdge struct {
	from    *funcNode
	pos     token.Pos
	callee  string // base name as written at the call site
	targets []*funcNode
	cold    bool // //bfetch:coldcall severs the edge
	// unresolved marks a call that names no module function we could
	// resolve — interface dispatch, func values, stdlib. Reachability
	// ignores it; the triviality proof treats it as disqualifying unless
	// whitelisted.
	unresolved bool
	// safe marks calls that cannot allocate: builtins, numeric
	// conversions, whitelisted pure stdlib.
	safe bool
}

// funcIndex carries every function declaration in the module plus the type
// hints needed to resolve method calls.
type funcIndex struct {
	pkgs  []*Package
	nodes []*funcNode

	byPkgFunc   map[string]*funcNode   // "rel|name" → plain function
	byPkgMethod map[string][]*funcNode // "rel|name" → methods with that name
	hotByBase   map[string]bool        // base names annotated hotpath anywhere
	pkgByRel    map[string]*Package

	// fieldType maps "rel|Type|field" to the named type of a struct field:
	// "rel2|Type2" (module-internal packages only).
	fieldType map[string]string
	// imports maps file → local import name → module-relative package dir.
	imports map[*ast.File]map[string]string
	// modPath is the module path from go.mod ("repro"), used to recognize
	// module-internal imports.
	modPath string
}

func buildFuncIndex(pkgs []*Package) *funcIndex {
	fi := &funcIndex{
		pkgs:        pkgs,
		byPkgFunc:   make(map[string]*funcNode),
		byPkgMethod: make(map[string][]*funcNode),
		hotByBase:   make(map[string]bool),
		pkgByRel:    make(map[string]*Package),
		fieldType:   make(map[string]string),
		imports:     make(map[*ast.File]map[string]string),
		modPath:     moduleImportPath(pkgs),
	}
	byBaseName := make(map[string]string) // package base name → rel (for import resolution)
	for _, p := range pkgs {
		fi.pkgByRel[p.Rel] = p
		byBaseName[pkgBase(p.Rel)] = p.Rel
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			imp := make(map[string]string)
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				rel, ok := fi.moduleRelImport(path)
				if !ok {
					continue
				}
				name := pkgBase(rel)
				if spec.Name != nil {
					name = spec.Name.Name
				}
				imp[name] = rel
			}
			fi.imports[f] = imp

			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					n := &funcNode{p: p, f: f, decl: d, name: d.Name.Name,
						hotpath: hasDirective(d.Doc, "bfetch:hotpath")}
					if d.Recv != nil {
						_, n.recvType = recvInfo(d)
					}
					fi.nodes = append(fi.nodes, n)
					if n.recvType == "" {
						fi.byPkgFunc[p.Rel+"|"+n.name] = n
					} else {
						fi.byPkgMethod[p.Rel+"|"+n.name] = append(fi.byPkgMethod[p.Rel+"|"+n.name], n)
					}
					if n.hotpath {
						fi.hotByBase[n.name] = true
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok || st.Fields == nil {
							continue
						}
						for _, field := range st.Fields.List {
							ftype := namedTypeOf(field.Type, f, fi, byBaseName, p.Rel)
							if ftype == "" {
								continue
							}
							for _, name := range field.Names {
								fi.fieldType[p.Rel+"|"+ts.Name.Name+"|"+name.Name] = ftype
							}
						}
					}
				}
			}
		}
	}
	return fi
}

// moduleRelImport maps an import path to a module-relative dir, if the path
// is inside this module.
func (fi *funcIndex) moduleRelImport(path string) (string, bool) {
	if fi.modPath == "" {
		return "", false
	}
	if path == fi.modPath {
		return "", true
	}
	if strings.HasPrefix(path, fi.modPath+"/") {
		return path[len(fi.modPath)+1:], true
	}
	return "", false
}

// moduleImportPath infers the module path from any file's module-internal
// imports; falls back to scanning go.mod next to the root package.
func moduleImportPath(pkgs []*Package) string {
	for _, p := range pkgs {
		if p.Rel == "" {
			data, err := readGoModModule(p.Dir)
			if err == nil {
				return data
			}
		}
	}
	// No root package parsed: walk up from the first package dir.
	if len(pkgs) > 0 {
		dir := pkgs[0].Dir
		for i := 0; i < 10; i++ {
			if m, err := readGoModModule(dir); err == nil {
				return m
			}
			parent := filepath.Dir(dir)
			if parent == dir {
				break
			}
			dir = parent
		}
	}
	return ""
}

// namedTypeOf resolves a field type expression to "rel|TypeName" when it
// names a struct type in this module ("" otherwise). Pointers are followed;
// slices/maps/funcs/interfaces are not.
func namedTypeOf(t ast.Expr, f *ast.File, fi *funcIndex, byBaseName map[string]string, selfRel string) string {
	for {
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
			continue
		}
		break
	}
	switch v := t.(type) {
	case *ast.Ident:
		return selfRel + "|" + v.Name
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			if rel, ok := fi.imports[f][x.Name]; ok {
				return rel + "|" + v.Sel.Name
			}
			if rel, ok := byBaseName[x.Name]; ok {
				return rel + "|" + v.Sel.Name
			}
		}
	}
	return ""
}

// ------------------------------------------------------------- call edges --

// safeBuiltins never allocate on the hot path (panic is terminal: by the
// time it fires the cycle kernel is already aborting).
var safeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "panic": true, "print": true, "println": true,
	"real": true, "imag": true, "complex": true, "clear": true,
}

// numericTypes recognizes builtin conversion calls that stay on the stack.
var numericTypes = map[string]bool{
	"bool": true, "byte": true, "rune": true, "uintptr": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"float32": true, "float64": true, "complex64": true, "complex128": true,
}

// safeStdlibPkgs are stdlib packages whose exported functions are pure and
// non-allocating — safe to call from trivially-alloc-free helpers.
var safeStdlibPkgs = map[string]bool{"bits": true, "math": true}

// edges resolves (and memoizes) the outgoing call edges of a node.
func (fi *funcIndex) edges(n *funcNode) []callEdge {
	if n.edgesOnce {
		return n.edgeList
	}
	n.edgesOnce = true
	recvName := ""
	if n.decl.Recv != nil {
		recvName, _ = recvInfo(n.decl)
	}
	types := fi.localTypes(n, recvName)
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		e := fi.resolveCall(n, call, types)
		e.cold = n.p.suppressed(n.f, call.Pos(), "bfetch:coldcall")
		n.edgeList = append(n.edgeList, e)
		return true
	})
	return n.edgeList
}

// localTypes maps the function's receiver and parameters to "rel|Type" for
// module-internal named types.
func (fi *funcIndex) localTypes(n *funcNode, recvName string) map[string]string {
	byBaseName := make(map[string]string)
	for _, p := range fi.pkgs {
		byBaseName[pkgBase(p.Rel)] = p.Rel
	}
	types := make(map[string]string)
	if recvName != "" && n.recvType != "" {
		types[recvName] = n.p.Rel + "|" + n.recvType
	}
	if n.decl.Type.Params != nil {
		for _, field := range n.decl.Type.Params.List {
			t := namedTypeOf(field.Type, n.f, fi, byBaseName, n.p.Rel)
			if t == "" {
				continue
			}
			for _, name := range field.Names {
				types[name.Name] = t
			}
		}
	}
	return types
}

// resolveCall classifies one call expression and resolves its module-internal
// targets.
func (fi *funcIndex) resolveCall(n *funcNode, call *ast.CallExpr, types map[string]string) callEdge {
	e := callEdge{from: n, pos: call.Pos()}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		e.callee = fun.Name
		if safeBuiltins[fun.Name] || numericTypes[fun.Name] ||
			fun.Name == "make" || fun.Name == "new" || fun.Name == "append" || fun.Name == "string" {
			// The allocating builtins are safe *edges*: whether they
			// allocate is the body check's question (bodyAllocClean flags
			// make/new/string and append-to-fresh-local), not the graph's.
			e.safe = true
			return e
		}
		if t := fi.byPkgFunc[n.p.Rel+"|"+fun.Name]; t != nil {
			e.targets = []*funcNode{t}
			return e
		}
		e.unresolved = true
	case *ast.SelectorExpr:
		e.callee = fun.Sel.Name
		if x, ok := fun.X.(*ast.Ident); ok {
			// pkg.F through a module-internal import.
			if rel, ok := fi.imports[n.f][x.Name]; ok {
				if t := fi.byPkgFunc[rel+"|"+fun.Sel.Name]; t != nil {
					e.targets = []*funcNode{t}
					return e
				}
				// pkg.Type method value or unexported func we didn't index.
				e.unresolved = true
				return e
			}
			if safeStdlibPkgs[x.Name] && fi.imports[n.f][x.Name] == "" {
				e.safe = true
				return e
			}
		}
		// Method call: typed resolution first, name fallback second.
		if t := fi.typedReceiver(fun.X, n, types); t != "" {
			rel, typ, _ := strings.Cut(t, "|")
			for _, m := range fi.byPkgMethod[rel+"|"+fun.Sel.Name] {
				if m.recvType == typ {
					e.targets = []*funcNode{m}
					return e
				}
			}
			// Known type, no such method in-module (embedded/interface):
			// fall through to the name fallback.
		}
		var cands []*funcNode
		cands = append(cands, fi.byPkgMethod[n.p.Rel+"|"+fun.Sel.Name]...)
		for _, rel := range fi.imports[n.f] {
			cands = append(cands, fi.byPkgMethod[rel+"|"+fun.Sel.Name]...)
		}
		if len(cands) > 0 {
			e.targets = cands
			return e
		}
		e.unresolved = true
	default:
		// Conversions to named types, func values, etc.
		e.unresolved = true
	}
	return e
}

// typedReceiver resolves the receiver expression of a method call to
// "rel|Type" by following identifier → selector chains through declared
// receiver/parameter types and struct field types.
func (fi *funcIndex) typedReceiver(x ast.Expr, n *funcNode, types map[string]string) string {
	switch v := x.(type) {
	case *ast.Ident:
		return types[v.Name]
	case *ast.ParenExpr:
		return fi.typedReceiver(v.X, n, types)
	case *ast.StarExpr:
		return fi.typedReceiver(v.X, n, types)
	case *ast.UnaryExpr:
		return fi.typedReceiver(v.X, n, types)
	case *ast.IndexExpr:
		return "" // element types not tracked
	case *ast.SelectorExpr:
		base := fi.typedReceiver(v.X, n, types)
		if base == "" {
			return ""
		}
		return fi.fieldType[base+"|"+v.Sel.Name]
	}
	return ""
}

// ------------------------------------------------------------- triviality --

// trivialSet computes, by fixpoint, which reachable un-annotated functions
// are provably trivially alloc-free: body passes the hotpath allocation
// checks and every call is safe, annotated, or itself trivial.
func (fi *funcIndex) trivialSet(reachable map[*funcNode]*callEdge) map[*funcNode]bool {
	trivial := make(map[*funcNode]bool, len(reachable))
	for n := range reachable {
		if !n.hotpath {
			trivial[n] = fi.bodyAllocClean(n)
		}
	}
	for changed := true; changed; {
		changed = false
		for n, ok := range trivial {
			if !ok {
				continue
			}
			if !fi.callsTrivial(n, trivial) {
				trivial[n] = false
				changed = true
			}
		}
	}
	return trivial
}

// bodyAllocClean runs the hotpath allocation checks over a function body
// (ignoring suppression markers: a trivial function needs no hatches).
func (fi *funcIndex) bodyAllocClean(n *funcNode) bool {
	var out []Diagnostic
	h := &hotpathCheck{p: n.p, f: n.f, idx: nil, out: &out, nosuppress: true}
	h.fresh = freshLocals(n.decl)
	ast.Inspect(n.decl.Body, h.visit)
	return len(out) == 0
}

// callsTrivial reports whether every non-cold call in n resolves to safe,
// hotpath-annotated, or currently-trivial targets.
func (fi *funcIndex) callsTrivial(n *funcNode, trivial map[*funcNode]bool) bool {
	for _, e := range fi.edges(n) {
		if e.safe || e.cold {
			continue
		}
		if e.unresolved {
			if fi.hotByBase[e.callee] {
				continue // interface dispatch onto annotated implementations
			}
			return false
		}
		for _, t := range e.targets {
			if t.hotpath || trivial[t] {
				continue
			}
			return false
		}
	}
	return true
}

// nonTrivialReason explains why a reachable function failed the triviality
// proof, for the diagnostic message.
func (fi *funcIndex) nonTrivialReason(n *funcNode, trivial map[*funcNode]bool) string {
	if !fi.bodyAllocClean(n) {
		var out []Diagnostic
		h := &hotpathCheck{p: n.p, f: n.f, idx: nil, out: &out, nosuppress: true}
		h.fresh = freshLocals(n.decl)
		ast.Inspect(n.decl.Body, h.visit)
		return fmt.Sprintf("body allocates (%s)", out[0].Message)
	}
	for _, e := range fi.edges(n) {
		if e.safe || e.cold {
			continue
		}
		if e.unresolved {
			if fi.hotByBase[e.callee] {
				continue
			}
			return fmt.Sprintf("calls %s, which cannot be resolved in-module", e.callee)
		}
		for _, t := range e.targets {
			if !t.hotpath && !trivial[t] {
				return fmt.Sprintf("calls non-trivial %s", t.displayName())
			}
		}
	}
	return "not provably alloc-free"
}

func readGoModModule(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
}
