// Package storedet holds known-bad fixtures shaped like the durable store:
// unannotated wall-clock reads around disk I/O and directory scans that
// publish map iteration order. Parsed by the golden tests, never compiled.
package storedet

import (
	"fmt"
	"time"
)

// badReadTiming times a disk read without the //bfetch:wallclock marker
// saying the measurement only feeds latency stats.
func badReadTiming(read func() []byte) ([]byte, time.Duration) {
	start := time.Now() // want "time.Now reads the wall clock"
	data := read()
	return data, time.Since(start) // want "time.Since reads the wall clock"
}

// badScanEntries collects cache entries from an in-memory index in map
// order — a warm-store listing whose order would differ run to run.
func badScanEntries(index map[string][]byte) []string {
	var keys []string
	for k := range index {
		keys = append(keys, k) // want "inside a map range publishes iteration order"
	}
	return keys
}

// badReportMetrics prints per-kind store metrics in map order.
func badReportMetrics(byKind map[string]uint64) {
	for kind, n := range byKind {
		fmt.Printf("%s: %d entries\n", kind, n) // want "fmt.Printf inside a map range emits output in iteration order"
	}
}
