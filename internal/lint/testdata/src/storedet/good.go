package storedet

import (
	"sort"
	"time"
)

// goodReadTiming is the sanctioned shape internal/store uses: the clock read
// is annotated because it only feeds a read-latency metric, never a key,
// payload, or simulated quantity.
func goodReadTiming(read func() []byte) ([]byte, time.Duration) {
	start := time.Now() //bfetch:wallclock read-latency metric, reported only
	data := read()
	return data, time.Since(start) //bfetch:wallclock
}

// goodScanEntries collects then sorts, so the published listing is
// independent of map iteration order.
func goodScanEntries(index map[string][]byte) []string {
	var keys []string
	for k := range index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
