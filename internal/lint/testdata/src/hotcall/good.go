package hotcall

type gauge struct {
	buf []uint64
	n   int
}

//bfetch:hotpath
func (g *gauge) tick(v uint64) {
	g.record(v)
	g.buf = appendSample(g.buf, v)
}

// record is trivially alloc-free: indexing and arithmetic only.
func (g *gauge) record(v uint64) {
	g.buf[g.n&(len(g.buf)-1)] = v
	g.n++
}

// appendSample appends to a caller-owned slice — the sanctioned
// scratch-buffer idiom, still trivially alloc-free.
func appendSample(dst []uint64, v uint64) []uint64 {
	return append(dst, v)
}
