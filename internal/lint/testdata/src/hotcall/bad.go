// Package hotcall is the golden fixture for the transitive hotpath-closure
// analyzer: every function reachable from a //bfetch:hotpath root must be
// annotated itself, proven trivially alloc-free, or severed from the
// closure with a reasoned //bfetch:coldcall.
package hotcall // want "coldcall requires a reason string"

type engine struct {
	scratch []int
	sum     int
}

// cycle drives one simulated step; everything it calls is in its closure.
//
//bfetch:hotpath
func (e *engine) cycle(n int) {
	e.sum += trivialLeaf(n) // unannotated but provably alloc-free: fine
	e.annotated(n)          // annotated: checked on its own terms
	e.mid(n)                // transitively reaches the allocating leaf
	e.logState(n)           //bfetch:coldcall once-per-run debug dump
	e.dump(n)               //bfetch:coldcall
}

//bfetch:hotpath
func (e *engine) annotated(n int) { e.sum ^= n }

// trivialLeaf is unannotated: arithmetic only, trivially alloc-free.
func trivialLeaf(n int) int { return n*3 + 1 }

// mid is clean itself but calls an allocating leaf, so neither it nor the
// leaf can be waved through.
func (e *engine) mid(n int) { // want "neither annotated //bfetch:hotpath nor trivially alloc-free"
	e.leaf(n)
}

// leaf allocates; reachable via cycle -> mid.
func (e *engine) leaf(n int) { // want "neither annotated //bfetch:hotpath nor trivially alloc-free"
	e.scratch = make([]int, n)
}

// logState is severed from the closure by the reasoned coldcall at its call
// site; its allocation is out of scope.
func (e *engine) logState(n int) {
	e.scratch = make([]int, n)
}

// dump's coldcall hatch above carries no reason — that marker itself is the
// finding (reported at the package clause). The edge is still severed.
func (e *engine) dump(n int) {
	e.scratch = make([]int, n)
}
