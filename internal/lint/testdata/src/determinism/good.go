package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// goodLocalRand is the required idiom: a locally seeded generator.
func goodLocalRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// goodSortedKeys is the sanctioned collect-keys-then-sort idiom: the append
// inside the map range is allowed because the slice is sorted before use.
func goodSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodWallClock only feeds elapsed-time stats and says so.
func goodWallClock() time.Duration {
	start := time.Now()      //bfetch:wallclock elapsed-time logging only
	return time.Since(start) //bfetch:wallclock
}

// goodOrderOk documents a deliberate order-insensitive publication: summing
// is commutative, and the marker records that the author checked.
func goodOrderOk(m map[string]int) []int {
	var totals []int
	for _, v := range m {
		totals = append(totals, v) //bfetch:orderok feeds an order-insensitive sum
	}
	return totals
}

// goodSliceRange ranges over a slice, not a map: no order hazard.
func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
