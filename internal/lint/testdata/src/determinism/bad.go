// Package determinism holds known-bad fixtures for the determinism analyzer.
// Parsed by the golden tests, never compiled.
package determinism

import (
	"fmt"
	"math/rand"
	"time"
)

func badGlobalRand(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn draws from the shared unseeded source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand.Shuffle"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func badWallClock() int64 {
	t := time.Now() // want "time.Now reads the wall clock"
	return t.UnixNano()
}

func badMapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "inside a map range publishes iteration order"
	}
	return out
}

func badMapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside a map range emits output in iteration order"
	}
}
