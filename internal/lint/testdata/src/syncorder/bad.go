// Package syncorder is the golden fixture for the concurrency-discipline
// analyzer: sends under locks, lock-order inversions against the declared
// partial order, and sync types copied by value.
//
//bfetch:lockorder server.mu < server.logMu
package syncorder

import "sync"

type server struct {
	mu    sync.Mutex
	logMu sync.Mutex
	ch    chan int
	n     int
}

// notify blocks inside the critical section: a slow receiver convoys every
// other Lock caller.
func (s *server) notify(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding server.mu"
	s.mu.Unlock()
}

// inverted acquires mu under logMu, contradicting the declared order.
func (s *server) inverted() {
	s.logMu.Lock()
	s.mu.Lock() // want "contradicts declared lock order server.mu < server.logMu"
	s.n++
	s.mu.Unlock()
	s.logMu.Unlock()
}

// snapshot copies both mutexes through its value receiver.
func (s server) snapshot() int { // want "value receiver of lock-bearing type server"
	return s.n
}

// merge copies the locks through a by-value parameter.
func merge(a server) int { // want "passes lock-bearing type server by value"
	return a.n
}
