package syncorder

import "sync"

type worker struct {
	mu   sync.Mutex
	done chan struct{}
	out  chan int
	n    int
}

// finish signals completion under the lock with close — it never blocks,
// which is the house idiom (the runner's singleflight entries).
func (w *worker) finish() {
	w.mu.Lock()
	w.n++
	close(w.done)
	w.mu.Unlock()
}

// publish sends only after the critical section.
func (w *worker) publish(v int) {
	w.mu.Lock()
	v += w.n
	w.mu.Unlock()
	w.out <- v
}

// urgent is a deliberate exception, hatched with a reason.
func (w *worker) urgent(v int) {
	w.mu.Lock()
	w.out <- v //bfetch:sync-ok buffered diagnostics channel sized for worst case
	w.mu.Unlock()
}

// ordered nests in the declared direction (mu before logMu is fine — the
// declaration in bad.go says server.mu < server.logMu).
func (s *server) ordered() {
	s.mu.Lock()
	s.logMu.Lock()
	s.n++
	s.logMu.Unlock()
	s.mu.Unlock()
}

// pointered takes the lock-bearing struct by pointer: no copy.
func pointered(a *server) int { return a.n }
