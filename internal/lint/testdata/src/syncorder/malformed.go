package syncorder // want "malformed //bfetch:lockorder"

// A trailing < leaves an empty chain element; the declaration is rejected
// loudly rather than silently unenforced.
//
//bfetch:lockorder server.mu <
