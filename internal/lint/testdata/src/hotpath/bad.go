// Package hotpath holds known-bad fixtures for the hotpath analyzer: every
// construct below must produce exactly the diagnostic named in its want
// comment. This file is parsed by the golden tests, never compiled.
package hotpath

import "fmt"

type widget struct {
	scratch []int
}

type intlist []int

func logf(format string, args ...any) {}

func helper() {}

//bfetch:hotpath
func badAllocs(w *widget, dst []int, n int, bs []byte) []int {
	s := make([]int, n) // want "make allocates"
	p := new(int)       // want "new allocates"
	_ = p
	m := map[int]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	nl := intlist{3} // want "composite literal of slice/map type intlist allocates"
	_ = nl
	s = append(s, n) // want "append to freshly allocated local"
	return s
}

//bfetch:hotpath
func badCalls(n int, bs []byte, label string) {
	fmt.Println(n)    // want "fmt.Println allocates"
	logf("x %d", n)   // want "boxes arguments into ...any"
	str := string(bs) // want "string conversion allocates"
	_ = str
	raw := []byte(label) // want "conversion allocates"
	_ = raw
	msg := "prefix" + label // want "string concatenation allocates"
	_ = msg
}

//bfetch:hotpath
func badControl(w *widget) {
	f := func() {} // want "closure allocates"
	_ = f
	go helper()    // want "go statement allocates"
	q := &widget{} // want "escapes to the heap"
	_ = q
}

// chan0 mimics a DRAM channel / LLC bank: occupancy slots plus counters.
type chan0 struct {
	slots []uint64
	waits uint64
}

// badChannelTick is the contention-model regression the banked LLC and the
// channeled DRAM must never grow: materializing the per-access slot scan
// into a fresh slice (or map) turns every memory access into a heap
// allocation. The shipping models min-scan the preallocated slots in place
// (see goodBankArb in good.go).
//
//bfetch:hotpath
func badChannelTick(c *chan0, now uint64) uint64 {
	free := make([]uint64, 0, len(c.slots)) // want "make allocates"
	for _, s := range c.slots {
		if s <= now {
			free = append(free, s) // want "append to freshly allocated local"
		}
	}
	byDeadline := map[uint64]int{} // want "map literal allocates"
	_ = byDeadline
	if len(free) == 0 {
		c.waits++
	}
	return now
}

// op mimics the threaded-code emulator's pre-decoded record.
type op struct {
	kind   uint8
	rd, rs uint8
	imm    int64
}

// badCompiledDispatch is the per-step closure regression the compiled
// emulator must never grow: wrapping an op's semantics in a func literal
// inside the dispatch loop turns every emulated instruction into a heap
// allocation. The shipping engine executes ops inline in a switch.
//
//bfetch:hotpath
func badCompiledDispatch(ops []op, regs *[32]int64) {
	for i := range ops {
		o := &ops[i]
		step := func() { regs[o.rd&31] = regs[o.rs&31] + o.imm } // want "closure allocates"
		step()
	}
}

// attrib mimics the CPI-stack attribution state: a fixed bucket array in the
// stats struct, charged once per cycle.
type attrib struct {
	cpi    [8]uint64
	cycles uint64
}

// badChargeCycle is the attribution regression the CPI stack must never
// grow: materializing the per-cycle classification into a named map (or a
// formatted label) turns every simulated cycle into a heap allocation. The
// shipping path indexes a fixed array with a uint8 bucket (see
// goodChargeCycle in good.go).
//
//bfetch:hotpath
func badChargeCycle(a *attrib, bucket uint8, now uint64) {
	byName := map[string]uint64{}             // want "map literal allocates"
	byName[fmt.Sprintf("bucket%d", bucket)]++ // want "fmt.Sprintf allocates"
	a.cycles++
	segs := []uint64{now, now + 1} // want "slice literal allocates"
	_ = segs
}
