package hotpath

// gadget mirrors the kernel's scratch-buffer style: persistent slices reused
// across cycles via the s[:0] idiom.
type gadget struct {
	scratch []int
	entries [4]int
}

type pair struct{ a, b int }

//bfetch:hotpath
func goodScratch(g *gadget, dst []int, n int) []int {
	// Appending to a parameter is the AppendTick dst contract.
	dst = append(dst, n)
	// Appending to a receiver-field-derived slice is the sanctioned
	// scratch-buffer idiom.
	g.scratch = g.scratch[:0]
	g.scratch = append(g.scratch, n)
	tmp := g.scratch[:0]
	tmp = append(tmp, n)
	return dst
}

//bfetch:hotpath
func goodValues(g *gadget, n int) int {
	// Plain value composite literals live on the stack.
	p := pair{a: n, b: n + 1}
	arr := [2]int{n, n}
	g.entries[0] = n
	return p.a + arr[1]
}

//bfetch:hotpath
func goodSuppressed(n int) error {
	if n < 0 {
		// Cold once-per-run exit path.
		return errf("bad n %d", n) //bfetch:alloc-ok
	}
	return nil
}

func errf(format string, args ...any) error { return nil }

// notAnnotated allocates freely: without //bfetch:hotpath the analyzer must
// stay silent.
func notAnnotated(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}
