package hotpath

// gadget mirrors the kernel's scratch-buffer style: persistent slices reused
// across cycles via the s[:0] idiom.
type gadget struct {
	scratch []int
	entries [4]int
}

type pair struct{ a, b int }

//bfetch:hotpath
func goodScratch(g *gadget, dst []int, n int) []int {
	// Appending to a parameter is the AppendTick dst contract.
	dst = append(dst, n)
	// Appending to a receiver-field-derived slice is the sanctioned
	// scratch-buffer idiom.
	g.scratch = g.scratch[:0]
	g.scratch = append(g.scratch, n)
	tmp := g.scratch[:0]
	tmp = append(tmp, n)
	return dst
}

//bfetch:hotpath
func goodValues(g *gadget, n int) int {
	// Plain value composite literals live on the stack.
	p := pair{a: n, b: n + 1}
	arr := [2]int{n, n}
	g.entries[0] = n
	return p.a + arr[1]
}

//bfetch:hotpath
func goodSuppressed(n int) error {
	if n < 0 {
		// Cold once-per-run exit path.
		return errf("bad n %d", n) //bfetch:alloc-ok
	}
	return nil
}

func errf(format string, args ...any) error { return nil }

// bank mirrors the banked-LLC / DRAM-channel tick shape: fixed occupancy
// slots scanned with a min-loop, counters bumped in place — the contention
// models' whole per-access footprint.
type bank struct {
	nextFree uint64
	slots    []uint64
	queued   uint64
}

//bfetch:hotpath
func goodBankArb(banks []bank, addr, now uint64) uint64 {
	// Indexing into a preallocated bank array and min-scanning its fixed
	// slot slice allocates nothing; neither do the counter updates.
	b := &banks[addr&uint64(len(banks)-1)]
	if b.nextFree > now {
		b.queued += b.nextFree - now
		now = b.nextFree
	}
	slot := 0
	for i := 1; i < len(b.slots); i++ {
		if b.slots[i] < b.slots[slot] {
			slot = i
		}
	}
	if b.slots[slot] > now {
		now = b.slots[slot]
	}
	b.slots[slot] = now + 4
	b.nextFree = now + 2
	return now
}

// port mirrors the SharedPort service shape: per-cycle request/fill queues
// drained and refilled through receiver-field scratch buffers.
type port struct {
	reqs  []uint64
	fills []uint64
}

//bfetch:hotpath
func goodPortService(p *port, banks []bank, now uint64) {
	for _, r := range p.reqs {
		// Receiver-field append is the sanctioned scratch idiom: the
		// backing arrays reach steady-state capacity and are then reused.
		p.fills = append(p.fills, goodBankArb(banks, r, now))
	}
	p.reqs = p.reqs[:0]
	p.fills = p.fills[:0]
}

// stack mirrors the CPI attribution shape: a fixed bucket array charged by
// uint8 index, a piecewise-constant gap walk over precomputed boundaries,
// and a plain value struct for the load classification — none of it
// allocates.
type stack struct {
	cpi    [8]uint64
	cycles uint64
}

type loadClass struct {
	level        uint8
	bankq, chanq uint64
}

//bfetch:hotpath
func goodChargeCycle(s *stack, bucket uint8) {
	s.cycles++
	s.cpi[bucket]++
}

//bfetch:hotpath
func goodChargeGap(s *stack, cl loadClass, memStart, from, end uint64) {
	// Segment boundaries are absolute cycles computed by addition; each
	// segment charges a span into one fixed slot. cl is a value struct —
	// stack-allocated, exactly like cache.LoadClass in the shipping path.
	b := memStart + 1 + cl.bankq
	if from < b {
		hi := min(end, b)
		s.cpi[1] += hi - from
		from = hi
	}
	b += cl.chanq
	if from < b {
		hi := min(end, b)
		s.cpi[2] += hi - from
		from = hi
	}
	if from < end {
		s.cpi[cl.level&7] += end - from
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// notAnnotated allocates freely: without //bfetch:hotpath the analyzer must
// stay silent.
func notAnnotated(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}
