// Package statsreset holds known-bad fixtures for the statsreset analyzer.
// Parsed by the golden tests, never compiled.
package statsreset

// counters forgets two fields in its reset: the PR 2 bug class.
type counters struct {
	hits   uint64
	misses uint64
	warm   bool
}

func (c *counters) ResetStats() { // want "field counters.misses is not reset" "field counters.warm is not reset"
	c.hits = 0
}

// gauge has a Reset (not ResetStats) with the same hole.
type gauge struct {
	level int
	peak  int
}

func (g *gauge) Reset() { // want "field gauge.peak is not reset"
	g.level = 0
}

// table resets its element slice but forgets the occupancy counter.
type table struct {
	slots []int
	used  int
}

func (t *table) Reset() { // want "field table.used is not reset"
	for i := range t.slots {
		t.slots[i] = 0
	}
}

// sampler has a window Restart that forgets its boundary cursor — the
// interval time-series shape of the same bug: stale nextAt replays warmup
// boundaries into the measurement window.
type sampler struct {
	ring   []uint64 //bfetch:noreset ring storage, emptied logically by rows=0
	rows   int
	step   uint64
	nextAt uint64
}

func (s *sampler) Restart(now uint64) { // want "field sampler.nextAt is not reset"
	s.rows = 0
	s.step = 1
}
