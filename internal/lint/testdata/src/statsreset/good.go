package statsreset

// wholesale overwrites the entire struct: every field is accounted for.
type wholesale struct {
	a, b, c uint64
}

func (w *wholesale) ResetStats() {
	*w = wholesale{}
}

// annotated preserves learned state across resets and says so per field.
type annotated struct {
	count uint64
	table []int //bfetch:noreset learned state survives stats windows
	cfg   int   //bfetch:noreset configuration
}

func (a *annotated) ResetStats() {
	a.count = 0
}

// delegating resets one field via its own method, one by address-taking
// helper, one elementwise through a range, and one by tuple assignment.
type inner struct{ n int }

func (i *inner) Reset() { i.n = 0 }

func clear64(p *uint64) { *p = 0 }

type delegating struct {
	sub   inner
	total uint64
	ring  []int
	lo    int
	hi    int
}

func (d *delegating) Reset() {
	d.sub.Reset()
	clear64(&d.total)
	for i := range d.ring {
		d.ring[i] = 0
	}
	d.lo, d.hi = 0, 0
}

// windowed is the interval-sampler shape done right: every cursor is
// rewritten at the window boundary, and the reused ring carries its
// annotation.
type windowed struct {
	ring   []uint64 //bfetch:noreset ring storage, emptied logically by rows=0
	rows   int
	step   uint64
	nextAt uint64
}

func (w *windowed) Restart(now uint64) {
	w.rows = 0
	w.step = 1
	w.nextAt = now + w.step
}

// embedded: anonymous fields are exempt — their own Reset methods are
// audited separately.
type embedded struct {
	inner
	ticks uint64
}

func (e *embedded) ResetStats() {
	e.ticks = 0
}
