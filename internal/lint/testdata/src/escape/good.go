package escape

// bceGood indexes with the range induction variable: the compiler proves
// every access in bounds and the //bfetch:bce claim holds.
func bceGood(xs []uint64) uint64 {
	var s uint64
	//bfetch:bce
	for i := range xs {
		s += xs[i]
	}
	return s
}

// stack keeps everything on the stack: no escape facts in a hotpath body.
//
//bfetch:hotpath
func stack(n int) int {
	v := n * 2
	return v + 1
}
