// Package escape is the golden fixture for the compiler-witnessed layer.
// TestEscapeGolden builds it with the diagnostic flags for real, so the
// wants below assert against live toolchain output rather than recordings.
package escape

// leak returns the address of a local: the compiler moves v to the heap.
//
//bfetch:hotpath
func leak(n int) *int {
	v := n + 1 // want "escapes to heap inside //bfetch:hotpath leak"
	return &v
}

// big is deliberately uninlinable; the pragma pins that verdict so the
// fixture does not drift with inlining-cost tuning across toolchains.
//
//go:noinline
func big(xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i] * xs[i&1]
	}
	return s
}

//bfetch:hotpath
func drive(xs []int) int {
	return big(xs) // want "call to big in //bfetch:hotpath drive is not inlined"
}

//bfetch:hotpath
func driveHatched(xs []int) int {
	return big(xs) //bfetch:noinline-ok cold configuration validation, called once
}

// bceBad keeps a data-dependent bounds check inside an annotated loop:
// nothing bounds idx's elements against len(xs).
func bceBad(xs []int, idx []int) int {
	s := 0
	//bfetch:bce
	for _, i := range idx {
		s += xs[i] // want "bce loop retains a bounds check"
	}
	return s
}
