package lint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ----------------------------------------------------------- escape golden --

// TestEscapeGolden compiles the escape fixture (its own mini-module under
// testdata/src/escape) with the real diagnostic flags and checks the
// compiler-witnessed findings against the // want comments. A toolchain
// whose output the parser no longer recognizes skips the test — the same
// skip-with-warning degradation the CLI performs — rather than passing
// vacuously or failing on format drift.
func TestEscapeGolden(t *testing.T) {
	dir := filepath.Join("testdata", "src", "escape")
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", dir, len(pkgs))
	}
	facts, err := CollectFacts(dir, pkgs, CollectOptions{CacheDir: t.TempDir()})
	if errors.Is(err, ErrNoFacts) {
		t.Skipf("toolchain diagnostic format not recognized; escape layer degrades to skip: %v", err)
	}
	if err != nil {
		t.Fatalf("collecting facts: %v", err)
	}
	p := pkgs[0]
	wants := collectWants(p)
	diags := Escape(pkgs, buildFuncIndex(pkgs), facts)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := -1
		for i, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, subs := range wants {
		for _, w := range subs {
			t.Errorf("missing diagnostic at %s: want message containing %q", key, w)
		}
	}
}

// ------------------------------------------------- toolchain format pinning --

// loadFactFixture parses one recorded diagnostic stream from testdata/facts.
func loadFactFixture(t *testing.T, name string) *FactTable {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "facts", name))
	if err != nil {
		t.Fatalf("reading recorded fixture: %v", err)
	}
	return ParseFacts(".", raw)
}

// TestParseFactsToolchainFormats pins the parser against the two recorded
// diagnostic spellings (go1.22 module-relative paths, go1.24 "./"-prefixed
// root-package paths). Both must yield the identical logical fact set; a
// toolchain that drifts from both shapes yields nothing, which upstream
// degrades to ErrNoFacts — never a false pass.
func TestParseFactsToolchainFormats(t *testing.T) {
	for _, name := range []string{"go1.22.txt", "go1.24.txt"} {
		table := loadFactFixture(t, name)
		facts := table.ByFile["mem.go"]
		if len(table.ByFile) != 1 || len(facts) != 7 {
			t.Fatalf("%s: got %d files / %d facts, want 1 file with 7 facts: %+v",
				name, len(table.ByFile), len(facts), table.ByFile)
		}
		counts := map[FactKind]int{}
		for _, f := range facts {
			counts[f.Kind]++
		}
		want := map[FactKind]int{
			FactCanInline: 1, FactCannotInline: 1, FactInlineCall: 1,
			FactEscape: 2, FactBoundsCheck: 2,
		}
		for k, n := range want {
			if counts[k] != n {
				t.Errorf("%s: got %d %s facts, want %d", name, counts[k], k, n)
			}
		}
		// The doubled escape line ("escapes to heap" with and without the
		// trailing trace colon) must dedup to one fact.
		if got := table.FactsAt("mem.go", 44); len(got) != 1 || got[0].Name != "new(page)" {
			t.Errorf("%s: facts at mem.go:44 = %+v, want one new(page) escape", name, got)
		}
		// Inline verdicts index by receiver-stripped base name.
		if got := table.CannotInline("pageFor"); len(got) != 1 ||
			!strings.Contains(got[0].Detail, "cost 210") {
			t.Errorf("%s: CannotInline(pageFor) = %+v", name, got)
		}
		if got := table.CanInline("Read8"); len(got) != 1 {
			t.Errorf("%s: CanInline(Read8) = %+v", name, got)
		}
	}
}

// TestParseFactsUnknownFormat is the degradation trigger: a stream in an
// unrecognized shape parses to zero facts, which CollectFacts converts to
// ErrNoFacts for any module that plainly has functions.
func TestParseFactsUnknownFormat(t *testing.T) {
	out := []byte("mem.go(10): escape: v\ncompile: mem.go line 10 v escapes\nTOTAL 3 diagnostics\n")
	table := ParseFacts(".", out)
	if len(table.ByFile) != 0 {
		t.Fatalf("unknown format parsed to facts: %+v", table.ByFile)
	}
}

// --------------------------------------------------------- escape mutation --

// escLikeSrc mirrors the one hatched heap escape the live tree carries (the
// copy-on-write fault in mem.pageFor): an annotated function whose escaping
// local is excused by //bfetch:alloc-ok. Deleting the hatch must surface the
// compiler-witnessed finding.
const escLikeSrc = `package esc

//bfetch:hotpath
func leak(n int) *int {
	v := n //bfetch:alloc-ok boot-time registration, called once
	return &v
}
`

// escLikeFacts is the matching recorded compiler output: v is moved to the
// heap at its declaration on line 5.
const escLikeFacts = "esc.go:4:6: cannot inline leak: marked go:noinline\nesc.go:5:2: moved to heap: v\n"

func TestEscapeHatchMutation(t *testing.T) {
	p, err := ParseSource("esc.go", escLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	pkgs := []*Package{p}
	facts := ParseFacts(".", []byte(escLikeFacts))
	if diags := Escape(pkgs, buildFuncIndex(pkgs), facts); len(diags) != 0 {
		t.Fatalf("clean source produced findings: %v", diags)
	}

	mutated := strings.Replace(escLikeSrc, " //bfetch:alloc-ok boot-time registration, called once", "", 1)
	if mutated == escLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err = ParseSource("esc.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	pkgs = []*Package{p}
	diags := Escape(pkgs, buildFuncIndex(pkgs), facts)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "v escapes to heap inside //bfetch:hotpath leak") {
		t.Fatalf("mutated source: got %v, want exactly one escape finding for v", diags)
	}
}
