package lint

import (
	"go/ast"
	"go/token"
)

// allocPkgs are stdlib packages whose exported calls allocate (formatting
// machinery boxes arguments into []any; errors constructs heap values).
var allocPkgs = map[string]bool{"fmt": true, "log": true, "errors": true, "strings": true}

// Hotpath enforces the zero-allocation contract on functions annotated
// //bfetch:hotpath: the per-cycle simulation kernel must run entirely on
// persistent, reused buffers. Flagged constructs:
//
//   - make, new
//   - slice and map composite literals (and composite literals of named
//     types declared as slices/maps anywhere in the module)
//   - &T{...} — an address-of composite literal escapes to the heap
//     (plain value struct literals are allowed: they live on the stack)
//   - append to a freshly allocated function-local slice (appending to a
//     parameter or to a slice derived from a receiver field is the sanctioned
//     scratch-buffer idiom and is allowed)
//   - closures (func literals) and go statements
//   - string concatenation and string/[]byte/[]rune conversions
//   - calls into fmt/log/errors/strings, and calls to module functions
//     declared with a variadic any parameter (argument boxing)
//
// //bfetch:alloc-ok on the same or preceding line suppresses one finding —
// reserved for cold sub-paths (e.g. the once-per-run fault exit).
func Hotpath(p *Package, idx *moduleIndex) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "bfetch:hotpath") {
				continue
			}
			h := &hotpathCheck{p: p, f: f, idx: idx, out: &out}
			h.fresh = freshLocals(fd)
			ast.Inspect(fd.Body, h.visit)
		}
	}
	return out
}

type hotpathCheck struct {
	p     *Package
	f     *ast.File
	idx   *moduleIndex
	out   *[]Diagnostic
	fresh map[string]bool // locals whose backing store is freshly allocated

	// nosuppress disables the alloc-ok hatch. The triviality prover sets it:
	// a hatch is an audited exception under an annotation, not evidence that
	// an unannotated function is alloc-free.
	nosuppress bool
}

func (h *hotpathCheck) report(pos token.Pos, format string, args ...any) {
	hatch := "bfetch:alloc-ok"
	if h.nosuppress {
		hatch = ""
	}
	h.p.report(h.out, h.f, pos, "hotpath", hatch, format, args...)
}

func (h *hotpathCheck) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		h.report(n.Pos(), "closure allocates on the hot path")
		return false // the literal itself is the finding; don't double-report its body
	case *ast.GoStmt:
		h.report(n.Pos(), "go statement allocates a goroutine on the hot path")
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				h.report(n.Pos(), "&composite literal escapes to the heap")
				return false
			}
		}
	case *ast.CompositeLit:
		switch t := n.Type.(type) {
		case *ast.ArrayType:
			if t.Len == nil {
				h.report(n.Pos(), "slice literal allocates")
			}
		case *ast.MapType:
			h.report(n.Pos(), "map literal allocates")
		case *ast.Ident:
			if h.idx != nil && h.idx.sliceMapTypes[h.p.Rel+"|"+t.Name] {
				h.report(n.Pos(), "composite literal of slice/map type %s allocates", t.Name)
			}
		case *ast.SelectorExpr:
			if x, ok := t.X.(*ast.Ident); ok && h.idx != nil &&
				h.idx.sliceMapTypes[x.Name+"."+t.Sel.Name] {
				h.report(n.Pos(), "composite literal of slice/map type %s.%s allocates", x.Name, t.Sel.Name)
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && (isStringLit(n.X) || isStringLit(n.Y)) {
			h.report(n.Pos(), "string concatenation allocates")
		}
	case *ast.CallExpr:
		h.call(n)
	}
	return true
}

func (h *hotpathCheck) call(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			h.report(call.Pos(), "make allocates")
		case "new":
			h.report(call.Pos(), "new allocates")
		case "append":
			h.append(call)
		case "string":
			h.report(call.Pos(), "string conversion allocates")
		default:
			if h.idx != nil && h.idx.variadicAny[h.p.Rel+"|"+fun.Name] {
				h.report(call.Pos(), "call to %s boxes arguments into ...any", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if allocPkgs[x.Name] {
				h.report(call.Pos(), "%s.%s allocates", x.Name, fun.Sel.Name)
				return
			}
			if h.idx != nil && h.idx.variadicAny[x.Name+"."+fun.Sel.Name] {
				h.report(call.Pos(), "call to %s.%s boxes arguments into ...any", x.Name, fun.Sel.Name)
			}
		}
	case *ast.ArrayType:
		if id, ok := fun.Elt.(*ast.Ident); ok && fun.Len == nil &&
			(id.Name == "byte" || id.Name == "rune") {
			h.report(call.Pos(), "[]%s conversion allocates", id.Name)
		}
	}
}

// append flags append calls whose destination is a freshly allocated local:
// growth there is a per-call heap allocation, whereas appending to a
// parameter (the AppendTick dst contract) or to a receiver-field scratch
// buffer amortizes to zero.
func (h *hotpathCheck) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := baseIdent(call.Args[0])
	if base != nil && h.fresh[base.Name] {
		h.report(call.Pos(), "append to freshly allocated local %q allocates; use a reused buffer", base.Name)
	}
}

// freshLocals scans a function body for local slice variables whose origin is
// a fresh allocation (nil, make, a composite literal, or append to one of
// those). Parameters, named results and anything derived from a selector
// (receiver fields) are considered reused storage.
func freshLocals(fd *ast.FuncDecl) map[string]bool {
	fresh := make(map[string]bool)
	markExpr := func(name string, rhs ast.Expr) {
		switch v := rhs.(type) {
		case *ast.Ident:
			if v.Name == "nil" || fresh[v.Name] {
				fresh[name] = true
			} else {
				delete(fresh, name)
			}
		case *ast.CompositeLit:
			fresh[name] = true
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make":
					fresh[name] = true
					return
				case "append":
					if len(v.Args) > 0 {
						if b := baseIdent(v.Args[0]); b != nil && fresh[b.Name] {
							fresh[name] = true
							return
						}
					}
					delete(fresh, name)
					return
				}
			}
			delete(fresh, name)
		default:
			delete(fresh, name)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					markExpr(id.Name, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						markExpr(name.Name, vs.Values[i])
					} else if _, isSlice := vs.Type.(*ast.ArrayType); isSlice {
						// var x []T with no initializer: nil slice.
						fresh[name.Name] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// baseIdent resolves the root identifier of an expression like x,
// x[i:j], or (x) — nil for selector-rooted expressions (fields are
// sanctioned reused storage).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isStringLit(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.STRING
}
