package lint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the compiler-witness layer: it runs the real Go compiler in
// diagnostic mode over the module, parses the escape-analysis, inlining and
// bounds-check-elimination output into a position-indexed fact table, and
// caches that table per package keyed by a build ID (toolchain version +
// flags + file contents), so warm lint runs never invoke the compiler.
//
// The contract with the toolchain is deliberately narrow — exactly five line
// shapes are recognized (DESIGN.md §6c):
//
//	file.go:L:C: can inline NAME with cost N as: ...
//	file.go:L:C: cannot inline NAME: REASON
//	file.go:L:C: inlining call to NAME
//	file.go:L:C: X escapes to heap[: ...]   |   moved to heap: X
//	file.go:L:C: Found IsInBounds | IsSliceInBounds
//
// Everything else (param-leak traces, indented explanation lines, stdlib
// positions) is ignored. If the toolchain stops emitting any recognizable
// facts for a module that plainly has functions, collection degrades to a
// skip-with-warning (ErrNoFacts) rather than a silent all-clear.

// factsGCFlags are the compiler flags the witness layer builds with: full
// escape/inline diagnostics plus the bounds-check-elimination debug stream.
const factsGCFlags = "-m=2 -d=ssa/check_bce/debug=1"

// factsParserVersion invalidates cached fact files when the parser itself
// changes shape. Bump on any change to parseFactLine or the Fact type.
const factsParserVersion = "1"

// FactKind classifies one compiler diagnostic.
type FactKind uint8

const (
	// FactEscape — a value at this position is heap-allocated
	// ("escapes to heap" / "moved to heap").
	FactEscape FactKind = iota
	// FactCanInline — the function declared here is inlinable.
	FactCanInline
	// FactCannotInline — the function declared here exceeds the inlining
	// budget or is otherwise uninlinable; Detail carries the reason.
	FactCannotInline
	// FactInlineCall — the call at this position was inlined; Name is the
	// callee as the compiler spells it (possibly package-qualified).
	FactInlineCall
	// FactBoundsCheck — the SSA backend kept a bounds check here.
	FactBoundsCheck
)

func (k FactKind) String() string {
	switch k {
	case FactEscape:
		return "escape"
	case FactCanInline:
		return "can-inline"
	case FactCannotInline:
		return "cannot-inline"
	case FactInlineCall:
		return "inline-call"
	case FactBoundsCheck:
		return "bounds-check"
	}
	return "unknown"
}

// Fact is one parsed compiler diagnostic, positioned in a module file.
type Fact struct {
	File   string // module-root-relative, slash-separated
	Line   int
	Col    int
	Kind   FactKind
	Name   string // function name for inline facts, subject text for escapes
	Detail string // cannot-inline reason / raw message tail
}

// FactTable indexes the witnessed facts for the whole module.
type FactTable struct {
	Root   string            // absolute module root the File paths are relative to
	ByFile map[string][]Fact // facts per module-relative file, sorted by line, col

	// cannotInline maps every cannot-inline fact by function base name
	// (e.g. "next" for "(*bmIter).next") to its facts, for call-site
	// matching without type information.
	cannotInline map[string][]Fact
	// canInline is the same index for can-inline facts.
	canInline map[string][]Fact
}

// ErrNoFacts reports that the compiler ran but its output contained no
// recognizable diagnostics — a toolchain whose format this parser does not
// understand. Callers must treat it as "escape analyzer skipped", never as
// "escape analyzer passed".
var ErrNoFacts = errors.New("lint: compiler produced no recognizable -m=2/BCE diagnostics; escape analyzer skipped (toolchain format change?)")

// CollectOptions configures fact collection.
type CollectOptions struct {
	// CacheDir overrides the fact-cache location (default:
	// os.UserCacheDir()/bfetch-lint). Tests point it at a temp dir.
	CacheDir string
	// NoCache disables reading and writing the fact cache.
	NoCache bool
}

// CollectFacts returns the compiler fact table for the module at root,
// consulting the per-package build-ID cache first and invoking the compiler
// only for packages whose sources changed. pkgs must be LoadModule(root).
func CollectFacts(root string, pkgs []*Package, opts CollectOptions) (*FactTable, error) {
	cacheDir := opts.CacheDir
	if cacheDir == "" && !opts.NoCache {
		if base, err := os.UserCacheDir(); err == nil {
			cacheDir = filepath.Join(base, "bfetch-lint")
		} else {
			cacheDir = filepath.Join(os.TempDir(), "bfetch-lint")
		}
	}

	states := make([]*pkgState, 0, len(pkgs))
	for _, p := range pkgs {
		key, err := packageBuildID(p)
		if err != nil {
			return nil, err
		}
		rel := p.Rel
		if rel == "" {
			rel = "."
		}
		states = append(states, &pkgState{p: p, key: key, rel: rel, nfun: countFuncs(p)})
	}

	table := &FactTable{Root: root, ByFile: make(map[string][]Fact)}
	var missing []*pkgState
	for _, st := range states {
		if opts.NoCache {
			missing = append(missing, st)
			continue
		}
		facts, ok := readFactCache(cacheDir, st.key)
		if !ok {
			missing = append(missing, st)
			continue
		}
		for _, f := range facts {
			table.ByFile[f.File] = append(table.ByFile[f.File], f)
		}
	}

	if len(missing) > 0 {
		byDir, err := compileForFacts(root, missing, false)
		if err != nil {
			return nil, err
		}
		// A package that has function bodies but yielded zero facts was
		// served from Go's own build cache (which replays no diagnostics).
		// Retry those with -a to force recompilation.
		var stale []*pkgState
		for _, st := range missing {
			if st.nfun > 0 && len(byDir[st.rel]) == 0 {
				stale = append(stale, st)
			}
		}
		if len(stale) > 0 {
			forced, err := compileForFacts(root, stale, true)
			if err != nil {
				return nil, err
			}
			for dir, facts := range forced {
				byDir[dir] = facts
			}
		}
		totalFuncs, totalFacts := 0, 0
		for _, st := range missing {
			facts := byDir[st.rel]
			totalFuncs += st.nfun
			totalFacts += len(facts)
			for _, f := range facts {
				table.ByFile[f.File] = append(table.ByFile[f.File], f)
			}
			if !opts.NoCache {
				writeFactCache(cacheDir, st.key, facts)
			}
		}
		if totalFuncs > 0 && totalFacts == 0 {
			return nil, ErrNoFacts
		}
	}

	for file := range table.ByFile {
		facts := table.ByFile[file]
		sort.Slice(facts, func(i, j int) bool {
			if facts[i].Line != facts[j].Line {
				return facts[i].Line < facts[j].Line
			}
			return facts[i].Col < facts[j].Col
		})
	}
	table.index()
	return table, nil
}

// ParseFacts parses a recorded diagnostic stream (as emitted by
// `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'`) into facts, without
// running the compiler. The toolchain-format pinning tests feed it recorded
// outputs from several Go versions.
func ParseFacts(root string, output []byte) *FactTable {
	table := &FactTable{Root: root, ByFile: make(map[string][]Fact)}
	sc := bufio.NewScanner(strings.NewReader(string(output)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	seen := make(map[Fact]bool)
	for sc.Scan() {
		f, ok := parseFactLine(sc.Text())
		if !ok {
			continue
		}
		// -m=2 emits escape facts twice (once with a trailing trace, once
		// bare); dedup on the full fact.
		k := f
		k.Detail = ""
		if seen[k] {
			continue
		}
		seen[k] = true
		table.ByFile[f.File] = append(table.ByFile[f.File], f)
	}
	table.index()
	return table
}

func (t *FactTable) index() {
	t.cannotInline = make(map[string][]Fact)
	t.canInline = make(map[string][]Fact)
	for _, facts := range t.ByFile {
		for _, f := range facts {
			switch f.Kind {
			case FactCannotInline:
				t.cannotInline[factBaseName(f.Name)] = append(t.cannotInline[factBaseName(f.Name)], f)
			case FactCanInline:
				t.canInline[factBaseName(f.Name)] = append(t.canInline[factBaseName(f.Name)], f)
			}
		}
	}
}

// FactsAt returns the facts recorded for one line of a module-relative file.
func (t *FactTable) FactsAt(file string, line int) []Fact {
	facts := t.ByFile[file]
	i := sort.Search(len(facts), func(i int) bool { return facts[i].Line >= line })
	j := i
	for j < len(facts) && facts[j].Line == line {
		j++
	}
	return facts[i:j]
}

// CannotInline returns the cannot-inline facts whose function base name
// matches name (receiver qualifiers stripped: "(*bmIter).next" matches
// "next").
func (t *FactTable) CannotInline(name string) []Fact { return t.cannotInline[name] }

// CanInline is the can-inline analogue of CannotInline.
func (t *FactTable) CanInline(name string) []Fact { return t.canInline[name] }

// ------------------------------------------------------------------ parser --

var factPosRE = regexp.MustCompile(`^([^\s:][^:]*\.go):(\d+):(\d+): (.*)$`)

// parseFactLine recognizes exactly the five diagnostic shapes the contract
// pins. Lines positioned outside the module (absolute paths — the stdlib),
// indented escape-trace continuations, and every other -m=2 shape
// (leaking param, parameter tags, ...) fall through.
func parseFactLine(line string) (Fact, bool) {
	m := factPosRE.FindStringSubmatch(line)
	if m == nil {
		return Fact{}, false
	}
	file := filepath.ToSlash(m[1])
	if filepath.IsAbs(m[1]) || strings.HasPrefix(file, "..") {
		return Fact{}, false // stdlib or out-of-module position
	}
	// Root-package builds spell positions "./file.go" on newer toolchains;
	// the table is keyed by the bare relative path.
	file = strings.TrimPrefix(file, "./")
	ln, _ := strconv.Atoi(m[2])
	col, _ := strconv.Atoi(m[3])
	msg := m[4]
	f := Fact{File: file, Line: ln, Col: col}
	switch {
	case strings.HasPrefix(msg, "can inline "):
		rest := strings.TrimPrefix(msg, "can inline ")
		name := rest
		if i := strings.Index(rest, " with cost "); i >= 0 {
			name = rest[:i]
		} else if i := strings.IndexByte(rest, ' '); i >= 0 {
			// Older toolchains: "can inline F as: ..." with no cost.
			name = rest[:i]
		}
		f.Kind, f.Name = FactCanInline, name
	case strings.HasPrefix(msg, "cannot inline "):
		rest := strings.TrimPrefix(msg, "cannot inline ")
		name, reason := rest, ""
		if i := strings.Index(rest, ": "); i >= 0 {
			name, reason = rest[:i], rest[i+2:]
		}
		f.Kind, f.Name, f.Detail = FactCannotInline, name, reason
	case strings.HasPrefix(msg, "inlining call to "):
		f.Kind, f.Name = FactInlineCall, strings.TrimPrefix(msg, "inlining call to ")
	case strings.HasPrefix(msg, "moved to heap: "):
		f.Kind, f.Name = FactEscape, strings.TrimPrefix(msg, "moved to heap: ")
	case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
		subj := strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
		f.Kind, f.Name = FactEscape, subj
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		f.Kind, f.Name = FactBoundsCheck, strings.TrimPrefix(msg, "Found ")
	default:
		return Fact{}, false
	}
	return f, true
}

// factBaseName strips package qualifiers and receiver parentheses from a
// compiler-spelled function name: "repro/internal/cpu.(*bmIter).next",
// "(*bmIter).next", "bits.TrailingZeros64" and "next" all yield "next".
func factBaseName(name string) string {
	if i := strings.LastIndexByte(name, ')'); i >= 0 && i+2 <= len(name) {
		name = strings.TrimPrefix(name[i+1:], ".")
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ---------------------------------------------------------------- compiler --

// pkgState pairs a parsed package with its cache key and compile spelling.
type pkgState struct {
	p    *Package
	key  string
	rel  string // "./"-relative dir as passed to go build ("." for the root)
	nfun int    // function decls with bodies — a lower bound on inline facts
}

// compileForFacts builds the given packages with the diagnostic flags and
// returns the parsed facts grouped by module-relative package dir. force
// adds -a, defeating Go's build cache (which suppresses diagnostics for
// up-to-date packages).
func compileForFacts(root string, states []*pkgState, force bool) (map[string][]Fact, error) {
	args := []string{"build", "-gcflags=" + factsGCFlags}
	if force {
		args = append(args, "-a")
	}
	// `go build` discards library objects, but writes main-package binaries
	// to the working directory — and refuses -o DIR when the set holds no
	// main package at all. Redirect binaries to a throwaway dir only when
	// one is actually being built.
	hasMain := false
	for _, st := range states {
		if len(st.p.Files) > 0 && st.p.Files[0].Name.Name == "main" {
			hasMain = true
			break
		}
	}
	if hasMain {
		tmp, err := os.MkdirTemp("", "bfetch-lint-bin")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		args = append(args, "-o", tmp)
	}
	for _, st := range states {
		args = append(args, "./"+st.rel)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		// The diagnostic stream rides on stderr even on failure; a build
		// error means the tree doesn't compile, which is a lint error too.
		return nil, fmt.Errorf("lint: go build for compiler facts failed: %v\n%s", err, out)
	}
	parsed := ParseFacts(root, out)
	// Group facts by the directory of the file they are positioned in; the
	// module root package groups under "." to match the cache-key spelling.
	byDir := make(map[string][]Fact)
	for file, facts := range parsed.ByFile {
		dir := filepath.ToSlash(filepath.Dir(file))
		byDir[dir] = append(byDir[dir], facts...)
	}
	return byDir, nil
}

// ---------------------------------------------------------------- build ID --

// packageBuildID derives the cache key for one package: the Go toolchain
// version, the diagnostic flags, the parser version, and the content of
// every non-test .go file in the directory. Any change to any input yields
// a new key, so a stale fact file can never satisfy a fresh tree.
func packageBuildID(p *Package) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "go=%s flags=%q parser=%s\n", runtime.Version(), factsGCFlags, factsParserVersion)
	names := make([]string, 0, len(p.Files))
	byName := make(map[string]string, len(p.Files))
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Package)
		names = append(names, pos.Filename)
		byName[pos.Filename] = pos.Filename
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(byName[name])
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s %s\n", filepath.Base(name), hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// countFuncs counts function declarations with bodies: each is guaranteed at
// least one can/cannot-inline diagnostic, so a package with countFuncs > 0
// and zero parsed facts was served from a silent build cache (or the
// toolchain format drifted).
func countFuncs(p *Package) int {
	n := 0
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				n++
			}
		}
	}
	return n
}

// ------------------------------------------------------------------- cache --

type factCacheFile struct {
	Version string `json:"version"`
	Facts   []Fact `json:"facts"`
}

func readFactCache(dir, key string) ([]Fact, bool) {
	data, err := os.ReadFile(filepath.Join(dir, key+".facts.json"))
	if err != nil {
		return nil, false
	}
	var cf factCacheFile
	if json.Unmarshal(data, &cf) != nil || cf.Version != factsParserVersion {
		return nil, false
	}
	return cf.Facts, true
}

func writeFactCache(dir, key string, facts []Fact) {
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	data, err := json.Marshal(factCacheFile{Version: factsParserVersion, Facts: facts})
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if os.WriteFile(tmp, data, 0o644) == nil {
		os.Rename(tmp, filepath.Join(dir, key+".facts.json"))
	}
}
