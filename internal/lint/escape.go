package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Escape is the compiler-witnessed gate: instead of guessing from the AST
// what might allocate, it checks what the compiler actually decided
// (facts from CollectFacts or ParseFacts):
//
//	(a) a //bfetch:hotpath function with a value the compiler moved or
//	    escaped to the heap fails — //bfetch:alloc-ok on the line keeps
//	    the same cold-path hatch the AST layer uses;
//	(b) a call inside a hotpath function whose callee the compiler refused
//	    to inline fails, unless the callee is itself //bfetch:hotpath
//	    (checked on its own terms; the big pipeline stages are deliberate
//	    non-inline boundaries) or the call carries //bfetch:noinline-ok
//	    with a reason string;
//	(c) a loop annotated //bfetch:bce that retains a bounds check fails —
//	    there is no hatch; fix the loop or drop the annotation.
//
// Calls the compiler witnessed as inlined ("inlining call to" at the call
// line) pass (b) outright; calls that resolve to nothing in-module
// (interface dispatch, func values) are outside the witness and are left to
// the hotcall closure.
func Escape(pkgs []*Package, fidx *funcIndex, facts *FactTable) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			relFile := moduleRelFile(facts.Root, p, f)
			if relFile == "" {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if hasDirective(fd.Doc, "bfetch:hotpath") {
					checkHotEscapes(p, f, fd, relFile, facts, &out)
					checkHotInlining(p, f, fd, relFile, fidx, facts, &out)
				}
			}
			checkBCELoops(p, f, relFile, facts, &out)
			// A noinline-ok hatch must carry a reason; a bare marker is
			// unauditable.
			for line, text := range p.markerArgs(f, "bfetch:noinline-ok") {
				if strings.TrimSpace(text) == "" {
					p.report(&out, f, f.Pos(), "escape", "",
						"line %d: //bfetch:noinline-ok requires a reason string", line)
				}
			}
		}
	}
	return out
}

// moduleRelFile returns the module-root-relative slash path of f, or "" if
// it lies outside root.
func moduleRelFile(root string, p *Package, f *ast.File) string {
	abs := p.Fset.Position(f.Package).Filename
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	return filepath.ToSlash(rel)
}

// checkHotEscapes reports every compiler-witnessed heap escape inside the
// hotpath function's body range.
func checkHotEscapes(p *Package, f *ast.File, fd *ast.FuncDecl, relFile string, facts *FactTable, out *[]Diagnostic) {
	start := p.Fset.Position(fd.Body.Pos()).Line
	end := p.Fset.Position(fd.Body.End()).Line
	for line := start; line <= end; line++ {
		for _, fact := range facts.FactsAt(relFile, line) {
			if fact.Kind != FactEscape {
				continue
			}
			// Position the diagnostic at the fact's own line so the
			// alloc-ok hatch works the same way as in the AST layer.
			pos := posOnLine(p, f, fd, fact.Line)
			p.report(out, f, pos, "escape", "bfetch:alloc-ok",
				"compiler: %s escapes to heap inside //bfetch:hotpath %s", fact.Name, fd.Name.Name)
		}
	}
}

// checkHotInlining walks the call sites of a hotpath function and requires
// each module-resolved callee to be inlined, hotpath-annotated, or hatched.
func checkHotInlining(p *Package, f *ast.File, fd *ast.FuncDecl, relFile string, fidx *funcIndex, facts *FactTable, out *[]Diagnostic) {
	var node *funcNode
	for _, n := range fidx.nodes {
		if n.decl == fd {
			node = n
			break
		}
	}
	if node == nil {
		return
	}
	for _, e := range fidx.edges(node) {
		if e.safe || e.cold || e.unresolved || len(e.targets) == 0 {
			continue
		}
		line := p.Fset.Position(e.pos).Line
		inlined := false
		for _, fact := range facts.FactsAt(relFile, line) {
			if fact.Kind == FactInlineCall && factBaseName(fact.Name) == e.callee {
				inlined = true
				break
			}
		}
		if inlined {
			continue
		}
		// Not witnessed as inlined here. Acceptable when every candidate
		// target is under the hotpath contract itself.
		allHot := true
		for _, t := range e.targets {
			if !t.hotpath {
				allHot = false
				break
			}
		}
		if allHot {
			continue
		}
		// Find the compiler's verdict on the callee, preferring facts
		// positioned in the target's own file.
		reason := ""
		for _, fact := range facts.CannotInline(e.callee) {
			reason = fact.Detail
			if factInTargets(fact, e.targets, facts.Root) {
				break
			}
		}
		if reason == "" {
			// Callee is inlinable in general but was not inlined at this
			// site (indirect use, budget interaction). Only report when the
			// compiler knows the function at all — otherwise stay silent
			// rather than guess.
			if len(facts.CanInline(e.callee)) == 0 {
				continue
			}
			reason = "inlinable, but not inlined at this call site"
		}
		p.report(out, f, e.pos, "escape", "bfetch:noinline-ok",
			"call to %s in //bfetch:hotpath %s is not inlined (%s); annotate the callee //bfetch:hotpath or hatch with //bfetch:noinline-ok <reason>",
			e.callee, fd.Name.Name, reason)
	}
}

// factInTargets reports whether the fact is positioned in the file of one of
// the candidate target declarations.
func factInTargets(fact Fact, targets []*funcNode, root string) bool {
	for _, t := range targets {
		if moduleRelFile(root, t.p, t.f) == fact.File {
			return true
		}
	}
	return false
}

// checkBCELoops enforces //bfetch:bce: the for/range statement on the line
// after the marker must have no surviving bounds check anywhere in its
// source range.
func checkBCELoops(p *Package, f *ast.File, relFile string, facts *FactTable, out *[]Diagnostic) {
	marks := p.markerLines(f, "bfetch:bce")
	if len(marks) == 0 {
		return
	}
	claimed := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch v := n.(type) {
		case *ast.ForStmt:
			body = v.Body
		case *ast.RangeStmt:
			body = v.Body
		default:
			return true
		}
		line := p.Fset.Position(n.Pos()).Line
		if !marks[line] && !marks[line-1] {
			return true
		}
		claimed[line] = true
		claimed[line-1] = true
		start := p.Fset.Position(n.Pos()).Line
		end := p.Fset.Position(body.End()).Line
		for l := start; l <= end; l++ {
			for _, fact := range facts.FactsAt(relFile, l) {
				if fact.Kind == FactBoundsCheck {
					pos := posOnLine(p, f, nil, fact.Line)
					p.report(out, f, pos, "escape", "",
						"//bfetch:bce loop retains a bounds check (%s at line %d); restructure the indexing or drop the annotation",
						fact.Name, fact.Line)
				}
			}
		}
		return true
	})
	for line := range marks {
		if !claimed[line] && !claimed[line+1] {
			p.report(out, f, f.Pos(), "escape", "",
				"line %d: //bfetch:bce is not attached to a for/range statement", line)
		}
	}
}

// posOnLine returns a token.Pos on the given line of f — the first AST node
// starting there (searching inside fd's body when provided, the whole file
// otherwise) — so suppression markers on that line match. Falls back to the
// scope's own position so diagnostics always carry one.
func posOnLine(p *Package, f *ast.File, fd *ast.FuncDecl, line int) token.Pos {
	var scope ast.Node = f
	if fd != nil {
		scope = fd.Body
	}
	best := token.NoPos
	ast.Inspect(scope, func(n ast.Node) bool {
		if n == nil || best.IsValid() {
			return false
		}
		if p.Fset.Position(n.Pos()).Line == line {
			best = n.Pos()
			return false
		}
		return true
	})
	if best.IsValid() {
		return best
	}
	return scope.Pos()
}
