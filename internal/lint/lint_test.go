package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// ------------------------------------------------------------ golden files --
//
// Each fixture directory under testdata/src holds known-bad and known-good
// sources for one analyzer. A `// want "substring"` comment (multiple quoted
// substrings allowed) on a line asserts that the analyzer reports a
// diagnostic there whose message contains the substring; every diagnostic
// must be claimed by a want and every want must be matched.

var wantRE = regexp.MustCompile(`"([^"]*)"`)

func loadFixture(t *testing.T, name string) (*Package, *moduleIndex) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", dir, len(pkgs))
	}
	return pkgs[0], buildModuleIndex(pkgs)
}

// collectWants maps "file:line" to the unmatched want substrings there.
func collectWants(p *Package) map[string][]string {
	wants := make(map[string][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

func checkGolden(t *testing.T, fixture string, run func(*Package, *moduleIndex) []Diagnostic) {
	t.Helper()
	p, idx := loadFixture(t, fixture)
	wants := collectWants(p)
	for _, d := range run(p, idx) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := -1
		for i, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, subs := range wants {
		for _, w := range subs {
			t.Errorf("missing diagnostic at %s: want message containing %q", key, w)
		}
	}
}

func TestHotpathGolden(t *testing.T) {
	checkGolden(t, "hotpath", Hotpath)
}

func TestDeterminismGolden(t *testing.T) {
	checkGolden(t, "determinism", Determinism)
}

// TestStoreDeterminismGolden covers the store-shaped hazards the durable
// cache introduced: timing disk reads (must be annotated as stats-only) and
// publishing directory/index listings in map order.
func TestStoreDeterminismGolden(t *testing.T) {
	checkGolden(t, "storedet", Determinism)
}

func TestStatsResetGolden(t *testing.T) {
	checkGolden(t, "statsreset", func(p *Package, _ *moduleIndex) []Diagnostic {
		return StatsReset(p)
	})
}

// --------------------------------------------------------------- live tree --

// TestLiveTreeClean is the shipped-tree gate: the module this test runs in
// must produce zero findings under all six analyzers, compiler-witnessed
// layer included. It is the same check `make lint-full` performs, so a
// regression — including deleting a //bfetch:hotpath annotation from a
// reachable helper — fails `go test ./...` too. The fact cache is the same
// one the CLI uses, so warm runs cost milliseconds; if the toolchain's
// diagnostic format is unrecognized, the escape layer skips with a warning
// (the designed degradation) and the five AST analyzers still gate.
func TestLiveTreeClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	res, err := RunAll(root, DefaultOptions(), true, CollectOptions{})
	if err != nil {
		t.Fatalf("running gate: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("live tree finding: %s", d)
	}
	missing := map[string]bool{}
	for _, name := range AnalyzerNames {
		missing[name] = true
	}
	for _, name := range res.Ran {
		delete(missing, name)
	}
	if missing["escape"] && len(missing) == 1 && len(res.Warnings) > 0 {
		t.Logf("escape layer skipped (toolchain drift): %v", res.Warnings)
	} else if len(missing) > 0 {
		t.Errorf("analyzers did not run: %v (ran %v, warnings %v)", missing, res.Ran, res.Warnings)
	}
	if res.Packages < 10 {
		t.Errorf("loaded only %d packages from %s; module walk looks broken", res.Packages, root)
	}
}

// ---------------------------------------------------------------- mutation --

// simLikeSrc mirrors the shape of sim.System's stats reset. The mutation test
// deletes one field assignment and requires the statsreset analyzer to
// re-detect exactly that bug class (a counter silently surviving the warmup
// boundary was what PR 2's hand audit caught).
const simLikeSrc = `package sim

type System struct {
	Cfg    int //bfetch:noreset configuration
	cycles uint64
	misses uint64
	issued uint64
	table  []int //bfetch:noreset learned state
}

func (s *System) ResetStats() {
	s.cycles = 0
	s.misses = 0
	s.issued = 0
}
`

func TestStatsResetMutation(t *testing.T) {
	p, err := ParseSource("sim.go", simLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	if diags := StatsReset(p); len(diags) != 0 {
		t.Fatalf("clean source produced findings: %v", diags)
	}

	mutated := strings.Replace(simLikeSrc, "\ts.misses = 0\n", "", 1)
	if mutated == simLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err = ParseSource("sim.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	diags := StatsReset(p)
	if len(diags) != 1 {
		t.Fatalf("mutated source: got %d findings, want exactly 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "System.misses") {
		t.Errorf("mutated source: finding %q does not name System.misses", diags[0].Message)
	}
}

// obsLikeSrc mirrors the observability registry's hot-path instruments: a
// fixed-slot counter increment and a ring-buffer trace append, both under
// //bfetch:hotpath. The mutation test plants the easiest regression to make
// there — allocating inside the increment — and requires the hotpath
// analyzer to catch it, witnessing that the obs instruments are inside the
// lint contract rather than merely absent from its findings.
const obsLikeSrc = `package obs

type Counter struct{ v *uint64 }

//bfetch:hotpath
func (c Counter) Inc() { *c.v++ }

type Trace struct {
	buf  []uint64
	w, n int
}

//bfetch:hotpath
func (t *Trace) Record(v uint64) {
	if t == nil {
		return
	}
	t.buf[t.w] = v
	t.w++
	if t.w == len(t.buf) {
		t.w = 0
	}
}
`

func TestObsHotpathMutation(t *testing.T) {
	p, err := ParseSource("obs.go", obsLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	if diags := Hotpath(p, buildModuleIndex([]*Package{p})); len(diags) != 0 {
		t.Fatalf("clean obs-like source produced findings: %v", diags)
	}

	mutated := strings.Replace(obsLikeSrc,
		"func (c Counter) Inc() { *c.v++ }",
		"func (c Counter) Inc() { *c.v++; _ = make([]uint64, 4) }", 1)
	if mutated == obsLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err = ParseSource("obs.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	diags := Hotpath(p, buildModuleIndex([]*Package{p}))
	if len(diags) != 1 {
		t.Fatalf("mutated source: got %d findings, want exactly 1: %v", len(diags), diags)
	}
}

// emuLikeSrc mirrors the two cycle-kernel shapes this module's hot paths
// lean on: the threaded-code emulator's superblock dispatch loop (pre-decoded
// op records executed inline in a switch) and the out-of-order core's
// TrailingZeros64-style bitmap scheduler walk. The clean pass witnesses both
// idioms are inside the lint contract; the mutation plants the easiest
// regression — an op body wrapped in a per-step closure — and requires the
// analyzer to catch it.
const emuLikeSrc = `package emu

type cop struct {
	kind   uint8
	rd, rs uint8
	imm    int64
}

type kernel struct {
	ops  []cop
	term []int32
}

//bfetch:hotpath
func (k *kernel) run(regs *[32]int64, pc int) int {
	ops := k.ops
	t := int(k.term[pc])
	for i := pc; i < t; i++ {
		o := &ops[i]
		switch o.kind {
		case 0:
			regs[o.rd&31] = regs[o.rs&31] + o.imm
		default:
			regs[o.rd&31] = o.imm
		}
	}
	return t
}

//bfetch:hotpath
func pick(bm []uint64, width int) int {
	n := 0
	for _, w := range bm {
		for ; w != 0; w &= w - 1 {
			if n++; n == width {
				return n
			}
		}
	}
	return n
}
`

func TestCompiledDispatchHotpathMutation(t *testing.T) {
	p, err := ParseSource("emu.go", emuLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	if diags := Hotpath(p, buildModuleIndex([]*Package{p})); len(diags) != 0 {
		t.Fatalf("clean emu-like source produced findings: %v", diags)
	}

	mutated := strings.Replace(emuLikeSrc,
		"regs[o.rd&31] = regs[o.rs&31] + o.imm\n",
		"func() { regs[o.rd&31] = regs[o.rs&31] + o.imm }()\n", 1)
	if mutated == emuLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err = ParseSource("emu.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	diags := Hotpath(p, buildModuleIndex([]*Package{p}))
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "closure") {
		t.Fatalf("mutated source: got %v, want exactly one closure finding", diags)
	}
}

// tsLikeSrc mirrors the observability interval sampler's window restart,
// plus a CPI-stack array reset — the counters the attribution subsystem
// added. The mutation test deletes one cursor assignment and requires the
// statsreset analyzer (which audits Restart alongside Reset/ResetStats) to
// re-detect it: a sampler that keeps its old nextAt across ResetStats
// replays warmup-window boundaries into the measurement window, and a CPI
// array that survives the reset breaks the exact-partition invariant
// (buckets would exceed the window's cycles).
const tsLikeSrc = `package obs

type timeSeries struct {
	reg      *int     //bfetch:noreset wiring
	maxRows  int      //bfetch:noreset configuration
	buf      []uint64 //bfetch:noreset ring storage, emptied logically by n=0
	n        int
	cpi      [4]uint64
	interval uint64
	base     uint64
	nextAt   uint64
}

func (s *timeSeries) Restart(now uint64) {
	s.n = 0
	s.cpi = [4]uint64{}
	s.interval = 1
	s.base = now
	s.nextAt = now + s.interval
}
`

func TestTimeSeriesRestartMutation(t *testing.T) {
	p, err := ParseSource("obs.go", tsLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	if diags := StatsReset(p); len(diags) != 0 {
		t.Fatalf("clean source produced findings: %v", diags)
	}

	for _, mut := range []struct {
		drop, field string
	}{
		{"\ts.nextAt = now + s.interval\n", "timeSeries.nextAt"},
		{"\ts.cpi = [4]uint64{}\n", "timeSeries.cpi"},
	} {
		mutated := strings.Replace(tsLikeSrc, mut.drop, "", 1)
		if mutated == tsLikeSrc {
			t.Fatalf("mutation %q did not apply; fixture drifted", mut.drop)
		}
		p, err = ParseSource("obs.go", mutated)
		if err != nil {
			t.Fatalf("parsing mutated source: %v", err)
		}
		diags := StatsReset(p)
		if len(diags) != 1 || !strings.Contains(diags[0].Message, mut.field) {
			t.Fatalf("mutated source: got %v, want exactly one finding naming %s", diags, mut.field)
		}
	}
}

// TestNoresetMutationAlsoGuardsMarkers checks the symmetric direction:
// removing a //bfetch:noreset annotation (without adding the reset) must
// surface the field.
func TestNoresetMutationAlsoGuardsMarkers(t *testing.T) {
	mutated := strings.Replace(simLikeSrc, " //bfetch:noreset learned state", "", 1)
	if mutated == simLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err := ParseSource("sim.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	diags := StatsReset(p)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "System.table") {
		t.Fatalf("got %v, want exactly one finding naming System.table", diags)
	}
}

// ------------------------------------------------- hotcall / syncorder --

func TestHotcallGolden(t *testing.T) {
	checkGolden(t, "hotcall", func(p *Package, _ *moduleIndex) []Diagnostic {
		return Hotcall([]*Package{p}, buildFuncIndex([]*Package{p}))
	})
}

func TestSyncOrderGolden(t *testing.T) {
	checkGolden(t, "syncorder", func(p *Package, _ *moduleIndex) []Diagnostic {
		return SyncOrder(p)
	})
}

// hotcallLikeSrc mirrors the shape the closure analyzer guards in the live
// tree: an annotated kernel calling an annotated helper. The mutation —
// deleting the helper's annotation while it still allocates — is exactly
// the regression the acceptance criteria pin: one deleted annotation on a
// reachable helper must fail the suite.
const hotcallLikeSrc = `package core

type eng struct{ buf []int }

//bfetch:hotpath
func (e *eng) cycle(n int) {
	e.refill(n)
}

//bfetch:hotpath
func (e *eng) refill(n int) {
	if cap(e.buf) < n {
		e.buf = make([]int, n) //bfetch:alloc-ok grow-once scratch
	}
	e.buf = e.buf[:n]
}
`

func TestHotcallAnnotationMutation(t *testing.T) {
	p, err := ParseSource("core.go", hotcallLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	if diags := Hotcall([]*Package{p}, buildFuncIndex([]*Package{p})); len(diags) != 0 {
		t.Fatalf("clean source produced findings: %v", diags)
	}

	mutated := strings.Replace(hotcallLikeSrc, "//bfetch:hotpath\nfunc (e *eng) refill", "func (e *eng) refill", 1)
	if mutated == hotcallLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err = ParseSource("core.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	diags := Hotcall([]*Package{p}, buildFuncIndex([]*Package{p}))
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "refill") {
		t.Fatalf("mutated source: got %v, want exactly one finding naming refill", diags)
	}
}

// syncLikeSrc mirrors the runner's singleflight completion: close() under
// the lock is the sanctioned idiom. The mutation swaps it for a channel
// send, the convoy-shaped bug the analyzer exists to catch.
const syncLikeSrc = `package runner

import "sync"

type flight struct {
	mu   sync.Mutex
	done chan struct{}
	val  int
}

func (f *flight) complete(v int) {
	f.mu.Lock()
	f.val = v
	close(f.done)
	f.mu.Unlock()
}
`

func TestSyncOrderSendMutation(t *testing.T) {
	p, err := ParseSource("runner.go", syncLikeSrc)
	if err != nil {
		t.Fatalf("parsing clean source: %v", err)
	}
	if diags := SyncOrder(p); len(diags) != 0 {
		t.Fatalf("clean source produced findings: %v", diags)
	}

	mutated := strings.Replace(syncLikeSrc, "close(f.done)", "f.done <- struct{}{}", 1)
	if mutated == syncLikeSrc {
		t.Fatal("mutation did not apply; fixture drifted")
	}
	p, err = ParseSource("runner.go", mutated)
	if err != nil {
		t.Fatalf("parsing mutated source: %v", err)
	}
	diags := SyncOrder(p)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "channel send while holding flight.mu") {
		t.Fatalf("mutated source: got %v, want exactly one send-under-lock finding", diags)
	}
}
