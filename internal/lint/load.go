package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses every non-test Go file under root (the directory holding
// go.mod) into one Package per directory. Test files are excluded because the
// invariants guard shipped simulation code, not test scaffolding; testdata,
// results and dot-directories are skipped entirely.
func LoadModule(root string) ([]*Package, error) {
	root = filepath.Clean(root)
	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "results" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("lint: %w", perr)
		}
		dir := filepath.Dir(path)
		p := byDir[dir]
		if p == nil {
			rel, rerr := filepath.Rel(root, dir)
			if rerr != nil {
				return rerr
			}
			if rel == "." {
				rel = ""
			}
			p = &Package{Rel: filepath.ToSlash(rel), Dir: dir, Fset: fset}
			byDir[dir] = p
		}
		p.Files = append(p.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Rel < pkgs[j].Rel })
	return pkgs, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ParseSource parses a single in-memory file as its own Package — the
// golden-file tests and the statsreset mutation test use it.
func ParseSource(filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &Package{Rel: "fixture", Dir: "fixture", Fset: fset, Files: []*ast.File{f}}, nil
}
