package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SyncOrder audits the module's concurrency discipline with three checks,
// all lexical (no go/types, no may-happen-in-parallel analysis — the rules
// are written so a lexical over-approximation is the contract):
//
//  1. No channel send while a mutex is held. A send can block for
//     arbitrarily long (the BSP worker token channels are exactly
//     rendezvous points); blocking inside a critical section turns a
//     scheduling hiccup into a lock convoy, and pairing it with a receive
//     under the same lock is a deadlock. Completion signalling under a lock
//     should use close() (which never blocks) — the runner's singleflight
//     entries are the house idiom. //bfetch:sync-ok <reason> suppresses a
//     deliberate exception.
//
//  2. Lock acquisitions must not contradict the declared partial order.
//     //bfetch:lockorder A < B (package scope, any file) declares that A,
//     when held together with B, is acquired first. Acquiring A while B is
//     held — with "A < B" declared, directly or transitively — is a
//     deadlock-shaped inversion and is reported. Locks are named by
//     receiver type and field path ("Engine.mu") or package-level variable
//     name ("logMu"); unresolvable acquisition sites are ignored.
//
//  3. sync types must not be copied by value: methods with value receivers
//     on mutex-bearing structs and parameters/results passing such structs
//     (or bare sync.Mutex et al.) by value are reported. This is vet's
//     copylocks narrowed to declaration sites, where it is reliable without
//     type information.
func SyncOrder(p *Package) []Diagnostic {
	var out []Diagnostic
	order := collectLockOrder(p, &out)
	bearers := mutexBearingTypes(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBody(p, f, fd, order, &out)
			checkValueCopies(p, f, fd, bearers, &out)
		}
	}
	return out
}

// ----------------------------------------------------------- lock tracking --

// lockOrder is the declared partial order: edges[a][b] means a < b (a is
// acquired first when both are held), transitively closed.
type lockOrder struct {
	edges map[string]map[string]bool
}

func (o *lockOrder) before(a, b string) bool {
	if o == nil || o.edges == nil {
		return false
	}
	return o.edges[a][b]
}

// collectLockOrder parses every //bfetch:lockorder declaration in the
// package and closes it transitively. Malformed declarations are findings:
// a silent parse failure would silently stop enforcing the order.
func collectLockOrder(p *Package, out *[]Diagnostic) *lockOrder {
	o := &lockOrder{edges: make(map[string]map[string]bool)}
	for _, f := range p.Files {
		for line, arg := range p.markerArgs(f, "bfetch:lockorder") {
			parts := strings.Split(arg, "<")
			bad := len(parts) < 2
			var chain []string
			for _, part := range parts {
				name := strings.TrimSpace(part)
				if name == "" || strings.ContainsAny(name, " \t") {
					bad = true
					break
				}
				chain = append(chain, name)
			}
			if bad {
				p.report(out, f, f.Pos(), "syncorder", "",
					"line %d: malformed //bfetch:lockorder %q; want \"A < B\" or \"A < B < C\"", line, arg)
				continue
			}
			for i := 0; i+1 < len(chain); i++ {
				if o.edges[chain[i]] == nil {
					o.edges[chain[i]] = make(map[string]bool)
				}
				o.edges[chain[i]][chain[i+1]] = true
			}
		}
	}
	// Transitive closure (the order sets are tiny).
	for changed := true; changed; {
		changed = false
		for a, bs := range o.edges {
			for b := range bs {
				for c := range o.edges[b] {
					if !o.edges[a][c] {
						o.edges[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	return o
}

// heldLock is one lexically held acquisition.
type heldLock struct {
	name string
	pos  token.Pos
}

// checkLockBody walks one function body in source order, tracking the
// lexically held lock set, flagging channel sends inside critical sections
// and acquisition sequences that contradict the declared order.
func checkLockBody(p *Package, f *ast.File, fd *ast.FuncDecl, order *lockOrder, out *[]Diagnostic) {
	recvName, recvType := "", ""
	if fd.Recv != nil {
		recvName, recvType = recvInfo(fd)
	}
	var held []heldLock
	release := func(name string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].name == name {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at return, not here: the lock stays
			// lexically held for the rest of the body. Don't descend — the
			// deferred call must not be treated as an immediate release.
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				p.report(out, f, n.Pos(), "syncorder", "bfetch:sync-ok",
					"channel send while holding %s: a blocked receiver stalls the critical section (use close, or send after unlocking)",
					held[len(held)-1].name)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := lockName(sel.X, recvName, recvType)
			if name == "" {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				for _, h := range held {
					if order.before(name, h.name) {
						p.report(out, f, n.Pos(), "syncorder", "bfetch:sync-ok",
							"acquiring %s while holding %s contradicts declared lock order %s < %s",
							name, h.name, name, h.name)
					}
				}
				held = append(held, heldLock{name: name, pos: n.Pos()})
			case "Unlock", "RUnlock":
				release(name)
			}
		}
		return true
	})
}

// lockName renders the owner expression of a .Lock()/.Unlock() call as a
// stable order-declaration name: "Type.field..." for receiver-rooted
// selector chains, the variable name for package-level/local mutexes, ""
// when unresolvable.
func lockName(x ast.Expr, recvName, recvType string) string {
	var parts []string
	for {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			parts = append([]string{v.Sel.Name}, parts...)
			x = v.X
			continue
		case *ast.ParenExpr:
			x = v.X
			continue
		case *ast.Ident:
			root := v.Name
			if v.Name == recvName && recvType != "" {
				root = recvType
			} else if len(parts) > 0 {
				// Selector rooted at a non-receiver variable: name by the
				// field path alone is ambiguous; keep the raw spelling.
				root = v.Name
			}
			return strings.Join(append([]string{root}, parts...), ".")
		default:
			return ""
		}
	}
}

// ------------------------------------------------------------- value copies --

// syncTypeNames are the sync package's by-reference-only types.
var syncTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

// mutexBearingTypes returns the package's named struct types that contain a
// sync type (directly, or through an embedded/nested named struct of the
// same package), so copying them by value copies a lock.
func mutexBearingTypes(p *Package) map[string]bool {
	direct := make(map[string]bool)
	deps := make(map[string][]string) // type → same-package named field types
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					t := field.Type
					if arr, ok := t.(*ast.ArrayType); ok {
						t = arr.Elt // an array of locks is still a lock copy
					}
					switch v := t.(type) {
					case *ast.SelectorExpr:
						if x, ok := v.X.(*ast.Ident); ok && x.Name == "sync" && syncTypeNames[v.Sel.Name] {
							direct[ts.Name.Name] = true
						}
					case *ast.Ident:
						deps[ts.Name.Name] = append(deps[ts.Name.Name], v.Name)
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for t, fields := range deps {
			if direct[t] {
				continue
			}
			for _, ft := range fields {
				if direct[ft] {
					direct[t] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// isSyncByValue reports whether a declared (non-pointer) type expression is
// a sync type or a package-local mutex-bearing struct, returning its
// spelling.
func isSyncByValue(t ast.Expr, bearers map[string]bool) (string, bool) {
	switch v := t.(type) {
	case *ast.Ident:
		if bearers[v.Name] {
			return v.Name, true
		}
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok && x.Name == "sync" && syncTypeNames[v.Sel.Name] {
			return "sync." + v.Sel.Name, true
		}
	}
	return "", false
}

// checkValueCopies flags value receivers and by-value parameters/results of
// lock-bearing types.
func checkValueCopies(p *Package, f *ast.File, fd *ast.FuncDecl, bearers map[string]bool, out *[]Diagnostic) {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if name, ok := isSyncByValue(fd.Recv.List[0].Type, bearers); ok {
			p.report(out, f, fd.Recv.List[0].Pos(), "syncorder", "bfetch:sync-ok",
				"method %s has a value receiver of lock-bearing type %s; copying it copies the lock (use *%s)",
				fd.Name.Name, name, name)
		}
	}
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if name, ok := isSyncByValue(field.Type, bearers); ok {
				p.report(out, f, field.Pos(), "syncorder", "bfetch:sync-ok",
					"%s of %s passes lock-bearing type %s by value (use *%s)",
					what, fd.Name.Name, name, name)
			}
		}
	}
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}
