package lint

import (
	"go/ast"
	"go/token"
)

// StatsReset structurally audits every Reset/ResetStats/Restart method:
// each field of the receiver struct must either be written by the method
// (directly, via a sub-field/element assignment, via a method call on the
// field, via a range that resets its elements, or by passing its address to
// a helper) or carry a //bfetch:noreset annotation declaring it
// learned/configuration state the reset deliberately preserves. This is the
// bug class PR 2's reset audit fixed by hand — a counter added to a struct
// but forgotten in ResetStats silently bleeds warmup state into the
// measurement window. Restart joined the audited family with the interval
// time series: a sampler whose window restart forgets a cursor replays the
// warmup rows into the measurement window, the same bug class at one
// remove.
//
// Embedded (anonymous) fields are exempt: their own Reset methods are
// audited separately.
func StatsReset(p *Package) []Diagnostic {
	var out []Diagnostic
	structs := collectStructs(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Reset" && fd.Name.Name != "ResetStats" && fd.Name.Name != "Restart" {
				continue
			}
			recvName, typeName := recvInfo(fd)
			si, known := structs[typeName]
			if !known {
				continue
			}
			accounted := accountedFields(fd, recvName)
			if accounted == nil {
				continue // *recv = T{...}: whole-struct overwrite
			}
			for _, field := range si.fields {
				if field.anonymous || accounted[field.name] {
					continue
				}
				if hasDirective(field.doc, "bfetch:noreset") || hasDirective(field.comment, "bfetch:noreset") ||
					p.suppressed(si.file, field.pos, "bfetch:noreset") {
					continue
				}
				p.report(&out, f, fd.Name.Pos(), "statsreset", "",
					"field %s.%s is not reset by %s and lacks a //bfetch:noreset annotation",
					typeName, field.name, fd.Name.Name)
			}
		}
	}
	return out
}

type structInfoT struct {
	file   *ast.File
	fields []fieldInfoT
}

type fieldInfoT struct {
	name      string
	anonymous bool
	pos       token.Pos
	doc       *ast.CommentGroup
	comment   *ast.CommentGroup
}

// collectStructs gathers every named struct type in the package with its
// field metadata.
func collectStructs(p *Package) map[string]structInfoT {
	out := make(map[string]structInfoT)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				si := structInfoT{file: f}
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						si.fields = append(si.fields, fieldInfoT{
							name: embeddedName(field.Type), anonymous: true,
							pos: field.Pos(), doc: field.Doc, comment: field.Comment,
						})
						continue
					}
					for _, name := range field.Names {
						si.fields = append(si.fields, fieldInfoT{
							name: name.Name,
							pos:  name.Pos(), doc: field.Doc, comment: field.Comment,
						})
					}
				}
				out[ts.Name.Name] = si
			}
		}
	}
	return out
}

// recvInfo extracts the receiver variable name and its struct type name.
func recvInfo(fd *ast.FuncDecl) (recvName, typeName string) {
	if len(fd.Recv.List) == 0 {
		return "", ""
	}
	r := fd.Recv.List[0]
	if len(r.Names) > 0 {
		recvName = r.Names[0].Name
	}
	t := r.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers: T[P] — unwrap the index.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName
}

// accountedFields returns the set of first-level receiver fields the method
// writes. A nil return means the whole struct is overwritten (*recv = T{...}).
func accountedFields(fd *ast.FuncDecl, recvName string) map[string]bool {
	if recvName == "" || recvName == "_" {
		return make(map[string]bool)
	}
	acc := make(map[string]bool)
	whole := false
	markLHS := func(e ast.Expr) {
		// Strip *, (), [i], .sub chains down to recv.Field; a bare *recv
		// dereference marks the whole struct.
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.SelectorExpr:
				if x, ok := v.X.(*ast.Ident); ok && x.Name == recvName {
					acc[v.Sel.Name] = true
					return
				}
				e = v.X
			case *ast.Ident:
				if v.Name == recvName {
					whole = true
				}
				return
			default:
				return
			}
		}
	}
	// recvField resolves an expression to a first-level receiver field name.
	recvField := func(e ast.Expr) (string, bool) {
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.UnaryExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.SliceExpr:
				e = v.X
			case *ast.SelectorExpr:
				if x, ok := v.X.(*ast.Ident); ok && x.Name == recvName {
					return v.Sel.Name, true
				}
				e = v.X
			default:
				return "", false
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markLHS(lhs)
			}
		case *ast.IncDecStmt:
			markLHS(n.X)
		case *ast.CallExpr:
			// recv.Field.Method(...) delegates the field's reset.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if name, ok := recvField(sel.X); ok {
					acc[name] = true
				}
			}
			// reset helpers taking &recv.Field (or recv.Field for
			// reference types).
			for _, arg := range n.Args {
				if name, ok := recvField(arg); ok {
					acc[name] = true
				}
			}
		case *ast.RangeStmt:
			// for i := range recv.Field { recv.Field[i] = ... } — the range
			// expression names the field being reset elementwise.
			if name, ok := recvField(n.X); ok {
				acc[name] = true
			}
		}
		return true
	})
	if whole {
		return nil
	}
	return acc
}

// embeddedName returns the type name of an anonymous field.
func embeddedName(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return embeddedName(v.X)
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}
