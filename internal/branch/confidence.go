package branch

// Composite branch-confidence estimation (Jiménez, "Composite Confidence
// Estimators for Enhanced Speculation Control", SBAC-PAD 2009), as adopted by
// B-Fetch §IV-B1: three signals are combined into an estimate of the
// probability that a particular dynamic branch prediction is correct.
//
//   - JRS counters (Jacobsen/Rotenberg/Smith): saturating counters indexed by
//     PC ⊕ GHR that increment on a correct prediction and reset on a
//     misprediction, so high values mean a long correct streak.
//   - Up/down counters: the same index, but decremented rather than reset, a
//     slower-decaying signal.
//   - Self counters: the strength of the direction counter the tournament
//     predictor actually used.
//
// The composite estimate maps the combined signal onto a correctness
// probability in [MinProb, MaxProb]. The B-Fetch path confidence is the
// product of these per-branch probabilities along the lookahead path.

// ConfidenceConfig sizes the estimator. The default (2048 entries of 4+4
// bits) matches Table I's "Path Confidence Estimator: 2048 entries, 2 KB".
type ConfidenceConfig struct {
	Entries int     // entries in each of the JRS and up/down tables
	JRSBits int     // width of the JRS counters
	UDBits  int     // width of the up/down counters
	MinProb float64 // probability assigned at zero composite signal
	MaxProb float64 // probability assigned at full composite signal
}

// DefaultConfidenceConfig returns the Table I configuration.
func DefaultConfidenceConfig() ConfidenceConfig {
	return ConfidenceConfig{
		Entries: 2048,
		JRSBits: 4,
		UDBits:  4,
		MinProb: 0.70,
		MaxProb: 0.999,
	}
}

// Confidence is the composite estimator.
type Confidence struct {
	cfg    ConfidenceConfig
	jrs    []uint8
	ud     []uint8
	jrsMax uint8
	udMax  uint8
}

// NewConfidence builds an estimator.
func NewConfidence(cfg ConfidenceConfig) *Confidence {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("branch: confidence entries must be a power of two")
	}
	return &Confidence{
		cfg:    cfg,
		jrs:    make([]uint8, cfg.Entries),
		ud:     make([]uint8, cfg.Entries),
		jrsMax: uint8(1)<<cfg.JRSBits - 1,
		udMax:  uint8(1)<<cfg.UDBits - 1,
	}
}

// StorageBits reports the estimator's state budget.
func (c *Confidence) StorageBits() int {
	return c.cfg.Entries * (c.cfg.JRSBits + c.cfg.UDBits)
}

func (c *Confidence) idx(pc uint64, ghr GHR) int {
	return int((pcIndex(pc) ^ uint64(ghr)) & uint64(c.cfg.Entries-1))
}

// Estimate returns the probability that the prediction pred for the branch
// at pc (made under history ghr) is correct. Pure; reads only.
//
//bfetch:hotpath
func (c *Confidence) Estimate(pc uint64, ghr GHR, pred Pred) float64 {
	i := c.idx(pc, ghr)
	// Each signal is normalized to [0,1] and the three are averaged; the
	// composite is then mapped onto the configured probability band.
	sJRS := float64(c.jrs[i]) / float64(c.jrsMax)
	sUD := float64(c.ud[i]) / float64(c.udMax)
	sSelf := pred.Strength()
	composite := (sJRS + sUD + sSelf) / 3
	return c.cfg.MinProb + (c.cfg.MaxProb-c.cfg.MinProb)*composite
}

// Update trains the estimator with the outcome of one prediction.
//
//bfetch:hotpath
func (c *Confidence) Update(pc uint64, ghr GHR, correct bool) {
	i := c.idx(pc, ghr)
	if correct {
		c.jrs[i] = satInc(c.jrs[i], c.jrsMax)
		c.ud[i] = satInc(c.ud[i], c.udMax)
	} else {
		c.jrs[i] = 0 // resetting counter
		c.ud[i] = satDec(c.ud[i])
	}
}

// PathConfidence accumulates confidence along a speculative lookahead path,
// following Malik et al.'s probability-based path confidence: the running
// product of per-branch correctness probabilities. B-Fetch terminates
// lookahead when the product falls below its threshold (0.75 by default,
// Table II).
type PathConfidence struct {
	Threshold float64 //bfetch:noreset configuration, not a counter
	product   float64
	depth     int
}

// NewPathConfidence returns an accumulator with the given threshold, reset
// to full confidence.
func NewPathConfidence(threshold float64) *PathConfidence {
	return &PathConfidence{Threshold: threshold, product: 1}
}

// Reset restarts the path at full confidence (a new lookahead).
func (pc *PathConfidence) Reset() { pc.product, pc.depth = 1, 0 }

// Extend multiplies in one predicted branch's confidence and reports whether
// the path is still above threshold.
func (pc *PathConfidence) Extend(prob float64) bool {
	pc.product *= prob
	pc.depth++
	return pc.product >= pc.Threshold
}

// Value returns the current cumulative path confidence.
func (pc *PathConfidence) Value() float64 { return pc.product }

// Depth returns how many branches have been accumulated since Reset.
func (pc *PathConfidence) Depth() int { return pc.depth }
