// Package branch implements the branch-prediction machinery the B-Fetch
// paper depends on: a tournament direction predictor (local + gshare +
// chooser) in the style of the ALPHA 21264/gem5 predictor, a branch target
// buffer for indirect jumps, the composite confidence estimator of Jiménez
// (SBAC-PAD 2009: JRS + up/down + self counters), and the PaCo-style path
// confidence accumulator of Malik et al. (HPCA 2008).
//
// All direction lookups are pure functions of (PC, global history), so the
// B-Fetch lookahead engine can thread its own speculative history through the
// shared tables without perturbing the main pipeline's state, exactly as the
// paper's borrowed-predictor-port design requires.
package branch

import "fmt"

// GHR is a global branch-history register. Bit 0 is the most recent outcome.
type GHR uint64

// Shift returns the history extended with one outcome.
func (g GHR) Shift(taken bool) GHR {
	g <<= 1
	if taken {
		g |= 1
	}
	return g
}

// Config sizes the predictor. All table entry counts must be powers of two.
// The default configuration totals ≈6.5 KB, matching the paper's Table II
// "6.55KB Tournament predictor".
type Config struct {
	LocalHistEntries int // entries in the per-PC history table
	LocalHistBits    int // bits of local history per entry
	LocalPHTEntries  int // 3-bit counters indexed by local history
	GlobalEntries    int // 2-bit gshare counters
	ChooserEntries   int // 2-bit chooser counters indexed by GHR
	BTBEntries       int // branch target buffer entries (indirect targets)
}

// DefaultConfig returns the Table II predictor configuration.
func DefaultConfig() Config {
	return Config{
		LocalHistEntries: 1024,
		LocalHistBits:    10,
		LocalPHTEntries:  1024,
		GlobalEntries:    8192,
		ChooserEntries:   4096,
		BTBEntries:       256,
	}
}

// Scaled returns the configuration with every table scaled by a power-of-two
// factor (0.5, 2, 4, ...), used by the Figure 13 sensitivity study.
func (c Config) Scaled(factor float64) Config {
	scale := func(n int) int {
		v := int(float64(n) * factor)
		if v < 16 {
			v = 16
		}
		// Round to the nearest power of two (factor is itself 2^k in the
		// experiments, so this is exact there).
		p := 16
		for p < v {
			p <<= 1
		}
		return p
	}
	c.LocalHistEntries = scale(c.LocalHistEntries)
	c.LocalPHTEntries = scale(c.LocalPHTEntries)
	c.GlobalEntries = scale(c.GlobalEntries)
	c.ChooserEntries = scale(c.ChooserEntries)
	return c
}

func (c Config) validate() error {
	for _, n := range []int{c.LocalHistEntries, c.LocalPHTEntries, c.GlobalEntries, c.ChooserEntries, c.BTBEntries} {
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("branch: table size %d is not a positive power of two", n)
		}
	}
	if c.LocalHistBits <= 0 || c.LocalHistBits > 24 {
		return fmt.Errorf("branch: local history bits %d out of range", c.LocalHistBits)
	}
	return nil
}

// StorageBits returns the predictor's state budget in bits.
func (c Config) StorageBits() int {
	bits := c.LocalHistEntries*c.LocalHistBits +
		c.LocalPHTEntries*3 +
		c.GlobalEntries*2 +
		c.ChooserEntries*2
	// BTB: tag (16 bits is plenty at these sizes) + 32-bit target + valid.
	bits += c.BTBEntries * (16 + 32 + 1)
	return bits
}

// Pred is the outcome of a direction lookup, carrying enough detail for a
// faithful update and for the self-confidence estimator.
type Pred struct {
	Taken      bool
	UsedGlobal bool  // which component the chooser selected
	Counter    uint8 // the selected component's counter value
	CounterMax uint8 // saturation value of that counter
}

// Strength returns how far the used counter sits from its decision boundary,
// normalized to [0,1]; the "self counter" confidence signal.
func (p Pred) Strength() float64 {
	mid := float64(p.CounterMax) / 2
	d := float64(p.Counter) - mid
	if d < 0 {
		d = -d
	}
	return d / mid
}

// Predictor is the tournament direction predictor plus BTB.
type Predictor struct {
	cfg Config

	localHist []uint32 // per-PC local history
	localPHT  []uint8  // 3-bit counters
	global    []uint8  // 2-bit gshare counters
	chooser   []uint8  // 2-bit chooser: high favours global

	btbTag    []uint16
	btbTarget []uint64
	btbValid  []bool

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
}

// New builds a predictor; it panics on an invalid configuration (sizes are
// compile-time choices in this codebase).
func New(cfg Config) *Predictor {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:       cfg,
		localHist: make([]uint32, cfg.LocalHistEntries),
		localPHT:  make([]uint8, cfg.LocalPHTEntries),
		global:    make([]uint8, cfg.GlobalEntries),
		chooser:   make([]uint8, cfg.ChooserEntries),
		btbTag:    make([]uint16, cfg.BTBEntries),
		btbTarget: make([]uint64, cfg.BTBEntries),
		btbValid:  make([]bool, cfg.BTBEntries),
	}
	// Weakly-taken initial state converges faster on loop-heavy code.
	for i := range p.localPHT {
		p.localPHT[i] = 4
	}
	for i := range p.global {
		p.global[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// StorageBits reports the predictor's state budget.
func (p *Predictor) StorageBits() int { return p.cfg.StorageBits() }

func pcIndex(pc uint64) uint64 { return pc >> 2 }

func (p *Predictor) localIdx(pc uint64) int {
	return int(pcIndex(pc) & uint64(p.cfg.LocalHistEntries-1))
}

func (p *Predictor) localPHTIdx(hist uint32) int {
	return int(hist) & (p.cfg.LocalPHTEntries - 1)
}

func (p *Predictor) globalIdx(pc uint64, ghr GHR) int {
	return int((pcIndex(pc) ^ uint64(ghr)) & uint64(p.cfg.GlobalEntries-1))
}

func (p *Predictor) chooserIdx(ghr GHR) int {
	return int(uint64(ghr) & uint64(p.cfg.ChooserEntries-1))
}

// Lookup predicts the direction of the conditional branch at pc given a
// global history. It reads but never writes predictor state, so callers may
// thread speculative histories through it freely.
//
//bfetch:hotpath
func (p *Predictor) Lookup(pc uint64, ghr GHR) Pred {
	lh := p.localHist[p.localIdx(pc)]
	lc := p.localPHT[p.localPHTIdx(lh)]
	gc := p.global[p.globalIdx(pc, ghr)]
	ch := p.chooser[p.chooserIdx(ghr)]
	if ch >= 2 {
		return Pred{Taken: gc >= 2, UsedGlobal: true, Counter: gc, CounterMax: 3}
	}
	return Pred{Taken: lc >= 4, UsedGlobal: false, Counter: lc, CounterMax: 7}
}

// Update trains the predictor with a resolved branch. ghr must be the global
// history the prediction was made with; pred the value Lookup returned. The
// caller is responsible for counting this branch via Resolve (which also
// maintains the statistics).
//
//bfetch:hotpath
func (p *Predictor) Update(pc uint64, ghr GHR, taken bool, pred Pred) {
	li := p.localIdx(pc)
	lh := p.localHist[li]
	lpi := p.localPHTIdx(lh)
	gi := p.globalIdx(pc, ghr)
	ci := p.chooserIdx(ghr)

	localTaken := p.localPHT[lpi] >= 4
	globalTaken := p.global[gi] >= 2

	// Chooser trains toward whichever component was right, when they differ.
	if localTaken != globalTaken {
		if globalTaken == taken {
			p.chooser[ci] = satInc(p.chooser[ci], 3)
		} else {
			p.chooser[ci] = satDec(p.chooser[ci])
		}
	}
	// Direction counters.
	if taken {
		p.localPHT[lpi] = satInc(p.localPHT[lpi], 7)
		p.global[gi] = satInc(p.global[gi], 3)
	} else {
		p.localPHT[lpi] = satDec(p.localPHT[lpi])
		p.global[gi] = satDec(p.global[gi])
	}
	// Local history.
	mask := uint32(1)<<p.cfg.LocalHistBits - 1
	p.localHist[li] = ((lh << 1) | b2u32(taken)) & mask
}

// Resolve records prediction statistics; call once per resolved conditional
// branch with the prediction used at fetch.
func (p *Predictor) Resolve(predTaken, actualTaken bool) {
	p.Lookups++
	if predTaken != actualTaken {
		p.Mispredicts++
	}
}

// MissRate returns the fraction of resolved conditional branches that were
// mispredicted.
func (p *Predictor) MissRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// BTB: indirect target prediction.

func (p *Predictor) btbIdx(pc uint64) int {
	return int(pcIndex(pc) & uint64(p.cfg.BTBEntries-1))
}

func btbTagOf(pc uint64) uint16 { return uint16(pcIndex(pc) >> 9) }

// PredictIndirect returns the predicted target of the indirect jump at pc.
func (p *Predictor) PredictIndirect(pc uint64) (uint64, bool) {
	i := p.btbIdx(pc)
	if p.btbValid[i] && p.btbTag[i] == btbTagOf(pc) {
		return p.btbTarget[i], true
	}
	return 0, false
}

// UpdateIndirect records the resolved target of the indirect jump at pc.
func (p *Predictor) UpdateIndirect(pc, target uint64) {
	i := p.btbIdx(pc)
	p.btbTag[i] = btbTagOf(pc)
	p.btbTarget[i] = target
	p.btbValid[i] = true
}

func satInc(v, max uint8) uint8 {
	if v < max {
		return v + 1
	}
	return v
}

func satDec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
