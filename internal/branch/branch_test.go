package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGHRShift(t *testing.T) {
	var g GHR
	g = g.Shift(true).Shift(false).Shift(true)
	if g != 0b101 {
		t.Errorf("ghr = %b", g)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.GlobalEntries = 1000 // not a power of two
	defer func() {
		if recover() == nil {
			t.Error("invalid config accepted")
		}
	}()
	New(bad)
}

func TestDefaultStorageNearPaper(t *testing.T) {
	kb := float64(DefaultConfig().StorageBits()) / 8 / 1024
	// Table II: 6.55 KB tournament predictor. Accept the same ballpark.
	if kb < 5 || kb > 8 {
		t.Errorf("predictor storage = %.2f KB, want ≈6.5", kb)
	}
}

func TestScaled(t *testing.T) {
	c := DefaultConfig()
	up := c.Scaled(2)
	if up.GlobalEntries != 2*c.GlobalEntries || up.ChooserEntries != 2*c.ChooserEntries {
		t.Errorf("2x scale: %+v", up)
	}
	down := c.Scaled(0.5)
	if down.GlobalEntries != c.GlobalEntries/2 {
		t.Errorf("0.5x scale: %+v", down)
	}
	if down.BTBEntries != c.BTBEntries {
		t.Error("BTB should not scale")
	}
}

// trainLoop feeds the predictor a branch that is taken n-1 of every n times
// (a loop back-edge) and returns the misprediction rate over the last half
// of the run.
func trainLoop(p *Predictor, pc uint64, n, iters int) float64 {
	var ghr GHR
	miss, total := 0, 0
	for i := 0; i < iters; i++ {
		taken := i%n != n-1
		pred := p.Lookup(pc, ghr)
		if i > iters/2 {
			total++
			if pred.Taken != taken {
				miss++
			}
		}
		p.Update(pc, ghr, taken, pred)
		ghr = ghr.Shift(taken)
	}
	return float64(miss) / float64(total)
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	var ghr GHR
	for i := 0; i < 64; i++ {
		pred := p.Lookup(0x1000, ghr)
		p.Update(0x1000, ghr, true, pred)
		ghr = ghr.Shift(true)
	}
	if !p.Lookup(0x1000, ghr).Taken {
		t.Error("always-taken branch predicted not-taken after training")
	}
}

func TestLearnsShortLoop(t *testing.T) {
	p := New(DefaultConfig())
	// A 4-iteration loop is within the 10-bit local history, so the exit
	// should become predictable: expect a low steady-state miss rate.
	rate := trainLoop(p, 0x2000, 4, 4000)
	if rate > 0.05 {
		t.Errorf("4-iteration loop steady-state miss rate = %.3f", rate)
	}
}

func TestLearnsAlternating(t *testing.T) {
	p := New(DefaultConfig())
	rate := trainLoop(p, 0x3000, 2, 2000) // T,N,T,N...
	if rate > 0.05 {
		t.Errorf("alternating branch miss rate = %.3f", rate)
	}
}

func TestLookupIsPure(t *testing.T) {
	p := New(DefaultConfig())
	// Train a bit with random outcomes.
	rng := rand.New(rand.NewSource(1))
	var ghr GHR
	for i := 0; i < 500; i++ {
		pc := uint64(0x1000 + 4*(rng.Intn(32)))
		taken := rng.Intn(2) == 0
		pred := p.Lookup(pc, ghr)
		p.Update(pc, ghr, taken, pred)
		ghr = ghr.Shift(taken)
	}
	// Many lookups with arbitrary histories must not change any subsequent
	// prediction.
	before := make([]Pred, 64)
	for i := range before {
		before[i] = p.Lookup(uint64(0x1000+4*i), GHR(i*7))
	}
	for i := 0; i < 1000; i++ {
		p.Lookup(uint64(0x1000+4*(i%64)), GHR(i*13))
	}
	for i := range before {
		if got := p.Lookup(uint64(0x1000+4*i), GHR(i*7)); got != before[i] {
			t.Fatalf("lookup %d changed after speculative lookups: %+v vs %+v", i, got, before[i])
		}
	}
}

func TestResolveStats(t *testing.T) {
	p := New(DefaultConfig())
	p.Resolve(true, true)
	p.Resolve(true, false)
	p.Resolve(false, false)
	p.Resolve(false, true)
	if p.Lookups != 4 || p.Mispredicts != 2 {
		t.Errorf("lookups=%d mispredicts=%d", p.Lookups, p.Mispredicts)
	}
	if p.MissRate() != 0.5 {
		t.Errorf("miss rate = %f", p.MissRate())
	}
	empty := New(DefaultConfig())
	if empty.MissRate() != 0 {
		t.Error("empty predictor miss rate should be 0")
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PredictIndirect(0x4000); ok {
		t.Error("cold BTB hit")
	}
	p.UpdateIndirect(0x4000, 0x1234)
	if tgt, ok := p.PredictIndirect(0x4000); !ok || tgt != 0x1234 {
		t.Errorf("btb = %#x,%v", tgt, ok)
	}
	// A conflicting PC with the same index but different tag must miss.
	conflict := 0x4000 + uint64(DefaultConfig().BTBEntries)*4*512
	p.UpdateIndirect(conflict, 0x9999)
	if tgt, ok := p.PredictIndirect(0x4000); ok && tgt == 0x1234 {
		t.Log("no conflict at chosen stride; acceptable")
	}
	if tgt, ok := p.PredictIndirect(conflict); !ok || tgt != 0x9999 {
		t.Errorf("conflict btb = %#x,%v", tgt, ok)
	}
}

func TestPredStrength(t *testing.T) {
	weak := Pred{Counter: 4, CounterMax: 7}
	strong := Pred{Counter: 7, CounterMax: 7}
	zero := Pred{Counter: 0, CounterMax: 3}
	if weak.Strength() >= strong.Strength() {
		t.Errorf("weak %.2f !< strong %.2f", weak.Strength(), strong.Strength())
	}
	if zero.Strength() != 1 {
		t.Errorf("fully not-taken strength = %f, want 1", zero.Strength())
	}
}

func TestConfidenceTrainsUpAndResets(t *testing.T) {
	c := NewConfidence(DefaultConfidenceConfig())
	pred := Pred{Counter: 7, CounterMax: 7}
	pc, ghr := uint64(0x1000), GHR(0)
	low := c.Estimate(pc, ghr, pred)
	for i := 0; i < 32; i++ {
		c.Update(pc, ghr, true)
	}
	high := c.Estimate(pc, ghr, pred)
	if high <= low {
		t.Errorf("confidence did not rise: %.3f -> %.3f", low, high)
	}
	c.Update(pc, ghr, false)
	after := c.Estimate(pc, ghr, pred)
	if after >= high {
		t.Errorf("confidence did not drop after mispredict: %.3f -> %.3f", high, after)
	}
	cfg := DefaultConfidenceConfig()
	if high > cfg.MaxProb || low < cfg.MinProb {
		t.Errorf("estimates outside [%f,%f]: %f %f", cfg.MinProb, cfg.MaxProb, low, high)
	}
}

func TestConfidenceStorage(t *testing.T) {
	c := NewConfidence(DefaultConfidenceConfig())
	kb := float64(c.StorageBits()) / 8 / 1024
	if kb != 2.0 {
		t.Errorf("confidence storage = %.2f KB, want 2 (Table I)", kb)
	}
}

func TestPathConfidence(t *testing.T) {
	pc := NewPathConfidence(0.75)
	if pc.Value() != 1 || pc.Depth() != 0 {
		t.Error("fresh accumulator not at unity")
	}
	if !pc.Extend(0.97) {
		t.Error("one confident branch should stay above threshold")
	}
	// 0.97^n falls below 0.75 at n=10.
	n := 1
	for pc.Extend(0.97) {
		n++
	}
	n++
	if n != 10 {
		t.Errorf("0.97-per-branch path survived %d branches, want 10", n)
	}
	pc.Reset()
	if pc.Value() != 1 || pc.Depth() != 0 {
		t.Error("reset failed")
	}
}

// Property: Update never lets any counter escape its width, and Lookup never
// panics across arbitrary PCs/histories.
func TestQuickCounterBounds(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pcRaw uint32, ghrRaw uint64, taken bool) bool {
		pc := uint64(pcRaw)
		ghr := GHR(ghrRaw)
		pred := p.Lookup(pc, ghr)
		p.Update(pc, ghr, taken, pred)
		for _, v := range p.localPHT {
			if v > 7 {
				return false
			}
		}
		for _, v := range p.global {
			if v > 3 {
				return false
			}
		}
		for _, v := range p.chooser {
			if v > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: confidence estimates always lie within the configured band.
func TestQuickConfidenceBand(t *testing.T) {
	cfg := DefaultConfidenceConfig()
	c := NewConfidence(cfg)
	f := func(pcRaw uint32, ghrRaw uint64, counter uint8, correct bool) bool {
		pc, ghr := uint64(pcRaw), GHR(ghrRaw)
		pred := Pred{Counter: counter % 8, CounterMax: 7}
		e := c.Estimate(pc, ghr, pred)
		c.Update(pc, ghr, correct)
		return e >= cfg.MinProb-1e-9 && e <= cfg.MaxProb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
