package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Streaming and stencil kernels: the regular-access side of the suite.
// These are where Stride and SMS do well and where B-Fetch's loop term
// (LoopCnt×LoopDelta) has to keep up.
//
// Code-generation idiom: like compiled ALPHA code, each array gets its own
// pointer register advanced with addi, and loads address directly off that
// pointer (disp(base)). This matters to the study — B-Fetch's Memory History
// Table learns the displacement between a base register's value at the
// preceding branch and the load's effective address, which is exactly the
// pattern register allocators produce. A single recomputed address temp
// would hide the bases from every prefetcher's trainer and from real
// hardware alike.

const megabyte = 1 << 20

func init() {
	register(Workload{
		Name:            "bwaves",
		Description:     "blast-wave solver stand-in: three-array unit-stride sweep with a 2-point neighbourhood",
		Character:       "streaming",
		MemoryIntensive: true,
		build:           buildBwaves,
	})
	register(Workload{
		Name:            "lbm",
		Description:     "lattice-Boltzmann stand-in: ping-pong grids, 5-point neighbourhood reads, streaming writes",
		Character:       "stencil",
		MemoryIntensive: true,
		build:           buildLBM,
	})
	register(Workload{
		Name:            "leslie3d",
		Description:     "LES flow stand-in: three-field stencil with unit and plane strides",
		Character:       "stencil",
		MemoryIntensive: true,
		build:           buildLeslie,
	})
	register(Workload{
		Name:            "libquantum",
		Description:     "quantum gate stand-in: one huge array, unit-stride sweep, highly predictable conditional update",
		Character:       "streaming",
		MemoryIntensive: true,
		build:           buildLibquantum,
	})
	register(Workload{
		Name:            "zeusmp",
		Description:     "astrophysics CFD stand-in: block-strided three-field sweep",
		Character:       "strided",
		MemoryIntensive: true,
		build:           buildZeusmp,
	})
	register(Workload{
		Name:            "cactusADM",
		Description:     "numerical relativity stand-in: 3D stencil with word, row and plane strides",
		Character:       "stencil",
		MemoryIntensive: true,
		build:           buildCactus,
	})
}

func buildBwaves() (*isa.Program, *mem.Memory) {
	const (
		arrA  = 0x1000_0000
		arrB  = 0x2000_0000
		arrC  = 0x3000_0000
		words = 256 * 1024 // 2 MB per array, 6 MB total
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(11))
	fillRand(m, arrA, words*8, rng)
	fillRand(m, arrB, words*8, rng)

	b := isa.NewBuilder()
	outerLoop(b, 1_000_000, func() {
		// One full sweep: C[i] = 3*A[i] + B[i-1] + B[i+1], with per-array
		// pointers pA/pB/pC.
		b.Movi(r(base0), arrA+8)
		b.Movi(r(base1), arrB+8)
		b.Movi(r(base2), arrC+8)
		b.Movi(r(cnt1), words-2)
		top := b.Here()
		b.Ld(r(tmpA), r(base0), 0)
		b.Ld(r(tmpB), r(base1), -8)
		b.Ld(r(tmpC), r(base1), 8)
		b.Muli(r(tmpA), r(tmpA), 3)
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Add(r(tmpA), r(tmpA), r(tmpC))
		b.St(r(tmpA), r(base2), 0)
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(base2), r(base2), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildLBM() (*isa.Program, *mem.Memory) {
	const (
		src  = 0x1000_0000
		dst  = 0x2000_0000
		row  = 512  // words per row
		rows = 1024 // 4 MB per grid
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(13))
	fillRand(m, src, row*rows*8, rng)

	b := isa.NewBuilder()
	outerLoop(b, 1_000_000, func() {
		// Sweep interior cells: dst[i] = (src[i] + W + E + N + S) >> 2.
		b.Movi(r(base0), src+row*8)
		b.Movi(r(base1), dst+row*8)
		b.Movi(r(cnt1), row*(rows-2))
		top := b.Here()
		b.Ld(r(tmpA), r(base0), 0)
		b.Ld(r(tmpB), r(base0), -8)
		b.Ld(r(tmpC), r(base0), 8)
		b.Ld(r(tmpD), r(base0), -row*8)
		b.Ld(r(tmpE), r(base0), row*8)
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Add(r(tmpC), r(tmpC), r(tmpD))
		b.Add(r(tmpA), r(tmpA), r(tmpC))
		b.Add(r(tmpA), r(tmpA), r(tmpE))
		b.Srai(r(tmpA), r(tmpA), 2)
		b.St(r(tmpA), r(base1), 0)
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildLeslie() (*isa.Program, *mem.Memory) {
	const (
		f0    = 0x1000_0000
		f1    = 0x2000_0000
		f2    = 0x3000_0000
		plane = 2048 // words per plane (16 KB; keeps ±plane displacements
		// within the ISA's —and B-Fetch's— 16-bit signed fields)
		words = 256 * 1024
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(17))
	fillRand(m, f0, words*8, rng)
	fillRand(m, f1, words*8, rng)

	b := isa.NewBuilder()
	outerLoop(b, 1_000_000, func() {
		b.Movi(r(base0), f0+plane*8)
		b.Movi(r(base1), f1+plane*8)
		b.Movi(r(base2), f2+plane*8)
		b.Movi(r(cnt1), words-2*plane)
		top := b.Here()
		b.Ld(r(tmpA), r(base0), 0)
		b.Ld(r(tmpB), r(base0), 8)
		b.Ld(r(tmpC), r(base0), plane*8) // next plane
		b.Ld(r(tmpD), r(base1), 0)
		b.Ld(r(tmpE), r(base1), -plane*8) // previous plane
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Add(r(tmpC), r(tmpC), r(tmpD))
		b.Add(r(tmpA), r(tmpA), r(tmpC))
		b.Sub(r(tmpA), r(tmpA), r(tmpE))
		b.St(r(tmpA), r(base2), 0)
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(base2), r(base2), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildLibquantum() (*isa.Program, *mem.Memory) {
	const (
		reg   = 0x1000_0000
		words = 1024 * 1024 // 8 MB
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(19))
	fillRand(m, reg, words*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(tmpG), 0x40) // "control bit" mask applied to the amplitude word
	outerLoop(b, 1_000_000, func() {
		// Toffoli-ish sweep: flip a bit in every word whose element index
		// has bit 6 set — a perfectly periodic branch, so control stays
		// predictable while memory streams.
		b.Movi(r(base0), reg)
		b.Movi(r(idx), 0)
		b.Movi(r(lim), words)
		top := b.Here()
		skip := b.NewLabel()
		b.Ld(r(tmpA), r(base0), 0)
		b.Andi(r(tmpB), r(idx), 1<<6)
		b.Beqz(r(tmpB), skip)
		b.Xor(r(tmpA), r(tmpA), r(tmpG))
		b.St(r(tmpA), r(base0), 0)
		b.Bind(skip)
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(idx), r(idx), 1)
		b.Cmplt(r(tmpC), r(idx), r(lim))
		b.Bnez(r(tmpC), top)
	})
	return b.MustProgram(), m
}

func buildZeusmp() (*isa.Program, *mem.Memory) {
	const (
		f0    = 0x1000_0000
		f1    = 0x2000_0000
		f2    = 0x3000_0000
		words = 256 * 1024
		step  = 8 * 8 // one cache block per iteration
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(23))
	fillRand(m, f0, words*8, rng)
	fillRand(m, f1, words*8, rng)

	b := isa.NewBuilder()
	outerLoop(b, 1_000_000, func() {
		// Block-strided field update: one 64-byte block per iteration,
		// touching two words in it plus the matching block of field 1.
		b.Movi(r(base0), f0)
		b.Movi(r(base1), f1)
		b.Movi(r(base2), f2)
		b.Movi(r(cnt1), words*8/step)
		top := b.Here()
		b.Ld(r(tmpA), r(base0), 0)
		b.Ld(r(tmpB), r(base0), 32)
		b.Ld(r(tmpC), r(base1), 0)
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Mul(r(tmpA), r(tmpA), r(tmpC))
		b.St(r(tmpA), r(base2), 0)
		b.Addi(r(base0), r(base0), step)
		b.Addi(r(base1), r(base1), step)
		b.Addi(r(base2), r(base2), step)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildCactus() (*isa.Program, *mem.Memory) {
	const (
		gridA = 0x1000_0000
		gridB = 0x2000_0000
		rowW  = 128  // words per row
		plane = 2048 // words per plane (16 KB; displacement-encodable)
		words = 384 * 1024
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(29))
	fillRand(m, gridA, words*8, rng)

	b := isa.NewBuilder()
	outerLoop(b, 1_000_000, func() {
		// 3D 7-point stencil written as a flat sweep over interior points.
		b.Movi(r(base0), gridA+plane*8)
		b.Movi(r(base1), gridB+plane*8)
		b.Movi(r(cnt1), words-2*plane)
		top := b.Here()
		b.Ld(r(tmpA), r(base0), 0)
		b.Ld(r(tmpB), r(base0), -8)
		b.Ld(r(tmpC), r(base0), 8)
		b.Ld(r(tmpD), r(base0), -rowW*8)
		b.Ld(r(tmpE), r(base0), rowW*8)
		b.Ld(r(tmpF), r(base0), plane*8)
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Add(r(tmpC), r(tmpC), r(tmpD))
		b.Add(r(tmpE), r(tmpE), r(tmpF))
		b.Add(r(tmpA), r(tmpA), r(tmpC))
		b.Add(r(tmpA), r(tmpA), r(tmpE))
		b.St(r(tmpA), r(base1), 0)
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}
