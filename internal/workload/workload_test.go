package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/mem"
)

const probeInsts = 120_000

type profile struct {
	loads, stores, branches, taken uint64
	blocks                         map[uint64]bool
}

func profileWorkload(t *testing.T, w Workload, insts uint64) profile {
	t.Helper()
	prog, image := w.Build()
	if err := prog.Validate(); err != nil {
		t.Fatalf("%s: invalid program: %v", w.Name, err)
	}
	p := profile{blocks: map[uint64]bool{}}
	cpu := emu.New(prog, image)
	cpu.OnRetire = func(r emu.Retire) {
		switch {
		case r.Inst.IsLoad():
			p.loads++
			p.blocks[r.EA>>6] = true
		case r.Inst.IsStore():
			p.stores++
			p.blocks[r.EA>>6] = true
		case r.Inst.IsControl():
			p.branches++
			if r.Taken {
				p.taken++
			}
		}
	}
	n, err := cpu.Run(insts)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if n < insts {
		t.Fatalf("%s: halted after %d instructions (outer loop too short)", w.Name, n)
	}
	return p
}

func TestRegistryComplete(t *testing.T) {
	ws := All()
	if len(ws) != 18 {
		t.Fatalf("registry holds %d workloads, want 18", len(ws))
	}
	want := []string{
		"astar", "bwaves", "bzip2", "cactusADM", "calculix", "gamess",
		"gromacs", "h264ref", "hmmer", "lbm", "leslie3d", "libquantum",
		"mcf", "milc", "sjeng", "soplex", "sphinx", "zeusmp",
	}
	for i, name := range want {
		if ws[i].Name != name {
			t.Errorf("workload %d = %s, want %s", i, ws[i].Name, name)
		}
	}
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAllWorkloadsExecute(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := profileWorkload(t, w, probeInsts)
			memOps := p.loads + p.stores
			if memOps == 0 {
				t.Fatal("no memory operations")
			}
			if p.branches == 0 {
				t.Fatal("no control instructions")
			}
			// Every kernel needs loads for a data-prefetching study; even
			// the compute-bound ones probe their tables.
			if p.loads*20 < uint64(probeInsts) {
				t.Errorf("load fraction = %.1f%%, want ≥ 5%%",
					100*float64(p.loads)/float64(probeInsts))
			}
		})
	}
}

func TestWorkingSetsMatchCharacter(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := profileWorkload(t, w, probeInsts)
			touched := len(p.blocks) * 64
			// Streaming kernels advance ≈ one new block per handful of
			// iterations, so the floor is calibrated to the probe length.
			if w.MemoryIntensive && touched < 100<<10 {
				t.Errorf("memory-intensive kernel touched only %d KB in %d insts",
					touched>>10, probeInsts)
			}
			if !w.MemoryIntensive && touched > 2<<20 {
				t.Errorf("cache-resident kernel touched %d MB", touched>>20)
			}
		})
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, w := range All()[:4] {
		p1, m1 := w.Build()
		p2, m2 := w.Build()
		if p1.Len() != p2.Len() {
			t.Fatalf("%s: program lengths differ", w.Name)
		}
		for i := range p1.Insts {
			if p1.Insts[i] != p2.Insts[i] {
				t.Fatalf("%s: instruction %d differs", w.Name, i)
			}
		}
		if !mem.Equal(m1, m2) {
			t.Fatalf("%s: memory images differ", w.Name)
		}
	}
}

func TestFOAOrdering(t *testing.T) {
	// The LLC reach rate must separate the memory-intensive kernels from
	// the cache-resident ones.
	mcf, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	gamess, err := ByName("gamess")
	if err != nil {
		t.Fatal(err)
	}
	foaMcf, err := FOAProfile(mcf, probeInsts)
	if err != nil {
		t.Fatal(err)
	}
	foaGamess, err := FOAProfile(gamess, probeInsts)
	if err != nil {
		t.Fatal(err)
	}
	if foaMcf < 10*foaGamess {
		t.Errorf("FOA(mcf)=%.2f not ≫ FOA(gamess)=%.2f", foaMcf, foaGamess)
	}
}

func TestSelectMixes(t *testing.T) {
	foa := map[string]float64{
		"a": 10, "b": 8, "c": 5, "d": 1, "e": 0.1, "f": 0.01,
	}
	mixes := SelectMixes(2, 3, foa)
	if len(mixes) != 3 {
		t.Fatalf("got %d mixes", len(mixes))
	}
	// Highest-contention pair first.
	if mixes[0].Apps[0] != "a" || mixes[0].Apps[1] != "b" {
		t.Errorf("top mix = %v", mixes[0].Apps)
	}
	if mixes[0].Score != 18 {
		t.Errorf("top score = %v", mixes[0].Score)
	}
	if mixes[0].Name != "mix1" || mixes[2].Name != "mix3" {
		t.Errorf("names = %s, %s", mixes[0].Name, mixes[2].Name)
	}
	// Scores must be non-increasing.
	for i := 1; i < len(mixes); i++ {
		if mixes[i].Score > mixes[i-1].Score {
			t.Error("mixes not sorted by contention")
		}
	}
	// Four-app mixes.
	m4 := SelectMixes(4, 2, foa)
	if len(m4) != 2 || len(m4[0].Apps) != 4 {
		t.Fatalf("mix-4 selection = %v", m4)
	}
	// Deterministic across calls.
	again := SelectMixes(2, 3, foa)
	for i := range mixes {
		if mixes[i].Name != again[i].Name || mixes[i].Score != again[i].Score {
			t.Error("selection not deterministic")
		}
	}
}
