package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Mixed and compute-bound kernels: the cache-resident end of the suite.
// These are the benchmarks Figure 1 shows gaining little even from a
// perfect prefetcher; they anchor the "prefetch insensitive" half of the
// speedup distributions.

func init() {
	register(Workload{
		Name:        "bzip2",
		Description: "compression stand-in: streamed input words driving table lookups and run-length branches",
		Character:   "mixed",
		build:       buildBzip2,
	})
	register(Workload{
		Name:        "calculix",
		Description: "FEM stand-in: blocked dense matrix-vector products, mostly L2-resident",
		Character:   "mixed",
		build:       buildCalculix,
	})
	register(Workload{
		Name:        "gamess",
		Description: "quantum chemistry stand-in: Horner polynomial chains over L1-resident coefficient tables",
		Character:   "compute",
		build:       buildGamess,
	})
	register(Workload{
		Name:        "h264ref",
		Description: "video encoder stand-in: 2D block copies between frames with short branchy inner loops",
		Character:   "mixed",
		build:       buildH264,
	})
	register(Workload{
		Name:            "hmmer",
		Description:     "profile-HMM stand-in: dynamic-programming rows streamed against a gathered score table",
		Character:       "dp",
		MemoryIntensive: true,
		build:           buildHmmer,
	})
	register(Workload{
		Name:        "sjeng",
		Description: "chess stand-in: xorshift-driven evaluation with hard data-dependent branches over small tables",
		Character:   "compute",
		build:       buildSjeng,
	})
}

func buildBzip2() (*isa.Program, *mem.Memory) {
	const (
		input    = 0x1000_0000
		freqTbl  = 0x2000_0000
		inWords  = 128 * 1024 // 1 MB input
		tblWords = 8 * 1024   // 64 KB table
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(59))
	fillRand(m, input, inWords*8, rng)
	fillSeq(m, freqTbl, tblWords)

	b := isa.NewBuilder()
	b.Movi(r(base1), freqTbl)
	b.Movi(r(acc), 0)
	outerLoop(b, 1_000_000, func() {
		// Scan the input; each word indexes the frequency table (symbol
		// histogram) and extends a run-length when the low bits repeat.
		b.Movi(r(base0), input)
		b.Movi(r(cnt1), inWords)
		b.Movi(r(tmpF), 0) // previous symbol
		top := b.Here()
		newRun := b.NewLabel()
		b.Ld(r(tmpA), r(base0), 0)
		b.Andi(r(tmpB), r(tmpA), (tblWords-1)*8) // symbol ×8, table-bounded
		b.Add(r(addr), r(base1), r(tmpB))
		b.Ld(r(tmpC), r(addr), 0)
		b.Addi(r(tmpC), r(tmpC), 1)
		b.St(r(tmpC), r(addr), 0)
		b.Sub(r(tmpD), r(tmpB), r(tmpF))
		b.Bnez(r(tmpD), newRun)
		b.Addi(r(acc), r(acc), 1) // run extends
		b.Bind(newRun)
		b.Mov(r(tmpF), r(tmpB))
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildCalculix() (*isa.Program, *mem.Memory) {
	const (
		matrix = 0x1000_0000
		vecX   = 0x2000_0000
		vecY   = 0x3000_0000
		n      = 224 // 224×224 doubles ≈ 392 KB matrix
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(61))
	fillRand(m, matrix, n*n*8, rng)
	fillRand(m, vecX, n*8, rng)

	b := isa.NewBuilder()
	outerLoop(b, 1_000_000, func() {
		// y = A·x, row-major: the row streams, x is reused (L1 resident).
		b.Movi(r(base0), matrix)
		b.Movi(r(base2), vecY)
		b.Movi(r(cnt1), n)
		row := b.Here()
		b.Movi(r(base1), vecX)
		b.Movi(r(cnt2), n)
		b.Movi(r(acc), 0)
		inner := b.Here()
		b.Ld(r(tmpA), r(base0), 0)
		b.Ld(r(tmpB), r(base1), 0)
		b.Mul(r(tmpA), r(tmpA), r(tmpB))
		b.Add(r(acc), r(acc), r(tmpA))
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(cnt2), r(cnt2), -1)
		b.Bnez(r(cnt2), inner)
		b.St(r(acc), r(base2), 0)
		b.Addi(r(base2), r(base2), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), row)
	})
	return b.MustProgram(), m
}

func buildGamess() (*isa.Program, *mem.Memory) {
	const (
		coeffs = 0x1000_0000
		words  = 2 * 1024 // 16 KB: lives in L1
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(67))
	fillRand(m, coeffs, words*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(base0), coeffs)
	b.Movi(r(acc), 0)
	b.Movi(r(tmpG), 3) // "x"
	outerLoop(b, 10_000_000, func() {
		// Evaluate an 8-term Horner chain from an L1-resident coefficient
		// row, then rotate to the next row. Almost pure compute.
		b.Slli(r(tmpF), r(cnt0), 6)           // next row each iteration
		b.Andi(r(tmpF), r(tmpF), (words-8)*8) // row selector, table-bounded
		b.Add(r(addr), r(base0), r(tmpF))
		b.Ld(r(tmpA), r(addr), 0)
		for i := 1; i < 8; i++ {
			b.Mul(r(tmpA), r(tmpA), r(tmpG))
			b.Ld(r(tmpB), r(addr), int64(8*i))
			b.Add(r(tmpA), r(tmpA), r(tmpB))
		}
		b.Add(r(acc), r(acc), r(tmpA))
	})
	return b.MustProgram(), m
}

func buildH264() (*isa.Program, *mem.Memory) {
	const (
		frameA = 0x1000_0000
		frameB = 0x2000_0000
		rowW   = 256 // words per frame row (2 KB)
		rows   = 256 // 512 KB per frame
		blocks = (rowW / 2) * (rows / 8)
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(71))
	fillRand(m, frameA, rowW*rows*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(base0), frameA)
	b.Movi(r(base1), frameB)
	outerLoop(b, 1_000_000, func() {
		// Motion-compensation flavour: copy 8-row × 2-word blocks from
		// frame A to frame B at a shifted position; short inner loops make
		// this branch-dense.
		b.Movi(r(cnt1), blocks)
		b.Movi(r(idx), 0)
		blockTop := b.Here()
		b.Movi(r(cnt2), 8) // rows in the block
		// The source position is displaced by a data-dependent "motion
		// vector" read from the frame itself, so block starts do not form
		// a clean per-PC stride (as with real motion compensation).
		b.Add(r(addr), r(base0), r(idx))
		b.Ld(r(tmpC), r(addr), 0)
		b.Andi(r(tmpC), r(tmpC), 0x3F8) // mv in [0,2KB), word-aligned
		b.Add(r(addr), r(addr), r(tmpC))
		b.Add(r(tmpG), r(base1), r(idx))
		rowTop := b.Here()
		b.Ld(r(tmpA), r(addr), 0)
		b.Ld(r(tmpB), r(addr), 8)
		b.St(r(tmpA), r(tmpG), 64) // shifted by one block
		b.St(r(tmpB), r(tmpG), 72)
		b.Addi(r(addr), r(addr), rowW*8)
		b.Addi(r(tmpG), r(tmpG), rowW*8)
		b.Addi(r(cnt2), r(cnt2), -1)
		b.Bnez(r(cnt2), rowTop)
		b.Addi(r(idx), r(idx), 16)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), blockTop)
	})
	return b.MustProgram(), m
}

func buildHmmer() (*isa.Program, *mem.Memory) {
	const (
		rowM    = 0x1000_0000
		rowI    = 0x2000_0000
		scores  = 0x3000_0000
		rowLen  = 32 * 1024  // 256 KB per DP row
		scWords = 256 * 1024 // 2 MB score table
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(73))
	fillRand(m, rowM, rowLen*8, rng)
	fillRand(m, rowI, rowLen*8, rng)
	fillRand(m, scores, scWords*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(base2), scores)
	outerLoop(b, 1_000_000, func() {
		// One DP row pass: stream match/insert rows, gather an emission
		// score keyed by the match value, take maxes (data branches).
		b.Movi(r(base0), rowM+8)
		b.Movi(r(base1), rowI+8)
		b.Movi(r(cnt1), rowLen-1)
		top := b.Here()
		useI := b.NewLabel()
		b.Ld(r(tmpA), r(base0), -8)             // M[i-1]
		b.Ld(r(tmpB), r(base1), -8)             // I[i-1]
		b.Andi(r(tmpC), r(tmpA), (scWords-1)*8) // word-aligned table index
		b.Add(r(addr), r(base2), r(tmpC))
		b.Ld(r(tmpD), r(addr), 0) // emission score (gathered)
		b.Sub(r(tmpE), r(tmpA), r(tmpB))
		b.Bltz(r(tmpE), useI)
		b.Add(r(tmpF), r(tmpA), r(tmpD))
		b.Jmp(b.NamedLabel("store"))
		b.Bind(useI)
		b.Add(r(tmpF), r(tmpB), r(tmpD))
		b.Bind(b.NamedLabel("store"))
		b.St(r(tmpF), r(base0), 0) // M[i]
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildSjeng() (*isa.Program, *mem.Memory) {
	const (
		board = 0x1000_0000
		words = 4 * 1024 // 32 KB: cache resident
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(79))
	fillRand(m, board, words*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(base0), board)
	b.Movi(r(tmpG), 88172645463325252) // xorshift state
	b.Movi(r(acc), 0)
	outerLoop(b, 10_000_000, func() {
		// One "evaluation": xorshift the state, probe the board table at
		// the resulting square, branch three ways on what it holds. The
		// branches carry real entropy, so lookahead confidence stays low —
		// exactly the control behaviour that throttles B-Fetch.
		capture := b.NewLabel()
		quiet := b.NewLabel()
		done := b.NewLabel()
		b.Slli(r(tmpA), r(tmpG), 13)
		b.Xor(r(tmpG), r(tmpG), r(tmpA))
		b.Srli(r(tmpA), r(tmpG), 7)
		b.Xor(r(tmpG), r(tmpG), r(tmpA))
		b.Slli(r(tmpA), r(tmpG), 17)
		b.Xor(r(tmpG), r(tmpG), r(tmpA))
		b.Andi(r(tmpB), r(tmpG), (words-1)*8)
		b.Add(r(addr), r(base0), r(tmpB))
		b.Ld(r(tmpC), r(addr), 0)
		b.Andi(r(tmpD), r(tmpC), 3)
		b.Beqz(r(tmpD), quiet)
		b.Cmpeqi(r(tmpE), r(tmpD), 2)
		b.Bnez(r(tmpE), capture)
		b.Addi(r(acc), r(acc), 1) // ordinary move
		b.Jmp(done)
		b.Bind(capture)
		b.Addi(r(acc), r(acc), 5)
		b.St(r(acc), r(addr), 0)
		b.Jmp(done)
		b.Bind(quiet)
		b.Addi(r(acc), r(acc), -1)
		b.Bind(done)
	})
	return b.MustProgram(), m
}
