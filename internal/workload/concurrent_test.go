package workload

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// The parallel experiment engine builds workloads concurrently from pool
// workers. That is only sound because every builder draws randomness from
// its own rand.New(rand.NewSource(seed)) — none touch the global math/rand
// state (audited; keep it that way). This test pins both halves of the
// contract: concurrent builds race-cleanly (via -race) and reproduce the
// exact program and memory image of a serial build.
func TestConcurrentBuildsAreDeterministic(t *testing.T) {
	type built struct {
		prog  *isa.Program
		image *mem.Memory
	}
	serial := map[string]built{}
	for _, w := range All() {
		prog, image := w.Build()
		serial[w.Name] = built{prog, image}
	}

	const rebuilds = 4
	var wg sync.WaitGroup
	results := make([]map[string]built, rebuilds)
	for r := 0; r < rebuilds; r++ {
		results[r] = make(map[string]built, len(serial))
		var mu sync.Mutex
		for _, w := range All() {
			wg.Add(1)
			go func(r int, w Workload) {
				defer wg.Done()
				prog, image := w.Build()
				mu.Lock()
				results[r][w.Name] = built{prog, image}
				mu.Unlock()
			}(r, w)
		}
	}
	wg.Wait()

	for r := 0; r < rebuilds; r++ {
		for name, want := range serial {
			got := results[r][name]
			if !reflect.DeepEqual(want.prog, got.prog) {
				t.Errorf("rebuild %d of %s: program differs from serial build", r, name)
			}
			if !mem.Equal(want.image, got.image) {
				t.Errorf("rebuild %d of %s: memory image differs from serial build", r, name)
			}
		}
	}
}
