// Package workload provides the 18 synthetic benchmark kernels standing in
// for the paper's SPEC CPU2006 suite, plus the FOA-based multiprogrammed mix
// selection of §V-A.
//
// Each kernel is named after the SPEC benchmark whose published memory and
// control-flow character it mimics — streaming, strided, stencil,
// pointer-chasing, indexed gather, dynamic-programming, or compute-bound /
// L1-resident — because B-Fetch's claims are about classes of access pattern
// interacting with branchy control flow, not about SPEC's exact instruction
// mixes (see DESIGN.md §1 for the substitution argument). Builds are
// deterministic: the same workload always produces the same program and
// memory image.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name        string
	Description string
	Character   string // streaming | strided | stencil | pointer | gather | dp | compute | region | mixed
	// MemoryIntensive marks kernels whose working set exceeds the LLC;
	// these are the ones the paper's "prefetch sensitive" set comes from.
	MemoryIntensive bool

	build func() (*isa.Program, *mem.Memory)

	// cache holds the one real build; Workload is copied by value through
	// the registry and All(), and the shared pointer lets every copy reuse
	// it. Initialized by register and New.
	cache *buildCache
}

type buildCache struct {
	once sync.Once
	prog *isa.Program
	img  *mem.Memory // frozen; handed out as copy-on-write forks
}

// Build materializes the program and its initial memory image. The builder
// runs once per workload: the image is frozen and each call returns a
// copy-on-write fork of it, so callers may still mutate their image freely
// (and cheaply — a fork shares the frozen pages until written). Returning
// the same *isa.Program every time also lets per-program caches downstream
// (emu.Compile's threaded code) hit across checkpoints and experiment runs.
func (w Workload) Build() (*isa.Program, *mem.Memory) {
	c := w.cache
	if c == nil { // zero-value Workload constructed without New
		return w.build()
	}
	c.once.Do(func() {
		c.prog, c.img = w.build()
		c.img.Freeze()
	})
	return c.prog, c.img.Fork()
}

// New wraps a user-supplied program builder as a Workload, so downstream
// code can simulate its own kernels alongside the built-in suite. The
// builder must be deterministic.
func New(name, description, character string, memoryIntensive bool,
	build func() (*isa.Program, *mem.Memory)) Workload {
	if build == nil {
		panic("workload: nil build")
	}
	return Workload{
		Name:            name,
		Description:     description,
		Character:       character,
		MemoryIntensive: memoryIntensive,
		build:           build,
		cache:           &buildCache{},
	}
}

var registry []Workload

func register(w Workload) {
	if w.build == nil {
		panic("workload: nil build for " + w.Name)
	}
	if w.cache == nil {
		w.cache = &buildCache{}
	}
	registry = append(registry, w)
}

// All returns the 18 kernels in the paper's (alphabetical) order.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the workload names in order.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// ByName looks a workload up.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ---------------------------------------------------------------- helpers --

// Register conventions shared by the kernel builders, so the generated code
// reads consistently:
//
//	r1–r8    data / scratch
//	r9       address temporary
//	r10–r14  loop counters
//	r16–r23  array base registers
//	r24–r27  secondary temporaries
const (
	tmpA  = 1
	tmpB  = 2
	tmpC  = 3
	tmpD  = 4
	acc   = 5
	tmpE  = 6
	tmpF  = 7
	tmpG  = 8
	addr  = 9
	cnt0  = 10
	cnt1  = 11
	cnt2  = 12
	cnt3  = 13
	base0 = 16
	base1 = 17
	base2 = 18
	base3 = 19
	base4 = 20
	ptr   = 21
	idx   = 22
	lim   = 23
)

func r(n int) isa.Reg { return isa.R(n) }

// fillRand fills [base, base+bytes) with seeded pseudo-random words.
func fillRand(m *mem.Memory, base uint64, bytes int, rng *rand.Rand) {
	for off := 0; off < bytes; off += 8 {
		m.WriteInt64(base+uint64(off), rng.Int63n(1<<40))
	}
}

// fillSeq fills with word index values (useful for index arrays).
func fillSeq(m *mem.Memory, base uint64, words int) {
	for i := 0; i < words; i++ {
		m.WriteInt64(base+8*uint64(i), int64(i))
	}
}

// permutation writes a random permutation cycle over `nodes` records of
// recordBytes each, starting at base: record i's first word holds the
// address of the next record in the cycle. The cycle visits every node, so
// a pointer chase never escapes the region.
func permutation(m *mem.Memory, base uint64, nodes, recordBytes int, rng *rand.Rand) {
	perm := rng.Perm(nodes)
	for i := 0; i < nodes; i++ {
		from := base + uint64(perm[i])*uint64(recordBytes)
		to := base + uint64(perm[(i+1)%nodes])*uint64(recordBytes)
		m.WriteInt64(from, int64(to))
	}
}

// outerLoop wraps a body in a high-trip-count loop so kernels run for any
// instruction budget the experiments choose. Counter cnt0 is reserved.
func outerLoop(b *isa.Builder, trips int64, body func()) {
	b.Movi(r(cnt0), trips)
	top := b.Here()
	body()
	b.Addi(r(cnt0), r(cnt0), -1)
	b.Bnez(r(cnt0), top)
	b.Halt()
}
