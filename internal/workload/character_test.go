package workload

import (
	"testing"

	"repro/internal/emu"
)

// Character conformance: each kernel's documented access-pattern class must
// be visible in its dynamic behaviour, otherwise the DESIGN.md substitution
// argument (classes of SPEC behaviour are preserved) would silently rot.

type dynProfile struct {
	loads        uint64
	regularLoads uint64 // loads whose per-PC stride matches the previous one
	takenRate    float64
	branchEvery  float64 // instructions per control instruction
}

func dynProfileOf(t *testing.T, w Workload, insts uint64) dynProfile {
	t.Helper()
	prog, image := w.Build()
	cpu := emu.New(prog, image)

	type last struct {
		addr   uint64
		stride int64
		valid  bool
	}
	perPC := map[int]*last{}
	var p dynProfile
	var branches, taken uint64
	cpu.OnRetire = func(r emu.Retire) {
		switch {
		case r.Inst.IsLoad():
			p.loads++
			l := perPC[r.Index]
			if l == nil {
				l = &last{}
				perPC[r.Index] = l
			}
			stride := int64(r.EA) - int64(l.addr)
			if l.valid && stride == l.stride && stride != 0 {
				p.regularLoads++
			}
			l.stride, l.addr, l.valid = stride, r.EA, true
		case r.Inst.IsControl():
			branches++
			if r.Taken {
				taken++
			}
		}
	}
	if _, err := cpu.Run(insts); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if branches > 0 {
		p.takenRate = float64(taken) / float64(branches)
		p.branchEvery = float64(insts) / float64(branches)
	}
	return p
}

func TestCharacterConformance(t *testing.T) {
	const insts = 100_000
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := dynProfileOf(t, w, insts)
			regularity := float64(p.regularLoads) / float64(p.loads)
			switch w.Character {
			case "streaming", "strided", "stencil":
				if regularity < 0.8 {
					t.Errorf("%s kernel has stride regularity %.2f, want ≥0.8",
						w.Character, regularity)
				}
			case "dp":
				// Row streams plus a gathered score table: semi-regular.
				if regularity < 0.55 || regularity > 0.9 {
					t.Errorf("dp kernel has stride regularity %.2f, want mixed band", regularity)
				}
			case "pointer", "region":
				if regularity > 0.4 {
					t.Errorf("%s kernel has stride regularity %.2f, want ≤0.4",
						w.Character, regularity)
				}
			case "gather", "mixed", "compute":
				// Mixed regular/irregular: no regularity constraint, but the
				// kernel must still branch like a program.
			default:
				t.Fatalf("undocumented character %q", w.Character)
			}
			if p.branchEvery > 40 {
				t.Errorf("only one control instruction per %.0f instructions — not representative",
					p.branchEvery)
			}
		})
	}
}

// The milc kernel's specific corner-case geometry (§V-B1): its loads within
// one site record must be spaced wider than B-Fetch's ±5-block pattern
// vectors but inside one 2 KB SMS region.
func TestMilcGeometry(t *testing.T) {
	w, err := ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	prog, image := w.Build()
	cpu := emu.New(prog, image)
	var eas []uint64
	cpu.OnRetire = func(rt emu.Retire) {
		if rt.Inst.IsLoad() && rt.Inst.BaseReg() == r(ptr) {
			// Payload loads only (the pointer load reloads the base).
			if rt.Inst.Imm != 0 {
				eas = append(eas, rt.EA)
			}
		}
	}
	if _, err := cpu.Run(2_000); err != nil {
		t.Fatal(err)
	}
	if len(eas) < 10 {
		t.Fatalf("too few payload loads: %d", len(eas))
	}
	for i := 1; i < len(eas); i++ {
		d := int64(eas[i]) - int64(eas[i-1])
		if d < 0 {
			continue // next site
		}
		blocks := d / 64
		if blocks > 0 && blocks <= 5 {
			t.Fatalf("intra-site spacing %d blocks is within B-Fetch's pattern reach", blocks)
		}
		if d >= 2048 {
			continue
		}
	}
}
