package workload

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/emu"
)

// Multiprogrammed mix selection (§V-A): the paper uses the frequency-of-
// access (FOA) inter-thread contention model of Chandra et al. (HPCA 2005)
// to pick the 29 two-application and 29 four-application mixes with the
// highest shared-cache contention. FOA ranks an application by how often it
// reaches the shared cache; a mix's contention estimate is the combined
// reach-rate of its members.

// Mix is one multiprogrammed workload.
type Mix struct {
	Name  string
	Apps  []string
	Score float64 // combined FOA contention estimate
}

// FOAProfile measures a workload's LLC reach rate: accesses that miss a
// private L1+L2 model per kilo-instruction, measured functionally over
// profileInsts instructions.
func FOAProfile(w Workload, profileInsts uint64) (float64, error) {
	prog, image := w.Build()
	cpu := emu.New(prog, image)

	sink := sinkLevel{}
	l2 := cache.New(cache.Config{Name: "foaL2", Bytes: 256 << 10, Ways: 8, Latency: 1}, sink)
	l1 := cache.New(cache.Config{Name: "foaL1", Bytes: 64 << 10, Ways: 8, Latency: 1}, l2)

	var clock uint64
	cpu.OnRetire = func(rt emu.Retire) {
		if !rt.Inst.IsMem() {
			return
		}
		clock++
		kind := cache.Read
		if rt.Inst.IsStore() {
			kind = cache.Write
		}
		l1.Access(cache.Request{BlockAddr: rt.EA >> 6, Kind: kind}, clock)
	}
	if _, err := cpu.Run(profileInsts); err != nil {
		return 0, fmt.Errorf("workload: FOA profile of %s: %w", w.Name, err)
	}
	if cpu.Retired == 0 {
		return 0, fmt.Errorf("workload: FOA profile of %s retired nothing", w.Name)
	}
	return float64(l2.Stats.Misses) / float64(cpu.Retired) * 1000, nil
}

type sinkLevel struct{}

func (sinkLevel) Access(cache.Request, uint64) uint64 { return 0 }

// FOAProfiles computes the reach rate of every workload.
func FOAProfiles(profileInsts uint64) (map[string]float64, error) {
	out := make(map[string]float64, len(registry))
	for _, w := range All() {
		foa, err := FOAProfile(w, profileInsts)
		if err != nil {
			return nil, err
		}
		out[w.Name] = foa
	}
	return out, nil
}

// SelectMixes returns the `count` n-application mixes with the highest
// combined FOA, enumerated deterministically. Following the paper, 29 mixes
// each of 2 and 4 applications. For n beyond the workload suite size
// (scale-out 64-core mixes), applications repeat: see wideMixes.
func SelectMixes(n, count int, foa map[string]float64) []Mix {
	names := make([]string, 0, len(foa))
	for name := range foa {
		names = append(names, name)
	}
	sort.Strings(names)
	if n > len(names) {
		return wideMixes(n, count, names, foa)
	}

	var mixes []Mix
	var combo func(start int, cur []string, score float64)
	combo = func(start int, cur []string, score float64) {
		if len(cur) == n {
			mixes = append(mixes, Mix{
				Apps:  append([]string(nil), cur...),
				Score: score,
			})
			return
		}
		for i := start; i < len(names); i++ {
			combo(i+1, append(cur, names[i]), score+foa[names[i]])
		}
	}
	combo(0, nil, 0)

	sort.Slice(mixes, func(i, j int) bool {
		if mixes[i].Score != mixes[j].Score {
			return mixes[i].Score > mixes[j].Score
		}
		return fmt.Sprint(mixes[i].Apps) < fmt.Sprint(mixes[j].Apps)
	})
	if count > len(mixes) {
		count = len(mixes)
	}
	mixes = mixes[:count]
	for i := range mixes {
		mixes[i].Name = fmt.Sprintf("mix%d", i+1)
	}
	return mixes
}

// wideMixes builds n-application mixes when n exceeds the workload suite:
// applications are ranked by FOA (descending, names ascending on ties) and
// tiled round-robin, with mix k starting the tiling k positions into the
// ranking. Every application therefore appears ~n/len(names) times per mix,
// mixes differ in their per-core placement, and the highest-contention
// (lowest-k) mixes lead — a deterministic scale-out analogue of the paper's
// pick-the-most-contended-combinations rule.
func wideMixes(n, count int, names []string, foa map[string]float64) []Mix {
	ranked := append([]string(nil), names...)
	sort.Slice(ranked, func(i, j int) bool {
		if foa[ranked[i]] != foa[ranked[j]] {
			return foa[ranked[i]] > foa[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	if count > len(ranked) {
		count = len(ranked)
	}
	mixes := make([]Mix, 0, count)
	for k := 0; k < count; k++ {
		apps := make([]string, n)
		score := 0.0
		for c := 0; c < n; c++ {
			apps[c] = ranked[(k+c)%len(ranked)]
			score += foa[apps[c]]
		}
		mixes = append(mixes, Mix{Name: fmt.Sprintf("mix%d", k+1), Apps: apps, Score: score})
	}
	return mixes
}
