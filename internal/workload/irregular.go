package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Irregular kernels: pointer chasing, indexed gathers, and the spatially
// clustered milc pattern — the workloads miss-driven prefetchers struggle
// with and the motivation for B-Fetch's register-plus-offset speculation.

func init() {
	register(Workload{
		Name:            "mcf",
		Description:     "network-simplex stand-in: sequential arc-record scan with per-arc gathers into shuffled node records",
		Character:       "mixed",
		MemoryIntensive: true,
		build:           buildMCF,
	})
	register(Workload{
		Name:            "astar",
		Description:     "pathfinding stand-in: data-dependent walk over a grid of 64-byte cells with branchy neighbour choice",
		Character:       "pointer",
		MemoryIntensive: true,
		build:           buildAstar,
	})
	register(Workload{
		Name:            "gromacs",
		Description:     "molecular-dynamics stand-in: streaming neighbour list driving gathers of 3-word particle records",
		Character:       "gather",
		MemoryIntensive: true,
		build:           buildGromacs,
	})
	register(Workload{
		Name:            "soplex",
		Description:     "LP solver stand-in: sparse column walk with streamed indices and scattered vector gathers",
		Character:       "gather",
		MemoryIntensive: true,
		build:           buildSoplex,
	})
	register(Workload{
		Name:            "sphinx",
		Description:     "speech scoring stand-in: large-strided mixture-table walk with running-max branches",
		Character:       "strided",
		MemoryIntensive: true,
		build:           buildSphinx,
	})
	register(Workload{
		Name:            "milc",
		Description:     "lattice QCD stand-in: shuffled site visits, each touching widely spaced blocks of a 2 KB site record",
		Character:       "region",
		MemoryIntensive: true,
		build:           buildMILC,
	})
}

func buildMCF() (*isa.Program, *mem.Memory) {
	const (
		arcs     = 0x1000_0000
		nodeSize = 64
		nodes    = 64 * 1024 // 4 MB
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < nodes; i++ {
		base := uint64(arcs + i*nodeSize)
		m.WriteInt64(base+8, rng.Int63n(1000))  // cost
		m.WriteInt64(base+16, rng.Int63n(1000)) // flow
		// Potentials sit well above flows, so the update branch is biased
		// ≈90% not-taken like mcf's real pricing test, keeping it
		// predictable while still data-dependent.
		m.WriteInt64(base+32, 900+rng.Int63n(1000))
	}
	permutation(m, arcs, nodes, nodeSize, rng)

	b := isa.NewBuilder()
	b.Movi(r(acc), 0)
	outerLoop(b, 1_000_000, func() {
		// One pricing sweep, modelled on mcf's primal_bea_mpp: arcs are
		// scanned sequentially (256-byte records), but each arc's head-node
		// potential is reached through a stored pointer — a per-arc gather
		// into the shuffled node space — and a data-dependent branch
		// decides whether the arc's flow is updated.
		b.Movi(r(ptr), arcs)
		b.Movi(r(cnt1), nodes-1)
		top := b.Here()
		noUpdate := b.NewLabel()
		b.Ld(r(tmpA), r(ptr), 8)   // cost
		b.Ld(r(tmpB), r(ptr), 16)  // flow
		b.Ld(r(tmpE), r(ptr), 0)   // head-node pointer (shuffled)
		b.Ld(r(tmpC), r(tmpE), 32) // head node potential (gather)
		b.Add(r(acc), r(acc), r(tmpA))
		b.Sub(r(tmpD), r(tmpB), r(tmpC))
		b.Bltz(r(tmpD), noUpdate)
		b.Add(r(tmpB), r(tmpB), r(tmpA))
		b.St(r(tmpB), r(ptr), 16)
		b.Bind(noUpdate)
		b.Addi(r(ptr), r(ptr), nodeSize) // next arc, in order
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildAstar() (*isa.Program, *mem.Memory) {
	const (
		grid     = 0x1000_0000
		cellSize = 64
		cells    = 32 * 1024 // 2 MB
		idxMask  = cells - 1
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < cells; i++ {
		base := uint64(grid + i*cellSize)
		m.WriteInt64(base, int64(rng.Intn(cells)))   // neighbour A
		m.WriteInt64(base+8, int64(rng.Intn(cells))) // neighbour B
		m.WriteInt64(base+16, rng.Int63n(100))       // cost A
		m.WriteInt64(base+24, rng.Int63n(100))       // cost B
	}

	b := isa.NewBuilder()
	b.Movi(r(base0), grid)
	b.Movi(r(idx), 0)
	b.Movi(r(acc), 0)
	outerLoop(b, 50_000_000, func() {
		// One expansion: load the cell, compare neighbour costs (hard
		// branch), step to the cheaper neighbour.
		pickB := b.NewLabel()
		join := b.NewLabel()
		b.Andi(r(tmpG), r(idx), idxMask)
		b.Slli(r(tmpG), r(tmpG), 6) // ×64
		b.Add(r(addr), r(base0), r(tmpG))
		b.Ld(r(tmpA), r(addr), 0)  // neighbour A index
		b.Ld(r(tmpB), r(addr), 8)  // neighbour B index
		b.Ld(r(tmpC), r(addr), 16) // cost A
		b.Ld(r(tmpD), r(addr), 24) // cost B
		b.Sub(r(tmpE), r(tmpC), r(tmpD))
		b.Bgez(r(tmpE), pickB)
		b.Mov(r(idx), r(tmpA))
		b.Add(r(acc), r(acc), r(tmpC))
		b.Jmp(join)
		b.Bind(pickB)
		b.Mov(r(idx), r(tmpB))
		b.Add(r(acc), r(acc), r(tmpD))
		b.Bind(join)
		// Perturb the walk with the expansion counter so it explores the
		// whole grid instead of settling into a fixed cycle (open-list
		// behaviour), keeping the next-cell address data-dependent.
		b.Xor(r(idx), r(idx), r(cnt0))
	})
	return b.MustProgram(), m
}

func buildGromacs() (*isa.Program, *mem.Memory) {
	const (
		nbrList   = 0x1000_0000
		particles = 0x2000_0000
		listWords = 128 * 1024 // 1 MB neighbour list
		partCount = 128 * 1024 // 4 MB of 32-byte particle records
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < listWords; i++ {
		m.WriteInt64(nbrList+8*uint64(i), int64(rng.Intn(partCount)))
	}
	fillRand(m, particles, partCount*32, rng)

	b := isa.NewBuilder()
	b.Movi(r(base1), particles)
	b.Movi(r(acc), 0)
	outerLoop(b, 1_000_000, func() {
		// Sweep the neighbour list (streaming pointer) and gather each
		// neighbour's position record (irregular, via the address temp),
		// accumulating a force-like quantity.
		b.Movi(r(base0), nbrList)
		b.Movi(r(cnt1), listWords)
		top := b.Here()
		b.Ld(r(tmpA), r(base0), 0) // neighbour index
		b.Slli(r(tmpA), r(tmpA), 5)
		b.Add(r(addr), r(base1), r(tmpA))
		b.Ld(r(tmpB), r(addr), 0)
		b.Ld(r(tmpC), r(addr), 8)
		b.Ld(r(tmpD), r(addr), 16)
		b.Add(r(tmpB), r(tmpB), r(tmpC))
		b.Sub(r(tmpB), r(tmpB), r(tmpD))
		b.Add(r(acc), r(acc), r(tmpB))
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
	})
	return b.MustProgram(), m
}

func buildSoplex() (*isa.Program, *mem.Memory) {
	const (
		colIdx  = 0x1000_0000 // row indices, streamed
		colVal  = 0x2000_0000 // matrix values, streamed
		vecX    = 0x3000_0000 // gathered vector
		vecY    = 0x4000_0000 // accumulated result
		entries = 256 * 1024  // 2 MB indices + 2 MB values
		xWords  = 128 * 1024  // 1 MB
		perCol  = 64
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < entries; i++ {
		m.WriteInt64(colIdx+8*uint64(i), int64(rng.Intn(xWords)))
	}
	fillRand(m, colVal, entries*8, rng)
	fillRand(m, vecX, xWords*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(base2), vecX)
	outerLoop(b, 1_000_000, func() {
		// For each column: 64 entries of (stream idx, stream val, gather x).
		b.Movi(r(base0), colIdx)
		b.Movi(r(base1), colVal)
		b.Movi(r(base3), vecY)
		b.Movi(r(cnt1), entries/perCol)
		col := b.Here()
		b.Movi(r(cnt2), perCol)
		b.Movi(r(acc), 0)
		inner := b.Here()
		b.Ld(r(tmpA), r(base0), 0) // row index (streamed)
		b.Ld(r(tmpB), r(base1), 0) // value (streamed)
		b.Slli(r(tmpA), r(tmpA), 3)
		b.Add(r(addr), r(base2), r(tmpA))
		b.Ld(r(tmpC), r(addr), 0) // x[row] (gathered)
		b.Mul(r(tmpB), r(tmpB), r(tmpC))
		b.Add(r(acc), r(acc), r(tmpB))
		b.Addi(r(base0), r(base0), 8)
		b.Addi(r(base1), r(base1), 8)
		b.Addi(r(cnt2), r(cnt2), -1)
		b.Bnez(r(cnt2), inner)
		b.St(r(acc), r(base3), 0) // y[col]
		b.Addi(r(base3), r(base3), 8)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), col)
	})
	return b.MustProgram(), m
}

func buildSphinx() (*isa.Program, *mem.Memory) {
	const (
		table    = 0x1000_0000
		tblWords = 512 * 1024 // 4 MB senone table
		mixtures = 64
		mixStep  = 8 * 1024 // bytes between mixture rows (large stride)
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(47))
	fillRand(m, table, tblWords*8, rng)

	b := isa.NewBuilder()
	b.Movi(r(base0), table)
	b.Movi(r(acc), 0)
	b.Movi(r(tmpG), 0) // frame offset
	outerLoop(b, 10_000_000, func() {
		// Score one frame: walk 64 mixtures at a large fixed stride from a
		// per-frame starting offset, tracking a running max (data branch).
		noMax := b.NewLabel()
		b.Movi(r(cnt1), mixtures)
		b.Add(r(addr), r(base0), r(tmpG))
		b.Movi(r(tmpE), -(1 << 60)) // running max
		top := b.Here()
		b.Ld(r(tmpA), r(addr), 0)
		b.Ld(r(tmpB), r(addr), 8)
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Sub(r(tmpC), r(tmpA), r(tmpE))
		b.Bltz(r(tmpC), noMax)
		b.Mov(r(tmpE), r(tmpA))
		b.Bind(noMax)
		b.Addi(r(addr), r(addr), mixStep)
		b.Addi(r(cnt1), r(cnt1), -1)
		b.Bnez(r(cnt1), top)
		b.Add(r(acc), r(acc), r(tmpE))
		// Advance the frame window, wrapping within the table.
		b.Addi(r(tmpG), r(tmpG), 128)
		b.Andi(r(tmpG), r(tmpG), 2*megabyte-1) // wrap so walks stay in-table
	})
	return b.MustProgram(), m
}

func buildMILC() (*isa.Program, *mem.Memory) {
	const (
		sites    = 0x1000_0000
		siteSize = 2048
		nSites   = 4 * 1024 // 8 MB
	)
	m := mem.New()
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < nSites; i++ {
		base := uint64(sites + i*siteSize)
		for f := 1; f < siteSize/8; f++ {
			m.WriteInt64(base+uint64(8*f), rng.Int63n(1<<30))
		}
	}
	permutation(m, sites, nSites, siteSize, rng)

	b := isa.NewBuilder()
	b.Movi(r(ptr), sites)
	b.Movi(r(acc), 0)
	outerLoop(b, 50_000_000, func() {
		// One site update: touch su3-matrix blocks spread across the 2 KB
		// site record at 6-block spacing — wider than B-Fetch's ±5-block
		// pattern vectors but within one SMS spatial region (the paper's
		// milc discussion, §V-B1).
		b.Ld(r(tmpA), r(ptr), 384)
		b.Ld(r(tmpB), r(ptr), 768)
		b.Ld(r(tmpC), r(ptr), 1152)
		b.Ld(r(tmpD), r(ptr), 1536)
		b.Ld(r(tmpE), r(ptr), 1920)
		b.Add(r(tmpA), r(tmpA), r(tmpB))
		b.Add(r(tmpC), r(tmpC), r(tmpD))
		b.Add(r(tmpA), r(tmpA), r(tmpC))
		b.Add(r(acc), r(acc), r(tmpE))
		b.Add(r(acc), r(acc), r(tmpA))
		b.Ld(r(ptr), r(ptr), 0) // next site (shuffled)
	})
	return b.MustProgram(), m
}
