package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/prefetch"
)

// Additional component-level tests: hashing, DBR policy, chained lookahead,
// and queue saturation.

func TestPathKeyHashDistinguishes(t *testing.T) {
	base := pathKey{branchPC: 0x1000, taken: true, targetPC: 0x2000}
	variants := []pathKey{
		{branchPC: 0x1004, taken: true, targetPC: 0x2000},
		{branchPC: 0x1000, taken: false, targetPC: 0x2000},
		{branchPC: 0x1000, taken: true, targetPC: 0x2004},
	}
	for _, v := range variants {
		if v.hash() == base.hash() {
			t.Errorf("hash collision between %+v and %+v", base, v)
		}
	}
	if base.hash() != base.hash() {
		t.Error("hash not deterministic")
	}
}

// Property: the pathKey hash spreads well enough that 256 sequential
// branches do not collide catastrophically in a 256-entry table.
func TestQuickHashSpread(t *testing.T) {
	f := func(seed uint32) bool {
		seen := map[uint64]int{}
		for i := 0; i < 256; i++ {
			k := pathKey{
				branchPC: uint64(seed) + uint64(i)*4,
				taken:    i%2 == 0,
				targetPC: uint64(seed) + uint64(i)*16,
			}
			seen[k.hash()&255]++
		}
		// Perfectly uniform would be 1 per bucket; demand no bucket holds
		// more than 8 of the 256 keys.
		for _, n := range seen {
			if n > 8 {
				return false
			}
		}
		return true
	}
	// Pin the generator: quick's default time seed makes the bucket bound
	// flake roughly once per ~30 runs on unlucky seeds.
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBrTCTagRejectsAliases(t *testing.T) {
	b := newBrTC(16) // small table to force index collisions
	k1 := pathKey{branchPC: 0x1000, taken: true, targetPC: 0x2000}
	b.update(k1, brtcEntry{nextBranchPC: 0xAAAA})
	// Find another key that lands in the same slot but has a different PC.
	var k2 pathKey
	found := false
	for pc := uint64(0x3000); pc < 0x9000; pc += 4 {
		k2 = pathKey{branchPC: pc, taken: true, targetPC: 0x2000}
		if k2.hash()&15 == k1.hash()&15 {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no colliding key found in range")
	}
	if _, ok := b.lookup(k2); ok {
		t.Error("aliased key hit despite tag mismatch")
	}
	// Replacing with k2 evicts k1.
	b.update(k2, brtcEntry{nextBranchPC: 0xBBBB})
	if e, ok := b.lookup(k2); !ok || e.nextBranchPC != 0xBBBB {
		t.Error("replacement failed")
	}
	if _, ok := b.lookup(k1); ok {
		t.Error("evicted key still hits")
	}
}

func TestDBRKeepsNewestDecode(t *testing.T) {
	b := newTestBFetch(DefaultConfig())
	// Two decodes before any tick: the engine must start from the newest.
	b.OnDecode(prefetch.DecodeInfo{PC: 0x1000, Op: isa.BNEZ, PredTaken: true, PredNext: 0x2000})
	b.OnDecode(prefetch.DecodeInfo{PC: 0x5000, Op: isa.BNEZ, PredTaken: true, PredNext: 0x6000})
	b.AppendTick(nil, 0)
	if b.la.key.branchPC != 0x5000 {
		t.Errorf("lookahead started from %#x, want the newest decode", b.la.key.branchPC)
	}
}

func TestLookaheadWalksChain(t *testing.T) {
	// Build a three-block chain A→B→C in the BrTC via commits, train the
	// predictor, and verify the walk generates each block's prefetch.
	b := newTestBFetch(DefaultConfig())
	var regs [isa.NumRegs]int64
	regs[5] = 0x100000
	regs[6] = 0x200000
	regs[7] = 0x300000

	type hop struct {
		br, blk uint64
		reg     isa.Reg
	}
	chain := []hop{
		{0x1000, 0x1100, isa.R(5)},
		{0x1180, 0x1200, isa.R(6)},
		{0x1280, 0x1300, isa.R(7)},
	}
	for pass := 0; pass < 8; pass++ {
		for _, h := range chain {
			commitBranch(b, h.br, true, h.blk, h.blk, &regs)
			commitLoad(b, h.blk+8, h.reg, uint64(regs[h.reg]+0x20), &regs)
		}
	}
	// Train high confidence for all three branches.
	var ghr branch.GHR
	for i := 0; i < 64; i++ {
		for _, h := range chain {
			p := b.bp.Lookup(h.br, ghr)
			b.bp.Update(h.br, ghr, true, p)
			b.conf.Update(h.br, ghr, p.Taken)
			ghr = ghr.Shift(true)
		}
	}
	for _, r := range []isa.Reg{5, 6, 7} {
		b.OnExec(r, regs[r], 1000+uint64(r), 0)
	}
	b.OnDecode(prefetch.DecodeInfo{
		PC: chain[0].br, Op: isa.BNEZ, PredTaken: true, PredNext: chain[0].blk,
		GHR: uint64(ghr),
	})
	got := map[uint64]bool{}
	for cyc := uint64(3); cyc < 30; cyc++ {
		for _, r := range b.AppendTick(nil, cyc) {
			got[r.Addr] = true
		}
	}
	for _, r := range []isa.Reg{5, 6, 7} {
		want := uint64(regs[r] + 0x20)
		if !got[want] {
			t.Errorf("chain walk missed block for r%d (%#x); got %v", r, want, got)
		}
	}
	if b.Stats.LookaheadSteps < 3 {
		t.Errorf("walk covered %d steps, want ≥3", b.Stats.LookaheadSteps)
	}
}

func TestQueueSaturationDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueEntries = 4
	cfg.QueuePerCycle = 1
	b := newTestBFetch(cfg)
	var regs [isa.NumRegs]int64
	// One block with three subentries, each with wide patterns, generates
	// more candidates per step than a 4-entry queue at 1/cycle can drain.
	const brA, blkA = 0x1000, 0x1040
	for i := 0; i < 6; i++ {
		for r := 5; r <= 7; r++ {
			regs[r] = int64(0x10000 * r)
			commitBranch(b, brA, true, blkA, blkA, &regs)
			commitLoad(b, uint64(blkA+8*r), isa.R(r), uint64(regs[r]), &regs)
			commitLoad(b, uint64(blkA+8*r+4), isa.R(r), uint64(regs[r]+128), &regs)
		}
	}
	b.OnDecode(prefetch.DecodeInfo{PC: brA, Op: isa.BNEZ, PredTaken: true, PredNext: blkA})
	for cyc := uint64(0); cyc < 50; cyc++ {
		if n := len(b.AppendTick(nil, cyc)); n > 1 {
			t.Fatalf("queue issued %d > per-cycle limit", n)
		}
	}
}

func TestMHTMissStatCounts(t *testing.T) {
	b := newTestBFetch(DefaultConfig())
	var regs [isa.NumRegs]int64
	// A committed branch chain with NO loads: BrTC learns, MHT stays empty.
	commitBranch(b, 0x1000, true, 0x1100, 0x1100, &regs)
	commitBranch(b, 0x1180, true, 0x1200, 0x1200, &regs)
	commitBranch(b, 0x1000, true, 0x1100, 0x1100, &regs)
	b.OnDecode(prefetch.DecodeInfo{PC: 0x1000, Op: isa.BNEZ, PredTaken: true, PredNext: 0x1100})
	for cyc := uint64(0); cyc < 10; cyc++ {
		b.AppendTick(nil, cyc)
	}
	if b.Stats.MHTMisses == 0 {
		t.Error("load-free blocks should count MHT misses")
	}
	if b.Stats.Candidates != 0 {
		t.Error("no candidates expected without loads")
	}
}
