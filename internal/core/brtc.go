package core

// The Branch Trace Cache (BrTC, §IV-B1) captures the dynamic control-flow
// sequence of the program: given a branch, a direction, and the target it
// leads to, the BrTC names the branch that ends the basic block being
// entered. This lets the lookahead engine hop from basic block to basic
// block, skipping every non-control instruction in between.
//
// Entries are direct-mapped and indexed by a hash of ⟨branch PC, predicted
// direction, target address⟩ (the target's inclusion gives indirect branches
// per-target entries, §IV-B1). Only commit-time updates are allowed, so the
// table never learns wrong-path control flow.

// pathKey identifies a basic block by how it is entered: the branch that
// precedes it, the direction that branch took, and the entry address.
type pathKey struct {
	branchPC uint64
	taken    bool
	targetPC uint64
}

// hash mixes the key into a table index (splitmix-style finalizer).
func (k pathKey) hash() uint64 {
	h := k.branchPC>>2 ^ (k.targetPC>>2)*0x9E3779B97F4A7C15
	if k.taken {
		h ^= 0xD1B54A32D192ED03
	}
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h
}

type brtcEntry struct {
	valid bool
	tag   uint32 // low 32 bits of the preceding branch PC (§IV-B1)

	nextBranchPC uint64 // the branch ending the entered basic block
	nextTaken    uint64 // that branch's taken-target (static for direct,
	// last observed for indirect)
	nextIsCond bool
	nextIsJR   bool
}

// brtc is the Branch Trace Cache.
type brtc struct {
	entries []brtcEntry
	mask    uint64
}

func newBrTC(n int) *brtc {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: BrTC entries must be a power of two")
	}
	return &brtc{entries: make([]brtcEntry, n), mask: uint64(n - 1)}
}

func (b *brtc) lookup(k pathKey) (brtcEntry, bool) {
	e := b.entries[k.hash()&b.mask]
	if e.valid && e.tag == uint32(k.branchPC) {
		return e, true
	}
	return brtcEntry{}, false
}

func (b *brtc) update(k pathKey, next brtcEntry) {
	next.valid = true
	next.tag = uint32(k.branchPC)
	b.entries[k.hash()&b.mask] = next
}

// storageBits: tag (32) + next branch PC (32, low bits as in the paper's
// space optimization) + valid + 2 type bits per entry ≈ 66 bits, yielding
// Table I's 2.06 KB at 256 entries. The stored taken-target is recoverable
// from the next branch's static encoding for direct branches; indirect
// targets ride in the BTB-like portion counted here.
func (b *brtc) storageBits() int { return len(b.entries) * 66 }
