package core

// The Memory History Table (MHT, §IV-B2) is B-Fetch's largest structure. One
// entry corresponds to a basic block (indexed by the same ⟨branch,
// direction, target⟩ hash as the BrTC) and holds up to three Register
// History subentries — one per unique source register used by the block's
// loads. Each subentry records (Figure 6):
//
//	RegIdx    the source register
//	RegVal    the register's value when the preceding branch committed
//	Offset    EA − RegVal: the learned displacement, folding together the
//	          static load offset and the register's in-block variation
//	          (Equation 1)
//	neg/posPatt  bit vectors for additional same-base loads in the block,
//	          at cache-block granularity (Listing 2)
//	LoopCnt/LoopDelta  per-iteration EA stride for loop prefetching
//	          (Equation 3)
//
// The prefetch address is RegVal_now + Offset + LoopCnt×LoopDelta, where
// RegVal_now is read from the ARF at lookahead time (Equation 2/3).

const (
	regHistPerEntry = 3
	pattBits        = 5 // ±5 cache blocks, 256 B each way (§V-B1's milc note)
	offsetBits      = 16
	loopDeltaBits   = 16
)

const (
	offsetMax    = 1<<(offsetBits-1) - 1
	offsetMin    = -(1 << (offsetBits - 1))
	loopDeltaMax = 1<<(loopDeltaBits-1) - 1
	loopDeltaMin = -(1 << (loopDeltaBits - 1))
)

type regHist struct {
	valid          bool
	regIdx         uint8
	regVal         int64 // simulator keeps full width; hardware stores 32 bits
	offset         int64
	negPatt        uint8
	posPatt        uint8
	loopDelta      int64
	loopDeltaValid bool

	// loadPC attributes prefetches to the load this subentry learned from,
	// for the per-load filter (hardware stores a 10-bit hash).
	loadPC uint64
	// lastEA supports LoopDelta learning (EA difference across consecutive
	// executions); transient learning state, counted inside the entry
	// budget like the paper's LoopDelta field.
	lastEA   uint64
	firstEA  uint64 // first EA seen this block visit, for patt learning
	visitSeq uint64 // which block visit firstEA belongs to
}

type mhtEntry struct {
	valid bool
	tag   uint32 // low 32 bits of the preceding branch PC
	regs  [regHistPerEntry]regHist
}

type mht struct {
	entries []mhtEntry
	mask    uint64
}

func newMHT(n int) *mht {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: MHT entries must be a power of two")
	}
	return &mht{entries: make([]mhtEntry, n), mask: uint64(n - 1)}
}

func (m *mht) lookup(k pathKey) *mhtEntry {
	e := &m.entries[k.hash()&m.mask]
	if e.valid && e.tag == uint32(k.branchPC) {
		return e
	}
	return nil
}

// lookupAlloc returns the entry for k, recycling the slot if another block
// owns it.
func (m *mht) lookupAlloc(k pathKey) *mhtEntry {
	e := &m.entries[k.hash()&m.mask]
	if !e.valid || e.tag != uint32(k.branchPC) {
		*e = mhtEntry{valid: true, tag: uint32(k.branchPC)}
	}
	return e
}

// regsFor returns the subentry for register r, allocating one of the three
// slots if needed; nil when the entry is saturated with other registers
// (the paper found three sufficient, §IV-B2).
func (e *mhtEntry) regsFor(r uint8, alloc bool) *regHist {
	for i := range e.regs {
		if e.regs[i].valid && e.regs[i].regIdx == r {
			return &e.regs[i]
		}
	}
	if !alloc {
		return nil
	}
	for i := range e.regs {
		if !e.regs[i].valid {
			e.regs[i] = regHist{valid: true, regIdx: r}
			return &e.regs[i]
		}
	}
	return nil
}

// learn records one committed load in the block entered via k: base register
// r held snapVal when the preceding branch committed and the load accessed
// ea. visitSeq distinguishes block visits for the same-base pattern fields.
//
//bfetch:hotpath
func (m *mht) learn(k pathKey, r uint8, snapVal int64, ea uint64, loadPC uint64, visitSeq uint64) {
	e := m.lookupAlloc(k)
	h := e.regsFor(r, true)
	if h == nil {
		return
	}
	offset := int64(ea) - snapVal
	if offset < offsetMin || offset > offsetMax {
		// Hardware's 16-bit offset cannot represent this relationship;
		// invalidate so no bogus prefetches are generated from it.
		h.valid = false
		return
	}

	if h.visitSeq == visitSeq && h.firstEA != 0 {
		// A second load off the same base within one block visit: record
		// the block-granular delta in the pos/neg pattern vectors instead
		// of burning another subentry (Listing 2). The Offset field is
		// still updated — the paper updates it on every memory-instruction
		// execution (§IV-B2), so the block's last load wins, which makes
		// the stored displacement track the block's leading reference in
		// stencil-style code.
		delta := (int64(ea) >> 6) - (int64(h.firstEA) >> 6)
		switch {
		case delta > 0 && delta <= pattBits:
			h.posPatt |= 1 << (delta - 1)
		case delta < 0 && -delta <= pattBits:
			h.negPatt |= 1 << (-delta - 1)
		}
		h.offset = offset
		h.loadPC = loadPC
		return
	}

	// First load off this base in this block visit.
	if h.lastEA != 0 {
		ld := int64(ea) - int64(h.lastEA)
		if ld >= loopDeltaMin && ld <= loopDeltaMax && ld != 0 {
			h.loopDelta = ld
			h.loopDeltaValid = true
		} else {
			h.loopDeltaValid = false
		}
	}
	h.lastEA = ea
	h.firstEA = ea
	h.visitSeq = visitSeq
	h.offset = offset
	h.regVal = snapVal
	h.loadPC = loadPC
}

// storageBits: Figure 6's entry layout — 32-bit branch tag plus three
// 85-bit register-history subentries (5+32+16+5+5+1+5+16) = 287 bits,
// giving Table I's 4.5 KB at 128 entries.
func (m *mht) storageBits() int { return len(m.entries) * (32 + regHistPerEntry*85) }
