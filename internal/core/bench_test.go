package core

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/prefetch"
)

// BenchmarkBFetchTick measures one prefetcher tick under a steady decode
// stream: DBR pickup, a lookahead step, ARF latch drain, and queue pop —
// the per-cycle cost B-Fetch adds to a core.
func BenchmarkBFetchTick(b *testing.B) {
	bp := branch.New(branch.DefaultConfig())
	conf := branch.NewConfidence(branch.DefaultConfidenceConfig())
	pf := New(DefaultConfig(), bp, conf)

	d := prefetch.DecodeInfo{
		PC: 0x1000, Op: isa.BNEZ, Target: 0x1400,
		PredTaken: true, PredNext: 0x1400, GHR: 0x55,
	}
	var reqs []prefetch.Request
	var now uint64
	for ; now < 10_000; now++ { // steady state for latches and queue
		pf.OnDecode(d)
		pf.OnExec(isa.Reg(3), int64(now), now, now)
		reqs = pf.AppendTick(reqs[:0], now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.OnDecode(d)
		pf.OnExec(isa.Reg(3), int64(now), now, now)
		reqs = pf.AppendTick(reqs[:0], now)
		now++
	}
}
