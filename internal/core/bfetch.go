// Package core implements B-Fetch, the paper's contribution: a data
// prefetcher directed by branch prediction and effective-address value
// speculation (Kadjo et al., MICRO 2014, §IV).
//
// B-Fetch runs as a small three-stage pipeline beside the main core:
//
//	Branch Lookahead  — starting from the branch most recently decoded by
//	                    the main pipeline (delivered through the Decoded
//	                    Branch Register), walk the predicted future control
//	                    path one basic block per cycle using the Branch
//	                    Trace Cache and the main pipeline's branch
//	                    predictor, until cumulative path confidence falls
//	                    below threshold.
//	Register Lookup   — for each basic block on the path, fetch its Memory
//	                    History Table entry: which registers its loads use,
//	                    and the learned displacement between those
//	                    registers' values at the preceding branch and the
//	                    loads' effective addresses.
//	Prefetch Calculate— form prefetch addresses from the current Alternate
//	                    Register File contents plus learned offsets (plus a
//	                    loop term when the lookahead revisits the same
//	                    branch), screen them through the per-load filter,
//	                    and issue them to the L1D through the prefetch
//	                    queue.
//
// All learning happens at commit, in program order, so the tables never
// absorb wrong-path history. The ARF alone is speculatively updated from the
// execute stage (§IV-B2).
package core

import (
	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/prefetch"
)

// Config sizes B-Fetch. Defaults reproduce Table I / Table II.
type Config struct {
	BrTCEntries   int
	MHTEntries    int
	FilterEntries int // per table (×3 tables)
	QueueEntries  int
	QueuePerCycle int

	PathThreshold   float64 // lookahead stops below this (Table II: 0.75)
	FilterThreshold int     // per-load confidence floor (Table II: 3)
	ARFDelay        uint64  // sampling-latch delay, cycles
	MaxDepth        int     // lookahead safety bound (paper observes ≈8 avg)

	// L1DBlocks sizes the "additional cache bits" of Table I (one 10-bit
	// PC hash + 1 useful bit per L1D block).
	L1DBlocks int

	// Ablation switches (all true in the paper's design).
	EnableLoopPrefetch bool // LoopCnt×LoopDelta term (Equation 3)
	EnablePatterns     bool // neg/posPatt same-base extra blocks
	EnableFilter       bool // per-load filter

	// ARFFromCommit switches the ARF to a retire-stage, purely
	// architectural register copy — the alternative §IV-B2 evaluated and
	// rejected in favour of the execute-stage sampled copy.
	ARFFromCommit bool

	// PrivatePredictor gives the engine its own copy of the branch
	// prediction hardware, trained at commit, instead of borrowing the
	// main predictor's port — the fallback §IV-C sketches for designs
	// where sharing the port is deemed prohibitive. Costs the predictor's
	// storage again (reported by StorageBits).
	PrivatePredictor bool
}

// DefaultConfig is the paper's 12.94 KB configuration.
func DefaultConfig() Config {
	return Config{
		BrTCEntries:        256,
		MHTEntries:         128,
		FilterEntries:      2048,
		QueueEntries:       100,
		QueuePerCycle:      2,
		PathThreshold:      0.75,
		FilterThreshold:    3,
		ARFDelay:           2,
		MaxDepth:           64,
		L1DBlocks:          1024, // 64 KB / 64 B
		EnableLoopPrefetch: true,
		EnablePatterns:     true,
		EnableFilter:       true,
	}
}

// WithTableScale returns the configuration with BrTC and MHT entry counts
// scaled as in the Figure 15 storage study: scale 1 is the default
// (256/128); 0.25, 0.5 and 2 give the paper's 8.01, 9.65 and 19.46 KB
// points.
func (c Config) WithTableScale(scale float64) Config {
	c.BrTCEntries = int(float64(c.BrTCEntries) * scale)
	c.MHTEntries = int(float64(c.MHTEntries) * scale)
	return c
}

// Stats counts B-Fetch engine activity.
type Stats struct {
	LookaheadStarts uint64
	LookaheadSteps  uint64 // basic blocks walked
	LookaheadStops  uint64 // terminations below path-confidence threshold
	BrTCMisses      uint64 // terminations on a cold BrTC
	LoopsDetected   uint64

	Candidates     uint64 // addresses generated before filtering
	MHTMisses      uint64 // lookahead blocks with no Memory History entry
	Filtered       uint64 // suppressed by the per-load filter
	PatternExtra   uint64 // extra blocks from neg/posPatt
	LoopPrefetches uint64 // candidates using the loop term
}

// lookahead is the Branch Lookahead stage's architectural state.
type lookahead struct {
	active bool
	key    pathKey // the branch/direction/target naming the current BB
	ghr    branch.GHR
	path   *branch.PathConfidence
	depth  int
	// visits tracks how often each block was seen during this lookahead
	// (the loop-detection state); a small linear structure because a walk
	// is at most MaxDepth long and loops revisit few distinct blocks.
	visitHash  []uint64
	visitCount []int
}

// visit bumps and returns the previous visit count for hash h.
func (la *lookahead) visit(h uint64) int {
	for i, vh := range la.visitHash {
		if vh == h {
			la.visitCount[i]++
			return la.visitCount[i] - 1
		}
	}
	la.visitHash = append(la.visitHash, h)
	la.visitCount = append(la.visitCount, 1)
	return 0
}

// BFetch is the prefetch engine. It implements prefetch.Prefetcher and
// cpu.ExecObserver.
type BFetch struct {
	cfg  Config             //bfetch:noreset configuration
	bp   *branch.Predictor  //bfetch:noreset shared predictor, owned by the core
	conf *branch.Confidence //bfetch:noreset shared estimator, owned by the core

	brtc   *brtc       //bfetch:noreset learned branch-trace state
	mht    *mht        //bfetch:noreset learned memory-history state
	arf    *arf        //bfetch:noreset speculative register samples in flight
	filter *loadFilter //bfetch:noreset learned per-load confidence
	queue  *prefetch.Queue

	la       lookahead           //bfetch:noreset lookahead pipeline state in flight
	dbr      prefetch.DecodeInfo //bfetch:noreset Decoded Branch Register: newest decoded branch
	dbrValid bool                //bfetch:noreset pipeline latch, not a counter

	// Commit-side learning state: the key of the basic block being
	// committed, and the register values when its leading branch committed.
	curKey   pathKey            //bfetch:noreset commit-side learning state
	haveKey  bool               //bfetch:noreset commit-side learning state
	snapshot [isa.NumRegs]int64 //bfetch:noreset commit-side learning state
	visitSeq uint64             //bfetch:noreset monotonic learning sequence, never rewinds

	// commitGHR trains the private predictor copy, when configured.
	commitGHR branch.GHR //bfetch:noreset learned history

	Stats Stats
}

// New builds a B-Fetch engine sharing the main pipeline's branch predictor
// and confidence estimator (the paper's borrowed-port design, §IV-C), or —
// with Config.PrivatePredictor — its own commit-trained copies.
func New(cfg Config, bp *branch.Predictor, conf *branch.Confidence) *BFetch {
	if cfg.PrivatePredictor {
		bp = branch.New(bp.Config())
		conf = branch.NewConfidence(branch.DefaultConfidenceConfig())
	}
	b := &BFetch{
		cfg:    cfg,
		bp:     bp,
		conf:   conf,
		brtc:   newBrTC(cfg.BrTCEntries),
		mht:    newMHT(cfg.MHTEntries),
		arf:    newARF(cfg.ARFDelay),
		filter: newLoadFilter(cfg.FilterEntries, cfg.FilterThreshold),
		queue:  prefetch.NewQueue(cfg.QueueEntries, cfg.QueuePerCycle),
	}
	b.la.path = branch.NewPathConfidence(cfg.PathThreshold)
	return b
}

func (b *BFetch) Name() string { return "bfetch" }

// Config returns the engine's configuration.
func (b *BFetch) Config() Config { return b.cfg }

// ----------------------------------------------------------- front feeds --

// OnDecode places the newest decoded control instruction in the DBR. The
// lookahead engine picks it up when it finishes (or abandons) its current
// walk.
//
//bfetch:hotpath
func (b *BFetch) OnDecode(d prefetch.DecodeInfo) {
	if d.PredNext == 0 {
		return // stalled fetch (unresolved indirect); nothing to walk from
	}
	b.dbr = d
	b.dbrValid = true
}

// OnExec implements cpu.ExecObserver: execute-stage register samples feed
// the ARF through its sampling latches.
func (b *BFetch) OnExec(reg isa.Reg, val int64, seq uint64, now uint64) {
	if b.cfg.ARFFromCommit {
		return
	}
	b.arf.sample(reg, val, seq, now)
}

// ------------------------------------------------------- commit learning --

// OnCommit trains the BrTC and MHT from the in-order retirement stream.
//
//bfetch:hotpath
func (b *BFetch) OnCommit(ci prefetch.CommitInfo) {
	in := ci.Inst
	if b.cfg.ARFFromCommit && in.HasDest() {
		d := in.DestReg()
		b.arf.val[d] = ci.Regs[d]
	}
	switch {
	case in.IsControl():
		if b.cfg.PrivatePredictor && in.IsCondBranch() {
			pred := b.bp.Lookup(ci.PC, b.commitGHR)
			b.bp.Update(ci.PC, b.commitGHR, ci.Taken, pred)
			b.conf.Update(ci.PC, b.commitGHR, pred.Taken == ci.Taken)
			b.commitGHR = b.commitGHR.Shift(ci.Taken)
		}
		key := pathKey{branchPC: ci.PC, taken: ci.Taken, targetPC: ci.Next}
		if b.haveKey {
			// The previous block (entered via curKey) ends at this control
			// instruction: remember that hop in the BrTC.
			takenTarget := ci.TargetPC // static, for direct control
			if in.Op == isa.JR {
				takenTarget = ci.Next // indirect: last observed target
			}
			b.brtc.update(b.curKey, brtcEntry{
				nextBranchPC: ci.PC,
				nextTaken:    takenTarget,
				nextIsCond:   in.IsCondBranch(),
				nextIsJR:     in.Op == isa.JR,
			})
		}
		b.curKey = key
		b.haveKey = true
		b.visitSeq++
		b.snapshot = *ci.Regs
	case in.IsLoad() && b.haveKey:
		base := in.BaseReg()
		b.mht.learn(b.curKey, uint8(base), b.snapshot[base], ci.EA, ci.PC, b.visitSeq)
	}
}

// OnAccess is unused: B-Fetch is not miss-driven.
//
//bfetch:hotpath
func (b *BFetch) OnAccess(prefetch.AccessInfo) {}

// PrefetchUseful and PrefetchUseless route L1D feedback into the per-load
// filter.
func (b *BFetch) PrefetchUseful(loadPC uint64, _ uint64)  { b.filter.useful(loadPC) }
func (b *BFetch) PrefetchUseless(loadPC uint64, _ uint64) { b.filter.useless(loadPC) }

// ------------------------------------------------------------- the walk --

// AppendTick advances the prefetch pipeline one cycle: apply ARF samples,
// walk one basic block of lookahead (generating that block's prefetches),
// and drain the queue into dst.
//
//bfetch:hotpath
func (b *BFetch) AppendTick(dst []prefetch.Request, now uint64) []prefetch.Request {
	b.arf.tick(now)

	// Pick up a new lookahead when idle.
	if !b.la.active && b.dbrValid {
		d := b.dbr
		b.dbrValid = false
		b.la.active = true
		b.la.key = pathKey{branchPC: d.PC, taken: d.PredTaken, targetPC: d.PredNext}
		b.la.ghr = branch.GHR(d.GHR)
		if d.Op != isa.JMP && d.Op != isa.JR {
			b.la.ghr = b.la.ghr.Shift(d.PredTaken)
		}
		b.la.path.Reset()
		b.la.depth = 0
		b.la.visitHash = b.la.visitHash[:0]
		b.la.visitCount = b.la.visitCount[:0]
		b.Stats.LookaheadStarts++
	}

	if b.la.active {
		b.step()
	}
	return b.queue.AppendPop(dst)
}

// Idle reports whether the whole engine is quiescent: no lookahead in
// flight, no decoded branch waiting in the DBR, no ARF samples draining
// through the sampling latches, and an empty prefetch queue. Only then can
// the core skip the engine's cycles without changing its behaviour.
//
//bfetch:hotpath
func (b *BFetch) Idle() bool {
	return !b.la.active && !b.dbrValid && b.arf.idle() && b.queue.Len() == 0
}

// ResetStats zeroes the measurement counters without touching learned state.
func (b *BFetch) ResetStats() {
	b.Stats = Stats{}
	b.queue.ResetStats()
}

// RegisterObs exports the engine's internal counters into the metrics
// registry — the same fields harness tables print, under canonical names.
func (b *BFetch) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"lookahead_starts", func() uint64 { return b.Stats.LookaheadStarts })
	reg.Func(prefix+"lookahead_steps", func() uint64 { return b.Stats.LookaheadSteps })
	reg.Func(prefix+"lookahead_stops", func() uint64 { return b.Stats.LookaheadStops })
	reg.Func(prefix+"brtc_misses", func() uint64 { return b.Stats.BrTCMisses })
	reg.Func(prefix+"loops_detected", func() uint64 { return b.Stats.LoopsDetected })
	reg.Func(prefix+"candidates", func() uint64 { return b.Stats.Candidates })
	reg.Func(prefix+"mht_misses", func() uint64 { return b.Stats.MHTMisses })
	reg.Func(prefix+"filtered", func() uint64 { return b.Stats.Filtered })
	reg.Func(prefix+"pattern_extra", func() uint64 { return b.Stats.PatternExtra })
	reg.Func(prefix+"loop_prefetches", func() uint64 { return b.Stats.LoopPrefetches })
	b.queue.RegisterObs(reg, prefix)
}

// step processes one basic block: generate its prefetches, then advance to
// the next predicted branch.
//
//bfetch:hotpath
func (b *BFetch) step() {
	b.Stats.LookaheadSteps++
	loopCnt := b.la.visit(b.la.key.hash())
	if loopCnt == 1 {
		b.Stats.LoopsDetected++
	}

	b.generate(b.la.key, loopCnt)

	// Advance along the predicted path.
	b.la.depth++
	if b.la.depth >= b.cfg.MaxDepth {
		b.la.active = false
		return
	}
	e, ok := b.brtc.lookup(b.la.key)
	if !ok {
		b.Stats.BrTCMisses++
		b.la.active = false
		return
	}
	var (
		taken bool
		next  uint64
		prob  float64
	)
	switch {
	case e.nextIsCond:
		pred := b.bp.Lookup(e.nextBranchPC, b.la.ghr)
		taken = pred.Taken
		prob = b.conf.Estimate(e.nextBranchPC, b.la.ghr, pred)
		b.la.ghr = b.la.ghr.Shift(taken)
		if taken {
			next = e.nextTaken
		} else {
			next = e.nextBranchPC + isa.InstBytes
		}
	default:
		// Unconditional: direction certain; indirect targets carry the
		// last observed target, trusted at slightly less than unity.
		taken = true
		next = e.nextTaken
		prob = 1.0
		if e.nextIsJR {
			prob = 0.9
		}
		if next == 0 {
			b.la.active = false
			return
		}
	}
	if !b.la.path.Extend(prob) {
		b.Stats.LookaheadStops++
		b.la.active = false
		return
	}
	b.la.key = pathKey{branchPC: e.nextBranchPC, taken: taken, targetPC: next}
}

// generate emits prefetch candidates for the basic block entered via k,
// using current ARF values plus learned offsets (Equations 2 and 3).
//
//bfetch:hotpath
func (b *BFetch) generate(k pathKey, loopCnt int) {
	e := b.mht.lookup(k)
	if e == nil {
		b.Stats.MHTMisses++
		return
	}
	for i := range e.regs {
		h := &e.regs[i]
		if !h.valid {
			continue
		}
		addr := uint64(b.arf.read(h.regIdx) + h.offset)
		usedLoop := false
		if b.cfg.EnableLoopPrefetch && loopCnt > 0 && h.loopDeltaValid {
			addr = uint64(int64(addr) + int64(loopCnt)*h.loopDelta)
			usedLoop = true
		}
		b.Stats.Candidates++
		if b.cfg.EnableFilter && !b.filter.allow(h.loadPC) {
			b.Stats.Filtered++
			continue
		}
		if usedLoop {
			b.Stats.LoopPrefetches++
		}
		b.queue.Push(prefetch.Request{Addr: addr, LoadPC: h.loadPC})

		if !b.cfg.EnablePatterns {
			continue
		}
		for d := 1; d <= pattBits; d++ {
			if h.posPatt&(1<<(d-1)) != 0 {
				b.queue.Push(prefetch.Request{Addr: addr + uint64(d*64), LoadPC: h.loadPC})
				b.Stats.PatternExtra++
			}
			if h.negPatt&(1<<(d-1)) != 0 {
				b.queue.Push(prefetch.Request{Addr: addr - uint64(d*64), LoadPC: h.loadPC})
				b.Stats.PatternExtra++
			}
		}
	}
}

// ----------------------------------------------------------- accounting --

// StorageBits reproduces Table I: BrTC + MHT + ARF + per-load filter +
// additional L1D bits (10-bit PC hash + useful bit per block) + prefetch
// queue + path-confidence estimator.
func (b *BFetch) StorageBits() int {
	private := 0
	if b.cfg.PrivatePredictor {
		private = b.bp.StorageBits()
	}
	return private +
		b.brtc.storageBits() +
		b.mht.storageBits() +
		b.arf.storageBits() +
		b.filter.storageBits() +
		b.cfg.L1DBlocks*11 +
		b.queue.StorageBits() +
		b.conf.StorageBits()
}

// FilterConfidence exposes the per-load filter confidence for a load PC
// (tests and diagnostics).
func (b *BFetch) FilterConfidence(loadPC uint64) int { return b.filter.confidence(loadPC) }
