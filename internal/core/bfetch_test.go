package core

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/prefetch"
)

func newTestBFetch(cfg Config) *BFetch {
	bp := branch.New(branch.DefaultConfig())
	conf := branch.NewConfidence(branch.DefaultConfidenceConfig())
	return New(cfg, bp, conf)
}

func TestStorageReproducesTableI(t *testing.T) {
	b := newTestBFetch(DefaultConfig())
	kb := float64(b.StorageBits()) / 8 / 1024
	// Table I: 12.84 KB total (§V: the 12.94 KB figure in the storage study
	// includes rounding); accept the band around it.
	if kb < 12.5 || kb > 13.3 {
		t.Errorf("B-Fetch storage = %.2f KB, want ≈12.84 (Table I)", kb)
	}

	// Component-level checks against Table I.
	checks := []struct {
		name string
		bits int
		kb   float64
	}{
		{"BrTC", b.brtc.storageBits(), 2.06},
		{"MHT", b.mht.storageBits(), 4.5},
		{"ARF", b.arf.storageBits(), 0.156},
		{"Filter", b.filter.storageBits(), 2.25},
		{"Queue", b.queue.StorageBits(), 0.51},
		{"PathConf", b.conf.StorageBits(), 2.0},
	}
	for _, c := range checks {
		got := float64(c.bits) / 8 / 1024
		if got < c.kb*0.9 || got > c.kb*1.1 {
			t.Errorf("%s storage = %.3f KB, want ≈%.3f", c.name, got, c.kb)
		}
	}
}

func TestStorageScalePoints(t *testing.T) {
	// Figure 15's four points: ~8.01, 9.65, 12.94, 19.46 KB.
	wants := []struct {
		scale float64
		kb    float64
	}{{0.25, 8.01}, {0.5, 9.65}, {1, 12.94}, {2, 19.46}}
	for _, w := range wants {
		b := newTestBFetch(DefaultConfig().WithTableScale(w.scale))
		got := float64(b.StorageBits()) / 8 / 1024
		if got < w.kb-0.7 || got > w.kb+0.7 {
			t.Errorf("scale %.2f: %.2f KB, want ≈%.2f", w.scale, got, w.kb)
		}
	}
}

func TestBrTCLearnAndLookup(t *testing.T) {
	b := newBrTC(256)
	k := pathKey{branchPC: 0x1000, taken: true, targetPC: 0x1100}
	if _, ok := b.lookup(k); ok {
		t.Error("cold BrTC hit")
	}
	b.update(k, brtcEntry{nextBranchPC: 0x1140, nextTaken: 0x1100, nextIsCond: true})
	e, ok := b.lookup(k)
	if !ok || e.nextBranchPC != 0x1140 || !e.nextIsCond {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	// Different direction is a different path: must miss.
	if _, ok := b.lookup(pathKey{branchPC: 0x1000, taken: false, targetPC: 0x1100}); ok {
		t.Error("direction not part of the index")
	}
}

func TestMHTLearnsOffsets(t *testing.T) {
	m := newMHT(128)
	k := pathKey{branchPC: 0x2000, taken: true, targetPC: 0x2040}
	// Branch committed with r5 = 0x8000; a load at 0x8018 off r5 follows.
	m.learn(k, 5, 0x8000, 0x8018, 0x2048, 1)
	e := m.lookup(k)
	if e == nil {
		t.Fatal("entry not allocated")
	}
	h := e.regsFor(5, false)
	if h == nil || h.offset != 0x18 || h.loadPC != 0x2048 {
		t.Fatalf("subentry = %+v", h)
	}
	// Next visit: register advanced by 0x40, load follows it.
	m.learn(k, 5, 0x8040, 0x8058, 0x2048, 2)
	h = e.regsFor(5, false)
	if h.offset != 0x18 {
		t.Errorf("offset drifted to %#x", h.offset)
	}
	if !h.loopDeltaValid || h.loopDelta != 0x40 {
		t.Errorf("loop delta = %v %#x, want 0x40", h.loopDeltaValid, h.loopDelta)
	}
}

func TestMHTPatternsSameBase(t *testing.T) {
	m := newMHT(128)
	k := pathKey{branchPC: 0x3000, taken: false, targetPC: 0x3004}
	// Two loads off r2 in the same block visit: 0x8000 then 0x8080 (+2 blk).
	m.learn(k, 2, 0x8000, 0x8000, 0x3008, 7)
	m.learn(k, 2, 0x8000, 0x8080, 0x300C, 7)
	// And one the next visit at -1 block.
	m.learn(k, 2, 0x8000, 0x8000, 0x3008, 8)
	m.learn(k, 2, 0x8000, 0x7FC0, 0x3010, 8)
	h := m.lookup(k).regsFor(2, false)
	if h.posPatt != 0b10 {
		t.Errorf("posPatt = %b, want 10", h.posPatt)
	}
	if h.negPatt != 0b1 {
		t.Errorf("negPatt = %b, want 1", h.negPatt)
	}
}

func TestMHTOffsetOverflowInvalidates(t *testing.T) {
	m := newMHT(128)
	k := pathKey{branchPC: 0x4000, taken: true, targetPC: 0x4010}
	m.learn(k, 3, 0, 1<<40, 0x4014, 1) // offset far beyond 16 bits
	if h := m.lookup(k).regsFor(3, false); h != nil && h.valid {
		t.Error("unrepresentable offset left a valid subentry")
	}
}

func TestMHTThreeRegisterLimit(t *testing.T) {
	m := newMHT(128)
	k := pathKey{branchPC: 0x5000, taken: true, targetPC: 0x5010}
	for r := uint8(1); r <= 4; r++ {
		m.learn(k, r, 0x1000, 0x1008, uint64(0x5014+4*int(r)), 1)
	}
	e := m.lookup(k)
	n := 0
	for i := range e.regs {
		if e.regs[i].valid {
			n++
		}
	}
	if n != regHistPerEntry {
		t.Errorf("valid subentries = %d, want %d", n, regHistPerEntry)
	}
	if e.regsFor(4, false) != nil {
		t.Error("fourth register should not have been allocated")
	}
}

func TestARFDelayAndGuard(t *testing.T) {
	a := newARF(2)
	a.sample(isa.R(1), 100, 10, 0) // applies at 2
	a.tick(0)
	if a.read(1) != 0 {
		t.Error("sample applied before latch delay")
	}
	a.tick(2)
	if a.read(1) != 100 {
		t.Error("sample not applied after delay")
	}
	// Older instruction (seq 5) completes late: must be rejected.
	a.sample(isa.R(1), 55, 5, 3)
	a.tick(10)
	if a.read(1) != 100 {
		t.Errorf("older write clobbered newer value: %d", a.read(1))
	}
	// Newer instruction wins.
	a.sample(isa.R(1), 200, 11, 10)
	a.tick(12)
	if a.read(1) != 200 {
		t.Errorf("newer write rejected: %d", a.read(1))
	}
	// r31 stays zero.
	a.sample(isa.RZero, 9, 99, 12)
	a.tick(20)
	if a.read(uint8(isa.RZero)) != 0 {
		t.Error("zero register updated")
	}
}

func TestFilterLifecycle(t *testing.T) {
	f := newLoadFilter(2048, 3)
	pc := uint64(0x6000)
	if !f.allow(pc) {
		t.Fatal("fresh load blocked (initial confidence should equal threshold)")
	}
	// Useless feedback drives it below threshold.
	f.useless(pc)
	if f.allow(pc) {
		t.Error("load with useless history still allowed")
	}
	if f.Blocked == 0 {
		t.Error("block not counted")
	}
	// Useful feedback rehabilitates it.
	f.useful(pc)
	f.useful(pc)
	if !f.allow(pc) {
		t.Error("rehabilitated load still blocked")
	}
	// Saturation.
	for i := 0; i < 100; i++ {
		f.useful(pc)
	}
	if c := f.confidence(pc); c != 3*filterCounterMax {
		t.Errorf("saturated confidence = %d", c)
	}
	for i := 0; i < 100; i++ {
		f.useless(pc)
	}
	if c := f.confidence(pc); c != 0 {
		t.Errorf("floored confidence = %d", c)
	}
}

// commitBranch and commitLoad drive the learning path the way the core does.
func commitBranch(b *BFetch, pc uint64, taken bool, next, target uint64, regs *[isa.NumRegs]int64) {
	op := isa.BNEZ
	b.OnCommit(prefetch.CommitInfo{
		PC: pc, Inst: isa.Inst{Op: op, Rs: 1}, Taken: taken, Next: next,
		TargetPC: target, Regs: regs,
	})
}

func commitLoad(b *BFetch, pc uint64, base isa.Reg, ea uint64, regs *[isa.NumRegs]int64) {
	b.OnCommit(prefetch.CommitInfo{
		PC: pc, Inst: isa.Inst{Op: isa.LD, Rd: 9, Rs: base}, EA: ea, Regs: regs,
	})
}

// TestEndToEndLookahead builds a two-block loop by feeding commits, then
// checks that a decode event triggers lookahead prefetches computed from
// ARF values.
func TestEndToEndLookahead(t *testing.T) {
	b := newTestBFetch(DefaultConfig())
	var regs [isa.NumRegs]int64

	// Loop: branch A (pc 0x1000, taken→0x1040) enters a block whose load
	// uses r5+0x18; block ends at branch A again (self-loop).
	const brA, blkA = 0x1000, 0x1040
	regs[5] = 0x20000
	for i := 0; i < 12; i++ {
		commitBranch(b, brA, true, blkA, blkA, &regs)
		commitLoad(b, blkA+8, isa.R(5), uint64(regs[5]+0x18), &regs)
		regs[5] += 0x40
	}

	// Train the branch predictor so lookahead predicts "taken" confidently.
	bp := b.bp
	var ghr branch.GHR
	for i := 0; i < 64; i++ {
		p := bp.Lookup(brA, ghr)
		bp.Update(brA, ghr, true, p)
		b.conf.Update(brA, ghr, p.Taken)
		ghr = ghr.Shift(true)
	}

	// Feed the ARF the current r5 value.
	b.OnExec(isa.R(5), regs[5], 1000, 0)

	// Decode the loop branch: lookahead should walk the self-loop and
	// generate loop-strided prefetches for r5+0x18 (+ k*0x40).
	b.OnDecode(prefetch.DecodeInfo{
		PC: brA, Op: isa.BNEZ, Target: blkA, PredTaken: true, PredNext: blkA,
		GHR: uint64(ghr),
	})

	var reqs []prefetch.Request
	for cyc := uint64(3); cyc < 40; cyc++ {
		reqs = b.AppendTick(reqs, cyc)
	}
	if len(reqs) < 3 {
		t.Fatalf("lookahead produced %d prefetches, want several (stats %+v)", len(reqs), b.Stats)
	}
	want0 := uint64(regs[5] + 0x18)
	if reqs[0].Addr != want0 {
		t.Errorf("first prefetch %#x, want %#x (ARF value + learned offset)", reqs[0].Addr, want0)
	}
	// Loop detection must kick in and produce strided candidates.
	if b.Stats.LoopsDetected == 0 {
		t.Error("self-loop not detected")
	}
	if b.Stats.LoopPrefetches == 0 {
		t.Error("no loop-term prefetches")
	}
	seen := map[uint64]bool{}
	for _, r := range reqs {
		seen[r.Addr] = true
	}
	if !seen[want0+0x40] {
		t.Errorf("missing loop-strided prefetch %#x; got %v", want0+0x40, reqs)
	}
	if b.Stats.LookaheadStarts != 1 {
		t.Errorf("lookahead starts = %d", b.Stats.LookaheadStarts)
	}
}

func TestLookaheadStopsOnColdBrTC(t *testing.T) {
	b := newTestBFetch(DefaultConfig())
	b.OnDecode(prefetch.DecodeInfo{PC: 0x9000, Op: isa.BNEZ, PredTaken: true, PredNext: 0x9100})
	for cyc := uint64(0); cyc < 10; cyc++ {
		b.AppendTick(nil, cyc)
	}
	if b.Stats.BrTCMisses != 1 {
		t.Errorf("BrTC misses = %d, want 1", b.Stats.BrTCMisses)
	}
	if b.la.active {
		t.Error("lookahead still active after cold BrTC")
	}
}

func TestFilterSuppressesBadLoads(t *testing.T) {
	cfg := DefaultConfig()
	b := newTestBFetch(cfg)
	var regs [isa.NumRegs]int64
	const brA, blkA = 0x1000, 0x1040
	loadPC := uint64(blkA + 8)
	for i := 0; i < 4; i++ {
		commitBranch(b, brA, true, blkA, blkA, &regs)
		commitLoad(b, loadPC, isa.R(5), 0x5000, &regs)
	}
	// Hammer the filter with useless feedback for this load.
	for i := 0; i < 10; i++ {
		b.PrefetchUseless(loadPC, 0)
	}
	b.OnDecode(prefetch.DecodeInfo{PC: brA, Op: isa.BNEZ, PredTaken: true, PredNext: blkA})
	var reqs []prefetch.Request
	for cyc := uint64(0); cyc < 20; cyc++ {
		reqs = b.AppendTick(reqs, cyc)
	}
	if len(reqs) != 0 {
		t.Errorf("filtered load still prefetched: %v", reqs)
	}
	if b.Stats.Filtered == 0 {
		t.Error("no filter suppressions counted")
	}
}

func TestAblationSwitches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableFilter = false
	cfg.EnableLoopPrefetch = false
	cfg.EnablePatterns = false
	b := newTestBFetch(cfg)
	var regs [isa.NumRegs]int64
	const brA, blkA = 0x1000, 0x1040
	for i := 0; i < 4; i++ {
		commitBranch(b, brA, true, blkA, blkA, &regs)
		commitLoad(b, blkA+8, isa.R(5), 0x5018, &regs)
	}
	for i := 0; i < 10; i++ {
		b.PrefetchUseless(blkA+8, 0)
	}
	b.OnDecode(prefetch.DecodeInfo{PC: brA, Op: isa.BNEZ, PredTaken: true, PredNext: blkA})
	var reqs []prefetch.Request
	for cyc := uint64(0); cyc < 20; cyc++ {
		reqs = b.AppendTick(reqs, cyc)
	}
	if len(reqs) == 0 {
		t.Error("with the filter disabled, prefetches should flow")
	}
	if b.Stats.LoopPrefetches != 0 || b.Stats.PatternExtra != 0 {
		t.Error("disabled features still active")
	}
}
