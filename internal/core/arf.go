package core

import "repro/internal/isa"

// The Alternate Register File (ARF, §IV-B2) is B-Fetch's pseudo-architectural
// copy of the register file. It is fed by sampling latches on the execute
// stage's writeback paths — a delayed, possibly wrong-path view — rather
// than by commit, because the paper found execute-stage freshness to be
// worth the occasional speculative pollution ("significant improvement in
// performance versus a retire-stage ... register file copy").
//
// Consistency guard: since the main pipeline completes out of order, an
// update is applied only if its instruction is younger (higher sequence
// number) than the register's previous writer; each register carries an
// instruction-sequence field for this check.
type arf struct {
	val [isa.NumRegs]int64
	seq [isa.NumRegs]uint64

	delay   uint64 // sampling-latch delay in cycles
	pending []arfUpdate
}

type arfUpdate struct {
	reg     isa.Reg
	val     int64
	seq     uint64
	applyAt uint64
}

func newARF(delay uint64) *arf { return &arf{delay: delay} }

// sample enqueues one execute-stage register write.
func (a *arf) sample(reg isa.Reg, val int64, seq uint64, now uint64) {
	if reg == isa.RZero {
		return
	}
	a.pending = append(a.pending, arfUpdate{reg: reg, val: val, seq: seq, applyAt: now + a.delay})
}

// tick applies updates whose sampling latches have drained.
func (a *arf) tick(now uint64) {
	rest := a.pending[:0]
	for _, u := range a.pending {
		if u.applyAt > now {
			rest = append(rest, u)
			continue
		}
		if u.seq > a.seq[u.reg] {
			a.val[u.reg] = u.val
			a.seq[u.reg] = u.seq
		}
	}
	a.pending = rest
}

// read returns the ARF's current view of a register.
func (a *arf) read(reg uint8) int64 { return a.val[reg] }

// idle reports whether no samples are draining through the latches.
func (a *arf) idle() bool { return len(a.pending) == 0 }

// storageBits: 32 registers × (32-bit value + 8-bit sequence) = 1280 bits =
// 0.156 KB (Table I).
func (a *arf) storageBits() int { return isa.NumRegs * (32 + 8) }
