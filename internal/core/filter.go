package core

// The per-load filter (§IV-B3) guards against loads whose effective
// addresses resist prediction even when path confidence is high. It is a
// skewed sampling predictor in the style of Khan/Tian/Jiménez's dead-block
// predictor: three tables of 3-bit up-down saturating counters, each indexed
// by a different hash of the load PC. The per-load confidence is the sum of
// the three counters; prefetching for a load stops when the sum falls below
// the threshold (3, Table II). Per-load confidence takes precedence over
// branch-path confidence.
//
// Feedback comes from the L1D: each prefetched block carries a 10-bit hash
// of the prefetching load's PC and a usefulness bit (the "additional cache
// bits" of Table I). A demand touch increments the counters; an untouched
// eviction decrements them.
type loadFilter struct {
	tables    [3][]uint8
	mask      uint64
	threshold int
	probe     uint64

	Blocked uint64 // prefetch candidates suppressed by the filter
}

const filterCounterMax = 7

func newLoadFilter(entriesPerTable, threshold int) *loadFilter {
	if entriesPerTable <= 0 || entriesPerTable&(entriesPerTable-1) != 0 {
		panic("core: filter entries must be a power of two")
	}
	f := &loadFilter{mask: uint64(entriesPerTable - 1), threshold: threshold}
	for t := range f.tables {
		f.tables[t] = make([]uint8, entriesPerTable)
		for i := range f.tables[t] {
			f.tables[t][i] = 1 // sum 3 == threshold: new loads start allowed
		}
	}
	return f
}

// idx hashes the load PC differently per table (distinct odd multipliers).
var filterMixers = [3]uint64{0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9}

func (f *loadFilter) idx(table int, loadPC uint64) uint64 {
	h := (loadPC >> 2) * filterMixers[table]
	h ^= h >> 29
	return h & f.mask
}

// confidence returns the summed counter value for a load PC.
func (f *loadFilter) confidence(loadPC uint64) int {
	s := 0
	for t := range f.tables {
		s += int(f.tables[t][f.idx(t, loadPC)])
	}
	return s
}

// allow reports whether prefetches for this load may issue, counting
// suppressions. A blocked load is let through on probation once every 64
// candidates: without occasional probes a load whose behaviour changed could
// never re-earn confidence, since blocked loads generate no feedback. (In
// the paper's full-size system the three skewed tables alias across the
// thousands of static loads, which provides this drift naturally.)
func (f *loadFilter) allow(loadPC uint64) bool {
	if f.confidence(loadPC) >= f.threshold {
		return true
	}
	f.probe++
	if f.probe&63 == 0 {
		return true
	}
	f.Blocked++
	return false
}

// useful and useless apply cache feedback.
func (f *loadFilter) useful(loadPC uint64) {
	for t := range f.tables {
		i := f.idx(t, loadPC)
		if f.tables[t][i] < filterCounterMax {
			f.tables[t][i]++
		}
	}
}

func (f *loadFilter) useless(loadPC uint64) {
	for t := range f.tables {
		i := f.idx(t, loadPC)
		if f.tables[t][i] > 0 {
			f.tables[t][i]--
		}
	}
}

// storageBits: 3 × entries × 3 bits; Table I's 2.25 KB at 3×2048.
func (f *loadFilter) storageBits() int { return 3 * len(f.tables[0]) * 3 }
