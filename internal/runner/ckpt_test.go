package runner

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// ffTinyOpts is a fast-forward protocol small enough for -race runs.
func ffTinyOpts() sim.RunOpts {
	return sim.RunOpts{FastForwardInsts: 20_000, WarmupInsts: 2_000, MeasureInsts: 5_000}
}

// TestCheckpointedRunEquivalence is the checkpoint cache's contract: for
// every prefetcher kind — the paper's four, both heavy-weight extensions —
// and a 4-core CMP mix, a run booted from the engine's cached checkpoint
// must be bit-identical to sim.Run emulating the same fast-forward inline.
func TestCheckpointedRunEquivalence(t *testing.T) {
	opts := ffTinyOpts()
	cases := []struct {
		name string
		cfg  sim.Config
		apps []string
	}{
		{"none", sim.Default(sim.PFNone), []string{"libquantum"}},
		{"stride", sim.Default(sim.PFStride), []string{"libquantum"}},
		{"sms", sim.Default(sim.PFSMS), []string{"milc"}},
		{"bfetch", sim.Default(sim.PFBFetch), []string{"libquantum"}},
		{"isb", sim.Default(sim.PFISB), []string{"mcf"}},
		{"stems", sim.Default(sim.PFSTeMS), []string{"milc"}},
		{"cmp-mix", sim.Default(sim.PFBFetch), []string{"libquantum", "mcf", "milc", "gamess"}},
	}
	eng := New(4)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inline, err := sim.Run(tc.cfg, tc.apps, opts)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := eng.Run(Multi(tc.cfg, tc.apps, opts))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline, cached) {
				t.Errorf("checkpoint-cached result diverges from inline fast-forward\ninline: %+v\ncached: %+v",
					inline, cached)
			}
		})
	}
	st := eng.Stats()
	// Four distinct workloads at one FF length: exactly four prefix
	// emulations, everything else restored from cache.
	if st.CkptMisses != 4 {
		t.Errorf("checkpoint misses = %d, want 4 (one per workload)", st.CkptMisses)
	}
	if st.CkptHits == 0 {
		t.Error("no checkpoint-cache hits across a multi-kind sweep")
	}
	if st.EmuInsts < 4*opts.FastForwardInsts {
		t.Errorf("emulated insts = %d, want ≥ %d", st.EmuInsts, 4*opts.FastForwardInsts)
	}
}

// TestCheckpointCacheDisabled: with the cache off, fast-forward jobs run
// inline (no shared state) and still produce identical results.
func TestCheckpointCacheDisabled(t *testing.T) {
	opts := ffTinyOpts()
	job := Solo(sim.Default(sim.PFStride), "mcf", opts)

	cached, err := New(2).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	off := New(2)
	off.SetCache(false)
	uncached, err := off.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, uncached) {
		t.Error("cache-disabled fast-forward diverges from checkpointed run")
	}
	if st := off.Stats(); st.CkptMisses != 0 || st.CkptHits != 0 {
		t.Errorf("cache-disabled engine touched the checkpoint cache: %+v", st)
	}
}

// TestConcurrentCheckpointSharing floods a parallel engine with jobs that
// all boot from one checkpoint — the singleflight must emulate the prefix
// once, and the concurrent copy-on-write restores must not race (this test
// is part of the -race leg).
func TestConcurrentCheckpointSharing(t *testing.T) {
	opts := ffTinyOpts()
	var jobs []Job
	for _, kind := range []sim.PrefetcherKind{sim.PFNone, sim.PFStride, sim.PFSMS, sim.PFBFetch} {
		cfg := sim.Default(kind)
		jobs = append(jobs, Solo(cfg, "mcf", opts))
		wide := sim.Default(kind)
		wide.CPU = wide.CPU.WithWidth(2)
		jobs = append(jobs, Solo(wide, "mcf", opts))
	}
	eng := New(8)
	outs := eng.RunAll(jobs)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
	st := eng.Stats()
	if st.CkptMisses != 1 {
		t.Errorf("checkpoint misses = %d, want 1 (single workload, single FF)", st.CkptMisses)
	}
	if want := uint64(len(jobs) - 1); st.CkptHits != want {
		t.Errorf("checkpoint hits = %d, want %d", st.CkptHits, want)
	}
}
