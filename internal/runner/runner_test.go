package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/branch"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// tinyOpts keeps each simulation short enough that the whole file runs in
// seconds even under -race.
func tinyOpts() sim.RunOpts {
	return sim.RunOpts{WarmupInsts: 2_000, MeasureInsts: 5_000}
}

func testJobs() []Job {
	opts := tinyOpts()
	var jobs []Job
	for _, kind := range []sim.PrefetcherKind{sim.PFNone, sim.PFStride, sim.PFBFetch} {
		for _, app := range []string{"libquantum", "gamess", "mcf"} {
			jobs = append(jobs, Solo(sim.Default(kind), app, opts))
		}
	}
	jobs = append(jobs, Multi(sim.Default(sim.PFSMS), []string{"mcf", "milc"}, opts))
	return jobs
}

func TestParallelMatchesSequential(t *testing.T) {
	jobs := testJobs()
	seq := NewSequential().RunAll(jobs)
	par := New(8).RunAll(jobs)
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("outcome counts: seq %d, par %d, want %d", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d errors: seq %v, par %v", i, seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Errorf("job %d (%s on %v): parallel result diverges from sequential",
				i, jobs[i].Cfg.Prefetcher, jobs[i].Apps)
		}
	}
}

func TestEngineMatchesDirectRun(t *testing.T) {
	cfg := sim.Default(sim.PFBFetch)
	want, err := sim.RunSolo(cfg, "mcf", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(4).Run(Solo(cfg, "mcf", tinyOpts()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("engine result differs from direct sim.RunSolo")
	}
}

func TestCacheHitsOnRepeatedJobs(t *testing.T) {
	e := New(4)
	job := Solo(sim.Default(sim.PFStride), "libquantum", tinyOpts())

	// Same point four times in one batch: one simulation, three hits.
	outs := e.RunAll([]Job{job, job, job, job})
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if !reflect.DeepEqual(outs[0].Result, o.Result) {
			t.Errorf("job %d result differs from first", i)
		}
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 3 || st.Runs != 1 {
		t.Errorf("after batch: %+v, want 1 miss / 3 hits / 1 run", st)
	}

	// A later batch resubmitting the point hits again.
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Hits != 4 || st.Runs != 1 {
		t.Errorf("after resubmission: %+v, want 4 hits / 1 run", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	e := NewSequential()
	e.SetCache(false)
	job := Solo(sim.Default(sim.PFNone), "gamess", tinyOpts())
	e.RunAll([]Job{job, job})
	if st := e.Stats(); st.Runs != 2 || st.Hits != 0 {
		t.Errorf("cache-off stats = %+v, want 2 runs / 0 hits", st)
	}
}

func TestFingerprint(t *testing.T) {
	opts := tinyOpts()
	a, ok := Fingerprint(sim.Default(sim.PFBFetch), []string{"mcf"}, opts)
	if !ok {
		t.Fatal("default config not cacheable")
	}
	b, _ := Fingerprint(sim.Default(sim.PFBFetch), []string{"mcf"}, opts)
	if a != b {
		t.Error("identical points fingerprint differently")
	}

	// Cores is normalized to the app count, so a stale caller value cannot
	// split the point.
	cfg := sim.Default(sim.PFBFetch)
	cfg.Cores = 7
	if c, _ := Fingerprint(cfg, []string{"mcf"}, opts); c != a {
		t.Error("Cores not normalized in fingerprint")
	}

	// Any config, workload, or protocol change must change the key.
	diff := sim.Default(sim.PFBFetch)
	diff.BFetch.PathThreshold = 0.9
	for name, got := range map[string]string{
		"config":   fp(t, diff, []string{"mcf"}, opts),
		"workload": fp(t, sim.Default(sim.PFBFetch), []string{"milc"}, opts),
		"opts":     fp(t, sim.Default(sim.PFBFetch), []string{"mcf"}, sim.RunOpts{WarmupInsts: 1, MeasureInsts: 5_000}),
		"kind":     fp(t, sim.Default(sim.PFSMS), []string{"mcf"}, opts),
	} {
		if got == a {
			t.Errorf("%s change did not change fingerprint", name)
		}
	}

	// Custom-factory configs must not be cached: closure identity is not
	// behaviour.
	custom := sim.Default(sim.PFCustom)
	custom.Factory = func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher {
		return prefetch.None{}
	}
	if _, ok := Fingerprint(custom, []string{"mcf"}, opts); ok {
		t.Error("factory config reported cacheable")
	}
}

func fp(t *testing.T, cfg sim.Config, apps []string, opts sim.RunOpts) string {
	t.Helper()
	key, ok := Fingerprint(cfg, apps, opts)
	if !ok {
		t.Fatal("expected cacheable point")
	}
	return key
}

func TestErrorsAreMemoizedAndOrdered(t *testing.T) {
	e := New(4)
	bad := Solo(sim.Default(sim.PFNone), "nonesuch", tinyOpts())
	good := Solo(sim.Default(sim.PFNone), "gamess", tinyOpts())
	outs := e.RunAll([]Job{good, bad, bad})
	if outs[0].Err != nil {
		t.Errorf("good job failed: %v", outs[0].Err)
	}
	for i := 1; i <= 2; i++ {
		if outs[i].Err == nil || !strings.Contains(outs[i].Err.Error(), "nonesuch") {
			t.Errorf("job %d error = %v, want unknown-benchmark", i, outs[i].Err)
		}
	}
}

func TestMap(t *testing.T) {
	e := New(4)
	vals := make([]int, 100)
	if err := e.Map(len(vals), func(i int) error {
		vals[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	err := e.Map(10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom 3" {
		t.Errorf("Map error = %v, want lowest-index boom 3", err)
	}
}

func TestEngineLog(t *testing.T) {
	var buf bytes.Buffer
	e := NewSequential()
	e.SetLog(&buf)
	if _, err := e.Run(Solo(sim.Default(sim.PFNone), "gamess", tinyOpts())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gamess") {
		t.Errorf("log = %q", buf.String())
	}
}

// TestTimeSeriesWorkerInvariance pins the tentpole's batch-level determinism
// contract: an attributed, sampled 16-core job produces a bit-identical
// interval time series whether the batch runs on one worker or eight, and the
// batch-level CPI aggregate preserves the exact partition (SimCPI.Total() ==
// SimCycles when every run attributed).
func TestTimeSeriesWorkerInvariance(t *testing.T) {
	apps := []string{"mcf", "milc", "libquantum", "astar"}
	cfg := sim.DefaultScale(sim.PFBFetch, len(apps))
	cfg.CPU.CPIStack = true
	cfg.TSInterval = 256
	cfg.TSMaxRows = 16
	jobs := []Job{
		Multi(cfg, apps, tinyOpts()),
		Solo(func() sim.Config {
			c := sim.Default(sim.PFStride)
			c.CPU.CPIStack = true
			c.TSInterval = 256
			return c
		}(), "lbm", tinyOpts()),
	}

	e1 := New(1)
	one := e1.RunAll(jobs)
	eight := New(8).RunAll(jobs)
	for i := range jobs {
		if one[i].Err != nil || eight[i].Err != nil {
			t.Fatalf("job %d errors: -j1 %v, -j8 %v", i, one[i].Err, eight[i].Err)
		}
		if one[i].Result.TS == nil || len(one[i].Result.TS.Rows) == 0 {
			t.Fatalf("job %d: no time series emitted", i)
		}
		if !reflect.DeepEqual(one[i].Result.TS, eight[i].Result.TS) {
			t.Errorf("job %d: time series diverges between -j 1 and -j 8", i)
		}
	}

	st := e1.Stats()
	if st.SimCPI.Total() == 0 {
		t.Fatal("batch CPI aggregate is empty despite attributed jobs")
	}
	if st.SimCPI.Total() != st.SimCycles {
		t.Errorf("batch CPI buckets sum to %d, want exactly SimCycles = %d", st.SimCPI.Total(), st.SimCycles)
	}
}

// TestStreamPublishing subscribes a hub to an engine and checks the event
// protocol end to end: progress events count jobs up to the total, each
// executed run publishes a run summary, and a sampled job's time-series rows
// arrive with the Names header on the first row only.
func TestStreamPublishing(t *testing.T) {
	hub := obs.NewStreamHub()
	sub, cancel := hub.Subscribe()
	defer cancel()

	cfg := sim.Default(sim.PFBFetch)
	cfg.CPU.CPIStack = true
	cfg.TSInterval = 512
	cfg.TSMaxRows = 8
	e := New(2)
	e.SetStream(hub)
	outs := e.RunAll([]Job{Solo(cfg, "mcf", tinyOpts())})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}

	var progress, runs, samples, namedRows int
	for len(sub) > 0 {
		line := <-sub
		var ev struct {
			Event     string   `json:"event"`
			JobsDone  uint64   `json:"jobs_done"`
			JobsTotal uint64   `json:"jobs_total"`
			Engine    string   `json:"engine"`
			Cycle     uint64   `json:"cycle"`
			Names     []string `json:"names"`
			Row       []uint64 `json:"row"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch ev.Event {
		case "progress":
			progress++
			if ev.JobsDone != 1 || ev.JobsTotal != 1 {
				t.Errorf("progress %d/%d, want 1/1", ev.JobsDone, ev.JobsTotal)
			}
		case "run":
			runs++
			if ev.Engine != string(sim.PFBFetch) {
				t.Errorf("run event engine %q, want %q", ev.Engine, sim.PFBFetch)
			}
		case "sample":
			samples++
			if len(ev.Names) > 0 {
				namedRows++
				if len(ev.Names) != len(ev.Row) {
					t.Errorf("sample names/row width mismatch: %d vs %d", len(ev.Names), len(ev.Row))
				}
			}
			if ev.Cycle == 0 {
				t.Error("sample event with zero cycle boundary")
			}
		default:
			t.Errorf("unknown stream event %q", ev.Event)
		}
	}
	if progress != 1 || runs != 1 {
		t.Errorf("got %d progress and %d run events, want 1 and 1", progress, runs)
	}
	if samples == 0 {
		t.Error("no sample events for a sampled job")
	}
	if namedRows != 1 {
		t.Errorf("%d sample events carried the Names header, want exactly 1 (first row)", namedRows)
	}
	if hub.Dropped() != 0 {
		t.Errorf("%d events dropped with a draining subscriber", hub.Dropped())
	}
}
