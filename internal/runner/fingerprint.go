package runner

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Fingerprint derives the canonical cache key of one simulation point: a
// stable serialization of the configuration, the applications, and the
// measurement protocol. Two jobs with equal fingerprints would produce
// bit-identical Results, because every simulation is a pure function of
// these three inputs (workload builds are deterministic and systems share
// no mutable state).
//
// The second return value reports whether the job is cacheable at all:
// configurations carrying a custom prefetcher Factory are not, since a
// closure's identity says nothing about its behaviour — two distinct
// closures may differ while sharing an address, so such jobs always
// simulate.
//
// The serialization uses %#v over the Factory-stripped Config, which is
// deterministic here: Config and every nested config struct hold only
// scalars and strings (no maps, whose iteration order would wobble). Keys
// are only compared within one process, so Go-syntax stability across
// versions is not required.
func Fingerprint(cfg sim.Config, apps []string, opts sim.RunOpts) (string, bool) {
	if cfg.Factory != nil {
		return "", false
	}
	// sim.Run normalizes Cores to the application count; mirror that so a
	// caller-set Cores value cannot split otherwise-identical points.
	cfg.Cores = len(apps)
	// Parallel stepping is byte-identical at any worker count (a pure
	// wall-clock knob), so it must not split the cache either.
	opts.CoreWorkers = 0
	var sb strings.Builder
	fmt.Fprintf(&sb, "%#v|%q|%#v", cfg, apps, opts)
	return sb.String(), true
}
