// Package runner executes batches of independent simulations across a
// worker pool, with a memoizing run-cache on top.
//
// The paper's evaluation is hundreds of fully independent simulation points
// (18 kernels × several prefetcher configs × sensitivity sweeps), and many
// points repeat across figures — every speedup figure divides by the same
// no-prefetch baseline. The Engine exploits both properties: jobs fan out
// over GOMAXPROCS workers, and a fingerprint-keyed cache ensures each
// distinct (config, workload, protocol) point simulates exactly once per
// Engine lifetime, with duplicate in-flight submissions coalesced
// singleflight-style. Results are assembled in submission order, so batch
// output is byte-identical regardless of worker count or completion order.
//
// Jobs whose protocol includes a fast-forward additionally share a
// checkpoint cache: the functional prefix of each (workload, FFInsts) pair
// is emulated exactly once per Engine lifetime (singleflight, like the
// run-cache) and every simulation of that workload boots from a
// copy-on-write restore of the cached checkpoint — however many prefetcher
// kinds, depths or bandwidth points sweep over it. Restored runs are
// bit-identical to inline fast-forwarding (pinned by TestCheckpointedRunEquivalence).
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Job is one simulation point: a system configuration running the named
// applications (one per core) under the given measurement protocol.
type Job struct {
	Cfg  sim.Config
	Apps []string
	Opts sim.RunOpts
}

// Solo is a single-core job running one application alone.
func Solo(cfg sim.Config, app string, opts sim.RunOpts) Job {
	return Job{Cfg: cfg, Apps: []string{app}, Opts: opts}
}

// Multi is a CMP job running one application per core.
func Multi(cfg sim.Config, apps []string, opts sim.RunOpts) Job {
	return Job{Cfg: cfg, Apps: apps, Opts: opts}
}

// Outcome is one job's result; exactly one of Result/Err is meaningful.
type Outcome struct {
	Result sim.Result
	Err    error
}

// Stats counts the Engine's cache and execution activity.
type Stats struct {
	Hits   uint64 // jobs answered from the cache (or coalesced in flight)
	Misses uint64 // cacheable jobs that had to simulate
	Runs   uint64 // simulations actually executed (misses + uncacheable)

	// Checkpoint-cache accounting for fast-forward protocols: each
	// (workload, FFInsts) prefix is emulated once (a miss); every further
	// simulation needing it restores copy-on-write (a hit).
	CkptHits   uint64
	CkptMisses uint64

	// Durable-store accounting (zero unless a store is attached with
	// SetStore). A store hit replaces a simulation (StoreHits) or a
	// checkpoint emulation (StoreCkptHits) with a disk read; it counts
	// here and in neither the in-memory hit nor miss columns (it was not
	// in memory, and nothing was computed). Misses are disk-tier lookups
	// that fell through to compute — the computed artifact is written back.
	StoreHits       uint64
	StoreMisses     uint64
	StoreCkptHits   uint64
	StoreCkptMisses uint64

	// Simulation throughput accounting, summed over executed runs (cache
	// hits contribute nothing — no simulation happened). Cycles and
	// instructions cover the measured window of every core.
	SimCycles uint64        // core-cycles simulated
	SimInsts  uint64        // instructions committed
	SimTime   time.Duration // wall time spent inside sim.Run

	// EmuInsts counts functionally emulated instructions: fast-forward
	// prefixes executed for checkpoint-cache misses, plus any profile work
	// reported via AddEmuInsts (the emulator-driven characterization
	// experiments).
	EmuInsts uint64

	// SimCPI sums executed runs' per-core CPI stacks (zero unless jobs ran
	// with cpu.Config.CPIStack). When every run attributed, SimCPI.Total()
	// == SimCycles — the batch-level echo of the per-core exact-partition
	// invariant.
	SimCPI obs.CPIStack
}

// Engine schedules simulation jobs over a bounded worker pool and memoizes
// their results. The zero value is not usable; construct with New or
// NewSequential. An Engine is safe for concurrent use and needs no
// shutdown: workers live only for the duration of each RunAll call.
type Engine struct {
	workers int
	seq     bool
	noCache bool
	store   *store.Store // durable second tier; nil = memory-only

	// Lock discipline: the Engine's mutexes guard disjoint state and are
	// never held together in steady state; if a path ever must nest them,
	// logMu is the innermost leaf — nothing is acquired under it.
	//
	//bfetch:lockorder Engine.mu < Engine.logMu
	//bfetch:lockorder Engine.ckMu < Engine.logMu
	//bfetch:lockorder Engine.repMu < Engine.logMu

	logMu sync.Mutex
	log   io.Writer

	mu      sync.Mutex
	entries map[string]*entry

	ckMu      sync.Mutex
	ckEntries map[string]*ckptEntry

	hits, misses, runs  atomic.Uint64
	ckHits, ckMisses    atomic.Uint64
	stHits, stMisses    atomic.Uint64
	stCkHits, stCkMiss  atomic.Uint64
	simCycles, simInsts atomic.Uint64
	emuInsts            atomic.Uint64
	simNanos            atomic.Int64
	simCPI              [obs.NumCPIBuckets]atomic.Uint64

	// stream, when set, receives live NDJSON events: a progress event per
	// finished job, and a run summary plus time-series rows per executed
	// simulation. Set before submitting jobs; a nil hub publishes nothing.
	stream *obs.StreamHub

	// Batch progress, for live introspection: jobs submitted through
	// RunAll/Run and jobs finished (from cache or simulation).
	jobsTotal, jobsDone atomic.Uint64

	repMu       sync.Mutex
	keepReports bool
	reports     []obs.RunReport
}

// entry is one memoized simulation point; done closes once res/err are set,
// coalescing concurrent duplicate submissions onto a single execution.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// ckptEntry is one memoized fast-forward checkpoint, singleflight like entry.
type ckptEntry struct {
	done chan struct{}
	cp   *ckpt.Checkpoint
	err  error
}

// New returns a parallel Engine running up to workers simulations at once;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:   workers,
		entries:   make(map[string]*entry),
		ckEntries: make(map[string]*ckptEntry),
	}
}

// NewSequential returns an Engine that executes every job inline on the
// caller's goroutine — the escape hatch for debugging and for hosts where
// background goroutines are unwelcome. The cache still applies.
func NewSequential() *Engine {
	e := New(1)
	e.seq = true
	return e
}

// Workers reports the pool size (1 for sequential engines).
func (e *Engine) Workers() int { return e.workers }

// Sequential reports whether jobs execute inline on the caller's goroutine.
func (e *Engine) Sequential() bool { return e.seq }

// SetCache enables or disables result memoization (enabled by default).
// Disabling does not drop already-cached results; it only stops lookups
// and insertions.
func (e *Engine) SetCache(on bool) {
	if !on && !e.noCache {
		e.mu.Lock()
		retained := len(e.entries)
		e.mu.Unlock()
		if retained > 0 {
			e.logf("runner: run-cache disabled; %d cached results retained but bypassed", retained)
		}
	}
	e.noCache = !on
}

// SetStore attaches a durable on-disk store (internal/store) as the second
// tier of the lookup: memory singleflight → disk store → compute, with
// computed results and checkpoints written back. Attach before submitting
// jobs; a nil store detaches. Store failures (unreadable entries, write
// errors) are logged and absorbed — the disk tier can only make runs
// cheaper, never wronger, because entries are keyed by the same fingerprint
// that guarantees byte-identical results and validated end-to-end on read.
func (e *Engine) SetStore(s *store.Store) { e.store = s }

// Store returns the attached durable store, or nil.
func (e *Engine) Store() *store.Store { return e.store }

// SetRunReports enables collection of one obs.RunReport per executed
// simulation (cache hits re-simulate nothing and contribute none). Off by
// default — reports retain full metrics snapshots.
func (e *Engine) SetRunReports(on bool) {
	e.repMu.Lock()
	e.keepReports = on
	if !on {
		e.reports = nil
	}
	e.repMu.Unlock()
}

// RunReports returns the collected reports, in completion order (which
// varies with scheduling; consumers needing determinism sort or key them).
func (e *Engine) RunReports() []obs.RunReport {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	out := make([]obs.RunReport, len(e.reports))
	copy(out, e.reports)
	return out
}

// Progress reports jobs finished and jobs submitted — the run-queue gauge
// the live introspection endpoint polls.
func (e *Engine) Progress() (done, total uint64) {
	return e.jobsDone.Load(), e.jobsTotal.Load()
}

// SetStream attaches a live event hub: each finished job publishes a
// progress event, and each executed simulation publishes a run summary
// followed by its interval time-series rows. Attach before submitting jobs;
// nil detaches. Publishing is non-blocking (the hub drops events to slow
// subscribers), so streaming never back-pressures the batch.
func (e *Engine) SetStream(h *obs.StreamHub) { e.stream = h }

// SetLog directs per-job progress lines to w (nil disables). Writes are
// serialized internally, so any Writer is acceptable.
func (e *Engine) SetLog(w io.Writer) {
	e.logMu.Lock()
	e.log = w
	e.logMu.Unlock()
}

// Stats returns a snapshot of the cache and throughput counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits: e.hits.Load(), Misses: e.misses.Load(), Runs: e.runs.Load(),
		CkptHits: e.ckHits.Load(), CkptMisses: e.ckMisses.Load(),
		StoreHits: e.stHits.Load(), StoreMisses: e.stMisses.Load(),
		StoreCkptHits: e.stCkHits.Load(), StoreCkptMisses: e.stCkMiss.Load(),
		SimCycles: e.simCycles.Load(), SimInsts: e.simInsts.Load(),
		SimTime:  time.Duration(e.simNanos.Load()),
		EmuInsts: e.emuInsts.Load(),
	}
	for b := range st.SimCPI {
		st.SimCPI[b] = e.simCPI[b].Load()
	}
	return st
}

// AddEmuInsts reports functionally emulated instructions executed outside
// the engine's own fast-forward path — the characterization experiments
// (Figures 3 and 7) drive the emulator directly through Map and account for
// their work here so throughput records show no degenerate zero rows.
func (e *Engine) AddEmuInsts(n uint64) { e.emuInsts.Add(n) }

// Run executes one job (through the cache).
func (e *Engine) Run(job Job) (sim.Result, error) {
	o := e.runJob(job)
	return o.Result, o.Err
}

// RunAll executes the batch and returns one Outcome per job, in job order.
// Identical jobs — within the batch or vs. earlier batches — simulate once.
// At batch end a cache hit-rate summary is logged (when a log is attached).
func (e *Engine) RunAll(jobs []Job) []Outcome {
	before := e.Stats()
	e.jobsTotal.Add(uint64(len(jobs)))
	out := make([]Outcome, len(jobs))
	if e.seq || e.workers == 1 || len(jobs) <= 1 {
		for i, j := range jobs {
			out[i] = e.runJob(j)
		}
	} else {
		e.fanOut(len(jobs), func(i int) { out[i] = e.runJob(jobs[i]) })
	}
	e.logBatch(len(jobs), before, e.Stats())
	return out
}

// logBatch emits the batch-end cache summary: how the run- and
// checkpoint-caches performed over this batch alone.
func (e *Engine) logBatch(jobs int, before, after Stats) {
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	stHits := after.StoreHits - before.StoreHits
	stMisses := after.StoreMisses - before.StoreMisses
	bypassed := uint64(jobs) - hits - misses - stHits
	line := fmt.Sprintf("runner: batch of %d done: run-cache %d hits / %d misses (%.0f%% hit rate), %d bypassed; ckpt %d hits / %d misses",
		jobs, hits, misses, rate, bypassed,
		after.CkptHits-before.CkptHits, after.CkptMisses-before.CkptMisses)
	if e.store != nil {
		m := e.store.Metrics()
		line += fmt.Sprintf("; store %d hits / %d misses (+ckpt %d/%d; %d KB read in %s)",
			stHits, stMisses,
			after.StoreCkptHits-before.StoreCkptHits, after.StoreCkptMisses-before.StoreCkptMisses,
			m.BytesRead>>10, m.ReadTime.Round(time.Millisecond))
	}
	e.logf("%s", line)
}

// Map runs fn(0..n-1) across the pool and returns the lowest-index error.
// It is the general-purpose fan-out for experiment work that is not a plain
// sim run (functional profiles, instrumented runs); results must be written
// into index-addressed slots by fn, which keeps assembly deterministic.
func (e *Engine) Map(n int, fn func(i int) error) error {
	errs := make([]error, n)
	if e.seq || e.workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		e.fanOut(n, func(i int) { errs[i] = fn(i) })
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOut applies fn to every index using up to e.workers goroutines.
func (e *Engine) fanOut(n int, fn func(i int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// runJob executes one job through the cache. A waiter blocking on an
// in-flight entry cannot deadlock: entries never depend on one another, so
// the computing worker always makes progress.
func (e *Engine) runJob(j Job) Outcome {
	defer func() {
		done := e.jobsDone.Add(1)
		if e.stream != nil {
			e.stream.Publish(obs.StreamProgress{Event: "progress", JobsDone: done, JobsTotal: e.jobsTotal.Load()})
		}
	}()
	key, cacheable := Fingerprint(j.Cfg, j.Apps, j.Opts)
	if !cacheable || e.noCache {
		if e.noCache {
			e.logf("runner: run-cache bypass (cache disabled): %s %v", j.Cfg.Prefetcher, j.Apps)
		} else {
			e.logf("runner: run-cache bypass (unfingerprintable config): %s %v", j.Cfg.Prefetcher, j.Apps)
		}
		return e.execute(j)
	}
	e.mu.Lock()
	ent, found := e.entries[key]
	if !found {
		ent = &entry{done: make(chan struct{})}
		e.entries[key] = ent
		e.mu.Unlock()
		// Second tier: the durable store. A validated entry carries the
		// byte-identical result this job would compute (same fingerprint,
		// same schema), so it answers the job and seeds the memory tier
		// without simulating anything.
		if e.store != nil {
			if res, ok := e.store.GetResult(key); ok {
				ent.res = res
				close(ent.done)
				e.stHits.Add(1)
				e.logf("runner: %-8s %v from store", j.Cfg.Prefetcher, j.Apps)
				return Outcome{Result: res}
			}
			e.stMisses.Add(1)
		}
		o := e.execute(j)
		ent.res, ent.err = o.Result, o.Err
		close(ent.done)
		e.misses.Add(1)
		if e.store != nil && o.Err == nil {
			if err := e.store.PutResult(key, o.Result); err != nil {
				e.logf("runner: store write-back failed (continuing): %v", err)
			}
		}
		return o
	}
	e.mu.Unlock()
	<-ent.done
	e.hits.Add(1)
	return Outcome{Result: ent.res, Err: ent.err}
}

// execute performs the actual simulation. Fast-forward protocols boot from
// the engine's checkpoint cache so each workload's prefix is emulated once;
// with the cache disabled (SetCache(false)) the fast-forward runs inline
// per simulation instead — bit-identical either way.
func (e *Engine) execute(j Job) Outcome {
	start := time.Now() //bfetch:wallclock per-run elapsed time, logged only
	var res sim.Result
	var err error
	if ff := j.Opts.FastForwardInsts; ff > 0 && !e.noCache {
		var cps []*ckpt.Checkpoint
		if cps, err = e.checkpoints(j.Apps, ff); err == nil {
			res, err = sim.RunCheckpointed(j.Cfg, cps, j.Opts)
		}
	} else {
		res, err = sim.Run(j.Cfg, j.Apps, j.Opts)
	}
	elapsed := time.Since(start) //bfetch:wallclock feeds simNanos throughput stats
	e.runs.Add(1)
	e.simNanos.Add(int64(elapsed))
	if err == nil {
		var cycles, insts uint64
		var cpi obs.CPIStack
		for _, cs := range res.Core {
			cycles += cs.Cycles
			insts += cs.Committed
			cpi.AddStack(&cs.CPI)
		}
		e.simCycles.Add(cycles)
		e.simInsts.Add(insts)
		for b, v := range cpi {
			if v > 0 {
				e.simCPI[b].Add(v)
			}
		}
		e.report(j, res, insts, elapsed)
		e.publishRun(j, res, insts, elapsed)
	}
	e.logf("runner: %-8s %v done in %s", j.Cfg.Prefetcher, j.Apps,
		elapsed.Round(time.Millisecond))
	return Outcome{Result: res, Err: err}
}

// report records one executed run's observability document, if collection
// is enabled.
func (e *Engine) report(j Job, res sim.Result, insts uint64, elapsed time.Duration) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	if !e.keepReports {
		return
	}
	r := obs.RunReport{
		Engine:      string(j.Cfg.Prefetcher),
		Apps:        append([]string(nil), j.Apps...),
		Cycles:      res.Cycles,
		Insts:       insts,
		IPC:         append([]float64(nil), res.IPC...),
		PerCore:     append([]obs.LifecycleStats(nil), res.Lifecycle...),
		Metrics:     res.Metrics,
		TS:          res.TS,
		WallSeconds: elapsed.Seconds(),
	}
	r.Finalize()
	e.reports = append(e.reports, r)
}

// publishRun streams one executed run: a summary event, then the run's
// interval time-series rows (first row carries the column schema). No-op
// without an attached hub.
func (e *Engine) publishRun(j Job, res sim.Result, insts uint64, elapsed time.Duration) {
	if e.stream == nil {
		return
	}
	engine := string(j.Cfg.Prefetcher)
	apps := append([]string(nil), j.Apps...)
	run := obs.StreamRun{
		Event: "run", Engine: engine, Apps: apps,
		Cycles: res.Cycles, Insts: insts,
		WallSeconds: elapsed.Seconds(),
	}
	if res.Cycles > 0 {
		run.IPC = float64(insts) / float64(res.Cycles)
	}
	e.stream.Publish(run)
	if ts := res.TS; ts != nil {
		for k, row := range ts.Rows {
			ev := obs.StreamSample{
				Event: "sample", Engine: engine, Apps: apps,
				Cycle: ts.Base + uint64(k+1)*ts.Interval,
				Row:   row,
			}
			if k == 0 {
				ev.Names = ts.Names
			}
			e.stream.Publish(ev)
		}
	}
}

// checkpoints resolves one cached checkpoint per application.
func (e *Engine) checkpoints(apps []string, ff uint64) ([]*ckpt.Checkpoint, error) {
	cps := make([]*ckpt.Checkpoint, len(apps))
	for i, name := range apps {
		cp, err := e.checkpoint(name, ff)
		if err != nil {
			return nil, err
		}
		cps[i] = cp
	}
	return cps, nil
}

// checkpoint returns the memoized fast-forward checkpoint for one
// (workload, ffInsts) point, emulating it on first request. Concurrent
// requests for the same point coalesce onto a single emulation, exactly
// like runJob's result cache. Workload names are a sound cache key because
// workload builds are deterministic (the workload package's contract — the
// same property the run-cache fingerprint relies on).
func (e *Engine) checkpoint(name string, ff uint64) (*ckpt.Checkpoint, error) {
	key := fmt.Sprintf("%s|%d", name, ff)
	e.ckMu.Lock()
	ent, found := e.ckEntries[key]
	if !found {
		ent = &ckptEntry{done: make(chan struct{})}
		e.ckEntries[key] = ent
		e.ckMu.Unlock()
		// Second tier: a durable checkpoint replaces the whole prefix
		// emulation with one disk read. The key is content-addressed over
		// the workload's built program and initial image, so a changed
		// kernel generator can never resurrect stale state.
		var storeKey string
		if e.store != nil {
			if k, err := store.CheckpointKey(name, ff); err == nil {
				storeKey = k
				if cp, ok := e.store.GetCheckpoint(storeKey, name, ff); ok {
					ent.cp = cp
					close(ent.done)
					e.stCkHits.Add(1)
					e.logf("runner: checkpoint %-12s ff=%d from store (%d KB image)",
						name, ff, cp.FootprintBytes()>>10)
					return ent.cp, nil
				}
				e.stCkMiss.Add(1)
			}
		}
		start := time.Now() //bfetch:wallclock checkpoint-build timing, logged only
		ent.cp, ent.err = ckpt.ByName(name, ff)
		close(ent.done)
		e.ckMisses.Add(1)
		if e.store != nil && storeKey != "" && ent.err == nil {
			if err := e.store.PutCheckpoint(storeKey, ent.cp); err != nil {
				e.logf("runner: checkpoint store write-back failed (continuing): %v", err)
			}
		}
		if ent.cp != nil {
			e.emuInsts.Add(ent.cp.Arch.Retired)
			e.logf("runner: checkpoint %-12s ff=%d built in %s (%d KB image)",
				name, ff, time.Since(start).Round(time.Millisecond), //bfetch:wallclock log line only
				ent.cp.FootprintBytes()>>10)
		}
		return ent.cp, ent.err
	}
	e.ckMu.Unlock()
	<-ent.done
	e.ckHits.Add(1)
	return ent.cp, ent.err
}

func (e *Engine) logf(format string, args ...any) {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	if e.log != nil {
		fmt.Fprintf(e.log, format+"\n", args...)
	}
}
