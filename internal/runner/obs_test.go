package runner

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestObsSnapshotDeterminism is the scheduling-independence witness for the
// observability layer specifically: the metrics snapshot and lifecycle
// breakdown of every job must be bit-identical between -j 1 and -j N, for
// both clock strategies.
func TestObsSnapshotDeterminism(t *testing.T) {
	for _, loop := range []sim.LoopMode{sim.LoopEvent, sim.LoopNaive} {
		opts := tinyOpts()
		opts.Loop = loop
		var jobs []Job
		for _, kind := range []sim.PrefetcherKind{sim.PFStride, sim.PFBFetch} {
			for _, app := range []string{"mcf", "libquantum"} {
				jobs = append(jobs, Solo(sim.Default(kind), app, opts))
			}
		}
		seq := NewSequential().RunAll(jobs)
		par := New(8).RunAll(jobs)
		for i := range jobs {
			if seq[i].Err != nil || par[i].Err != nil {
				t.Fatalf("loop %v job %d: seq %v, par %v", loop, i, seq[i].Err, par[i].Err)
			}
			if !reflect.DeepEqual(seq[i].Result.Metrics, par[i].Result.Metrics) {
				t.Errorf("loop %v job %d: metrics snapshot diverges between -j 1 and -j 8", loop, i)
			}
			if !reflect.DeepEqual(seq[i].Result.Lifecycle, par[i].Result.Lifecycle) {
				t.Errorf("loop %v job %d: lifecycle diverges between -j 1 and -j 8", loop, i)
			}
			if len(seq[i].Result.Metrics.Samples) == 0 {
				t.Errorf("loop %v job %d: empty metrics snapshot", loop, i)
			}
		}
	}
}

func TestRunReportsCollection(t *testing.T) {
	e := New(4)
	if got := e.RunReports(); len(got) != 0 {
		t.Fatalf("reports before enabling: %d", len(got))
	}
	e.SetRunReports(true)
	jobs := []Job{
		Solo(sim.Default(sim.PFStride), "mcf", tinyOpts()),
		Solo(sim.Default(sim.PFBFetch), "libquantum", tinyOpts()),
		Solo(sim.Default(sim.PFStride), "mcf", tinyOpts()), // cache hit: no new execution
	}
	outs := e.RunAll(jobs)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}

	reports := e.RunReports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (cache hits execute nothing)", len(reports))
	}
	engines := []string{reports[0].Engine, reports[1].Engine}
	sort.Strings(engines)
	if !reflect.DeepEqual(engines, []string{"bfetch", "stride"}) {
		t.Errorf("report engines = %v", engines)
	}
	for _, r := range reports {
		if r.Schema != obs.SchemaRun {
			t.Errorf("report schema = %q", r.Schema)
		}
		if len(r.Metrics.Samples) == 0 {
			t.Errorf("%s report has empty metrics", r.Engine)
		}
		if r.Cycles == 0 || r.WallSeconds <= 0 {
			t.Errorf("%s report lacks throughput: cycles %d wall %v", r.Engine, r.Cycles, r.WallSeconds)
		}
	}

	done, total := e.Progress()
	if done != 3 || total != 3 {
		t.Errorf("Progress = %d/%d, want 3/3", done, total)
	}

	e.SetRunReports(false)
	if got := e.RunReports(); len(got) != 0 {
		t.Errorf("reports after disabling: %d", len(got))
	}
}

func TestBatchSummaryLogging(t *testing.T) {
	var buf bytes.Buffer
	e := New(2)
	e.SetLog(&buf)
	jobs := []Job{
		Solo(sim.Default(sim.PFStride), "gamess", tinyOpts()),
		Solo(sim.Default(sim.PFStride), "gamess", tinyOpts()),
	}
	e.RunAll(jobs)
	if !strings.Contains(buf.String(), "batch of 2 done") {
		t.Errorf("no batch summary in log:\n%s", buf.String())
	}

	// Disabling the cache with retained entries logs the bypass, and
	// subsequent jobs log per-job bypass lines.
	e.SetCache(false)
	if !strings.Contains(buf.String(), "bypassed") {
		t.Errorf("no bypass notice in log:\n%s", buf.String())
	}
}
