package runner

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
)

// storeOpts is tinyOpts plus a fast-forward, so the checkpoint tier is
// exercised alongside the result tier.
func storeOpts() sim.RunOpts {
	o := tinyOpts()
	o.FastForwardInsts = 5_000
	return o
}

func storeJobs() []Job {
	opts := storeOpts()
	return []Job{
		Solo(sim.Default(sim.PFNone), "mcf", opts),
		Solo(sim.Default(sim.PFBFetch), "mcf", opts),
		Solo(sim.Default(sim.PFStride), "libquantum", opts),
		Solo(sim.Default(sim.PFNone), "mcf", opts), // duplicate: memory-tier hit
	}
}

// sameObservable compares the parts of a Result that feed tables and
// reports. The full struct includes unexported DRAM scheduling state that
// deliberately does not survive serialization.
func sameObservable(t *testing.T, tag string, a, b sim.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.IPC, b.IPC) || !reflect.DeepEqual(a.Core, b.Core) ||
		!reflect.DeepEqual(a.L1D, b.L1D) || a.LLC != b.LLC || a.Cycles != b.Cycles ||
		!reflect.DeepEqual(a.Lifecycle, b.Lifecycle) || !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("%s: observable results diverge", tag)
	}
}

// TestStoreTwoTierLookup is the heart of the durable cache: a cold engine
// computes and writes back; a fresh engine over the same directory answers
// every distinct point from disk — zero simulations, zero emulated
// instructions — with observably identical results.
func TestStoreTwoTierLookup(t *testing.T) {
	dir := t.TempDir()
	jobs := storeJobs()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := New(4)
	cold.SetStore(st1)
	coldOut := cold.RunAll(jobs)
	cs := cold.Stats()
	if cs.Runs != 3 || cs.StoreMisses != 3 || cs.StoreHits != 0 {
		t.Fatalf("cold stats %+v, want 3 runs / 3 store misses", cs)
	}
	if cs.StoreCkptMisses != 2 || cs.StoreCkptHits != 0 {
		t.Fatalf("cold ckpt-store stats %+v, want 2 misses", cs)
	}
	if m := st1.Metrics(); m.Writes != 5 { // 3 results + 2 checkpoints
		t.Fatalf("cold store wrote %d entries, want 5", m.Writes)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(4)
	warm.SetStore(st2)
	warmOut := warm.RunAll(jobs)
	ws := warm.Stats()
	if ws.Runs != 0 || ws.EmuInsts != 0 {
		t.Errorf("warm run computed something: %+v", ws)
	}
	if ws.StoreHits != 3 || ws.StoreMisses != 0 {
		t.Errorf("warm run not 100%% store hits: %+v", ws)
	}
	if ws.Hits != 1 { // the duplicate job still lands in the memory tier
		t.Errorf("memory tier lost the duplicate: %+v", ws)
	}

	// Byte-identity of the observable results, against both the cold run
	// and a storeless reference engine.
	ref := New(4).RunAll(jobs)
	for i := range jobs {
		if coldOut[i].Err != nil || warmOut[i].Err != nil || ref[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v / %v", i, coldOut[i].Err, warmOut[i].Err, ref[i].Err)
		}
		sameObservable(t, "warm vs cold", warmOut[i].Result, coldOut[i].Result)
		sameObservable(t, "warm vs storeless", warmOut[i].Result, ref[i].Result)
	}
}

// TestStoreCheckpointTier pins that a warm store eliminates prefix
// emulation: the second engine restores every checkpoint from disk.
func TestStoreCheckpointTier(t *testing.T) {
	dir := t.TempDir()
	job := Solo(sim.Default(sim.PFNone), "lbm", storeOpts())

	st1, _ := store.Open(dir)
	cold := NewSequential()
	cold.SetStore(st1)
	if _, err := cold.Run(job); err != nil {
		t.Fatal(err)
	}
	if cs := cold.Stats(); cs.CkptMisses != 1 || cs.EmuInsts == 0 {
		t.Fatalf("cold run did not emulate a checkpoint: %+v", cs)
	}

	st2, _ := store.Open(dir)
	warmEng := NewSequential()
	warmEng.SetStore(st2)
	// Force a result-tier miss with a config the cold engine never ran, so
	// the simulation must execute — but its checkpoint must come from disk.
	job2 := Solo(sim.Default(sim.PFStride), "lbm", storeOpts())
	if _, err := warmEng.Run(job2); err != nil {
		t.Fatal(err)
	}
	ws := warmEng.Stats()
	if ws.Runs != 1 {
		t.Fatalf("expected a simulation: %+v", ws)
	}
	if ws.StoreCkptHits != 1 || ws.CkptMisses != 0 || ws.EmuInsts != 0 {
		t.Errorf("checkpoint not restored from store: %+v", ws)
	}
}

// TestStoreWorkerCountInvariant shares one store directory between a
// sequential and a wide engine: both must see the same hits and produce the
// same bytes — the disk tier must be as scheduling-independent as the
// memory tier.
func TestStoreWorkerCountInvariant(t *testing.T) {
	dir := t.TempDir()
	jobs := storeJobs()

	st1, _ := store.Open(dir)
	e1 := New(1)
	e1.SetStore(st1)
	out1 := e1.RunAll(jobs)

	st8, _ := store.Open(dir)
	e8 := New(8)
	e8.SetStore(st8)
	out8 := e8.RunAll(jobs)

	if s := e8.Stats(); s.Runs != 0 || s.StoreMisses != 0 {
		t.Errorf("-j 8 over a warm shared store recomputed: %+v", s)
	}
	for i := range jobs {
		sameObservable(t, "j1 vs j8", out1[i].Result, out8[i].Result)
	}
}

// TestStoreDisabledByNoCache: SetCache(false) bypasses both tiers — the
// escape hatch stays a true escape hatch.
func TestStoreDisabledByNoCache(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	e := NewSequential()
	e.SetStore(st)
	e.SetCache(false)
	job := Solo(sim.Default(sim.PFNone), "gamess", tinyOpts())
	e.RunAll([]Job{job, job})
	if s := e.Stats(); s.Runs != 2 || s.StoreHits != 0 || s.StoreMisses != 0 {
		t.Errorf("cache-off engine touched the store: %+v", s)
	}
	if m := st.Metrics(); m.Writes != 0 {
		t.Errorf("cache-off engine wrote %d entries", m.Writes)
	}
}

// TestStoreBatchLog checks the batch summary names the disk tier.
func TestStoreBatchLog(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	e := NewSequential()
	e.SetStore(st)
	var buf bytes.Buffer
	e.SetLog(&buf)
	e.RunAll([]Job{Solo(sim.Default(sim.PFNone), "mcf", tinyOpts())})
	if out := buf.String(); !strings.Contains(out, "store 0 hits / 1 misses") {
		t.Errorf("batch log lacks store summary:\n%s", out)
	}
}
