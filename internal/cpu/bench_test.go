package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// benchProgram loops forever over a 64 KB working set — large enough to miss
// in L1D — mixing loads, stores, ALU ops, and branches, so a single Cycle
// exercises every pipeline stage.
func benchProgram() (*isa.Program, *mem.Memory) {
	prog := isa.MustAssemble(`
		movi r1, 0
	loop:
		ld   r2, 0x40000(r1)
		addi r2, r2, 1
		st   r2, 0x40000(r1)
		addi r1, r1, 64
		andi r1, r1, 65535
		jmp  loop
	`)
	return prog, mem.New()
}

// BenchmarkCoreCycle measures the per-cycle cost of the simulation kernel.
// The acceptance bar is 0 allocs/op: the hot path must run entirely on
// persistent, reused buffers.
func BenchmarkCoreCycle(b *testing.B) {
	prog, image := benchProgram()
	c := newTestCore(prog, image, nil)
	var now uint64
	// Warm every internal buffer to steady-state capacity.
	for ; now < 50_000; now++ {
		c.Cycle(now)
	}
	if c.Halted() {
		b.Fatal("benchmark core halted during warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cycle(now)
		now++
	}
}
