package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// benchProgram loops forever over a 64 KB working set — large enough to miss
// in L1D — mixing loads, stores, ALU ops, and branches, so a single Cycle
// exercises every pipeline stage.
func benchProgram() (*isa.Program, *mem.Memory) {
	prog := isa.MustAssemble(`
		movi r1, 0
	loop:
		ld   r2, 0x40000(r1)
		addi r2, r2, 1
		st   r2, 0x40000(r1)
		addi r1, r1, 64
		andi r1, r1, 65535
		jmp  loop
	`)
	return prog, mem.New()
}

// The RobScan/RobBitmap pair isolates the ready-selection kernel the issue
// stage runs every cycle: pick the Width oldest of the ready entries in a
// 192-slot ROB and keep the rest. RobScan is the pre-bitmap implementation —
// a ref list insertion-sorted by sequence number, selected from, and
// rebuilt; RobBitmap is the shipping one — a TrailingZeros64 walk of the
// ready bitmap in ring order from the ROB head, which is age order by
// construction. Same synthetic state for both: 48 ready entries scattered
// through a wrapped ROB window.

const (
	benchRobSlots = 192
	benchRobHead  = 77
	benchRobReady = 48
	benchRobWidth = 4
)

// benchReadySlots returns the ready slots (every fourth ring position) and
// their seqs, plus the same refs in a deterministic non-age order — the
// arrival order a broadcast-driven ready list really sees.
func benchReadySlots() (slots []int, seq [benchRobSlots]uint64, arrival []ref) {
	for i := 0; i < benchRobSlots; i++ {
		s := (benchRobHead + i) % benchRobSlots
		seq[s] = uint64(1000 + i)
		if i%4 == 0 {
			slots = append(slots, s)
		}
	}
	arrival = make([]ref, len(slots))
	for i, s := range slots {
		j := (i * 29) % len(slots) // deterministic shuffle: 29 ⊥ 48
		arrival[j] = ref{slot: s, seq: seq[s]}
	}
	return slots, seq, arrival
}

func BenchmarkRobScan(b *testing.B) {
	_, _, arrival := benchReadySlots()
	scratch := make([]ref, len(arrival))
	var picked [benchRobWidth]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ready := scratch[:copy(scratch, arrival)]
		for i := 1; i < len(ready); i++ {
			for j := i; j > 0 && ready[j].seq < ready[j-1].seq; j-- {
				ready[j], ready[j-1] = ready[j-1], ready[j]
			}
		}
		n := 0
		rest := ready[:0]
		for _, r := range ready {
			if n < benchRobWidth {
				picked[n] = r.slot
				n++
				continue
			}
			rest = append(rest, r)
		}
	}
	_ = picked
}

func BenchmarkRobBitmap(b *testing.B) {
	slots, _, _ := benchReadySlots()
	bm := make([]uint64, (benchRobSlots+63)/64)
	for _, s := range slots {
		bmSet(bm, s)
	}
	var picked [benchRobWidth]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		var it bmIter
		it.init(bm, benchRobHead)
		for s, ok := it.next(); ok && n < benchRobWidth; s, ok = it.next() {
			picked[n] = s
			n++
		}
	}
	_ = picked
}

// BenchmarkCoreCycle measures the per-cycle cost of the simulation kernel.
// The acceptance bar is 0 allocs/op: the hot path must run entirely on
// persistent, reused buffers.
func BenchmarkCoreCycle(b *testing.B) {
	prog, image := benchProgram()
	c := newTestCore(prog, image, nil)
	var now uint64
	// Warm every internal buffer to steady-state capacity.
	for ; now < 50_000; now++ {
		c.Cycle(now)
	}
	if c.Halted() {
		b.Fatal("benchmark core halted during warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cycle(now)
		now++
	}
}
