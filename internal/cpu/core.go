// Package cpu is the cycle-level out-of-order core model: a speculative,
// register-renaming machine in the style of gem5's O3 CPU, scoped to what a
// data-prefetching study needs. It executes wrong-path instructions (so
// speculative loads pollute the caches exactly as on hardware), resolves
// branches out of order with full squash-and-redirect recovery, learns its
// branch predictor and prefetcher at commit in program order, and drives a
// prefetch engine through decode, commit, access and per-cycle tick hooks.
//
// Deliberate simplifications, documented here and in DESIGN.md: the issue
// window is the ROB (no separate issue-queue capacity), functional units are
// unbounded except for L1D ports, and memory disambiguation is conservative
// (a load waits for every older store address). None of these interact with
// the prefetcher mechanisms under study.
package cpu

import (
	"fmt"
	"math/bits"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// ExecObserver is implemented by prefetchers that sample execute-stage
// register writebacks (B-Fetch's Alternate Register File feed). The core
// delivers every completing register write, including wrong-path ones, with
// the instruction's sequence number for the ARF's ordering guard.
type ExecObserver interface {
	OnExec(reg isa.Reg, val int64, seq uint64, now uint64)
}

type entryState uint8

const (
	sWait   entryState = iota // waiting for source operands
	sReady                    // operands ready, not yet issued
	sIssued                   // executing (in flight)
	sDone                     // complete, awaiting commit
)

// ref names a ROB entry robustly: sequence numbers are never reused, so a
// stale ref (to a squashed entry whose slot was reallocated) fails the
// seq-match check instead of aliasing the new occupant.
type ref struct {
	slot int
	seq  uint64
}

type ratEntry struct {
	ref
	valid bool
}

type consRef struct {
	ref
	srcIdx int
}

type robEntry struct {
	seq   uint64 // 0 = free/squashed
	slot  int
	idx   int // instruction index
	pc    uint64
	inst  isa.Inst
	state entryState

	nsrc   int
	srcVal [2]int64
	cons   []consRef

	destVal int64
	ea      uint64
	eaValid bool
	stData  int64
	doneAt  uint64
	faulted bool
	sqWait  uint64 // sqGen when this load was last found blocked

	// CPI attribution (cfg.CPIStack): set when the load issued to the
	// memory hierarchy; zeroed with the rest of the entry at dispatch.
	memStart uint64          // cycle the load went to memory
	memClass bool            // memStart/cl are valid
	cl       cache.LoadClass // hierarchy annotation for head-of-ROB charging

	// Control-flow bookkeeping.
	predTaken   bool
	predNext    int // predicted next instruction index; -1 = fetch stalled
	ghr         branch.GHR
	pred        branch.Pred
	ratSnap     [isa.NumRegs]ratEntry
	hasSnap     bool
	actualTaken bool
	actualNext  int
}

type fqEntry struct {
	idx       int
	pc        uint64
	fetchedAt uint64
	predTaken bool
	predNext  int
	ghr       branch.GHR
	pred      branch.Pred
}

// Core is one simulated out-of-order core.
type Core struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory
	hier *cache.Hierarchy
	bp   *branch.Predictor
	conf *branch.Confidence
	pf   prefetch.Prefetcher
	pfEx ExecObserver // non-nil if pf wants execute samples

	cregs [isa.NumRegs]int64
	rat   [isa.NumRegs]ratEntry

	rob      []robEntry
	headSlot int
	count    int
	nextSeq  uint64 // monotonically increasing; never reused

	// Scheduling bitmaps: bit s of word s/64 tracks ROB slot s. readyBM
	// marks sReady entries awaiting issue, inflightBM marks sIssued entries
	// with a scheduled completion, pendBM marks issued loads parked on
	// disambiguation or ports. Invariant: a set bit always names a live
	// entry in the matching state — state transitions and recover() keep the
	// maps exact — so the schedulers walk set bits with TrailingZeros64
	// instead of filtering ref lists, and walking the ring from headSlot
	// yields entries oldest-first without a sort (slot order inside
	// [headSlot, headSlot+count) is sequence order).
	readyBM    []uint64
	inflightBM []uint64
	pendBM     []uint64

	// storeQ is a ring of uncommitted stores, oldest first (disambiguation).
	// Capacity is the ROB size — a store occupies a ROB slot while queued —
	// so the backing array is allocated once and never grows.
	storeQ []ref
	sqHead int
	sqN    int

	// Store-queue membership filter for disambiguation: sqUnknown counts
	// queued stores whose address is not yet computed, sqBuck counts
	// address-resolved queued stores per 8-byte-granularity bucket, and
	// sqMask keeps bit b set while sqBuck[b] is nonzero. A load whose
	// three-bucket neighborhood is empty while sqUnknown is zero provably
	// has no older-store conflict, so disambiguate skips the queue scan.
	sqUnknown int
	sqBuck    [64]int32
	sqMask    uint64

	// sqGen versions the store-queue state a load's disambiguation depends
	// on: it advances whenever a queued store resolves its address, drains
	// at commit, or the queue rolls back on a squash. A blocked load records
	// the generation it was rejected under (robEntry.sqWait) and is not
	// re-scanned until the generation moves — a pure memoization, since an
	// unchanged queue returns the same verdict and a blocked attempt has no
	// side effects (no port use, no counters). Stores *entering* the queue
	// do not advance it: a new store is younger than every already-pending
	// load, and disambiguation only looks at older stores.
	sqGen uint64

	// fq is the fetch queue as a ring: capacity cfg.FetchQueue, allocated
	// once. (A plain slice advanced with fq[1:] would re-allocate its
	// backing array continuously on the hot path.)
	fq     []fqEntry
	fqHead int
	fqN    int

	fetchPC       int // next instruction index to fetch; -1 = stalled
	fetchResumeAt uint64
	specGHR       branch.GHR

	halted bool
	err    error

	// Per-cycle scratch buffer, reused so the steady-state cycle path does
	// not allocate: pfReqs receives the prefetcher's requests in
	// prefetchTick().
	pfReqs []prefetch.Request

	Stats Stats
}

// New builds a core at the program entry point.
func New(cfg Config, prog *isa.Program, m *mem.Memory, hier *cache.Hierarchy,
	bp *branch.Predictor, conf *branch.Confidence, pf prefetch.Prefetcher) *Core {
	words := (cfg.ROBEntries + 63) / 64
	c := &Core{
		cfg:        cfg,
		prog:       prog,
		mem:        m,
		hier:       hier,
		bp:         bp,
		conf:       conf,
		pf:         pf,
		rob:        make([]robEntry, cfg.ROBEntries),
		readyBM:    make([]uint64, words),
		inflightBM: make([]uint64, words),
		pendBM:     make([]uint64, words),
		storeQ:     make([]ref, max(1, cfg.ROBEntries)),
		fq:         make([]fqEntry, max(1, cfg.FetchQueue)),
	}
	c.pfEx, _ = pf.(ExecObserver)
	c.nextSeq = 1
	return c
}

// BootArch starts the core from a mid-program architectural state — a
// fast-forward checkpoint captured by the functional emulator. Committed
// registers and the fetch PC are installed; every microarchitectural
// structure (caches, branch predictor, confidence estimator, prefetcher,
// ROB) stays cold, exactly as after a checkpoint restore in gem5-style
// methodology — warming those is the measurement protocol's job. It must be
// called before the first Cycle; calling it later would desynchronize the
// in-flight pipeline from the committed state.
func (c *Core) BootArch(a emu.Arch) {
	c.cregs = a.Regs
	if a.PC >= 0 && a.PC < c.prog.Len() {
		c.fetchPC = a.PC
	} else {
		c.fetchPC = -1
	}
	c.halted = a.Halted
}

// fqAt returns the i-th fetch-queue entry, oldest first. Ring indices stay
// in [0, 2·len) so a conditional subtract replaces the much slower modulo.
//
//bfetch:hotpath
func (c *Core) fqAt(i int) *fqEntry {
	j := c.fqHead + i
	if j >= len(c.fq) {
		j -= len(c.fq)
	}
	return &c.fq[j]
}

// sqAt returns the i-th store-queue ref, oldest first.
//
//bfetch:hotpath
func (c *Core) sqAt(i int) ref {
	j := c.sqHead + i
	if j >= len(c.storeQ) {
		j -= len(c.storeQ)
	}
	return c.storeQ[j]
}

// Halted reports whether the program has committed HALT (or faulted).
func (c *Core) Halted() bool { return c.halted }

// Err returns the architectural fault that stopped the core, if any.
func (c *Core) Err() error { return c.err }

// Regs returns the committed architectural register file.
func (c *Core) Regs() [isa.NumRegs]int64 { return c.cregs }

// Hierarchy returns the core's cache stack.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Predictor returns the core's branch predictor.
func (c *Core) Predictor() *branch.Predictor { return c.bp }

// Cycle advances the core by one clock. The caller owns the global clock so
// multiple cores can share LLC and DRAM coherently.
//
//bfetch:hotpath
func (c *Core) Cycle(now uint64) {
	if c.halted {
		return
	}
	c.Stats.Cycles++
	if c.cfg.CPIStack {
		// Charge this cycle to exactly one CPI bucket, in the same block
		// that counted it: sum(Stats.CPI) == Stats.Cycles by construction.
		committed := c.Stats.Committed
		c.commit(now)
		c.chargeCycle(now, committed)
	} else {
		c.commit(now)
	}
	if c.halted {
		return
	}
	c.complete(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	c.prefetchTick(now)
}

//bfetch:hotpath
func (c *Core) entry(r ref) *robEntry {
	e := &c.rob[r.slot]
	if e.seq != r.seq || r.seq == 0 {
		return nil
	}
	return e
}

//bfetch:hotpath
func (c *Core) tailSlot() int {
	j := c.headSlot + c.count
	if j >= len(c.rob) {
		j -= len(c.rob)
	}
	return j
}

// ------------------------------------------------------ scheduling bitmaps --

//bfetch:hotpath
func bmSet(bm []uint64, s int) { bm[s>>6] |= 1 << (uint(s) & 63) }

//bfetch:hotpath
func bmClear(bm []uint64, s int) { bm[s>>6] &^= 1 << (uint(s) & 63) }

//bfetch:hotpath
func bmAny(bm []uint64) bool {
	//bfetch:bce
	for _, w := range bm {
		if w != 0 {
			return true
		}
	}
	return false
}

// bmIter walks a scheduling bitmap's set bits in sequence (age) order: ring
// order starting at headSlot. It snapshots one word at a time, so bits the
// caller (or a squash it triggers) clears in words not yet visited are
// skipped, while clears inside the current snapshot must be re-checked
// against the entry's state by the caller — complete() is the one site where
// that happens.
type bmIter struct {
	bm   []uint64
	w    uint64 // remaining bits of the current word
	wi   int    // current word index
	hw   int    // head word index
	hb   uint   // head bit within hw
	wrap bool   // scanning the wrapped segment [0, headSlot)
}

//bfetch:hotpath
func (it *bmIter) init(bm []uint64, head int) {
	it.bm = bm
	it.hw, it.hb = head>>6, uint(head)&63
	it.wi = it.hw
	it.w = bm[it.hw] &^ (1<<it.hb - 1)
	it.wrap = false
}

//bfetch:hotpath
func (it *bmIter) next() (int, bool) {
	for it.w == 0 {
		it.wi++
		if it.wrap {
			if it.wi > it.hw {
				return 0, false
			}
			it.w = it.bm[it.wi]
			if it.wi == it.hw {
				it.w &= 1<<it.hb - 1
			}
		} else if it.wi == len(it.bm) {
			it.wrap = true
			it.wi = -1 // restart just before word 0
		} else {
			it.w = it.bm[it.wi]
		}
	}
	s := it.wi<<6 + bits.TrailingZeros64(it.w)
	it.w &= it.w - 1
	return s, true
}

// ---------------------------------------------------------------- commit --

//bfetch:hotpath
func (c *Core) commit(now uint64) {
	for n := 0; n < c.cfg.Width && c.count > 0; n++ {
		e := &c.rob[c.headSlot]
		if e.state != sDone || e.doneAt > now {
			return
		}
		if e.faulted {
			// Once-per-run termination path, never reached in steady state.
			c.err = fmt.Errorf("cpu: fault at pc %#x (%s)", e.pc, e.inst) //bfetch:alloc-ok

			c.halted = true
			return
		}
		in := e.inst

		// Architectural effects.
		if in.HasDest() {
			c.cregs[in.DestReg()] = e.destVal
		}
		switch {
		case in.IsStore():
			c.mem.WriteInt64(e.ea, e.stData)
			c.hier.Store(e.ea, now)
			c.pf.OnAccess(prefetch.AccessInfo{PC: e.pc, Addr: e.ea, Write: true})
			c.Stats.StoresCommitted++
		case in.IsLoad():
			c.Stats.LoadsCommitted++
		case in.IsCondBranch():
			c.Stats.BranchesCommitted++
			if e.predTaken != e.actualTaken {
				c.Stats.BranchMispredicts++
			}
			c.bp.Resolve(e.predTaken, e.actualTaken)
			c.bp.Update(e.pc, e.ghr, e.actualTaken, e.pred)
			c.conf.Update(e.pc, e.ghr, e.predTaken == e.actualTaken)
		case in.Op == isa.JR:
			c.bp.UpdateIndirect(e.pc, c.prog.PC(e.actualNext))
		}

		// Rename table release.
		if in.HasDest() {
			r := in.DestReg()
			if c.rat[r].valid && c.rat[r].seq == e.seq {
				c.rat[r].valid = false
			}
		}

		next := uint64(0)
		if e.actualNext >= 0 && e.actualNext < c.prog.Len() {
			next = c.prog.PC(e.actualNext)
		}
		var targetPC uint64
		if in.IsDirect() {
			targetPC = c.prog.PC(in.Target)
		}
		c.pf.OnCommit(prefetch.CommitInfo{
			PC: e.pc, Inst: in, EA: e.ea, Taken: e.actualTaken, Next: next,
			TargetPC: targetPC, Regs: &c.cregs,
		})

		c.Stats.Committed++
		if in.IsStore() && c.sqN > 0 {
			// Stores commit in order: the queue head is this store.
			if c.sqHead++; c.sqHead == len(c.storeQ) {
				c.sqHead = 0
			}
			c.sqN--
			c.sqBuckDrop(e.ea) // a committed store always resolved its address
			c.sqGen++          // drained: loads blocked behind it may pass now
		}
		e.seq = 0
		if c.headSlot++; c.headSlot == len(c.rob) {
			c.headSlot = 0
		}
		c.count--

		if in.Op == isa.HALT {
			c.halted = true
			return
		}
	}
}

// -------------------------------------------------------------- complete --

//bfetch:hotpath
func (c *Core) complete(now uint64) {
	// Resolve completions oldest first, so a squash from an older branch
	// naturally invalidates younger resolutions: the age-order bitmap walk
	// replaces the old collect-sort-filter scratch list outright. A squash
	// clears the victims' in-flight bits, which the walk observes for words
	// not yet visited; bits already snapshotted are caught by the state
	// re-check (finish never schedules new completions, so nothing can
	// become done mid-walk).
	var it bmIter
	it.init(c.inflightBM, c.headSlot)
	for s, ok := it.next(); ok; s, ok = it.next() {
		e := &c.rob[s]
		if e.seq == 0 || e.state != sIssued || e.doneAt > now {
			continue
		}
		bmClear(c.inflightBM, s)
		e.state = sDone
		c.finish(e, now)
	}
}

// finish applies completion effects: value broadcast and branch resolution.
//
//bfetch:hotpath
func (c *Core) finish(e *robEntry, now uint64) {
	in := e.inst
	if in.HasDest() {
		c.broadcast(e)
		if c.pfEx != nil {
			c.pfEx.OnExec(in.DestReg(), e.destVal, e.seq, now)
		}
	}
	if in.IsControl() && e.actualNext != e.predNext {
		c.recover(e, now)
	}
}

//bfetch:hotpath
func (c *Core) broadcast(e *robEntry) {
	for _, cr := range e.cons {
		d := c.entry(cr.ref)
		if d == nil || d.state != sWait {
			continue
		}
		d.srcVal[cr.srcIdx] = e.destVal
		d.nsrc--
		if d.nsrc == 0 {
			d.state = sReady
			bmSet(c.readyBM, cr.slot)
		}
	}
	e.cons = e.cons[:0]
}

// recover squashes everything younger than the resolving control
// instruction and redirects fetch.
//
//bfetch:hotpath
func (c *Core) recover(e *robEntry, now uint64) {
	for c.count > 0 {
		ts := c.tailSlot() - 1
		if ts < 0 {
			ts += len(c.rob)
		}
		t := &c.rob[ts]
		if t.seq <= e.seq {
			break
		}
		c.Stats.Squashed++
		if t.inst.IsLoad() && t.eaValid {
			// A speculative load that already reached the memory system:
			// its cache side-effects (fills, evictions) persist, as on
			// real hardware.
			c.Stats.WrongPathLoads++
		}
		if t.inst.IsStore() {
			// The store is still queued (stores leave only at commit);
			// give back its disambiguation-filter claim.
			if t.eaValid {
				c.sqBuckDrop(t.ea)
			} else {
				c.sqUnknown--
			}
		}
		t.seq = 0
		t.cons = t.cons[:0]
		bmClear(c.readyBM, ts)
		bmClear(c.inflightBM, ts)
		bmClear(c.pendBM, ts)
		c.count--
	}
	// The fetch queue holds only instructions younger than any ROB entry.
	c.Stats.Squashed += uint64(c.fqN)
	c.fqHead, c.fqN = 0, 0

	// Drop squashed stores from the disambiguation queue (they are at the
	// tail: stores enter in program order). Squashed stores are younger
	// than every surviving load, so no surviving verdict can change — the
	// generation bump is belt-and-braces for a rare path.
	for c.sqN > 0 && c.sqAt(c.sqN-1).seq > e.seq {
		c.sqN--
	}
	c.sqGen++

	// Restore the rename table from the branch's snapshot, dropping
	// mappings to entries that committed while the branch was in flight.
	for r := range c.rat {
		s := e.ratSnap[r]
		if s.valid && c.entry(s.ref) == nil {
			s.valid = false
		}
		c.rat[r] = s
	}

	// Redirect fetch.
	if e.actualNext >= 0 && e.actualNext < c.prog.Len() {
		c.fetchPC = e.actualNext
	} else {
		c.fetchPC = -1 // fault propagates when/if e commits
	}
	c.fetchResumeAt = now + c.cfg.RedirectPenalty
	if e.inst.IsCondBranch() {
		c.specGHR = e.ghr.Shift(e.actualTaken)
	} else {
		c.specGHR = e.ghr
	}
}

// ----------------------------------------------------------------- issue --

func opLatency(op isa.Op, mulLat uint64) uint64 {
	switch op {
	case isa.MUL, isa.MULI:
		return mulLat
	default:
		return 1
	}
}

//bfetch:hotpath
func (c *Core) issue(now uint64) {
	ports := c.cfg.CachePorts

	// Blocked loads retry first (they already consumed an issue slot),
	// oldest first — the age-order walk doubles as the port arbiter.
	var it bmIter
	if bmAny(c.pendBM) {
		it.init(c.pendBM, c.headSlot)
		for s, ok := it.next(); ok && ports > 0; s, ok = it.next() {
			e := &c.rob[s]
			if e.sqWait == c.sqGen {
				// Store queue unchanged since this load was last rejected:
				// the verdict cannot have moved, skip the rescan.
				continue
			}
			if c.tryLoad(e, now) {
				ports--
				bmClear(c.pendBM, s)
			}
		}
	}

	if !bmAny(c.readyBM) {
		return
	}
	// Oldest-first selection: the ring walk from headSlot visits ready
	// entries in sequence order directly, replacing the per-cycle
	// insertion sort over a ref list.
	issued := 0
	it.init(c.readyBM, c.headSlot)
	for s, ok := it.next(); ok && issued < c.cfg.Width; s, ok = it.next() {
		issued++
		bmClear(c.readyBM, s)
		c.execute(&c.rob[s], now, &ports)
	}
}

// execute starts one entry. Loads may divert to the pending list.
//
//bfetch:hotpath
func (c *Core) execute(e *robEntry, now uint64, ports *int) {
	in := e.inst
	e.state = sIssued
	switch {
	case in.IsLoad():
		e.ea = uint64(e.srcVal[0] + in.Imm)
		e.eaValid = true
		if *ports == 0 {
			// Parked for a port, not by a store-queue verdict: it must be
			// retried whatever the generation. sqGen only grows, so the
			// predecessor value can never match a current generation.
			e.sqWait = c.sqGen - 1
			bmSet(c.pendBM, e.slot)
			return
		}
		if !c.tryLoad(e, now) {
			bmSet(c.pendBM, e.slot)
			return
		}
		*ports--
		return // tryLoad put it in flight
	case in.IsStore():
		e.ea = uint64(e.srcVal[0] + in.Imm)
		e.eaValid = true
		e.stData = e.srcVal[1]
		e.doneAt = now + 1
		// The queued store's address is now known: move its filter claim
		// from the unknown counter to its address bucket.
		c.sqUnknown--
		c.sqBuckAdd(e.ea)
		c.sqGen++ // resolved: blocked loads can re-disambiguate
	case in.IsControl():
		e.actualTaken = emu.BranchTaken(in.Op, e.srcVal[0])
		switch {
		case in.Op == isa.JR:
			tgt, ok := c.prog.Index(uint64(e.srcVal[0]))
			if ok {
				e.actualNext = tgt
			} else {
				e.actualNext = -2
				e.faulted = true
			}
		case e.actualTaken:
			e.actualNext = in.Target
		default:
			e.actualNext = e.idx + 1
		}
		e.doneAt = now + 1
	default:
		v, ok := emu.Eval(in.Op, e.srcVal[0], e.srcVal[1], in.Imm)
		if !ok {
			e.faulted = true
		}
		e.destVal = v
		e.doneAt = now + opLatency(in.Op, c.cfg.MulLatency) - 1
	}
	bmSet(c.inflightBM, e.slot)
}

// tryLoad attempts to send a load to memory; returns false if blocked by
// disambiguation. A port must be available (checked by the caller).
//
//bfetch:hotpath
func (c *Core) tryLoad(e *robEntry, now uint64) bool {
	fwd, val, blocked := c.disambiguate(e)
	if blocked {
		e.sqWait = c.sqGen
		return false
	}
	if fwd {
		e.destVal = val
		e.doneAt = now + 1
		c.Stats.StoreForwards++
	} else {
		e.destVal = c.mem.ReadInt64(e.ea)
		var done uint64
		var hit bool
		if c.cfg.CPIStack {
			e.cl = cache.LoadClass{}
			e.memStart = now
			e.memClass = true
			done, hit = c.hier.LoadClassified(e.ea, now, &e.cl)
		} else {
			done, hit = c.hier.Load(e.ea, now)
		}
		e.doneAt = done
		if cache.IsPending(done) {
			// Shared-level access deferred through the core's port: the real
			// completion cycle is patched in at the end-of-cycle service.
			c.hier.DeferDone(&e.doneAt, done)
		}
		if hit {
			c.Stats.LoadL1Hits++
		} else {
			c.Stats.LoadL1Misses++
		}
		c.pf.OnAccess(prefetch.AccessInfo{PC: e.pc, Addr: e.ea, Hit: hit})
	}
	bmSet(c.inflightBM, e.slot)
	return true
}

// sqBucket hashes an access address to a disambiguation filter bucket.
// Accesses are 8 bytes wide, so two that overlap (|a-b| ≤ 7) land in the
// same or an adjacent bucket — an empty three-bucket neighborhood proves a
// load conflicts with no resolved store in the queue.
//
//bfetch:hotpath
func sqBucket(ea uint64) int { return int(ea>>3) & 63 }

//bfetch:hotpath
func (c *Core) sqBuckAdd(ea uint64) {
	b := sqBucket(ea)
	c.sqBuck[b]++
	c.sqMask |= 1 << uint(b)
}

//bfetch:hotpath
func (c *Core) sqBuckDrop(ea uint64) {
	b := sqBucket(ea)
	if c.sqBuck[b]--; c.sqBuck[b] == 0 {
		c.sqMask &^= 1 << uint(b)
	}
}

// disambiguate scans the in-flight stores older than the load, youngest
// first. It returns forwarding data if the nearest older store to the exact
// address has its data, or blocked if any intervening store address is
// unknown or overlaps inexactly.
//
// The scan is guarded by the bucket filter: when every queued store has a
// resolved address and none lands in the load's three-bucket neighborhood,
// the queue provably holds no conflict and the answer is a constant-time
// miss. Bucket aliasing only causes a harmless fall-through to the scan.
//
//bfetch:hotpath
func (c *Core) disambiguate(e *robEntry) (fwd bool, val int64, blocked bool) {
	if c.sqUnknown == 0 && c.sqMask&bits.RotateLeft64(7, sqBucket(e.ea)-1) == 0 {
		return false, 0, false
	}
	for i := c.sqN - 1; i >= 0; i-- {
		s := c.entry(c.sqAt(i))
		if s == nil || s.seq >= e.seq {
			continue
		}
		if !s.eaValid {
			return false, 0, true
		}
		if rangesOverlap(s.ea, e.ea) {
			if s.ea == e.ea {
				return true, s.stData, false
			}
			return false, 0, true // partial overlap: wait for the store to drain
		}
	}
	return false, 0, false
}

func rangesOverlap(a, b uint64) bool {
	return a < b+8 && b < a+8
}

// -------------------------------------------------------------- dispatch --

//bfetch:hotpath
func (c *Core) dispatch(now uint64) {
	for n := 0; n < c.cfg.Width; n++ {
		if c.fqN == 0 || c.count == len(c.rob) {
			return
		}
		f := *c.fqAt(0)
		if f.fetchedAt+c.cfg.FrontEndDelay > now {
			return
		}
		if c.fqHead++; c.fqHead == len(c.fq) {
			c.fqHead = 0
		}
		c.fqN--

		seq := c.nextSeq
		c.nextSeq++
		slot := c.tailSlot()
		e := &c.rob[slot]
		*e = robEntry{
			seq: seq, slot: slot, idx: f.idx, pc: f.pc, inst: c.prog.Insts[f.idx],
			predTaken: f.predTaken, predNext: f.predNext, ghr: f.ghr, pred: f.pred,
			actualNext: f.idx + 1, cons: e.cons[:0],
		}
		c.count++
		in := e.inst

		// Rename sources.
		var srcs [2]isa.Reg
		regs := in.SrcRegs(srcs[:0])
		for i, reg := range regs {
			if reg == isa.RZero {
				e.srcVal[i] = 0
				continue
			}
			m := c.rat[reg]
			if !m.valid {
				e.srcVal[i] = c.cregs[reg]
				continue
			}
			p := c.entry(m.ref)
			if p == nil {
				e.srcVal[i] = c.cregs[reg]
				continue
			}
			if p.state == sDone {
				e.srcVal[i] = p.destVal
				continue
			}
			p.cons = append(p.cons, consRef{ref: ref{slot: slot, seq: seq}, srcIdx: i})
			e.nsrc++
		}

		// Rename destination.
		if in.HasDest() {
			c.rat[in.DestReg()] = ratEntry{ref: ref{slot: slot, seq: seq}, valid: true}
		}

		if in.IsStore() {
			st := c.sqHead + c.sqN
			if st >= len(c.storeQ) {
				st -= len(c.storeQ)
			}
			c.storeQ[st] = ref{slot: slot, seq: seq}
			c.sqN++
			c.sqUnknown++ // address unknown until the store executes
		}

		// Control instructions snapshot the RAT for recovery and feed the
		// prefetcher's decoded-branch register.
		if in.IsControl() {
			e.ratSnap = c.rat
			e.hasSnap = true
			var target uint64
			if in.IsDirect() {
				target = c.prog.PC(in.Target)
			}
			var predNextPC uint64
			if f.predNext >= 0 && f.predNext < c.prog.Len() {
				predNextPC = c.prog.PC(f.predNext)
			}
			c.pf.OnDecode(prefetch.DecodeInfo{
				PC: f.pc, Op: in.Op, Target: target,
				PredTaken: f.predTaken, PredNext: predNextPC, GHR: uint64(f.ghr),
			})
		}

		// Instructions with no pending sources and no work are born done.
		if e.nsrc == 0 {
			switch {
			case in.Op == isa.NOP, in.Op == isa.HALT:
				e.state = sDone
				e.doneAt = now
			case in.Op == isa.JMP:
				e.state = sDone
				e.doneAt = now
				e.actualTaken = true
				e.actualNext = in.Target
			default:
				e.state = sReady
				bmSet(c.readyBM, slot)
			}
		}
	}
}

// ----------------------------------------------------------------- fetch --

//bfetch:hotpath
func (c *Core) fetch(now uint64) {
	if now < c.fetchResumeAt || c.fetchPC < 0 {
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.fqN >= c.cfg.FetchQueue {
			return
		}
		idx := c.fetchPC
		if idx < 0 || idx >= c.prog.Len() {
			c.fetchPC = -1
			return
		}
		in := c.prog.Insts[idx]
		pc := c.prog.PC(idx)
		f := fqEntry{idx: idx, pc: pc, fetchedAt: now, predNext: idx + 1, ghr: c.specGHR}
		c.Stats.Fetched++

		redirect := false
		switch {
		case in.IsCondBranch():
			f.pred = c.bp.Lookup(pc, c.specGHR)
			f.predTaken = f.pred.Taken
			if f.predTaken {
				f.predNext = in.Target
				redirect = true
			}
			c.specGHR = c.specGHR.Shift(f.predTaken)
		case in.Op == isa.JMP:
			f.predTaken = true
			f.predNext = in.Target
			redirect = true
		case in.Op == isa.JR:
			f.predTaken = true
			if tgt, ok := c.bp.PredictIndirect(pc); ok {
				if tidx, valid := c.prog.Index(tgt); valid {
					f.predNext = tidx
					redirect = true
				} else {
					f.predNext = -1
				}
			} else {
				f.predNext = -1 // stall until the JR resolves
			}
		case in.Op == isa.HALT:
			f.predNext = -1
		}

		ft := c.fqHead + c.fqN
		if ft >= len(c.fq) {
			ft -= len(c.fq)
		}
		c.fq[ft] = f
		c.fqN++
		switch {
		case f.predNext == -1:
			c.fetchPC = -1
			return
		case redirect:
			c.fetchPC = f.predNext
			return // taken control ends the fetch group
		default:
			c.fetchPC = idx + 1
		}
	}
}

// ------------------------------------------------------------- prefetch --

//bfetch:hotpath
func (c *Core) prefetchTick(now uint64) {
	c.pfReqs = c.pf.AppendTick(c.pfReqs[:0], now)
	for _, r := range c.pfReqs {
		if c.hier.Prefetch(r.Addr, r.LoadPC, now) {
			c.Stats.PrefetchIssued++
		} else {
			c.Stats.PrefetchDropped++
		}
	}
}

// ------------------------------------------------------------ next event --

// NoEvent is NextEvent's answer when the core can make no progress on its
// own: it is halted, or fully drained with fetch stalled (a program that ran
// off its end without HALT spins until the cycle bound either way).
const NoEvent = ^uint64(0)

// NextEvent returns the earliest cycle after now at which Cycle can do any
// work, assuming no external state changes. The contract backing the
// event-driven simulation loop: for every cycle t with now < t <
// NextEvent(now), Cycle(t) would be a no-op apart from the Stats.Cycles
// increment (and, with cfg.CPIStack, the matching one-bucket CPI charge) —
// so a caller may skip those cycles entirely (crediting the skipped range
// via AddIdleCycles, which replays the charges exactly) and produce
// bit-identical results to ticking every cycle.
//
// Each pipeline stage contributes its wake-up condition; anything that could
// act on the very next cycle (ready entries, blocked loads retrying for a
// port, a busy prefetch engine) pins the next event to now+1.
//
//bfetch:hotpath
func (c *Core) NextEvent(now uint64) uint64 {
	if c.halted {
		return NoEvent
	}
	// Issue has work queued, blocked loads retry every cycle, and a non-idle
	// prefetch engine ticks every cycle: no skipping.
	if bmAny(c.readyBM) || bmAny(c.pendBM) || !c.pf.Idle() {
		return now + 1
	}
	next := uint64(NoEvent)
	// Commit: the ROB head has completed and waits out its latency.
	if c.count > 0 {
		if e := &c.rob[c.headSlot]; e.state == sDone {
			next = min(next, max(now+1, e.doneAt))
		}
	}
	// Complete: the earliest in-flight completion. Age order is irrelevant
	// for a minimum, so this is a plain word scan; the bitmap invariant
	// guarantees every set bit is a live sIssued entry.
	for wi, w := range c.inflightBM {
		for ; w != 0; w &= w - 1 {
			e := &c.rob[wi<<6+bits.TrailingZeros64(w)]
			next = min(next, max(now+1, e.doneAt))
		}
	}
	// Dispatch: the fetch-queue head clears the front-end delay (and a ROB
	// slot is free; a full ROB drains through commit, covered above).
	if c.fqN > 0 && c.count < len(c.rob) {
		next = min(next, max(now+1, c.fqAt(0).fetchedAt+c.cfg.FrontEndDelay))
	}
	// Fetch: resumes after a redirect once there is queue room (a full
	// queue drains through dispatch, covered above).
	if c.fetchPC >= 0 && c.fqN < c.cfg.FetchQueue {
		next = min(next, max(now+1, c.fetchResumeAt))
	}
	return next
}

// AddIdleCycles credits the skipped cycles [from, from+n): cycles the naive
// loop would have spent calling Cycle with no effect beyond the Stats.Cycles
// increment and (with cfg.CPIStack) the per-cycle bucket charge, which
// chargeGap replays as a segment walk.
//
//bfetch:hotpath
func (c *Core) AddIdleCycles(from, n uint64) {
	c.Stats.Cycles += n
	if c.cfg.CPIStack && n > 0 {
		c.chargeGap(from, from+n)
	}
}

// Run drives the core on its own private clock until it halts, commits
// maxInsts, or exceeds maxCycles; single-core convenience used by tests and
// examples. It returns the number of cycles consumed.
func (c *Core) Run(maxInsts, maxCycles uint64) (uint64, error) {
	start := c.Stats.Cycles
	for now := c.Stats.Cycles; !c.halted && c.Stats.Committed < maxInsts && c.Stats.Cycles-start < maxCycles; now++ {
		c.Cycle(now)
		if c.err != nil {
			break
		}
	}
	return c.Stats.Cycles - start, c.err
}
