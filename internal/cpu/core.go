// Package cpu is the cycle-level out-of-order core model: a speculative,
// register-renaming machine in the style of gem5's O3 CPU, scoped to what a
// data-prefetching study needs. It executes wrong-path instructions (so
// speculative loads pollute the caches exactly as on hardware), resolves
// branches out of order with full squash-and-redirect recovery, learns its
// branch predictor and prefetcher at commit in program order, and drives a
// prefetch engine through decode, commit, access and per-cycle tick hooks.
//
// Deliberate simplifications, documented here and in DESIGN.md: the issue
// window is the ROB (no separate issue-queue capacity), functional units are
// unbounded except for L1D ports, and memory disambiguation is conservative
// (a load waits for every older store address). None of these interact with
// the prefetcher mechanisms under study.
package cpu

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// ExecObserver is implemented by prefetchers that sample execute-stage
// register writebacks (B-Fetch's Alternate Register File feed). The core
// delivers every completing register write, including wrong-path ones, with
// the instruction's sequence number for the ARF's ordering guard.
type ExecObserver interface {
	OnExec(reg isa.Reg, val int64, seq uint64, now uint64)
}

type entryState uint8

const (
	sWait   entryState = iota // waiting for source operands
	sReady                    // operands ready, not yet issued
	sIssued                   // executing (in flight)
	sDone                     // complete, awaiting commit
)

// ref names a ROB entry robustly: sequence numbers are never reused, so a
// stale ref (to a squashed entry whose slot was reallocated) fails the
// seq-match check instead of aliasing the new occupant.
type ref struct {
	slot int
	seq  uint64
}

type ratEntry struct {
	ref
	valid bool
}

type consRef struct {
	ref
	srcIdx int
}

type robEntry struct {
	seq   uint64 // 0 = free/squashed
	slot  int
	idx   int // instruction index
	pc    uint64
	inst  isa.Inst
	state entryState

	nsrc   int
	srcVal [2]int64
	cons   []consRef

	destVal int64
	ea      uint64
	eaValid bool
	stData  int64
	doneAt  uint64
	faulted bool

	// Control-flow bookkeeping.
	predTaken   bool
	predNext    int // predicted next instruction index; -1 = fetch stalled
	ghr         branch.GHR
	pred        branch.Pred
	ratSnap     [isa.NumRegs]ratEntry
	hasSnap     bool
	actualTaken bool
	actualNext  int
}

type fqEntry struct {
	idx       int
	pc        uint64
	fetchedAt uint64
	predTaken bool
	predNext  int
	ghr       branch.GHR
	pred      branch.Pred
}

// Core is one simulated out-of-order core.
type Core struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory
	hier *cache.Hierarchy
	bp   *branch.Predictor
	conf *branch.Confidence
	pf   prefetch.Prefetcher
	pfEx ExecObserver // non-nil if pf wants execute samples

	cregs [isa.NumRegs]int64
	rat   [isa.NumRegs]ratEntry

	rob      []robEntry
	headSlot int
	count    int
	nextSeq  uint64 // monotonically increasing; never reused

	ready     []ref // entries with state sReady
	inflight  []ref // issued, waiting for doneAt
	pendLoads []ref // loads blocked on disambiguation or ports

	// storeQ is a ring of uncommitted stores, oldest first (disambiguation).
	// Capacity is the ROB size — a store occupies a ROB slot while queued —
	// so the backing array is allocated once and never grows.
	storeQ []ref
	sqHead int
	sqN    int

	// fq is the fetch queue as a ring: capacity cfg.FetchQueue, allocated
	// once. (A plain slice advanced with fq[1:] would re-allocate its
	// backing array continuously on the hot path.)
	fq     []fqEntry
	fqHead int
	fqN    int

	fetchPC       int // next instruction index to fetch; -1 = stalled
	fetchResumeAt uint64
	specGHR       branch.GHR

	halted bool
	err    error

	// Per-cycle scratch buffers, reused so the steady-state cycle path does
	// not allocate: doneScratch collects completing refs in complete();
	// pfReqs receives the prefetcher's requests in prefetchTick().
	doneScratch []ref
	pfReqs      []prefetch.Request

	Stats Stats
}

// New builds a core at the program entry point.
func New(cfg Config, prog *isa.Program, m *mem.Memory, hier *cache.Hierarchy,
	bp *branch.Predictor, conf *branch.Confidence, pf prefetch.Prefetcher) *Core {
	c := &Core{
		cfg:    cfg,
		prog:   prog,
		mem:    m,
		hier:   hier,
		bp:     bp,
		conf:   conf,
		pf:     pf,
		rob:    make([]robEntry, cfg.ROBEntries),
		storeQ: make([]ref, max(1, cfg.ROBEntries)),
		fq:     make([]fqEntry, max(1, cfg.FetchQueue)),
	}
	c.pfEx, _ = pf.(ExecObserver)
	c.nextSeq = 1
	return c
}

// BootArch starts the core from a mid-program architectural state — a
// fast-forward checkpoint captured by the functional emulator. Committed
// registers and the fetch PC are installed; every microarchitectural
// structure (caches, branch predictor, confidence estimator, prefetcher,
// ROB) stays cold, exactly as after a checkpoint restore in gem5-style
// methodology — warming those is the measurement protocol's job. It must be
// called before the first Cycle; calling it later would desynchronize the
// in-flight pipeline from the committed state.
func (c *Core) BootArch(a emu.Arch) {
	c.cregs = a.Regs
	if a.PC >= 0 && a.PC < c.prog.Len() {
		c.fetchPC = a.PC
	} else {
		c.fetchPC = -1
	}
	c.halted = a.Halted
}

// fqAt returns the i-th fetch-queue entry, oldest first. Ring indices stay
// in [0, 2·len) so a conditional subtract replaces the much slower modulo.
//
//bfetch:hotpath
func (c *Core) fqAt(i int) *fqEntry {
	j := c.fqHead + i
	if j >= len(c.fq) {
		j -= len(c.fq)
	}
	return &c.fq[j]
}

// sqAt returns the i-th store-queue ref, oldest first.
//
//bfetch:hotpath
func (c *Core) sqAt(i int) ref {
	j := c.sqHead + i
	if j >= len(c.storeQ) {
		j -= len(c.storeQ)
	}
	return c.storeQ[j]
}

// Halted reports whether the program has committed HALT (or faulted).
func (c *Core) Halted() bool { return c.halted }

// Err returns the architectural fault that stopped the core, if any.
func (c *Core) Err() error { return c.err }

// Regs returns the committed architectural register file.
func (c *Core) Regs() [isa.NumRegs]int64 { return c.cregs }

// Hierarchy returns the core's cache stack.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Predictor returns the core's branch predictor.
func (c *Core) Predictor() *branch.Predictor { return c.bp }

// Cycle advances the core by one clock. The caller owns the global clock so
// multiple cores can share LLC and DRAM coherently.
//
//bfetch:hotpath
func (c *Core) Cycle(now uint64) {
	if c.halted {
		return
	}
	c.Stats.Cycles++
	c.commit(now)
	if c.halted {
		return
	}
	c.complete(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	c.prefetchTick(now)
}

//bfetch:hotpath
func (c *Core) entry(r ref) *robEntry {
	e := &c.rob[r.slot]
	if e.seq != r.seq || r.seq == 0 {
		return nil
	}
	return e
}

//bfetch:hotpath
func (c *Core) tailSlot() int {
	j := c.headSlot + c.count
	if j >= len(c.rob) {
		j -= len(c.rob)
	}
	return j
}

// ---------------------------------------------------------------- commit --

//bfetch:hotpath
func (c *Core) commit(now uint64) {
	for n := 0; n < c.cfg.Width && c.count > 0; n++ {
		e := &c.rob[c.headSlot]
		if e.state != sDone || e.doneAt > now {
			return
		}
		if e.faulted {
			// Once-per-run termination path, never reached in steady state.
			c.err = fmt.Errorf("cpu: fault at pc %#x (%s)", e.pc, e.inst) //bfetch:alloc-ok

			c.halted = true
			return
		}
		in := e.inst

		// Architectural effects.
		if in.HasDest() {
			c.cregs[in.DestReg()] = e.destVal
		}
		switch {
		case in.IsStore():
			c.mem.WriteInt64(e.ea, e.stData)
			c.hier.Store(e.ea, now)
			c.pf.OnAccess(prefetch.AccessInfo{PC: e.pc, Addr: e.ea, Write: true})
			c.Stats.StoresCommitted++
		case in.IsLoad():
			c.Stats.LoadsCommitted++
		case in.IsCondBranch():
			c.Stats.BranchesCommitted++
			if e.predTaken != e.actualTaken {
				c.Stats.BranchMispredicts++
			}
			c.bp.Resolve(e.predTaken, e.actualTaken)
			c.bp.Update(e.pc, e.ghr, e.actualTaken, e.pred)
			c.conf.Update(e.pc, e.ghr, e.predTaken == e.actualTaken)
		case in.Op == isa.JR:
			c.bp.UpdateIndirect(e.pc, c.prog.PC(e.actualNext))
		}

		// Rename table release.
		if in.HasDest() {
			r := in.DestReg()
			if c.rat[r].valid && c.rat[r].seq == e.seq {
				c.rat[r].valid = false
			}
		}

		next := uint64(0)
		if e.actualNext >= 0 && e.actualNext < c.prog.Len() {
			next = c.prog.PC(e.actualNext)
		}
		var targetPC uint64
		if in.IsDirect() {
			targetPC = c.prog.PC(in.Target)
		}
		c.pf.OnCommit(prefetch.CommitInfo{
			PC: e.pc, Inst: in, EA: e.ea, Taken: e.actualTaken, Next: next,
			TargetPC: targetPC, Regs: &c.cregs,
		})

		c.Stats.Committed++
		if in.IsStore() && c.sqN > 0 {
			// Stores commit in order: the queue head is this store.
			if c.sqHead++; c.sqHead == len(c.storeQ) {
				c.sqHead = 0
			}
			c.sqN--
		}
		e.seq = 0
		if c.headSlot++; c.headSlot == len(c.rob) {
			c.headSlot = 0
		}
		c.count--

		if in.Op == isa.HALT {
			c.halted = true
			return
		}
	}
}

// -------------------------------------------------------------- complete --

//bfetch:hotpath
func (c *Core) complete(now uint64) {
	// Collect finishing entries, oldest first, so a squash from an older
	// branch naturally invalidates younger resolutions. The collection
	// buffer is persistent scratch — the per-cycle path must not allocate.
	done := c.doneScratch[:0]
	for _, r := range c.inflight {
		if e := c.entry(r); e != nil && e.state == sIssued && e.doneAt <= now {
			done = append(done, r)
		}
	}
	c.doneScratch = done
	for i := 1; i < len(done); i++ {
		for j := i; j > 0 && done[j].seq < done[j-1].seq; j-- {
			done[j], done[j-1] = done[j-1], done[j]
		}
	}
	for _, r := range done {
		e := c.entry(r)
		if e == nil || e.state != sIssued {
			continue // squashed by an older resolution this cycle
		}
		e.state = sDone
		c.finish(e, now)
	}
	c.inflight = c.filterState(c.inflight, sIssued)
}

// finish applies completion effects: value broadcast and branch resolution.
//
//bfetch:hotpath
func (c *Core) finish(e *robEntry, now uint64) {
	in := e.inst
	if in.HasDest() {
		c.broadcast(e)
		if c.pfEx != nil {
			c.pfEx.OnExec(in.DestReg(), e.destVal, e.seq, now)
		}
	}
	if in.IsControl() && e.actualNext != e.predNext {
		c.recover(e, now)
	}
}

//bfetch:hotpath
func (c *Core) broadcast(e *robEntry) {
	for _, cr := range e.cons {
		d := c.entry(cr.ref)
		if d == nil || d.state != sWait {
			continue
		}
		d.srcVal[cr.srcIdx] = e.destVal
		d.nsrc--
		if d.nsrc == 0 {
			d.state = sReady
			c.ready = append(c.ready, cr.ref)
		}
	}
	e.cons = e.cons[:0]
}

// recover squashes everything younger than the resolving control
// instruction and redirects fetch.
//
//bfetch:hotpath
func (c *Core) recover(e *robEntry, now uint64) {
	for c.count > 0 {
		ts := c.tailSlot() - 1
		if ts < 0 {
			ts += len(c.rob)
		}
		t := &c.rob[ts]
		if t.seq <= e.seq {
			break
		}
		c.Stats.Squashed++
		if t.inst.IsLoad() && t.eaValid {
			// A speculative load that already reached the memory system:
			// its cache side-effects (fills, evictions) persist, as on
			// real hardware.
			c.Stats.WrongPathLoads++
		}
		t.seq = 0
		t.cons = t.cons[:0]
		c.count--
	}
	// The fetch queue holds only instructions younger than any ROB entry.
	c.Stats.Squashed += uint64(c.fqN)
	c.fqHead, c.fqN = 0, 0

	// Drop squashed stores from the disambiguation queue (they are at the
	// tail: stores enter in program order).
	for c.sqN > 0 && c.sqAt(c.sqN-1).seq > e.seq {
		c.sqN--
	}

	// Restore the rename table from the branch's snapshot, dropping
	// mappings to entries that committed while the branch was in flight.
	for r := range c.rat {
		s := e.ratSnap[r]
		if s.valid && c.entry(s.ref) == nil {
			s.valid = false
		}
		c.rat[r] = s
	}

	c.ready = c.filterState(c.ready, sReady)
	c.pendLoads = c.filterState(c.pendLoads, sIssued)

	// Redirect fetch.
	if e.actualNext >= 0 && e.actualNext < c.prog.Len() {
		c.fetchPC = e.actualNext
	} else {
		c.fetchPC = -1 // fault propagates when/if e commits
	}
	c.fetchResumeAt = now + c.cfg.RedirectPenalty
	if e.inst.IsCondBranch() {
		c.specGHR = e.ghr.Shift(e.actualTaken)
	} else {
		c.specGHR = e.ghr
	}
}

// filterState keeps refs whose entries are live and in the wanted state.
//
//bfetch:hotpath
func (c *Core) filterState(refs []ref, want entryState) []ref {
	out := refs[:0]
	for _, r := range refs {
		if e := c.entry(r); e != nil && e.state == want {
			out = append(out, r)
		}
	}
	return out
}

// ----------------------------------------------------------------- issue --

func opLatency(op isa.Op, mulLat uint64) uint64 {
	switch op {
	case isa.MUL, isa.MULI:
		return mulLat
	default:
		return 1
	}
}

//bfetch:hotpath
func (c *Core) issue(now uint64) {
	ports := c.cfg.CachePorts

	// Blocked loads retry first (they already consumed an issue slot).
	pend := c.pendLoads[:0]
	for _, r := range c.pendLoads {
		e := c.entry(r)
		if e == nil || e.state != sIssued {
			continue
		}
		if ports > 0 && c.tryLoad(e, now) {
			ports--
		} else {
			pend = append(pend, r)
		}
	}
	c.pendLoads = pend

	if len(c.ready) == 0 {
		return
	}
	// Oldest-first selection.
	for i := 1; i < len(c.ready); i++ {
		for j := i; j > 0 && c.ready[j].seq < c.ready[j-1].seq; j-- {
			c.ready[j], c.ready[j-1] = c.ready[j-1], c.ready[j]
		}
	}
	issued := 0
	rest := c.ready[:0]
	for _, r := range c.ready {
		e := c.entry(r)
		if e == nil || e.state != sReady {
			continue
		}
		if issued >= c.cfg.Width {
			rest = append(rest, r)
			continue
		}
		issued++
		c.execute(e, now, &ports)
	}
	c.ready = rest
}

// execute starts one entry. Loads may divert to the pending list.
//
//bfetch:hotpath
func (c *Core) execute(e *robEntry, now uint64, ports *int) {
	in := e.inst
	e.state = sIssued
	r := ref{slot: e.slot, seq: e.seq}
	switch {
	case in.IsLoad():
		e.ea = uint64(e.srcVal[0] + in.Imm)
		e.eaValid = true
		if !(*ports > 0 && c.tryLoad(e, now)) {
			c.pendLoads = append(c.pendLoads, r)
			return
		}
		*ports--
		return // tryLoad put it in flight
	case in.IsStore():
		e.ea = uint64(e.srcVal[0] + in.Imm)
		e.eaValid = true
		e.stData = e.srcVal[1]
		e.doneAt = now + 1
	case in.IsControl():
		e.actualTaken = emu.BranchTaken(in.Op, e.srcVal[0])
		switch {
		case in.Op == isa.JR:
			tgt, ok := c.prog.Index(uint64(e.srcVal[0]))
			if ok {
				e.actualNext = tgt
			} else {
				e.actualNext = -2
				e.faulted = true
			}
		case e.actualTaken:
			e.actualNext = in.Target
		default:
			e.actualNext = e.idx + 1
		}
		e.doneAt = now + 1
	default:
		v, ok := emu.Eval(in.Op, e.srcVal[0], e.srcVal[1], in.Imm)
		if !ok {
			e.faulted = true
		}
		e.destVal = v
		e.doneAt = now + opLatency(in.Op, c.cfg.MulLatency) - 1
	}
	c.inflight = append(c.inflight, r)
}

// tryLoad attempts to send a load to memory; returns false if blocked by
// disambiguation. A port must be available (checked by the caller).
//
//bfetch:hotpath
func (c *Core) tryLoad(e *robEntry, now uint64) bool {
	fwd, val, blocked := c.disambiguate(e)
	if blocked {
		return false
	}
	if fwd {
		e.destVal = val
		e.doneAt = now + 1
		c.Stats.StoreForwards++
	} else {
		e.destVal = c.mem.ReadInt64(e.ea)
		done, hit := c.hier.Load(e.ea, now)
		e.doneAt = done
		if hit {
			c.Stats.LoadL1Hits++
		} else {
			c.Stats.LoadL1Misses++
		}
		c.pf.OnAccess(prefetch.AccessInfo{PC: e.pc, Addr: e.ea, Hit: hit})
	}
	c.inflight = append(c.inflight, ref{slot: e.slot, seq: e.seq})
	return true
}

// disambiguate scans the in-flight stores older than the load, youngest
// first. It returns forwarding data if the nearest older store to the exact
// address has its data, or blocked if any intervening store address is
// unknown or overlaps inexactly.
//
//bfetch:hotpath
func (c *Core) disambiguate(e *robEntry) (fwd bool, val int64, blocked bool) {
	for i := c.sqN - 1; i >= 0; i-- {
		s := c.entry(c.sqAt(i))
		if s == nil || s.seq >= e.seq {
			continue
		}
		if !s.eaValid {
			return false, 0, true
		}
		if rangesOverlap(s.ea, e.ea) {
			if s.ea == e.ea {
				return true, s.stData, false
			}
			return false, 0, true // partial overlap: wait for the store to drain
		}
	}
	return false, 0, false
}

func rangesOverlap(a, b uint64) bool {
	return a < b+8 && b < a+8
}

// -------------------------------------------------------------- dispatch --

//bfetch:hotpath
func (c *Core) dispatch(now uint64) {
	for n := 0; n < c.cfg.Width; n++ {
		if c.fqN == 0 || c.count == len(c.rob) {
			return
		}
		f := *c.fqAt(0)
		if f.fetchedAt+c.cfg.FrontEndDelay > now {
			return
		}
		if c.fqHead++; c.fqHead == len(c.fq) {
			c.fqHead = 0
		}
		c.fqN--

		seq := c.nextSeq
		c.nextSeq++
		slot := c.tailSlot()
		e := &c.rob[slot]
		*e = robEntry{
			seq: seq, slot: slot, idx: f.idx, pc: f.pc, inst: c.prog.Insts[f.idx],
			predTaken: f.predTaken, predNext: f.predNext, ghr: f.ghr, pred: f.pred,
			actualNext: f.idx + 1, cons: e.cons[:0],
		}
		c.count++
		in := e.inst

		// Rename sources.
		var srcs [2]isa.Reg
		regs := in.SrcRegs(srcs[:0])
		for i, reg := range regs {
			if reg == isa.RZero {
				e.srcVal[i] = 0
				continue
			}
			m := c.rat[reg]
			if !m.valid {
				e.srcVal[i] = c.cregs[reg]
				continue
			}
			p := c.entry(m.ref)
			if p == nil {
				e.srcVal[i] = c.cregs[reg]
				continue
			}
			if p.state == sDone {
				e.srcVal[i] = p.destVal
				continue
			}
			p.cons = append(p.cons, consRef{ref: ref{slot: slot, seq: seq}, srcIdx: i})
			e.nsrc++
		}

		// Rename destination.
		if in.HasDest() {
			c.rat[in.DestReg()] = ratEntry{ref: ref{slot: slot, seq: seq}, valid: true}
		}

		if in.IsStore() {
			st := c.sqHead + c.sqN
			if st >= len(c.storeQ) {
				st -= len(c.storeQ)
			}
			c.storeQ[st] = ref{slot: slot, seq: seq}
			c.sqN++
		}

		// Control instructions snapshot the RAT for recovery and feed the
		// prefetcher's decoded-branch register.
		if in.IsControl() {
			e.ratSnap = c.rat
			e.hasSnap = true
			var target uint64
			if in.IsDirect() {
				target = c.prog.PC(in.Target)
			}
			var predNextPC uint64
			if f.predNext >= 0 && f.predNext < c.prog.Len() {
				predNextPC = c.prog.PC(f.predNext)
			}
			c.pf.OnDecode(prefetch.DecodeInfo{
				PC: f.pc, Op: in.Op, Target: target,
				PredTaken: f.predTaken, PredNext: predNextPC, GHR: uint64(f.ghr),
			})
		}

		// Instructions with no pending sources and no work are born done.
		if e.nsrc == 0 {
			switch {
			case in.Op == isa.NOP, in.Op == isa.HALT:
				e.state = sDone
				e.doneAt = now
			case in.Op == isa.JMP:
				e.state = sDone
				e.doneAt = now
				e.actualTaken = true
				e.actualNext = in.Target
			default:
				e.state = sReady
				c.ready = append(c.ready, ref{slot: slot, seq: seq})
			}
		}
	}
}

// ----------------------------------------------------------------- fetch --

//bfetch:hotpath
func (c *Core) fetch(now uint64) {
	if now < c.fetchResumeAt || c.fetchPC < 0 {
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.fqN >= c.cfg.FetchQueue {
			return
		}
		idx := c.fetchPC
		if idx < 0 || idx >= c.prog.Len() {
			c.fetchPC = -1
			return
		}
		in := c.prog.Insts[idx]
		pc := c.prog.PC(idx)
		f := fqEntry{idx: idx, pc: pc, fetchedAt: now, predNext: idx + 1, ghr: c.specGHR}
		c.Stats.Fetched++

		redirect := false
		switch {
		case in.IsCondBranch():
			f.pred = c.bp.Lookup(pc, c.specGHR)
			f.predTaken = f.pred.Taken
			if f.predTaken {
				f.predNext = in.Target
				redirect = true
			}
			c.specGHR = c.specGHR.Shift(f.predTaken)
		case in.Op == isa.JMP:
			f.predTaken = true
			f.predNext = in.Target
			redirect = true
		case in.Op == isa.JR:
			f.predTaken = true
			if tgt, ok := c.bp.PredictIndirect(pc); ok {
				if tidx, valid := c.prog.Index(tgt); valid {
					f.predNext = tidx
					redirect = true
				} else {
					f.predNext = -1
				}
			} else {
				f.predNext = -1 // stall until the JR resolves
			}
		case in.Op == isa.HALT:
			f.predNext = -1
		}

		ft := c.fqHead + c.fqN
		if ft >= len(c.fq) {
			ft -= len(c.fq)
		}
		c.fq[ft] = f
		c.fqN++
		switch {
		case f.predNext == -1:
			c.fetchPC = -1
			return
		case redirect:
			c.fetchPC = f.predNext
			return // taken control ends the fetch group
		default:
			c.fetchPC = idx + 1
		}
	}
}

// ------------------------------------------------------------- prefetch --

//bfetch:hotpath
func (c *Core) prefetchTick(now uint64) {
	c.pfReqs = c.pf.AppendTick(c.pfReqs[:0], now)
	for _, r := range c.pfReqs {
		if c.hier.Prefetch(r.Addr, r.LoadPC, now) {
			c.Stats.PrefetchIssued++
		} else {
			c.Stats.PrefetchDropped++
		}
	}
}

// ------------------------------------------------------------ next event --

// NoEvent is NextEvent's answer when the core can make no progress on its
// own: it is halted, or fully drained with fetch stalled (a program that ran
// off its end without HALT spins until the cycle bound either way).
const NoEvent = ^uint64(0)

// NextEvent returns the earliest cycle after now at which Cycle can do any
// work, assuming no external state changes. The contract backing the
// event-driven simulation loop: for every cycle t with now < t <
// NextEvent(now), Cycle(t) would be a no-op apart from the Stats.Cycles
// increment — so a caller may skip those cycles entirely (crediting the
// skipped count via AddIdleCycles) and produce bit-identical results to
// ticking every cycle.
//
// Each pipeline stage contributes its wake-up condition; anything that could
// act on the very next cycle (ready entries, blocked loads retrying for a
// port, a busy prefetch engine) pins the next event to now+1.
//
//bfetch:hotpath
func (c *Core) NextEvent(now uint64) uint64 {
	if c.halted {
		return NoEvent
	}
	// Issue has work queued, blocked loads retry every cycle, and a non-idle
	// prefetch engine ticks every cycle: no skipping.
	if len(c.ready) > 0 || len(c.pendLoads) > 0 || !c.pf.Idle() {
		return now + 1
	}
	next := uint64(NoEvent)
	// Commit: the ROB head has completed and waits out its latency.
	if c.count > 0 {
		if e := &c.rob[c.headSlot]; e.state == sDone {
			next = min(next, max(now+1, e.doneAt))
		}
	}
	// Complete: the earliest in-flight completion.
	for _, r := range c.inflight {
		if e := c.entry(r); e != nil && e.state == sIssued {
			next = min(next, max(now+1, e.doneAt))
		}
	}
	// Dispatch: the fetch-queue head clears the front-end delay (and a ROB
	// slot is free; a full ROB drains through commit, covered above).
	if c.fqN > 0 && c.count < len(c.rob) {
		next = min(next, max(now+1, c.fqAt(0).fetchedAt+c.cfg.FrontEndDelay))
	}
	// Fetch: resumes after a redirect once there is queue room (a full
	// queue drains through dispatch, covered above).
	if c.fetchPC >= 0 && c.fqN < c.cfg.FetchQueue {
		next = min(next, max(now+1, c.fetchResumeAt))
	}
	return next
}

// AddIdleCycles credits cycles the event-driven loop skipped: cycles the
// naive loop would have spent calling Cycle with no effect beyond the
// Stats.Cycles increment.
func (c *Core) AddIdleCycles(n uint64) { c.Stats.Cycles += n }

// Run drives the core on its own private clock until it halts, commits
// maxInsts, or exceeds maxCycles; single-core convenience used by tests and
// examples. It returns the number of cycles consumed.
func (c *Core) Run(maxInsts, maxCycles uint64) (uint64, error) {
	start := c.Stats.Cycles
	for now := c.Stats.Cycles; !c.halted && c.Stats.Committed < maxInsts && c.Stats.Cycles-start < maxCycles; now++ {
		c.Cycle(now)
		if c.err != nil {
			break
		}
	}
	return c.Stats.Cycles - start, c.err
}
