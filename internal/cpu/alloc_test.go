package cpu

// These tests turn the zero-allocation claim on the per-cycle kernel from a
// benchmark observation (BenchmarkCoreCycle) into failing assertions, engine
// by engine. The bfetch-lint hotpath analyzer enforces the same contract
// statically; this is the dynamic witness.

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/isb"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/sms"
	"repro/internal/stems"
)

// mkPrefetcher builds one engine; B-Fetch snoops the branch predictor and
// confidence estimator, so constructors receive the core's instances.
type mkPrefetcher func(bp *branch.Predictor, conf *branch.Confidence) prefetch.Prefetcher

var allocEngines = []struct {
	name string
	mk   mkPrefetcher
}{
	{"none", func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher { return prefetch.None{} }},
	{"nextn", func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher { return prefetch.NewNextN(4) }},
	{"stride", func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher {
		return prefetch.NewStride(prefetch.DefaultStrideConfig())
	}},
	{"sms", func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher { return sms.New(sms.DefaultConfig()) }},
	{"stems", func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher {
		return stems.New(stems.DefaultConfig())
	}},
	{"isb", func(*branch.Predictor, *branch.Confidence) prefetch.Prefetcher { return isb.New(isb.DefaultConfig()) }},
	{"bfetch", func(bp *branch.Predictor, conf *branch.Confidence) prefetch.Prefetcher {
		return core.New(core.DefaultConfig(), bp, conf)
	}},
}

// newAllocCore mirrors newTestCore but shares the branch machinery with the
// prefetch engine and wires L1D feedback, matching the sim package's full
// configuration so feedback callbacks run inside the measured window. The
// observability layer is attached exactly as sim assembles it — registry
// collectors, lifecycle classifier, and a sampled tracer in its default-off
// configuration — so the zero-alloc claim covers the instrumented hot path.
func newAllocCore(prog *isa.Program, m *mem.Memory, mk mkPrefetcher) *Core {
	return newAllocCoreCfg(DefaultConfig(), prog, m, mk)
}

func newAllocCoreCfg(cfg Config, prog *isa.Program, m *mem.Memory, mk mkPrefetcher) *Core {
	dram := cache.NewDRAM()
	llc := cache.New(cache.Config{Name: "L3", Bytes: 2 << 20, Ways: 16, Latency: 20}, dram)
	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig(), llc, 0)
	bp := branch.New(branch.DefaultConfig())
	conf := branch.NewConfidence(branch.DefaultConfidenceConfig())
	pf := mk(bp, conf)
	hier.L1D.SetFeedback(pf)

	reg := obs.NewRegistry()
	llc.RegisterObs(reg, "llc.")
	dram.RegisterObs(reg, "dram.")
	hier.L1D.RegisterObs(reg, "c0.l1d.")
	if r, ok := pf.(obs.Registrant); ok {
		r.RegisterObs(reg, "c0.pf.")
	}
	lc := obs.NewLifecycle(reg, "c0.pf.")
	// Sampling off (keep 1 in 2^62): the Record path still runs per event.
	lc.SetTrace(obs.NewTrace(256, 1<<62))
	hier.L1D.SetLifecycle(lc)

	c := New(cfg, prog, m, hier, bp, conf, pf)
	c.RegisterObs(reg, "c0.cpu.")
	return c
}

// TestCycleZeroAlloc drives the full core — fetch through commit, cache
// hierarchy, prefetcher tick, feedback — and requires a steady state of zero
// heap allocations per cycle for every engine.
func TestCycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, eng := range allocEngines {
		t.Run(eng.name, func(t *testing.T) {
			prog, image := benchProgram()
			c := newAllocCore(prog, image, eng.mk)
			var now uint64
			// Warm every internal buffer and table to steady-state capacity.
			for ; now < 50_000; now++ {
				c.Cycle(now)
			}
			if c.Halted() {
				t.Fatal("core halted during warmup")
			}
			avg := testing.AllocsPerRun(2000, func() {
				c.Cycle(now)
				now++
			})
			if avg != 0 {
				t.Errorf("Cycle with %s engine: %.3f allocs/cycle, want 0", eng.name, avg)
			}
		})
	}
}

// TestCycleZeroAllocCPIStack is TestCycleZeroAlloc with cycle attribution
// enabled: the per-cycle charge — head-of-ROB classification, the
// LoadClassified cache path, and the gap-charging arithmetic behind it —
// must add zero heap allocations for every engine, or the CPI stack could
// never ship config-gated on the measurement path.
func TestCycleZeroAllocCPIStack(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultConfig()
	cfg.CPIStack = true
	for _, eng := range allocEngines {
		t.Run(eng.name, func(t *testing.T) {
			prog, image := benchProgram()
			c := newAllocCoreCfg(cfg, prog, image, eng.mk)
			var now uint64
			for ; now < 50_000; now++ {
				c.Cycle(now)
			}
			if c.Halted() {
				t.Fatal("core halted during warmup")
			}
			avg := testing.AllocsPerRun(2000, func() {
				c.Cycle(now)
				now++
			})
			if avg != 0 {
				t.Errorf("Cycle with %s engine + CPI attribution: %.3f allocs/cycle, want 0", eng.name, avg)
			}
			if total := c.Stats.CPI.Total(); total != c.Stats.Cycles {
				t.Errorf("CPI buckets sum to %d, want exactly Cycles = %d", total, c.Stats.Cycles)
			}
		})
	}
}

// TestAppendTickZeroAlloc exercises each engine standalone: a strided miss
// stream over a bounded working set through OnAccess (plus a decode feed for
// the lookahead engine), with AppendTick draining into a reused dst — the
// exact per-cycle contract the sim loop relies on.
func TestAppendTickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	const (
		base  = uint64(0x40000)
		span  = uint64(1 << 16)
		block = uint64(64)
	)
	for _, eng := range allocEngines {
		t.Run(eng.name, func(t *testing.T) {
			bp := branch.New(branch.DefaultConfig())
			conf := branch.NewConfidence(branch.DefaultConfidenceConfig())
			pf := eng.mk(bp, conf)
			dst := make([]prefetch.Request, 0, 128)
			var now, addr uint64
			step := func() {
				pf.OnAccess(prefetch.AccessInfo{PC: 0x100, Addr: base + addr, Hit: false})
				pf.OnDecode(prefetch.DecodeInfo{
					PC: 0x200, PredTaken: true, PredNext: 0x180, Target: 0x180,
				})
				addr = (addr + block) % span
				dst = pf.AppendTick(dst[:0], now)
				now++
			}
			// Warm tables, queue and scratch to steady state.
			for i := 0; i < 20_000; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(2000, step); avg != 0 {
				t.Errorf("%s AppendTick: %.3f allocs/tick, want 0", eng.name, avg)
			}
		})
	}
}
