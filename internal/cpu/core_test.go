package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

func newTestCore(prog *isa.Program, m *mem.Memory, pf prefetch.Prefetcher) *Core {
	if pf == nil {
		pf = prefetch.None{}
	}
	dram := cache.NewDRAM()
	llc := cache.New(cache.Config{Name: "L3", Bytes: 2 << 20, Ways: 16, Latency: 20}, dram)
	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig(), llc, 0)
	bp := branch.New(branch.DefaultConfig())
	conf := branch.NewConfidence(branch.DefaultConfidenceConfig())
	return New(DefaultConfig(), prog, m, hier, bp, conf, pf)
}

// runBoth executes the program on the functional emulator and the OoO core
// and checks that their architectural outcomes agree.
func runBoth(t *testing.T, prog *isa.Program, image *mem.Memory, maxInsts uint64) (*Core, *emu.CPU) {
	t.Helper()
	memA := image.Clone()
	memB := image.Clone()

	ref := emu.New(prog, memA)
	if _, err := ref.Run(maxInsts); err != nil {
		t.Fatalf("emulator: %v", err)
	}
	if !ref.Halted {
		t.Fatalf("reference did not halt within %d instructions", maxInsts)
	}

	core := newTestCore(prog, memB, nil)
	if _, err := core.Run(maxInsts+10, 100*maxInsts+10000); err != nil {
		t.Fatalf("core: %v", err)
	}
	if !core.Halted() {
		t.Fatalf("core did not halt (committed %d, cycles %d)",
			core.Stats.Committed, core.Stats.Cycles)
	}

	if core.Stats.Committed != ref.Retired {
		t.Errorf("committed %d instructions, emulator retired %d",
			core.Stats.Committed, ref.Retired)
	}
	cregs := core.Regs()
	for r := 0; r < isa.NumRegs; r++ {
		if cregs[r] != ref.Regs[r] {
			t.Errorf("r%d = %d, emulator has %d", r, cregs[r], ref.Regs[r])
		}
	}
	if !mem.Equal(memA, memB) {
		t.Error("memory images diverged")
	}
	return core, ref
}

func TestSimpleArithmeticProgram(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		add  r4, r3, r3
		sub  r5, r4, r1
		halt
	`)
	runBoth(t, prog, mem.New(), 100)
}

func TestLoopProgram(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r1, 100
		movi r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	core, _ := runBoth(t, prog, mem.New(), 10000)
	if core.Regs()[2] != 5050 {
		t.Errorf("sum = %d", core.Regs()[2])
	}
}

func TestMemoryLoopProgram(t *testing.T) {
	image := mem.New()
	for i := 0; i < 64; i++ {
		image.WriteInt64(uint64(0x10000+8*i), int64(i*3))
	}
	prog := isa.MustAssemble(`
		movi r1, 0x10000
		movi r2, 64
		movi r3, 0
	loop:
		ld   r4, 0(r1)
		add  r3, r3, r4
		st   r3, 2048(r1)     ; running prefix sums
		addi r1, r1, 8
		addi r2, r2, -1
		bnez r2, loop
		halt
	`)
	core, _ := runBoth(t, prog, image, 10000)
	if want := int64(63 * 64 / 2 * 3); core.Regs()[3] != want {
		t.Errorf("sum = %d, want %d", core.Regs()[3], want)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// The load reads an address stored one instruction earlier, forcing
	// either a forward or a stall; the result must be architecturally right.
	prog := isa.MustAssemble(`
		movi r1, 0x20000
		movi r2, 42
		st   r2, 0(r1)
		ld   r3, 0(r1)
		addi r3, r3, 1
		st   r3, 8(r1)
		ld   r4, 8(r1)
		halt
	`)
	core, _ := runBoth(t, prog, mem.New(), 100)
	if core.Regs()[4] != 43 {
		t.Errorf("r4 = %d", core.Regs()[4])
	}
	if core.Stats.StoreForwards == 0 {
		t.Log("no forwards recorded (loads may have waited out the stores); architecture still correct")
	}
}

func TestPartialOverlapStall(t *testing.T) {
	// An 8-byte store at X overlaps a load at X+4 (misaligned on purpose):
	// the load must stall until the store drains, then read combined bytes.
	prog := isa.MustAssemble(`
		movi r1, 0x30000
		movi r2, -1
		st   r2, 0(r1)
		ld   r3, 4(r1)
		halt
	`)
	runBoth(t, prog, mem.New(), 100)
}

func TestBranchDiamonds(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r1, 50
		movi r2, 0
		movi r3, 0
	loop:
		andi r4, r1, 1
		beqz r4, even
		addi r2, r2, 1     ; odd arm
		jmp  join
	even:
		addi r3, r3, 1
	join:
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	core, _ := runBoth(t, prog, mem.New(), 10000)
	if core.Regs()[2] != 25 || core.Regs()[3] != 25 {
		t.Errorf("arms = %d/%d", core.Regs()[2], core.Regs()[3])
	}
	if core.Stats.BranchesCommitted == 0 {
		t.Error("no branches committed")
	}
}

func TestIndirectJumpProgram(t *testing.T) {
	// A jump table: jr alternates between two handlers.
	base := int64(isa.DefaultTextBase)
	b := isa.NewBuilder()
	loop := b.NewLabel()
	h1 := b.NewLabel()
	h2 := b.NewLabel()
	join := b.NewLabel()
	b.Movi(isa.R(1), 40) // iterations
	b.Movi(isa.R(2), 0)  // acc
	b.Bind(loop)         // 2
	b.Andi(isa.R(3), isa.R(1), 1)
	b.Beqz(isa.R(3), h2) // even → handler 2 via branch for variety
	b.Movi(isa.R(4), 0)  // will hold target
	b.Bind(h1)           // filled below: compute jr target to 'join'
	// Build target address of join into r4 and jump indirectly.
	// join's index is patched after assembly via the label; we use a
	// placeholder movi fixed up manually below.
	b.Jr(isa.R(4))
	b.Bind(h2)
	b.Addi(isa.R(2), isa.R(2), 10)
	b.Bind(join)
	b.Addi(isa.R(1), isa.R(1), -1)
	b.Bnez(isa.R(1), loop)
	b.Halt()
	prog := b.MustProgram()
	// Patch the movi (index 4) with join's byte address: the addi r1,r1,-1
	// preceding the final bnez.
	ji := len(prog.Insts) - 3
	prog.Insts[4].Imm = base + int64(4*ji)
	runBoth(t, prog, mem.New(), 10000)
}

func TestMispredictRecoveryCorrectness(t *testing.T) {
	// A data-dependent unpredictable branch pattern (xorshift) stresses
	// squash/recovery; correctness must hold regardless of prediction.
	prog := isa.MustAssemble(`
		movi r1, 12345
		movi r2, 200      ; iterations
		movi r3, 0
	loop:
		; xorshift step
		slli r4, r1, 13
		xor  r1, r1, r4
		srli r4, r1, 7
		xor  r1, r1, r4
		slli r4, r1, 17
		xor  r1, r1, r4
		andi r5, r1, 1
		beqz r5, skip
		addi r3, r3, 1
	skip:
		addi r2, r2, -1
		bnez r2, loop
		halt
	`)
	core, _ := runBoth(t, prog, mem.New(), 100000)
	if core.Stats.BranchMispredicts == 0 {
		t.Error("xorshift branch never mispredicted — suspicious")
	}
	if core.Stats.Squashed == 0 {
		t.Error("no squashes despite mispredicts")
	}
}

func TestZeroRegInPipeline(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r31, 77
		add  r1, r31, r31
		movi r2, 5
		add  r3, r2, r31
		halt
	`)
	core, _ := runBoth(t, prog, mem.New(), 100)
	if core.Regs()[31] != 0 || core.Regs()[1] != 0 || core.Regs()[3] != 5 {
		t.Errorf("regs: r31=%d r1=%d r3=%d", core.Regs()[31], core.Regs()[1], core.Regs()[3])
	}
}

func TestFaultOnBadJR(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r1, 12      ; not a text address
		jr   r1
		halt
	`)
	core := newTestCore(prog, mem.New(), nil)
	_, err := core.Run(1000, 100000)
	if err == nil {
		t.Fatal("bad jr did not fault")
	}
}

func TestIPCSanity(t *testing.T) {
	// A long independent ALU chain should sustain IPC well above 1 on a
	// 4-wide machine, and a serial dependency chain should be near 1.
	b := isa.NewBuilder()
	for i := 0; i < 2000; i++ {
		b.Addi(isa.R(1+i%8), isa.RZero, int64(i))
	}
	b.Halt()
	core := newTestCore(b.MustProgram(), mem.New(), nil)
	if _, err := core.Run(1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	if ipc := core.Stats.IPC(); ipc < 2.0 {
		t.Errorf("independent-chain IPC = %.2f, want > 2", ipc)
	}

	b2 := isa.NewBuilder()
	for i := 0; i < 2000; i++ {
		b2.Addi(isa.R(1), isa.R(1), 1)
	}
	b2.Halt()
	core2 := newTestCore(b2.MustProgram(), mem.New(), nil)
	if _, err := core2.Run(1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	if ipc := core2.Stats.IPC(); ipc > 1.1 {
		t.Errorf("serial-chain IPC = %.2f, want ≈1", ipc)
	}
}

func TestWidthScaling(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 3000; i++ {
			b.Addi(isa.R(1+i%12), isa.RZero, int64(i))
		}
		b.Halt()
		return b.MustProgram()
	}
	ipc := map[int]float64{}
	for _, w := range []int{2, 4, 8} {
		dram := cache.NewDRAM()
		llc := cache.New(cache.Config{Name: "L3", Bytes: 2 << 20, Ways: 16, Latency: 20}, dram)
		hier := cache.NewHierarchy(cache.DefaultHierarchyConfig(), llc, 0)
		core := New(DefaultConfig().WithWidth(w), build(), mem.New(), hier,
			branch.New(branch.DefaultConfig()), branch.NewConfidence(branch.DefaultConfidenceConfig()),
			prefetch.None{})
		if _, err := core.Run(1<<20, 1<<20); err != nil {
			t.Fatal(err)
		}
		ipc[w] = core.Stats.IPC()
	}
	if !(ipc[2] < ipc[4] && ipc[4] < ipc[8]) {
		t.Errorf("IPC not monotonic in width: %v", ipc)
	}
}

func TestPrefetcherHooksFire(t *testing.T) {
	rec := &hookRecorder{}
	image := mem.New()
	prog := isa.MustAssemble(`
		movi r1, 0x40000
		movi r2, 32
	loop:
		ld   r3, 0(r1)
		addi r1, r1, 64
		addi r2, r2, -1
		bnez r2, loop
		halt
	`)
	core := newTestCore(prog, image, rec)
	if _, err := core.Run(10000, 100000); err != nil {
		t.Fatal(err)
	}
	if rec.decodes == 0 {
		t.Error("no decode hooks")
	}
	if rec.commits == 0 {
		t.Error("no commit hooks")
	}
	if rec.accesses == 0 {
		t.Error("no access hooks")
	}
	if rec.ticks == 0 {
		t.Error("no tick hooks")
	}
	if rec.execs == 0 {
		t.Error("no exec-observer samples")
	}
}

type hookRecorder struct {
	prefetch.Base
	decodes, commits, accesses, ticks, execs int
}

func (h *hookRecorder) Name() string                 { return "recorder" }
func (h *hookRecorder) OnDecode(prefetch.DecodeInfo) { h.decodes++ }
func (h *hookRecorder) OnCommit(prefetch.CommitInfo) { h.commits++ }
func (h *hookRecorder) OnAccess(prefetch.AccessInfo) { h.accesses++ }
func (h *hookRecorder) AppendTick(dst []prefetch.Request, _ uint64) []prefetch.Request {
	h.ticks++
	return dst
}
func (h *hookRecorder) OnExec(isa.Reg, int64, uint64, uint64) { h.execs++ }

// --- Randomized differential testing -----------------------------------

// randomProgram builds a random but guaranteed-terminating program: nested
// counted loops whose bodies mix ALU ops, masked loads/stores into a scratch
// region, and data-dependent branches.
func randomProgram(rng *rand.Rand) (*isa.Program, *mem.Memory) {
	b := isa.NewBuilder()
	image := mem.New()
	const scratch = 0x100000
	for i := 0; i < 512; i++ {
		image.WriteInt64(scratch+8*uint64(i), rng.Int63n(1<<30))
	}

	// r16 = scratch base; r1..r8 data regs; r9 temp addr; r10-12 counters.
	b.Movi(isa.R(16), scratch)
	for r := 1; r <= 8; r++ {
		b.Movi(isa.R(r), rng.Int63n(1000)-500)
	}

	emitBody := func(depth int) {
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			rd := isa.R(1 + rng.Intn(8))
			ra := isa.R(1 + rng.Intn(8))
			rb := isa.R(1 + rng.Intn(8))
			switch rng.Intn(8) {
			case 0:
				b.Add(rd, ra, rb)
			case 1:
				b.Sub(rd, ra, rb)
			case 2:
				b.Xor(rd, ra, rb)
			case 3:
				b.Addi(rd, ra, rng.Int63n(64)-32)
			case 4:
				b.Mul(rd, ra, rb)
			case 5: // masked load
				b.Andi(isa.R(9), ra, 0xFF8)
				b.Add(isa.R(9), isa.R(9), isa.R(16))
				b.Ld(rd, isa.R(9), 0)
			case 6: // masked store
				b.Andi(isa.R(9), ra, 0xFF8)
				b.Add(isa.R(9), isa.R(9), isa.R(16))
				b.St(rb, isa.R(9), 0)
			case 7: // short data-dependent diamond
				skip := b.NewLabel()
				b.Andi(isa.R(9), ra, 1)
				b.Beqz(isa.R(9), skip)
				b.Addi(rd, rd, 3)
				b.Bind(skip)
			}
		}
		_ = depth
	}

	// Two sequential counted loops, the second nested.
	cnt := isa.R(10)
	b.Movi(cnt, int64(4+rng.Intn(12)))
	l1 := b.Here()
	emitBody(0)
	b.Addi(cnt, cnt, -1)
	b.Bnez(cnt, l1)

	outer, inner := isa.R(11), isa.R(12)
	b.Movi(outer, int64(3+rng.Intn(6)))
	l2 := b.Here()
	b.Movi(inner, int64(3+rng.Intn(6)))
	l3 := b.Here()
	emitBody(1)
	b.Addi(inner, inner, -1)
	b.Bnez(inner, l3)
	b.Addi(outer, outer, -1)
	b.Bnez(outer, l2)

	b.Halt()
	return b.MustProgram(), image
}

func TestRandomDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			prog, image := randomProgram(rng)
			runBoth(t, prog, image, 2_000_000)
		})
	}
}
