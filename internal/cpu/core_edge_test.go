package cpu

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Edge-case and microarchitectural-behaviour tests beyond the differential
// suite in core_test.go.

func TestROBFillStall(t *testing.T) {
	// A load that misses to DRAM at the head blocks commit; the ROB must
	// fill and dispatch must stall rather than wrap or corrupt state.
	b := isa.NewBuilder()
	b.Movi(isa.R(1), 0x100000)
	b.Ld(isa.R(2), isa.R(1), 0) // cold DRAM miss (~230 cycles)
	for i := 0; i < 400; i++ {  // more than ROB entries of fodder
		b.Addi(isa.R(3), isa.R(3), 1)
	}
	b.Halt()
	core := newTestCore(b.MustProgram(), mem.New(), nil)
	if _, err := core.Run(1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Fatal("did not halt")
	}
	if core.Regs()[3] != 400 {
		t.Errorf("r3 = %d", core.Regs()[3])
	}
}

func TestWrongPathLoadsCounted(t *testing.T) {
	// A hard-to-predict branch guards a load; wrong-path speculation should
	// issue (and squash) some of those loads.
	prog := isa.MustAssemble(`
		movi r1, 12345
		movi r2, 300
		movi r7, 0x50000
	loop:
		slli r4, r1, 13
		xor  r1, r1, r4
		srli r4, r1, 7
		xor  r1, r1, r4
		andi r5, r1, 1
		beqz r5, skip
		ld   r6, 0(r7)
		addi r7, r7, 64
	skip:
		addi r2, r2, -1
		bnez r2, loop
		halt
	`)
	core := newTestCore(prog, mem.New(), nil)
	if _, err := core.Run(1<<20, 1<<21); err != nil {
		t.Fatal(err)
	}
	if core.Stats.BranchMispredicts == 0 {
		t.Skip("predictor got everything right; nothing to observe")
	}
	if core.Stats.WrongPathLoads == 0 {
		t.Error("mispredicts occurred but no wrong-path loads were counted")
	}
}

func TestIndirectJumpViaBTB(t *testing.T) {
	// A JR with a stable target: after BTB training, fetch should follow it
	// without stalling, visible as improved IPC versus the first iterations.
	base := int64(isa.DefaultTextBase)
	b := isa.NewBuilder()
	b.Movi(isa.R(1), 2000) // iterations
	loop := b.Here()
	b.Movi(isa.R(2), base+4*4) // address of 'land'
	b.Jr(isa.R(2))
	b.Nop() // skipped
	// land:
	b.Addi(isa.R(1), isa.R(1), -1)
	b.Bnez(isa.R(1), loop)
	b.Halt()
	core := newTestCore(b.MustProgram(), mem.New(), nil)
	if _, err := core.Run(1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Fatal("did not halt")
	}
	if ipc := core.Stats.IPC(); ipc < 0.8 {
		t.Errorf("JR loop IPC = %.3f; BTB steering seems broken", ipc)
	}
}

func TestPrefetchIssueAndDropStats(t *testing.T) {
	// A prefetcher that always asks for the same two blocks: the first
	// requests issue, later ones are dropped as resident.
	pf := &fixedPF{addrs: []uint64{0x77000, 0x77040}}
	prog := isa.MustAssemble(`
		movi r10, 500
	loop:
		addi r10, r10, -1
		bnez r10, loop
		halt
	`)
	core := newTestCore(prog, mem.New(), pf)
	if _, err := core.Run(1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	if core.Stats.PrefetchIssued != 2 {
		t.Errorf("issued = %d, want 2", core.Stats.PrefetchIssued)
	}
	if core.Stats.PrefetchDropped == 0 {
		t.Error("no drops despite repeated requests")
	}
}

type fixedPF struct {
	prefetch.Base
	addrs []uint64
}

func (f *fixedPF) Name() string { return "fixed" }
func (f *fixedPF) AppendTick(dst []prefetch.Request, _ uint64) []prefetch.Request {
	for _, a := range f.addrs {
		dst = append(dst, prefetch.Request{Addr: a, LoadPC: 0x1000})
	}
	return dst
}

func TestHaltedCoreCycleIsNoop(t *testing.T) {
	core := newTestCore(isa.MustAssemble("halt"), mem.New(), nil)
	if _, err := core.Run(10, 1000); err != nil {
		t.Fatal(err)
	}
	cycles := core.Stats.Cycles
	core.Cycle(cycles + 1)
	core.Cycle(cycles + 2)
	if core.Stats.Cycles != cycles {
		t.Error("halted core kept counting cycles")
	}
}

func TestRunCycleBound(t *testing.T) {
	// An infinite loop must stop at the cycle bound without error.
	core := newTestCore(isa.MustAssemble("loop: jmp loop"), mem.New(), nil)
	n, err := core.Run(1<<40, 500)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("cycles = %d, want 500", n)
	}
	if core.Halted() {
		t.Error("infinite loop halted")
	}
}

func TestSquashRestoresRATAcrossCommittedProducers(t *testing.T) {
	// Construct a case where a producer commits while a mispredicting
	// branch is in flight: the RAT restore must fall back to the committed
	// register file, not a recycled ROB slot. The xorshift pattern forces
	// mispredicts; correctness is checked architecturally.
	prog := isa.MustAssemble(`
		movi r1, 99
		movi r2, 400
		movi r3, 0
	loop:
		mul  r4, r1, r1      ; long-latency producer
		slli r5, r1, 13
		xor  r1, r1, r5
		srli r5, r1, 7
		xor  r1, r1, r5
		andi r6, r1, 1
		beqz r6, skip
		add  r3, r3, r4      ; consumer of r4 across the branch
	skip:
		addi r2, r2, -1
		bnez r2, loop
		halt
	`)
	runBoth(t, prog, mem.New(), 1<<20)
}

func TestFetchStopsAtProgramEnd(t *testing.T) {
	// Fall through past the last instruction (no halt on the wrong path):
	// fetch must stall gracefully, and the committed path must still halt.
	prog := isa.MustAssemble(`
		movi r1, 1
		bnez r1, done     ; always taken, but predictor may guess wrong
		addi r2, r2, 1
	done:
		halt
	`)
	core := newTestCore(prog, mem.New(), nil)
	if _, err := core.Run(1000, 100000); err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Error("did not halt")
	}
	if core.Regs()[2] != 0 {
		t.Errorf("wrong-path effect committed: r2=%d", core.Regs()[2])
	}
}

func TestMulLatencyConfig(t *testing.T) {
	// A serial MUL chain's runtime scales with the configured latency.
	build := func() *isa.Program {
		b := isa.NewBuilder()
		b.Movi(isa.R(1), 3)
		for i := 0; i < 500; i++ {
			b.Mul(isa.R(1), isa.R(1), isa.R(1))
		}
		b.Halt()
		return b.MustProgram()
	}
	cycles := map[uint64]uint64{}
	for _, lat := range []uint64{1, 4} {
		cfg := DefaultConfig()
		cfg.MulLatency = lat
		dram := cache.NewDRAM()
		llc := cache.New(cache.Config{Name: "L3", Bytes: 1 << 20, Ways: 16, Latency: 20}, dram)
		hier := cache.NewHierarchy(cache.DefaultHierarchyConfig(), llc, 0)
		core := New(cfg, build(), mem.New(), hier,
			branch.New(branch.DefaultConfig()),
			branch.NewConfidence(branch.DefaultConfidenceConfig()), prefetch.None{})
		if _, err := core.Run(1<<20, 1<<20); err != nil {
			t.Fatal(err)
		}
		cycles[lat] = core.Stats.Cycles
	}
	if cycles[4] < cycles[1]+1000 {
		t.Errorf("mul latency ignored: %v", cycles)
	}
}

func TestCommitWidthBound(t *testing.T) {
	// IPC can never exceed the configured width.
	b := isa.NewBuilder()
	for i := 0; i < 4000; i++ {
		b.Addi(isa.R(1+i%16), isa.RZero, 1)
	}
	b.Halt()
	for _, w := range []int{2, 4} {
		cfg := DefaultConfig().WithWidth(w)
		dram := cache.NewDRAM()
		llc := cache.New(cache.Config{Name: "L3", Bytes: 1 << 20, Ways: 16, Latency: 20}, dram)
		hier := cache.NewHierarchy(cache.DefaultHierarchyConfig(), llc, 0)
		core := New(cfg, b.MustProgram(), mem.New(), hier,
			branch.New(branch.DefaultConfig()),
			branch.NewConfidence(branch.DefaultConfidenceConfig()), prefetch.None{})
		if _, err := core.Run(1<<20, 1<<20); err != nil {
			t.Fatal(err)
		}
		if ipc := core.Stats.IPC(); ipc > float64(w) {
			t.Errorf("width %d: IPC %.3f exceeds width", w, ipc)
		}
	}
}
