package cpu

import "repro/internal/obs"

// Config sizes the out-of-order core. The defaults reproduce the paper's
// Table II baseline: a 4-wide machine with a 192-entry ROB.
type Config struct {
	Width      int // fetch/dispatch/issue/commit width
	ROBEntries int
	CachePorts int // loads issued to the L1D per cycle

	// FrontEndDelay is the fetch→dispatch latency in cycles; together with
	// RedirectPenalty it sets the branch misprediction penalty.
	FrontEndDelay   uint64
	RedirectPenalty uint64

	// FetchQueue is the decoupling buffer between fetch and dispatch.
	FetchQueue int

	// MulLatency is the integer multiply latency; all other ALU ops take
	// one cycle.
	MulLatency uint64

	// CPIStack enables per-cycle CPI-stack attribution (Stats.CPI): every
	// counted cycle is charged to exactly one obs.CPIBucket. Off by default;
	// the attribution path adds a head-of-ROB classification per cycle but
	// no allocation.
	CPIStack bool
}

// DefaultConfig is the Table II core.
func DefaultConfig() Config {
	return Config{
		Width:           4,
		ROBEntries:      192,
		CachePorts:      2,
		FrontEndDelay:   3,
		RedirectPenalty: 3,
		FetchQueue:      16,
		MulLatency:      3,
	}
}

// WithWidth returns the configuration adjusted for an n-wide pipeline, used
// by the Figure 14 sensitivity study. Cache ports scale with width as wider
// machines need more load bandwidth.
func (c Config) WithWidth(n int) Config {
	c.Width = n
	c.FetchQueue = 4 * n
	c.CachePorts = max(1, n/2)
	return c
}

// Stats aggregates one core's execution counters.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64
	Squashed  uint64 // instructions flushed on mispredictions

	BranchesCommitted uint64
	BranchMispredicts uint64

	LoadsCommitted  uint64
	StoresCommitted uint64
	LoadL1Hits      uint64
	LoadL1Misses    uint64
	StoreForwards   uint64
	WrongPathLoads  uint64

	PrefetchIssued  uint64 // requests accepted by the hierarchy
	PrefetchDropped uint64 // requests dropped as already resident

	// CPI is the cycle-attribution stack (Config.CPIStack); with attribution
	// enabled, CPI.Total() == Cycles exactly. Living inside Stats, it is
	// zeroed by the window reset (Stats{}) with every other counter.
	CPI obs.CPIStack
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// BranchMissRate returns committed-branch mispredictions per committed
// branch.
func (s Stats) BranchMissRate() float64 {
	if s.BranchesCommitted == 0 {
		return 0
	}
	return float64(s.BranchMispredicts) / float64(s.BranchesCommitted)
}

// RegisterObs exports the core's execution counters into the metrics
// registry under prefix (e.g. "c0.cpu."). Collectors read the live Stats
// struct, so the per-cycle kernel keeps its plain field increments.
func (c *Core) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"cycles", func() uint64 { return c.Stats.Cycles })
	reg.Func(prefix+"committed", func() uint64 { return c.Stats.Committed })
	reg.Func(prefix+"fetched", func() uint64 { return c.Stats.Fetched })
	reg.Func(prefix+"squashed", func() uint64 { return c.Stats.Squashed })
	reg.Func(prefix+"branches", func() uint64 { return c.Stats.BranchesCommitted })
	reg.Func(prefix+"branch_mispredicts", func() uint64 { return c.Stats.BranchMispredicts })
	reg.Func(prefix+"loads", func() uint64 { return c.Stats.LoadsCommitted })
	reg.Func(prefix+"stores", func() uint64 { return c.Stats.StoresCommitted })
	reg.Func(prefix+"load_l1_hits", func() uint64 { return c.Stats.LoadL1Hits })
	reg.Func(prefix+"load_l1_misses", func() uint64 { return c.Stats.LoadL1Misses })
	reg.Func(prefix+"store_forwards", func() uint64 { return c.Stats.StoreForwards })
	reg.Func(prefix+"wrong_path_loads", func() uint64 { return c.Stats.WrongPathLoads })
	reg.Func(prefix+"pf_requests", func() uint64 { return c.Stats.PrefetchIssued })
	reg.Func(prefix+"pf_requests_dropped", func() uint64 { return c.Stats.PrefetchDropped })
	if c.cfg.CPIStack {
		for b := obs.CPIBucket(0); b < obs.NumCPIBuckets; b++ {
			b := b
			reg.Func(prefix+"cpi."+obs.CPIBucketNames[b], func() uint64 { return c.Stats.CPI[b] })
		}
	}
}
