package cpu

import (
	"repro/internal/cache"
	"repro/internal/obs"
)

// CPI-stack charging (cfg.CPIStack). Exactly one bucket is charged per
// counted cycle, in the same place Stats.Cycles is incremented, so
// sum(Stats.CPI) == Stats.Cycles holds by construction — the report
// validator re-checks it on every emitted run.
//
// Charging rules (head-of-ROB attribution):
//
//   - a cycle that commits at least one instruction, or that halts the
//     core, is Base;
//   - an empty-ROB cycle inside a redirect shadow (now still before
//     fetchResumeAt + FrontEndDelay, the cycle the first refetched
//     instruction can dispatch) is BranchRecovery; other empty-ROB cycles
//     are FetchStall;
//   - a cycle whose ROB head is a load parked on disambiguation or a cache
//     port is StoreQueue (near-empty by construction: the blocking stores
//     are older than the head, so they have almost always already drained —
//     the bucket catches the port-starvation residue);
//   - a cycle whose ROB head is a load in flight to memory replays the
//     load's cache.LoadClass as a piecewise walk over the stall: the cycles
//     the request spent queued (LLC bank port, then MSHR file, then DRAM
//     channel) charge the queue buckets, and the remainder charges the
//     serving level (L1 → Base, L2 → L1DMiss, LLC/DRAM → their buckets) —
//     or PrefetchLate when the load merged with an in-flight prefetch fill;
//   - every other head state (issued ALU/branch/store latency, an
//     issue-scheduling cycle) is Base. The head is never operand-waiting:
//     its producers are older, hence already committed and broadcast.
//
// Determinism. classify is a pure function of the core state and `now`, and
// the NextEvent no-op contract guarantees that state is frozen across an
// event-loop gap — so AddIdleCycles can replay the per-cycle charges as a
// piecewise-constant segment walk (chargeGap), bit-identical to the naive
// loop charging every cycle.

// chargeCycle charges the cycle just processed by commit(now); committed is
// Stats.Committed sampled before commit ran.
//
//bfetch:hotpath
func (c *Core) chargeCycle(now, committed uint64) {
	if c.Stats.Committed != committed || c.halted {
		c.Stats.CPI[obs.CPIBase]++
		return
	}
	c.Stats.CPI[c.classify(now)]++
}

// classify names the bucket for a cycle that committed nothing.
//
//bfetch:hotpath
func (c *Core) classify(now uint64) obs.CPIBucket {
	if c.count == 0 {
		if c.fetchResumeAt > 0 && now < c.fetchResumeAt+c.cfg.FrontEndDelay {
			return obs.CPIBranchRecovery
		}
		return obs.CPIFetchStall
	}
	e := &c.rob[c.headSlot]
	if e.inst.IsLoad() && e.state == sIssued {
		if c.pendBM[e.slot>>6]&(1<<(uint(e.slot)&63)) != 0 {
			return obs.CPIStoreQueue
		}
		if e.memClass {
			return c.classifyLoad(e, now)
		}
	}
	return obs.CPIBase
}

// classifyLoad walks the head load's stall offset across its LoadClass
// segments: queue waits first (in hierarchy order), then the serving level.
//
//bfetch:hotpath
func (c *Core) classifyLoad(e *robEntry, now uint64) obs.CPIBucket {
	o := now - e.memStart - 1
	if o < e.cl.BankQ {
		return obs.CPILLCBankQueue
	}
	o -= e.cl.BankQ
	if o < e.cl.MSHRQ {
		return obs.CPIMSHR
	}
	o -= e.cl.MSHRQ
	if o < e.cl.ChanQ {
		return obs.CPIDRAMChanQueue
	}
	return loadLevelBucket(e)
}

//bfetch:hotpath
func loadLevelBucket(e *robEntry) obs.CPIBucket {
	if e.cl.PFLate {
		return obs.CPIPrefetchLate
	}
	switch e.cl.Level {
	case cache.LoadLevelL1:
		return obs.CPIBase
	case cache.LoadLevelL2:
		return obs.CPIL1DMiss
	case cache.LoadLevelLLC:
		return obs.CPILLC
	}
	return obs.CPIDRAM
}

// chargeGap replays the per-cycle charges for the skipped cycles [from, end).
// The NextEvent contract freezes every classify input across the gap except
// `now` itself, which only moves charges across fixed absolute-cycle
// boundaries — so a segment walk reproduces the naive loop's per-cycle
// charges exactly.
//
//bfetch:hotpath
func (c *Core) chargeGap(from, end uint64) {
	if c.count == 0 {
		if c.fetchResumeAt > 0 {
			if b := c.fetchResumeAt + c.cfg.FrontEndDelay; from < b {
				r := min(end, b)
				c.Stats.CPI[obs.CPIBranchRecovery] += r - from
				from = r
			}
		}
		c.Stats.CPI[obs.CPIFetchStall] += end - from
		return
	}
	// Gap cycles have empty ready/pend bitmaps, so a non-empty ROB's head is
	// an in-flight entry: a load in memory walks its segments, anything else
	// (ALU/branch latency, a forwarded load) is Base — exactly classify's
	// verdict for each skipped cycle.
	e := &c.rob[c.headSlot]
	if !e.inst.IsLoad() || e.state != sIssued || !e.memClass {
		c.Stats.CPI[obs.CPIBase] += end - from
		return
	}
	b := e.memStart + 1 + e.cl.BankQ
	if from < b {
		r := min(end, b)
		c.Stats.CPI[obs.CPILLCBankQueue] += r - from
		from = r
	}
	b += e.cl.MSHRQ
	if from < b {
		r := min(end, b)
		c.Stats.CPI[obs.CPIMSHR] += r - from
		from = r
	}
	b += e.cl.ChanQ
	if from < b {
		r := min(end, b)
		c.Stats.CPI[obs.CPIDRAMChanQueue] += r - from
		from = r
	}
	c.Stats.CPI[loadLevelBucket(e)] += end - from
}
