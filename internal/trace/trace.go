// Package trace records and replays execution traces: the committed
// instruction stream with memory effective addresses and branch outcomes.
//
// Traces serve two purposes in this repository. They let workload authors
// inspect what a kernel actually does (cmd/bfetch-asm can dump them), and
// they provide a compact interchange format so access patterns captured
// from one simulator version can be replayed against another's cache stack
// — the usual methodology for validating memory-system changes without
// re-running the core model.
//
// The format is a little-endian binary stream with a small header followed
// by one variable-length record per event; see the encoding constants
// below. It round-trips exactly and is versioned.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Magic and version identify the stream format.
const (
	Magic   = 0x42465443 // "BFTC"
	Version = 1
)

// Kind classifies one trace event.
type Kind uint8

const (
	KindLoad Kind = iota + 1
	KindStore
	KindBranch // conditional branch
	KindJump   // unconditional control (direct or indirect)

	// Prefetch lifecycle kinds, emitted by the observability layer
	// (internal/obs): one record per sampled lifecycle transition of a
	// prefetched L1D block. Unlike the instruction kinds above they carry a
	// cycle stamp; PC is the load the prefetch was issued on behalf of and
	// Addr is the block address.
	KindPrefIssue   // prefetch fill installed in the cache
	KindPrefUse     // first demand touch of a prefetched block, fill complete
	KindPrefLate    // first demand touch while the fill was still in flight
	KindPrefEvict   // prefetched block evicted untouched
	KindPrefPollute // demand re-miss of a block a prefetch fill evicted
)

// IsPrefetch reports whether the kind is a prefetch lifecycle record (cycle
// stamped, block-addressed) rather than a committed-instruction record.
func (k Kind) IsPrefetch() bool { return k >= KindPrefIssue && k <= KindPrefPollute }

// Event is one committed instruction worth tracing, or one prefetch
// lifecycle transition. Non-memory, non-control instructions are not
// recorded (they carry no information the consumers use); PC gaps are
// implicit in the records.
type Event struct {
	Kind  Kind
	PC    uint64
	Addr  uint64 // loads/stores: effective address; prefetch kinds: block address
	Taken bool   // branches: outcome
	Cycle uint64 // prefetch kinds only: simulation cycle of the transition
}

// Writer encodes events to an underlying stream.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes a header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one event.
func (t *Writer) Write(e Event) error {
	if t.err != nil {
		return t.err
	}
	var buf [1 + binary.MaxVarintLen64*3]byte
	flags := byte(e.Kind) << 1
	if e.Taken {
		flags |= 1
	}
	buf[0] = flags
	n := 1
	if e.Kind.IsPrefetch() {
		n += binary.PutUvarint(buf[n:], e.Cycle)
	}
	n += binary.PutUvarint(buf[n:], e.PC)
	if e.Kind == KindLoad || e.Kind == KindStore || e.Kind.IsPrefetch() {
		n += binary.PutUvarint(buf[n:], e.Addr)
	}
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = err
		return err
	}
	t.count++
	return nil
}

// Count returns the number of events written.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered output.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Read returns the next event, or io.EOF at the end of the stream.
func (t *Reader) Read() (Event, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF propagates cleanly
	}
	e := Event{Kind: Kind(flags >> 1), Taken: flags&1 != 0}
	if e.Kind < KindLoad || e.Kind > KindPrefPollute {
		return Event{}, fmt.Errorf("trace: invalid record kind %d", e.Kind)
	}
	if e.Kind.IsPrefetch() {
		if e.Cycle, err = binary.ReadUvarint(t.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated record: %w", err)
		}
	}
	if e.PC, err = binary.ReadUvarint(t.r); err != nil {
		return Event{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	if e.Kind == KindLoad || e.Kind == KindStore || e.Kind.IsPrefetch() {
		if e.Addr, err = binary.ReadUvarint(t.r); err != nil {
			return Event{}, fmt.Errorf("trace: truncated record: %w", err)
		}
	}
	return e, nil
}

// ReadAll decodes the remaining events.
func (t *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := t.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Record functionally executes up to maxInsts instructions of a program and
// writes its trace. It returns the number of instructions executed.
func Record(w io.Writer, prog *isa.Program, image *mem.Memory, maxInsts uint64) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	cpu := emu.New(prog, image)
	cpu.OnRetire = func(r emu.Retire) {
		switch {
		case r.Inst.IsLoad():
			tw.Write(Event{Kind: KindLoad, PC: r.PC, Addr: r.EA})
		case r.Inst.IsStore():
			tw.Write(Event{Kind: KindStore, PC: r.PC, Addr: r.EA})
		case r.Inst.IsCondBranch():
			tw.Write(Event{Kind: KindBranch, PC: r.PC, Taken: r.Taken})
		case r.Inst.IsControl():
			tw.Write(Event{Kind: KindJump, PC: r.PC, Taken: true})
		}
	}
	n, err := cpu.Run(maxInsts)
	if err != nil {
		return n, err
	}
	return n, tw.Flush()
}
