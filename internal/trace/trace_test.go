package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindLoad, PC: 0x1000, Addr: 0xDEADBEE8},
		{Kind: KindStore, PC: 0x1004, Addr: 0x10},
		{Kind: KindBranch, PC: 0x1008, Taken: true},
		{Kind: KindBranch, PC: 0x100C, Taken: false},
		{Kind: KindJump, PC: 0x1010, Taken: true},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(events)) {
		t.Errorf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 8) // zero magic
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: KindLoad, PC: 0xFFFFFFFF, Addr: 0xFFFFFFFF})
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record: err = %v", err)
	}
}

func TestInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	buf.WriteByte(0xFF) // kind 127
	r, _ := NewReader(&buf)
	if _, err := r.Read(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestRecordProgram(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r16, 0x4000
		movi r10, 3
	loop:
		ld   r1, 0(r16)
		st   r1, 8(r16)
		addi r16, r16, 64
		addi r10, r10, -1
		bnez r10, loop
		halt
	`)
	var buf bytes.Buffer
	n, err := Record(&buf, prog, mem.New(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing executed")
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// 3 iterations × (load + store + branch) = 9 events.
	var loads, stores, branches int
	for _, e := range events {
		switch e.Kind {
		case KindLoad:
			loads++
		case KindStore:
			stores++
		case KindBranch:
			branches++
		}
	}
	if loads != 3 || stores != 3 || branches != 3 {
		t.Errorf("events = %d loads / %d stores / %d branches", loads, stores, branches)
	}
	// Addresses advance by 64.
	if events[0].Addr != 0x4000 || events[3].Addr != 0x4040 {
		t.Errorf("load addresses: %+v %+v", events[0], events[3])
	}
	// Final branch is not taken.
	last := events[len(events)-1]
	if last.Kind != KindBranch || last.Taken {
		t.Errorf("last event = %+v", last)
	}
}

// Property: arbitrary event sequences round-trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []struct {
		K     uint8
		PC, A uint64
		T     bool
	}) bool {
		events := make([]Event, len(raw))
		for i, r := range raw {
			events[i] = Event{
				Kind:  Kind(r.K%4) + KindLoad,
				PC:    r.PC,
				Taken: r.T,
			}
			if events[i].Kind == KindLoad || events[i].Kind == KindStore {
				events[i].Addr = r.A
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, e := range events {
			if err := w.Write(e); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
