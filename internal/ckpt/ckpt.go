// Package ckpt implements functional fast-forward checkpoints: the paper's
// measurement protocol (§V-A) skips a 10 B-instruction prefix before its
// warmup/measure window, and re-executing that shared prefix at
// cycle-accurate cost for every simulation point is pure waste. A
// Checkpoint captures the architectural state — registers, PC, retired
// count, memory image — after running a workload's prefix once on the
// functional emulator (internal/emu), and Restore boots any number of
// cycle-accurate simulations from it.
//
// The memory image is frozen at capture (mem.Memory.Freeze), so Restore is
// an O(1) copy-on-write fork: concurrent simulations restored from one
// checkpoint share the image's footprint and privately copy only the pages
// they write. Restore is safe to call from many goroutines at once.
//
// What a checkpoint deliberately does NOT capture: any microarchitectural
// state. Caches, branch predictor, confidence estimator and prefetcher all
// start cold at restore — warming them is the warmup phase's job, exactly
// as in trace-based and checkpoint-based simulator methodology. That makes
// a restored run bit-identical to fast-forwarding the same prefix inline on
// the functional emulator immediately before the cycle simulation
// (sim.Run's inline path; pinned by tests in internal/runner).
package ckpt

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Checkpoint is one workload's architectural state after a functional
// fast-forward. Checkpoints are immutable once created and safe for
// concurrent Restore.
type Checkpoint struct {
	// Workload is the kernel this checkpoint was captured from.
	Workload string
	// FFInsts is the requested fast-forward length. If the program halted
	// early, Arch.Retired < FFInsts and Arch.Halted is true.
	FFInsts uint64
	// Arch is the captured architectural state.
	Arch emu.Arch

	prog  *isa.Program
	image *mem.Memory // frozen; Restore forks it
}

// New builds the workload, executes ffInsts instructions on the functional
// emulator, and captures the result. The workload's build must be
// deterministic (the package's contract), so New is a pure function of
// (workload, ffInsts): two checkpoints of the same point are
// interchangeable.
func New(w workload.Workload, ffInsts uint64) (*Checkpoint, error) {
	prog, image := w.Build()
	c := emu.New(prog, image)
	if _, err := c.Run(ffInsts); err != nil {
		return nil, fmt.Errorf("ckpt: fast-forward of %s after %d insts: %w", w.Name, c.Retired, err)
	}
	image.Freeze()
	return &Checkpoint{
		Workload: w.Name,
		FFInsts:  ffInsts,
		Arch:     c.Arch(),
		prog:     prog,
		image:    image,
	}, nil
}

// ByName is New for a registered workload name.
func ByName(name string, ffInsts uint64) (*Checkpoint, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return New(w, ffInsts)
}

// FromParts reconstructs a checkpoint from externally stored state: the
// workload name (whose program is rebuilt — workload builds are
// deterministic, so the rebuilt program is the one the state was captured
// against), the requested fast-forward length, the captured architectural
// state, and the memory image. The image is frozen here, so the caller must
// hand over ownership; it must not mutate it afterwards.
//
// FromParts trusts its inputs only as far as cheap validation can carry:
// the workload must exist and the PC must be a valid resume point for the
// rebuilt program. Content integrity (the image and Arch actually being
// the prefix's output) is the storage layer's job — internal/store keys
// checkpoint entries by the workload's built content, so a changed workload
// generator can never pair stale state with a fresh program.
func FromParts(name string, ffInsts uint64, arch emu.Arch, image *mem.Memory) (*Checkpoint, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	prog, _ := w.Build()
	if arch.PC < 0 || arch.PC > len(prog.Insts) {
		return nil, fmt.Errorf("ckpt: restored PC %d out of range for %s (%d insts)",
			arch.PC, name, len(prog.Insts))
	}
	image.Freeze()
	return &Checkpoint{
		Workload: name,
		FFInsts:  ffInsts,
		Arch:     arch,
		prog:     prog,
		image:    image,
	}, nil
}

// Image returns the checkpoint's frozen memory image. It is shared state —
// callers may read or Fork it but must not write through it directly; the
// serialization path (internal/store) exports its pages.
func (c *Checkpoint) Image() *mem.Memory { return c.image }

// Restore returns what a core needs to resume from the checkpoint: the
// program (shared — it is read-only), a copy-on-write fork of the memory
// image, and the architectural state. Each call returns an independent
// fork; concurrent calls are safe.
func (c *Checkpoint) Restore() (*isa.Program, *mem.Memory, emu.Arch) {
	return c.prog, c.image.Fork(), c.Arch
}

// FootprintBytes reports the frozen image's resident size — the memory all
// restored simulations share.
func (c *Checkpoint) FootprintBytes() int { return c.image.FootprintBytes() }
