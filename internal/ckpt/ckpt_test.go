package ckpt

import (
	"sync"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

const testFF = 20_000

// TestCheckpointMatchesInlineEmu pins the capture contract: the checkpoint's
// architectural state and memory image must equal those of a fresh build
// fast-forwarded inline, instruction for instruction.
func TestCheckpointMatchesInlineEmu(t *testing.T) {
	for _, name := range []string{"mcf", "libquantum", "gamess"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := New(w, testFF)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Arch.Retired != testFF || cp.Arch.Halted {
			t.Fatalf("%s: retired %d halted %v, want %d running", name, cp.Arch.Retired, cp.Arch.Halted, testFF)
		}

		prog, image := w.Build()
		ref := emu.New(prog, image)
		if _, err := ref.Run(testFF); err != nil {
			t.Fatal(err)
		}
		_, fork, arch := cp.Restore()
		if arch != ref.Arch() {
			t.Errorf("%s: arch state diverges:\nckpt:   %+v\ninline: %+v", name, arch, ref.Arch())
		}
		if !mem.Equal(fork, image) {
			t.Errorf("%s: restored image diverges from inline fast-forward", name)
		}
	}
}

// TestRestoreTwiceIdentical: restoring the same checkpoint twice must yield
// identical, independent snapshots.
func TestRestoreTwiceIdentical(t *testing.T) {
	cp, err := ByName("milc", testFF)
	if err != nil {
		t.Fatal(err)
	}
	progA, memA, archA := cp.Restore()
	progB, memB, archB := cp.Restore()
	if progA != progB {
		t.Error("restores should share the read-only program")
	}
	if archA != archB {
		t.Errorf("arch states differ: %+v vs %+v", archA, archB)
	}
	if !mem.Equal(memA, memB) {
		t.Error("restored images differ")
	}
	// ... and independent: a write in one fork is invisible in the other.
	memA.Write64(0x40, 123456)
	if memB.Read64(0x40) == 123456 {
		t.Error("forks share writable state")
	}
	if !mem.Equal(memB, cp.image.Fork()) {
		t.Error("second fork no longer matches the image after mutating the first")
	}
}

// TestConcurrentRestore exercises many goroutines forking and mutating one
// shared checkpoint at once — the exact pattern of parallel simulations
// booted from a cached checkpoint. Run with -race (the ROADMAP race leg
// covers this package).
func TestConcurrentRestore(t *testing.T) {
	cp, err := ByName("mcf", testFF)
	if err != nil {
		t.Fatal(err)
	}
	want := cp.image.Fork().Clone() // reference contents

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			_, m, arch := cp.Restore()
			if arch != cp.Arch {
				t.Errorf("goroutine %d: arch mismatch", g)
				return
			}
			// Run the emulator a little further on the fork: reads and COW
			// writes against the shared frozen base, concurrently.
			c := emu.New(cp.prog, m)
			c.SetArch(arch)
			if _, err := c.Run(5_000); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(uint64(g))
	}
	wg.Wait()
	if !mem.Equal(cp.image.Fork(), want) {
		t.Error("concurrent restores mutated the frozen image")
	}
}

// TestHaltedCheckpoint: fast-forwarding past a program's HALT is captured
// faithfully (Halted true, Retired short of the request).
func TestHaltedCheckpoint(t *testing.T) {
	w := workload.New("tiny", "halts immediately", "compute", false, tinyBuild)
	cp, err := New(w, testFF)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Arch.Halted {
		t.Error("expected halted checkpoint")
	}
	if cp.Arch.Retired >= testFF {
		t.Errorf("retired %d, want < %d", cp.Arch.Retired, testFF)
	}
}

func BenchmarkCheckpointCreate(b *testing.B) {
	w, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(w, testFF); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointRestore(b *testing.B) {
	cp, err := ByName("mcf", testFF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, _ := cp.Restore()
		m.Write64(0, uint64(i)) // one COW fault, as a real run would incur
	}
}

// tinyBuild is a deterministic program that halts after a short loop.
func tinyBuild() (*isa.Program, *mem.Memory) {
	b := isa.NewBuilder()
	b.Movi(isa.Reg(1), 100)
	top := b.Here()
	b.Addi(isa.Reg(1), isa.Reg(1), -1)
	b.Bnez(isa.Reg(1), top)
	b.Halt()
	return b.MustProgram(), mem.New()
}
