package sms

import (
	"testing"

	"repro/internal/prefetch"
)

func drain(s *SMS, cycles int) []prefetch.Request {
	var all []prefetch.Request
	for i := 0; i < cycles; i++ {
		all = s.AppendTick(all, uint64(i))
	}
	return all
}

// touchRegion walks the given block offsets of the 2KB region at base, with
// the first offset acting as trigger.
func touchRegion(s *SMS, pc, base uint64, offsets []int) {
	for _, off := range offsets {
		s.OnAccess(prefetch.AccessInfo{PC: pc, Addr: base + uint64(off*64)})
	}
}

// closeGenerations floods the AGT so all active generations get trained.
func closeGenerations(s *SMS) {
	for i := 0; i < s.cfg.AGTEntries+1; i++ {
		s.OnAccess(prefetch.AccessInfo{PC: 0xDEAD, Addr: 0x4000_0000 + uint64(i)*uint64(s.cfg.RegionBytes)})
	}
}

func TestLearnsAndReplaysPattern(t *testing.T) {
	s := New(DefaultConfig())
	pc := uint64(0x1000)
	pattern := []int{0, 3, 7, 12}

	touchRegion(s, pc, 0x10000, pattern) // generation 1: learn
	closeGenerations(s)
	drain(s, 100) // discard anything queued during training

	// Same trigger PC and offset in a different region: replay.
	touchRegion(s, pc, 0x20000, pattern[:1])
	reqs := drain(s, 100)
	want := map[uint64]bool{
		0x20000 + 3*64:  true,
		0x20000 + 7*64:  true,
		0x20000 + 12*64: true,
	}
	if len(reqs) != len(want) {
		t.Fatalf("got %d prefetches %v, want %d", len(reqs), reqs, len(want))
	}
	for _, r := range reqs {
		if !want[r.Addr] {
			t.Errorf("unexpected prefetch %#x", r.Addr)
		}
		if r.LoadPC != pc {
			t.Errorf("prefetch attributed to %#x", r.LoadPC)
		}
	}
}

func TestColdTriggerSilent(t *testing.T) {
	s := New(DefaultConfig())
	touchRegion(s, 0x1000, 0x30000, []int{0, 1, 2})
	if reqs := drain(s, 10); len(reqs) != 0 {
		t.Errorf("cold region produced %d prefetches", len(reqs))
	}
}

func TestSingleBlockPatternNotStored(t *testing.T) {
	s := New(DefaultConfig())
	pc := uint64(0x2000)
	touchRegion(s, pc, 0x40000, []int{5}) // lone touch
	closeGenerations(s)
	drain(s, 100)
	touchRegion(s, pc, 0x50000, []int{5})
	if reqs := drain(s, 10); len(reqs) != 0 {
		t.Errorf("single-block pattern replayed: %v", reqs)
	}
}

func TestDifferentTriggerOffsetDifferentPattern(t *testing.T) {
	s := New(DefaultConfig())
	pc := uint64(0x3000)
	touchRegion(s, pc, 0x60000, []int{0, 1})
	closeGenerations(s)
	drain(s, 100)
	// Trigger at offset 9 was never seen: PHT index differs, so no replay.
	touchRegion(s, pc, 0x70000, []int{9})
	if reqs := drain(s, 10); len(reqs) != 0 {
		t.Errorf("mismatched trigger offset replayed: %v", reqs)
	}
}

func TestAccumulationWithinGeneration(t *testing.T) {
	s := New(DefaultConfig())
	// Touching the same region twice must not start a second generation.
	touchRegion(s, 0x4000, 0x80000, []int{0, 0, 1, 1, 2})
	if s.Generations != 1 {
		t.Errorf("generations = %d, want 1", s.Generations)
	}
}

func TestSmallRegionConfig(t *testing.T) {
	// The milc sensitivity study shrinks regions to 256 B (4 blocks).
	s := New(Config{RegionBytes: 256, AGTEntries: 64, PHTEntries: 16384})
	pc := uint64(0x5000)
	touchRegion(s, pc, 0x90000, []int{0, 1, 2, 3})
	closeGenerations(s)
	drain(s, 100)
	touchRegion(s, pc, 0xA0000, []int{0})
	reqs := drain(s, 10)
	if len(reqs) != 3 {
		t.Errorf("small-region replay = %d prefetches, want 3", len(reqs))
	}
}

func TestStorageAccounting(t *testing.T) {
	s := New(DefaultConfig())
	kb := float64(s.StorageBits()) / 8 / 1024
	// A tagless 16K×32-bit PHT dominates: ≈64 KB plus the AGT. The paper
	// reports 36.57 KB for a denser encoding; what matters for Table I's
	// conclusion is that SMS is several times larger than B-Fetch (~13 KB).
	if kb < 30 || kb > 80 {
		t.Errorf("SMS storage = %.1f KB, outside plausible band", kb)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{RegionBytes: 100, AGTEntries: 4, PHTEntries: 16},
		{RegionBytes: 64, AGTEntries: 4, PHTEntries: 16},
		{RegionBytes: 2048, AGTEntries: 4, PHTEntries: 1000},
		{RegionBytes: 8192, AGTEntries: 4, PHTEntries: 16}, // pattern > 64 bits
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}
