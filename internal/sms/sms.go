// Package sms implements Spatial Memory Streaming (Somogyi, Wenisch,
// Ailamaki, Falsafi, Moshovos, ISCA 2006), the "best-of-class light-weight
// prefetcher" B-Fetch compares against.
//
// SMS divides memory into fixed-size spatial regions. The first access to a
// region (the trigger) starts a generation: an Active Generation Table (AGT)
// entry accumulates a bit pattern of the blocks touched within the region.
// When the generation ends, the pattern is stored in a Pattern History Table
// (PHT) indexed by the trigger's (PC, region offset). The next time the same
// trigger recurs, the stored pattern is replayed as prefetches for the whole
// region.
//
// Following the paper's practical configuration (§IV-C): 2 KB spatial
// regions, a 64-entry AGT and a 16K-entry PHT. The original filter table is
// omitted, as in the JILP 2011 follow-up the paper cites — accumulation
// handles filtering. Generations end on AGT replacement, the practical proxy
// for region eviction.
package sms

import (
	"repro/internal/obs"
	"repro/internal/prefetch"
)

// Config sizes the prefetcher.
type Config struct {
	RegionBytes int // spatial region size (power of two, ≥ 128)
	AGTEntries  int
	PHTEntries  int // power of two, tagless direct-mapped
}

// DefaultConfig is the paper's practical SMS configuration.
func DefaultConfig() Config {
	return Config{RegionBytes: 2048, AGTEntries: 64, PHTEntries: 16384}
}

type agtEntry struct {
	valid      bool
	regionTag  uint64
	triggerPC  uint64
	triggerOff int // block offset of the trigger within the region
	pattern    uint64
	lastUse    uint64
}

// SMS is the prefetcher.
type SMS struct {
	prefetch.Base
	cfg         Config     //bfetch:noreset configuration
	regionShift uint       //bfetch:noreset configuration
	blocksPer   int        //bfetch:noreset configuration
	agt         []agtEntry //bfetch:noreset learned active generations
	pht         []uint64   //bfetch:noreset learned patterns
	queue       *prefetch.Queue
	clock       uint64 //bfetch:noreset internal LRU clock, monotonic

	// Stats.
	Generations uint64
	PHTHits     uint64
}

// New builds an SMS prefetcher.
func New(cfg Config) *SMS {
	if cfg.RegionBytes < 128 || cfg.RegionBytes&(cfg.RegionBytes-1) != 0 {
		panic("sms: region bytes must be a power of two ≥ 128")
	}
	if cfg.PHTEntries <= 0 || cfg.PHTEntries&(cfg.PHTEntries-1) != 0 {
		panic("sms: PHT entries must be a power of two")
	}
	shift := uint(0)
	for 1<<shift != cfg.RegionBytes {
		shift++
	}
	blocks := cfg.RegionBytes / 64
	if blocks > 64 {
		panic("sms: region too large for a 64-bit pattern")
	}
	return &SMS{
		cfg:         cfg,
		regionShift: shift,
		blocksPer:   blocks,
		agt:         make([]agtEntry, cfg.AGTEntries),
		pht:         make([]uint64, cfg.PHTEntries),
		queue:       prefetch.NewQueue(100, 2),
	}
}

func (s *SMS) Name() string { return "sms" }

func (s *SMS) phtIdx(pc uint64, off int) int {
	h := (pc >> 2) ^ (pc >> 13) ^ uint64(off)*0x9E37
	return int(h & uint64(s.cfg.PHTEntries-1))
}

// OnAccess accumulates patterns and replays stored ones on region triggers.
func (s *SMS) OnAccess(a prefetch.AccessInfo) {
	s.clock++
	region := a.Addr >> s.regionShift
	off := int((a.Addr >> 6) & uint64(s.blocksPer-1))

	// Accumulate into an active generation.
	for i := range s.agt {
		e := &s.agt[i]
		if e.valid && e.regionTag == region {
			e.pattern |= 1 << off
			e.lastUse = s.clock
			return
		}
	}

	// Trigger: new generation. Recycle the LRU entry, training the PHT with
	// the generation it closes.
	victim := &s.agt[0]
	for i := range s.agt {
		if !s.agt[i].valid {
			victim = &s.agt[i]
			break
		}
		if s.agt[i].lastUse < victim.lastUse {
			victim = &s.agt[i]
		}
	}
	if victim.valid {
		s.train(victim)
	}
	*victim = agtEntry{
		valid: true, regionTag: region, triggerPC: a.PC,
		triggerOff: off, pattern: 1 << off, lastUse: s.clock,
	}
	s.Generations++

	// Replay the stored pattern for this trigger, if any.
	pattern := s.pht[s.phtIdx(a.PC, off)]
	if pattern == 0 {
		return
	}
	s.PHTHits++
	base := region << s.regionShift
	for b := 0; b < s.blocksPer; b++ {
		if b == off || pattern&(1<<b) == 0 {
			continue
		}
		s.queue.Push(prefetch.Request{Addr: base + uint64(b*64), LoadPC: a.PC})
	}
}

func (s *SMS) train(e *agtEntry) {
	// Patterns with a single touched block predict nothing; storing them
	// only pollutes the PHT.
	if e.pattern&(e.pattern-1) == 0 {
		return
	}
	s.pht[s.phtIdx(e.triggerPC, e.triggerOff)] = e.pattern
}

// AppendTick drains the prefetch queue.
//
//bfetch:hotpath
func (s *SMS) AppendTick(dst []prefetch.Request, now uint64) []prefetch.Request {
	return s.queue.AppendPop(dst)
}

// Idle reports whether the queue is drained.
func (s *SMS) Idle() bool { return s.queue.Len() == 0 }

// ResetStats zeroes the measurement counters.
func (s *SMS) ResetStats() {
	s.Generations, s.PHTHits = 0, 0
	s.queue.ResetStats()
}

// RegisterObs exports the engine's counters into the metrics registry.
func (s *SMS) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"generations", func() uint64 { return s.Generations })
	reg.Func(prefix+"pht_hits", func() uint64 { return s.PHTHits })
	s.queue.RegisterObs(reg, prefix)
}

// StorageBits reports SMS hardware state: AGT entries hold a region tag
// (34 bits), trigger PC (32), trigger offset (log2 blocks) and the pattern;
// the tagless PHT holds one pattern per entry.
func (s *SMS) StorageBits() int {
	offBits := 0
	for 1<<offBits < s.blocksPer {
		offBits++
	}
	agtBits := s.cfg.AGTEntries * (34 + 32 + offBits + s.blocksPer)
	phtBits := s.cfg.PHTEntries * s.blocksPer
	return agtBits + phtBits + s.queue.StorageBits()
}
