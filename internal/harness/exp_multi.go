package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Multiprogrammed experiments: Figures 9 (mix-2) and 10 (mix-4). The FOA
// contention model selects the mixes (§V-A); performance is the weighted
// speedup Σ(IPC_multi/IPC_single) normalized to the no-prefetch baseline.

func init() {
	registerExperiment(Experiment{
		ID:    "fig9",
		Title: "Normalized weighted speedup, 29 two-application mixes",
		Paper: "B-Fetch 31.2% vs SMS 25.5% geomean over baseline",
		Run:   func(p Params) ([]*stats.Table, error) { return runMixes(p, 2, "Figure 9") },
	})
	registerExperiment(Experiment{
		ID:    "fig10",
		Title: "Normalized weighted speedup, 29 four-application mixes",
		Paper: "B-Fetch 28.5% vs SMS 19.6% geomean over baseline",
		Run:   func(p Params) ([]*stats.Table, error) { return runMixes(p, 4, "Figure 10") },
	})
	registerExperiment(Experiment{
		ID:    "mix8",
		Title: "Normalized weighted speedup, eight-application mixes (paper §V-B2 'preliminary results')",
		Paper: "\"Preliminary results with mixes of 8 workloads continue this trend\" — B-Fetch > SMS > Stride",
		Run: func(p Params) ([]*stats.Table, error) {
			if p.Mixes > 8 {
				p.Mixes = 8 // 8-core runs are expensive; the paper only ran a sample
			}
			return runMixes(p, 8, "Mix-8 extension")
		},
	})
}

// foaProfileInsts is the functional profile length behind mix selection.
const foaProfileInsts = 100_000

func runMixes(p Params, n int, figure string) ([]*stats.Table, error) {
	foa, err := workload.FOAProfiles(foaProfileInsts)
	if err != nil {
		return nil, err
	}
	// Restrict to the requested workload subset, if any.
	allowed := map[string]bool{}
	for _, name := range p.workloads() {
		allowed[name] = true
	}
	for name := range foa {
		if !allowed[name] {
			delete(foa, name)
		}
	}
	mixes := workload.SelectMixes(n, p.Mixes, foa)
	if len(mixes) == 0 {
		return nil, fmt.Errorf("harness: no %d-app mixes from %d workloads", n, len(foa))
	}

	kinds := sim.Kinds

	// Weighted-speedup denominators: each application alone on the
	// *baseline* (no-prefetch) system, common to every prefetcher — the
	// paper's normalization puts the baseline system at 1.0 and reports
	// each prefetcher's multiprogrammed gain over it (§V-A, §V-B2). These
	// are the same solo points every speedup figure divides by, so they
	// come from the shared baseline store.
	apps := make([]string, 0, len(foa))
	for name := range foa {
		apps = append(apps, name)
	}
	sort.Strings(apps)
	soloRes, err := p.baselineResults(sim.Default(sim.PFNone), apps)
	if err != nil {
		return nil, fmt.Errorf("solo baseline: %w", err)
	}
	solo := map[string]float64{}
	for i, name := range apps {
		solo[name] = soloRes[i].IPC[0]
	}
	p.logf("  baseline solo IPCs done")

	// Weighted speedup per mix per kind, as one batch over the whole grid.
	var jobs []runner.Job
	for _, kind := range kinds {
		for _, mix := range mixes {
			jobs = append(jobs, runner.Multi(sim.Default(kind), mix.Apps, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	ws := map[sim.PrefetcherKind][]float64{}
	for ki, kind := range kinds {
		for mi, mix := range mixes {
			o := outs[ki*len(mixes)+mi]
			if o.Err != nil {
				return nil, fmt.Errorf("%s on %s (%v): %w", kind, mix.Name, mix.Apps, o.Err)
			}
			den := make([]float64, len(mix.Apps))
			for i, app := range mix.Apps {
				den[i] = solo[app]
			}
			ws[kind] = append(ws[kind], stats.WeightedSpeedup(o.Result.IPC, den))
		}
		p.logf("  %s mixes for %s done", figure, kind)
	}

	t := stats.NewTable(
		fmt.Sprintf("%s: normalized weighted speedup, %d-application mixes", figure, n),
		"mix", "apps", "Stride", "SMS", "Bfetch")
	norm := func(kind sim.PrefetcherKind, i int) float64 {
		return ws[kind][i] / ws[sim.PFNone][i]
	}
	var geos [3][]float64
	for i, mix := range mixes {
		s, m, b := norm(sim.PFStride, i), norm(sim.PFSMS, i), norm(sim.PFBFetch, i)
		geos[0] = append(geos[0], s)
		geos[1] = append(geos[1], m)
		geos[2] = append(geos[2], b)
		t.AddRow(mix.Name, strings.Join(mix.Apps, "+"), s, m, b)
	}
	t.AddRow("Geomean", "-", stats.Geomean(geos[0]), stats.Geomean(geos[1]), stats.Geomean(geos[2]))
	return []*stats.Table{t}, nil
}
