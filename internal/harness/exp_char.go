package harness

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/sim"
	"repro/internal/sms"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Characterization and accounting experiments: Figures 3 and 7, Tables I
// and II.

func init() {
	registerExperiment(Experiment{
		ID:    "fig3",
		Title: "CDFs of register-content and effective-address variation across basic blocks",
		Paper: "≈92/89/82% of register deltas within one 64 B block at 1/3/12 BB; EA deltas spread far wider",
		Run:   runFig3,
	})
	registerExperiment(Experiment{
		ID:    "fig7",
		Title: "Breakdown of branch instructions fetched per cycle (4-wide)",
		Paper: "≥99.95% of branch-carrying fetch cycles hold ≤2 branches",
		Run:   runFig7,
	})
	registerExperiment(Experiment{
		ID:    "tab1",
		Title: "Hardware storage overhead: B-Fetch components vs SMS",
		Paper: "B-Fetch 12.84 KB total vs SMS 36.57 KB (65% less)",
		Run:   runTab1,
	})
	registerExperiment(Experiment{
		ID:    "tab2",
		Title: "Baseline system configuration",
		Paper: "4-wide O3, 192 ROB, 64 KB L1, 256 KB L2, 2 MB/core L3, 200-cycle DRAM, 6.55 KB tournament predictor",
		Run:   runTab2,
	})
}

// charInsts is the functional-profile length per workload for fig3/fig7.
const charInsts = 150_000

func runFig3(p Params) ([]*stats.Table, error) {
	// One profile per workload, collected across the pool, merged in
	// workload order. Besides the parallelism, per-workload profiles keep
	// each program's snapshot ring and static-load history to itself (a
	// single profile threaded through all 18 programs mixes state across
	// the boundaries, since static load indexes collide between programs).
	ws := p.workloads()
	eng := p.engine()
	profs := make([]*emu.DeltaProfile, len(ws))
	if err := eng.Map(len(ws), func(i int) error {
		w, err := workload.ByName(ws[i])
		if err != nil {
			return err
		}
		prog, image := w.Build()
		cpu := emu.New(prog, image)
		profs[i] = emu.NewDeltaProfile()
		profs[i].Attach(cpu)
		n, err := cpu.Run(charInsts)
		eng.AddEmuInsts(n)
		if err != nil {
			return fmt.Errorf("fig3 profile of %s: %w", ws[i], err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	prof := emu.NewDeltaProfile()
	for i, name := range ws {
		prof.Merge(profs[i])
		p.logf("  %-12s profiled", name)
	}

	mk := func(title string, cdf func(int) [emu.DeltaBuckets]float64) *stats.Table {
		t := stats.NewTable(title, "delta_blocks", "1BB", "3BB", "12BB")
		var curves [3][emu.DeltaBuckets]float64
		for d := range curves {
			curves[d] = cdf(d)
		}
		for x := 0; x < emu.DeltaBuckets; x++ {
			label := fmt.Sprint(x)
			if x == emu.DeltaBuckets-1 {
				label = fmt.Sprintf("≥%d", x)
			}
			t.AddRow(label, curves[0][x], curves[1][x], curves[2][x])
		}
		return t
	}
	return []*stats.Table{
		mk("Figure 3a: CDF of register-content variation (cache blocks)", prof.RegCDF),
		mk("Figure 3b: CDF of effective-address variation (cache blocks)", prof.EACDF),
	}, nil
}

func runFig7(p Params) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 7: branches per branch-carrying fetch cycle",
		"benchmark", "1_branch", "2_branches", "3_branches", "4_branches")
	ws := p.workloads()
	eng := p.engine()
	breakdowns := make([][]float64, len(ws))
	if err := eng.Map(len(ws), func(i int) error {
		w, err := workload.ByName(ws[i])
		if err != nil {
			return err
		}
		prog, image := w.Build()
		cpu := emu.New(prog, image)
		prof := emu.NewFetchGroupProfile(4)
		prof.Attach(cpu)
		n, err := cpu.Run(charInsts)
		eng.AddEmuInsts(n)
		if err != nil {
			return fmt.Errorf("fig7 profile of %s: %w", ws[i], err)
		}
		breakdowns[i] = prof.BranchBreakdown()
		return nil
	}); err != nil {
		return nil, err
	}
	var agg []float64
	aggN := 0
	for i, name := range ws {
		bd := breakdowns[i]
		t.AddRow(name, bd[0], bd[1], bd[2], bd[3])
		if agg == nil {
			agg = make([]float64, len(bd))
		}
		for j, v := range bd {
			agg[j] += v
		}
		aggN++
	}
	row := []any{"MEAN"}
	for _, v := range agg {
		row = append(row, v/float64(aggN))
	}
	t.AddRow(row...)
	return []*stats.Table{t}, nil
}

func storageOf(cfg sim.Config) int {
	bp := branch.New(cfg.Branch)
	conf := branch.NewConfidence(cfg.Confidence)
	return core.New(cfg.BFetch, bp, conf).StorageBits()
}

func runTab1(p Params) ([]*stats.Table, error) {
	cfg := sim.Default(sim.PFBFetch)
	bp := branch.New(cfg.Branch)
	conf := branch.NewConfidence(cfg.Confidence)
	bf := core.New(cfg.BFetch, bp, conf)

	kb := func(bits int) string { return fmt.Sprintf("%.2f", float64(bits)/8/1024) }

	t := stats.NewTable("Table I: hardware storage overhead (KB)",
		"prefetcher", "component", "entries", "size_KB", "paper_KB")
	bcfg := cfg.BFetch
	t.AddRow("B-Fetch", "Branch Trace Cache", bcfg.BrTCEntries, kb(bcfg.BrTCEntries*66), "2.06")
	t.AddRow("B-Fetch", "Memory History Table", bcfg.MHTEntries, kb(bcfg.MHTEntries*(32+3*85)), "4.5")
	t.AddRow("B-Fetch", "Alternate Register File", 32, kb(32*(32+8)), "0.156")
	t.AddRow("B-Fetch", "Per-Load Prefetch Filter", bcfg.FilterEntries, kb(3*bcfg.FilterEntries*3), "2.25")
	t.AddRow("B-Fetch", "Additional Cache bits", "-", kb(bcfg.L1DBlocks*11), "1.37")
	t.AddRow("B-Fetch", "Prefetch Queue", bcfg.QueueEntries, kb(bcfg.QueueEntries*42), "0.51")
	t.AddRow("B-Fetch", "Path Confidence Estimator", cfg.Confidence.Entries, kb(conf.StorageBits()), "2")
	t.AddRow("B-Fetch", "TOTAL", "-", kb(bf.StorageBits()), "12.84")

	s := sms.New(cfg.SMS)
	t.AddRow("SMS", "TOTAL (AGT + PHT + queue)", fmt.Sprintf("%d AGT / %d PHT", cfg.SMS.AGTEntries, cfg.SMS.PHTEntries),
		kb(s.StorageBits()), "36.57")
	ratio := 1 - float64(bf.StorageBits())/float64(s.StorageBits())
	t.AddRow("-", "B-Fetch saving vs SMS", "-", fmt.Sprintf("%.0f%%", 100*ratio), "65%")
	return []*stats.Table{t}, nil
}

func runTab2(p Params) ([]*stats.Table, error) {
	cfg := sim.Default(sim.PFBFetch)
	t := stats.NewTable("Table II: baseline configuration", "parameter", "value")
	t.AddRow("CPU", fmt.Sprintf("%d-wide O3 processor, %d-entry ROB", cfg.CPU.Width, cfg.CPU.ROBEntries))
	t.AddRow("L1D cache", fmt.Sprintf("%dKB %d-way, %d-cycle latency",
		cfg.Hier.L1Bytes>>10, cfg.Hier.L1Ways, cfg.Hier.L1Latency))
	t.AddRow("L2 cache", fmt.Sprintf("Unified %dKB %d-way, %d-cycle latency",
		cfg.Hier.L2Bytes>>10, cfg.Hier.L2Ways, cfg.Hier.L2Latency))
	t.AddRow("Shared L3 cache", fmt.Sprintf("%dMB/core %d-way, %d-cycle latency",
		cfg.LLCPerCore>>20, cfg.LLCWays, cfg.LLCLatency))
	t.AddRow("Off-chip DRAM", "200-cycle latency, 12.8 GB/s channel (16 cycles / 64 B)")
	t.AddRow("Branch predictor", fmt.Sprintf("%.2fKB tournament predictor",
		float64(cfg.Branch.StorageBits())/8/1024))
	t.AddRow("Branch path confidence threshold", fmt.Sprint(cfg.BFetch.PathThreshold))
	t.AddRow("Per-load filter threshold", fmt.Sprint(cfg.BFetch.FilterThreshold))
	return []*stats.Table{t}, nil
}
