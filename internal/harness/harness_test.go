package harness

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// Harness tests run the real experiments at a tiny budget over a workload
// subset — enough to verify the wiring, table shapes, and the qualitative
// invariants the paper leans on, without taking the full measurement time.

func tinyParams() Params {
	return Params{
		Opts:      sim.RunOpts{WarmupInsts: 20_000, MeasureInsts: 40_000},
		Workloads: []string{"libquantum", "gamess", "milc"},
		Mixes:     3,
	}
}

func TestRegistryCoversPaperArtifacts(t *testing.T) {
	want := []string{"fig1", "fig3", "fig7", "tab1", "tab2", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablation"}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
	for _, e := range All() {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s underspecified", e.ID)
		}
	}
}

func findRow(tbl interface{ String() string }, name string) string {
	for _, line := range strings.Split(tbl.String(), "\n") {
		if strings.HasPrefix(line, name) {
			return line
		}
	}
	return ""
}

func TestFig1Shape(t *testing.T) {
	e, _ := ByID("fig1")
	tables, err := e.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("fig1 returned %d tables", len(tables))
	}
	main := tables[0].String()
	if !strings.Contains(main, "Geomean pf. sens.") {
		t.Error("missing prefetch-sensitive geomean row")
	}
	// gamess is L1-resident: the Perfect prefetcher must not help it.
	row := findRow(tables[0], "gamess")
	if row == "" {
		t.Fatal("no gamess row")
	}
	if !strings.Contains(row, "1.0") {
		t.Errorf("gamess should be ≈1.0 under Perfect: %q", row)
	}
	// The aux table marks sensitivity.
	aux := tables[1].String()
	if !strings.Contains(aux, "false") || !strings.Contains(aux, "true") {
		t.Errorf("sensitivity classification degenerate:\n%s", aux)
	}
	// The lifecycle table reports per-engine classification and ratios.
	lt := tables[2].String()
	if !strings.Contains(lt, "accuracy") || !strings.Contains(lt, "Stride") {
		t.Errorf("lifecycle table malformed:\n%s", lt)
	}
}

func TestFig8RunsOnSubset(t *testing.T) {
	e, _ := ByID("fig8")
	tables, err := e.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	for _, col := range []string{"Stride", "SMS", "Bfetch"} {
		if !strings.Contains(s, col) {
			t.Errorf("missing column %s", col)
		}
	}
	for _, w := range tinyParams().Workloads {
		if findRow(tables[0], w) == "" {
			t.Errorf("missing row %s", w)
		}
	}
}

func TestFig3And7Run(t *testing.T) {
	p := tinyParams()
	e3, _ := ByID("fig3")
	tables, err := e3.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig3 tables = %d", len(tables))
	}
	// CDFs end at 1.000 in the ≥33 bucket.
	for _, tbl := range tables {
		s := tbl.String()
		if !strings.Contains(s, "≥33") {
			t.Error("missing overflow bucket")
		}
		lines := strings.Split(strings.TrimSpace(s), "\n")
		last := lines[len(lines)-1]
		if strings.Count(last, "1.000") != 3 {
			t.Errorf("CDF does not terminate at 1: %q", last)
		}
	}

	e7, _ := ByID("fig7")
	t7, err := e7.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if findRow(t7[0], "MEAN") == "" {
		t.Error("fig7 missing MEAN row")
	}
}

func TestTab1ReportsSaving(t *testing.T) {
	e, _ := ByID("tab1")
	tables, err := e.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	if !strings.Contains(s, "12.84") {
		t.Errorf("missing B-Fetch total:\n%s", s)
	}
	if !strings.Contains(s, "%") {
		t.Error("missing saving percentage")
	}
}

func TestFig9MixesRun(t *testing.T) {
	e, _ := ByID("fig9")
	tables, err := e.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	if !strings.Contains(s, "mix1") {
		t.Errorf("no mixes:\n%s", s)
	}
	if findRow(tables[0], "Geomean") == "" {
		t.Error("missing geomean row")
	}
	// Mix names must pair two apps.
	row := findRow(tables[0], "mix1")
	if !strings.Contains(row, "+") {
		t.Errorf("mix row lacks app pairing: %q", row)
	}
}

func TestSensitiveSet(t *testing.T) {
	s := sensitiveSet([]string{"libquantum", "gamess", "nonesuch"})
	if !s["libquantum"] || s["gamess"] || s["nonesuch"] {
		t.Errorf("sensitive set = %v", s)
	}
}
