package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestParamsDefaults(t *testing.T) {
	p := DefaultParams()
	if p.Mixes != 29 {
		t.Errorf("default mixes = %d, want 29 (the paper's count)", p.Mixes)
	}
	if len(p.workloads()) != 18 {
		t.Errorf("default workload set = %d", len(p.workloads()))
	}
	p.Workloads = []string{"mcf"}
	if got := p.workloads(); len(got) != 1 || got[0] != "mcf" {
		t.Errorf("subset = %v", got)
	}
}

func TestParamsLogging(t *testing.T) {
	var buf bytes.Buffer
	p := Params{Log: &buf}
	p.logf("hello %d", 7)
	if !strings.Contains(buf.String(), "hello 7") {
		t.Errorf("log = %q", buf.String())
	}
	// Nil log must not panic.
	Params{}.logf("dropped")
}
