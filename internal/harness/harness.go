// Package harness defines one experiment per table and figure in the
// paper's evaluation (§V), plus the ablation studies DESIGN.md calls out.
// Each experiment runs the simulator and renders the same rows or series
// the paper reports, as text tables with CSV export.
//
// Experiments submit their simulation points as batches to a runner.Engine
// (see internal/runner), so independent points execute across a worker pool
// and repeated points — above all the shared no-prefetch baseline — are
// memoized. Tables are assembled in submission order, making output
// byte-identical whatever the worker count.
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Params tunes an experiment run.
type Params struct {
	// Opts is the warmup/measure protocol per simulation.
	Opts sim.RunOpts
	// Workloads restricts the benchmark set (nil = all 18).
	Workloads []string
	// Mixes is the number of multiprogrammed mixes (paper: 29).
	Mixes int
	// ScaleCores lists the CMP sizes the scale experiment sweeps
	// (nil = 2, 4, 8, 16, 64).
	ScaleCores []int
	// Log, when non-nil, receives progress lines. Writes are serialized, so
	// sharing one writer across concurrent experiments is safe.
	Log io.Writer
	// Runner executes simulation batches. nil gives each experiment a fresh
	// GOMAXPROCS-wide engine; share one Engine across experiments (as
	// cmd/bfetch-bench does) to also share its memoized results, so e.g.
	// fig1 and fig8 simulate their common Stride/SMS points once.
	Runner *runner.Engine
	// Baselines shares no-prefetch baseline results across experiments at
	// the API level — independent of the runner cache, so even sequential
	// or cache-disabled runs compute each baseline point once. nil disables
	// cross-experiment sharing (each speedups call still runs its baseline
	// only once).
	Baselines *BaselineStore
}

// DefaultParams mirrors the paper's protocol at simulation-friendly scale.
func DefaultParams() Params {
	return Params{
		Opts:      sim.DefaultRunOpts(),
		Mixes:     29,
		Baselines: NewBaselineStore(),
	}
}

func (p Params) workloads() []string {
	if len(p.Workloads) > 0 {
		return p.Workloads
	}
	return workload.Names()
}

// logMu serializes progress output: experiments may log from pool workers,
// and several experiments may share one writer.
var logMu sync.Mutex

func (p Params) logf(format string, args ...any) {
	if p.Log == nil {
		return
	}
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(p.Log, format+"\n", args...)
}

// engine returns the batch executor, defaulting to a parallel one.
func (p Params) engine() *runner.Engine {
	if p.Runner != nil {
		return p.Runner
	}
	return runner.New(0)
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID    string // paper artifact id: fig1, tab1, ...
	Title string
	// Paper summarises what the original reports, for EXPERIMENTS.md.
	Paper string
	Run   func(Params) ([]*stats.Table, error)
}

var experiments []Experiment

// registerExperiment wraps Run so every experiment sees a non-nil Runner
// that stays fixed for the whole run — within one experiment, repeated
// points always share one cache even when the caller left Runner nil.
func registerExperiment(e Experiment) {
	run := e.Run
	e.Run = func(p Params) ([]*stats.Table, error) {
		if p.Runner == nil {
			p.Runner = runner.New(0)
		}
		return run(p)
	}
	experiments = append(experiments, e)
}

// All returns the experiments in registration (paper) order.
func All() []Experiment { return append([]Experiment(nil), experiments...) }

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// ----------------------------------------------------------------- shared --

// BaselineStore memoizes baseline simulation results per (config, workload,
// protocol) point across experiments. Figures 1, 8, 12, 14 and 15 and the
// mix experiments all normalize to the same no-prefetch baseline; one store
// per bfetch-bench invocation makes them share a single result set even
// when the runner's own cache is bypassed.
type BaselineStore struct {
	mu sync.Mutex
	m  map[string]sim.Result
}

// NewBaselineStore returns an empty store.
func NewBaselineStore() *BaselineStore {
	return &BaselineStore{m: make(map[string]sim.Result)}
}

func (s *BaselineStore) get(key string) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

func (s *BaselineStore) put(key string, r sim.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = r
}

// Len reports how many baseline points are stored.
func (s *BaselineStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// baselineResults returns cfg's solo result for each named workload,
// consulting the shared store first and batching only the missing points
// through the engine.
func (p Params) baselineResults(cfg sim.Config, names []string) ([]sim.Result, error) {
	out := make([]sim.Result, len(names))
	keys := make([]string, len(names))
	var missing []int
	var jobs []runner.Job
	for i, name := range names {
		if p.Baselines != nil {
			if key, ok := runner.Fingerprint(cfg, []string{name}, p.Opts); ok {
				keys[i] = key
				if r, hit := p.Baselines.get(key); hit {
					out[i] = r
					continue
				}
			}
		}
		missing = append(missing, i)
		jobs = append(jobs, runner.Solo(cfg, name, p.Opts))
	}
	outs := p.engine().RunAll(jobs)
	for k, i := range missing {
		if err := outs[k].Err; err != nil {
			return nil, fmt.Errorf("baseline on %s: %w", names[i], err)
		}
		out[i] = outs[k].Result
		if p.Baselines != nil && keys[i] != "" {
			p.Baselines.put(keys[i], outs[k].Result)
		}
	}
	return out, nil
}

// speedups measures per-workload speedups of each configuration over the
// baseline configuration. All points are submitted as one batch — baseline
// results come from the shared store — and the result is assembled in
// submission order, indexed [config][workload order]. The second return is
// each configuration's prefetch lifecycle breakdown summed over workloads,
// for the accuracy/coverage/timeliness table every speedup figure emits.
func speedups(p Params, baseline sim.Config, configs []sim.Config) ([][]float64, []obs.LifecycleStats, error) {
	ws := p.workloads()
	base, err := p.baselineResults(baseline, ws)
	if err != nil {
		return nil, nil, err
	}
	jobs := make([]runner.Job, 0, len(configs)*len(ws))
	for _, cfg := range configs {
		for _, name := range ws {
			jobs = append(jobs, runner.Solo(cfg, name, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)

	out := make([][]float64, len(configs))
	lcs := make([]obs.LifecycleStats, len(configs))
	for ci, cfg := range configs {
		out[ci] = make([]float64, len(ws))
		for wi, name := range ws {
			o := outs[ci*len(ws)+wi]
			if o.Err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", label(cfg, ci), name, o.Err)
			}
			out[ci][wi] = o.Result.IPC[0] / base[wi].IPC[0]
			for _, lc := range o.Result.Lifecycle {
				lcs[ci].Add(lc)
			}
		}
	}
	for wi, name := range ws {
		for ci, cfg := range configs {
			p.logf("  %-12s %-8s speedup %.3f", name, label(cfg, ci), out[ci][wi])
		}
	}
	return out, lcs, nil
}

// lifecycleTable renders the per-engine prefetch lifecycle report: raw
// classification counts plus the paper's three quality ratios. The counts
// come from the unified obs registry, so this table, the JSON run reports
// and the live endpoint all agree by construction.
func lifecycleTable(title string, series []string, lcs []obs.LifecycleStats) *stats.Table {
	t := stats.NewTable(title,
		"engine", "issued", "useful_timely", "useful_late", "useless_evicted",
		"polluting", "accuracy", "coverage", "timeliness")
	for i, name := range series {
		lc := lcs[i]
		t.AddRow(name, lc.Issued, lc.UsefulTimely, lc.UsefulLate, lc.UselessEvicted,
			lc.Polluting, lc.Accuracy(), lc.Coverage(), lc.Timeliness())
	}
	return t
}

func label(cfg sim.Config, i int) string {
	if cfg.Prefetcher != "" {
		return string(cfg.Prefetcher)
	}
	return fmt.Sprintf("cfg%d", i)
}

// sensitiveSet returns which of the given workloads are memory-intensive —
// the static stand-in for the paper's "prefetch sensitive" set (those that
// benefit from a perfect prefetcher; fig1 computes the dynamic version).
func sensitiveSet(names []string) map[string]bool {
	out := map[string]bool{}
	for _, name := range names {
		if w, err := workload.ByName(name); err == nil && w.MemoryIntensive {
			out[name] = true
		}
	}
	return out
}

// speedupTable renders the per-benchmark speedup layout shared by Figures
// 1, 8, 12, 14 and 15: one row per workload, one column per series, then
// Geomean and Geomean-pf-sensitive rows.
func speedupTable(title string, workloads []string, series []string, data [][]float64) *stats.Table {
	t := stats.NewTable(title, append([]string{"benchmark"}, series...)...)
	sens := sensitiveSet(workloads)
	for wi, name := range workloads {
		row := []any{name}
		for si := range series {
			row = append(row, data[si][wi])
		}
		t.AddRow(row...)
	}
	addGeo := func(label string, filter func(string) bool) {
		row := []any{label}
		for si := range series {
			var vals []float64
			for wi, name := range workloads {
				if filter(name) {
					vals = append(vals, data[si][wi])
				}
			}
			if len(vals) == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, stats.Geomean(vals))
		}
		t.AddRow(row...)
	}
	addGeo("Geomean", func(string) bool { return true })
	addGeo("Geomean pf. sens.", func(n string) bool { return sens[n] })
	return t
}
