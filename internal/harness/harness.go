// Package harness defines one experiment per table and figure in the
// paper's evaluation (§V), plus the ablation studies DESIGN.md calls out.
// Each experiment runs the simulator and renders the same rows or series
// the paper reports, as text tables with CSV export.
package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Params tunes an experiment run.
type Params struct {
	// Opts is the warmup/measure protocol per simulation.
	Opts sim.RunOpts
	// Workloads restricts the benchmark set (nil = all 18).
	Workloads []string
	// Mixes is the number of multiprogrammed mixes (paper: 29).
	Mixes int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultParams mirrors the paper's protocol at simulation-friendly scale.
func DefaultParams() Params {
	return Params{
		Opts:  sim.DefaultRunOpts(),
		Mixes: 29,
	}
}

func (p Params) workloads() []string {
	if len(p.Workloads) > 0 {
		return p.Workloads
	}
	return workload.Names()
}

func (p Params) logf(format string, args ...any) {
	if p.Log != nil {
		fmt.Fprintf(p.Log, format+"\n", args...)
	}
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID    string // paper artifact id: fig1, tab1, ...
	Title string
	// Paper summarises what the original reports, for EXPERIMENTS.md.
	Paper string
	Run   func(Params) ([]*stats.Table, error)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// All returns the experiments in registration (paper) order.
func All() []Experiment { return append([]Experiment(nil), experiments...) }

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// ----------------------------------------------------------------- shared --

// speedups measures per-workload speedups of each configuration over the
// baseline configuration. Configurations are run in order for each
// workload; the result is indexed [config][workload order].
func speedups(p Params, baseline sim.Config, configs []sim.Config) ([][]float64, error) {
	ws := p.workloads()
	out := make([][]float64, len(configs))
	for i := range out {
		out[i] = make([]float64, len(ws))
	}
	for wi, name := range ws {
		base, err := sim.RunSolo(baseline, name, p.Opts)
		if err != nil {
			return nil, fmt.Errorf("baseline on %s: %w", name, err)
		}
		for ci, cfg := range configs {
			res, err := sim.RunSolo(cfg, name, p.Opts)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", cfg.Prefetcher, name, err)
			}
			out[ci][wi] = res.IPC[0] / base.IPC[0]
			p.logf("  %-12s %-8s speedup %.3f", name, label(cfg, ci), out[ci][wi])
		}
	}
	return out, nil
}

func label(cfg sim.Config, i int) string {
	if cfg.Prefetcher != "" {
		return string(cfg.Prefetcher)
	}
	return fmt.Sprintf("cfg%d", i)
}

// sensitiveSet returns which of the given workloads are memory-intensive —
// the static stand-in for the paper's "prefetch sensitive" set (those that
// benefit from a perfect prefetcher; fig1 computes the dynamic version).
func sensitiveSet(names []string) map[string]bool {
	out := map[string]bool{}
	for _, name := range names {
		if w, err := workload.ByName(name); err == nil && w.MemoryIntensive {
			out[name] = true
		}
	}
	return out
}

// speedupTable renders the per-benchmark speedup layout shared by Figures
// 1, 8, 12, 14 and 15: one row per workload, one column per series, then
// Geomean and Geomean-pf-sensitive rows.
func speedupTable(title string, workloads []string, series []string, data [][]float64) *stats.Table {
	t := stats.NewTable(title, append([]string{"benchmark"}, series...)...)
	sens := sensitiveSet(workloads)
	for wi, name := range workloads {
		row := []any{name}
		for si := range series {
			row = append(row, data[si][wi])
		}
		t.AddRow(row...)
	}
	addGeo := func(label string, filter func(string) bool) {
		row := []any{label}
		for si := range series {
			var vals []float64
			for wi, name := range workloads {
				if filter(name) {
					vals = append(vals, data[si][wi])
				}
			}
			if len(vals) == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, stats.Geomean(vals))
		}
		t.AddRow(row...)
	}
	addGeo("Geomean", func(string) bool { return true })
	addGeo("Geomean pf. sens.", func(n string) bool { return sens[n] })
	return t
}
