package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale-out extension (ROADMAP item 3): the paper stops at 4-core mixes;
// this experiment sweeps CMP sizes up to 64 cores on the scale-out memory
// system (banked LLC, channeled DRAM — sim.DefaultScale) and reports how
// each prefetcher's weighted-speedup gain, the DRAM bandwidth demand, and
// prefetch pollution move with core count, plus the shared-resource
// contention the new bank/channel models expose.

func init() {
	registerExperiment(Experiment{
		ID:    "scale",
		Title: "Scale-out: speedup, bandwidth and pollution vs core count (banked LLC, channeled DRAM)",
		Paper: "extension of §V-B2's mix-8 'preliminary results' to 16/64-core CMPs",
		Run:   runScale,
	})
}

// scaleDefaultCores is the sweep when Params.ScaleCores is empty.
var scaleDefaultCores = []int{2, 4, 8, 16, 64}

func runScale(p Params) ([]*stats.Table, error) {
	counts := p.ScaleCores
	if len(counts) == 0 {
		counts = scaleDefaultCores
	}
	foa, err := workload.FOAProfiles(foaProfileInsts)
	if err != nil {
		return nil, err
	}
	allowed := map[string]bool{}
	for _, name := range p.workloads() {
		allowed[name] = true
	}
	for name := range foa {
		if !allowed[name] {
			delete(foa, name)
		}
	}

	// One top-contention mix per core count; the sweep axis is the CMP
	// size, not mix diversity (fig9/fig10/mix8 cover that).
	mixes := make([]workload.Mix, len(counts))
	for i, n := range counts {
		ms := workload.SelectMixes(n, 1, foa)
		if len(ms) == 0 {
			return nil, fmt.Errorf("harness: no %d-app mix from %d workloads", n, len(foa))
		}
		mixes[i] = ms[0]
	}

	// Weighted-speedup denominators: solo IPC on the no-prefetch Table II
	// baseline, shared with every other speedup figure.
	apps := make([]string, 0, len(foa))
	for name := range foa {
		apps = append(apps, name)
	}
	sort.Strings(apps)
	soloRes, err := p.baselineResults(sim.Default(sim.PFNone), apps)
	if err != nil {
		return nil, fmt.Errorf("solo baseline: %w", err)
	}
	solo := map[string]float64{}
	for i, name := range apps {
		solo[name] = soloRes[i].IPC[0]
	}
	p.logf("  baseline solo IPCs done")

	kinds := sim.Kinds
	var jobs []runner.Job
	for _, kind := range kinds {
		for i, n := range counts {
			jobs = append(jobs, runner.Multi(sim.DefaultScale(kind, n), mixes[i].Apps, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	res := map[sim.PrefetcherKind][]sim.Result{}
	for ki, kind := range kinds {
		for i := range counts {
			o := outs[ki*len(counts)+i]
			if o.Err != nil {
				return nil, fmt.Errorf("%s on %s (%d cores): %w", kind, mixes[i].Name, counts[i], o.Err)
			}
			res[kind] = append(res[kind], o.Result)
		}
		p.logf("  scale sweep for %s done", kind)
	}

	ws := func(kind sim.PrefetcherKind, i int) float64 {
		den := make([]float64, len(mixes[i].Apps))
		for j, app := range mixes[i].Apps {
			den[j] = solo[app]
		}
		return stats.WeightedSpeedup(res[kind][i].IPC, den)
	}

	speedup := stats.NewTable(
		"Scale extension: normalized weighted speedup vs core count",
		"cores", "apps", "Stride", "SMS", "Bfetch")
	for i, n := range counts {
		base := ws(sim.PFNone, i)
		speedup.AddRow(fmt.Sprintf("%d", n), shortApps(mixes[i].Apps),
			ws(sim.PFStride, i)/base, ws(sim.PFSMS, i)/base, ws(sim.PFBFetch, i)/base)
	}

	contention := stats.NewTable(
		"Scale extension: shared-memory contention vs core count",
		"cores", "engine", "dram B/cyc", "dram stall/xfer", "bank wait/acc", "pollute/kinst")
	for i, n := range counts {
		cfg := sim.DefaultScale(sim.PFNone, n)
		for _, kind := range kinds {
			r := res[kind][i]
			cycles := float64(r.Cycles)
			xfers := float64(r.DRAM.Transfers())
			bw, stallPerXfer := 0.0, 0.0
			if cycles > 0 {
				bw = xfers * 64 / cycles
			}
			if xfers > 0 {
				stallPerXfer = float64(r.DRAM.StallCycles) / xfers
			}
			var bankWait uint64
			for b := 0; b < cfg.LLCBanks; b++ {
				if v, ok := r.Metrics.Get(fmt.Sprintf("llc.b%d.queue_cycles", b)); ok {
					bankWait += v
				}
			}
			bankPerAcc := 0.0
			if r.LLC.Accesses > 0 {
				bankPerAcc = float64(bankWait) / float64(r.LLC.Accesses)
			}
			var polluting, committed uint64
			for _, lc := range r.Lifecycle {
				polluting += lc.Polluting
			}
			for _, cs := range r.Core {
				committed += cs.Committed
			}
			polKinst := 0.0
			if committed > 0 {
				polKinst = float64(polluting) / float64(committed) * 1000
			}
			contention.AddRow(fmt.Sprintf("%d", n), string(kind), bw, stallPerXfer, bankPerAcc, polKinst)
		}
	}
	return []*stats.Table{speedup, contention}, nil
}

// shortApps renders a mix's application list, eliding repetition in wide
// (tiled) mixes: every distinct app with its multiplicity.
func shortApps(apps []string) string {
	counts := map[string]int{}
	order := []string{}
	for _, a := range apps {
		if counts[a] == 0 {
			order = append(order, a)
		}
		counts[a]++
	}
	if len(order) == len(apps) {
		return strings.Join(apps, "+")
	}
	parts := make([]string, len(order))
	for i, a := range order {
		parts[i] = fmt.Sprintf("%s×%d", a, counts[a])
	}
	return strings.Join(parts, "+")
}
