package harness

import (
	"fmt"

	"repro/internal/isb"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stems"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's figures: the heavy-weight ISB
// comparator (§III-B positions B-Fetch against it qualitatively: comparable
// accuracy on irregular codes, but megabytes of off-chip meta-data) and the
// lookahead-depth characterization backing the paper's "average lookahead
// depth is 8 BB at 0.75 confidence" observation.

func init() {
	registerExperiment(Experiment{
		ID:    "ext-isb",
		Title: "Extension: B-Fetch vs the heavy-weight ISB and STeMS prefetchers (storage vs performance)",
		Paper: "§III-B (qualitative): STeMS ≈ SMS+3% with MBs of off-chip meta-data; ISB high irregular accuracy with ≈8 MB off-chip + 8.4% traffic",
		Run:   runExtISB,
	})
	registerExperiment(Experiment{
		ID:    "ext-bw",
		Title: "Extension: DRAM bandwidth sensitivity (prefetching under channel pressure)",
		Paper: "§V-A fixes the channel at 12.8 GB/s; this sweep varies it to show accuracy's value when bandwidth is scarce",
		Run:   runExtBandwidth,
	})
	registerExperiment(Experiment{
		ID:    "ext-depth",
		Title: "Extension: B-Fetch lookahead depth vs confidence threshold",
		Paper: "§V-B1 (in passing): average lookahead depth ≈8 BB at 0.75 path confidence",
		Run:   runExtDepth,
	})
}

func runExtISB(p Params) ([]*stats.Table, error) {
	base := sim.Default(sim.PFNone)
	configs := []sim.Config{
		sim.Default(sim.PFSMS),
		sim.Default(sim.PFBFetch),
		sim.Default(sim.PFISB),
		sim.Default(sim.PFSTeMS),
	}
	data, lcs, err := speedups(p, base, configs)
	if err != nil {
		return nil, err
	}
	t := speedupTable("Extension: SMS vs B-Fetch vs ISB vs STeMS speedups", p.workloads(),
		[]string{"SMS", "Bfetch", "ISB", "STeMS"}, data)
	lt := lifecycleTable("Extension (obs): prefetch lifecycle by engine",
		[]string{"SMS", "Bfetch", "ISB", "STeMS"}, lcs)

	// Meta-data growth: run ISB on a representative irregular workload and
	// report the mapping footprint against B-Fetch's fixed budget.
	meta := stats.NewTable("Extension: prefetcher state after an mcf run",
		"prefetcher", "state", "location")
	res, err := runWithISB(p, "mcf")
	if err != nil {
		return nil, err
	}
	stemsMeta, err := runWithSTeMS(p, "mcf")
	if err != nil {
		return nil, err
	}
	meta.AddRow("B-Fetch", "12.84 KB (fixed)", "on-chip")
	meta.AddRow("SMS", "≈65 KB (fixed)", "on-chip")
	meta.AddRow("ISB", fmt.Sprintf("%.1f KB (grows with footprint)", float64(res)/1024),
		"off-chip in the original (≈8 MB budget, +8.4% traffic)")
	meta.AddRow("STeMS", fmt.Sprintf("%.1f KB (grows with history)", float64(stemsMeta)/1024),
		"temporal log off-chip in the original (MBs)")
	return []*stats.Table{t, lt, meta}, nil
}

// runWithSTeMS measures STeMS's meta-data bytes after running one workload.
func runWithSTeMS(p Params, app string) (int, error) {
	w, err := workload.ByName(app)
	if err != nil {
		return 0, err
	}
	cfg := sim.Default(sim.PFSTeMS)
	s, err := sim.New(cfg, []workload.Workload{w})
	if err != nil {
		return 0, err
	}
	total := p.Opts.WarmupInsts + p.Opts.MeasureInsts
	if err := s.Run(total, total*1000); err != nil {
		return 0, err
	}
	return s.PFs[0].(*stems.STeMS).MetaBytes(), nil
}

// runWithISB measures ISB's meta-data bytes after running one workload.
func runWithISB(p Params, app string) (int, error) {
	w, err := workload.ByName(app)
	if err != nil {
		return 0, err
	}
	cfg := sim.Default(sim.PFISB)
	s, err := sim.New(cfg, []workload.Workload{w})
	if err != nil {
		return 0, err
	}
	total := p.Opts.WarmupInsts + p.Opts.MeasureInsts
	if err := s.Run(total, total*1000); err != nil {
		return 0, err
	}
	return s.PFs[0].(*isb.ISB).MetaBytes(), nil
}

// runExtBandwidth measures SMS and B-Fetch speedups while scaling the DRAM
// channel from half to double the Table II bandwidth. Useless prefetches
// cost channel slots, so the accuracy gap should widen as bandwidth shrinks.
func runExtBandwidth(p Params) ([]*stats.Table, error) {
	t := stats.NewTable("Extension: DRAM bandwidth sensitivity (geomean speedup over same-bandwidth baseline)",
		"cycles_per_64B", "GBps_at_3.2GHz", "SMS", "Bfetch")
	cpfs := []uint64{32, 16, 8}
	kinds := []sim.PrefetcherKind{sim.PFNone, sim.PFSMS, sim.PFBFetch}
	ws := p.workloads()
	var jobs []runner.Job
	for _, cpf := range cpfs {
		for _, name := range ws {
			for _, kind := range kinds {
				cfg := sim.Default(kind)
				cfg.DRAMCyclesPerFill = cpf
				jobs = append(jobs, runner.Solo(cfg, name, p.Opts))
			}
		}
	}
	outs := p.engine().RunAll(jobs)
	k := 0
	for _, cpf := range cpfs {
		var smsSp, bfSp []float64
		for _, name := range ws {
			ipc := map[sim.PrefetcherKind]float64{}
			for _, kind := range kinds {
				o := outs[k]
				k++
				if o.Err != nil {
					return nil, fmt.Errorf("%s on %s at %d cycles/fill: %w", kind, name, cpf, o.Err)
				}
				ipc[kind] = o.Result.IPC[0]
			}
			smsSp = append(smsSp, ipc[sim.PFSMS]/ipc[sim.PFNone])
			bfSp = append(bfSp, ipc[sim.PFBFetch]/ipc[sim.PFNone])
		}
		p.logf("  %d cycles/fill done", cpf)
		t.AddRow(fmt.Sprint(cpf), fmt.Sprintf("%.1f", 64.0/float64(cpf)*3.2),
			stats.Geomean(smsSp), stats.Geomean(bfSp))
	}
	return []*stats.Table{t}, nil
}

func runExtDepth(p Params) ([]*stats.Table, error) {
	t := stats.NewTable("Extension: B-Fetch lookahead behaviour vs confidence threshold",
		"threshold", "avg_depth_BB", "stops_conf", "stops_brtc", "geomean_speedup")
	thresholds := []float64{0.45, 0.60, 0.75, 0.90, 0.97}
	ws := p.workloads()
	base, err := p.baselineResults(sim.Default(sim.PFNone), ws)
	if err != nil {
		return nil, err
	}

	// Timed runs go through the engine as one batch; the instrumented runs
	// (engine counters are not carried through sim.Run's Result) fan out
	// over the same pool via Map, one slot per (threshold, workload) point.
	configs := make([]sim.Config, len(thresholds))
	var jobs []runner.Job
	for ti, th := range thresholds {
		cfg := sim.Default(sim.PFBFetch)
		cfg.BFetch.PathThreshold = th
		configs[ti] = cfg
		for _, name := range ws {
			jobs = append(jobs, runner.Solo(cfg, name, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	insts := make([]obs.Snapshot, len(jobs))
	if err := p.engine().Map(len(jobs), func(i int) error {
		st, err := bfetchStats(configs[i/len(ws)], ws[i%len(ws)], p.Opts)
		if err != nil {
			return fmt.Errorf("instrumented run on %s: %w", ws[i%len(ws)], err)
		}
		insts[i] = st
		return nil
	}); err != nil {
		return nil, err
	}

	for ti, th := range thresholds {
		var (
			steps, starts, stopsConf, stopsBrtc uint64
			speedup                             []float64
		)
		for wi, name := range ws {
			o := outs[ti*len(ws)+wi]
			if o.Err != nil {
				return nil, fmt.Errorf("threshold %.2f on %s: %w", th, name, o.Err)
			}
			speedup = append(speedup, o.Result.IPC[0]/base[wi].IPC[0])
			st := insts[ti*len(ws)+wi]
			steps += bfetchMetric(st, "lookahead_steps")
			starts += bfetchMetric(st, "lookahead_starts")
			stopsConf += bfetchMetric(st, "lookahead_stops")
			stopsBrtc += bfetchMetric(st, "brtc_misses")
		}
		avg := 0.0
		if starts > 0 {
			avg = float64(steps) / float64(starts)
		}
		p.logf("  threshold %.2f: depth %.1f", th, avg)
		t.AddRow(fmt.Sprintf("%.2f", th), avg, stopsConf, stopsBrtc, stats.Geomean(speedup))
	}
	return []*stats.Table{t}, nil
}
