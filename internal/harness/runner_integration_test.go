package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// These tests pin the tentpole guarantees of the parallel engine: parallel
// and sequential execution render byte-identical tables, and repeated
// points across experiments come from the cache.

func render(tables []*stats.Table) string {
	var sb strings.Builder
	for _, t := range tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runWith(t *testing.T, id string, eng *runner.Engine, log *bytes.Buffer) string {
	t.Helper()
	p := Params{
		Opts:      sim.RunOpts{WarmupInsts: 5_000, MeasureInsts: 10_000},
		Workloads: []string{"libquantum", "gamess", "mcf"},
		Mixes:     2,
		Runner:    eng,
		Baselines: NewBaselineStore(),
	}
	if log != nil {
		p.Log = log
	}
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(p)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return render(tables)
}

func TestParallelTablesMatchSequential(t *testing.T) {
	for _, id := range []string{"fig8", "fig9", "fig11", "fig13", "fig14", "fig3", "fig7"} {
		var seqLog, parLog bytes.Buffer
		seq := runWith(t, id, runner.NewSequential(), &seqLog)
		par := runWith(t, id, runner.New(8), &parLog)
		if seq != par {
			t.Errorf("%s: parallel tables differ from sequential\n--- seq ---\n%s--- par ---\n%s", id, seq, par)
		}
		if seqLog.String() != parLog.String() {
			t.Errorf("%s: progress log not deterministic under parallelism", id)
		}
	}
}

func TestCrossExperimentCacheHits(t *testing.T) {
	// fig1 (Stride/SMS/Perfect) and fig8 (Stride/SMS/B-Fetch) share their
	// Stride and SMS points and the no-prefetch baseline; one shared engine
	// must answer all of fig8's repeats from the cache.
	eng := runner.New(4)
	p := Params{
		Opts:      sim.RunOpts{WarmupInsts: 5_000, MeasureInsts: 10_000},
		Workloads: []string{"libquantum", "gamess"},
		Runner:    eng,
		Baselines: NewBaselineStore(),
	}
	for _, id := range []string{"fig1", "fig8"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(p); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	st := eng.Stats()
	// 2 workloads × 2 shared prefetcher configs = 4 hits minimum.
	if st.Hits < 4 {
		t.Errorf("cache stats after fig1+fig8: %+v, want ≥4 hits", st)
	}
}

func TestBaselineStoreSharesAcrossExperimentsWithoutCache(t *testing.T) {
	// With the runner cache disabled (the -seq worst case), the baseline
	// store must still keep the second experiment from re-simulating the
	// shared no-prefetch baseline points.
	eng := runner.NewSequential()
	eng.SetCache(false)
	p := Params{
		Opts:      sim.RunOpts{WarmupInsts: 5_000, MeasureInsts: 10_000},
		Workloads: []string{"libquantum", "gamess"},
		Runner:    eng,
		Baselines: NewBaselineStore(),
	}
	run := func(id string) {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(p); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	run("fig8")
	afterFirst := eng.Stats().Runs
	if p.Baselines.Len() != len(p.Workloads) {
		t.Fatalf("baseline store holds %d points, want %d", p.Baselines.Len(), len(p.Workloads))
	}
	run("fig12")
	// fig12 needs 3 threshold configs × 2 workloads = 6 new runs; its 2
	// baseline points must come from the store.
	if got := eng.Stats().Runs - afterFirst; got != 6 {
		t.Errorf("fig12 ran %d sims with cache off, want 6 (baselines from the store)", got)
	}
}
