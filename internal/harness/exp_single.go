package harness

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Single-threaded experiments: Figures 1, 8, 11, 12, 13, 14, 15 and the
// design-choice ablations.

func init() {
	registerExperiment(Experiment{
		ID:    "fig1",
		Title: "Speedup of Stride, SMS and a Perfect L1-D prefetcher over no prefetching",
		Paper: "Perfect ≈2× geomean; Stride and SMS far below it; several benchmarks gain nothing (L1-resident)",
		Run:   runFig1,
	})
	registerExperiment(Experiment{
		ID:    "fig8",
		Title: "Single-threaded speedups: Stride vs SMS vs B-Fetch",
		Paper: "B-Fetch 23.2% geomean vs SMS 19.7%; 50.0% vs 41.5% on prefetch-sensitive; SMS wins milc",
		Run:   runFig8,
	})
	registerExperiment(Experiment{
		ID:    "fig11",
		Title: "Useful and useless prefetches issued: SMS vs B-Fetch",
		Paper: "B-Fetch ≈4% more useful and ≈50% fewer useless prefetches than SMS",
		Run:   runFig11,
	})
	registerExperiment(Experiment{
		ID:    "fig12",
		Title: "Branch path-confidence threshold sensitivity (0.45 / 0.75 / 0.90)",
		Paper: "20.6% / 23.2% / 23.0% average speedup; best at 0.75, stable across thresholds",
		Run:   runFig12,
	})
	registerExperiment(Experiment{
		ID:    "fig13",
		Title: "Branch predictor size sensitivity (0.5× / 1× / 2× / 4×)",
		Paper: "Miss rate 2.95→2.53%; B-Fetch speedup nearly flat (1.225→1.241 over baseline ≈1)",
		Run:   runFig13,
	})
	registerExperiment(Experiment{
		ID:    "fig14",
		Title: "Pipeline width sensitivity (2 / 4 / 8-wide)",
		Paper: "B-Fetch speedup 22.6% / 23.2% / 26.7% — grows mildly with width",
		Run:   runFig14,
	})
	registerExperiment(Experiment{
		ID:    "fig15",
		Title: "B-Fetch storage sensitivity (8.01 / 9.65 / 12.94 / 19.46 KB)",
		Paper: "17.0% / 18.9% / 23.2% / 23.1% geomean speedup — knee at 12.94 KB",
		Run:   runFig15,
	})
	registerExperiment(Experiment{
		ID:    "ablation",
		Title: "Design-choice ablations: per-load filter, loop term, patterns, ARF source",
		Paper: "(not a paper figure; DESIGN.md §5 — each mechanism should contribute)",
		Run:   runAblation,
	})
}

func runFig1(p Params) ([]*stats.Table, error) {
	base := sim.Default(sim.PFNone)
	configs := []sim.Config{
		sim.Default(sim.PFStride),
		sim.Default(sim.PFSMS),
		sim.Default(sim.PFPerfect),
	}
	data, lcs, err := speedups(p, base, configs)
	if err != nil {
		return nil, err
	}
	ws := p.workloads()
	t := speedupTable("Figure 1: speedup vs no-prefetch baseline", ws,
		[]string{"Stride", "SMS", "Perfect"}, data)

	// The dynamic prefetch-sensitive set: perfect speedup > 5%.
	sens := stats.NewTable("Figure 1 (aux): dynamically prefetch-sensitive benchmarks",
		"benchmark", "perfect_speedup", "sensitive")
	for wi, name := range ws {
		sens.AddRow(name, data[2][wi], fmt.Sprint(data[2][wi] > 1.05))
	}
	lt := lifecycleTable("Figure 1 (obs): prefetch lifecycle by engine",
		[]string{"Stride", "SMS", "Perfect"}, lcs)
	return []*stats.Table{t, sens, lt}, nil
}

func runFig8(p Params) ([]*stats.Table, error) {
	base := sim.Default(sim.PFNone)
	configs := []sim.Config{
		sim.Default(sim.PFStride),
		sim.Default(sim.PFSMS),
		sim.Default(sim.PFBFetch),
	}
	data, lcs, err := speedups(p, base, configs)
	if err != nil {
		return nil, err
	}
	t := speedupTable("Figure 8: single-threaded speedups", p.workloads(),
		[]string{"Stride", "SMS", "Bfetch"}, data)
	lt := lifecycleTable("Figure 8 (obs): prefetch lifecycle by engine",
		[]string{"Stride", "SMS", "Bfetch"}, lcs)
	return []*stats.Table{t, lt}, nil
}

func runFig11(p Params) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 11: useful and useless prefetches issued",
		"benchmark", "SMS_useful", "SMS_useless", "Bfetch_useful", "Bfetch_useless")
	ws := p.workloads()
	kinds := []sim.PrefetcherKind{sim.PFSMS, sim.PFBFetch}
	var jobs []runner.Job
	for _, name := range ws {
		for _, kind := range kinds {
			jobs = append(jobs, runner.Solo(sim.Default(kind), name, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	var totals [4]uint64
	for wi, name := range ws {
		var row [4]uint64
		for i := range kinds {
			o := outs[wi*len(kinds)+i]
			if o.Err != nil {
				return nil, fmt.Errorf("%s on %s: %w", kinds[i], name, o.Err)
			}
			// Sourced from the lifecycle classifier (useful = timely + late),
			// which TestLifecycleMatchesCacheStats pins to the L1D counters.
			lc := o.Result.Lifecycle[0]
			row[2*i] = lc.Useful()
			row[2*i+1] = lc.UselessEvicted
		}
		p.logf("  %-12s sms %d/%d bfetch %d/%d", name, row[0], row[1], row[2], row[3])
		for i := range totals {
			totals[i] += row[i]
		}
		t.AddRow(name, row[0], row[1], row[2], row[3])
	}
	t.AddRow("TOTAL", totals[0], totals[1], totals[2], totals[3])
	return []*stats.Table{t}, nil
}

func runFig12(p Params) ([]*stats.Table, error) {
	base := sim.Default(sim.PFNone)
	var configs []sim.Config
	thresholds := []float64{0.45, 0.75, 0.90}
	for _, th := range thresholds {
		cfg := sim.Default(sim.PFBFetch)
		cfg.BFetch.PathThreshold = th
		configs = append(configs, cfg)
	}
	data, lcs, err := speedups(p, base, configs)
	if err != nil {
		return nil, err
	}
	t := speedupTable("Figure 12: branch confidence threshold sensitivity", p.workloads(),
		[]string{"Conf=0.45", "Conf=0.75", "Conf=0.90"}, data)
	lt := lifecycleTable("Figure 12 (obs): prefetch lifecycle by threshold",
		[]string{"Conf=0.45", "Conf=0.75", "Conf=0.90"}, lcs)
	return []*stats.Table{t, lt}, nil
}

func runFig13(p Params) ([]*stats.Table, error) {
	scales := []float64{0.5, 1, 2, 4}
	names := []string{"0.5x", "Default", "2x", "4x"}
	t := stats.NewTable("Figure 13: branch predictor size sensitivity",
		"predictor", "baseline_speedup", "bfetch_speedup", "branch_miss_rate")

	// Reference baseline: default predictor, no prefetcher — the same point
	// set every speedup figure shares, so it comes from the baseline store.
	ws := p.workloads()
	refRes, err := p.baselineResults(sim.Default(sim.PFNone), ws)
	if err != nil {
		return nil, err
	}
	ref := make(map[string]float64, len(ws))
	for i, name := range ws {
		ref[name] = refRes[i].IPC[0]
	}

	// One batch over the whole grid: per scale, a scaled-predictor baseline
	// and B-Fetch run per workload.
	var jobs []runner.Job
	for _, scale := range scales {
		baseCfg := sim.Default(sim.PFNone)
		baseCfg.Branch = baseCfg.Branch.Scaled(scale)
		bfCfg := sim.Default(sim.PFBFetch)
		bfCfg.Branch = bfCfg.Branch.Scaled(scale)
		for _, name := range ws {
			jobs = append(jobs,
				runner.Solo(baseCfg, name, p.Opts),
				runner.Solo(bfCfg, name, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	for si := range scales {
		var baseSp, bfSp, missRates []float64
		for wi, name := range ws {
			ob := outs[(si*len(ws)+wi)*2]
			of := outs[(si*len(ws)+wi)*2+1]
			if ob.Err != nil {
				return nil, fmt.Errorf("scaled baseline on %s: %w", name, ob.Err)
			}
			if of.Err != nil {
				return nil, fmt.Errorf("scaled bfetch on %s: %w", name, of.Err)
			}
			baseSp = append(baseSp, ob.Result.IPC[0]/ref[name])
			bfSp = append(bfSp, of.Result.IPC[0]/ref[name])
			missRates = append(missRates, ob.Result.Core[0].BranchMissRate())
		}
		p.logf("  scale %s done", names[si])
		t.AddRow(names[si], stats.Geomean(baseSp), stats.Geomean(bfSp),
			fmt.Sprintf("%.2f%%", 100*stats.Mean(missRates)))
	}
	return []*stats.Table{t}, nil
}

func runFig14(p Params) ([]*stats.Table, error) {
	widths := []int{2, 4, 8}
	var configs []sim.Config
	var bases []sim.Config
	for _, w := range widths {
		bf := sim.Default(sim.PFBFetch)
		bf.CPU = bf.CPU.WithWidth(w)
		configs = append(configs, bf)
		nb := sim.Default(sim.PFNone)
		nb.CPU = nb.CPU.WithWidth(w)
		bases = append(bases, nb)
	}
	ws := p.workloads()
	var jobs []runner.Job
	for _, name := range ws {
		for ci := range configs {
			jobs = append(jobs,
				runner.Solo(bases[ci], name, p.Opts),
				runner.Solo(configs[ci], name, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	data := make([][]float64, len(widths))
	for i := range data {
		data[i] = make([]float64, len(ws))
	}
	for wi, name := range ws {
		for ci := range configs {
			ob := outs[(wi*len(configs)+ci)*2]
			of := outs[(wi*len(configs)+ci)*2+1]
			if ob.Err != nil {
				return nil, fmt.Errorf("%d-wide baseline on %s: %w", widths[ci], name, ob.Err)
			}
			if of.Err != nil {
				return nil, fmt.Errorf("%d-wide bfetch on %s: %w", widths[ci], name, of.Err)
			}
			data[ci][wi] = of.Result.IPC[0] / ob.Result.IPC[0]
		}
		p.logf("  %-12s widths done", name)
	}
	t := speedupTable("Figure 14: CPU pipeline width sensitivity (B-Fetch speedup over same-width baseline)",
		ws, []string{"2wide", "4wide", "8wide"}, data)
	return []*stats.Table{t}, nil
}

func runFig15(p Params) ([]*stats.Table, error) {
	base := sim.Default(sim.PFNone)
	// The paper sweeps 64–512 BrTC entries (≈8–19.5 KB). The synthetic
	// kernels have far smaller static code footprints than SPEC, so table
	// pressure only appears at smaller scales; the sweep extends down to
	// 1/16 (16-entry BrTC, 8-entry MHT) to expose the capacity knee.
	scales := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2}
	var configs []sim.Config
	var names []string
	for _, s := range scales {
		cfg := sim.Default(sim.PFBFetch)
		cfg.BFetch = cfg.BFetch.WithTableScale(s)
		configs = append(configs, cfg)
		kb := float64(storageOf(cfg)) / 8 / 1024
		names = append(names, fmt.Sprintf("%.2fKB", kb))
	}
	data, lcs, err := speedups(p, base, configs)
	if err != nil {
		return nil, err
	}
	t := speedupTable("Figure 15: B-Fetch storage sensitivity", p.workloads(), names, data)
	lt := lifecycleTable("Figure 15 (obs): prefetch lifecycle by storage budget", names, lcs)
	return []*stats.Table{t, lt}, nil
}

func runAblation(p Params) ([]*stats.Table, error) {
	base := sim.Default(sim.PFNone)
	full := sim.Default(sim.PFBFetch)

	noFilter := full
	noFilter.BFetch.EnableFilter = false
	noLoop := full
	noLoop.BFetch.EnableLoopPrefetch = false
	noPatt := full
	noPatt.BFetch.EnablePatterns = false
	commitARF := full
	commitARF.BFetch.ARFFromCommit = true
	privateBP := full
	privateBP.BFetch.PrivatePredictor = true

	configs := []sim.Config{full, noFilter, noLoop, noPatt, commitARF, privateBP}
	data, lcs, err := speedups(p, base, configs)
	if err != nil {
		return nil, err
	}
	series := []string{"full", "no-filter", "no-loop", "no-patterns", "commit-ARF", "private-bp"}
	t := speedupTable("Ablations: B-Fetch design choices", p.workloads(), series, data)
	lt := lifecycleTable("Ablations (obs): prefetch lifecycle by variant", series, lcs)
	return []*stats.Table{t, lt}, nil
}
