package harness

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CPI-stack experiment: the "where do the cycles go" breakdown behind the
// paper's fig-level claim. Every speedup figure shows B-Fetch gaining over
// Stride/SMS, but only a cycle-attribution stack shows *which* stall
// component each engine removes — the paper argues branch-directed lookahead
// converts DRAM-stall cycles into timely fills, and this table measures
// exactly that: per engine, the fraction of core cycles charged to each
// attribution bucket (base/retire, front-end, memory levels, queueing), with
// the exact-partition invariant (buckets sum to cycles) enforced end-to-end
// by obs.ValidateReport.

func init() {
	registerExperiment(Experiment{
		ID:    "cpistack",
		Title: "CPI stack: per-engine cycle attribution, solo and 16-core mix",
		Paper: "§V mechanism check: B-Fetch's speedup should show up as DRAM-stall cycles converted to base cycles",
		Run:   runCPIStack,
	})
}

// cpiEngines is every prefetch engine the repo implements, baseline first —
// the attribution sweep covers the paper's comparators and the extension
// engines alike.
var cpiEngines = []sim.PrefetcherKind{
	sim.PFNone, sim.PFNextN, sim.PFStride, sim.PFSMS,
	sim.PFSTeMS, sim.PFISB, sim.PFBFetch,
}

func runCPIStack(p Params) ([]*stats.Table, error) {
	ws := p.workloads()

	// Solo sweep: each engine on every workload alone, attribution enabled.
	var jobs []runner.Job
	for _, kind := range cpiEngines {
		cfg := sim.Default(kind)
		cfg.CPU.CPIStack = true
		for _, name := range ws {
			jobs = append(jobs, runner.Solo(cfg, name, p.Opts))
		}
	}
	outs := p.engine().RunAll(jobs)
	solo := stats.NewTable(
		"CPI stack, solo (fraction of core cycles per bucket, summed over workloads)",
		cpiCols()...)
	for ki, kind := range cpiEngines {
		var cpi obs.CPIStack
		for wi, name := range ws {
			o := outs[ki*len(ws)+wi]
			if o.Err != nil {
				return nil, fmt.Errorf("%s on %s: %w", kind, name, o.Err)
			}
			for _, cs := range o.Result.Core {
				cpi.AddStack(&cs.CPI)
			}
		}
		solo.AddRow(cpiRow(string(kind), cpi)...)
		p.logf("  cpistack solo %s done", kind)
	}

	// 16-core mix: the highest-FOA 16-application mix on the scale-out
	// memory system (banked LLC, channeled DRAM), so the queueing buckets —
	// llc_bank_queue, dram_chan_queue — have real contention to attribute.
	foa, err := workload.FOAProfiles(foaProfileInsts)
	if err != nil {
		return nil, err
	}
	allowed := map[string]bool{}
	for _, name := range ws {
		allowed[name] = true
	}
	for name := range foa {
		if !allowed[name] {
			delete(foa, name)
		}
	}
	mixes := workload.SelectMixes(16, 1, foa)
	if len(mixes) == 0 {
		return nil, fmt.Errorf("harness: no 16-app mix from %d workloads", len(foa))
	}
	mix := mixes[0]
	jobs = jobs[:0]
	for _, kind := range cpiEngines {
		cfg := sim.DefaultScale(kind, 16)
		cfg.CPU.CPIStack = true
		jobs = append(jobs, runner.Multi(cfg, mix.Apps, p.Opts))
	}
	outs = p.engine().RunAll(jobs)
	mixT := stats.NewTable(
		fmt.Sprintf("CPI stack, 16-core mix %s (fraction of core cycles per bucket, summed over cores)", mix.Name),
		cpiCols()...)
	for ki, kind := range cpiEngines {
		o := outs[ki]
		if o.Err != nil {
			return nil, fmt.Errorf("%s on mix %s: %w", kind, mix.Name, o.Err)
		}
		var cpi obs.CPIStack
		for _, cs := range o.Result.Core {
			cpi.AddStack(&cs.CPI)
		}
		mixT.AddRow(cpiRow(string(kind), cpi)...)
		p.logf("  cpistack mix16 %s done", kind)
	}
	return []*stats.Table{solo, mixT}, nil
}

// cpiCols is the stacked table's column layout: engine, total cycles, then
// one fraction column per attribution bucket in bucket order.
func cpiCols() []string {
	cols := []string{"engine", "cycles"}
	for _, n := range obs.CPIBucketNames {
		cols = append(cols, n)
	}
	return cols
}

// cpiRow renders one engine's stack as fractions of its total cycles.
func cpiRow(name string, cpi obs.CPIStack) []any {
	total := cpi.Total()
	row := []any{name, total}
	for _, v := range cpi {
		if total == 0 {
			row = append(row, 0.0)
			continue
		}
		row = append(row, float64(v)/float64(total))
	}
	return row
}
