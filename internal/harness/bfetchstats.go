package harness

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// bfetchStats runs one workload on a B-Fetch configuration and returns the
// system's metrics snapshot. The engine's internal counters (lookahead
// depth, stop reasons, candidate and filter activity) are read back under
// their canonical registry names ("c0.pf.lookahead_steps", ...), so harness
// tables, JSON run reports and the live endpoint all use one name set
// instead of re-deriving per-engine stat names from struct fields.
func bfetchStats(cfg sim.Config, app string, opts sim.RunOpts) (obs.Snapshot, error) {
	w, err := workload.ByName(app)
	if err != nil {
		return obs.Snapshot{}, err
	}
	cfg.Cores = 1
	cfg.Prefetcher = sim.PFBFetch
	s, err := sim.New(cfg, []workload.Workload{w})
	if err != nil {
		return obs.Snapshot{}, err
	}
	total := opts.WarmupInsts + opts.MeasureInsts
	if err := s.Run(total, total*1000); err != nil {
		return obs.Snapshot{}, err
	}
	return s.Reg.Snapshot(), nil
}

// bfetchMetric reads one canonical B-Fetch engine counter ("lookahead_steps",
// "brtc_misses", ...) out of a single-core snapshot from bfetchStats.
func bfetchMetric(snap obs.Snapshot, name string) uint64 {
	v, _ := snap.Get("c0.pf." + name)
	return v
}
