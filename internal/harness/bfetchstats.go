package harness

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// bfetchStats runs one workload on a B-Fetch configuration and returns the
// engine's internal counters (lookahead depth, stop reasons, candidate and
// filter activity) — detail the Result snapshot deliberately omits.
func bfetchStats(cfg sim.Config, app string, opts sim.RunOpts) (core.Stats, error) {
	w, err := workload.ByName(app)
	if err != nil {
		return core.Stats{}, err
	}
	cfg.Cores = 1
	cfg.Prefetcher = sim.PFBFetch
	s, err := sim.New(cfg, []workload.Workload{w})
	if err != nil {
		return core.Stats{}, err
	}
	total := opts.WarmupInsts + opts.MeasureInsts
	if err := s.Run(total, total*1000); err != nil {
		return core.Stats{}, err
	}
	return s.PFs[0].(*core.BFetch).Stats, nil
}
