package stems

import (
	"testing"

	"repro/internal/prefetch"
)

func drain(s *STeMS, cycles int) []prefetch.Request {
	var all []prefetch.Request
	for i := 0; i < cycles; i++ {
		all = s.AppendTick(all, uint64(i))
	}
	return all
}

func touch(s *STeMS, pc, base uint64, offsets []int) {
	for _, off := range offsets {
		s.OnAccess(prefetch.AccessInfo{PC: pc, Addr: base + uint64(off*64)})
	}
}

// visitSequence touches a series of regions in order, each with its own
// trigger PC and pattern, as one pass of a temporal stream.
func visitSequence(s *STeMS, regions []uint64) {
	for i, r := range regions {
		touch(s, 0x1000+uint64(i)*4, r, []int{0, 2, 5})
	}
}

func TestTemporalReplay(t *testing.T) {
	s := New(DefaultConfig())
	regions := []uint64{0x10000, 0x48000, 0x90000, 0x31000 &^ 0x7FF, 0x70000}

	visitSequence(s, regions) // pass 1: log the temporal stream
	// Close the generations (the AGT only recycles under pressure, as in
	// SMS) so the revisit below is a fresh trigger rather than an
	// accumulation into a still-active generation.
	for i := 0; i < s.cfg.AGTEntries+2; i++ {
		touch(s, 0x9000, 0x100_0000+uint64(i)*2048, []int{1})
	}
	drain(s, 500)

	// Pass 2: revisiting the first trigger+region must replay the regions
	// that followed it, before demand reaches them.
	touch(s, 0x1000, regions[0], []int{0})
	reqs := drain(s, 200)
	if s.TemporalHits == 0 {
		t.Fatal("no temporal hit on a recurring trigger")
	}
	covered := map[uint64]bool{}
	for _, r := range reqs {
		covered[r.Addr>>11] = true
	}
	hits := 0
	for _, r := range regions[1:] {
		if covered[r>>11] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("replay covered %d future regions, want ≥2 (reqs %d)", hits, len(reqs))
	}
}

func TestSpatialPatternInReplay(t *testing.T) {
	s := New(DefaultConfig())
	regions := []uint64{0x10000, 0x48000}
	// Train the second region's pattern through AGT eviction pressure.
	visitSequence(s, regions)
	// Force generation training by starting many unrelated generations.
	for i := 0; i < s.cfg.AGTEntries+2; i++ {
		touch(s, 0x9000, 0x100_0000+uint64(i)*2048, []int{1})
	}
	drain(s, 500)

	touch(s, 0x1000, regions[0], []int{0})
	reqs := drain(s, 500)
	// The replayed second region should include its patterned blocks
	// (offsets 0, 2, 5), not just the trigger block.
	want := map[uint64]bool{
		regions[1] + 0*64: true,
		regions[1] + 2*64: true,
		regions[1] + 5*64: true,
	}
	got := 0
	for _, r := range reqs {
		if want[r.Addr] {
			got++
		}
	}
	if got < 2 {
		t.Errorf("replayed region carried %d patterned blocks, want ≥2: %v", got, reqs)
	}
}

func TestNoReplayOnColdTrigger(t *testing.T) {
	s := New(DefaultConfig())
	touch(s, 0x2000, 0x50000, []int{0, 1})
	if s.TemporalHits != 0 {
		t.Error("temporal hit on first occurrence")
	}
}

func TestDifferentRegionSameTriggerNoReplay(t *testing.T) {
	s := New(DefaultConfig())
	// Same PC+offset but a different region: the logged position's region
	// check must reject the match.
	touch(s, 0x3000, 0x10000, []int{0})
	touch(s, 0x3000, 0x20000, []int{0})
	if s.TemporalHits != 0 {
		t.Errorf("false temporal hit: %d", s.TemporalHits)
	}
}

func TestStorageGrowsWithLog(t *testing.T) {
	s := New(DefaultConfig())
	before := s.StorageBits()
	visitSequence(s, []uint64{0x10000, 0x20000, 0x30000})
	if s.StorageBits() <= before {
		t.Error("temporal log growth not accounted")
	}
	if s.MetaBytes() != s.StorageBits()/8 {
		t.Error("MetaBytes inconsistent")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{RegionBytes: 100, AGTEntries: 4, PHTEntries: 16, RMOBEntries: 8, Depth: 1},
		{RegionBytes: 2048, AGTEntries: 4, PHTEntries: 1000, RMOBEntries: 8, Depth: 1},
		{RegionBytes: 2048, AGTEntries: 4, PHTEntries: 16, RMOBEntries: 8, Depth: 0},
		{RegionBytes: 8192, AGTEntries: 4, PHTEntries: 16, RMOBEntries: 8, Depth: 1},
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}
