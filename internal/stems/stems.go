// Package stems implements a simplified Spatio-Temporal Memory Streaming
// prefetcher (Somogyi, Wenisch, Ailamaki, Falsafi, ISCA 2009) — the
// heavy-weight SMS extension the paper's related-work section discusses
// (§III-B): SMS's spatial patterns, plus the *temporal order* in which
// spatial regions are visited, so that one recurring trigger can replay a
// whole sequence of upcoming regions.
//
// Structures:
//
//   - a spatial side identical in spirit to SMS: an active-generation table
//     accumulates per-region access patterns, trained into a pattern table
//     keyed by the region's trigger;
//   - a Region Miss Order Buffer (RMOB): a circular log of region triggers
//     in program order — the temporal stream. The original keeps this
//     meta-data off-chip (megabytes, shuttled on demand, §III-B / [27]);
//     here it lives in simulator memory with a capacity cap and its size is
//     reported by StorageBits;
//   - a temporal index mapping a trigger to its most recent RMOB position.
//
// On a trigger that hits the temporal index, the streaming engine replays
// the next Depth logged regions, prefetching each one's stored spatial
// pattern — recreating the interleaved future miss sequence, which is
// exactly what plain SMS cannot do across region boundaries.
package stems

import (
	"repro/internal/obs"
	"repro/internal/prefetch"
)

// Config sizes the prefetcher.
type Config struct {
	RegionBytes int // spatial region size (power of two)
	AGTEntries  int
	PHTEntries  int // power of two, tagless
	RMOBEntries int // temporal log capacity (off-chip in the original)
	Depth       int // regions replayed per temporal hit
}

// DefaultConfig follows the paper's description: SMS's practical spatial
// configuration plus a megabyte-class temporal log.
func DefaultConfig() Config {
	return Config{
		RegionBytes: 2048,
		AGTEntries:  64,
		PHTEntries:  16384,
		RMOBEntries: 64 * 1024,
		Depth:       4,
	}
}

type generation struct {
	valid      bool
	regionTag  uint64
	triggerPC  uint64
	triggerOff int
	pattern    uint64
	lastUse    uint64
}

type rmobEntry struct {
	triggerPC uint64
	region    uint64
	off       int
}

// STeMS is the prefetcher.
type STeMS struct {
	prefetch.Base
	cfg         Config //bfetch:noreset configuration
	regionShift uint   //bfetch:noreset configuration
	blocksPer   int    //bfetch:noreset configuration

	agt []generation //bfetch:noreset learned active generations
	pht []uint64     //bfetch:noreset learned patterns

	rmob     []rmobEntry    //bfetch:noreset learned temporal log
	rmobHead int            //bfetch:noreset next write position
	rmobLen  int            //bfetch:noreset learned temporal log occupancy
	temporal map[uint64]int //bfetch:noreset trigger key → RMOB position of last occurrence

	queue *prefetch.Queue
	clock uint64 //bfetch:noreset internal clock, monotonic

	// Stats.
	TemporalHits uint64
	Generations  uint64
}

// New builds a STeMS prefetcher.
func New(cfg Config) *STeMS {
	if cfg.RegionBytes < 128 || cfg.RegionBytes&(cfg.RegionBytes-1) != 0 {
		panic("stems: region bytes must be a power of two ≥ 128")
	}
	if cfg.PHTEntries <= 0 || cfg.PHTEntries&(cfg.PHTEntries-1) != 0 {
		panic("stems: PHT entries must be a power of two")
	}
	if cfg.Depth <= 0 || cfg.RMOBEntries <= 0 {
		panic("stems: invalid temporal configuration")
	}
	shift := uint(0)
	for 1<<shift != cfg.RegionBytes {
		shift++
	}
	blocks := cfg.RegionBytes / 64
	if blocks > 64 {
		panic("stems: region too large for a 64-bit pattern")
	}
	return &STeMS{
		cfg:         cfg,
		regionShift: shift,
		blocksPer:   blocks,
		agt:         make([]generation, cfg.AGTEntries),
		pht:         make([]uint64, cfg.PHTEntries),
		rmob:        make([]rmobEntry, cfg.RMOBEntries),
		temporal:    make(map[uint64]int),
		queue:       prefetch.NewQueue(128, 2),
	}
}

func (s *STeMS) Name() string { return "stems" }

func triggerKey(pc uint64, off int) uint64 {
	return pc<<6 | uint64(off)
}

func (s *STeMS) phtIdx(pc uint64, off int) int {
	h := (pc >> 2) ^ (pc >> 13) ^ uint64(off)*0x9E37
	return int(h & uint64(s.cfg.PHTEntries-1))
}

// OnAccess accumulates spatial patterns, logs region triggers temporally,
// and replays logged futures on temporal hits.
func (s *STeMS) OnAccess(a prefetch.AccessInfo) {
	s.clock++
	region := a.Addr >> s.regionShift
	off := int((a.Addr >> 6) & uint64(s.blocksPer-1))

	// Within an active generation: accumulate.
	for i := range s.agt {
		g := &s.agt[i]
		if g.valid && g.regionTag == region {
			g.pattern |= 1 << off
			g.lastUse = s.clock
			return
		}
	}

	// Region trigger.
	s.Generations++
	victim := &s.agt[0]
	for i := range s.agt {
		if !s.agt[i].valid {
			victim = &s.agt[i]
			break
		}
		if s.agt[i].lastUse < victim.lastUse {
			victim = &s.agt[i]
		}
	}
	if victim.valid {
		s.train(victim)
	}
	*victim = generation{
		valid: true, regionTag: region, triggerPC: a.PC,
		triggerOff: off, pattern: 1 << off, lastUse: s.clock,
	}

	key := triggerKey(a.PC, off)
	if pos, ok := s.temporal[key]; ok && s.rmob[pos].region == region {
		// The same trigger touched the same region before: replay the
		// regions that followed it last time.
		s.TemporalHits++
		s.replay(pos)
	}

	// Log this trigger.
	s.rmob[s.rmobHead] = rmobEntry{triggerPC: a.PC, region: region, off: off}
	s.temporal[key] = s.rmobHead
	s.rmobHead = (s.rmobHead + 1) % len(s.rmob)
	if s.rmobLen < len(s.rmob) {
		s.rmobLen++
	}
}

// replay prefetches the spatial patterns of the Depth regions logged after
// position pos.
func (s *STeMS) replay(pos int) {
	for d := 1; d <= s.cfg.Depth; d++ {
		p := (pos + d) % len(s.rmob)
		if p >= s.rmobLen && s.rmobLen < len(s.rmob) {
			return // past the log's end
		}
		e := s.rmob[p]
		if e.region == 0 && e.triggerPC == 0 {
			return
		}
		base := e.region << s.regionShift
		pattern := s.pht[s.phtIdx(e.triggerPC, e.off)]
		// Always fetch the trigger block; add the stored pattern if known.
		pattern |= 1 << e.off
		for b := 0; b < s.blocksPer; b++ {
			if pattern&(1<<b) != 0 {
				s.queue.Push(prefetch.Request{Addr: base + uint64(b*64), LoadPC: e.triggerPC})
			}
		}
	}
}

func (s *STeMS) train(g *generation) {
	if g.pattern&(g.pattern-1) == 0 {
		return
	}
	s.pht[s.phtIdx(g.triggerPC, g.triggerOff)] = g.pattern
}

// AppendTick drains the prefetch queue.
//
//bfetch:hotpath
func (s *STeMS) AppendTick(dst []prefetch.Request, now uint64) []prefetch.Request {
	return s.queue.AppendPop(dst)
}

// Idle reports whether the queue is drained.
func (s *STeMS) Idle() bool { return s.queue.Len() == 0 }

// ResetStats zeroes the measurement counters.
func (s *STeMS) ResetStats() {
	s.TemporalHits, s.Generations = 0, 0
	s.queue.ResetStats()
}

// RegisterObs exports the engine's counters into the metrics registry.
func (s *STeMS) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"temporal_hits", func() uint64 { return s.TemporalHits })
	reg.Func(prefix+"generations", func() uint64 { return s.Generations })
	s.queue.RegisterObs(reg, prefix)
}

// StorageBits reports total state including the temporal log the original
// keeps off-chip: RMOB entries carry a PC (32), region address (34) and
// offset; the temporal index adds a position per live trigger.
func (s *STeMS) StorageBits() int {
	offBits := 0
	for 1<<offBits < s.blocksPer {
		offBits++
	}
	spatial := s.cfg.AGTEntries*(34+32+offBits+s.blocksPer) + s.cfg.PHTEntries*s.blocksPer
	temporal := s.rmobLen*(32+34+offBits) + len(s.temporal)*32
	return spatial + temporal + s.queue.StorageBits()
}

// MetaBytes reports the current total state in bytes.
func (s *STeMS) MetaBytes() int { return s.StorageBits() / 8 }
