package isa

import "fmt"

// Builder assembles a Program in code, with forward-referenceable labels.
// It is the programmatic twin of the text assembler and is what the workload
// generators use.
//
// Usage:
//
//	b := isa.NewBuilder()
//	loop := b.NewLabel()
//	b.Movi(isa.R(1), 0)
//	b.Bind(loop)
//	b.Ld(isa.R(2), isa.R(1), 0)
//	b.Addi(isa.R(1), isa.R(1), 8)
//	b.Cmplti(isa.R(3), isa.R(1), 4096)
//	b.Bnez(isa.R(3), loop)
//	b.Halt()
//	prog := b.MustProgram()
type Builder struct {
	insts    []Inst
	labels   []int          // label id -> instruction index, -1 if unbound
	names    map[string]int // optional label names -> label id
	patches  []patch
	textBase uint64
}

type patch struct {
	inst  int
	label Label
}

// Label is a branch target handle issued by a Builder.
type Label int

// NewBuilder returns an empty Builder with the default text base.
func NewBuilder() *Builder {
	return &Builder{names: make(map[string]int), textBase: DefaultTextBase}
}

// SetTextBase overrides the text segment base address.
func (b *Builder) SetTextBase(base uint64) { b.textBase = base }

// NewLabel allocates an unbound label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// NamedLabel allocates (or returns the existing) label with the given name.
func (b *Builder) NamedLabel(name string) Label {
	if id, ok := b.names[name]; ok {
		return Label(id)
	}
	l := b.NewLabel()
	b.names[name] = int(l)
	return l
}

// Bind binds a label to the next emitted instruction.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic(fmt.Sprintf("isa: label %d bound twice", l))
	}
	b.labels[l] = len(b.insts)
}

// Here returns a label bound to the next emitted instruction.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) emitBranch(op Op, rs Reg, l Label) *Builder {
	b.patches = append(b.patches, patch{inst: len(b.insts), label: l})
	return b.Emit(Inst{Op: op, Rs: rs})
}

// ALU register-register forms.

func (b *Builder) Add(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: ADD, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Sub(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: SUB, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Mul(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: MUL, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) And(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: AND, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Or(rd, rs, rt Reg) *Builder  { return b.Emit(Inst{Op: OR, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Xor(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: XOR, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Sll(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: SLL, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Srl(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: SRL, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) Sra(rd, rs, rt Reg) *Builder { return b.Emit(Inst{Op: SRA, Rd: rd, Rs: rs, Rt: rt}) }

func (b *Builder) Cmpeq(rd, rs, rt Reg) *Builder {
	return b.Emit(Inst{Op: CMPEQ, Rd: rd, Rs: rs, Rt: rt})
}
func (b *Builder) Cmplt(rd, rs, rt Reg) *Builder {
	return b.Emit(Inst{Op: CMPLT, Rd: rd, Rs: rs, Rt: rt})
}
func (b *Builder) Cmple(rd, rs, rt Reg) *Builder {
	return b.Emit(Inst{Op: CMPLE, Rd: rd, Rs: rs, Rt: rt})
}

// ALU immediate forms.

func (b *Builder) Addi(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: ADDI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Muli(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: MULI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Andi(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: ANDI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Ori(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: ORI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Xori(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: XORI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Slli(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: SLLI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Srli(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: SRLI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Srai(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: SRAI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Cmpeqi(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: CMPEQI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Cmplti(rd, rs Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: CMPLTI, Rd: rd, Rs: rs, Imm: imm})
}
func (b *Builder) Movi(rd Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: MOVI, Rd: rd, Imm: imm})
}

// Mov copies rs into rd (encoded as addi rd, rs, 0).
func (b *Builder) Mov(rd, rs Reg) *Builder { return b.Addi(rd, rs, 0) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.Emit(Inst{Op: NOP}) }

// Memory.

// Ld emits ld rd, disp(base).
func (b *Builder) Ld(rd, base Reg, disp int64) *Builder {
	return b.Emit(Inst{Op: LD, Rd: rd, Rs: base, Imm: disp})
}

// St emits st rt, disp(base).
func (b *Builder) St(rt, base Reg, disp int64) *Builder {
	return b.Emit(Inst{Op: ST, Rt: rt, Rs: base, Imm: disp})
}

// Control flow.

func (b *Builder) Beqz(rs Reg, l Label) *Builder { return b.emitBranch(BEQZ, rs, l) }
func (b *Builder) Bnez(rs Reg, l Label) *Builder { return b.emitBranch(BNEZ, rs, l) }
func (b *Builder) Bltz(rs Reg, l Label) *Builder { return b.emitBranch(BLTZ, rs, l) }
func (b *Builder) Bgez(rs Reg, l Label) *Builder { return b.emitBranch(BGEZ, rs, l) }
func (b *Builder) Jmp(l Label) *Builder          { return b.emitBranch(JMP, RZero, l) }
func (b *Builder) Jr(rs Reg) *Builder            { return b.Emit(Inst{Op: JR, Rs: rs}) }
func (b *Builder) Halt() *Builder                { return b.Emit(Inst{Op: HALT}) }

// Program resolves labels and returns the assembled, validated program.
func (b *Builder) Program() (*Program, error) {
	for _, p := range b.patches {
		idx := b.labels[p.label]
		if idx == -1 {
			return nil, fmt.Errorf("isa: unbound label %d referenced by instruction %d", p.label, p.inst)
		}
		b.insts[p.inst].Target = idx
	}
	symbols := make(map[string]int, len(b.names))
	for name, id := range b.names {
		if b.labels[id] == -1 {
			return nil, fmt.Errorf("isa: unbound named label %q", name)
		}
		symbols[name] = b.labels[id]
	}
	prog := &Program{
		Insts:    append([]Inst(nil), b.insts...),
		Symbols:  symbols,
		TextBase: b.textBase,
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustProgram is Program but panics on error; for use in generators whose
// output is fixed at development time.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
