package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly syntax into a Program.
//
// Syntax, one instruction or label per line:
//
//	; full-line or trailing comment (also #)
//	loop:                 ; labels end with ':'
//	    movi  r1, 0x40
//	    ld    r2, 24(r1)  ; 64-bit load, disp(base)
//	    st    r2, -8(r1)
//	    add   r3, r2, r1
//	    addi  r1, r1, 8
//	    cmplti r4, r1, 4096
//	    bnez  r4, loop    ; branch targets are labels or @index
//	    jmp   done
//	    jr    r5
//	done:
//	    halt
//
// Immediates accept decimal (optionally negative) and 0x-prefixed hex.
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry a label, optionally followed by an instruction.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isIdent(name) {
				return nil, asmErr(lineNo, "invalid label %q", name)
			}
			l := b.NamedLabel(name)
			if b.labels[l] != -1 {
				return nil, asmErr(lineNo, "label %q defined twice", name)
			}
			b.Bind(l)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleInst(b, line); err != nil {
			return nil, asmErr(lineNo, "%v", err)
		}
	}
	return b.Program()
}

// MustAssemble is Assemble but panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func asmErr(lineNo int, format string, args ...any) error {
	return fmt.Errorf("isa: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func assembleInst(b *Builder, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	op, ok := opByName[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)

	switch op {
	case NOP, HALT:
		if len(args) != 0 {
			return fmt.Errorf("%s takes no operands", op)
		}
		b.Emit(Inst{Op: op})
	case ADD, SUB, MUL, AND, OR, XOR, SLL, SRL, SRA, CMPEQ, CMPLT, CMPLE:
		rd, rs, rt, err := threeRegs(args)
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
	case ADDI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, CMPEQI, CMPLTI:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, rs, imm", op)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
	case MOVI:
		if len(args) != 2 {
			return fmt.Errorf("movi wants rd, imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: MOVI, Rd: rd, Imm: imm})
	case LD, ST:
		if len(args) != 2 {
			return fmt.Errorf("%s wants reg, disp(base)", op)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		disp, base, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		if op == LD {
			b.Emit(Inst{Op: LD, Rd: r, Rs: base, Imm: disp})
		} else {
			b.Emit(Inst{Op: ST, Rt: r, Rs: base, Imm: disp})
		}
	case BEQZ, BNEZ, BLTZ, BGEZ:
		if len(args) != 2 {
			return fmt.Errorf("%s wants rs, target", op)
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		return emitTarget(b, Inst{Op: op, Rs: rs}, args[1])
	case JMP:
		if len(args) != 1 {
			return fmt.Errorf("jmp wants a target")
		}
		return emitTarget(b, Inst{Op: JMP}, args[0])
	case JR:
		if len(args) != 1 {
			return fmt.Errorf("jr wants a register")
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: JR, Rs: rs})
	default:
		return fmt.Errorf("unhandled mnemonic %q", mnemonic)
	}
	return nil
}

func emitTarget(b *Builder, in Inst, target string) error {
	if abs, ok := strings.CutPrefix(target, "@"); ok {
		idx, err := strconv.Atoi(abs)
		if err != nil {
			return fmt.Errorf("bad absolute target %q", target)
		}
		in.Target = idx
		b.Emit(in)
		return nil
	}
	if !isIdent(target) {
		return fmt.Errorf("bad branch target %q", target)
	}
	l := b.NamedLabel(target)
	b.patches = append(b.patches, patch{inst: len(b.insts), label: l})
	b.Emit(in)
	return nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func threeRegs(args []string) (rd, rs, rt Reg, err error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("want rd, rs, rt")
	}
	if rd, err = parseReg(args[0]); err != nil {
		return
	}
	if rs, err = parseReg(args[1]); err != nil {
		return
	}
	rt, err = parseReg(args[2])
	return
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	num, ok := strings.CutPrefix(s, "r")
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if rest, ok := strings.CutPrefix(s, "-"); ok {
		neg, s = true, rest
	}
	var (
		v   uint64
		err error
	)
	if hex, ok := strings.CutPrefix(strings.ToLower(s), "0x"); ok {
		v, err = strconv.ParseUint(hex, 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	imm := int64(v)
	if neg {
		imm = -imm
	}
	return imm, nil
}

// parseMemOperand parses "disp(base)" such as "24(r2)" or "-8(r7)"; the
// displacement may be omitted ("(r2)" means 0(r2)).
func parseMemOperand(s string) (disp int64, base Reg, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr != "" {
		if disp, err = parseImm(dispStr); err != nil {
			return 0, 0, err
		}
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	return disp, base, err
}

// Disassemble renders a program back to assembler text, emitting synthetic
// labels at branch targets so the output round-trips through Assemble.
func Disassemble(p *Program) string {
	targets := map[int]string{}
	for name, idx := range p.Symbols {
		targets[idx] = name
	}
	for _, in := range p.Insts {
		if in.IsDirect() {
			if _, ok := targets[in.Target]; !ok {
				targets[in.Target] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	var sb strings.Builder
	for i, in := range p.Insts {
		if name, ok := targets[i]; ok {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		if in.IsDirect() {
			text := in.String()
			at := fmt.Sprintf("@%d", in.Target)
			text = strings.Replace(text, at, targets[in.Target], 1)
			fmt.Fprintf(&sb, "    %s\n", text)
			continue
		}
		fmt.Fprintf(&sb, "    %s\n", in)
	}
	return sb.String()
}
