package isa

import (
	"strings"
	"testing"
)

const loopSrc = `
; count down from 10, accumulating loads
    movi  r1, 10
    movi  r2, 0x2000
    movi  r5, 0
loop:
    ld    r3, 0(r2)       ; trailing comment
    add   r5, r5, r3
    st    r5, 8(r2)
    addi  r2, r2, 64
    addi  r1, r1, -1
    bnez  r1, loop
    halt
`

func TestAssembleLoop(t *testing.T) {
	p, err := Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("len = %d, want 10", p.Len())
	}
	if idx, ok := p.Symbols["loop"]; !ok || idx != 3 {
		t.Errorf("symbol loop = %d,%v want 3", idx, ok)
	}
	br := p.Insts[8]
	if br.Op != BNEZ || br.Rs != 1 || br.Target != 3 {
		t.Errorf("branch = %v", br)
	}
	ld := p.Insts[3]
	if ld.Op != LD || ld.Rd != 3 || ld.Rs != 2 || ld.Imm != 0 {
		t.Errorf("load = %v", ld)
	}
	st := p.Insts[5]
	if st.Op != ST || st.Rt != 5 || st.Rs != 2 || st.Imm != 8 {
		t.Errorf("store = %v", st)
	}
}

func TestAssembleImmediates(t *testing.T) {
	p, err := Assemble("movi r1, 0x40\nmovi r2, -17\nmovi r3, 0xABCDEF\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 0x40 || p.Insts[1].Imm != -17 || p.Insts[2].Imm != 0xABCDEF {
		t.Errorf("immediates = %d %d %d", p.Insts[0].Imm, p.Insts[1].Imm, p.Insts[2].Imm)
	}
}

func TestAssembleMemOperandForms(t *testing.T) {
	p, err := Assemble("ld r1, (r2)\nld r3, -8(r4)\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 0 {
		t.Errorf("implicit displacement = %d", p.Insts[0].Imm)
	}
	if p.Insts[1].Imm != -8 {
		t.Errorf("negative displacement = %d", p.Insts[1].Imm)
	}
}

func TestAssembleAbsoluteTarget(t *testing.T) {
	p, err := Assemble("nop\nbeqz r1, @0\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 0 {
		t.Errorf("target = %d", p.Insts[1].Target)
	}
}

func TestAssembleLabelOnOwnLineAndShared(t *testing.T) {
	p, err := Assemble("a:\nb: nop\njmp a\njmp b\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != 0 || p.Symbols["b"] != 0 {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown mnemonic", "frob r1, r2\nhalt"},
		{"bad register", "add r1, r2, r99\nhalt"},
		{"bad register name", "add r1, x2, r3\nhalt"},
		{"missing operand", "add r1, r2\nhalt"},
		{"undefined label", "jmp nowhere\nhalt"},
		{"duplicate label", "a: nop\na: nop\nhalt"},
		{"bad target", "beqz r1, 12x\nhalt"},
		{"bad mem operand", "ld r1, r2\nhalt"},
		{"bad immediate", "movi r1, zz\nhalt"},
		{"halt with operand", "halt r1"},
		{"bad label", "9lab: nop\nhalt"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if c.name != "undefined label" && !strings.Contains(err.Error(), "line") {
			// Undefined labels are only detectable at the end of assembly,
			// so they carry no line number.
			t.Errorf("%s: error %q lacks line info", c.name, err)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p1 := MustAssemble(loopSrc)
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("lengths differ: %d vs %d", p1.Len(), p2.Len())
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}

func TestDisassembleSyntheticLabels(t *testing.T) {
	b := NewBuilder()
	l := b.Here()
	b.Addi(R(1), R(1), -1)
	b.Bnez(R(1), l)
	b.Halt()
	text := Disassemble(b.MustProgram())
	if !strings.Contains(text, "L0:") {
		t.Errorf("expected synthetic label in:\n%s", text)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad input")
		}
	}()
	MustAssemble("frob")
}
