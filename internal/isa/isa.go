// Package isa defines the instruction set executed by the simulators in this
// repository: a small, ALPHA-flavoured 64-bit RISC with 32 integer registers.
//
// The instruction set is deliberately minimal but complete enough to express
// the control-flow and addressing idioms the B-Fetch paper depends on: basic
// blocks delimited by conditional branches, loads whose effective addresses
// are base-register + static offset, and register transformations that evolve
// predictably across basic blocks.
//
// Instructions are represented as decoded structs rather than encoded words;
// each instruction occupies 4 bytes of the simulated text segment so that
// program counters look like conventional byte addresses.
package isa

import "fmt"

// Reg names an architectural integer register. R31 reads as zero and writes
// to it are discarded, following the ALPHA convention.
type Reg uint8

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// RZero is the hardwired zero register.
const RZero Reg = 31

// R returns the n-th register and panics if n is out of range. It exists so
// workload generators can compute register numbers without casting.
func R(n int) Reg {
	if n < 0 || n >= NumRegs {
		panic(fmt.Sprintf("isa: register r%d out of range", n))
	}
	return Reg(n)
}

func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// Op enumerates the operations in the instruction set.
type Op uint8

// Operations. Three-register ALU ops compute Rd = Rs op Rt. Immediate forms
// compute Rd = Rs op Imm. Memory operations transfer 64-bit words:
// LD Rd, Imm(Rs) and ST Rt, Imm(Rs). Conditional branches test Rs against
// zero and jump to Target (an instruction index). JMP is a direct jump and JR
// an indirect jump through Rs (a byte address in the text segment).
const (
	NOP Op = iota

	// Register-register ALU.
	ADD
	SUB
	MUL
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	CMPEQ // Rd = 1 if Rs == Rt else 0
	CMPLT // Rd = 1 if Rs <  Rt (signed) else 0
	CMPLE // Rd = 1 if Rs <= Rt (signed) else 0

	// Register-immediate ALU.
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	CMPEQI
	CMPLTI
	MOVI // Rd = Imm

	// Memory.
	LD // Rd = mem64[Rs + Imm]
	ST // mem64[Rs + Imm] = Rt

	// Control flow.
	BEQZ // if Rs == 0 goto Target
	BNEZ // if Rs != 0 goto Target
	BLTZ // if Rs <  0 goto Target
	BGEZ // if Rs >= 0 goto Target
	JMP  // goto Target
	JR   // goto byte address in Rs

	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or",
	XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra", CMPEQ: "cmpeq",
	CMPLT: "cmplt", CMPLE: "cmple", ADDI: "addi", MULI: "muli", ANDI: "andi",
	ORI: "ori", XORI: "xori", SLLI: "slli", SRLI: "srli", SRAI: "srai",
	CMPEQI: "cmpeqi", CMPLTI: "cmplti", MOVI: "movi", LD: "ld", ST: "st",
	BEQZ: "beqz", BNEZ: "bnez", BLTZ: "bltz", BGEZ: "bgez", JMP: "jmp",
	JR: "jr", HALT: "halt",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return op < numOps }

// Inst is one decoded instruction.
type Inst struct {
	Op     Op
	Rd     Reg   // destination (ALU, MOVI, LD)
	Rs     Reg   // first source / base register / branch condition
	Rt     Reg   // second source / store data
	Imm    int64 // immediate / memory displacement
	Target int   // branch or jump target, as an instruction index
}

// Instruction classification helpers.

// IsCondBranch reports whether the instruction is a conditional branch.
func (in Inst) IsCondBranch() bool {
	switch in.Op {
	case BEQZ, BNEZ, BLTZ, BGEZ:
		return true
	}
	return false
}

// IsControl reports whether the instruction may change control flow
// (conditional branch, direct jump, or indirect jump).
func (in Inst) IsControl() bool {
	return in.IsCondBranch() || in.Op == JMP || in.Op == JR
}

// IsDirect reports whether the instruction is a control instruction with a
// statically known target.
func (in Inst) IsDirect() bool { return in.IsCondBranch() || in.Op == JMP }

// IsLoad reports whether the instruction reads data memory.
func (in Inst) IsLoad() bool { return in.Op == LD }

// IsStore reports whether the instruction writes data memory.
func (in Inst) IsStore() bool { return in.Op == ST }

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool { return in.Op == LD || in.Op == ST }

// BaseReg returns the base register of a memory instruction.
func (in Inst) BaseReg() Reg { return in.Rs }

// HasDest reports whether the instruction writes a register, and WritesReg
// returns that register (meaningful only when HasDest is true).
func (in Inst) HasDest() bool {
	switch in.Op {
	case NOP, ST, BEQZ, BNEZ, BLTZ, BGEZ, JMP, JR, HALT:
		return false
	}
	return in.Rd != RZero
}

// DestReg returns the written register; call only when HasDest is true.
func (in Inst) DestReg() Reg { return in.Rd }

// SrcRegs appends the architectural source registers of the instruction to
// dst and returns the extended slice. RZero sources are included (they read
// as zero but are real operands).
func (in Inst) SrcRegs(dst []Reg) []Reg {
	switch in.Op {
	case NOP, MOVI, JMP, HALT:
		return dst
	case ADD, SUB, MUL, AND, OR, XOR, SLL, SRL, SRA, CMPEQ, CMPLT, CMPLE:
		return append(dst, in.Rs, in.Rt)
	case ADDI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, CMPEQI, CMPLTI, LD:
		return append(dst, in.Rs)
	case ST:
		return append(dst, in.Rs, in.Rt)
	case BEQZ, BNEZ, BLTZ, BGEZ, JR:
		return append(dst, in.Rs)
	}
	return dst
}

// String renders the instruction in assembler syntax, with branch targets as
// absolute instruction indices (the assembler accepts both labels and @N).
func (in Inst) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case ADD, SUB, MUL, AND, OR, XOR, SLL, SRL, SRA, CMPEQ, CMPLT, CMPLE:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	case ADDI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, CMPEQI, CMPLTI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case MOVI:
		return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
	case LD:
		return fmt.Sprintf("ld %s, %d(%s)", in.Rd, in.Imm, in.Rs)
	case ST:
		return fmt.Sprintf("st %s, %d(%s)", in.Rt, in.Imm, in.Rs)
	case BEQZ, BNEZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s %s, @%d", in.Op, in.Rs, in.Target)
	case JMP:
		return fmt.Sprintf("jmp @%d", in.Target)
	case JR:
		return fmt.Sprintf("jr %s", in.Rs)
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// InstBytes is the architectural size of one instruction in the simulated
// text segment.
const InstBytes = 4

// DefaultTextBase is where program text begins in the simulated address
// space unless a Program overrides it.
const DefaultTextBase uint64 = 0x0000_0000_0000_1000

// Program is an assembled program: a text segment plus symbol information.
type Program struct {
	Insts    []Inst
	Symbols  map[string]int // label -> instruction index
	TextBase uint64
}

// PC returns the byte address of the instruction at index i.
func (p *Program) PC(i int) uint64 { return p.TextBase + uint64(i)*InstBytes }

// Index returns the instruction index of byte address pc and whether pc is a
// valid, aligned text address for this program.
func (p *Program) Index(pc uint64) (int, bool) {
	if pc < p.TextBase || (pc-p.TextBase)%InstBytes != 0 {
		return 0, false
	}
	i := int((pc - p.TextBase) / InstBytes)
	if i >= len(p.Insts) {
		return 0, false
	}
	return i, true
}

// Len returns the number of instructions in the program.
func (p *Program) Len() int { return len(p.Insts) }

// Validate checks structural invariants: defined opcodes, register ranges,
// and in-range branch targets. A Program that fails Validate would derail the
// simulators, so workload generators call it in tests.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	for i, in := range p.Insts {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: instruction %d: invalid opcode %d", i, uint8(in.Op))
		}
		if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
			return fmt.Errorf("isa: instruction %d (%s): register out of range", i, in)
		}
		if in.IsDirect() {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("isa: instruction %d (%s): target %d out of range [0,%d)",
					i, in, in.Target, len(p.Insts))
			}
		}
	}
	return nil
}

// Stats summarises the static composition of a program.
type Stats struct {
	Total    int
	Loads    int
	Stores   int
	Branches int // conditional branches
	Jumps    int // direct + indirect jumps
}

// StaticStats computes instruction-mix statistics over the program text.
func (p *Program) StaticStats() Stats {
	var s Stats
	s.Total = len(p.Insts)
	for _, in := range p.Insts {
		switch {
		case in.IsLoad():
			s.Loads++
		case in.IsStore():
			s.Stores++
		case in.IsCondBranch():
			s.Branches++
		case in.Op == JMP || in.Op == JR:
			s.Jumps++
		}
	}
	return s
}
