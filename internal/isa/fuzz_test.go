package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble checks that arbitrary input never panics the assembler, and
// that anything it accepts disassembles and reassembles to the same program.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r1, 5\nhalt")
	f.Add(loopSrc)
	f.Add("ld r1, -8(r2)\nbeqz r1, @0\njr r31")
	f.Add("a: b: jmp a ; x")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		text := Disassemble(p)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("disassembly did not reassemble: %v\n%s", err, text)
		}
		if p.Len() != p2.Len() {
			t.Fatalf("round-trip length changed: %d vs %d", p.Len(), p2.Len())
		}
		for i := range p.Insts {
			if p.Insts[i] != p2.Insts[i] {
				t.Fatalf("instruction %d changed: %v vs %v", i, p.Insts[i], p2.Insts[i])
			}
		}
		_ = strings.TrimSpace(text)
	})
}
