package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := R(7).String(); got != "r7" {
		t.Errorf("R(7).String() = %q, want r7", got)
	}
	if RZero != 31 {
		t.Errorf("RZero = %d, want 31", RZero)
	}
}

func TestRPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%d) did not panic", n)
				}
			}()
			R(n)
		}()
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" {
			t.Fatalf("op %d has empty name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestClassification(t *testing.T) {
	tests := []struct {
		in                      Inst
		cond, control, load, st bool
	}{
		{Inst{Op: BEQZ, Rs: 1}, true, true, false, false},
		{Inst{Op: BNEZ, Rs: 1}, true, true, false, false},
		{Inst{Op: BLTZ, Rs: 1}, true, true, false, false},
		{Inst{Op: BGEZ, Rs: 1}, true, true, false, false},
		{Inst{Op: JMP}, false, true, false, false},
		{Inst{Op: JR, Rs: 2}, false, true, false, false},
		{Inst{Op: LD, Rd: 1, Rs: 2}, false, false, true, false},
		{Inst{Op: ST, Rt: 1, Rs: 2}, false, false, false, true},
		{Inst{Op: ADD, Rd: 1, Rs: 2, Rt: 3}, false, false, false, false},
		{Inst{Op: HALT}, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.in.IsCondBranch(); got != tt.cond {
			t.Errorf("%v IsCondBranch = %v, want %v", tt.in, got, tt.cond)
		}
		if got := tt.in.IsControl(); got != tt.control {
			t.Errorf("%v IsControl = %v, want %v", tt.in, got, tt.control)
		}
		if got := tt.in.IsLoad(); got != tt.load {
			t.Errorf("%v IsLoad = %v, want %v", tt.in, got, tt.load)
		}
		if got := tt.in.IsStore(); got != tt.st {
			t.Errorf("%v IsStore = %v, want %v", tt.in, got, tt.st)
		}
		if got := tt.in.IsMem(); got != (tt.load || tt.st) {
			t.Errorf("%v IsMem = %v", tt.in, got)
		}
	}
}

func TestHasDest(t *testing.T) {
	if (Inst{Op: ADD, Rd: 1, Rs: 2, Rt: 3}).HasDest() != true {
		t.Error("add r1 should have dest")
	}
	if (Inst{Op: ADD, Rd: RZero, Rs: 2, Rt: 3}).HasDest() {
		t.Error("add to r31 should not count as a dest")
	}
	if (Inst{Op: ST, Rt: 1, Rs: 2}).HasDest() {
		t.Error("store has no dest")
	}
	if (Inst{Op: BEQZ, Rs: 1}).HasDest() {
		t.Error("branch has no dest")
	}
	if !(Inst{Op: LD, Rd: 4, Rs: 2}).HasDest() {
		t.Error("load has a dest")
	}
}

func TestSrcRegs(t *testing.T) {
	tests := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: ADD, Rd: 1, Rs: 2, Rt: 3}, []Reg{2, 3}},
		{Inst{Op: ADDI, Rd: 1, Rs: 2}, []Reg{2}},
		{Inst{Op: MOVI, Rd: 1}, nil},
		{Inst{Op: LD, Rd: 1, Rs: 2}, []Reg{2}},
		{Inst{Op: ST, Rt: 3, Rs: 2}, []Reg{2, 3}},
		{Inst{Op: BEQZ, Rs: 5}, []Reg{5}},
		{Inst{Op: JMP}, nil},
		{Inst{Op: JR, Rs: 6}, []Reg{6}},
		{Inst{Op: HALT}, nil},
	}
	for _, tt := range tests {
		got := tt.in.SrcRegs(nil)
		if len(got) != len(tt.want) {
			t.Errorf("%v SrcRegs = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%v SrcRegs = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

func TestProgramPCIndexRoundTrip(t *testing.T) {
	p := &Program{Insts: make([]Inst, 100), TextBase: DefaultTextBase}
	for i := 0; i < 100; i++ {
		pc := p.PC(i)
		j, ok := p.Index(pc)
		if !ok || j != i {
			t.Fatalf("Index(PC(%d)) = %d,%v", i, j, ok)
		}
	}
	if _, ok := p.Index(p.TextBase - 4); ok {
		t.Error("address below text base should not resolve")
	}
	if _, ok := p.Index(p.TextBase + 1); ok {
		t.Error("unaligned address should not resolve")
	}
	if _, ok := p.Index(p.PC(100)); ok {
		t.Error("address past end should not resolve")
	}
}

func TestValidate(t *testing.T) {
	good := &Program{Insts: []Inst{{Op: MOVI, Rd: 1, Imm: 5}, {Op: HALT}}, TextBase: DefaultTextBase}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := &Program{Insts: []Inst{{Op: BEQZ, Rs: 1, Target: 7}}, TextBase: DefaultTextBase}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	empty := &Program{TextBase: DefaultTextBase}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
	badReg := &Program{Insts: []Inst{{Op: ADD, Rd: 40}}, TextBase: DefaultTextBase}
	if err := badReg.Validate(); err == nil {
		t.Error("register out of range accepted")
	}
}

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder()
	fwd := b.NewLabel()
	b.Movi(R(1), 3)
	back := b.Here()
	b.Addi(R(1), R(1), -1)
	b.Bnez(R(1), back)
	b.Jmp(fwd)
	b.Nop() // skipped
	b.Bind(fwd)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Target != 1 {
		t.Errorf("backward branch target = %d, want 1", p.Insts[2].Target)
	}
	if p.Insts[3].Target != 5 {
		t.Errorf("forward jump target = %d, want 5", p.Insts[3].Target)
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewBuilder()
	l := b.NewLabel()
	b.Jmp(l)
	if _, err := b.Program(); err == nil {
		t.Error("unbound label accepted")
	}
}

func TestBuilderDoubleBindPanics(t *testing.T) {
	b := NewBuilder()
	l := b.Here()
	b.Nop()
	defer func() {
		if recover() == nil {
			t.Error("double Bind did not panic")
		}
	}()
	b.Bind(l)
}

func TestStaticStats(t *testing.T) {
	b := NewBuilder()
	l := b.Here()
	b.Ld(R(1), R(2), 0)
	b.St(R(1), R(2), 8)
	b.Addi(R(2), R(2), 16)
	b.Bnez(R(1), l)
	b.Jmp(l)
	b.Halt()
	p := b.MustProgram()
	s := p.StaticStats()
	if s.Loads != 1 || s.Stores != 1 || s.Branches != 1 || s.Jumps != 1 || s.Total != 6 {
		t.Errorf("stats = %+v", s)
	}
}

// Property: every constructible instruction's String() is parseable by the
// assembler (when embedded in a program where its target exists), and the
// parsed instruction equals the original.
func TestQuickInstStringRoundTrip(t *testing.T) {
	f := func(opRaw uint8, rdRaw, rsRaw, rtRaw uint8, imm int16) bool {
		op := Op(opRaw % uint8(numOps))
		in := Inst{
			Op:  op,
			Rd:  Reg(rdRaw % NumRegs),
			Rs:  Reg(rsRaw % NumRegs),
			Rt:  Reg(rtRaw % NumRegs),
			Imm: int64(imm),
			// Target 0 keeps branches valid in a 1+ instruction program.
		}
		src := in.String() + "\nhalt\n"
		p, err := Assemble(src)
		if err != nil {
			t.Logf("assemble %q: %v", src, err)
			return false
		}
		got := p.Insts[0]
		return normalize(got) == normalize(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// normalize zeroes fields that an opcode does not encode, because String()
// legitimately drops them.
func normalize(in Inst) Inst {
	out := Inst{Op: in.Op}
	switch in.Op {
	case ADD, SUB, MUL, AND, OR, XOR, SLL, SRL, SRA, CMPEQ, CMPLT, CMPLE:
		out.Rd, out.Rs, out.Rt = in.Rd, in.Rs, in.Rt
	case ADDI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, CMPEQI, CMPLTI:
		out.Rd, out.Rs, out.Imm = in.Rd, in.Rs, in.Imm
	case MOVI:
		out.Rd, out.Imm = in.Rd, in.Imm
	case LD:
		out.Rd, out.Rs, out.Imm = in.Rd, in.Rs, in.Imm
	case ST:
		out.Rt, out.Rs, out.Imm = in.Rt, in.Rs, in.Imm
	case BEQZ, BNEZ, BLTZ, BGEZ:
		out.Rs, out.Target = in.Rs, in.Target
	case JMP:
		out.Target = in.Target
	case JR:
		out.Rs = in.Rs
	}
	return out
}
