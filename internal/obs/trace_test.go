package obs

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

func TestTraceSamplingAndRing(t *testing.T) {
	tr := NewTrace(4, 2) // keep 1 in 2, retain at most 4
	for i := uint64(1); i <= 20; i++ {
		tr.Record(KindPrefIssue, 0x100, i*64, i)
	}
	if tr.Seen() != 20 {
		t.Errorf("Seen = %d, want 20", tr.Seen())
	}
	if tr.Kept() != 10 {
		t.Errorf("Kept = %d, want 10", tr.Kept())
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4 (ring capacity)", tr.Len())
	}
	evs := tr.Events(nil)
	// The ring retains the newest 4 sampled transitions (every even i),
	// oldest first: i = 14, 16, 18, 20.
	want := []uint64{14, 16, 18, 20}
	for i, e := range evs {
		if e.Cycle != want[i] {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, want[i])
		}
	}

	tr.Reset()
	if tr.Seen() != 0 || tr.Kept() != 0 || tr.Len() != 0 {
		t.Errorf("after Reset: seen %d kept %d len %d", tr.Seen(), tr.Kept(), tr.Len())
	}
}

// TestTraceDumpRoundTrip re-reads a dumped lifecycle trace with the
// internal/trace reader: the prefetch kinds and their cycle stamps must
// survive the binary encoding.
func TestTraceDumpRoundTrip(t *testing.T) {
	tr := NewTrace(16, 1)
	records := []struct {
		kind  trace.Kind
		pc    uint64
		addr  uint64
		cycle uint64
	}{
		{KindPrefIssue, 0x400100, 0xA000, 17},
		{KindPrefUse, 0x400100, 0xA000, 230},
		{KindPrefLate, 0x400104, 0xB000, 231},
		{KindPrefEvict, 0x400108, 0xC000, 900},
		{KindPrefPollute, 0x40010C, 0xD000, 905},
	}
	for _, r := range records {
		tr.Record(r.kind, r.pc, r.addr, r.cycle)
	}

	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range records {
		ev, err := rd.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ev.Kind != want.kind || ev.PC != want.pc || ev.Addr != want.addr || ev.Cycle != want.cycle {
			t.Errorf("record %d = %+v, want %+v", i, ev, want)
		}
		if !ev.Kind.IsPrefetch() {
			t.Errorf("record %d kind %v not classified as prefetch", i, ev.Kind)
		}
	}
	if _, err := rd.Read(); err == nil {
		t.Error("expected EOF after last record")
	}
}

func TestTraceNilAndZeroConfig(t *testing.T) {
	var tr *Trace
	tr.Record(KindPrefIssue, 1, 2, 3) // must not panic
	if tr.Len() != 0 {
		t.Errorf("nil trace Len = %d", tr.Len())
	}
	if got := tr.Events(nil); got != nil {
		t.Errorf("nil trace Events = %v", got)
	}

	z := NewTrace(0, 0) // clamps to capacity 1, sample every 1
	z.Record(KindPrefUse, 1, 2, 3)
	if z.Len() != 1 || z.Kept() != 1 {
		t.Errorf("clamped trace: len %d kept %d", z.Len(), z.Kept())
	}
}
