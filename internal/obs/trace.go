package obs

// Sampled, bounded event trace. The lifecycle hooks feed transitions into a
// fixed-capacity ring buffer; with sampling set to 1-in-N only every Nth
// transition is recorded, and once the ring wraps the oldest records are
// overwritten — the trace is a bounded tail, never an unbounded log. Dump
// re-encodes the retained events with internal/trace's binary writer, so
// the same tooling that reads instruction traces reads lifecycle traces.
//
// A nil *Trace is a valid disabled sink: Record on nil returns immediately,
// which is the default-off configuration the zero-alloc witness runs with.

import (
	"io"

	"repro/internal/trace"
)

// Re-exported lifecycle record kinds (defined by the trace format).
const (
	KindPrefIssue   = trace.KindPrefIssue
	KindPrefUse     = trace.KindPrefUse
	KindPrefLate    = trace.KindPrefLate
	KindPrefEvict   = trace.KindPrefEvict
	KindPrefPollute = trace.KindPrefPollute
)

// Trace is a sampled ring of lifecycle events. Construct with NewTrace.
type Trace struct {
	buf    []trace.Event //bfetch:noreset fixed ring storage, cleared via n/w
	every  uint64        //bfetch:noreset sampling configuration
	seen   uint64        // transitions offered, before sampling
	kept   uint64        // transitions recorded (≤ seen)
	w      int           // next write slot
	n      int           // live records (≤ cap(buf))
}

// NewTrace returns a trace retaining at most capacity sampled events,
// recording one of every sampleEvery transitions (1 records everything;
// 0 is treated as 1). Capacity must be positive.
func NewTrace(capacity int, sampleEvery uint64) *Trace {
	if capacity <= 0 {
		capacity = 1
	}
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	return &Trace{buf: make([]trace.Event, capacity), every: sampleEvery}
}

// Record offers one lifecycle transition to the sampler.
//
//bfetch:hotpath
func (t *Trace) Record(k trace.Kind, pc, blockAddr, cycle uint64) {
	if t == nil {
		return
	}
	t.seen++
	if t.every > 1 && t.seen%t.every != 0 {
		return
	}
	t.kept++
	t.buf[t.w] = trace.Event{Kind: k, PC: pc, Addr: blockAddr, Cycle: cycle}
	t.w++
	if t.w == len(t.buf) {
		t.w = 0
	}
	if t.n < len(t.buf) {
		t.n++
	}
}

// Seen returns the number of transitions offered; Kept the number sampled
// in; Len the number currently retained (Kept clamped to capacity).
func (t *Trace) Seen() uint64 { return t.seen }
func (t *Trace) Kept() uint64 { return t.kept }
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Reset discards retained events and zeroes the sample counters; capacity
// and sampling rate are configuration and survive.
func (t *Trace) Reset() {
	t.seen, t.kept = 0, 0
	t.w, t.n = 0, 0
}

// Events appends the retained records, oldest first, and returns dst.
func (t *Trace) Events(dst []trace.Event) []trace.Event {
	if t == nil || t.n == 0 {
		return dst
	}
	start := t.w - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		dst = append(dst, t.buf[(start+i)%len(t.buf)])
	}
	return dst
}

// Dump writes the retained records, oldest first, as a binary trace stream.
func (t *Trace) Dump(w io.Writer) error {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return err
	}
	for _, e := range t.Events(nil) {
		if err := tw.Write(e); err != nil {
			return err
		}
	}
	return tw.Flush()
}
