package obs

// Deterministic interval time series: cumulative registry-scalar rows
// sampled at fixed cycle boundaries into a bounded ring with
// merge-downsampling.
//
// Determinism contract. A row's content is a pure function of the
// simulated-cycle boundary it samples (registry scalars are simulation
// state), and the ring's shape (row count, spacing) is a pure function of
// how many boundaries have been sampled. Neither depends on wall time,
// worker count, or which simulation loop drives the system — so the emitted
// TimeSeriesData is bit-identical across -j values and naive-vs-event
// loops, provided the driver samples every boundary exactly once (the sim
// loops' contract, tested in internal/sim).
//
// Downsampling. When the ring fills (maxRows rows, maxRows even), every
// second row is kept — the surviving rows sit at boundaries of twice the
// spacing — and the interval doubles. A bounded ring therefore covers an
// unbounded run at progressively coarser resolution, the standard
// merge-downsampling scheme.

// TimeSeriesData is the versioned report section (schema bfetch-obs-ts/v1).
// Rows hold cumulative scalar values, one column per name, sampled at cycles
// base_cycle + (k+1)*interval_cycles for row k; interval deltas are
// row-to-row differences.
type TimeSeriesData struct {
	Schema   string     `json:"schema"` // SchemaTS
	Base     uint64     `json:"base_cycle"`
	Interval uint64     `json:"interval_cycles"`
	Names    []string   `json:"names"`
	Rows     [][]uint64 `json:"rows"`
}

// TimeSeries samples a sealed Registry into a reused ring. One TimeSeries
// belongs to one simulated System (same single-owner discipline as the
// Registry); the per-boundary Sample path is allocation-free.
type TimeSeries struct {
	reg       *Registry //bfetch:noreset wiring
	names     []string  //bfetch:noreset row schema, fixed at construction
	width     int       //bfetch:noreset row schema, fixed at construction
	interval0 uint64    //bfetch:noreset configuration
	maxRows   int       //bfetch:noreset configuration

	buf      []uint64 //bfetch:noreset ring storage (maxRows rows), reused across windows; n=0 empties it logically
	n        int      // rows recorded in the current window
	interval uint64   // current row spacing (doubles on downsampling)
	base     uint64   // window-start cycle
	nextAt   uint64   // next boundary to sample
}

// NewTimeSeries builds a sampler over reg with the given boundary interval,
// sealing the registry's scalar set. maxRows bounds the ring (<= 0 picks 64;
// the floor is 4) and is rounded up to even so downsampling halves cleanly.
func NewTimeSeries(reg *Registry, interval uint64, maxRows int) *TimeSeries {
	if interval == 0 {
		panic("obs: time series interval must be positive")
	}
	if maxRows <= 0 {
		maxRows = 64
	}
	if maxRows < 4 {
		maxRows = 4
	}
	maxRows += maxRows & 1
	names := reg.SealScalars()
	s := &TimeSeries{
		reg:       reg,
		names:     names,
		width:     len(names),
		interval0: interval,
		maxRows:   maxRows,
		buf:       make([]uint64, maxRows*len(names)),
	}
	s.Restart(0)
	return s
}

// Restart begins a new measurement window at cycle now: recorded rows are
// dropped, the interval resets, and the first boundary is now + interval.
// sim.System.ResetStats calls it at the window boundary.
func (s *TimeSeries) Restart(now uint64) {
	s.n = 0
	s.interval = s.interval0
	s.base = now
	s.nextAt = now + s.interval
}

// NextAt returns the next unsampled boundary; a nil sampler never matches
// (so loop drivers can poll without a guard).
func (s *TimeSeries) NextAt() uint64 {
	if s == nil {
		return ^uint64(0)
	}
	return s.nextAt
}

// Sample records the row for the boundary NextAt() and advances it. The
// caller invokes it exactly once per boundary, when the simulated clock
// reaches that boundary.
func (s *TimeSeries) Sample() {
	row := s.buf[s.n*s.width : (s.n+1)*s.width]
	s.reg.ReadScalarsInto(row)
	s.n++
	s.nextAt += s.interval
	if s.n == s.maxRows {
		// Ring full: keep every second row (odd indices, which sit at
		// boundaries of 2×interval) and double the spacing. nextAt advances
		// by one *old* interval to land on the next doubled boundary.
		for i := 0; 2*i+1 < s.n; i++ {
			copy(s.buf[i*s.width:(i+1)*s.width], s.buf[(2*i+1)*s.width:(2*i+2)*s.width])
		}
		s.n /= 2
		s.nextAt += s.interval
		s.interval *= 2
	}
}

// Rows returns the number of rows recorded in the current window.
func (s *TimeSeries) Rows() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Data snapshots the current window as a report section, or nil if no
// boundary has been sampled yet (or the sampler is absent). Cold path.
func (s *TimeSeries) Data() *TimeSeriesData {
	if s == nil || s.n == 0 {
		return nil
	}
	rows := make([][]uint64, s.n)
	flat := make([]uint64, s.n*s.width)
	copy(flat, s.buf[:s.n*s.width])
	for i := range rows {
		rows[i] = flat[i*s.width : (i+1)*s.width]
	}
	return &TimeSeriesData{
		Schema:   SchemaTS,
		Base:     s.base,
		Interval: s.interval,
		Names:    s.names,
		Rows:     rows,
	}
}
