// Package obs is the simulator's observability layer: a unified metrics
// registry every simulated component exports through, a prefetch lifecycle
// tracer that classifies each prefetch as useful, late, useless or
// polluting, a sampled ring-buffer event trace, structured per-run JSON
// reports, and a live HTTP introspection endpoint for long experiment
// batches.
//
// The registry replaces the previously scattered export paths (each stat
// struct hand-copied into Result and re-named per table) with one contract:
// components register metrics under canonical dotted names at assembly
// time, and a single Snapshot()/Reset() pair covers all of them. Hot-path
// instruments (Counter, Gauge, Histogram) are fixed-slot handles whose
// increments are allocation-free — the bfetch-lint hotpath analyzer audits
// them like the rest of the per-cycle kernel. Cold metrics (existing stat
// struct fields) register as Func collectors read at snapshot time, so the
// per-cycle kernel keeps its plain field increments.
//
// A Registry is deliberately NOT safe for concurrent use: one Registry
// belongs to one simulated System, which is owned by one worker goroutine
// (the same ownership discipline as every other simulation structure).
package obs

import (
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct{ v *uint64 }

// Inc adds one.
//
//bfetch:hotpath
func (c Counter) Inc() { *c.v++ }

// Add adds n.
//
//bfetch:hotpath
func (c Counter) Add(n uint64) { *c.v += n }

// Value returns the current count.
func (c Counter) Value() uint64 { return *c.v }

// Gauge is a last-value-wins metric. The zero value is unusable; obtain one
// from Registry.Gauge.
type Gauge struct{ v *uint64 }

// Set stores v.
//
//bfetch:hotpath
func (g Gauge) Set(v uint64) { *g.v = v }

// Value returns the current value.
func (g Gauge) Value() uint64 { return *g.v }

// HistBuckets is the number of log2 histogram buckets: bucket i counts
// observations v with bits.Len64(v) == i (so bucket 0 is exactly 0, bucket
// 1 is exactly 1, bucket 2 is 2–3, ...), with everything at or beyond
// 2^(HistBuckets-1) clamped into the last bucket.
const HistBuckets = 18

type histState struct {
	count   uint64
	sum     uint64
	buckets [HistBuckets]uint64
}

// Histogram is a fixed-bucket log2 histogram. The zero value is unusable;
// obtain one from Registry.Histogram.
type Histogram struct{ h *histState }

// Observe records one value.
//
//bfetch:hotpath
func (h Histogram) Observe(v uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.h.count++
	h.h.sum += v
	h.h.buckets[b]++
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.h.count }

// Sample is one named scalar in a snapshot.
type Sample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistSample is one named histogram in a snapshot.
type HistSample struct {
	Name    string              `json:"name"`
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name so renderings and JSON are deterministic and diffable.
type Snapshot struct {
	Samples []Sample     `json:"samples"`
	Hists   []HistSample `json:"histograms,omitempty"`
}

// Get returns the named scalar sample, or false. Snapshots are sorted by
// name, so this is a binary search.
func (s Snapshot) Get(name string) (uint64, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i].Value, true
	}
	return 0, false
}

type namedCell struct {
	name string
	v    *uint64
}

type namedHist struct {
	name string
	h    *histState
}

type namedFunc struct {
	name string
	fn   func() uint64
}

// scalarSrc is one sealed scalar source: a direct cell (counters, gauges)
// or a collector function.
type scalarSrc struct {
	name string
	v    *uint64
	fn   func() uint64
}

// Registry holds the metrics of one simulated system. Construct with
// NewRegistry; register everything at assembly time, before the first
// cycle — registration is the cold path, increments are the hot path.
type Registry struct {
	names    map[string]bool //bfetch:noreset registration table, not a counter
	counters []namedCell     //bfetch:noreset registration table; the cells it points at are reset
	gauges   []namedCell     //bfetch:noreset registration table; the cells it points at are reset
	hists    []namedHist     //bfetch:noreset registration table; the states it points at are reset
	funcs    []namedFunc     //bfetch:noreset collectors read live component state, reset by its owner
	sealed   []scalarSrc     //bfetch:noreset sealed registration table (see SealScalars)
}

// Registrant is implemented by components that export metrics: the system
// assembler calls RegisterObs on every component it wires, passing the
// component's canonical name prefix (e.g. "c0.l1d.").
type Registrant interface {
	RegisterObs(reg *Registry, prefix string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) claim(name string) {
	if r.sealed != nil {
		panic("obs: metric " + name + " registered after SealScalars")
	}
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name string) Counter {
	r.claim(name)
	c := Counter{v: new(uint64)}
	r.counters = append(r.counters, namedCell{name: name, v: c.v})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name string) Gauge {
	r.claim(name)
	g := Gauge{v: new(uint64)}
	r.gauges = append(r.gauges, namedCell{name: name, v: g.v})
	return g
}

// Histogram registers and returns a histogram.
func (r *Registry) Histogram(name string) Histogram {
	r.claim(name)
	h := Histogram{h: &histState{}}
	r.hists = append(r.hists, namedHist{name: name, h: h.h})
	return h
}

// Func registers a collector: fn is invoked at every Snapshot. Use it to
// export existing stat-struct fields without rerouting their hot-path
// increments; the owner's ResetStats covers the Reset contract.
func (r *Registry) Func(name string, fn func() uint64) {
	r.claim(name)
	r.funcs = append(r.funcs, namedFunc{name: name, fn: fn})
}

// Len reports the number of registered metrics.
func (r *Registry) Len() int { return len(r.names) }

// SealScalars freezes the scalar metric set (counters, gauges and Func
// collectors; histograms are excluded) into a name-sorted read schedule and
// returns the names in that order. After sealing, further registration
// panics — the interval sampler's row layout must not shift mid-run.
// Idempotent: a second call returns the same schedule.
func (r *Registry) SealScalars() []string {
	if r.sealed == nil {
		r.sealed = make([]scalarSrc, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
		for _, c := range r.counters {
			r.sealed = append(r.sealed, scalarSrc{name: c.name, v: c.v})
		}
		for _, g := range r.gauges {
			r.sealed = append(r.sealed, scalarSrc{name: g.name, v: g.v})
		}
		for _, f := range r.funcs {
			r.sealed = append(r.sealed, scalarSrc{name: f.name, fn: f.fn})
		}
		sort.Slice(r.sealed, func(i, j int) bool { return r.sealed[i].name < r.sealed[j].name })
	}
	names := make([]string, len(r.sealed))
	for i, s := range r.sealed {
		names[i] = s.name
	}
	return names
}

// ReadScalarsInto fills dst (length == len(SealScalars())) with the current
// scalar values in sealed order. Allocation-free: the interval sampler calls
// it at every cycle boundary.
func (r *Registry) ReadScalarsInto(dst []uint64) {
	for i := range r.sealed {
		s := &r.sealed[i]
		if s.v != nil {
			dst[i] = *s.v
		} else {
			dst[i] = s.fn()
		}
	}
}

// Snapshot captures every metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Samples: make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.funcs))}
	for _, c := range r.counters {
		s.Samples = append(s.Samples, Sample{Name: c.name, Value: *c.v})
	}
	for _, g := range r.gauges {
		s.Samples = append(s.Samples, Sample{Name: g.name, Value: *g.v})
	}
	for _, f := range r.funcs {
		s.Samples = append(s.Samples, Sample{Name: f.name, Value: f.fn()})
	}
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i].Name < s.Samples[j].Name })
	if len(r.hists) > 0 {
		s.Hists = make([]HistSample, 0, len(r.hists))
		for _, h := range r.hists {
			s.Hists = append(s.Hists, HistSample{
				Name: h.name, Count: h.h.count, Sum: h.h.sum, Buckets: h.h.buckets,
			})
		}
		sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	}
	return s
}

// Reset zeroes every counter, gauge and histogram. Func collectors read
// live component state and are reset by their owners (sim.System.ResetStats
// resets both sides in one call).
func (r *Registry) Reset() {
	for _, c := range r.counters {
		*c.v = 0
	}
	for _, g := range r.gauges {
		*g.v = 0
	}
	for _, h := range r.hists {
		*h.h = histState{}
	}
}
