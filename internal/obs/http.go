package obs

// Live run introspection. Serve starts a debug HTTP endpoint on its own
// mux (nothing leaks onto http.DefaultServeMux):
//
//	/obs         current Status (schema bfetch-obs-status/v1)
//	/obs/runs    completed runs so far (schema bfetch-obs/v1)
//	/obs/stream  live NDJSON event stream (progress / run / sample events)
//	/debug/vars  expvar, including a published bfetch status var
//	/debug/pprof net/http/pprof profiles
//
// The endpoint is read-only and intended for localhost debugging of long
// experiment batches; it is off unless a CLI passes -http.

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// publishOnce guards the process-wide expvar name (expvar.Publish panics on
// duplicates; tests may start several Servers in one process).
var publishOnce sync.Once

// Serve starts the endpoint on addr (e.g. "127.0.0.1:0"; an empty port
// picks one — read it back with Addr). status supplies the live Status;
// runs supplies the completed-run reports and may be nil; hub, when
// non-nil, is served as a live NDJSON stream at /obs/stream (each client
// gets its own subscription; see StreamHub for the slow-client policy).
func Serve(addr string, status func() Status, runs func() RunsFile, hub *StreamHub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}

	statusJSON := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(status())
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/obs", statusJSON)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		statusJSON(w, r)
	})
	if runs != nil {
		mux.HandleFunc("/obs/runs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(runs())
		})
	}
	if hub != nil {
		mux.HandleFunc("/obs/stream", func(w http.ResponseWriter, r *http.Request) {
			fl, ok := w.(http.Flusher)
			if !ok {
				http.Error(w, "streaming unsupported", http.StatusInternalServerError)
				return
			}
			ch, cancel := hub.Subscribe()
			defer cancel()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("Cache-Control", "no-store")
			w.WriteHeader(http.StatusOK)
			fl.Flush()
			ctx := r.Context()
			for {
				select {
				case <-ctx.Done():
					return
				case line, ok := <-ch:
					if !ok {
						return
					}
					if _, err := w.Write(line); err != nil {
						return
					}
					fl.Flush()
				}
			}
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	publishOnce.Do(func() {
		expvar.Publish("bfetch", expvar.Func(func() any { return status() }))
	})

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
