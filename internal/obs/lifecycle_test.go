package obs

import "testing"

func newTestLifecycle(t *testing.T) (*Lifecycle, *Registry) {
	t.Helper()
	reg := NewRegistry()
	return NewLifecycle(reg, "pf."), reg
}

// TestLifecycleTimelyVsLate drives the classifier with hand-built sequences:
// a prefetch whose fill completed before the demand arrived is timely; one
// the demand had to wait on is late.
func TestLifecycleTimelyVsLate(t *testing.T) {
	lc, _ := newTestLifecycle(t)

	// Timely: filled at cycle 10, ready at 210, first touch at 500.
	lc.Issued(0x100, 0xA0, 10)
	lc.Used(0x100, 0xA0, 500, 210, false)

	// Late: filled at cycle 20, ready at 220, demand arrived at 30.
	lc.Issued(0x104, 0xB0, 20)
	lc.Used(0x104, 0xB0, 30, 220, true)

	st := lc.Stats()
	want := LifecycleStats{Issued: 2, UsefulTimely: 1, UsefulLate: 1}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if st.Useful() != 2 {
		t.Errorf("Useful = %d, want 2", st.Useful())
	}
	if acc := st.Accuracy(); acc != 1.0 {
		t.Errorf("Accuracy = %v, want 1", acc)
	}
	if tml := st.Timeliness(); tml != 0.5 {
		t.Errorf("Timeliness = %v, want 0.5", tml)
	}
}

// TestLifecycleUselessVsPolluting distinguishes a prefetch evicted untouched
// (useless) from one whose fill displaced a block the program still needed
// (polluting).
func TestLifecycleUselessVsPolluting(t *testing.T) {
	lc, _ := newTestLifecycle(t)

	// Useless: issued, never touched, evicted.
	lc.Issued(0x100, 0xA0, 10)
	lc.Evicted(0x100, 0xA0, 900, 210)

	// Polluting: the fill of 0xB0 evicts victim 0xC0; the demand re-miss of
	// 0xC0 is attributed to pollution and consumes the armed entry.
	lc.Issued(0x104, 0xB0, 20)
	lc.FillVictim(0xC0)
	lc.DemandMiss(0x200, 0xC0, 400)
	lc.DemandMiss(0x200, 0xC0, 800) // second miss: entry consumed, not pollution

	// An unrelated demand miss never counts as pollution.
	lc.DemandMiss(0x300, 0xD0, 500)

	st := lc.Stats()
	want := LifecycleStats{Issued: 2, UselessEvicted: 1, Polluting: 1, DemandMisses: 3}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if acc := st.Accuracy(); acc != 0 {
		t.Errorf("Accuracy = %v, want 0", acc)
	}
}

func TestLifecycleCoverage(t *testing.T) {
	lc, _ := newTestLifecycle(t)
	// 3 timely prefetches against 9 remaining demand misses: coverage 0.25.
	for i := uint64(0); i < 3; i++ {
		lc.Issued(0x100, 0xA0+i, i)
		lc.Used(0x100, 0xA0+i, 100+i, 50, false)
	}
	for i := uint64(0); i < 9; i++ {
		lc.DemandMiss(0x200, 0xF000+i*64, 200+i)
	}
	if cov := lc.Stats().Coverage(); cov != 0.25 {
		t.Errorf("Coverage = %v, want 0.25", cov)
	}
}

// TestLifecycleCarryIn checks the window-boundary rule: crediting carried-in
// prefetches keeps useful+useless ≤ issued after a reset.
func TestLifecycleCarryIn(t *testing.T) {
	reg := NewRegistry()
	lc := NewLifecycle(reg, "pf.")
	lc.Issued(0x100, 0xA0, 10)

	reg.Reset() // window boundary: issued count zeroed
	lc.CarryIn(1)
	lc.Used(0x100, 0xA0, 500, 210, false)

	st := lc.Stats()
	if st.Issued != 1 || st.UsefulTimely != 1 {
		t.Errorf("after carry-in: %+v, want issued 1, timely 1", st)
	}
	if st.Useful() > st.Issued {
		t.Errorf("useful %d exceeds issued %d despite carry-in", st.Useful(), st.Issued)
	}

	// A nil classifier accepts every hook, including CarryIn.
	var nilLC *Lifecycle
	nilLC.CarryIn(3)
	nilLC.Issued(0, 0, 0)
	nilLC.Used(0, 0, 0, 0, false)
	nilLC.Evicted(0, 0, 0, 0)
	nilLC.FillVictim(0)
	nilLC.DemandMiss(0, 0, 0)
	if got := nilLC.Stats(); got != (LifecycleStats{}) {
		t.Errorf("nil lifecycle stats = %+v", got)
	}
}

// TestLifecycleVictimSurvivesReset pins the documented asymmetry: counters
// reset with the registry, but the pollution victim table mirrors cache
// contents and survives, so a warmup-era eviction still attributes a
// measurement-window re-miss.
func TestLifecycleVictimSurvivesReset(t *testing.T) {
	reg := NewRegistry()
	lc := NewLifecycle(reg, "pf.")
	lc.FillVictim(0xC0)
	reg.Reset()
	lc.DemandMiss(0x200, 0xC0, 400)
	if st := lc.Stats(); st.Polluting != 1 {
		t.Errorf("polluting = %d, want 1 (victim table must survive reset)", st.Polluting)
	}
}
