package obs

// Structured run reports. Each executed simulation can emit one RunReport —
// the metrics-registry snapshot, the per-engine lifecycle breakdown, and
// the run's simulation throughput — and a batch collects them into a
// RunsFile. The live introspection endpoint serves a Status document. All
// three are versioned by a schema tag, and ValidateReport checks any of
// them: the obs-smoke CI target round-trips a real run through it.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Schema tags.
const (
	SchemaRun    = "bfetch-obs-run/v1"
	SchemaRuns   = "bfetch-obs/v1"
	SchemaStatus = "bfetch-obs-status/v1"
	SchemaTS     = "bfetch-obs-ts/v1"
)

// RunReport is one executed simulation's observability record.
type RunReport struct {
	Schema string   `json:"schema"` // SchemaRun
	Engine string   `json:"engine"` // prefetcher kind
	Apps   []string `json:"apps"`   // one workload per core

	Cycles uint64    `json:"cycles"` // measured-window cycles
	Insts  uint64    `json:"insts"`  // committed instructions, all cores
	IPC    []float64 `json:"ipc"`    // per core

	Lifecycle  LifecycleStats   `json:"lifecycle"`          // summed over cores
	PerCore    []LifecycleStats `json:"per_core,omitempty"` // per-core breakdown (multi-core runs)
	Accuracy   float64          `json:"accuracy"`
	Coverage   float64          `json:"coverage"`
	Timeliness float64          `json:"timeliness"`

	Metrics Snapshot `json:"metrics"` // full registry snapshot

	// TS is the run's interval time series (nil unless sampling was
	// configured); its rows are deterministic across loop and worker-count
	// choices.
	TS *TimeSeriesData `json:"ts,omitempty"`

	WallSeconds   float64 `json:"wall_seconds"`        // inside sim.Run
	KCyclesPerSec float64 `json:"sim_kcycles_per_sec"` // cycles / wall
}

// Finalize fills the derived fields (aggregate lifecycle and its ratios,
// throughput) from the raw ones; call after populating PerCore, Cycles and
// WallSeconds.
func (r *RunReport) Finalize() {
	r.Schema = SchemaRun
	r.Lifecycle = LifecycleStats{}
	for _, lc := range r.PerCore {
		r.Lifecycle.Add(lc)
	}
	if len(r.PerCore) == 1 {
		r.PerCore = nil // redundant with the aggregate
	}
	r.Accuracy = r.Lifecycle.Accuracy()
	r.Coverage = r.Lifecycle.Coverage()
	r.Timeliness = r.Lifecycle.Timeliness()
	if r.WallSeconds > 0 {
		r.KCyclesPerSec = float64(r.Cycles) / 1e3 / r.WallSeconds
	}
}

// RunsFile is the batch-level sink: every executed run's report, in
// completion order, with the batch's sampled-trace accounting if a tracer
// was attached.
type RunsFile struct {
	Schema    string      `json:"schema"` // SchemaRuns
	Generated string      `json:"generated,omitempty"`
	Loop      string      `json:"loop,omitempty"`
	Runs      []RunReport `json:"runs"`
}

// Status is the live introspection document served at /obs.
type Status struct {
	Schema     string `json:"schema"` // SchemaStatus
	Experiment string `json:"experiment,omitempty"`

	JobsDone  uint64 `json:"jobs_done"`
	JobsTotal uint64 `json:"jobs_total"`

	Runs        uint64 `json:"runs"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CkptHits    uint64 `json:"ckpt_hits"`
	CkptMisses  uint64 `json:"ckpt_misses"`

	// Durable-store tier (internal/store), present when the batch runs
	// with -store: disk lookups across both artifact kinds, payload bytes
	// validated in, and wall time spent inside store reads.
	StoreHits        uint64  `json:"store_hits,omitempty"`
	StoreMisses      uint64  `json:"store_misses,omitempty"`
	StoreBytesRead   uint64  `json:"store_bytes_read,omitempty"`
	StoreReadSeconds float64 `json:"store_read_seconds,omitempty"`

	SimCycles     uint64  `json:"sim_cycles"`
	SimInsts      uint64  `json:"sim_insts"`
	KCyclesPerSec float64 `json:"sim_kcycles_per_sec"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// CacheHitRate returns hits / (hits + misses), or 0.
func (s Status) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// ValidateReport parses data as any of the three obs documents, dispatching
// on the schema tag, and checks structural invariants. It returns the
// schema found.
func ValidateReport(data []byte) (string, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("obs: not JSON: %w", err)
	}
	switch probe.Schema {
	case SchemaRun:
		var r RunReport
		if err := json.Unmarshal(data, &r); err != nil {
			return probe.Schema, fmt.Errorf("obs: malformed run report: %w", err)
		}
		return probe.Schema, validateRun(r)
	case SchemaRuns:
		var f RunsFile
		if err := json.Unmarshal(data, &f); err != nil {
			return probe.Schema, fmt.Errorf("obs: malformed runs file: %w", err)
		}
		if f.Runs == nil {
			return probe.Schema, fmt.Errorf("obs: runs file has no runs array")
		}
		for i, r := range f.Runs {
			if err := validateRun(r); err != nil {
				return probe.Schema, fmt.Errorf("obs: run %d: %w", i, err)
			}
		}
		return probe.Schema, nil
	case SchemaStatus:
		var s Status
		if err := json.Unmarshal(data, &s); err != nil {
			return probe.Schema, fmt.Errorf("obs: malformed status: %w", err)
		}
		if s.JobsDone > s.JobsTotal && s.JobsTotal != 0 {
			return probe.Schema, fmt.Errorf("obs: status jobs_done %d > jobs_total %d", s.JobsDone, s.JobsTotal)
		}
		return probe.Schema, nil
	case SchemaTS:
		var ts TimeSeriesData
		if err := json.Unmarshal(data, &ts); err != nil {
			return probe.Schema, fmt.Errorf("obs: malformed time series: %w", err)
		}
		return probe.Schema, validateTS(&ts)
	case "":
		return "", fmt.Errorf("obs: missing schema tag")
	default:
		return probe.Schema, fmt.Errorf("obs: unknown schema %q", probe.Schema)
	}
}

// validateRun checks one run report's internal consistency.
func validateRun(r RunReport) error {
	if r.Schema != SchemaRun {
		return fmt.Errorf("run schema is %q, want %q", r.Schema, SchemaRun)
	}
	if r.Engine == "" {
		return fmt.Errorf("run has no engine")
	}
	if len(r.Apps) == 0 {
		return fmt.Errorf("run has no apps")
	}
	lc := r.Lifecycle
	if lc.Useful() > lc.Issued {
		return fmt.Errorf("lifecycle: useful %d exceeds issued %d", lc.Useful(), lc.Issued)
	}
	if lc.UselessEvicted > lc.Issued {
		return fmt.Errorf("lifecycle: useless %d exceeds issued %d", lc.UselessEvicted, lc.Issued)
	}
	for _, f := range []float64{r.Accuracy, r.Coverage, r.Timeliness} {
		if f < 0 || f > 1 {
			return fmt.Errorf("lifecycle ratio %v out of [0,1]", f)
		}
	}
	if len(r.Metrics.Samples) == 0 {
		return fmt.Errorf("run has an empty metrics snapshot")
	}
	for i := 1; i < len(r.Metrics.Samples); i++ {
		if r.Metrics.Samples[i-1].Name >= r.Metrics.Samples[i].Name {
			return fmt.Errorf("metrics snapshot not sorted/unique at %q", r.Metrics.Samples[i].Name)
		}
	}
	if err := validateCPI(r.Metrics); err != nil {
		return err
	}
	if r.TS != nil {
		if err := validateTS(r.TS); err != nil {
			return err
		}
	}
	return nil
}

// validateCPI enforces the exact-partition invariant on every core that
// exported a CPI stack: the bucket columns under "<core>.cpi." must sum to
// that core's "<core>.cycles" exactly. Samples are name-sorted, so each
// core's cpi.* columns form one contiguous run.
func validateCPI(m Snapshot) error {
	for i := 0; i < len(m.Samples); {
		name := m.Samples[i].Name
		idx := strings.Index(name, ".cpi.")
		if idx < 0 {
			i++
			continue
		}
		owner := name[:idx+1] // e.g. "c0.cpu."
		var sum uint64
		for i < len(m.Samples) && strings.HasPrefix(m.Samples[i].Name, owner+"cpi.") {
			sum += m.Samples[i].Value
			i++
		}
		cycles, ok := m.Get(owner + "cycles")
		if !ok {
			return fmt.Errorf("cpi stack %scpi.* has no matching %scycles", owner, owner)
		}
		if sum != cycles {
			return fmt.Errorf("cpi stack %scpi.* sums to %d, want exactly %scycles = %d", owner, sum, owner, cycles)
		}
	}
	return nil
}

// validateTS checks a time-series section's structural invariants.
func validateTS(ts *TimeSeriesData) error {
	if ts.Schema != SchemaTS {
		return fmt.Errorf("time series schema is %q, want %q", ts.Schema, SchemaTS)
	}
	if ts.Interval == 0 {
		return fmt.Errorf("time series has zero interval")
	}
	if len(ts.Names) == 0 {
		return fmt.Errorf("time series has no columns")
	}
	for i := 1; i < len(ts.Names); i++ {
		if ts.Names[i-1] >= ts.Names[i] {
			return fmt.Errorf("time series columns not sorted/unique at %q", ts.Names[i])
		}
	}
	for i, row := range ts.Rows {
		if len(row) != len(ts.Names) {
			return fmt.Errorf("time series row %d has %d columns, want %d", i, len(row), len(ts.Names))
		}
	}
	return nil
}
