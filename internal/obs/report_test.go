package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func validRun() RunReport {
	r := RunReport{
		Engine: "bfetch",
		Apps:   []string{"mcf"},
		Cycles: 1000,
		Insts:  500,
		IPC:    []float64{0.5},
		PerCore: []LifecycleStats{{
			Issued: 10, UsefulTimely: 4, UsefulLate: 2, UselessEvicted: 3,
			Polluting: 1, DemandMisses: 20,
		}},
		Metrics: Snapshot{Samples: []Sample{
			{Name: "a", Value: 1}, {Name: "b", Value: 2},
		}},
		WallSeconds: 0.25,
	}
	r.Finalize()
	return r
}

func TestFinalize(t *testing.T) {
	r := validRun()
	if r.Schema != SchemaRun {
		t.Errorf("schema = %q", r.Schema)
	}
	if r.Lifecycle.Issued != 10 || r.Lifecycle.Useful() != 6 {
		t.Errorf("aggregate lifecycle = %+v", r.Lifecycle)
	}
	if r.PerCore != nil {
		t.Error("single-core PerCore should be elided (redundant with aggregate)")
	}
	if r.Accuracy != 0.6 {
		t.Errorf("accuracy = %v, want 0.6", r.Accuracy)
	}
	if r.KCyclesPerSec != 4.0 {
		t.Errorf("kcycles/sec = %v, want 4", r.KCyclesPerSec)
	}

	// Multi-core: PerCore is retained and summed.
	m := validRun()
	m.PerCore = []LifecycleStats{{Issued: 3}, {Issued: 4}}
	m.Finalize()
	if m.Lifecycle.Issued != 7 || len(m.PerCore) != 2 {
		t.Errorf("multi-core finalize: %+v perCore %d", m.Lifecycle, len(m.PerCore))
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestValidateReportAccepts(t *testing.T) {
	cases := map[string]any{
		"run":    validRun(),
		"runs":   RunsFile{Schema: SchemaRuns, Runs: []RunReport{validRun()}},
		"empty runs": RunsFile{Schema: SchemaRuns, Runs: []RunReport{}},
		"status": Status{Schema: SchemaStatus, JobsDone: 2, JobsTotal: 5},
	}
	for name, v := range cases {
		if _, err := ValidateReport(mustJSON(t, v)); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
}

func TestValidateReportRejects(t *testing.T) {
	overUseful := validRun()
	overUseful.Lifecycle.UsefulTimely = 100 // useful > issued

	noEngine := validRun()
	noEngine.Engine = ""

	emptyMetrics := validRun()
	emptyMetrics.Metrics = Snapshot{}

	unsorted := validRun()
	unsorted.Metrics.Samples = []Sample{{Name: "b"}, {Name: "a"}}

	badRatio := validRun()
	badRatio.Accuracy = 1.5

	cases := map[string]struct {
		doc  any
		want string
	}{
		"useful exceeds issued": {overUseful, "exceeds issued"},
		"missing engine":        {noEngine, "no engine"},
		"empty metrics":         {emptyMetrics, "empty metrics"},
		"unsorted metrics":      {unsorted, "not sorted"},
		"ratio out of range":    {badRatio, "out of [0,1]"},
		"inconsistent status": {Status{Schema: SchemaStatus, JobsDone: 9, JobsTotal: 5},
			"jobs_done"},
	}
	for name, c := range cases {
		_, err := ValidateReport(mustJSON(t, c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, c.want)
		}
	}

	if _, err := ValidateReport([]byte("not json")); err == nil {
		t.Error("non-JSON accepted")
	}
	if _, err := ValidateReport([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ValidateReport([]byte(`{}`)); err == nil {
		t.Error("missing schema accepted")
	}
}
