package obs

// CPI-stack cycle attribution. Every core cycle is charged to exactly one
// bucket — the exact-partition invariant sum(buckets) == cycles holds by
// construction (the core increments exactly one bucket in the same statement
// block that increments Cycles) and is enforced again by the report
// validator (ValidateReport) on every emitted run.
//
// The charging policy is head-of-ROB attribution, the standard CPI-stack
// discipline: a cycle that commits at least one instruction is Base; an
// empty-ROB cycle is charged to whatever starved the front end (branch
// recovery vs. plain fetch latency); a cycle whose ROB head is an in-flight
// load is charged to the memory level servicing it, split further across
// the structural queues the request crossed (LLC bank port, MSHR file, DRAM
// channel) by replaying the load's cache.LoadClass annotation as a piecewise
// walk over the stall interval. See internal/cpu/cpistack.go for the
// charging rules and DESIGN.md §7b for the exactness argument.

// CPIBucket indexes one attribution bucket.
type CPIBucket uint8

// Bucket order is part of the report format: CPIBucketNames, registry metric
// order, and the benchjson cpi_* columns all follow it.
const (
	CPIBase           CPIBucket = iota // committed work (incl. halted drain)
	CPIFetchStall                      // empty ROB, front end filling the pipe
	CPIBranchRecovery                  // empty ROB inside a mispredict redirect shadow
	CPIStoreQueue                      // head load blocked on store disambiguation
	CPIMSHR                            // head load queued for a free LLC MSHR
	CPIL1DMiss                         // head load serviced by the private L2
	CPILLC                             // head load serviced by the shared LLC
	CPILLCBankQueue                    // head load queued at an LLC bank port
	CPIDRAM                            // head load serviced by DRAM
	CPIDRAMChanQueue                   // head load queued for a DRAM channel
	CPIPrefetchLate                    // head load merged with a late prefetch fill
	NumCPIBuckets
)

// CPIBucketNames are the registry/report names, indexed by CPIBucket.
var CPIBucketNames = [NumCPIBuckets]string{
	"base",
	"fetch_stall",
	"branch_recovery",
	"store_queue",
	"mshr",
	"l1d_miss",
	"llc",
	"llc_bank_queue",
	"dram",
	"dram_chan_queue",
	"pf_late",
}

// CPIStack is one core's bucket counters. It lives inside cpu.Stats so the
// window-reset (Stats{}) and snapshot paths cover it for free.
type CPIStack [NumCPIBuckets]uint64

// Total returns the sum over all buckets; with attribution enabled it equals
// the core's cycle count exactly.
func (s *CPIStack) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// AddStack accumulates another stack into s (harness aggregation).
func (s *CPIStack) AddStack(o *CPIStack) {
	for i := range s {
		s[i] += o[i]
	}
}
