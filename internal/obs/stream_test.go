package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStreamHubFanout checks the hub's core semantics: every subscriber sees
// every published line, lines are newline-terminated NDJSON, and cancel is
// idempotent and closes the channel.
func TestStreamHubFanout(t *testing.T) {
	h := NewStreamHub()
	a, cancelA := h.Subscribe()
	b, cancelB := h.Subscribe()
	if n := h.Subscribers(); n != 2 {
		t.Fatalf("Subscribers() = %d, want 2", n)
	}

	h.Publish(StreamProgress{Event: "progress", JobsDone: 1, JobsTotal: 2})
	h.Publish(StreamRun{Event: "run", Engine: "bfetch", Cycles: 100, Insts: 50})

	for name, ch := range map[string]<-chan []byte{"a": a, "b": b} {
		for i, wantEvent := range []string{"progress", "run"} {
			line := <-ch
			if line[len(line)-1] != '\n' {
				t.Errorf("%s line %d not newline-terminated", name, i)
			}
			var ev struct {
				Event string `json:"event"`
			}
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("%s line %d: %v", name, i, err)
			}
			if ev.Event != wantEvent {
				t.Errorf("%s line %d event %q, want %q", name, i, ev.Event, wantEvent)
			}
		}
	}

	cancelA()
	cancelA() // idempotent
	if _, ok := <-a; ok {
		t.Error("cancelled subscriber's channel not closed")
	}
	if n := h.Subscribers(); n != 1 {
		t.Errorf("Subscribers() after cancel = %d, want 1", n)
	}
	h.Publish(StreamProgress{Event: "progress", JobsDone: 2, JobsTotal: 2})
	if line := <-b; line == nil {
		t.Error("surviving subscriber missed a publish after peer cancelled")
	}
	cancelB()
	// Publishing with no subscribers, and on a nil hub, must be no-ops.
	h.Publish(StreamRun{Event: "run"})
	var nilHub *StreamHub
	nilHub.Publish(StreamRun{Event: "run"})
}

// TestStreamHubSlowClient checks the non-blocking drop policy: a subscriber
// that never reads absorbs streamBuffer events, then overflow is counted as
// dropped and Publish still returns — a stalled client cannot wedge a batch.
func TestStreamHubSlowClient(t *testing.T) {
	h := NewStreamHub()
	_, cancel := h.Subscribe()
	defer cancel()
	for i := 0; i < streamBuffer+5; i++ {
		h.Publish(StreamProgress{Event: "progress", JobsDone: uint64(i)})
	}
	if got := h.Dropped(); got != 5 {
		t.Errorf("Dropped() = %d, want 5", got)
	}
}

// TestStreamHubConcurrent races publishers against subscribe/cancel churn;
// run under -race this pins the locking discipline (in particular that
// Publish's send cannot race Subscribe's close).
func TestStreamHubConcurrent(t *testing.T) {
	h := NewStreamHub()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Publish(StreamProgress{Event: "progress", JobsDone: uint64(i)})
				}
			}
		}()
	}
	var sg sync.WaitGroup
	for s := 0; s < 4; s++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := h.Subscribe()
				<-ch // publishers run until stop: a receive always arrives
				cancel()
				for range ch { // drain to closed: cancel-vs-publish ordering
				}
			}
		}()
	}
	sg.Wait()
	close(stop)
	wg.Wait()
	if n := h.Subscribers(); n != 0 {
		t.Errorf("Subscribers() after churn = %d, want 0", n)
	}
}

// TestServeStream exercises the /obs/stream endpoint end to end: a client
// connects, the hub registers it, published events arrive as parseable
// NDJSON lines, and disconnecting unregisters the subscriber.
func TestServeStream(t *testing.T) {
	hub := NewStreamHub()
	srv, err := Serve("127.0.0.1:0", func() Status { return Status{Schema: SchemaStatus} }, nil, hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/obs/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /obs/stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	// The handler subscribes asynchronously; wait for registration before
	// publishing so the event cannot be lost to the race.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream client never registered with the hub")
		}
		time.Sleep(time.Millisecond)
	}

	hub.Publish(StreamSample{
		Event: "sample", Engine: "bfetch", Cycle: 4096,
		Names: []string{"c0.cpu.cycles"}, Row: []uint64{4096},
	})

	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var ev StreamSample
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", line, err)
	}
	if ev.Event != "sample" || ev.Cycle != 4096 || len(ev.Names) != 1 || len(ev.Row) != 1 {
		t.Errorf("stream event %+v, want the published sample", ev)
	}

	resp.Body.Close()
	deadline = time.Now().Add(5 * time.Second)
	for hub.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected client never unregistered from the hub")
		}
		// Nudge the handler's select loop: a publish to a closed connection
		// surfaces the write error / context cancellation.
		hub.Publish(StreamProgress{Event: "progress"})
		time.Sleep(time.Millisecond)
	}
}
