package obs

import (
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeEndpoints(t *testing.T) {
	status := func() Status {
		return Status{Schema: SchemaStatus, Experiment: "fig8", JobsDone: 3, JobsTotal: 8}
	}
	runs := func() RunsFile {
		return RunsFile{Schema: SchemaRuns, Runs: []RunReport{validRun()}}
	}
	srv, err := Serve("127.0.0.1:0", status, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	for _, path := range []string{"/obs", "/"} {
		code, body := get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, code)
		}
		if schema, err := ValidateReport(body); err != nil || schema != SchemaStatus {
			t.Errorf("GET %s: schema %q, err %v", path, schema, err)
		}
	}

	code, body := get(t, base+"/obs/runs")
	if code != http.StatusOK {
		t.Fatalf("GET /obs/runs: %d", code)
	}
	if schema, err := ValidateReport(body); err != nil || schema != SchemaRuns {
		t.Errorf("GET /obs/runs: schema %q, err %v", schema, err)
	}

	if code, _ := get(t, base+"/debug/vars"); code != http.StatusOK {
		t.Errorf("GET /debug/vars: %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("GET /debug/pprof/: %d", code)
	}
	if code, _ := get(t, base+"/nonsense"); code != http.StatusNotFound {
		t.Errorf("GET /nonsense: %d, want 404", code)
	}
}

// TestServeWithoutRuns checks the runs endpoint is absent when no supplier
// is wired, and that a second server in the same process is fine (the
// expvar publication must not panic on re-registration).
func TestServeWithoutRuns(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func() Status { return Status{Schema: SchemaStatus} }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/obs/runs"); code != http.StatusNotFound {
		t.Errorf("GET /obs/runs without supplier: %d, want 404", code)
	}
}
