package obs

import (
	"reflect"
	"testing"
)

func TestRegistryCountersGaugesHists(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b.count")
	g := r.Gauge("a.gauge")
	h := r.Histogram("c.hist")
	r.Func("d.func", func() uint64 { return 7 })

	c.Inc()
	c.Add(4)
	g.Set(9)
	g.Set(3) // last value wins
	h.Observe(0)
	h.Observe(5)
	h.Observe(1 << 40) // clamps into the last bucket

	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
	if h.Count() != 3 {
		t.Errorf("hist count = %d, want 3", h.Count())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}

	s := r.Snapshot()
	wantNames := []string{"a.gauge", "b.count", "d.func"}
	var gotNames []string
	for _, smp := range s.Samples {
		gotNames = append(gotNames, smp.Name)
	}
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Errorf("snapshot names = %v, want %v (sorted)", gotNames, wantNames)
	}
	if v, ok := s.Get("b.count"); !ok || v != 5 {
		t.Errorf("Get(b.count) = %d, %v", v, ok)
	}
	if v, ok := s.Get("d.func"); !ok || v != 7 {
		t.Errorf("Get(d.func) = %d, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing) succeeded")
	}
	if len(s.Hists) != 1 || s.Hists[0].Count != 3 || s.Hists[0].Sum != 5+(1<<40) {
		t.Errorf("hist sample = %+v", s.Hists)
	}
	if s.Hists[0].Buckets[HistBuckets-1] != 1 {
		t.Error("oversized observation not clamped into last bucket")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	live := uint64(11)
	r.Func("f", func() uint64 { return live })

	c.Add(10)
	g.Set(2)
	h.Observe(3)
	r.Reset()

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("after Reset: counter %d gauge %d hist %d, want zeros",
			c.Value(), g.Value(), h.Count())
	}
	// Func collectors read live state owned elsewhere; Reset must not touch it.
	if v, _ := r.Snapshot().Get("f"); v != 11 {
		t.Errorf("func collector after Reset = %d, want 11", v)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("x")
}
