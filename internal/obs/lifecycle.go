package obs

// Prefetch lifecycle classification. Every prefetch fill that installs a
// block is tracked from issue to its terminal transition, and classified:
//
//	issued ──► first demand touch, fill complete ─────────► useful (timely)
//	       ──► first demand touch, fill still in flight ──► useful (late)
//	       ──► evicted untouched ─────────────────────────► useless
//
// and, orthogonally, a demand re-miss of a block that a prefetch fill
// evicted is counted as pollution. Pollution is detected with a bounded
// direct-mapped victim table: when a prefetch fill evicts a valid block we
// record the victim's address; a later demand miss that matches consumes
// the entry. The table is a fixed 1024-entry array — deterministic,
// allocation-free, and (like the cache contents it mirrors) deliberately
// NOT cleared by stats resets, so a victim evicted during warmup whose
// re-miss lands in the measurement window is still attributed.
//
// The hooks are called from the cache's //bfetch:hotpath access path; all
// are nil-receiver safe so an un-instrumented cache pays one predictable
// branch, and none allocates.

// victimBits sizes the pollution victim table: 2^victimBits entries.
const victimBits = 10

// victimHash spreads block addresses over the table (Fibonacci hashing).
//
//bfetch:hotpath
func victimHash(blockAddr uint64) uint64 {
	return (blockAddr * 0x9E3779B97F4A7C15) >> (64 - victimBits)
}

// LifecycleStats is one engine's lifecycle breakdown over a measurement
// window. It is plain data (copyable, comparable with reflect.DeepEqual)
// so it can ride inside sim.Result.
type LifecycleStats struct {
	Issued         uint64 `json:"issued"`          // prefetch fills installed in the L1D
	UsefulTimely   uint64 `json:"useful_timely"`   // first demand touch after the fill completed
	UsefulLate     uint64 `json:"useful_late"`     // first demand touch while the fill was in flight
	UselessEvicted uint64 `json:"useless_evicted"` // evicted untouched
	Polluting      uint64 `json:"polluting"`       // demand re-miss of a block a prefetch fill evicted
	DemandMisses   uint64 `json:"demand_misses"`   // demand misses (denominator for coverage)
}

// Useful returns all demand-touched prefetches, timely or late.
func (s LifecycleStats) Useful() uint64 { return s.UsefulTimely + s.UsefulLate }

// Accuracy is useful prefetches per issued prefetch.
func (s LifecycleStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful()) / float64(s.Issued)
}

// Coverage is the fraction of would-be demand misses a timely prefetch
// eliminated: timely / (timely + remaining demand misses).
func (s LifecycleStats) Coverage() float64 {
	d := s.UsefulTimely + s.DemandMisses
	if d == 0 {
		return 0
	}
	return float64(s.UsefulTimely) / float64(d)
}

// Timeliness is the fraction of useful prefetches that completed before
// their demand arrived.
func (s LifecycleStats) Timeliness() float64 {
	if s.Useful() == 0 {
		return 0
	}
	return float64(s.UsefulTimely) / float64(s.Useful())
}

// Add accumulates o (for multi-core and cross-workload aggregation).
func (s *LifecycleStats) Add(o LifecycleStats) {
	s.Issued += o.Issued
	s.UsefulTimely += o.UsefulTimely
	s.UsefulLate += o.UsefulLate
	s.UselessEvicted += o.UselessEvicted
	s.Polluting += o.Polluting
	s.DemandMisses += o.DemandMisses
}

// Lifecycle classifies one L1D's prefetches. Construct with NewLifecycle;
// a nil *Lifecycle is a valid no-op sink for every hook.
type Lifecycle struct {
	issued         Counter
	usefulTimely   Counter
	usefulLate     Counter
	uselessEvicted Counter
	polluting      Counter
	demandMisses   Counter
	resident       Histogram // cycles from fill completion to first use / eviction

	victims [1 << victimBits]uint64 // victim blockAddr+1, or 0

	tr *Trace // optional sampled event sink; nil-safe
}

// NewLifecycle registers the lifecycle metrics under prefix (e.g. "c0.pf.")
// and returns the classifier.
func NewLifecycle(reg *Registry, prefix string) *Lifecycle {
	return &Lifecycle{
		issued:         reg.Counter(prefix + "issued"),
		usefulTimely:   reg.Counter(prefix + "useful_timely"),
		usefulLate:     reg.Counter(prefix + "useful_late"),
		uselessEvicted: reg.Counter(prefix + "useless_evicted"),
		polluting:      reg.Counter(prefix + "polluting"),
		demandMisses:   reg.Counter(prefix + "demand_misses"),
		resident:       reg.Histogram(prefix + "resident_cycles"),
	}
}

// SetTrace attaches a sampled event sink (nil detaches).
func (lc *Lifecycle) SetTrace(tr *Trace) { lc.tr = tr }

// CarryIn credits n prefetches to the issued count. Called after a stats
// reset with the number of still-resident untouched prefetched blocks, so a
// prefetch filled during warmup whose first touch (or eviction) lands in
// the measurement window is attributed to a window that also counts its
// issue — keeping useful+useless <= issued an invariant of every window,
// which the run-report validator enforces.
func (lc *Lifecycle) CarryIn(n uint64) {
	if lc == nil || n == 0 {
		return
	}
	lc.issued.Add(n)
}

// Stats returns the current breakdown.
func (lc *Lifecycle) Stats() LifecycleStats {
	if lc == nil {
		return LifecycleStats{}
	}
	return LifecycleStats{
		Issued:         lc.issued.Value(),
		UsefulTimely:   lc.usefulTimely.Value(),
		UsefulLate:     lc.usefulLate.Value(),
		UselessEvicted: lc.uselessEvicted.Value(),
		Polluting:      lc.polluting.Value(),
		DemandMisses:   lc.demandMisses.Value(),
	}
}

// Issued records a prefetch fill installing a block.
//
//bfetch:hotpath
func (lc *Lifecycle) Issued(pc, blockAddr, now uint64) {
	if lc == nil {
		return
	}
	lc.issued.Inc()
	lc.tr.Record(KindPrefIssue, pc, blockAddr, now)
}

// Used records the first demand touch of a prefetched block. readyAt is the
// block's fill-completion cycle; late reports whether the demand had to
// wait on the in-flight fill beyond the hit latency.
//
//bfetch:hotpath
func (lc *Lifecycle) Used(pc, blockAddr, now, readyAt uint64, late bool) {
	if lc == nil {
		return
	}
	if late {
		lc.usefulLate.Inc()
		lc.tr.Record(KindPrefLate, pc, blockAddr, now)
		return
	}
	lc.usefulTimely.Inc()
	if now > readyAt {
		lc.resident.Observe(now - readyAt)
	} else {
		lc.resident.Observe(0)
	}
	lc.tr.Record(KindPrefUse, pc, blockAddr, now)
}

// Evicted records a prefetched block leaving the cache untouched.
//
//bfetch:hotpath
func (lc *Lifecycle) Evicted(pc, blockAddr, now, readyAt uint64) {
	if lc == nil {
		return
	}
	lc.uselessEvicted.Inc()
	if now > readyAt {
		lc.resident.Observe(now - readyAt)
	}
	lc.tr.Record(KindPrefEvict, pc, blockAddr, now)
}

// FillVictim records that a prefetch fill evicted a valid block, arming the
// pollution detector for that address.
//
//bfetch:hotpath
func (lc *Lifecycle) FillVictim(victimBlockAddr uint64) {
	if lc == nil {
		return
	}
	lc.victims[victimHash(victimBlockAddr)] = victimBlockAddr + 1
}

// DemandMiss records a demand (read or write) miss; if the address matches
// an armed victim entry, the miss is attributed to prefetch pollution and
// the entry is consumed.
//
//bfetch:hotpath
func (lc *Lifecycle) DemandMiss(pc, blockAddr, now uint64) {
	if lc == nil {
		return
	}
	lc.demandMisses.Inc()
	h := victimHash(blockAddr)
	if lc.victims[h] == blockAddr+1 {
		lc.victims[h] = 0
		lc.polluting.Inc()
		lc.tr.Record(KindPrefPollute, pc, blockAddr, now)
	}
}
