package obs

// Live run streaming. A StreamHub fans NDJSON events out to any number of
// concurrent subscribers; the /obs/stream endpoint (http.go) attaches one
// subscriber per connected client. Producers — the batch runner — publish
// typed events at run granularity: a progress event per finished job, and a
// run summary plus the run's interval time-series rows when a simulation
// completes. Publishing happens outside the simulation's per-cycle path, so
// the hot kernel stays allocation-free regardless of how many clients watch.
//
// Slow-client policy: each subscriber owns a bounded buffered channel, and
// Publish never blocks — an event that finds a subscriber's buffer full is
// dropped for that subscriber (and counted). A stalled curl therefore cannot
// back-pressure the experiment batch; clients needing a complete record read
// /obs/runs or the -obsjson file, which are lossless.

import (
	"encoding/json"
	"sync"
)

// StreamProgress reports batch progress; one is published per finished job
// (whether it simulated or was answered from a cache).
type StreamProgress struct {
	Event     string `json:"event"` // "progress"
	JobsDone  uint64 `json:"jobs_done"`
	JobsTotal uint64 `json:"jobs_total"`
}

// StreamRun summarizes one executed simulation.
type StreamRun struct {
	Event       string   `json:"event"` // "run"
	Engine      string   `json:"engine"`
	Apps        []string `json:"apps"`
	Cycles      uint64   `json:"cycles"`
	Insts       uint64   `json:"insts"`
	IPC         float64  `json:"ipc"` // aggregate: insts / cycles
	WallSeconds float64  `json:"wall_seconds"`
}

// StreamSample is one interval time-series row from an executed run,
// published after that run's StreamRun event. Cycle is the absolute
// simulated-cycle boundary the row sampled; Names is sent on a run's first
// row only (the schema is fixed for the whole run).
type StreamSample struct {
	Event  string   `json:"event"` // "sample"
	Engine string   `json:"engine"`
	Apps   []string `json:"apps"`
	Cycle  uint64   `json:"cycle"`
	Names  []string `json:"names,omitempty"`
	Row    []uint64 `json:"row"`
}

// streamBuffer is each subscriber's channel depth: enough to absorb a full
// run's burst (summary + a maxRows time series) without loss for any client
// that is actually reading.
const streamBuffer = 256

// StreamHub fans published events out to subscribers. The zero value is not
// usable; construct with NewStreamHub. Safe for concurrent use — producers
// publish from worker goroutines while HTTP handlers subscribe and cancel.
type StreamHub struct {
	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	dropped uint64
}

// NewStreamHub returns an empty hub.
func NewStreamHub() *StreamHub {
	return &StreamHub{subs: make(map[chan []byte]struct{})}
}

// Subscribe registers a new subscriber and returns its event channel plus a
// cancel function. Each received value is one complete NDJSON line
// (newline-terminated). Cancel is idempotent and closes the channel after
// unregistering, so a draining reader terminates cleanly.
func (h *StreamHub) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, streamBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, ch)
			h.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Subscribers reports the number of attached clients.
func (h *StreamHub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped reports events discarded because a subscriber's buffer was full.
func (h *StreamHub) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Publish marshals v as one NDJSON line and offers it to every subscriber
// without blocking; subscribers whose buffers are full miss this event. A
// nil hub is a no-op, so producers need no guard. Marshal failures are
// silently dropped — event types are plain structs and cannot fail, and the
// streaming surface must never abort a batch.
func (h *StreamHub) Publish(v any) {
	if h == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	line := append(data, '\n')
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- line: //bfetch:sync-ok select with default never blocks; sending under mu excludes Subscribe's close
		default:
			h.dropped++
		}
	}
	h.mu.Unlock()
}
