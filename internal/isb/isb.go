// Package isb implements a simplified Irregular Stream Buffer (Jain & Lin,
// "Linearizing Irregular Memory Accesses for Improved Correlated
// Prefetching", MICRO 2013) — the heavy-weight comparator the paper's
// related-work section positions B-Fetch against (§III-B): very high
// accuracy on irregular streams, at the cost of megabytes of off-chip
// meta-data.
//
// The key idea: an extra level of indirection maps correlated physical
// addresses onto consecutive *structural* addresses. Two tables implement
// the indirection — PS (physical→structural) and SP (structural→physical).
// A PC-localized training unit observes consecutive accesses by the same
// load: when PC p touches block A then block B, B is assigned the structural
// address following A's, so the irregular physical sequence A,B,C… becomes
// the sequential structural run s,s+1,s+2…. Prefetching is then plain
// next-N in structural space, translated back through SP.
//
// This reproduction keeps the maps in simulator memory and accounts their
// size; the original stores them off-chip (≈8 MB) and pays ≈8.4% memory
// traffic to shuttle them, which Table-I-style comparisons must remember
// (see the ext-isb experiment).
package isb

import (
	"repro/internal/obs"
	"repro/internal/prefetch"
)

// Config sizes the prefetcher.
type Config struct {
	Degree      int // structural-space prefetch degree
	StreamLen   int // structural stream granularity
	MaxMappings int // meta-data cap, modelling the off-chip budget
}

// DefaultConfig follows the MICRO 2013 evaluation scale: degree 4, 256-block
// streams, and a meta-data budget equivalent to 8 MB off-chip storage
// (≈1 M mappings at ~8 bytes each).
func DefaultConfig() Config {
	return Config{Degree: 4, StreamLen: 256, MaxMappings: 1 << 20}
}

// ISB is the prefetcher.
type ISB struct {
	prefetch.Base
	cfg Config //bfetch:noreset configuration

	ps        map[uint64]uint64 //bfetch:noreset physical block → structural address
	sp        map[uint64]uint64 //bfetch:noreset structural address → physical block
	lastBlock map[uint64]uint64 //bfetch:noreset load PC → previous block (training unit)

	nextStream uint64 //bfetch:noreset structural address allocator, learned
	queue      *prefetch.Queue

	// Stats.
	TrainedPairs  uint64
	MetaOverflows uint64
}

// New builds an ISB prefetcher.
func New(cfg Config) *ISB {
	if cfg.Degree <= 0 || cfg.StreamLen <= 1 {
		panic("isb: invalid configuration")
	}
	return &ISB{
		cfg:       cfg,
		ps:        make(map[uint64]uint64),
		sp:        make(map[uint64]uint64),
		lastBlock: make(map[uint64]uint64),
		queue:     prefetch.NewQueue(100, 2),
	}
}

func (p *ISB) Name() string { return "isb" }

// OnAccess trains the structural mapping and issues structural next-N
// prefetches.
func (p *ISB) OnAccess(a prefetch.AccessInfo) {
	if a.Write {
		return
	}
	block := a.Addr >> 6

	// Predict: follow the structural stream from this block.
	if s, ok := p.ps[block]; ok {
		for i := uint64(1); i <= uint64(p.cfg.Degree); i++ {
			if sameStream(s, s+i, p.cfg.StreamLen) {
				if phys, ok := p.sp[s+i]; ok {
					p.queue.Push(prefetch.Request{Addr: phys << 6, LoadPC: a.PC})
				}
			}
		}
	}

	// Train: link the previous block touched by this PC to this one.
	if last, ok := p.lastBlock[a.PC]; ok && last != block {
		p.train(last, block)
	}
	p.lastBlock[a.PC] = block
}

func (p *ISB) train(a, b uint64) {
	if len(p.ps) >= p.cfg.MaxMappings {
		p.MetaOverflows++
		return
	}
	sA, ok := p.ps[a]
	if !ok || !sameStream(sA, sA+1, p.cfg.StreamLen) {
		// Start a new structural stream at A.
		sA = p.nextStream * uint64(p.cfg.StreamLen)
		p.nextStream++
		p.map2(a, sA)
	}
	p.map2(b, sA+1)
	p.TrainedPairs++
}

// map2 installs a bidirectional mapping, unlinking any previous occupant of
// either side (a physical block lives at one structural address and vice
// versa, as in the original's invariant).
func (p *ISB) map2(phys, structural uint64) {
	if old, ok := p.ps[phys]; ok {
		delete(p.sp, old)
	}
	if old, ok := p.sp[structural]; ok {
		delete(p.ps, old)
	}
	p.ps[phys] = structural
	p.sp[structural] = phys
}

func sameStream(a, b uint64, streamLen int) bool {
	return a/uint64(streamLen) == b/uint64(streamLen)
}

// AppendTick drains the prefetch queue.
//
//bfetch:hotpath
func (p *ISB) AppendTick(dst []prefetch.Request, now uint64) []prefetch.Request {
	return p.queue.AppendPop(dst)
}

// Idle reports whether the queue is drained.
func (p *ISB) Idle() bool { return p.queue.Len() == 0 }

// ResetStats zeroes the measurement counters.
func (p *ISB) ResetStats() {
	p.TrainedPairs, p.MetaOverflows = 0, 0
	p.queue.ResetStats()
}

// RegisterObs exports the engine's counters into the metrics registry.
func (p *ISB) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"trained_pairs", func() uint64 { return p.TrainedPairs })
	reg.Func(prefix+"meta_overflows", func() uint64 { return p.MetaOverflows })
	p.queue.RegisterObs(reg, prefix)
}

// StorageBits reports the meta-data footprint: each mapping costs a
// structural and a physical block address (~42 bits each) in both tables.
// This is the number Table I-style comparisons must weigh against B-Fetch's
// ~13 KB — it is orders of magnitude larger and lives off-chip in the
// original design.
func (p *ISB) StorageBits() int {
	return (len(p.ps)+len(p.sp))*42 + p.queue.StorageBits()
}

// MetaBytes reports the current meta-data size in bytes.
func (p *ISB) MetaBytes() int { return p.StorageBits() / 8 }
