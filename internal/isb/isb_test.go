package isb

import (
	"math/rand"
	"testing"

	"repro/internal/prefetch"
)

func drain(p *ISB, cycles int) []prefetch.Request {
	var all []prefetch.Request
	for i := 0; i < cycles; i++ {
		all = p.AppendTick(all, uint64(i))
	}
	return all
}

// touch replays an address sequence as loads from one PC.
func touch(p *ISB, pc uint64, addrs []uint64) {
	for _, a := range addrs {
		p.OnAccess(prefetch.AccessInfo{PC: pc, Addr: a})
	}
}

func TestLinearizesIrregularSequence(t *testing.T) {
	p := New(DefaultConfig())
	// An arbitrary but repeating irregular sequence.
	seq := []uint64{0x10000, 0x93440, 0x2AC0, 0x77F80, 0x5140}
	pc := uint64(0x400)

	touch(p, pc, seq) // first pass: trains the structural mapping
	drain(p, 100)

	// Second pass: touching the first element must prefetch the followers.
	touch(p, pc, seq[:1])
	reqs := drain(p, 100)
	want := map[uint64]bool{}
	for _, a := range seq[1:] {
		want[a&^63] = true
	}
	if len(reqs) == 0 {
		t.Fatalf("no prefetches after training (trained pairs: %d)", p.TrainedPairs)
	}
	hits := 0
	for _, r := range reqs {
		if want[r.Addr&^63] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("only %d of the followers prefetched: %v", hits, reqs)
	}
}

func TestColdSequenceSilent(t *testing.T) {
	p := New(DefaultConfig())
	touch(p, 0x400, []uint64{0x1000, 0x2000, 0x3000})
	// During the very first pass nothing is mapped yet when each block is
	// first touched, so at most stale predictions fire.
	if reqs := drain(p, 10); len(reqs) != 0 {
		t.Errorf("cold pass produced %v", reqs)
	}
}

func TestPCLocalization(t *testing.T) {
	p := New(DefaultConfig())
	// Interleaved accesses by two PCs: streams must not cross-contaminate.
	a := []uint64{0x10000, 0x20000, 0x30000}
	b := []uint64{0x80000, 0x90000, 0xA0000}
	for i := range a {
		p.OnAccess(prefetch.AccessInfo{PC: 0x400, Addr: a[i]})
		p.OnAccess(prefetch.AccessInfo{PC: 0x500, Addr: b[i]})
	}
	drain(p, 100)
	touch(p, 0x400, a[:1])
	reqs := drain(p, 100)
	for _, r := range reqs {
		for _, bad := range b {
			if r.Addr&^63 == bad&^63 {
				t.Errorf("stream for PC 0x400 prefetched PC 0x500's block %#x", bad)
			}
		}
	}
}

func TestWritesIgnored(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.OnAccess(prefetch.AccessInfo{PC: 0x400, Addr: uint64(i) * 4096, Write: true})
	}
	if p.TrainedPairs != 0 {
		t.Error("stores trained the mapping")
	}
}

func TestMetaCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMappings = 8
	p := New(cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p.OnAccess(prefetch.AccessInfo{PC: 0x400, Addr: uint64(rng.Intn(1<<20)) &^ 63})
	}
	if len(p.ps) > 16 { // cap + in-flight pair slack
		t.Errorf("meta grew past cap: %d", len(p.ps))
	}
	if p.MetaOverflows == 0 {
		t.Error("no overflow recorded")
	}
}

func TestRemappingInvariant(t *testing.T) {
	p := New(DefaultConfig())
	// Retrain the same physical block into a different stream: the old
	// structural slot must be unlinked (bijection preserved).
	touch(p, 0x400, []uint64{0x1000, 0x2000})
	touch(p, 0x500, []uint64{0x9000, 0x2000})
	fwd := map[uint64]int{}
	for s, phys := range p.sp {
		if got, dup := fwd[phys]; dup {
			t.Fatalf("block %#x mapped at two structural addresses (%d, %d)", phys, got, s)
		}
		fwd[phys] = int(s)
	}
	for phys, s := range p.ps {
		if p.sp[s] != phys {
			t.Fatalf("ps/sp disagree for block %#x", phys)
		}
	}
}

func TestStorageGrowsWithMeta(t *testing.T) {
	p := New(DefaultConfig())
	before := p.StorageBits()
	touch(p, 0x400, []uint64{0x1000, 0x2000, 0x3000, 0x4000})
	if p.StorageBits() <= before {
		t.Error("meta-data growth not reflected in storage accounting")
	}
	if p.MetaBytes() != p.StorageBits()/8 {
		t.Error("MetaBytes inconsistent")
	}
}
