package sim

import (
	"reflect"
	"testing"
)

// mix16 tiles eight memory-diverse workloads twice: the 16-core CMP mix the
// scale-out engine targets. Every core is active the whole run, so the
// worker-pool partition, the banked LLC and the channeled DRAM all see
// sustained same-cycle contention.
var mix16 = []string{
	"mcf", "lbm", "milc", "astar", "libquantum", "soplex", "sphinx", "leslie3d",
	"mcf", "lbm", "milc", "astar", "libquantum", "soplex", "sphinx", "leslie3d",
}

// parOpts is small enough to sweep seven engines twice per loop mode but
// long enough to fill the port queues, bank MSHRs and DRAM channel slots.
var parOpts = RunOpts{WarmupInsts: 2_000, MeasureInsts: 6_000}

// TestParallelEquivalenceAllEngines is the BSP stepping contract: for every
// prefetcher engine, on both clock loops, a 16-core scale-out run with
// CoreWorkers > 1 must reproduce the serial Result snapshot bit for bit.
// Worker scheduling may reorder core execution within a cycle, but all
// shared-memory traffic is deferred through per-core ports serviced in
// core-index order, so no simulated outcome may move.
func TestParallelEquivalenceAllEngines(t *testing.T) {
	engines := []PrefetcherKind{PFNone, PFNextN, PFStride, PFSMS, PFSTeMS, PFISB, PFBFetch}
	for _, kind := range engines {
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultScale(kind, len(mix16))
			for _, loop := range []LoopMode{LoopEvent, LoopNaive} {
				opts := parOpts
				opts.Loop = loop
				serial, err := Run(cfg, mix16, opts)
				if err != nil {
					t.Fatalf("loop %v serial: %v", loop, err)
				}
				opts.CoreWorkers = 5 // odd on purpose: uneven stride partition
				par, err := Run(cfg, mix16, opts)
				if err != nil {
					t.Fatalf("loop %v parallel: %v", loop, err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("loop %v: parallel snapshot diverges from serial\nserial: %+v\nparallel: %+v",
						loop, serial, par)
				}
			}
		})
	}
}

// TestParallelWorkerCountInvariance pins the stronger form of the claim:
// the result is identical at ANY worker count, including counts above the
// core count (clamped) and counts that do not divide it.
func TestParallelWorkerCountInvariance(t *testing.T) {
	cfg := DefaultScale(PFBFetch, len(mix16))
	serial, err := Run(cfg, mix16, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 16, 64} {
		opts := parOpts
		opts.CoreWorkers = w
		par, err := Run(cfg, mix16, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: snapshot diverges from serial", w)
		}
	}
}

// TestParallelEquivalenceOnError covers the failure path under BSP stepping:
// a run that hits the cycle bound must fail with the same error text and
// identical partial counters whether cores step serially or on the pool.
func TestParallelEquivalenceOnError(t *testing.T) {
	run := func(workers int) (Result, error) {
		s, err := buildSystem(DefaultScale(PFNone, 4),
			[]string{"libquantum", "mcf", "milc", "lbm"})
		if err != nil {
			t.Fatal(err)
		}
		s.CoreWorkers = workers
		err = s.Run(1<<40, 30_000) // unreachable budget: must hit the bound
		return s.Snapshot(), err
	}

	serial, errS := run(0)
	par, errP := run(3)
	if errS == nil || errP == nil {
		t.Fatalf("expected both runs to hit the cycle bound (serial %v, parallel %v)", errS, errP)
	}
	if errS.Error() != errP.Error() {
		t.Errorf("error text diverges:\nserial:   %v\nparallel: %v", errS, errP)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("partial snapshots diverge\nserial: %+v\nparallel: %+v", serial, par)
	}
}
