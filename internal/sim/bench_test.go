package sim

import "testing"

// BenchmarkSimMemoryBound runs a full warmup+measure protocol on mcf — a
// pointer chase that spends most of its cycles stalled on DRAM — under both
// clock strategies. The ratio naive/event is the event-driven loop's whole
// point: stall cycles dominate, and the event loop skips them.
func BenchmarkSimMemoryBound(b *testing.B) {
	opts := RunOpts{WarmupInsts: 5_000, MeasureInsts: 25_000}
	for _, mode := range []struct {
		name string
		loop LoopMode
	}{{"naive", LoopNaive}, {"event", LoopEvent}} {
		b.Run(mode.name, func(b *testing.B) {
			o := opts
			o.Loop = mode.loop
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := RunSolo(Default(PFNone), "mcf", o)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/1e3/float64(b.Elapsed().Seconds())/1e3, "Msimcycles/s")
		})
	}
}

// BenchmarkSimScale is the scale-out engine's headline measurement: a
// 16-core memory-diverse mix on the banked/channeled configuration, under
// (a) the naive per-cycle scan, (b) the indexed event loop, and (c) the
// event loop with 8 core workers. Results are byte-identical across all
// three, so this is pure wall clock. The par8 leg only pays off when
// runtime.NumCPU() exceeds 1: the per-cycle barrier costs ~1µs, so it needs
// real hardware parallelism across the ~16×50ns core ticks to come out
// ahead — on a single-CPU host it measures the barrier overhead instead.
func BenchmarkSimScale(b *testing.B) {
	opts := RunOpts{WarmupInsts: 2_000, MeasureInsts: 8_000}
	for _, mode := range []struct {
		name    string
		loop    LoopMode
		workers int
	}{
		{"naive", LoopNaive, 0},
		{"event", LoopEvent, 0},
		{"event-par8", LoopEvent, 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			o := opts
			o.Loop = mode.loop
			o.CoreWorkers = mode.workers
			cfg := DefaultScale(PFBFetch, len(mix16))
			b.ReportAllocs()
			var coreCycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg, mix16, o)
				if err != nil {
					b.Fatal(err)
				}
				coreCycles += res.Cycles * uint64(len(mix16))
			}
			b.ReportMetric(float64(coreCycles)/1e6/b.Elapsed().Seconds(), "Mcorecycles/s")
		})
	}
}
