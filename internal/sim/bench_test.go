package sim

import "testing"

// BenchmarkSimMemoryBound runs a full warmup+measure protocol on mcf — a
// pointer chase that spends most of its cycles stalled on DRAM — under both
// clock strategies. The ratio naive/event is the event-driven loop's whole
// point: stall cycles dominate, and the event loop skips them.
func BenchmarkSimMemoryBound(b *testing.B) {
	opts := RunOpts{WarmupInsts: 5_000, MeasureInsts: 25_000}
	for _, mode := range []struct {
		name string
		loop LoopMode
	}{{"naive", LoopNaive}, {"event", LoopEvent}} {
		b.Run(mode.name, func(b *testing.B) {
			o := opts
			o.Loop = mode.loop
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := RunSolo(Default(PFNone), "mcf", o)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/1e3/float64(b.Elapsed().Seconds())/1e3, "Msimcycles/s")
		})
	}
}
