package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

var ffOpts = RunOpts{FastForwardInsts: 20_000, WarmupInsts: 5_000, MeasureInsts: 20_000}

// TestRunCheckpointedMatchesInline: booting from a pre-built checkpoint must
// reproduce the inline fast-forward path bit for bit — the contract the
// runner's checkpoint cache relies on. (The runner-level test covers all
// prefetcher kinds; this pins the sim-level plumbing.)
func TestRunCheckpointedMatchesInline(t *testing.T) {
	cfg := Default(PFBFetch)
	inline, err := RunSolo(cfg, "mcf", ffOpts)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ckpt.ByName("mcf", ffOpts.FastForwardInsts)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RunCheckpointed(cfg, []*ckpt.Checkpoint{cp}, ffOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inline, restored) {
		t.Errorf("results diverge\ninline:   %+v\nrestored: %+v", inline, restored)
	}
}

// TestFastForwardChangesMeasuredWindow: the fast-forward must actually move
// the measurement window — a run with FF must differ from one without
// (the workloads are phase-stable loops, but register/memory state differs).
func TestFastForwardSkipsPrefix(t *testing.T) {
	cfg := Default(PFNone)
	noFF := ffOpts
	noFF.FastForwardInsts = 0
	a, err := RunSolo(cfg, "bzip2", noFF)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSolo(cfg, "bzip2", ffOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Both are valid measured windows (commit width may overshoot the
	// target by a few instructions).
	if a.Core[0].Committed < ffOpts.MeasureInsts || b.Core[0].Committed < ffOpts.MeasureInsts {
		t.Errorf("short windows: %d and %d, want ≥ %d",
			a.Core[0].Committed, b.Core[0].Committed, ffOpts.MeasureInsts)
	}
	if a.Core[0].Cycles == 0 || b.Core[0].Cycles == 0 {
		t.Error("degenerate run")
	}
}

// TestRunCheckpointedFFMismatch: a checkpoint built for a different
// fast-forward length must be rejected, not silently measured.
func TestRunCheckpointedFFMismatch(t *testing.T) {
	cp, err := ckpt.ByName("mcf", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCheckpointed(Default(PFNone), []*ckpt.Checkpoint{cp}, ffOpts)
	if err == nil || !strings.Contains(err.Error(), "fast-forwarded") {
		t.Errorf("want FF-mismatch error, got %v", err)
	}
}

// TestFastForwardPastHalt: fast-forwarding beyond a program's HALT is a
// protocol error on both the inline and checkpoint paths.
func TestFastForwardPastHalt(t *testing.T) {
	cfg := Default(PFNone)
	cfg.Cores = 1
	// No registered workload halts within 5 M insts; use the emulator error
	// path via a checkpoint of a tiny custom program instead.
	cp := haltedCheckpoint(t)
	if _, err := RunCheckpointed(cfg, []*ckpt.Checkpoint{cp}, RunOpts{FastForwardInsts: cp.FFInsts, MeasureInsts: 1000}); err == nil ||
		!strings.Contains(err.Error(), "halted") {
		t.Errorf("want halted error, got %v", err)
	}
}

// haltedCheckpoint captures a checkpoint past a tiny program's HALT.
func haltedCheckpoint(t *testing.T) *ckpt.Checkpoint {
	t.Helper()
	w := workload.New("halts", "halts immediately", "compute", false,
		func() (*isa.Program, *mem.Memory) {
			b := isa.NewBuilder()
			b.Movi(isa.Reg(1), 10)
			top := b.Here()
			b.Addi(isa.Reg(1), isa.Reg(1), -1)
			b.Bnez(isa.Reg(1), top)
			b.Halt()
			return b.MustProgram(), mem.New()
		})
	cp, err := ckpt.New(w, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Arch.Halted {
		t.Fatal("expected halted checkpoint")
	}
	return cp
}
