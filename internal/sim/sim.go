// Package sim assembles complete simulated systems — single-core or CMP with
// a shared LLC and DRAM channel — from the substrate packages, and provides
// the fast-forward/warmup/measure loop every experiment uses.
package sim

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/isb"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/sms"
	"repro/internal/stems"
	"repro/internal/workload"
)

// PrefetcherKind names the prefetcher configurations the paper evaluates.
type PrefetcherKind string

const (
	PFNone    PrefetcherKind = "none"
	PFStride  PrefetcherKind = "stride"
	PFSMS     PrefetcherKind = "sms"
	PFBFetch  PrefetcherKind = "bfetch"
	PFPerfect PrefetcherKind = "perfect" // oracle: every L1D read hits
	PFNextN   PrefetcherKind = "nextn"
	PFCustom  PrefetcherKind = "custom" // built by Config.Factory
	PFISB     PrefetcherKind = "isb"    // heavy-weight comparator (extension)
	PFSTeMS   PrefetcherKind = "stems"  // heavy-weight comparator (extension)
)

// Kinds returns the prefetchers in the order the paper's figures use.
var Kinds = []PrefetcherKind{PFNone, PFStride, PFSMS, PFBFetch}

// Config describes one system under test. The zero value is not valid; use
// Default and adjust.
type Config struct {
	Cores int

	CPU        cpu.Config
	Hier       cache.HierarchyConfig
	LLCPerCore int // bytes of shared LLC per core (Table II: 2 MB/core)
	LLCWays    int
	LLCLatency uint64

	Branch     branch.Config
	Confidence branch.ConfidenceConfig

	// DRAMCyclesPerFill is the shared channel's occupancy per 64-byte
	// transfer; Table II's 12.8 GB/s at 3.2 GHz is 16.
	DRAMCyclesPerFill uint64

	// Scale-out memory-system knobs (all zero in the Table II baseline,
	// reproducing the original uncontended models exactly).
	//
	// LLCBanks > 1 address-interleaves the shared LLC into that many banks
	// (power of two), each holding its port for LLCBankBusy cycles per
	// access and capping outstanding misses at LLCMSHRs (0 = unbounded).
	LLCBanks    int
	LLCBankBusy uint64
	LLCMSHRs    int
	// DRAMChannels > 1 splits DRAM bandwidth across address-interleaved
	// channels (power of two), each limited to DRAMChanInflight concurrent
	// transfers (0 = unbounded).
	DRAMChannels     int
	DRAMChanInflight int

	Prefetcher PrefetcherKind
	BFetch     core.Config // used when Prefetcher == PFBFetch
	SMS        sms.Config  // used when Prefetcher == PFSMS
	Stride     prefetch.StrideConfig
	NextN      int
	ISB        isb.Config   // used when Prefetcher == PFISB
	STeMS      stems.Config // used when Prefetcher == PFSTeMS

	// Factory builds the prefetcher when Prefetcher == PFCustom; it is
	// called once per core with that core's branch predictor and
	// confidence estimator (which B-Fetch-style engines may share).
	Factory func(bp *branch.Predictor, conf *branch.Confidence) prefetch.Prefetcher

	// TSInterval > 0 attaches a deterministic interval sampler: the metrics
	// registry's scalars are recorded every TSInterval cycles into a bounded
	// ring of at most TSMaxRows rows (0 picks the obs default) that doubles
	// its spacing when full. The emitted series is bit-identical across
	// loop modes and worker counts.
	TSInterval uint64
	TSMaxRows  int
}

// Default returns the Table II baseline with the given prefetcher.
func Default(pf PrefetcherKind) Config {
	return Config{
		Cores:      1,
		CPU:        cpu.DefaultConfig(),
		Hier:       cache.DefaultHierarchyConfig(),
		LLCPerCore: 2 << 20,
		LLCWays:    16,
		LLCLatency: 20,
		Branch:     branch.DefaultConfig(),
		Confidence: branch.DefaultConfidenceConfig(),

		DRAMCyclesPerFill: 16,
		Prefetcher:        pf,
		BFetch:            core.DefaultConfig(),
		SMS:               sms.DefaultConfig(),
		Stride:            prefetch.DefaultStrideConfig(),
		NextN:             4,
		ISB:               isb.DefaultConfig(),
		STeMS:             stems.DefaultConfig(),
	}
}

// DefaultScale returns the scale-out configuration for a CMP of the given
// size: the Table II baseline plus a banked LLC and a channeled DRAM whose
// capacities grow with the core count, so big mixes contend for realistic
// shared resources instead of an infinitely-ported LLC and a single
// serializing DRAM channel.
func DefaultScale(pf PrefetcherKind, cores int) Config {
	cfg := Default(pf)
	cfg.Cores = cores
	banks, channels := 4, 2
	switch {
	case cores > 16:
		banks, channels = 16, 8
	case cores > 4:
		banks, channels = 8, 4
	}
	cfg.LLCBanks = banks
	cfg.LLCBankBusy = 2
	cfg.LLCMSHRs = 16
	cfg.DRAMChannels = channels
	cfg.DRAMChanInflight = 8
	return cfg
}

// LoopMode selects how System.Run advances the shared clock.
type LoopMode uint8

const (
	// LoopAuto defers to DefaultLoop.
	LoopAuto LoopMode = iota
	// LoopEvent advances the clock to the earliest next event across cores,
	// skipping cycles in which no core would do any work. Produces
	// bit-identical statistics to LoopNaive (see TestLoopEquivalence).
	LoopEvent
	// LoopNaive ticks every core every cycle — the reference loop, kept as
	// an escape hatch and as the equivalence-test oracle.
	LoopNaive
)

// DefaultLoop is the clock strategy used when a System's Loop is LoopAuto.
var DefaultLoop = LoopEvent

// ParseLoopMode maps a -simloop flag value to a LoopMode.
func ParseLoopMode(s string) (LoopMode, error) {
	switch s {
	case "", "auto":
		return LoopAuto, nil
	case "event":
		return LoopEvent, nil
	case "naive":
		return LoopNaive, nil
	}
	return LoopAuto, fmt.Errorf("sim: unknown loop mode %q (want auto, event, or naive)", s)
}

// String implements fmt.Stringer for flag help and logs.
func (m LoopMode) String() string {
	switch m {
	case LoopEvent:
		return "event"
	case LoopNaive:
		return "naive"
	default:
		return "auto"
	}
}

// System is an assembled simulation: cores with private hierarchies over a
// shared LLC and DRAM channel.
type System struct {
	Cfg   Config //bfetch:noreset configuration
	Cores []*cpu.Core
	PFs   []prefetch.Prefetcher
	LLC   *cache.Cache
	DRAM  *cache.DRAM

	// Ports hold each core's deferred gateway to the shared levels; the run
	// loops service them in core-index order at the end of every cycle in
	// which the owning core ticked (cache.SharedPort documents why that is
	// bit-identical to synchronous access).
	Ports []*cache.SharedPort //bfetch:noreset wiring; drained every cycle

	// Loop selects the clock-advance strategy; LoopAuto means DefaultLoop.
	Loop LoopMode //bfetch:noreset configuration

	// CoreWorkers > 1 enables bulk-synchronous parallel stepping: each
	// cycle's core-local work runs on that many workers (see corePool).
	// Results are byte-identical at any worker count. Ignored while a
	// lifecycle trace is attached (the trace ring is shared across cores).
	CoreWorkers int //bfetch:noreset configuration

	// Reg is the system's unified metrics registry: every component —
	// cores, caches, DRAM, prefetch engines, lifecycle classifiers —
	// registers into it at assembly, and Snapshot/ResetStats cover it.
	Reg *obs.Registry
	// LCs holds one prefetch lifecycle classifier per core, attached to
	// that core's L1D.
	LCs []*obs.Lifecycle //bfetch:noreset counters live in Reg (reset there); the pollution victim table survives by design, like the cache contents it mirrors

	tr *obs.Trace // optional sampled lifecycle trace, attached via SetTrace

	// ts is the interval time-series sampler (Config.TSInterval > 0); both
	// run loops sample every boundary exactly once, so the recorded rows are
	// independent of the loop and worker-count choice.
	ts *obs.TimeSeries //bfetch:noreset restarted explicitly with the window (Restart)

	clock     uint64 //bfetch:noreset global simulation clock, monotonic across the reset
	statsBase uint64 // clock value at the last ResetStats

	// Run-loop scratch state, reseeded at every Run call.
	sched         evtHeap   //bfetch:noreset scheduler state, reseeded by Run
	nextUncounted []uint64  //bfetch:noreset scheduler state, reseeded by Run
	due           []int32   //bfetch:noreset scratch
	pool          *corePool //bfetch:noreset live only inside Run
}

// boot is one core's starting state: a program, its memory image, and —
// when resuming from a fast-forward — the architectural state to install.
type boot struct {
	prog *isa.Program
	mem  *mem.Memory
	arch *emu.Arch // nil: start at the program entry with zeroed registers
}

// New builds a system running the given applications, one per core, each
// starting at its program entry.
func New(cfg Config, apps []workload.Workload) (*System, error) {
	if cfg.Cores != len(apps) {
		return nil, fmt.Errorf("sim: %d cores but %d applications", cfg.Cores, len(apps))
	}
	boots := make([]boot, len(apps))
	for i, app := range apps {
		prog, image := app.Build()
		boots[i] = boot{prog: prog, mem: image}
	}
	return assemble(cfg, boots)
}

// NewFromCheckpoints builds a system with each core resuming from a
// fast-forward checkpoint (one per core). Restores are copy-on-write, so
// systems sharing checkpoints share their images' footprint; only the
// architectural state is installed — caches, predictors and prefetchers
// start cold, to be warmed by the run protocol.
func NewFromCheckpoints(cfg Config, cps []*ckpt.Checkpoint) (*System, error) {
	if cfg.Cores != len(cps) {
		return nil, fmt.Errorf("sim: %d cores but %d checkpoints", cfg.Cores, len(cps))
	}
	boots := make([]boot, len(cps))
	for i, cp := range cps {
		prog, image, arch := cp.Restore()
		if arch.Halted {
			return nil, fmt.Errorf("sim: checkpoint of %s is halted (%d of %d insts retired): nothing left to measure",
				cp.Workload, arch.Retired, cp.FFInsts)
		}
		a := arch
		boots[i] = boot{prog: prog, mem: image, arch: &a}
	}
	return assemble(cfg, boots)
}

// assemble wires cores, hierarchies, prefetchers, shared LLC and DRAM.
func assemble(cfg Config, boots []boot) (*System, error) {
	dram := cache.NewDRAM()
	if cfg.DRAMCyclesPerFill > 0 {
		dram.CyclesPerFill = cfg.DRAMCyclesPerFill
	}
	if err := dram.SetChannels(cfg.DRAMChannels, cfg.DRAMChanInflight); err != nil {
		return nil, err
	}
	if cfg.LLCBanks > 1 && cfg.LLCBanks&(cfg.LLCBanks-1) != 0 {
		return nil, fmt.Errorf("sim: LLCBanks must be a power of two, got %d", cfg.LLCBanks)
	}
	llc := cache.New(cache.Config{
		Name:     "L3",
		Bytes:    cfg.LLCPerCore * cfg.Cores,
		Ways:     cfg.LLCWays,
		Latency:  cfg.LLCLatency,
		Banks:    cfg.LLCBanks,
		BankBusy: cfg.LLCBankBusy,
		MSHRs:    cfg.LLCMSHRs,
	}, dram)

	reg := obs.NewRegistry()
	llc.RegisterObs(reg, "llc.")
	dram.RegisterObs(reg, "dram.")

	s := &System{Cfg: cfg, LLC: llc, DRAM: dram, Reg: reg}
	for i, bt := range boots {
		prog, image := bt.prog, bt.mem
		port := cache.NewSharedPort(llc)
		hier := cache.NewHierarchyPorted(cfg.Hier, port, i)
		s.Ports = append(s.Ports, port)
		bp := branch.New(cfg.Branch)
		conf := branch.NewConfidence(cfg.Confidence)

		var pf prefetch.Prefetcher
		switch cfg.Prefetcher {
		case PFNone, PFPerfect:
			pf = prefetch.None{}
		case PFStride:
			pf = prefetch.NewStride(cfg.Stride)
		case PFNextN:
			pf = prefetch.NewNextN(cfg.NextN)
		case PFSMS:
			pf = sms.New(cfg.SMS)
		case PFISB:
			pf = isb.New(cfg.ISB)
		case PFSTeMS:
			pf = stems.New(cfg.STeMS)
		case PFBFetch:
			pf = core.New(cfg.BFetch, bp, conf)
		case PFCustom:
			if cfg.Factory == nil {
				return nil, fmt.Errorf("sim: custom prefetcher without a Factory")
			}
			pf = cfg.Factory(bp, conf)
		default:
			return nil, fmt.Errorf("sim: unknown prefetcher %q", cfg.Prefetcher)
		}
		if cfg.Prefetcher == PFPerfect {
			hier.L1D.Perfect = true
		}
		hier.L1D.SetFeedback(feedbackAdapter{pf})

		c := cpu.New(cfg.CPU, prog, image, hier, bp, conf, pf)
		if bt.arch != nil {
			c.BootArch(*bt.arch)
		}

		// Register the core's components and attach its lifecycle
		// classifier. Every engine exports under the same "pf." namespace,
		// so tables and JSON read one set of names regardless of engine.
		prefix := fmt.Sprintf("c%d.", i)
		c.RegisterObs(reg, prefix+"cpu.")
		hier.L1D.RegisterObs(reg, prefix+"l1d.")
		hier.L2.RegisterObs(reg, prefix+"l2.")
		if r, ok := pf.(obs.Registrant); ok {
			r.RegisterObs(reg, prefix+"pf.")
		}
		lc := obs.NewLifecycle(reg, prefix+"pf.")
		hier.L1D.SetLifecycle(lc)
		s.LCs = append(s.LCs, lc)

		s.Cores = append(s.Cores, c)
		s.PFs = append(s.PFs, pf)
	}
	if cfg.TSInterval > 0 {
		// Seals the registry: every component above has registered by now.
		s.ts = obs.NewTimeSeries(reg, cfg.TSInterval, cfg.TSMaxRows)
	}
	return s, nil
}

// SetTrace attaches a sampled lifecycle event trace to every core's
// classifier (nil detaches). The trace is reset alongside the counters at
// ResetStats so it covers the measurement window only.
func (s *System) SetTrace(tr *obs.Trace) {
	s.tr = tr
	for _, lc := range s.LCs {
		lc.SetTrace(tr)
	}
}

// Trace returns the attached lifecycle trace, if any.
func (s *System) Trace() *obs.Trace { return s.tr }

// feedbackAdapter routes L1D prefetch feedback into the prefetcher.
type feedbackAdapter struct{ pf prefetch.Prefetcher }

func (f feedbackAdapter) PrefetchUseful(loadPC, blockAddr uint64) {
	f.pf.PrefetchUseful(loadPC, blockAddr)
}
func (f feedbackAdapter) PrefetchUseless(loadPC, blockAddr uint64) {
	f.pf.PrefetchUseless(loadPC, blockAddr)
}

// Run advances the shared clock until every core has committed instsPerCore
// instructions (or halted), erroring out at the cycle bound or on an
// architectural fault. Cores that reach their budget stop cycling, matching
// the paper's run-until-all-done methodology.
//
// The clock strategy is governed by Loop (default: event-driven skipping)
// and the stepping by CoreWorkers; every combination produces bit-identical
// statistics and errors.
func (s *System) Run(instsPerCore, maxCycles uint64) error {
	target := make([]uint64, len(s.Cores))
	for i, c := range s.Cores {
		target[i] = c.Stats.Committed + instsPerCore
	}
	limit := s.clock + maxCycles
	if s.CoreWorkers > 1 && len(s.Cores) > 1 && s.tr == nil {
		workers := s.CoreWorkers
		if workers > len(s.Cores) {
			workers = len(s.Cores)
		}
		s.pool = newCorePool(s.Cores, workers)
		defer func() {
			s.pool.stop()
			s.pool = nil
		}()
	}
	mode := s.Loop
	if mode == LoopAuto {
		mode = DefaultLoop
	}
	if mode == LoopNaive {
		return s.runNaive(target, limit, instsPerCore, maxCycles)
	}
	return s.runEvent(target, limit, instsPerCore, maxCycles)
}

// tickCores runs Cycle(now) on every core in due — serially in index order,
// or on the worker pool when one is attached. The two are interchangeable:
// during the tick cores touch private state only (shared-level traffic
// queues on their ports), so execution order within the cycle is
// unobservable.
func (s *System) tickCores(due []int32, now uint64) {
	if s.pool != nil && len(due) > 1 {
		s.pool.run(due, now)
		return
	}
	for _, i := range due {
		s.Cores[i].Cycle(now)
	}
}

// servicePorts replays the cycle's queued shared-level traffic in core-index
// order (due is always ascending) — the deterministic tie-break for LLC bank
// and DRAM channel contention within a cycle.
func (s *System) servicePorts(due []int32) {
	for _, i := range due {
		s.Ports[i].Service()
	}
}

// boundErr reports a run that hit the cycle bound, naming the core furthest
// from its commit target so heterogeneous mixes point at the actual
// straggler. Both loops return it under identical conditions with identical
// text.
func (s *System) boundErr(target []uint64, instsPerCore, maxCycles uint64) error {
	lag, lagShort := -1, uint64(0)
	unfinished := 0
	for i, c := range s.Cores {
		if c.Stats.Committed >= target[i] {
			continue
		}
		unfinished++
		if short := target[i] - c.Stats.Committed; short > lagShort {
			lag, lagShort = i, short
		}
	}
	if lag < 0 {
		// Boundary case: the final cores finished on the very cycle the
		// bound fell on; the naive loop has always reported this as a bound
		// error, so both loops still do.
		return fmt.Errorf("sim: exceeded %d cycles before reaching %d instructions/core (all cores reached their targets at the bound)",
			maxCycles, instsPerCore)
	}
	return fmt.Errorf("sim: exceeded %d cycles before reaching %d instructions/core (%d of %d cores unfinished; core %d lags furthest at %d of %d insts)",
		maxCycles, instsPerCore, unfinished, len(s.Cores), lag, s.Cores[lag].Stats.Committed, target[lag])
}

// runNaive is the reference loop: every still-running core is ticked every
// cycle, whether or not it can make progress, and the cycle's shared-memory
// traffic is serviced at its end in core-index order.
func (s *System) runNaive(target []uint64, limit, instsPerCore, maxCycles uint64) error {
	for {
		// Interval sampling: a boundary is recorded when the clock reaches
		// it, before the cycle is processed — every running core's counters
		// then reflect exactly the cycles below the boundary. (NextAt on an
		// absent sampler never matches.)
		for s.ts.NextAt() <= s.clock {
			s.ts.Sample()
		}
		due := s.due[:0]
		for i, c := range s.Cores {
			if c.Halted() {
				if err := c.Err(); err != nil {
					return fmt.Errorf("sim: core %d: %w", i, err)
				}
				continue
			}
			if c.Stats.Committed >= target[i] {
				continue
			}
			due = append(due, int32(i))
		}
		s.due = due
		if len(due) == 0 {
			return nil
		}
		s.tickCores(due, s.clock)
		s.servicePorts(due)
		s.clock++
		if s.clock >= limit {
			return s.boundErr(target, instsPerCore, maxCycles)
		}
	}
}

// runEvent advances the clock directly to the earliest cycle at which any
// core has scheduled work, crediting skipped cycles to each still-running
// core's counter — exactly what the naive loop's empty ticks would have
// done. Per-core next-event cycles are cached in an indexed min-heap
// (evtHeap) and recomputed only for cores that actually ticked, so one
// event costs O(ticked cores · log N) instead of the O(N) rescan the
// pre-indexed loop paid. Idle crediting is lazy: each core records the
// first cycle not yet reflected in its counter (nextUncounted) and absorbs
// the gap the next time it ticks, or in one flush when the run ends early.
func (s *System) runEvent(target []uint64, limit, instsPerCore, maxCycles uint64) error {
	s.sched.reset(len(s.Cores))
	if cap(s.nextUncounted) < len(s.Cores) {
		s.nextUncounted = make([]uint64, len(s.Cores))
	}
	s.nextUncounted = s.nextUncounted[:len(s.Cores)]
	for i, c := range s.Cores {
		if c.Halted() {
			if err := c.Err(); err != nil {
				return fmt.Errorf("sim: core %d: %w", i, err)
			}
			continue
		}
		if c.Stats.Committed >= target[i] {
			continue
		}
		s.nextUncounted[i] = s.clock
		s.sched.push(int32(i), s.clock)
	}
	for {
		t, ok := s.sched.min()
		if !ok {
			// Every core finished or halted cleanly; the naive loop's final
			// iteration samples boundaries up to its last clock before its
			// due list comes up empty.
			s.sampleTS(s.clock, target)
			return nil
		}
		if t > s.clock {
			// Idle gap (t == NoEvent: the remaining cores are deadlocked
			// short of a halt — the naive loop would spin to the bound).
			if t >= limit {
				// The naive loop's last iteration starts at limit-1; it
				// samples that boundary, then ticks past the bound.
				if limit > 0 {
					s.sampleTS(limit-1, target)
				}
				s.flushIdle(limit, target)
				s.clock = limit
				return s.boundErr(target, instsPerCore, maxCycles)
			}
			s.clock = t
		}
		now := s.clock
		// Boundaries at or below now are sampled before the cycle is
		// processed, exactly like the naive loop top; sampleTS flushes idle
		// credit up to each boundary first, so the rows match bit for bit.
		s.sampleTS(now, target)
		due := s.due[:0]
		for {
			k, ok := s.sched.min()
			if !ok || k != now {
				break
			}
			due = append(due, s.sched.popMin())
		}
		s.due = due
		for _, i := range due {
			if nu := s.nextUncounted[i]; nu < now {
				s.Cores[i].AddIdleCycles(nu, now-nu)
			}
			s.nextUncounted[i] = now + 1
		}
		s.tickCores(due, now)
		s.servicePorts(due)
		faulted := -1
		for _, i := range due {
			c := s.Cores[i]
			if c.Halted() {
				if c.Err() != nil && faulted < 0 {
					faulted = int(i)
				}
				continue
			}
			if c.Stats.Committed >= target[i] {
				continue
			}
			ne := c.NextEvent(now)
			if ne <= now {
				ne = now + 1
			}
			s.sched.push(i, ne)
		}
		s.clock = now + 1
		if s.clock >= limit {
			s.flushIdle(limit, target)
			return s.boundErr(target, instsPerCore, maxCycles)
		}
		if faulted >= 0 {
			// The naive loop discovers the fault at its next loop top, after
			// sampling any boundary the post-fault clock has reached.
			s.sampleTS(s.clock, target)
			s.flushIdle(s.clock, target)
			return fmt.Errorf("sim: core %d: %w", faulted, s.Cores[faulted].Err())
		}
	}
}

// flushIdle credits every still-running core with the idle cycles it has
// not yet absorbed, up to (but excluding) cycle upTo: what the naive loop's
// remaining empty ticks would have counted before the run ended.
func (s *System) flushIdle(upTo uint64, target []uint64) {
	for i, c := range s.Cores {
		if c.Halted() || c.Stats.Committed >= target[i] {
			continue
		}
		if nu := s.nextUncounted[i]; nu < upTo {
			c.AddIdleCycles(nu, upTo-nu)
			s.nextUncounted[i] = upTo
		}
	}
}

// sampleTS records every unsampled boundary at or below now, flushing idle
// credit up to each boundary first so the recorded counters equal what the
// naive loop would show at its corresponding loop top. Splitting a core's
// idle gap at a boundary leaves its totals unchanged (the gap charges are
// additive over adjacent ranges), so results remain loop-independent.
func (s *System) sampleTS(now uint64, target []uint64) {
	for b := s.ts.NextAt(); b <= now; b = s.ts.NextAt() {
		s.flushIdle(b, target)
		s.ts.Sample()
	}
}

// ResetStats zeroes all measurement counters (after warmup) without touching
// learned microarchitectural state. This includes each prefetcher's internal
// counters (training/coverage stats), so post-warmup snapshots describe the
// measurement window only.
func (s *System) ResetStats() {
	for _, c := range s.Cores {
		c.Stats = cpu.Stats{}
		c.Hierarchy().L1D.ResetStats()
		c.Hierarchy().L2.ResetStats()
		bp := c.Predictor()
		bp.Lookups, bp.Mispredicts = 0, 0
	}
	for _, pf := range s.PFs {
		pf.ResetStats()
	}
	s.LLC.ResetStats()
	s.DRAM.ResetStats()
	s.Reg.Reset()
	if s.tr != nil {
		s.tr.Reset()
	}
	// Prefetched blocks resident but untouched at the window boundary will
	// emit their useful/useless event inside the new window; credit their
	// issue to it too, so windowed lifecycle counts stay internally
	// consistent (useful+useless <= issued).
	for i, c := range s.Cores {
		s.LCs[i].CarryIn(c.Hierarchy().L1D.PendingPrefetched())
	}
	if s.ts != nil {
		s.ts.Restart(s.clock)
	}
	s.statsBase = s.clock
}

// Result summarises a measured run.
type Result struct {
	IPC    []float64
	Core   []cpu.Stats
	L1D    []cache.Stats
	LLC    cache.Stats
	DRAM   cache.DRAM
	Cycles uint64

	// Lifecycle is the per-core prefetch lifecycle breakdown and Metrics
	// the full registry snapshot — both covered by the same bit-identity
	// guarantees (naive vs event loop, -j 1 vs -j N) as every other field,
	// since results are compared with reflect.DeepEqual in those tests.
	Lifecycle []obs.LifecycleStats
	Metrics   obs.Snapshot

	// TS is the measured window's interval time series (nil unless
	// Config.TSInterval was set), under the same bit-identity guarantees.
	TS *obs.TimeSeriesData
}

// Snapshot collects the current counters. Cycles is relative to the last
// ResetStats, matching every other counter's measurement window.
func (s *System) Snapshot() Result {
	res := Result{LLC: s.LLC.Stats, DRAM: *s.DRAM, Cycles: s.clock - s.statsBase}
	for _, c := range s.Cores {
		res.IPC = append(res.IPC, c.Stats.IPC())
		res.Core = append(res.Core, c.Stats)
		res.L1D = append(res.L1D, c.Hierarchy().L1D.Stats)
	}
	for _, lc := range s.LCs {
		res.Lifecycle = append(res.Lifecycle, lc.Stats())
	}
	res.Metrics = s.Reg.Snapshot()
	res.TS = s.ts.Data()
	return res
}

// RunOpts sets the measurement protocol: fast-forward the architectural
// state functionally, warm up microarchitectural state on the cycle core,
// reset counters, then measure.
type RunOpts struct {
	// FastForwardInsts is executed on the functional emulator before the
	// cycle-accurate core boots — the scaled analogue of the paper's 10 B
	// instruction fast-forward (§V-A). Zero starts the cycle core at the
	// program entry. The fast-forwarded prefix leaves every
	// microarchitectural structure cold; only architectural state
	// (registers, PC, memory) carries over. The runner's checkpoint cache
	// (internal/runner) emulates each (workload, FastForwardInsts) prefix
	// once per process and restores copy-on-write; running through sim.Run
	// directly emulates it inline, with bit-identical results.
	FastForwardInsts uint64
	WarmupInsts      uint64
	MeasureInsts     uint64
	// CyclesPerInst bounds runtime: the run aborts after
	// (Warmup+Measure)×CyclesPerInst cycles. Zero means 1000.
	CyclesPerInst uint64
	// Loop selects the clock-advance strategy (LoopAuto → DefaultLoop).
	Loop LoopMode
	// CoreWorkers > 1 steps each cycle's cores on a worker pool
	// (bulk-synchronous parallel mode); results are byte-identical at any
	// value, so it is purely a wall-clock knob — and is therefore excluded
	// from the runner's result-cache fingerprint.
	CoreWorkers int
}

// DefaultRunOpts is the measurement protocol used by the experiments, a
// scaled-down analogue of the paper's 10 B fast-forward / 1 B warmup / 1 B
// measure (§V-A): the fast-forward is 10× the warmup, as in the paper, and
// runs at functional-emulation cost.
func DefaultRunOpts() RunOpts {
	return RunOpts{FastForwardInsts: 1_000_000, WarmupInsts: 100_000, MeasureInsts: 300_000}
}

// Run builds a system for the named applications and executes the
// fast-forward/warmup/measure protocol, returning the measured counters.
// The fast-forward, if any, is emulated inline on each core's freshly built
// image; callers running many points over the same workloads should go
// through internal/runner, whose checkpoint cache emulates each prefix once
// and restores copy-on-write (bit-identically to this inline path).
func Run(cfg Config, appNames []string, opts RunOpts) (Result, error) {
	s, err := NewForRun(cfg, appNames, opts)
	if err != nil {
		return Result{}, err
	}
	return runProtocol(s, opts)
}

// RunTraced is Run with a sampled prefetch lifecycle trace attached for the
// measurement window; the counters are bit-identical to Run (the tracer
// only observes).
func RunTraced(cfg Config, appNames []string, opts RunOpts, tr *obs.Trace) (Result, error) {
	s, err := NewForRun(cfg, appNames, opts)
	if err != nil {
		return Result{}, err
	}
	s.SetTrace(tr)
	return runProtocol(s, opts)
}

// NewForRun assembles the system Run would execute the protocol on: the
// named applications, fast-forwarded inline when the protocol asks for it.
func NewForRun(cfg Config, appNames []string, opts RunOpts) (*System, error) {
	apps := make([]workload.Workload, len(appNames))
	for i, name := range appNames {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		apps[i] = w
	}
	cfg.Cores = len(apps)

	if opts.FastForwardInsts == 0 {
		return New(cfg, apps)
	}
	boots := make([]boot, len(apps))
	for i, app := range apps {
		prog, image := app.Build()
		e := emu.New(prog, image)
		if _, ferr := e.Run(opts.FastForwardInsts); ferr != nil {
			return nil, fmt.Errorf("sim: fast-forward of %s: %w", appNames[i], ferr)
		}
		if e.Halted {
			return nil, fmt.Errorf("sim: fast-forward of %s halted after %d of %d insts: nothing left to measure",
				appNames[i], e.Retired, opts.FastForwardInsts)
		}
		a := e.Arch()
		boots[i] = boot{prog: prog, mem: image, arch: &a}
	}
	return assemble(cfg, boots)
}

// RunCheckpointed executes the warmup+measure protocol from pre-built
// fast-forward checkpoints, one per core. Each checkpoint's FFInsts must
// match opts.FastForwardInsts — the checkpoints ARE the fast-forward — so a
// result here is bit-identical to Run with the same options.
func RunCheckpointed(cfg Config, cps []*ckpt.Checkpoint, opts RunOpts) (Result, error) {
	for _, cp := range cps {
		if cp.FFInsts != opts.FastForwardInsts {
			return Result{}, fmt.Errorf("sim: checkpoint of %s fast-forwarded %d insts but protocol wants %d",
				cp.Workload, cp.FFInsts, opts.FastForwardInsts)
		}
	}
	cfg.Cores = len(cps)
	s, err := NewFromCheckpoints(cfg, cps)
	if err != nil {
		return Result{}, err
	}
	return runProtocol(s, opts)
}

// runProtocol runs warmup (cycle-accurate, counters discarded) then the
// measured window on an assembled system.
func runProtocol(s *System, opts RunOpts) (Result, error) {
	s.Loop = opts.Loop
	s.CoreWorkers = opts.CoreWorkers
	cpi := opts.CyclesPerInst
	if cpi == 0 {
		cpi = 1000
	}
	if opts.WarmupInsts > 0 {
		if err := s.Run(opts.WarmupInsts, opts.WarmupInsts*cpi); err != nil {
			return Result{}, err
		}
		s.ResetStats()
	}
	if err := s.Run(opts.MeasureInsts, opts.MeasureInsts*cpi); err != nil {
		return Result{}, err
	}
	return s.Snapshot(), nil
}

// RunSolo measures one application alone on a single-core configuration.
func RunSolo(cfg Config, appName string, opts RunOpts) (Result, error) {
	cfg.Cores = 1
	return Run(cfg, []string{appName}, opts)
}
