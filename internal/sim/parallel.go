package sim

import (
	"sync"

	"repro/internal/cpu"
)

// corePool runs one cycle's core-local work on a fixed set of workers:
// bulk-synchronous parallel stepping. Inside a cycle, cores are fully
// independent — every access bound for the shared LLC/DRAM is queued on the
// core's SharedPort rather than serviced — so the only cross-core
// interactions happen after the barrier, when the simulator services the
// ports in core-index order. Worker scheduling therefore cannot influence
// any simulated outcome: it reorders core *execution* within the cycle, but
// never the order shared state is touched in. That is the whole determinism
// argument, and it is why results are byte-identical at any worker count.
//
// The partition is static (worker w ticks due[w], due[w+W], ...): with no
// sharing inside the cycle there is nothing to steal, and a static stride
// keeps the per-cycle overhead to one token send and one WaitGroup wait per
// worker.
type corePool struct {
	cores   []*cpu.Core
	workers int

	due []int32 // written by run before the token sends, read by workers
	now uint64

	// One token channel per worker: worker w only ever receives from
	// start[w], so a worker that finishes its slice early can never steal
	// the token addressed to a slower sibling and tick its own slice twice
	// in one phase (which would skip the sibling's cores that cycle — not a
	// data race, but a nondeterministic partition).
	start []chan struct{}
	wg    sync.WaitGroup
}

// newCorePool spawns the workers. Callers must stop() the pool when the run
// finishes.
func newCorePool(cores []*cpu.Core, workers int) *corePool {
	p := &corePool{cores: cores, workers: workers, start: make([]chan struct{}, workers)}
	for w := 0; w < workers; w++ {
		p.start[w] = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

func (p *corePool) worker(w int) {
	for range p.start[w] {
		due, now := p.due, p.now
		for k := w; k < len(due); k += p.workers {
			p.cores[due[k]].Cycle(now)
		}
		p.wg.Done()
	}
}

// run ticks every core in due at cycle now and blocks until all are done.
// The channel sends publish p.due/p.now to the workers; wg.Wait orders their
// writes (port queues, core state) before the caller's service phase.
func (p *corePool) run(due []int32, now uint64) {
	p.due, p.now = due, now
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.start[w] <- struct{}{}
	}
	p.wg.Wait()
}

func (p *corePool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}
