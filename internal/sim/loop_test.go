package sim

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isb"
	"repro/internal/sms"
	"repro/internal/stems"
	"repro/internal/workload"
)

// eqOpts is small enough to run every prefetcher twice but long enough to
// exercise warmup, ResetStats, squashes, and DRAM contention.
var eqOpts = RunOpts{WarmupInsts: 10_000, MeasureInsts: 40_000}

func runWithLoop(t *testing.T, cfg Config, apps []string, opts RunOpts, mode LoopMode) (Result, error) {
	t.Helper()
	opts.Loop = mode
	return Run(cfg, apps, opts)
}

// TestLoopEquivalence is the event-driven clock's contract: for every
// prefetcher kind — the paper's four, both heavy-weight extensions, and a
// multi-programmed CMP mix — the skipping loop must reproduce the naive
// loop's Result snapshot bit for bit.
func TestLoopEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		apps []string
	}{
		{"none", Default(PFNone), []string{"libquantum"}},
		{"stride", Default(PFStride), []string{"libquantum"}},
		{"sms", Default(PFSMS), []string{"milc"}},
		{"bfetch", Default(PFBFetch), []string{"libquantum"}},
		{"isb", Default(PFISB), []string{"mcf"}},
		{"stems", Default(PFSTeMS), []string{"milc"}},
		{"cmp-mix", Default(PFBFetch), []string{"libquantum", "mcf", "milc", "gamess"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			naive, errN := runWithLoop(t, tc.cfg, tc.apps, eqOpts, LoopNaive)
			event, errE := runWithLoop(t, tc.cfg, tc.apps, eqOpts, LoopEvent)
			if (errN == nil) != (errE == nil) {
				t.Fatalf("error mismatch: naive %v, event %v", errN, errE)
			}
			if errN != nil {
				t.Fatalf("run failed: %v", errN)
			}
			if !reflect.DeepEqual(naive, event) {
				t.Errorf("snapshots diverge\nnaive: %+v\nevent: %+v", naive, event)
			}
		})
	}
}

// TestLoopEquivalenceOnError checks the cycle-bound path: when a run cannot
// reach its instruction budget, both loops must fail with the same error and
// identical partial counters.
func TestLoopEquivalenceOnError(t *testing.T) {
	run := func(mode LoopMode) (Result, error) {
		s, err := buildSystem(Default(PFNone), []string{"libquantum"})
		if err != nil {
			t.Fatal(err)
		}
		s.Loop = mode
		err = s.Run(1<<40, 50_000) // unreachable budget: must hit the bound
		return s.Snapshot(), err
	}

	naive, errN := run(LoopNaive)
	event, errE := run(LoopEvent)
	if errN == nil || errE == nil {
		t.Fatalf("expected both loops to hit the cycle bound (naive %v, event %v)", errN, errE)
	}
	if errN.Error() != errE.Error() {
		t.Errorf("error text diverges:\nnaive: %v\nevent: %v", errN, errE)
	}
	if !reflect.DeepEqual(naive, event) {
		t.Errorf("partial snapshots diverge\nnaive: %+v\nevent: %+v", naive, event)
	}
}

func buildSystem(cfg Config, appNames []string) (*System, error) {
	apps := make([]workload.Workload, len(appNames))
	for i, name := range appNames {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		apps[i] = w
	}
	cfg.Cores = len(apps)
	return New(cfg, apps)
}

// TestResetStatsZeroesEverything audits the warmup/measure boundary: after
// ResetStats, a Snapshot must carry no trace of the warmup phase — core,
// cache, DRAM, clock, and prefetcher-internal counters included.
func TestResetStatsZeroesEverything(t *testing.T) {
	kinds := []PrefetcherKind{PFNone, PFStride, PFSMS, PFBFetch, PFISB, PFSTeMS}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			s, err := buildSystem(Default(kind), []string{"libquantum"})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(20_000, 20_000_000); err != nil {
				t.Fatal(err)
			}
			s.ResetStats()
			res := s.Snapshot()

			if res.Cycles != 0 {
				t.Errorf("Cycles = %d after reset", res.Cycles)
			}
			if res.Core[0] != (cpu.Stats{}) {
				t.Errorf("core stats survive reset: %+v", res.Core[0])
			}
			if res.L1D[0] != (cache.Stats{}) {
				t.Errorf("L1D stats survive reset: %+v", res.L1D[0])
			}
			if res.LLC != (cache.Stats{}) {
				t.Errorf("LLC stats survive reset: %+v", res.LLC)
			}
			d := res.DRAM
			if d.DemandFills != 0 || d.PrefetchFills != 0 || d.Writebacks != 0 || d.StallCycles != 0 {
				t.Errorf("DRAM traffic survives reset: %+v", d)
			}
			if bp := s.Cores[0].Predictor(); bp.Lookups != 0 || bp.Mispredicts != 0 {
				t.Errorf("predictor counters survive reset: %d/%d", bp.Lookups, bp.Mispredicts)
			}

			// Prefetcher-internal counters must reset too — each kind keeps
			// its own training/coverage statistics.
			switch pf := s.PFs[0].(type) {
			case *core.BFetch:
				if pf.Stats != (core.Stats{}) {
					t.Errorf("bfetch stats survive reset: %+v", pf.Stats)
				}
			case *sms.SMS:
				if pf.Generations != 0 || pf.PHTHits != 0 {
					t.Errorf("sms stats survive reset: %d/%d", pf.Generations, pf.PHTHits)
				}
			case *isb.ISB:
				if pf.TrainedPairs != 0 || pf.MetaOverflows != 0 {
					t.Errorf("isb stats survive reset: %d/%d", pf.TrainedPairs, pf.MetaOverflows)
				}
			case *stems.STeMS:
				if pf.TemporalHits != 0 || pf.Generations != 0 {
					t.Errorf("stems stats survive reset: %d/%d", pf.TemporalHits, pf.Generations)
				}
			}
		})
	}
}
