package sim

// The per-cycle kernel's zero-allocation contract, asserted at system scale:
// internal/cpu's TestCycleZeroAlloc covers one core over an unbanked
// hierarchy; this is the scale-out configuration — 16 cores, deferred
// shared-level ports, banked LLC with MSHRs, channeled DRAM — stepped
// exactly as the cycle loops step it (tick phase, then port service).

import "testing"

// TestBankedCMPCycleZeroAlloc drives a full 16-core scale-out system — core
// ticks, per-core port service through bank arbitration, MSHR claim and DRAM
// channel slots — and requires a steady state of zero heap allocations per
// system cycle.
func TestBankedCMPCycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := buildSystem(DefaultScale(PFBFetch, len(mix16)), mix16)
	if err != nil {
		t.Fatal(err)
	}
	due := make([]int32, 0, len(s.Cores))
	var now uint64
	step := func() {
		due = due[:0]
		for i := range s.Cores {
			if !s.Cores[i].Halted() {
				due = append(due, int32(i))
			}
		}
		s.tickCores(due, now)
		s.servicePorts(due)
		now++
	}
	// Warm every buffer — ROBs, port queues, MSHRs, channel slots, engine
	// tables — to steady-state capacity.
	for now < 30_000 {
		step()
	}
	if len(due) != len(s.Cores) {
		t.Fatalf("only %d of %d cores still active after warmup", len(due), len(s.Cores))
	}
	avg := testing.AllocsPerRun(2000, step)
	if avg != 0 {
		t.Errorf("banked 16-core system cycle: %.3f allocs/cycle, want 0", avg)
	}
}

// TestBankedCMPCycleZeroAllocAttributed is the same system cycle with the
// full observability tentpole attached: CPI attribution charging every core
// every cycle, and the interval time-series sampler firing — at an interval
// small enough that ring compaction (merge-downsampling) happens repeatedly
// inside the measured window. Both must add zero heap allocations, or they
// could not ship config-gated on the measurement path.
func TestBankedCMPCycleZeroAllocAttributed(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultScale(PFBFetch, len(mix16))
	cfg.CPU.CPIStack = true
	cfg.TSInterval = 64
	cfg.TSMaxRows = 8
	s, err := buildSystem(cfg, mix16)
	if err != nil {
		t.Fatal(err)
	}
	due := make([]int32, 0, len(s.Cores))
	var now uint64
	step := func() {
		due = due[:0]
		for i := range s.Cores {
			if !s.Cores[i].Halted() {
				due = append(due, int32(i))
			}
		}
		s.tickCores(due, now)
		s.servicePorts(due)
		now++
		for s.ts.NextAt() <= now {
			s.ts.Sample()
		}
	}
	for now < 30_000 {
		step()
	}
	if len(due) != len(s.Cores) {
		t.Fatalf("only %d of %d cores still active after warmup", len(due), len(s.Cores))
	}
	if s.ts.Rows() == 0 {
		t.Fatal("sampler took no rows during warmup")
	}
	avg := testing.AllocsPerRun(2000, step)
	if avg != 0 {
		t.Errorf("attributed+sampled system cycle: %.3f allocs/cycle, want 0", avg)
	}
	for i, c := range s.Cores {
		if total := c.Stats.CPI.Total(); total != c.Stats.Cycles {
			t.Errorf("core %d: CPI buckets sum to %d, want exactly Cycles = %d", i, total, c.Stats.Cycles)
		}
	}
}
