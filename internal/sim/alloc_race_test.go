//go:build race

package sim

// raceEnabled gates the zero-allocation assertions: the race detector's
// instrumentation allocates on paths that are allocation-free in a normal
// build, so AllocsPerRun readings are meaningless under -race.
const raceEnabled = true
