package sim

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

var quickOpts = RunOpts{WarmupInsts: 30_000, MeasureInsts: 80_000}

func mustRun(t *testing.T, pf PrefetcherKind, app string) Result {
	t.Helper()
	res, err := RunSolo(Default(pf), app, quickOpts)
	if err != nil {
		t.Fatalf("%s/%s: %v", pf, app, err)
	}
	return res
}

func TestBaselineRunsAndMeasures(t *testing.T) {
	res := mustRun(t, PFNone, "libquantum")
	if res.IPC[0] <= 0 {
		t.Fatalf("IPC = %v", res.IPC[0])
	}
	if res.Core[0].Committed < quickOpts.MeasureInsts {
		t.Errorf("committed %d < budget", res.Core[0].Committed)
	}
	if res.L1D[0].Misses == 0 {
		t.Error("streaming workload produced no L1D misses")
	}
	if res.DRAM.DemandFills == 0 {
		t.Error("no DRAM traffic")
	}
}

func TestPerfectBeatsBaselineOnStream(t *testing.T) {
	base := mustRun(t, PFNone, "libquantum")
	perfect := mustRun(t, PFPerfect, "libquantum")
	if perfect.IPC[0] <= base.IPC[0]*1.2 {
		t.Errorf("perfect IPC %.3f not ≫ baseline %.3f", perfect.IPC[0], base.IPC[0])
	}
}

func TestStrideHelpsStream(t *testing.T) {
	base := mustRun(t, PFNone, "libquantum")
	stride := mustRun(t, PFStride, "libquantum")
	if stride.IPC[0] <= base.IPC[0]*1.05 {
		t.Errorf("stride IPC %.3f not > baseline %.3f", stride.IPC[0], base.IPC[0])
	}
	if stride.Core[0].PrefetchIssued == 0 {
		t.Error("stride issued no prefetches")
	}
	if stride.L1D[0].PrefetchUseful == 0 {
		t.Error("no useful prefetches recorded")
	}
}

func TestSMSHelpsRegionWorkload(t *testing.T) {
	base := mustRun(t, PFNone, "milc")
	smsRes := mustRun(t, PFSMS, "milc")
	if smsRes.IPC[0] <= base.IPC[0]*1.05 {
		t.Errorf("SMS IPC %.3f not > baseline %.3f on milc", smsRes.IPC[0], base.IPC[0])
	}
}

func TestBFetchHelpsAndIsAccurate(t *testing.T) {
	base := mustRun(t, PFNone, "libquantum")
	bf := mustRun(t, PFBFetch, "libquantum")
	if bf.IPC[0] <= base.IPC[0]*1.05 {
		t.Errorf("B-Fetch IPC %.3f not > baseline %.3f", bf.IPC[0], base.IPC[0])
	}
	if bf.Core[0].PrefetchIssued == 0 {
		t.Fatal("B-Fetch issued no prefetches")
	}
	useful := bf.L1D[0].PrefetchUseful
	useless := bf.L1D[0].PrefetchUseless
	if useful == 0 {
		t.Error("no useful B-Fetch prefetches")
	}
	t.Logf("bfetch on libquantum: issued=%d useful=%d useless=%d ipc %.3f vs %.3f",
		bf.Core[0].PrefetchIssued, useful, useless, bf.IPC[0], base.IPC[0])
}

func TestAccountingIdentities(t *testing.T) {
	res := mustRun(t, PFBFetch, "lbm")
	l1 := res.L1D[0]
	if l1.Hits+l1.Misses != l1.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", l1.Hits, l1.Misses, l1.Accesses)
	}
	if l1.PrefetchUseful+l1.PrefetchUseless > res.Core[0].PrefetchIssued+l1.PrefetchFills {
		t.Errorf("prefetch accounting out of balance: %+v issued %d",
			l1, res.Core[0].PrefetchIssued)
	}
}

func TestCMPSharedLLCContention(t *testing.T) {
	cfg := Default(PFNone)
	solo, err := RunSolo(cfg, "mcf", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	duo, err := Run(cfg, []string{"mcf", "lbm"}, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(duo.IPC) != 2 {
		t.Fatalf("IPC count = %d", len(duo.IPC))
	}
	// Weighted speedup must be computable and below the ideal 2.0 under
	// contention (the LLC is shared but larger; allow mild superlinearity
	// headroom only).
	soloLBM, err := RunSolo(cfg, "lbm", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	ws := stats.WeightedSpeedup(duo.IPC, []float64{solo.IPC[0], soloLBM.IPC[0]})
	if ws <= 0.5 || ws > 2.2 {
		t.Errorf("weighted speedup = %.3f, outside sane range", ws)
	}
	t.Logf("mcf+lbm weighted speedup %.3f", ws)
}

func TestMismatchedCoresRejected(t *testing.T) {
	cfg := Default(PFNone)
	cfg.Cores = 2
	w, _ := workload.ByName("mcf")
	if _, err := New(cfg, []workload.Workload{w}); err == nil {
		t.Error("core/app mismatch accepted")
	}
}

func TestUnknownPrefetcherRejected(t *testing.T) {
	cfg := Default("bogus")
	if _, err := RunSolo(cfg, "mcf", quickOpts); err == nil {
		t.Error("unknown prefetcher accepted")
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := RunSolo(Default(PFNone), "nonesuch", quickOpts); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWarmupResetsCounters(t *testing.T) {
	res := mustRun(t, PFNone, "gamess")
	// Measured committed must be ≈ MeasureInsts, not Warmup+Measure.
	if res.Core[0].Committed > quickOpts.MeasureInsts+100 {
		t.Errorf("committed %d includes warmup", res.Core[0].Committed)
	}
}
