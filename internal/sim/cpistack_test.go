package sim

// CPI-stack and time-series contracts at system scale: the exact-partition
// invariant (every counted cycle lands in exactly one bucket) for every
// engine under both clock loops, solo and on the 16-core banked mix, and the
// interval sampler's bit-identity across loop modes and core-worker counts.

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// allKinds is every prefetch engine, the cpistack experiment's sweep set.
var allKinds = []PrefetcherKind{PFNone, PFNextN, PFStride, PFSMS, PFSTeMS, PFISB, PFBFetch}

// checkPartition asserts the exact-partition invariant on every core of a
// result: buckets sum to cycles, no slack, no overlap.
func checkPartition(t *testing.T, label string, res Result) {
	t.Helper()
	for i, cs := range res.Core {
		if total := cs.CPI.Total(); total != cs.Cycles {
			t.Errorf("%s core %d: CPI buckets sum to %d, want exactly Cycles = %d (stack %v)",
				label, i, total, cs.Cycles, cs.CPI)
		}
	}
}

// TestCPIStackExactPartition runs every engine with attribution enabled,
// solo under both loops, and requires (a) the partition to be exact and
// (b) the event loop's per-bucket charges — including the piecewise gap
// replay — to be bit-identical to the naive loop's cycle-by-cycle ones.
func TestCPIStackExactPartition(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := Default(kind)
			cfg.CPU.CPIStack = true
			var runs []Result
			for _, loop := range []LoopMode{LoopNaive, LoopEvent} {
				opts := eqOpts
				opts.Loop = loop
				res, err := Run(cfg, []string{"mcf"}, opts)
				if err != nil {
					t.Fatalf("loop %v: %v", loop, err)
				}
				checkPartition(t, loop.String(), res)
				runs = append(runs, res)
			}
			if !reflect.DeepEqual(runs[0], runs[1]) {
				t.Errorf("attributed snapshots diverge across loops\nnaive: %+v\nevent: %+v",
					runs[0].Core, runs[1].Core)
			}
		})
	}
}

// TestCPIStackExactPartitionBankedMix extends the invariant to the 16-core
// scale-out system — banked LLC with MSHRs, channeled DRAM — where the
// queueing buckets (llc_bank_queue, mshr, dram_chan_queue) actually charge,
// for every engine under both loops and under BSP parallel stepping.
func TestCPIStackExactPartitionBankedMix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultScale(kind, len(mix16))
			cfg.CPU.CPIStack = true
			var runs []Result
			for _, loop := range []LoopMode{LoopNaive, LoopEvent} {
				opts := parOpts
				opts.Loop = loop
				res, err := Run(cfg, mix16, opts)
				if err != nil {
					t.Fatalf("loop %v: %v", loop, err)
				}
				checkPartition(t, loop.String(), res)
				runs = append(runs, res)
			}
			if !reflect.DeepEqual(runs[0], runs[1]) {
				t.Errorf("attributed mix snapshots diverge across loops")
			}
			opts := parOpts
			opts.CoreWorkers = 5
			par, err := Run(cfg, mix16, opts)
			if err != nil {
				t.Fatalf("parallel stepping: %v", err)
			}
			checkPartition(t, "parallel", par)
			if !reflect.DeepEqual(runs[0], par) {
				t.Errorf("attributed snapshot diverges under parallel stepping")
			}
		})
	}
}

// TestTimeSeriesDeterminism pins the sampler's contract: the emitted
// TimeSeriesData — row values, row count, spacing after merge-downsampling —
// is bit-identical across naive-vs-event loops and across core-worker
// counts, on the contended 16-core system where the loops' idle-crediting
// and gap-skipping differ most.
func TestTimeSeriesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultScale(PFBFetch, len(mix16))
	cfg.CPU.CPIStack = true
	cfg.TSInterval = 256
	cfg.TSMaxRows = 16

	base, err := Run(cfg, mix16, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if base.TS == nil || len(base.TS.Rows) == 0 {
		t.Fatal("no time series emitted")
	}
	if base.TS.Schema != obs.SchemaTS {
		t.Fatalf("time series schema %q, want %q", base.TS.Schema, obs.SchemaTS)
	}
	if base.TS.Interval == cfg.TSInterval {
		t.Logf("note: run short enough that no downsampling occurred (interval still %d)", base.TS.Interval)
	}

	for _, v := range []struct {
		name    string
		loop    LoopMode
		workers int
	}{
		{"event-serial", LoopEvent, 0},
		{"naive-serial", LoopNaive, 0},
		{"event-par8", LoopEvent, 8},
		{"naive-par8", LoopNaive, 8},
	} {
		opts := parOpts
		opts.Loop = v.loop
		opts.CoreWorkers = v.workers
		res, err := Run(cfg, mix16, opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if !reflect.DeepEqual(base.TS, res.TS) {
			t.Errorf("%s: time series diverges from baseline\nbase:  %+v\ngot:   %+v",
				v.name, base.TS, res.TS)
		}
	}
}

// TestTimeSeriesWindowRestart checks the warmup/measure boundary: rows
// sampled during warmup must not leak into the measured window's series
// (the window-reset bug class the statsreset lint audit pins statically).
func TestTimeSeriesWindowRestart(t *testing.T) {
	cfg := Default(PFNone)
	cfg.TSInterval = 128
	s, err := buildSystem(cfg, []string{"libquantum"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(5_000, 20_000_000); err != nil {
		t.Fatal(err)
	}
	warm := s.ts.Rows()
	if warm == 0 {
		t.Fatal("no rows sampled during warmup")
	}
	s.ResetStats()
	if s.ts.Rows() != 0 {
		t.Fatalf("%d warmup rows survive ResetStats", s.ts.Rows())
	}
	if err := s.Run(5_000, 20_000_000); err != nil {
		t.Fatal(err)
	}
	res := s.Snapshot()
	if res.TS == nil || len(res.TS.Rows) == 0 {
		t.Fatal("no rows in the measured window")
	}
	if res.TS.Base == 0 {
		t.Error("measured window's series still based at cycle 0: warmup window leaked")
	}
	// Rows are cumulative counters read after the reset: the first measured
	// row must not contain warmup-scale cycle counts.
	for i, name := range res.TS.Names {
		if name == "c0.cpu.cycles" {
			if got := res.TS.Rows[0][i]; got > res.Cycles {
				t.Errorf("first measured row has c0.cpu.cycles = %d > window cycles %d", got, res.Cycles)
			}
		}
	}
}
