package sim

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// Additional system-level tests: alternative prefetchers through the full
// stack, custom factories, and run-loop edge cases.

func TestISBAndSTeMSRunThroughSystem(t *testing.T) {
	for _, kind := range []PrefetcherKind{PFISB, PFSTeMS, PFNextN} {
		res, err := RunSolo(Default(kind), "gromacs", quickOpts)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.IPC[0] <= 0 {
			t.Errorf("%s: IPC %v", kind, res.IPC[0])
		}
	}
}

func TestCustomFactoryPerCore(t *testing.T) {
	calls := 0
	cfg := Default(PFCustom)
	cfg.Factory = func(_ *branch.Predictor, _ *branch.Confidence) prefetch.Prefetcher {
		calls++
		return prefetch.None{}
	}
	_, err := Run(cfg, []string{"gamess", "sjeng"}, RunOpts{WarmupInsts: 1000, MeasureInsts: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("factory called %d times, want once per core", calls)
	}
}

func TestCMPFreezesFinishedCores(t *testing.T) {
	// gamess (fast) + mcf (slow): gamess reaches its budget first and must
	// freeze; total committed stays within budget + commit width.
	cfg := Default(PFNone)
	res, err := Run(cfg, []string{"gamess", "mcf"}, RunOpts{WarmupInsts: 5_000, MeasureInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range res.Core {
		if cs.Committed < 30_000 || cs.Committed > 30_000+8 {
			t.Errorf("core %d committed %d", i, cs.Committed)
		}
	}
	// The fast core's private cycle count must be well below the slow one's.
	if res.Core[0].Cycles >= res.Core[1].Cycles {
		t.Errorf("gamess cycles %d !< mcf cycles %d", res.Core[0].Cycles, res.Core[1].Cycles)
	}
}

func TestRunCycleBoundErrors(t *testing.T) {
	cfg := Default(PFNone)
	_, err := RunSolo(cfg, "mcf", RunOpts{MeasureInsts: 100_000, CyclesPerInst: 1})
	if err == nil {
		t.Error("impossible cycle bound did not error")
	}
}

func TestWorkloadImagesAreIsolated(t *testing.T) {
	// Two systems over the same workload must not share memory images.
	w, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(PFNone)
	s1, err := New(cfg, []workload.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg, []workload.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Run(20_000, 100_000_000); err != nil {
		t.Fatal(err)
	}
	// s2 still at cycle zero; running it must reproduce s1 exactly
	// (deterministic builds, no cross-talk).
	if err := s2.Run(20_000, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if s1.Cores[0].Stats.Cycles != s2.Cores[0].Stats.Cycles {
		t.Errorf("same workload, different cycle counts: %d vs %d",
			s1.Cores[0].Stats.Cycles, s2.Cores[0].Stats.Cycles)
	}
}
