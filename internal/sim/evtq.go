package sim

// evtHeap is an indexed binary min-heap of (cycle, core) pairs: the event
// loop's next-event structure. Each still-running core appears at most once,
// keyed by the cycle of its next scheduled work; ties break toward the lower
// core index, so popping all entries at the minimum cycle yields the cores
// in ascending index order — the same order the naive loop ticks them, and
// the order the shared-memory ports are serviced in.
//
// A core's cached key is invalidated only when the core itself is ticked
// (its next event depends exclusively on core-local state: ROB completion
// times, fetch-queue timestamps, prefetch-engine occupancy — shared-level
// contention shifts the *latencies* such state was built from, at the access
// itself, never afterwards). That is the invalidation contract that lets the
// loop skip the per-event O(cores) NextEvent rescan: cost per event is
// O(changed cores · log N).
type evtHeap struct {
	key []uint64 // per core: scheduled next-event cycle
	h   []int32  // heap of core indices
	pos []int32  // core -> slot in h, -1 if absent
}

// reset sizes the heap for n cores and empties it.
func (q *evtHeap) reset(n int) {
	if cap(q.key) < n {
		q.key = make([]uint64, n)
		q.pos = make([]int32, n)
		q.h = make([]int32, 0, n)
	}
	q.key = q.key[:n]
	q.pos = q.pos[:n]
	q.h = q.h[:0]
	for i := range q.pos {
		q.pos[i] = -1
	}
}

// less orders heap entries by (key, core index).
func (q *evtHeap) less(a, b int32) bool {
	ka, kb := q.key[a], q.key[b]
	return ka < kb || (ka == kb && a < b)
}

func (q *evtHeap) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.pos[q.h[i]] = int32(i)
	q.pos[q.h[j]] = int32(j)
}

func (q *evtHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.h[i], q.h[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *evtHeap) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(q.h[r], q.h[l]) {
			m = r
		}
		if !q.less(q.h[m], q.h[i]) {
			return
		}
		q.swap(i, m)
		i = m
	}
}

// push schedules (or reschedules) core i at cycle k.
func (q *evtHeap) push(i int32, k uint64) {
	q.key[i] = k
	if p := q.pos[i]; p >= 0 {
		q.up(int(p))
		q.down(int(q.pos[i]))
		return
	}
	q.h = append(q.h, i)
	q.pos[i] = int32(len(q.h) - 1)
	q.up(len(q.h) - 1)
}

// min returns the earliest scheduled cycle, or ok=false when empty.
func (q *evtHeap) min() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.key[q.h[0]], true
}

// popMin removes and returns the earliest entry's core index.
func (q *evtHeap) popMin() int32 {
	i := q.h[0]
	last := len(q.h) - 1
	q.swap(0, last)
	q.h = q.h[:last]
	q.pos[i] = -1
	if last > 0 {
		q.down(0)
	}
	return i
}
