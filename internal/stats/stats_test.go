package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("geomean(1,1,1) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero input")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{0.5, 1.0}, []float64{1.0, 2.0})
	if ws != 1.0 {
		t.Errorf("ws = %v", ws)
	}
	// Ideal (no contention) n-app mix sums to n.
	ws = WeightedSpeedup([]float64{1, 2, 3}, []float64{1, 2, 3})
	if ws != 3 {
		t.Errorf("ideal ws = %v", ws)
	}
}

func TestWeightedSpeedupValidation(t *testing.T) {
	for _, f := range []func(){
		func() { WeightedSpeedup([]float64{1}, []float64{1, 2}) },
		func() { WeightedSpeedup([]float64{1}, []float64{0}) },
	} {
		func() {
			defer func() { recover() }()
			f()
			t.Error("invalid input accepted")
		}()
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 42)
	s := tab.String()
	if !strings.Contains(s, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "1.500") {
		t.Error("float not formatted to 3 decimals")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
	// Columns align: every line after the title shares the separator column.
	hdr := lines[1]
	if !strings.HasPrefix(hdr, "name") {
		t.Errorf("header = %q", hdr)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("x,y", `quote"d`)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"d\"\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestCDFOf(t *testing.T) {
	pts := CDFOf([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDFOf(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

// Property: geomean lies between min and max; scaling inputs scales the
// geomean.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = 1 + float64(r)/100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 2
		}
		return math.Abs(Geomean(scaled)-2*g) < 1e-9*g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
