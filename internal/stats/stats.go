// Package stats provides the metrics and formatting used across the
// evaluation: geometric means, the multiprogrammed weighted-speedup metric
// of §V-A, cumulative distributions, and plain-text table rendering for the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs; it panics on non-positive
// inputs, which would indicate a broken speedup computation upstream.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// WeightedSpeedup implements the paper's multiprogrammed metric:
// Σ(IPC_multi / IPC_single) over the applications in a mix, where IPC_single
// is each application's IPC running alone on the same configuration.
func WeightedSpeedup(ipcMulti, ipcSingle []float64) float64 {
	if len(ipcMulti) != len(ipcSingle) {
		panic("stats: weighted speedup over mismatched slices")
	}
	s := 0.0
	for i := range ipcMulti {
		if ipcSingle[i] <= 0 {
			panic("stats: zero single-application IPC")
		}
		s += ipcMulti[i] / ipcSingle[i]
	}
	return s
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table is a simple column-aligned text table with CSV export, the output
// format of every experiment.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with 3 decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	X float64
	Y float64
}

// CDFOf computes the empirical CDF of samples at each distinct value.
func CDFOf(samples []float64) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var out []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], Y: float64(i+1) / n})
	}
	return out
}
