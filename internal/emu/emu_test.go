package emu

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func run(t *testing.T, src string, m *mem.Memory, max uint64) *CPU {
	t.Helper()
	p := isa.MustAssemble(src)
	if m == nil {
		m = mem.New()
	}
	c := New(p, m)
	if _, err := c.Run(max); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted {
		t.Fatalf("program did not halt within %d instructions", max)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		add  r4, r3, r1
		sub  r5, r4, r2
		xor  r6, r1, r2
		and  r7, r1, r2
		or   r8, r1, r2
		halt
	`, nil, 100)
	checks := map[isa.Reg]int64{3: 42, 4: 48, 5: 41, 6: 1, 7: 6, 8: 7}
	for r, want := range checks {
		if c.Regs[r] != want {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], want)
		}
	}
}

func TestShiftsAndCompares(t *testing.T) {
	c := run(t, `
		movi r1, -16
		srai r2, r1, 2
		srli r3, r1, 60
		slli r4, r1, 1
		cmplt  r5, r1, r31
		cmple  r6, r31, r1
		cmpeq  r7, r1, r1
		cmplti r8, r1, 0
		cmpeqi r9, r1, -16
		halt
	`, nil, 100)
	if c.Regs[2] != -4 {
		t.Errorf("sra: %d", c.Regs[2])
	}
	if c.Regs[3] != 15 {
		t.Errorf("srl: %d", c.Regs[3])
	}
	if c.Regs[4] != -32 {
		t.Errorf("sll: %d", c.Regs[4])
	}
	if c.Regs[5] != 1 || c.Regs[6] != 0 || c.Regs[7] != 1 || c.Regs[8] != 1 || c.Regs[9] != 1 {
		t.Errorf("compares: %v %v %v %v %v", c.Regs[5], c.Regs[6], c.Regs[7], c.Regs[8], c.Regs[9])
	}
}

func TestShiftAmountMasked(t *testing.T) {
	c := run(t, `
		movi r1, 1
		movi r2, 65       ; 65 & 63 == 1
		sll  r3, r1, r2
		halt
	`, nil, 100)
	if c.Regs[3] != 2 {
		t.Errorf("sll by 65 = %d, want 2", c.Regs[3])
	}
}

func TestZeroRegister(t *testing.T) {
	c := run(t, `
		movi r31, 99
		add  r1, r31, r31
		halt
	`, nil, 100)
	if c.Regs[31] != 0 || c.Regs[1] != 0 {
		t.Errorf("r31 = %d, r1 = %d", c.Regs[31], c.Regs[1])
	}
}

func TestLoadStore(t *testing.T) {
	m := mem.New()
	m.WriteInt64(0x2000, 1234)
	c := run(t, `
		movi r1, 0x2000
		ld   r2, 0(r1)
		addi r2, r2, 1
		st   r2, 8(r1)
		halt
	`, m, 100)
	if c.Regs[2] != 1235 {
		t.Errorf("r2 = %d", c.Regs[2])
	}
	if v := m.ReadInt64(0x2008); v != 1235 {
		t.Errorf("mem = %d", v)
	}
}

func TestLoopAndBranches(t *testing.T) {
	c := run(t, `
		movi r1, 5
		movi r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`, nil, 1000)
	if c.Regs[2] != 15 {
		t.Errorf("sum = %d, want 15", c.Regs[2])
	}
	if c.Retired != 2+5*3+1 {
		t.Errorf("retired = %d", c.Retired)
	}
}

func TestAllBranchConditions(t *testing.T) {
	c := run(t, `
		movi r1, -3
		movi r10, 0
		bltz r1, a
		halt
	a:	ori  r10, r10, 1
		bgez r1, bad
		ori  r10, r10, 2
		movi r2, 0
		beqz r2, b
		halt
	b:	ori  r10, r10, 4
		bnez r2, bad
		ori  r10, r10, 8
		halt
	bad:
		movi r10, -1
		halt
	`, nil, 100)
	if c.Regs[10] != 15 {
		t.Errorf("branch flags = %d, want 15", c.Regs[10])
	}
}

func TestJmpAndJr(t *testing.T) {
	c0 := run(t, `
		jmp over
		movi r1, 111     ; skipped
	over:
		movi r2, 22
		halt
	`, nil, 100)
	if c0.Regs[1] != 0 || c0.Regs[2] != 22 {
		t.Errorf("jmp: r1=%d r2=%d", c0.Regs[1], c0.Regs[2])
	}
	// JR through a register holding the byte address of instruction 4.
	b := isa.NewBuilder()
	done := b.NewLabel()
	b.Movi(isa.R(1), int64(isa.DefaultTextBase)+4*4) // address of inst 4
	b.Jr(isa.R(1))
	b.Movi(isa.R(2), 55) // skipped
	b.Movi(isa.R(2), 66) // skipped
	b.Bind(done)
	b.Movi(isa.R(3), 77)
	b.Halt()
	prog := b.MustProgram()
	c := New(prog, mem.New())
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[2] != 0 || c.Regs[3] != 77 {
		t.Errorf("jr: r2=%d r3=%d", c.Regs[2], c.Regs[3])
	}
}

func TestJrInvalidTarget(t *testing.T) {
	c := New(isa.MustAssemble("movi r1, 3\njr r1\nhalt"), mem.New())
	_, err := c.Run(10)
	if err == nil {
		t.Error("invalid jr target accepted")
	}
}

func TestStepAfterHalt(t *testing.T) {
	c := New(isa.MustAssemble("halt"), mem.New())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestRunBudget(t *testing.T) {
	c := New(isa.MustAssemble("loop: jmp loop"), mem.New())
	n, err := c.Run(500)
	if err != nil || n != 500 {
		t.Errorf("n=%d err=%v", n, err)
	}
	if c.Halted {
		t.Error("infinite loop halted")
	}
}

func TestOnRetireSequence(t *testing.T) {
	p := isa.MustAssemble(`
		movi r1, 2
	loop:
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	c := New(p, mem.New())
	var trace []Retire
	c.OnRetire = func(r Retire) { trace = append(trace, r) }
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{0, 1, 2, 1, 2, 3}
	if len(trace) != len(wantIdx) {
		t.Fatalf("trace len = %d, want %d", len(trace), len(wantIdx))
	}
	for i, r := range trace {
		if r.Index != wantIdx[i] {
			t.Errorf("trace[%d].Index = %d, want %d", i, r.Index, wantIdx[i])
		}
	}
	if !trace[2].Taken {
		t.Error("first bnez should be taken")
	}
	if trace[4].Taken {
		t.Error("second bnez should fall through")
	}
}

func TestEvalMatchesStep(t *testing.T) {
	// Every ALU op evaluated via Eval must match a Step execution.
	ops := []isa.Op{
		isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SLL,
		isa.SRL, isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLE,
	}
	for _, op := range ops {
		b := isa.NewBuilder()
		b.Movi(isa.R(1), -7)
		b.Movi(isa.R(2), 3)
		b.Emit(isa.Inst{Op: op, Rd: isa.R(3), Rs: isa.R(1), Rt: isa.R(2)})
		b.Halt()
		c := New(b.MustProgram(), mem.New())
		if _, err := c.Run(10); err != nil {
			t.Fatal(err)
		}
		want, ok := Eval(op, -7, 3, 0)
		if !ok {
			t.Fatalf("Eval does not handle %v", op)
		}
		if c.Regs[3] != want {
			t.Errorf("%v: Step=%d Eval=%d", op, c.Regs[3], want)
		}
	}
}

func TestBranchTakenMatrix(t *testing.T) {
	cases := []struct {
		op   isa.Op
		v    int64
		want bool
	}{
		{isa.BEQZ, 0, true}, {isa.BEQZ, 1, false},
		{isa.BNEZ, 0, false}, {isa.BNEZ, -1, true},
		{isa.BLTZ, -1, true}, {isa.BLTZ, 0, false},
		{isa.BGEZ, 0, true}, {isa.BGEZ, -1, false},
		{isa.JMP, 0, true}, {isa.JR, 0, true},
		{isa.ADD, 0, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.v); got != c.want {
			t.Errorf("BranchTaken(%v, %d) = %v", c.op, c.v, got)
		}
	}
}
