// Threaded-code compilation of the functional emulator (DESIGN.md §5d).
//
// Compile pre-decodes a program once into a flat array of micro-op records —
// one per static instruction, with register indices, immediates and branch
// targets resolved at compile time — and fuses straight-line runs between
// control-flow boundaries into superblocks executed without per-instruction
// dispatch bookkeeping: inside a block there are no PC writes, halt checks,
// budget checks or retire-hook checks, and adjacent dependent instruction
// pairs (address-generation feeding a load or store, compare feeding a
// branch) collapse into single fused micro-ops, so the per-instruction cost
// is one jump-table dispatch or less.
//
// The compiled form is semantically bit-identical to the Step interpreter:
// anything the compiler cannot prove safe at compile time (an invalid
// opcode, an out-of-range register, a branch target that does not fit the
// packed record) compiles to a deopt micro-op, and every fault — plus every
// budget boundary that lands inside a superblock — funnels through the
// interpreter, so error values and architectural state match it exactly.
// The interpreter remains the ground truth and the instrumented path: a CPU
// with an OnRetire hook always interprets.
package emu

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/isa"
)

// ExecMode selects the functional-emulator execution engine. The zero value
// ExecAuto resolves to DefaultExec, letting the -emuloop CLI escape hatch
// (mirroring -simloop) pin a whole process to one engine.
type ExecMode uint8

const (
	ExecAuto     ExecMode = iota // DefaultExec; compiled unless instrumented
	ExecInterp                   // always the Step interpreter
	ExecCompiled                 // threaded code when possible (OnRetire still interprets)
)

// DefaultExec is the engine an ExecAuto CPU runs on. CLIs override it from
// the -emuloop flag before any simulation starts; it is not safe to change
// while emulators are running.
var DefaultExec = ExecCompiled

// ParseExecMode parses an -emuloop flag value.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "auto", "":
		return ExecAuto, nil
	case "interp":
		return ExecInterp, nil
	case "compiled":
		return ExecCompiled, nil
	}
	return ExecAuto, fmt.Errorf("emu: unknown emulator loop mode %q (want auto, interp, or compiled)", s)
}

// String implements fmt.Stringer for flag help, logs, and bench provenance.
func (m ExecMode) String() string {
	switch m {
	case ExecInterp:
		return "interp"
	case ExecCompiled:
		return "compiled"
	default:
		return "auto"
	}
}

// useCompiled reports whether Run should dispatch to the threaded-code
// engine. An OnRetire hook forces the interpreter: the hook's contract is
// one callback per retired instruction with the full Retire record, and the
// compiled form deliberately does not materialize those.
func (c *CPU) useCompiled() bool {
	if c.OnRetire != nil {
		return false
	}
	mode := c.Exec
	if mode == ExecAuto {
		mode = DefaultExec
	}
	return mode != ExecInterp
}

// Micro-op kinds. The first group mirrors the ISA one-to-one; the fused
// group executes two adjacent instructions per dispatch. kDeopt routes an
// instruction the compiler could not prove safe through the interpreter.
const (
	kNOP = uint8(iota)
	kADD
	kSUB
	kMUL
	kAND
	kOR
	kXOR
	kSLL
	kSRL
	kSRA
	kCMPEQ
	kCMPLT
	kCMPLE
	kADDI
	kMULI
	kANDI
	kORI
	kXORI
	kSLLI
	kSRLI
	kSRAI
	kCMPEQI
	kCMPLTI
	kMOVI
	kLD
	kST

	// Terminators.
	kBEQZ
	kBNEZ
	kBLTZ
	kBGEZ
	kJMP
	kJR
	kHALT
	kDeopt

	// Fused body pairs: one dispatch executes two adjacent instructions, the
	// first from (rd,rs,rt,imm) and the second from (rd2,rs2,rt2,imm2), with
	// the second's operands read after the first's write — so dependent and
	// independent pairs share one uniform semantics and fusion needs no
	// operand preconditions. Entering at the second instruction of a pair
	// executes its unfused record, so fusion is invisible to control flow.
	// The set is chosen from measured dynamic pair frequencies over the
	// workload suite (ld+ld and addi+addi alone are >25% of dynamic pairs).
	kADDI_LD
	kADDI_ST
	kLD_ADDI
	kADDI2
	kLD_LD
	kADD_ADD
	kLD_ADD
	kST_ADDI
	kADD_LD
	kADD_SUB
	kLD_ANDI
	kADD_ADDI
	kADD_MUL
	kANDI_ADD
	kLD_MUL
	kMUL_LD
	kSLLI_ADD
	kMUL_ADD
	kLD_SLLI

	// Fused body triples: three adjacent instructions per dispatch, same
	// post-write operand semantics as the pairs. The set covers the
	// workload suite's hottest straight-line idioms — the Horner step
	// (mul,ld,add), stencil/record gathers (ld,ld,ld), reduction chains
	// (add,add,add) and store-plus-pointer-bump tails (st,addi,addi).
	kMUL_LD_ADD
	kLD_LD_LD
	kADD_ADD_ADD
	kST_ADDI_ADDI

	// Fused terminators: a body op feeding a conditional branch (the
	// decrement-and-branch loop back-edge, compare-and-branch, mask-and-
	// branch idioms) executes as one record covering two instructions. They
	// must stay the last kinds so isTerm can test them with one compare.
	kADDI_BNEZ
	kSUB_BLTZ
	kANDI_BEQZ
	kCMPLT_BNEZ
)

// isTerm reports whether a micro-op kind ends a superblock.
func isTerm(k uint8) bool {
	return (k >= kBEQZ && k <= kDeopt) || k >= kADDI_BNEZ
}

// cop is one pre-decoded micro-op record. Operand register indices are
// validated at compile time, so the engine indexes the register file with a
// masked load and no bounds check. adv is the number of static instructions
// the record covers (2 for fused pairs).
type cop struct {
	kind          uint8
	adv           uint8
	rd, rs, rt    uint8
	rd2, rs2, rt2 uint8
	rd3, rs3, rt3 uint8
	next          int32 // fallthrough instruction index (idx+adv, past fused ops)
	target        int32 // taken-branch instruction index
	imm           int64
	imm2          int64 // second immediate of a fused pair or triple
	imm3          int64 // third immediate of a fused triple
}

// Compiled is the threaded-code form of one program: ops parallel to
// Prog.Insts, plus the superblock table term, where term[i] is the index of
// the first terminator (control op, HALT, or deopt) at or after i — the
// instructions in [i, term[i]) are a straight-line run with no control
// transfer, executed as one superblock. Compiled is immutable after
// construction and safe to share across goroutines.
type Compiled struct {
	prog *isa.Program
	ops  []cop
	term []int32
}

var compileCache sync.Map // *isa.Program -> *Compiled

// Compile returns the threaded-code form of prog, building it at most once
// per Program per process: repeated emulations of one workload (checkpoint
// misses, fast-forwards, differential runs) share one decode.
func Compile(prog *isa.Program) *Compiled {
	if k, ok := compileCache.Load(prog); ok {
		return k.(*Compiled)
	}
	k := compile(prog)
	if prev, raced := compileCache.LoadOrStore(prog, k); raced {
		return prev.(*Compiled)
	}
	return k
}

func compile(prog *isa.Program) *Compiled {
	n := len(prog.Insts)
	k := &Compiled{
		prog: prog,
		ops:  make([]cop, n),
		term: make([]int32, n),
	}
	for i, in := range prog.Insts {
		k.ops[i] = compileInst(in, i)
	}
	// term: backward scan; a block starting anywhere extends to the nearest
	// following terminator, or runs off the end of the program (term == n).
	// Computed once before fusion (pair boundaries) and again after it
	// (fused terminators shorten the blocks that fall into them).
	k.scanTerm()
	fuse(k)
	k.scanTerm()
	return k
}

func (k *Compiled) scanTerm() {
	next := int32(len(k.ops))
	for i := len(k.ops) - 1; i >= 0; i-- {
		if isTerm(k.ops[i].kind) {
			next = int32(i)
		}
		k.term[i] = next
	}
}

// fuseBody maps adjacent body-op kind pairs to their fused micro-op. No
// operand conditions: fused semantics read the second op's sources after the
// first op's write, matching sequential execution for any operand overlap.
var fuseBody = map[[2]uint8]uint8{
	{kLD, kLD}:     kLD_LD,
	{kADDI, kADDI}: kADDI2,
	{kADD, kADD}:   kADD_ADD,
	{kLD, kADD}:    kLD_ADD,
	{kST, kADDI}:   kST_ADDI,
	{kADD, kLD}:    kADD_LD,
	{kADD, kSUB}:   kADD_SUB,
	{kLD, kANDI}:   kLD_ANDI,
	{kADD, kADDI}:  kADD_ADDI,
	{kADD, kMUL}:   kADD_MUL,
	{kANDI, kADD}:  kANDI_ADD,
	{kLD, kMUL}:    kLD_MUL,
	{kMUL, kLD}:    kMUL_LD,
	{kSLLI, kADD}:  kSLLI_ADD,
	{kMUL, kADD}:   kMUL_ADD,
	{kLD, kSLLI}:   kLD_SLLI,
	{kADDI, kLD}:   kADDI_LD,
	{kADDI, kST}:   kADDI_ST,
	{kLD, kADDI}:   kLD_ADDI,
}

// fuseTriple maps three adjacent body-op kinds to their fused micro-op.
var fuseTriple = map[[3]uint8]uint8{
	{kMUL, kLD, kADD}:   kMUL_LD_ADD,
	{kLD, kLD, kLD}:     kLD_LD_LD,
	{kADD, kADD, kADD}:  kADD_ADD_ADD,
	{kST, kADDI, kADDI}: kST_ADDI_ADDI,
}

// fuseTerm maps a body op followed by its block's conditional branch to a
// fused terminator covering both instructions.
var fuseTerm = map[[2]uint8]uint8{
	{kADDI, kBNEZ}:  kADDI_BNEZ,
	{kSUB, kBLTZ}:   kSUB_BLTZ,
	{kANDI, kBEQZ}:  kANDI_BEQZ,
	{kCMPLT, kBNEZ}: kCMPLT_BNEZ,
}

// fuse collapses adjacent instruction groups into single micro-ops: body
// triples and pairs inside a superblock (greedy, longest first), and
// body-op+branch pairs at its end. Later records of a group are left intact
// so branches and JRs that land on them still execute correctly; only
// fall-through entry takes the fused path.
func fuse(k *Compiled) {
	for i := 0; i+1 < len(k.ops); i++ {
		a, b := k.ops[i], k.ops[i+1]
		if i+2 < len(k.ops) && int32(i+2) < k.term[i] {
			c := k.ops[i+2]
			if kind := fuseTriple[[3]uint8{a.kind, b.kind, c.kind}]; kind != 0 {
				f := a
				f.kind = kind
				f.adv = 3
				f.next = int32(i + 3)
				f.rd2, f.rs2, f.rt2, f.imm2 = b.rd, b.rs, b.rt, b.imm
				f.rd3, f.rs3, f.rt3, f.imm3 = c.rd, c.rs, c.rt, c.imm
				k.ops[i] = f
				i += 2 // the triple is consumed
				continue
			}
		}
		var kind uint8
		switch {
		case int32(i+1) < k.term[i]: // both body ops of one block
			kind = fuseBody[[2]uint8{a.kind, b.kind}]
		case int32(i+1) == k.term[i]: // b is the branch terminating a's block
			kind = fuseTerm[[2]uint8{a.kind, b.kind}]
		}
		if kind == 0 {
			continue
		}
		f := a
		f.kind = kind
		f.adv = 2
		f.next = int32(i + 2)
		f.rd2, f.rs2, f.rt2, f.imm2 = b.rd, b.rs, b.rt, b.imm
		f.target = b.target // body ops carry no target; branches do
		k.ops[i] = f
		i++ // the pair is consumed; never re-fuse its second element
	}
}

// pcDeopt is a sentinel next-PC: route one instruction through the
// interpreter (faults and unprovable encodings). Compile guarantees no real
// branch target collides with it.
const pcDeopt = math.MinInt32

// regOK reports whether an operand register index is in range; anything
// else deopts so the interpreter reproduces its exact behavior.
func regOK(r isa.Reg) bool { return r < isa.NumRegs }

func targetOK(t int) bool { return t > math.MinInt32 && t <= math.MaxInt32 }

var opKind = [...]uint8{
	isa.NOP: kNOP, isa.ADD: kADD, isa.SUB: kSUB, isa.MUL: kMUL,
	isa.AND: kAND, isa.OR: kOR, isa.XOR: kXOR,
	isa.SLL: kSLL, isa.SRL: kSRL, isa.SRA: kSRA,
	isa.CMPEQ: kCMPEQ, isa.CMPLT: kCMPLT, isa.CMPLE: kCMPLE,
	isa.ADDI: kADDI, isa.MULI: kMULI, isa.ANDI: kANDI, isa.ORI: kORI,
	isa.XORI: kXORI, isa.SLLI: kSLLI, isa.SRLI: kSRLI, isa.SRAI: kSRAI,
	isa.CMPEQI: kCMPEQI, isa.CMPLTI: kCMPLTI, isa.MOVI: kMOVI,
	isa.LD: kLD, isa.ST: kST,
	isa.BEQZ: kBEQZ, isa.BNEZ: kBNEZ, isa.BLTZ: kBLTZ, isa.BGEZ: kBGEZ,
	isa.JMP: kJMP, isa.JR: kJR, isa.HALT: kHALT,
}

// compileInst pre-decodes one instruction. Unknown opcodes, out-of-range
// registers and oversized targets compile to kDeopt: the engine hands the
// instruction to the interpreter, which reproduces the exact error (or
// panic) the uncompiled path would have produced.
func compileInst(in isa.Inst, idx int) cop {
	o := cop{
		kind: kDeopt, adv: 1,
		rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
		next: int32(idx + 1), imm: in.Imm,
	}
	if !regOK(in.Rd) || !regOK(in.Rs) || !regOK(in.Rt) || int(in.Op) >= len(opKind) {
		return o
	}
	if in.Op != isa.NOP && opKind[in.Op] == kNOP {
		return o // unmapped opcode (defensive: opKind gaps read as zero)
	}
	o.kind = opKind[in.Op]
	// Writes to r31 have no architectural effect; loads to r31 read sparse
	// memory, which has no side effects either. Pre-resolve to a no-op.
	// (isa.Inst.HasDest is false for an r31 destination, so classify by op.)
	switch in.Op {
	case isa.NOP, isa.ST, isa.BEQZ, isa.BNEZ, isa.BLTZ, isa.BGEZ, isa.JMP, isa.JR, isa.HALT:
	default:
		if in.Rd == isa.RZero {
			o.kind = kNOP
		}
	}
	if in.IsDirect() {
		if !targetOK(in.Target) {
			o.kind = kDeopt
			return o
		}
		o.target = int32(in.Target)
	}
	return o
}

// run executes up to maxInsts instructions of compiled code, maintaining
// exactly the interpreter's architectural state machine: c.PC and c.Retired
// are consistent at every return, and any boundary the fast path cannot
// handle exactly — a fault, an unprovable encoding, or a budget that ends
// inside a superblock — is delegated to the interpreter, the ground truth.
//
//bfetch:hotpath
func (k *Compiled) run(c *CPU, maxInsts uint64) (uint64, error) {
	ops := k.ops
	nops := len(ops)
	regs := &c.Regs
	mm := c.Mem
	var n uint64
	for n < maxInsts && !c.Halted {
		pc := c.PC
		if pc < 0 || pc >= nops {
			return n, c.Step() // canonical "pc index out of range" error
		}
		t := int(k.term[pc])
		// Instructions this superblock will retire: the body plus its
		// terminator — which covers two when fused with the op feeding it,
		// and none when the block runs off the program end.
		need := uint64(t - pc)
		if t < nops {
			need += uint64(ops[t].adv)
		}
		if rem := maxInsts - n; need > rem {
			// The budget ends inside the superblock: single-step the tail
			// on the interpreter, which shares our state machine.
			for rem > 0 && !c.Halted {
				if err := c.Step(); err != nil {
					return n, err
				}
				n++
				rem--
			}
			return n, nil
		}

		// Superblock body: straight-line micro-ops, no per-instruction
		// bookkeeping, fused pairs retiring two instructions per dispatch.
		// Indexing the reslice blk (len t) by i < t lets the compiler drop
		// the per-dispatch bounds check.
		blk := ops[:t]
		for i := pc; i < t; {
			o := &blk[i]
			switch o.kind {
			case kNOP:
			case kADD:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
			case kSUB:
				regs[o.rd&31] = regs[o.rs&31] - regs[o.rt&31]
			case kMUL:
				regs[o.rd&31] = regs[o.rs&31] * regs[o.rt&31]
			case kAND:
				regs[o.rd&31] = regs[o.rs&31] & regs[o.rt&31]
			case kOR:
				regs[o.rd&31] = regs[o.rs&31] | regs[o.rt&31]
			case kXOR:
				regs[o.rd&31] = regs[o.rs&31] ^ regs[o.rt&31]
			case kSLL:
				regs[o.rd&31] = shiftL(regs[o.rs&31], regs[o.rt&31])
			case kSRL:
				regs[o.rd&31] = shiftRL(regs[o.rs&31], regs[o.rt&31])
			case kSRA:
				regs[o.rd&31] = shiftRA(regs[o.rs&31], regs[o.rt&31])
			case kCMPEQ:
				regs[o.rd&31] = b2i(regs[o.rs&31] == regs[o.rt&31])
			case kCMPLT:
				regs[o.rd&31] = b2i(regs[o.rs&31] < regs[o.rt&31])
			case kCMPLE:
				regs[o.rd&31] = b2i(regs[o.rs&31] <= regs[o.rt&31])
			case kADDI:
				regs[o.rd&31] = regs[o.rs&31] + o.imm
			case kMULI:
				regs[o.rd&31] = regs[o.rs&31] * o.imm
			case kANDI:
				regs[o.rd&31] = regs[o.rs&31] & o.imm
			case kORI:
				regs[o.rd&31] = regs[o.rs&31] | o.imm
			case kXORI:
				regs[o.rd&31] = regs[o.rs&31] ^ o.imm
			case kSLLI:
				regs[o.rd&31] = shiftL(regs[o.rs&31], o.imm)
			case kSRLI:
				regs[o.rd&31] = shiftRL(regs[o.rs&31], o.imm)
			case kSRAI:
				regs[o.rd&31] = shiftRA(regs[o.rs&31], o.imm)
			case kCMPEQI:
				regs[o.rd&31] = b2i(regs[o.rs&31] == o.imm)
			case kCMPLTI:
				regs[o.rd&31] = b2i(regs[o.rs&31] < o.imm)
			case kMOVI:
				regs[o.rd&31] = o.imm
			// Memory cases expand mem.Load64/Store64 probe-plus-fallback
			// inline: the probe is inlinable, and keeping the Read64/Write64
			// fallback call at the (rarely taken) miss edge is what lets the
			// compiler inline the hit path into this loop.
			case kLD:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
			case kST:
				ea := uint64(regs[o.rs&31] + o.imm)
				if !mm.Store64(ea, uint64(regs[o.rt&31])) {
					mm.Write64(ea, uint64(regs[o.rt&31]))
				}
			case kADDI_LD:
				regs[o.rd&31] = regs[o.rs&31] + o.imm
				ea := uint64(regs[o.rs2&31] + o.imm2)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd2&31] = int64(v)
			case kADDI_ST:
				regs[o.rd&31] = regs[o.rs&31] + o.imm
				ea := uint64(regs[o.rs2&31] + o.imm2)
				if !mm.Store64(ea, uint64(regs[o.rt2&31])) {
					mm.Write64(ea, uint64(regs[o.rt2&31]))
				}
			case kLD_ADDI:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				regs[o.rd2&31] = regs[o.rs2&31] + o.imm2
			case kADDI2:
				regs[o.rd&31] = regs[o.rs&31] + o.imm
				regs[o.rd2&31] = regs[o.rs2&31] + o.imm2
			case kLD_LD:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				ea = uint64(regs[o.rs2&31] + o.imm2)
				v, ok = mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd2&31] = int64(v)
			case kADD_ADD:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
				regs[o.rd2&31] = regs[o.rs2&31] + regs[o.rt2&31]
			case kLD_ADD:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				regs[o.rd2&31] = regs[o.rs2&31] + regs[o.rt2&31]
			case kST_ADDI:
				ea := uint64(regs[o.rs&31] + o.imm)
				if !mm.Store64(ea, uint64(regs[o.rt&31])) {
					mm.Write64(ea, uint64(regs[o.rt&31]))
				}
				regs[o.rd2&31] = regs[o.rs2&31] + o.imm2
			case kADD_LD:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
				ea := uint64(regs[o.rs2&31] + o.imm2)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd2&31] = int64(v)
			case kADD_SUB:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
				regs[o.rd2&31] = regs[o.rs2&31] - regs[o.rt2&31]
			case kLD_ANDI:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				regs[o.rd2&31] = regs[o.rs2&31] & o.imm2
			case kADD_ADDI:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
				regs[o.rd2&31] = regs[o.rs2&31] + o.imm2
			case kADD_MUL:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
				regs[o.rd2&31] = regs[o.rs2&31] * regs[o.rt2&31]
			case kANDI_ADD:
				regs[o.rd&31] = regs[o.rs&31] & o.imm
				regs[o.rd2&31] = regs[o.rs2&31] + regs[o.rt2&31]
			case kLD_MUL:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				regs[o.rd2&31] = regs[o.rs2&31] * regs[o.rt2&31]
			case kMUL_LD:
				regs[o.rd&31] = regs[o.rs&31] * regs[o.rt&31]
				ea := uint64(regs[o.rs2&31] + o.imm2)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd2&31] = int64(v)
			case kSLLI_ADD:
				regs[o.rd&31] = shiftL(regs[o.rs&31], o.imm)
				regs[o.rd2&31] = regs[o.rs2&31] + regs[o.rt2&31]
			case kMUL_ADD:
				regs[o.rd&31] = regs[o.rs&31] * regs[o.rt&31]
				regs[o.rd2&31] = regs[o.rs2&31] + regs[o.rt2&31]
			case kLD_SLLI:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				regs[o.rd2&31] = shiftL(regs[o.rs2&31], o.imm2)
			case kMUL_LD_ADD:
				regs[o.rd&31] = regs[o.rs&31] * regs[o.rt&31]
				ea := uint64(regs[o.rs2&31] + o.imm2)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd2&31] = int64(v)
				regs[o.rd3&31] = regs[o.rs3&31] + regs[o.rt3&31]
			case kLD_LD_LD:
				ea := uint64(regs[o.rs&31] + o.imm)
				v, ok := mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd&31] = int64(v)
				ea = uint64(regs[o.rs2&31] + o.imm2)
				v, ok = mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd2&31] = int64(v)
				ea = uint64(regs[o.rs3&31] + o.imm3)
				v, ok = mm.Load64(ea)
				if !ok {
					v = mm.Read64(ea)
				}
				regs[o.rd3&31] = int64(v)
			case kADD_ADD_ADD:
				regs[o.rd&31] = regs[o.rs&31] + regs[o.rt&31]
				regs[o.rd2&31] = regs[o.rs2&31] + regs[o.rt2&31]
				regs[o.rd3&31] = regs[o.rs3&31] + regs[o.rt3&31]
			case kST_ADDI_ADDI:
				ea := uint64(regs[o.rs&31] + o.imm)
				if !mm.Store64(ea, uint64(regs[o.rt&31])) {
					mm.Write64(ea, uint64(regs[o.rt&31]))
				}
				regs[o.rd2&31] = regs[o.rs2&31] + o.imm2
				regs[o.rd3&31] = regs[o.rs3&31] + o.imm3
			}
			// Advance by the record's instruction count, derived from the
			// kind byte already in hand: loading o.adv here would put a
			// memory access on the loop-carried dependency chain and
			// dominate dispatch latency.
			switch {
			case o.kind >= kMUL_LD_ADD:
				i += 3
			case o.kind >= kADDI_LD:
				i += 2
			default:
				i++
			}
		}
		n += uint64(t - pc)
		c.Retired += uint64(t - pc)
		if t == nops {
			// The block runs off the end of the program; the next iteration
			// reports the interpreter's pc-range error.
			c.PC = t
			continue
		}

		// Terminator.
		o := &ops[t]
		next := o.next
		switch o.kind {
		case kBEQZ:
			if regs[o.rs&31] == 0 {
				next = o.target
			}
		case kBNEZ:
			if regs[o.rs&31] != 0 {
				next = o.target
			}
		case kBLTZ:
			if regs[o.rs&31] < 0 {
				next = o.target
			}
		case kBGEZ:
			if regs[o.rs&31] >= 0 {
				next = o.target
			}
		case kJMP:
			next = o.target
		case kJR:
			if tgt, ok := c.Prog.Index(uint64(regs[o.rs&31])); ok {
				next = int32(tgt)
			} else {
				next = pcDeopt
			}
		case kHALT:
			c.Halted = true
		case kADDI_BNEZ:
			regs[o.rd&31] = regs[o.rs&31] + o.imm
			if regs[o.rs2&31] != 0 {
				next = o.target
			}
		case kSUB_BLTZ:
			regs[o.rd&31] = regs[o.rs&31] - regs[o.rt&31]
			if regs[o.rs2&31] < 0 {
				next = o.target
			}
		case kANDI_BEQZ:
			regs[o.rd&31] = regs[o.rs&31] & o.imm
			if regs[o.rs2&31] == 0 {
				next = o.target
			}
		case kCMPLT_BNEZ:
			regs[o.rd&31] = b2i(regs[o.rs&31] < regs[o.rt&31])
			if regs[o.rs2&31] != 0 {
				next = o.target
			}
		default: // kDeopt
			next = pcDeopt
		}
		if next == pcDeopt {
			// Fault or unprovable encoding: one interpreter Step reproduces
			// the exact error (and state, if it somehow succeeds).
			c.PC = t
			if err := c.Step(); err != nil {
				return n, err
			}
			n++
			continue
		}
		c.PC = int(next)
		n += uint64(o.adv)
		c.Retired += uint64(o.adv)
	}
	return n, nil
}
