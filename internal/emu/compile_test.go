package emu_test

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// The differential suite: the threaded-code engine must be architecturally
// indistinguishable from the Step interpreter — registers, PC, halt flag,
// retire count, memory image, Arch checkpoints and error values all equal —
// over every workload kernel and over seeded random programs exercising the
// fault paths the kernels never hit.

// diffState compares two CPUs after equal-budget runs.
func diffState(t *testing.T, label string, ic, cc *emu.CPU, ni, nc uint64, ei, ec error) {
	t.Helper()
	if ni != nc {
		t.Errorf("%s: executed %d (interp) vs %d (compiled) instructions", label, ni, nc)
	}
	if (ei == nil) != (ec == nil) || (ei != nil && ei.Error() != ec.Error()) {
		t.Errorf("%s: error %v (interp) vs %v (compiled)", label, ei, ec)
	}
	if ic.Arch() != cc.Arch() {
		t.Errorf("%s: Arch diverged:\n  interp   %+v\n  compiled %+v", label, ic.Arch(), cc.Arch())
	}
	if !mem.Equal(ic.Mem, cc.Mem) {
		t.Errorf("%s: memory images diverged", label)
	}
}

func TestCompiledMatchesInterpWorkloads(t *testing.T) {
	const budget = 30_000
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, img := w.Build()
			ic := emu.New(prog, img.Fork())
			ic.Exec = emu.ExecInterp
			cc := emu.New(prog, img.Fork())
			cc.Exec = emu.ExecCompiled

			ni, ei := ic.Run(budget)
			nc, ec := cc.Run(budget)
			diffState(t, w.Name, ic, cc, ni, nc, ei, ec)

			// Resume both mid-program in smaller chunks: budget exhaustion
			// parks the compiled PC mid-superblock, and the next Run must
			// pick up exactly there.
			for i := 0; i < 10; i++ {
				ni, ei = ic.Run(777)
				nc, ec = cc.Run(777)
				diffState(t, w.Name+"/chunked", ic, cc, ni, nc, ei, ec)
			}
		})
	}
}

// TestCompiledEngineAlternation runs one workload alternating engines on the
// same CPU — interpreter and compiled code share one architectural state
// machine, so switching mid-program (even mid-superblock) must be seamless.
func TestCompiledEngineAlternation(t *testing.T) {
	w, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog, img := w.Build()
	ref := emu.New(prog, img.Fork())
	ref.Exec = emu.ExecInterp
	mix := emu.New(prog, img.Fork())

	var total uint64
	for i, chunk := range []uint64{1, 3, 998, 41, 7, 5000, 1, 1, 2500} {
		if i%2 == 0 {
			mix.Exec = emu.ExecCompiled
		} else {
			mix.Exec = emu.ExecInterp
		}
		if _, err := mix.Run(chunk); err != nil {
			t.Fatal(err)
		}
		total += chunk
	}
	if _, err := ref.Run(total); err != nil {
		t.Fatal(err)
	}
	diffState(t, "alternation", ref, mix, 0, 0, nil, nil)
}

// randProgram generates a seeded random program: all opcodes (plus a few
// invalid ones), full register range including r31, branch targets that may
// fall just outside the program, and JR through registers that only
// sometimes hold valid text addresses.
func randProgram(rng *rand.Rand, n int) *isa.Program {
	p := &isa.Program{TextBase: 0x1000, Insts: make([]isa.Inst, n)}
	for i := range p.Insts {
		in := isa.Inst{
			Op: isa.Op(rng.Intn(int(isa.HALT) + 2)), // +2: occasionally invalid
			Rd: isa.Reg(rng.Intn(isa.NumRegs)),
			Rs: isa.Reg(rng.Intn(isa.NumRegs)),
			Rt: isa.Reg(rng.Intn(isa.NumRegs)),
		}
		switch rng.Intn(3) {
		case 0:
			in.Imm = int64(rng.Intn(64) * 8) // plausible address offsets
		case 1:
			in.Imm = int64(rng.Intn(257) - 128)
		case 2:
			in.Imm = rng.Int63() - rng.Int63()
		}
		if in.IsDirect() {
			in.Target = rng.Intn(n+2) - 1 // may be -1 or n: fault paths
		}
		// HALT everywhere makes runs too short; thin it out.
		if in.Op == isa.HALT && rng.Intn(4) != 0 {
			in.Op = isa.ADDI
		}
		p.Insts[i] = in
	}
	return p
}

func TestCompiledMatchesInterpRandom(t *testing.T) {
	const (
		seeds  = 300
		progLn = 48
		budget = 2_000
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := randProgram(rng, progLn)

		var regs [isa.NumRegs]int64
		for i := range regs {
			switch rng.Intn(3) {
			case 0:
				regs[i] = int64(rng.Intn(4096))
			case 1:
				// Valid text addresses make some JRs succeed.
				regs[i] = int64(prog.PC(rng.Intn(progLn)))
			case 2:
				regs[i] = rng.Int63() - rng.Int63()
			}
		}
		regs[isa.RZero] = 0
		img := mem.New()
		for i := 0; i < 64; i++ {
			img.WriteInt64(uint64(rng.Intn(4096))*8, rng.Int63()-rng.Int63())
		}
		img.Freeze()

		ic := emu.New(prog, img.Fork())
		ic.Exec = emu.ExecInterp
		ic.Regs = regs
		cc := emu.New(prog, img.Fork())
		cc.Exec = emu.ExecCompiled
		cc.Regs = regs

		// Chunked on the compiled side: odd chunk sizes exercise the
		// mid-superblock budget path against a one-shot interpreter run.
		ni, ei := ic.Run(budget)
		var (
			nc uint64
			ec error
		)
		for nc < budget && ec == nil && !cc.Halted {
			chunk := uint64(1 + rng.Intn(97))
			if chunk > budget-nc {
				chunk = budget - nc
			}
			var k uint64
			k, ec = cc.Run(chunk)
			nc += k
			if ec == nil && k < chunk {
				break // halted
			}
		}
		diffState(t, prog.Insts[0].String(), ic, cc, ni, nc, ei, ec)
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

// TestCompiledFaults pins the compiled engine's fault behavior to the
// interpreter's exact errors.
func TestCompiledFaults(t *testing.T) {
	cases := []struct {
		name string
		prog *isa.Program
		prep func(c *emu.CPU)
	}{
		{"jr-invalid", &isa.Program{TextBase: 0x1000, Insts: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs: 31, Imm: 12345},
			{Op: isa.JR, Rs: 1},
		}}, nil},
		{"run-off-end", &isa.Program{TextBase: 0x1000, Insts: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1},
			{Op: isa.ADDI, Rd: 2, Rs: 2, Imm: 2},
		}}, nil},
		{"branch-negative", &isa.Program{TextBase: 0x1000, Insts: []isa.Inst{
			{Op: isa.JMP, Target: -3},
		}}, nil},
		{"invalid-opcode", &isa.Program{TextBase: 0x1000, Insts: []isa.Inst{
			{Op: isa.Op(200)},
		}}, nil},
		{"halt-then-run", &isa.Program{TextBase: 0x1000, Insts: []isa.Inst{
			{Op: isa.HALT},
		}}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ic := emu.New(tc.prog, mem.New())
			ic.Exec = emu.ExecInterp
			cc := emu.New(tc.prog, mem.New())
			cc.Exec = emu.ExecCompiled
			if tc.prep != nil {
				tc.prep(ic)
				tc.prep(cc)
			}
			ni, ei := ic.Run(100)
			nc, ec := cc.Run(100)
			diffState(t, tc.name, ic, cc, ni, nc, ei, ec)
			// And again: running a halted/faulted CPU must agree too.
			ni, ei = ic.Run(100)
			nc, ec = cc.Run(100)
			diffState(t, tc.name+"/again", ic, cc, ni, nc, ei, ec)
		})
	}
}

func TestParseExecMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want emu.ExecMode
		err  bool
	}{
		{"auto", emu.ExecAuto, false},
		{"", emu.ExecAuto, false},
		{"interp", emu.ExecInterp, false},
		{"compiled", emu.ExecCompiled, false},
		{"fast", 0, true},
	} {
		got, err := emu.ParseExecMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("emu.ParseExecMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestOnRetireForcesInterp verifies the instrumentation contract: a hooked
// CPU observes every retired instruction even when pinned to emu.ExecCompiled.
func TestOnRetireForcesInterp(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r1, 5
	loop:
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	c := emu.New(prog, mem.New())
	c.Exec = emu.ExecCompiled
	var seen int
	c.OnRetire = func(r emu.Retire) { seen++ }
	n, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(seen) != n {
		t.Errorf("OnRetire saw %d retires, Run reported %d", seen, n)
	}
}

// TestCompileCached verifies the decode-once contract: compiling the same
// Program twice returns the same threaded-code object.
func TestCompileCached(t *testing.T) {
	prog := isa.MustAssemble("halt")
	if emu.Compile(prog) != emu.Compile(prog) {
		t.Error("emu.Compile(prog) is not cached per Program")
	}
}
