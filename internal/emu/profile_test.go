package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.add(0)
	h.add(1)
	h.add(DeltaBuckets - 2)
	h.add(DeltaBuckets - 1) // overflow bucket
	h.add(1000)             // overflow bucket
	if h[0] != 1 || h[1] != 1 || h[DeltaBuckets-2] != 1 || h[DeltaBuckets-1] != 2 {
		t.Errorf("histogram = %v", h)
	}
	cdf := h.CDF()
	if cdf[DeltaBuckets-1] != 1.0 {
		t.Errorf("CDF tail = %v", cdf[DeltaBuckets-1])
	}
	if cdf[0] != 0.2 {
		t.Errorf("CDF head = %v", cdf[0])
	}
	var empty histogram
	if c := empty.CDF(); c[DeltaBuckets-1] != 0 {
		t.Error("empty CDF should be zero")
	}
}

func TestAbsBlocks(t *testing.T) {
	cases := []struct {
		d    int64
		want uint64
	}{{0, 0}, {63, 0}, {64, 1}, {-64, 1}, {-1, 0}, {6400, 100}}
	for _, c := range cases {
		if got := absBlocks(c.d); got != c.want {
			t.Errorf("absBlocks(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestSnapRing(t *testing.T) {
	var r snapRing
	var regs [isa.NumRegs]int64
	for i := int64(1); i <= 5; i++ {
		regs[1] = i * 100
		r.push(&regs)
	}
	if s, ok := r.at(1); !ok || s[1] != 500 {
		t.Errorf("at(1) = %v", s)
	}
	if s, ok := r.at(5); !ok || s[1] != 100 {
		t.Errorf("at(5) = %v", s)
	}
	if _, ok := r.at(6); ok {
		t.Error("at(6) should not exist yet")
	}
}

func TestEARing(t *testing.T) {
	var r eaRing
	r.push(10, 0x100)
	r.push(12, 0x200)
	r.push(15, 0x300)
	if ea, ok := r.before(15, 3); !ok || ea != 0x200 {
		t.Errorf("before(15,3) = %#x,%v want 0x200", ea, ok)
	}
	if ea, ok := r.before(15, 1); !ok || ea != 0x200 {
		t.Errorf("before(15,1) = %#x,%v", ea, ok)
	}
	if ea, ok := r.before(16, 1); !ok || ea != 0x300 {
		t.Errorf("before(16,1) = %#x,%v", ea, ok)
	}
	if _, ok := r.before(10, 1); ok {
		t.Error("nothing strictly before bb 9")
	}
}

// A strided loop whose base register advances 8 bytes per basic block: the
// register CDF at 1 BB must be fully within one block, and at 12 BB the
// delta is 96 B = 1 block.
func TestDeltaProfileStridedLoop(t *testing.T) {
	prog := isa.MustAssemble(`
		movi r16, 0x10000
		movi r10, 200
	loop:
		ld   r1, 0(r16)
		addi r16, r16, 8
		addi r10, r10, -1
		bnez r10, loop
		halt
	`)
	cpu := New(prog, mem.New())
	p := NewDeltaProfile()
	p.Attach(cpu)
	if _, err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	reg1 := p.RegCDF(0)
	if reg1[1] < 0.99 {
		t.Errorf("1BB register CDF at 1 block = %.3f, want ≈1", reg1[1])
	}
	reg12 := p.RegCDF(2)
	if reg12[2] < 0.99 { // 12 BB × 8 B = 96 B < 2 blocks
		t.Errorf("12BB register CDF at 2 blocks = %.3f", reg12[2])
	}
	// EA deltas: consecutive executions 8 B apart → within 1 block at 1 BB.
	ea1 := p.EACDF(0)
	if ea1[1] < 0.99 {
		t.Errorf("1BB EA CDF at 1 block = %.3f", ea1[1])
	}
}

// A pointer-chasing load must show wide EA deltas even at depth 1.
func TestDeltaProfilePointerChase(t *testing.T) {
	image := mem.New()
	// A 4-node cycle spread far apart.
	addrs := []uint64{0x10000, 0x90000, 0x30000, 0xD0000}
	for i, a := range addrs {
		image.WriteInt64(a, int64(addrs[(i+1)%len(addrs)]))
	}
	prog := isa.MustAssemble(`
		movi r21, 0x10000
		movi r10, 100
	loop:
		ld   r21, 0(r21)
		addi r10, r10, -1
		bnez r10, loop
		halt
	`)
	cpu := New(prog, image)
	p := NewDeltaProfile()
	p.Attach(cpu)
	if _, err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	ea1 := p.EACDF(0)
	if ea1[DeltaBuckets-2] > 0.01 {
		t.Errorf("pointer-chase EA deltas should all overflow: CDF@32 = %.3f", ea1[DeltaBuckets-2])
	}
}

func TestFetchGroupProfile(t *testing.T) {
	// Loop body of exactly 4 instructions ending in a taken branch: every
	// group carries exactly one branch.
	prog := isa.MustAssemble(`
		movi r10, 50
	loop:
		addi r1, r1, 1
		addi r2, r2, 1
		addi r10, r10, -1
		bnez r10, loop
		halt
	`)
	cpu := New(prog, mem.New())
	p := NewFetchGroupProfile(4)
	p.Attach(cpu)
	if _, err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	bd := p.BranchBreakdown()
	if bd[0] < 0.95 {
		t.Errorf("1-branch fraction = %.3f, want ≈1 (%v)", bd[0], p.Groups)
	}
	if bd[3] != 0 {
		t.Errorf("4-branch groups impossible here: %v", p.Groups)
	}
}

func TestFetchGroupProfileDenseBranches(t *testing.T) {
	// Back-to-back not-taken branches pack multiple branches per group.
	prog := isa.MustAssemble(`
		movi r1, 1
		movi r10, 50
	loop:
		beqz r1, skip    ; never taken
		beqz r1, skip
		beqz r1, skip
		addi r10, r10, -1
		bnez r10, loop
	skip:
		halt
	`)
	cpu := New(prog, mem.New())
	p := NewFetchGroupProfile(4)
	p.Attach(cpu)
	if _, err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	bd := p.BranchBreakdown()
	if bd[2]+bd[3] < 0.3 {
		t.Errorf("dense branch code should show 3+/group: %v (groups %v)", bd, p.Groups)
	}
	var zero float64
	for _, v := range bd {
		zero += v
	}
	if zero < 0.999 || zero > 1.001 {
		t.Errorf("breakdown not normalized: %v", bd)
	}
}

func TestFetchGroupEmpty(t *testing.T) {
	p := NewFetchGroupProfile(4)
	bd := p.BranchBreakdown()
	for _, v := range bd {
		if v != 0 {
			t.Error("empty profile should be all zero")
		}
	}
}
