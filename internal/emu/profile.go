package emu

import (
	"repro/internal/isa"
)

// This file implements the instrumentation behind the paper's
// characterization figures:
//
//   - Figure 3a: cumulative distribution of register-content variation across
//     1, 3 and 12 basic blocks, in units of 64-byte cache blocks, for the
//     registers loads use as address bases.
//   - Figure 3b: the same distribution for load effective addresses.
//   - Figure 7: breakdown of the number of branch instructions fetched per
//     cycle by a 4-wide front end.

// BlockBytes is the cache-block granularity the deltas are expressed in.
const BlockBytes = 64

// DeltaBuckets is the number of histogram buckets; the final bucket
// aggregates all deltas ≥ DeltaBuckets-1 blocks (the paper's "all ≥ 33").
const DeltaBuckets = 34

// DeltaDepths are the basic-block distances the paper reports.
var DeltaDepths = []int{1, 3, 12}

// DeltaProfile accumulates Figure 3 statistics over one or more runs.
type DeltaProfile struct {
	// Reg[d][b] counts load-base registers whose content moved b blocks
	// across DeltaDepths[d] basic blocks. EA is the same for effective
	// addresses.
	Reg [len3]histogram
	EA  [len3]histogram

	snaps    snapRing
	bbCount  int
	loadHist map[int]*eaRing // static load index -> recent (bb, ea)
}

const len3 = 3

type histogram [DeltaBuckets]uint64

func (h *histogram) add(deltaBlocks uint64) {
	if deltaBlocks >= DeltaBuckets-1 {
		h[DeltaBuckets-1]++
		return
	}
	h[deltaBlocks]++
}

// CDF returns the cumulative distribution of the histogram, one value per
// bucket, in [0,1]. A zero-sample histogram returns all zeros.
func (h *histogram) CDF() [DeltaBuckets]float64 {
	var out [DeltaBuckets]float64
	var total uint64
	for _, c := range h {
		total += c
	}
	if total == 0 {
		return out
	}
	var cum uint64
	for i, c := range h {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// Merge folds another profile's histograms into p, so profiles collected
// independently (one per workload, possibly concurrently) aggregate into
// the suite-wide distribution. Histogram addition commutes, so the merged
// totals are independent of merge order. Only the accumulated counts merge;
// the per-run snapshot state (snapshot ring, load history) is not carried
// over — which is also why per-workload profiles are preferable to
// attaching one profile across programs whose static load indexes collide.
func (p *DeltaProfile) Merge(o *DeltaProfile) {
	for d := 0; d < len3; d++ {
		for b := 0; b < DeltaBuckets; b++ {
			p.Reg[d][b] += o.Reg[d][b]
			p.EA[d][b] += o.EA[d][b]
		}
	}
}

// RegCDF and EACDF return the Figure 3a / 3b cumulative distributions for
// the depth index d (0 → 1 BB, 1 → 3 BB, 2 → 12 BB).
func (p *DeltaProfile) RegCDF(d int) [DeltaBuckets]float64 { return p.Reg[d].CDF() }
func (p *DeltaProfile) EACDF(d int) [DeltaBuckets]float64  { return p.EA[d].CDF() }

// snapRing keeps register-file snapshots at the last maxDepth+1 basic-block
// boundaries.
type snapRing struct {
	buf  [16][isa.NumRegs]int64 // 16 > max depth 12
	head int                    // next write slot
	n    int
}

func (r *snapRing) push(regs *[isa.NumRegs]int64) {
	r.buf[r.head] = *regs
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// at returns the snapshot taken depth boundaries ago (1 = most recent).
func (r *snapRing) at(depth int) (*[isa.NumRegs]int64, bool) {
	if depth > r.n {
		return nil, false
	}
	i := (r.head - depth + 2*len(r.buf)) % len(r.buf)
	return &r.buf[i], true
}

// eaRing keeps the recent executions of one static load.
type eaRing struct {
	bb      [32]int
	ea      [32]uint64
	head, n int
}

func (r *eaRing) push(bb int, ea uint64) {
	r.bb[r.head], r.ea[r.head] = bb, ea
	r.head = (r.head + 1) % len(r.bb)
	if r.n < len(r.bb) {
		r.n++
	}
}

// before returns the EA of the most recent execution at least depth basic
// blocks before bb.
func (r *eaRing) before(bb, depth int) (uint64, bool) {
	for k := 1; k <= r.n; k++ {
		i := (r.head - k + 2*len(r.bb)) % len(r.bb)
		if r.bb[i] <= bb-depth {
			return r.ea[i], true
		}
	}
	return 0, false
}

// NewDeltaProfile returns an empty Figure 3 profile.
func NewDeltaProfile() *DeltaProfile {
	return &DeltaProfile{loadHist: make(map[int]*eaRing)}
}

// Attach instruments the CPU. The existing OnRetire hook, if any, is
// replaced.
func (p *DeltaProfile) Attach(c *CPU) {
	c.OnRetire = func(r Retire) { p.observe(c, r) }
}

func (p *DeltaProfile) observe(c *CPU, r Retire) {
	if r.Inst.IsLoad() {
		ring := p.loadHist[r.Index]
		if ring == nil {
			ring = &eaRing{}
			p.loadHist[r.Index] = ring
		}
		for d, depth := range DeltaDepths {
			if prev, ok := ring.before(p.bbCount, depth); ok {
				p.EA[d].add(absBlocks(int64(r.EA) - int64(prev)))
			}
		}
		ring.push(p.bbCount, r.EA)
	}
	if r.Inst.IsControl() {
		// Figure 3a samples register *content* variation: at each basic
		// block boundary, compare every architectural register against its
		// value 1/3/12 boundaries ago. (The hardwired zero register is
		// excluded — it would inflate the zero bucket.)
		for d, depth := range DeltaDepths {
			snap, ok := p.snaps.at(depth)
			if !ok {
				continue
			}
			for reg := 0; reg < isa.NumRegs-1; reg++ {
				p.Reg[d].add(absBlocks(c.Regs[reg] - snap[reg]))
			}
		}
		p.bbCount++
		p.snaps.push(&c.Regs)
	}
}

func absBlocks(delta int64) uint64 {
	if delta < 0 {
		delta = -delta
	}
	return uint64(delta) / BlockBytes
}

// FetchGroupProfile accumulates the Figure 7 statistics: among fetch cycles
// that deliver at least one branch, how many deliver 1, 2, 3 or 4?
type FetchGroupProfile struct {
	Width int // fetch width (the paper uses 4)

	// Groups[k] counts fetch groups containing k control instructions,
	// k in 0..Width.
	Groups []uint64

	inGroup  int
	branches int
}

// NewFetchGroupProfile returns a profile for the given fetch width.
func NewFetchGroupProfile(width int) *FetchGroupProfile {
	return &FetchGroupProfile{Width: width, Groups: make([]uint64, width+1)}
}

// Attach instruments the CPU. The existing OnRetire hook, if any, is
// replaced.
func (p *FetchGroupProfile) Attach(c *CPU) {
	c.OnRetire = func(r Retire) { p.observe(r) }
}

func (p *FetchGroupProfile) observe(r Retire) {
	p.inGroup++
	if r.Inst.IsControl() {
		p.branches++
	}
	// A fetch group ends when it is full or redirected by taken control.
	if p.inGroup == p.Width || (r.Inst.IsControl() && r.Taken) {
		p.Groups[p.branches]++
		p.inGroup, p.branches = 0, 0
	}
}

// BranchBreakdown returns, over groups containing at least one control
// instruction, the fraction containing exactly 1..Width of them.
func (p *FetchGroupProfile) BranchBreakdown() []float64 {
	var total uint64
	for k := 1; k <= p.Width; k++ {
		total += p.Groups[k]
	}
	out := make([]float64, p.Width)
	if total == 0 {
		return out
	}
	for k := 1; k <= p.Width; k++ {
		out[k-1] = float64(p.Groups[k]) / float64(total)
	}
	return out
}
