package emu_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// benchInsts is the dynamic instruction count per benchmark iteration, so
// ns/op ÷ benchInsts is ns per emulated instruction.
const benchInsts = 10_000

// aluProgram is a dense ALU kernel: a long straight-line body of fusable
// register arithmetic closed by a decrement-and-branch back edge, with no
// memory traffic. It isolates instruction dispatch — the cost threaded-code
// compilation exists to remove — from the mem-package access costs the two
// engines share, so BenchmarkEmu*/alu is the dispatch-speedup measure.
func aluProgram() (*isa.Program, *mem.Memory) {
	// Eight independent three-register accumulator groups: dependence chains
	// are loop-carried per register (64 instructions apart), so the kernel
	// has the instruction-level parallelism straight-line code really has
	// and measures dispatch throughput, not one serial data chain.
	var sb strings.Builder
	sb.WriteString("movi r1, 3\nmovi r2, 5\nmovi r0, 100000000\ntop:\n")
	for g := 0; g < 8; g++ {
		a, b, c := 3+3*g, 4+3*g, 5+3*g
		fmt.Fprintf(&sb, `
			addi r%[1]d, r%[1]d, %[4]d
			addi r%[2]d, r%[2]d, 7
			add r%[3]d, r%[3]d, r1
			add r%[1]d, r%[1]d, r2
			slli r%[2]d, r%[2]d, 1
			add r%[3]d, r%[3]d, r1
			andi r%[1]d, r%[1]d, 8191
			add r%[2]d, r%[2]d, r2
		`, a, b, c, g+1)
	}
	sb.WriteString("addi r0, r0, -1\nbnez r0, top\nhalt\n")
	return isa.MustAssemble(sb.String()), mem.New()
}

func benchWorkload(b *testing.B, name string) (*isa.Program, *mem.Memory) {
	if name == "alu" {
		return aluProgram()
	}
	w, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, img := w.Build()
	return prog, img
}

func benchEmu(b *testing.B, name string, mode emu.ExecMode) {
	prog, img := benchWorkload(b, name)
	img.Freeze()
	restart := func() *emu.CPU {
		c := emu.New(prog, img.Fork())
		c.Exec = mode
		return c
	}
	c := restart()
	if _, err := c.Run(benchInsts); err != nil { // warm caches, touch pages
		b.Fatal(err)
	}
	b.SetBytes(benchInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Halted {
			b.StopTimer()
			c = restart()
			b.StartTimer()
		}
		if _, err := c.Run(benchInsts); err != nil {
			b.Fatal(err)
		}
	}
}

// The benchstat pair guarding the threaded-code speedup (ISSUE 6 wants
// compiled ≥5× interp): alu is the pure dispatch measure, gamess is a
// compute kernel with L1-resident loads, mcf is a pointer chase and lbm a
// stencil (both bounded partly by internal/mem access costs, which the two
// engines share).

var emuBenchWorkloads = []string{"alu", "gamess", "mcf", "lbm"}

func BenchmarkEmuInterp(b *testing.B) {
	for _, name := range emuBenchWorkloads {
		b.Run(name, func(b *testing.B) { benchEmu(b, name, emu.ExecInterp) })
	}
}

func BenchmarkEmuCompiled(b *testing.B) {
	for _, name := range emuBenchWorkloads {
		b.Run(name, func(b *testing.B) { benchEmu(b, name, emu.ExecCompiled) })
	}
}
