// Package emu is the functional (architectural) emulator for the repository's
// ISA. It executes programs in order with no timing model and serves three
// roles: the ground truth for differential testing of the out-of-order core,
// the instrumentation vehicle for the paper's characterization figures
// (Figures 3 and 7), and a fast way for workload authors to sanity-check
// kernels.
package emu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Retire describes one architecturally executed instruction, delivered to
// the OnRetire hook after its effects are applied.
type Retire struct {
	Index int    // instruction index
	PC    uint64 // byte address of the instruction
	Inst  isa.Inst
	EA    uint64 // effective address (memory ops only)
	Taken bool   // control ops: whether control transferred
	Next  int    // instruction index executed next
}

// CPU is a functional core bound to one program and address space.
type CPU struct {
	Prog *isa.Program
	Mem  *mem.Memory

	Regs [isa.NumRegs]int64
	PC   int // instruction index

	Halted  bool
	Retired uint64

	// OnRetire, when non-nil, observes every executed instruction. A hooked
	// CPU always runs on the interpreter (DESIGN.md §5d).
	OnRetire func(r Retire)

	// Exec selects the execution engine for Run. The zero value ExecAuto
	// resolves to DefaultExec (compiled, unless -emuloop overrides it).
	Exec ExecMode
}

// New returns a CPU at the program entry with zeroed registers.
func New(p *isa.Program, m *mem.Memory) *CPU {
	return &CPU{Prog: p, Mem: m}
}

// ErrHalted is returned by Step once the program has executed HALT.
var ErrHalted = errors.New("emu: cpu halted")

// Version identifies the emulator's architectural semantics. Durable
// fast-forward checkpoints (internal/store) carry it in their cache key:
// bump it whenever a change could alter the architectural state a prefix
// execution produces — instruction semantics, retire accounting, memory
// write behaviour — so stale on-disk checkpoints invalidate cleanly. Pure
// performance work (the threaded-code engine, dispatch changes) that keeps
// interpreter/compiled bit-identity does not require a bump.
const Version = 1

// Arch is the architectural state of a functional core: everything needed
// to resume execution mid-program, and nothing microarchitectural. It is
// the unit of state a fast-forward checkpoint captures (internal/ckpt); the
// out-of-order core can boot from it (cpu.Core.BootArch). The memory image
// travels separately — Arch deliberately holds no reference to it, so one
// Arch can pair with many copy-on-write forks of the same image.
type Arch struct {
	Regs    [isa.NumRegs]int64
	PC      int // next instruction index
	Halted  bool
	Retired uint64
}

// Arch exports the CPU's current architectural state.
func (c *CPU) Arch() Arch {
	return Arch{Regs: c.Regs, PC: c.PC, Halted: c.Halted, Retired: c.Retired}
}

// SetArch overwrites the CPU's architectural state, resuming from a
// checkpoint. The bound memory image must be the one that state was
// captured against (or an equivalent fork) for execution to be meaningful.
func (c *CPU) SetArch(a Arch) {
	c.Regs, c.PC, c.Halted, c.Retired = a.Regs, a.PC, a.Halted, a.Retired
}

// Step executes one instruction. It returns ErrHalted after HALT and a
// descriptive error on an invalid PC or indirect-jump target; the error
// constructors are hatched — they fire at most once per run, on the way out.
//
//bfetch:hotpath
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	if c.PC < 0 || c.PC >= len(c.Prog.Insts) {
		return fmt.Errorf("emu: pc index %d out of range", c.PC) //bfetch:alloc-ok
	}
	idx := c.PC
	in := c.Prog.Insts[idx]
	next := idx + 1
	var (
		ea    uint64
		taken bool
	)

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		c.set(in.Rd, c.Regs[in.Rs]+c.Regs[in.Rt])
	case isa.SUB:
		c.set(in.Rd, c.Regs[in.Rs]-c.Regs[in.Rt])
	case isa.MUL:
		c.set(in.Rd, c.Regs[in.Rs]*c.Regs[in.Rt])
	case isa.AND:
		c.set(in.Rd, c.Regs[in.Rs]&c.Regs[in.Rt])
	case isa.OR:
		c.set(in.Rd, c.Regs[in.Rs]|c.Regs[in.Rt])
	case isa.XOR:
		c.set(in.Rd, c.Regs[in.Rs]^c.Regs[in.Rt])
	case isa.SLL:
		c.set(in.Rd, shiftL(c.Regs[in.Rs], c.Regs[in.Rt]))
	case isa.SRL:
		c.set(in.Rd, shiftRL(c.Regs[in.Rs], c.Regs[in.Rt]))
	case isa.SRA:
		c.set(in.Rd, shiftRA(c.Regs[in.Rs], c.Regs[in.Rt]))
	case isa.CMPEQ:
		c.set(in.Rd, b2i(c.Regs[in.Rs] == c.Regs[in.Rt]))
	case isa.CMPLT:
		c.set(in.Rd, b2i(c.Regs[in.Rs] < c.Regs[in.Rt]))
	case isa.CMPLE:
		c.set(in.Rd, b2i(c.Regs[in.Rs] <= c.Regs[in.Rt]))
	case isa.ADDI:
		c.set(in.Rd, c.Regs[in.Rs]+in.Imm)
	case isa.MULI:
		c.set(in.Rd, c.Regs[in.Rs]*in.Imm)
	case isa.ANDI:
		c.set(in.Rd, c.Regs[in.Rs]&in.Imm)
	case isa.ORI:
		c.set(in.Rd, c.Regs[in.Rs]|in.Imm)
	case isa.XORI:
		c.set(in.Rd, c.Regs[in.Rs]^in.Imm)
	case isa.SLLI:
		c.set(in.Rd, shiftL(c.Regs[in.Rs], in.Imm))
	case isa.SRLI:
		c.set(in.Rd, shiftRL(c.Regs[in.Rs], in.Imm))
	case isa.SRAI:
		c.set(in.Rd, shiftRA(c.Regs[in.Rs], in.Imm))
	case isa.CMPEQI:
		c.set(in.Rd, b2i(c.Regs[in.Rs] == in.Imm))
	case isa.CMPLTI:
		c.set(in.Rd, b2i(c.Regs[in.Rs] < in.Imm))
	case isa.MOVI:
		c.set(in.Rd, in.Imm)
	case isa.LD:
		ea = uint64(c.Regs[in.Rs] + in.Imm)
		c.set(in.Rd, c.Mem.ReadInt64(ea))
	case isa.ST:
		ea = uint64(c.Regs[in.Rs] + in.Imm)
		c.Mem.WriteInt64(ea, c.Regs[in.Rt])
	case isa.BEQZ:
		taken = c.Regs[in.Rs] == 0
	case isa.BNEZ:
		taken = c.Regs[in.Rs] != 0
	case isa.BLTZ:
		taken = c.Regs[in.Rs] < 0
	case isa.BGEZ:
		taken = c.Regs[in.Rs] >= 0
	case isa.JMP:
		taken = true
	case isa.JR:
		taken = true
		tgt, ok := c.Prog.Index(uint64(c.Regs[in.Rs]))
		if !ok {
			return fmt.Errorf("emu: jr %s to invalid text address %#x", in.Rs, uint64(c.Regs[in.Rs])) //bfetch:alloc-ok
		}
		next = tgt
	case isa.HALT:
		c.Halted = true
	default:
		return fmt.Errorf("emu: invalid opcode %v at %d", in.Op, idx) //bfetch:alloc-ok
	}

	if taken && in.Op != isa.JR {
		next = in.Target
	}
	c.PC = next
	c.Retired++
	if c.OnRetire != nil {
		c.OnRetire(Retire{
			Index: idx, PC: c.Prog.PC(idx), Inst: in, EA: ea, Taken: taken, Next: next,
		})
	}
	return nil
}

// Run executes up to maxInsts instructions, stopping early at HALT. It
// returns the number of instructions executed and the first error other than
// a clean halt.
//
// Run dispatches to the threaded-code engine (Compile) unless the CPU is
// instrumented with OnRetire or pinned to the interpreter via Exec /
// DefaultExec; both engines maintain the same architectural state machine,
// so runs may even alternate engines mid-program.
func (c *CPU) Run(maxInsts uint64) (uint64, error) {
	if c.useCompiled() {
		return Compile(c.Prog).run(c, maxInsts)
	}
	var n uint64
	for n < maxInsts && !c.Halted {
		if err := c.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (c *CPU) set(r isa.Reg, v int64) {
	if r != isa.RZero {
		c.Regs[r] = v
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Shift semantics: shift amounts are taken modulo 64, matching typical
// hardware; both simulators must agree, so they share these helpers.

func shiftL(v, by int64) int64  { return v << (uint64(by) & 63) }
func shiftRL(v, by int64) int64 { return int64(uint64(v) >> (uint64(by) & 63)) }
func shiftRA(v, by int64) int64 { return v >> (uint64(by) & 63) }

// Eval applies one instruction's ALU semantics to operand values, shared
// with the out-of-order core so the two simulators cannot diverge on
// arithmetic. Memory and control ops are handled by each core's own logic.
//
//bfetch:hotpath
func Eval(op isa.Op, rs, rt, imm int64) (int64, bool) {
	switch op {
	case isa.ADD:
		return rs + rt, true
	case isa.SUB:
		return rs - rt, true
	case isa.MUL:
		return rs * rt, true
	case isa.AND:
		return rs & rt, true
	case isa.OR:
		return rs | rt, true
	case isa.XOR:
		return rs ^ rt, true
	case isa.SLL:
		return shiftL(rs, rt), true
	case isa.SRL:
		return shiftRL(rs, rt), true
	case isa.SRA:
		return shiftRA(rs, rt), true
	case isa.CMPEQ:
		return b2i(rs == rt), true
	case isa.CMPLT:
		return b2i(rs < rt), true
	case isa.CMPLE:
		return b2i(rs <= rt), true
	case isa.ADDI:
		return rs + imm, true
	case isa.MULI:
		return rs * imm, true
	case isa.ANDI:
		return rs & imm, true
	case isa.ORI:
		return rs | imm, true
	case isa.XORI:
		return rs ^ imm, true
	case isa.SLLI:
		return shiftL(rs, imm), true
	case isa.SRLI:
		return shiftRL(rs, imm), true
	case isa.SRAI:
		return shiftRA(rs, imm), true
	case isa.CMPEQI:
		return b2i(rs == imm), true
	case isa.CMPLTI:
		return b2i(rs < imm), true
	case isa.MOVI:
		return imm, true
	}
	return 0, false
}

// BranchTaken evaluates a conditional branch's condition against a register
// value; shared with the out-of-order core.
func BranchTaken(op isa.Op, rs int64) bool {
	switch op {
	case isa.BEQZ:
		return rs == 0
	case isa.BNEZ:
		return rs != 0
	case isa.BLTZ:
		return rs < 0
	case isa.BGEZ:
		return rs >= 0
	case isa.JMP, isa.JR:
		return true
	}
	return false
}
