// Package store is the durable tier of the simulation cache: a
// content-addressed, dependency-free on-disk store for simulation artifacts,
// shared by any number of concurrent processes pointing at one directory.
//
// The in-process caches (internal/runner's fingerprint-keyed run-cache and
// checkpoint memoizer) die with the process; every repeat invocation of the
// sweep pays full price even though the deterministic fingerprint guarantees
// byte-identical answers. The store makes those caches durable: the runner
// consults it as the second tier of a two-tier lookup (memory singleflight →
// disk store → compute) and writes computed entries back, so a warm store
// turns a repeat `bfetch-bench -exp all` into disk reads.
//
// Two artifact kinds live here: full run results (sim.Result, keyed by the
// runner config fingerprint salted with a result-schema hash — see
// result.go) and fast-forward checkpoints (architectural state plus memory
// image, keyed by workload content — see ckpt.go).
//
// Durability contract (DESIGN.md §8):
//
//   - Writes are atomic: entries are written to a temp file in the store
//     directory and renamed into place, so readers — in this process or any
//     other — only ever observe absent or complete files. No locks are
//     taken; concurrent writers of the same key race benignly (identical
//     content, last rename wins).
//   - Reads are paranoid: a versioned binary header carries the format
//     version, the entry's full key, the payload length and a SHA-256
//     digest. Anything that fails validation — truncated file, flipped
//     bits, stale format, zero-length entry, wrong key — reads as a miss,
//     never as a wrong answer or a panic, and the subsequent compute
//     writes a fresh entry over it (write-back repair).
//   - Keys are content addresses: the SHA-256 of the artifact's identity
//     material. Schema or semantics changes alter the identity material,
//     so stale entries are simply never looked up again; they linger until
//     the directory is wiped, which is always safe (the store is a cache,
//     not a system of record).
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Format constants: the on-disk entry is header + payload, where the header
// is magic, format version, key length, payload length and payload digest,
// followed by the key bytes. Integers are little-endian.
const (
	formatVersion = 1
	headerFixed   = 4 + 4 + 4 + 8 + sha256.Size // magic, version, keyLen, payLen, digest
)

var magic = [4]byte{'B', 'F', 'S', 'T'}

// Store is one cache directory. The zero value is unusable; construct with
// Open. A Store is safe for concurrent use by any number of goroutines and
// coexists with other processes sharing the directory.
type Store struct {
	dir string

	hits, misses  atomic.Uint64
	writes        atomic.Uint64
	writeErrs     atomic.Uint64
	bytesRead     atomic.Uint64
	bytesWritten  atomic.Uint64
	readNanos     atomic.Int64
	corruptMisses atomic.Uint64
}

// Metrics is a snapshot of the store's activity counters.
type Metrics struct {
	Hits          uint64 // entries read and validated
	Misses        uint64 // lookups answered "not here" (absent or invalid)
	CorruptMisses uint64 // the subset of misses where a file existed but failed validation
	Writes        uint64 // entries written back
	WriteErrs     uint64 // write-backs that failed (logged, never fatal)
	BytesRead     uint64 // payload bytes of validated reads
	BytesWritten  uint64 // payload bytes written back
	ReadTime      time.Duration
}

// Open returns a Store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Metrics returns a snapshot of the activity counters.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		CorruptMisses: s.corruptMisses.Load(),
		Writes:        s.writes.Load(),
		WriteErrs:     s.writeErrs.Load(),
		BytesRead:     s.bytesRead.Load(),
		BytesWritten:  s.bytesWritten.Load(),
		ReadTime:      time.Duration(s.readNanos.Load()),
	}
}

// RegisterObs exports the store's counters into a metrics registry under
// prefix (e.g. "store."). Collectors read the live atomics, so the registry
// snapshot always reflects current activity; registering satisfies the same
// obs.Registrant contract every simulated component follows.
func (s *Store) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"hits", s.hits.Load)
	reg.Func(prefix+"misses", s.misses.Load)
	reg.Func(prefix+"corrupt_misses", s.corruptMisses.Load)
	reg.Func(prefix+"writes", s.writes.Load)
	reg.Func(prefix+"write_errs", s.writeErrs.Load)
	reg.Func(prefix+"bytes_read", s.bytesRead.Load)
	reg.Func(prefix+"bytes_written", s.bytesWritten.Load)
	reg.Func(prefix+"read_nanos", func() uint64 { return uint64(s.readNanos.Load()) })
}

// KeyOf derives the content address of an artifact from its identity
// material: the hex SHA-256 over the kind and parts, each length-framed so
// no two distinct part lists collide by concatenation.
func KeyOf(kind string, parts ...string) string {
	h := sha256.New()
	frame := func(p string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	frame(kind)
	for _, p := range parts {
		frame(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path maps (kind, key) to the entry's file, fanned out over 256
// second-level directories so huge sweeps don't pile every entry into one.
func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key)
}

// Get reads and validates the entry for (kind, key), returning its payload.
// Every failure mode — absent file, truncation, corruption, format or key
// mismatch — is a miss; Get never returns an error because the store's only
// promise is "maybe cheaper than recomputing".
func (s *Store) Get(kind, key string) ([]byte, bool) {
	start := time.Now() //bfetch:wallclock read-latency metric, reported only
	payload, ok, corrupt := s.read(s.path(kind, key), key)
	s.readNanos.Add(int64(time.Since(start))) //bfetch:wallclock read-latency metric, reported only
	if !ok {
		s.misses.Add(1)
		if corrupt {
			s.corruptMisses.Add(1)
		}
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(payload)))
	return payload, true
}

// read performs the validated read; corrupt reports that a file was present
// but failed validation (as opposed to simply being absent).
func (s *Store) read(path, key string) (payload []byte, ok, corrupt bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, false
	}
	if len(data) < headerFixed {
		return nil, false, true // zero-length or truncated inside the header
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, false, true
	}
	if binary.LittleEndian.Uint32(data[4:8]) != formatVersion {
		return nil, false, true
	}
	keyLen := binary.LittleEndian.Uint32(data[8:12])
	payLen := binary.LittleEndian.Uint64(data[12:20])
	var digest [sha256.Size]byte
	copy(digest[:], data[20:20+sha256.Size])
	rest := data[headerFixed:]
	if uint64(len(rest)) != uint64(keyLen)+payLen {
		return nil, false, true // truncated (or padded) body
	}
	if string(rest[:keyLen]) != key {
		return nil, false, true // entry for some other identity (stale schema, tampered file)
	}
	payload = rest[keyLen:]
	if sha256.Sum256(payload) != digest {
		return nil, false, true // flipped bits
	}
	return payload, true, false
}

// Put writes the entry for (kind, key) atomically: temp file in the final
// directory, then rename. An existing entry is overwritten — that is the
// write-back repair path for corrupt files. Errors are returned for the
// caller to log; they must never fail the computation that produced the
// payload.
func (s *Store) Put(kind, key string, payload []byte) error {
	err := s.put(kind, key, payload)
	if err != nil {
		s.writeErrs.Add(1)
		return err
	}
	s.writes.Add(1)
	s.bytesWritten.Add(uint64(len(payload)))
	return nil
}

func (s *Store) put(kind, key string, payload []byte) error {
	final := s.path(kind, key)
	dir := filepath.Dir(final)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	buf := make([]byte, 0, headerFixed+len(key)+len(payload))
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	digest := sha256.Sum256(payload)
	buf = append(buf, digest[:]...)
	buf = append(buf, key...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(dir, ".tmp-"+key[:8]+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
