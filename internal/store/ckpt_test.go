package store

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

const ffInsts = 20_000

// TestCheckpointRoundTripAllWorkloads is the serialization golden test:
// for every registered workload, serialize → store → restore must yield an
// architectural state and memory image bit-identical to the in-process
// Freeze/Fork checkpoint it came from. This is the property that lets a
// disk read replace a prefix emulation without any bit-identity caveats.
func TestCheckpointRoundTripAllWorkloads(t *testing.T) {
	s := open(t)
	names := workload.Names()
	if len(names) < 18 {
		t.Fatalf("workload suite shrank to %d kernels", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, err := ckpt.ByName(name, ffInsts)
			if err != nil {
				t.Fatal(err)
			}
			key, err := CheckpointKey(name, ffInsts)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := s.GetCheckpoint(key, name, ffInsts); ok {
				t.Fatal("hit before put")
			}
			if err := s.PutCheckpoint(key, orig); err != nil {
				t.Fatal(err)
			}
			back, ok := s.GetCheckpoint(key, name, ffInsts)
			if !ok {
				t.Fatal("stored checkpoint not found")
			}
			if back.Arch != orig.Arch {
				t.Errorf("architectural state differs:\n got %+v\nwant %+v", back.Arch, orig.Arch)
			}
			if !mem.Equal(back.Image(), orig.Image()) {
				t.Error("memory image differs after round trip")
			}
			if back.Workload != orig.Workload || back.FFInsts != orig.FFInsts {
				t.Errorf("identity fields differ: %q/%d vs %q/%d",
					back.Workload, back.FFInsts, orig.Workload, orig.FFInsts)
			}
		})
	}
}

// TestCheckpointRestoredSimBitIdentical runs the cycle simulator from a
// store-restored checkpoint and from the original, and requires identical
// measured results — the end-to-end consequence of the round-trip property.
func TestCheckpointRestoredSimBitIdentical(t *testing.T) {
	s := open(t)
	orig, err := ckpt.ByName("mcf", ffInsts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CheckpointKey("mcf", ffInsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint(key, orig); err != nil {
		t.Fatal(err)
	}
	back, ok := s.GetCheckpoint(key, "mcf", ffInsts)
	if !ok {
		t.Fatal("stored checkpoint not found")
	}
	cfg := sim.Default(sim.PFBFetch)
	opts := sim.RunOpts{FastForwardInsts: ffInsts, WarmupInsts: 2_000, MeasureInsts: 5_000}
	want, err := sim.RunCheckpointed(cfg, []*ckpt.Checkpoint{orig}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunCheckpointed(cfg, []*ckpt.Checkpoint{back}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.IPC[0] != want.IPC[0] {
		t.Errorf("restored-checkpoint sim diverges: %d cycles IPC %.6f vs %d cycles IPC %.6f",
			got.Cycles, got.IPC[0], want.Cycles, want.IPC[0])
	}
}

// TestCheckpointKeyInvalidation pins the key's sensitivity: the fast-forward
// length must split keys, and an unknown workload must error rather than
// fabricate one.
func TestCheckpointKeyInvalidation(t *testing.T) {
	a, err := CheckpointKey("mcf", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckpointKey("mcf", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different ff lengths share a key")
	}
	c, err := CheckpointKey("lbm", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different workloads share a key")
	}
	if a2, _ := CheckpointKey("mcf", 1000); a2 != a {
		t.Error("checkpoint key unstable")
	}
	if _, err := CheckpointKey("no-such-kernel", 1000); err == nil {
		t.Error("unknown workload produced a key")
	}
}

// TestCheckpointWrongIdentityIsAMiss: an entry whose payload names another
// (workload, ff) point — conceivable only through tampering or a key
// collision — must read as a miss.
func TestCheckpointWrongIdentityIsAMiss(t *testing.T) {
	s := open(t)
	cp, err := ckpt.ByName("mcf", ffInsts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CheckpointKey("mcf", ffInsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint(key, cp); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetCheckpoint(key, "lbm", ffInsts); ok {
		t.Error("payload for mcf answered a lookup for lbm")
	}
	if _, ok := s.GetCheckpoint(key, "mcf", ffInsts+1); ok {
		t.Error("payload for ff=20000 answered a lookup for ff=20001")
	}
}
