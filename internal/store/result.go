package store

import (
	"bytes"
	"encoding/gob"
	"reflect"

	"repro/internal/sim"
)

// KindRun is the artifact kind for full run results.
const KindRun = "run"

// resultSchema is the schema salt for run-result entries: a structural hash
// of sim.Result computed once at init. Any layout change — a renamed field,
// a new counter, a re-typed slice — changes the salt, so every existing
// on-disk result becomes unreachable and is recomputed, never misdecoded.
var resultSchema = TypeHash(reflect.TypeOf(sim.Result{}))

// ResultSchemaHash exposes the current result-schema salt (for reports and
// debugging; keys embed it automatically).
func ResultSchemaHash() string { return resultSchema }

// RunKey is the content address of one simulation point's result: the
// runner's config fingerprint (which two jobs share iff they are guaranteed
// byte-identical results) salted with the result-schema hash.
func RunKey(fingerprint string) string {
	return KeyOf(KindRun, fingerprint, resultSchema)
}

// GetResult looks up the run result stored under the given runner
// fingerprint. A decode failure — possible only if an entry passed the
// integrity check but predates a schema change that somehow left the hash
// unchanged, which the structural hash rules out short of a collision — is
// treated as a miss like every other defect.
func (s *Store) GetResult(fingerprint string) (sim.Result, bool) {
	payload, ok := s.Get(KindRun, RunKey(fingerprint))
	if !ok {
		return sim.Result{}, false
	}
	var res sim.Result
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&res); err != nil {
		s.corruptMisses.Add(1)
		return sim.Result{}, false
	}
	return res, true
}

// PutResult writes a run result back under its fingerprint.
func (s *Store) PutResult(fingerprint string, res sim.Result) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return err
	}
	return s.Put(KindRun, RunKey(fingerprint), buf.Bytes())
}
