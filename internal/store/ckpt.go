package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"reflect"

	"repro/internal/ckpt"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// KindCkpt is the artifact kind for fast-forward checkpoints.
const KindCkpt = "ckpt"

// ckptImage is the serialized form of a checkpoint: everything Restore
// needs except the program, which is rebuilt from the (deterministic)
// workload on load. The memory image travels as exported pages.
type ckptImage struct {
	Workload string
	FFInsts  uint64
	Arch     emu.Arch
	Pages    []mem.PageImage
}

// ckptSchema salts checkpoint keys with the serialized layout, exactly as
// resultSchema does for run results.
var ckptSchema = TypeHash(reflect.TypeOf(ckptImage{}))

// CheckpointKey is the content address of one (workload, ffInsts) prefix:
// the workload's built content fingerprint (program text plus initial
// image, so a changed kernel generator invalidates its checkpoints), the
// fast-forward length, the emulator's semantic version, and the entry
// schema. Building the workload to fingerprint it is cheap — builds are
// memoized per process, and the restore path rebuilds the program anyway.
func CheckpointKey(name string, ffInsts uint64) (string, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	prog, image := w.Build()
	return KeyOf(KindCkpt,
		name,
		workloadFingerprint(prog, image),
		fmt.Sprintf("ff=%d", ffInsts),
		fmt.Sprintf("emu=%d", emu.Version),
		ckptSchema,
	), nil
}

// workloadFingerprint hashes a workload's built artifacts: every
// instruction field, the text base, the symbol table (sorted), and the
// initial memory image's pages (ExportPages returns them sorted, zero
// pages canonically omitted).
func workloadFingerprint(prog *isa.Program, image *mem.Memory) string {
	h := sha256.New()
	var word [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	put(prog.TextBase)
	put(uint64(len(prog.Insts)))
	for _, in := range prog.Insts {
		put(uint64(in.Op))
		put(uint64(in.Rd))
		put(uint64(in.Rs))
		put(uint64(in.Rt))
		put(uint64(in.Imm))
		put(uint64(in.Target))
	}
	for _, sym := range sortedKeys(prog.Symbols) {
		h.Write([]byte(sym))
		put(uint64(prog.Symbols[sym]))
	}
	for _, p := range image.ExportPages() {
		put(p.PN)
		for _, w := range p.Words {
			put(w)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// GetCheckpoint looks up a serialized checkpoint by its key and
// reconstitutes it: pages become a fresh frozen memory image, the program
// is rebuilt from the workload registry, and the result is
// indistinguishable from an in-process ckpt.New of the same prefix (pinned
// bit-identical by the round-trip golden test). Any defect — including a
// payload that names a different workload than expected — is a miss.
func (s *Store) GetCheckpoint(key, name string, ffInsts uint64) (*ckpt.Checkpoint, bool) {
	payload, ok := s.Get(KindCkpt, key)
	if !ok {
		return nil, false
	}
	var img ckptImage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		s.corruptMisses.Add(1)
		return nil, false
	}
	if img.Workload != name || img.FFInsts != ffInsts {
		s.corruptMisses.Add(1)
		return nil, false
	}
	cp, err := ckpt.FromParts(img.Workload, img.FFInsts, img.Arch, mem.FromPages(img.Pages))
	if err != nil {
		s.corruptMisses.Add(1)
		return nil, false
	}
	return cp, true
}

// PutCheckpoint writes a checkpoint back under its key.
func (s *Store) PutCheckpoint(key string, cp *ckpt.Checkpoint) error {
	img := ckptImage{
		Workload: cp.Workload,
		FFInsts:  cp.FFInsts,
		Arch:     cp.Arch,
		Pages:    cp.Image().ExportPages(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return err
	}
	return s.Put(KindCkpt, key, buf.Bytes())
}
