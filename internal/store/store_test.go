package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	key := KeyOf("blob", "hello")
	payload := []byte("the artifact bytes")
	if _, ok := s.Get("blob", key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put("blob", key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("blob", key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("got %q ok=%v, want %q", got, ok, payload)
	}
	m := s.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Writes != 1 ||
		m.BytesRead != uint64(len(payload)) || m.BytesWritten != uint64(len(payload)) {
		t.Errorf("metrics %+v", m)
	}
}

// TestCorruptionIsAMiss is the robustness table the store's crash-safety
// argument rests on: every way an entry can be damaged must read as a miss
// — never a wrong payload, never a panic — and a subsequent Put must repair
// it in place.
func TestCorruptionIsAMiss(t *testing.T) {
	payload := []byte("precious simulation bytes, checksummed")
	cases := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"zero-length entry", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
		{"truncated inside header", func(p string) error {
			return os.WriteFile(p, []byte("BFST"), 0o644)
		}},
		{"truncated inside payload", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)-5], 0o644)
		}},
		{"trailing garbage", func(p string) error {
			f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			f.Write([]byte("junk"))
			return f.Close()
		}},
		{"bit-flipped payload", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-3] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}},
		{"bit-flipped digest", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[25] ^= 0x01 // inside the header's digest bytes
			return os.WriteFile(p, data, 0o644)
		}},
		{"wrong magic", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[0] = 'X'
			return os.WriteFile(p, data, 0o644)
		}},
		{"future format version", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[4] = 99
			return os.WriteFile(p, data, 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t)
			key := KeyOf("blob", "victim")
			if err := s.Put("blob", key, payload); err != nil {
				t.Fatal(err)
			}
			path := s.path("blob", key)
			if err := tc.corrupt(path); err != nil {
				t.Fatalf("corrupting: %v", err)
			}
			if got, ok := s.Get("blob", key); ok {
				t.Fatalf("corrupt entry read as a hit: %q", got)
			}
			if m := s.Metrics(); m.CorruptMisses != 1 {
				t.Errorf("corrupt miss not classified: %+v", m)
			}
			// Write-back repair: the computing side overwrites the damaged
			// file and the entry is whole again.
			if err := s.Put("blob", key, payload); err != nil {
				t.Fatalf("repair write: %v", err)
			}
			got, ok := s.Get("blob", key)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatal("repaired entry does not read back")
			}
		})
	}
}

// TestStaleSchemaIsAMiss pins the invalidation contract: entries written
// under an older schema salt live at a different content address, so the
// new code simply never finds them — and even a stale file renamed over the
// new address (the worst-case collision a wiped-and-restored directory
// could produce) is rejected by the embedded-key check.
func TestStaleSchemaIsAMiss(t *testing.T) {
	s := open(t)
	fp := "cfg|apps|opts"
	oldKey := KeyOf(KindRun, fp, "schema-v-old")
	newKey := KeyOf(KindRun, fp, "schema-v-new")
	if err := s.Put(KindRun, oldKey, []byte("stale bytes")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindRun, newKey); ok {
		t.Fatal("new schema key hit an old entry")
	}
	// Rename the stale entry onto the new address: the header still names
	// the old key, so validation must fail it.
	if err := os.MkdirAll(filepath.Dir(s.path(KindRun, newKey)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path(KindRun, oldKey), s.path(KindRun, newKey)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindRun, newKey); ok {
		t.Fatal("entry with mismatched embedded key read as a hit")
	}
	if m := s.Metrics(); m.CorruptMisses != 1 {
		t.Errorf("key mismatch not classified as corrupt: %+v", m)
	}
}

// TestAtomicWriteLeavesNoTemps checks the temp-then-rename discipline: after
// any number of writes the directory holds only final entries.
func TestAtomicWriteLeavesNoTemps(t *testing.T) {
	s := open(t)
	for i := 0; i < 8; i++ {
		key := KeyOf("blob", fmt.Sprint(i))
		if err := s.Put("blob", key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("temp file left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSharedStore drives many goroutines through one store with
// overlapping keys — the cross-process sharing contract scaled down to one
// process, where the race detector can see it.
func TestConcurrentSharedStore(t *testing.T) {
	s := open(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := KeyOf("blob", fmt.Sprint(i%5))
				want := []byte(fmt.Sprintf("payload-%d", i%5))
				if got, ok := s.Get("blob", key); ok && !bytes.Equal(got, want) {
					t.Errorf("goroutine %d read wrong payload %q", g, got)
				}
				if err := s.Put("blob", key, want); err != nil {
					t.Errorf("goroutine %d put: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestResultRoundTrip(t *testing.T) {
	s := open(t)
	res, err := sim.RunSolo(sim.Default(sim.PFBFetch), "mcf",
		sim.RunOpts{WarmupInsts: 2_000, MeasureInsts: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	fp := "test|fingerprint"
	if _, ok := s.GetResult(fp); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.PutResult(fp, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetResult(fp)
	if !ok {
		t.Fatal("stored result not found")
	}
	// Everything a table can read must round-trip exactly. (The full
	// struct is not DeepEqual: unexported scheduling state in the DRAM
	// model is deliberately not serialized.)
	if !reflect.DeepEqual(got.IPC, res.IPC) ||
		!reflect.DeepEqual(got.Core, res.Core) ||
		!reflect.DeepEqual(got.L1D, res.L1D) ||
		got.LLC != res.LLC ||
		got.Cycles != res.Cycles ||
		!reflect.DeepEqual(got.Lifecycle, res.Lifecycle) ||
		!reflect.DeepEqual(got.Metrics, res.Metrics) {
		t.Error("result round trip altered observable fields")
	}
	if got.DRAM.DemandFills != res.DRAM.DemandFills ||
		got.DRAM.Writebacks != res.DRAM.Writebacks ||
		got.DRAM.StallCycles != res.DRAM.StallCycles {
		t.Error("DRAM counters altered by round trip")
	}
}

func TestTypeHash(t *testing.T) {
	type a struct{ X, Y uint64 }
	type b struct{ X, Z uint64 }
	type c struct{ X uint32 }
	ha, hb, hc := TypeHash(reflect.TypeOf(a{})), TypeHash(reflect.TypeOf(b{})), TypeHash(reflect.TypeOf(c{}))
	if ha == hb || ha == hc || hb == hc {
		t.Error("distinct layouts share a schema hash")
	}
	if ha != TypeHash(reflect.TypeOf(a{})) {
		t.Error("schema hash unstable")
	}
	if ResultSchemaHash() == "" {
		t.Error("empty result schema hash")
	}
}

func TestRegisterObs(t *testing.T) {
	s := open(t)
	key := KeyOf("blob", "x")
	s.Get("blob", key)
	s.Put("blob", key, []byte("abc"))
	s.Get("blob", key)

	reg := obs.NewRegistry()
	s.RegisterObs(reg, "store.")
	snap := reg.Snapshot()
	check := func(name string, want uint64) {
		t.Helper()
		if v, ok := snap.Get(name); !ok || v != want {
			t.Errorf("%s = %d (ok=%v), want %d", name, v, ok, want)
		}
	}
	check("store.hits", 1)
	check("store.misses", 1)
	check("store.writes", 1)
	check("store.bytes_read", 3)
	check("store.bytes_written", 3)
}
