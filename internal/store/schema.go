package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// TypeHash derives a stable hash of a Go type's structure: field names,
// field order and (recursively) field types. It is the schema salt for
// stored artifacts — any layout change to sim.Result or the checkpoint
// image struct changes the hash, which changes every affected key, which
// makes every existing on-disk entry an automatic miss. No migration code,
// no version constant to forget to bump.
//
// The description is purely structural (it ignores package paths of the
// named types but keeps their names), so moving a type between packages
// without changing its shape does not invalidate the cache, while renaming
// or re-typing a field does.
func TypeHash(t reflect.Type) string {
	var sb strings.Builder
	describeType(&sb, t, map[reflect.Type]bool{})
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:8])
}

func describeType(sb *strings.Builder, t reflect.Type, seen map[reflect.Type]bool) {
	switch t.Kind() {
	case reflect.Pointer:
		sb.WriteString("*")
		describeType(sb, t.Elem(), seen)
	case reflect.Slice:
		sb.WriteString("[]")
		describeType(sb, t.Elem(), seen)
	case reflect.Array:
		fmt.Fprintf(sb, "[%d]", t.Len())
		describeType(sb, t.Elem(), seen)
	case reflect.Map:
		sb.WriteString("map[")
		describeType(sb, t.Key(), seen)
		sb.WriteString("]")
		describeType(sb, t.Elem(), seen)
	case reflect.Struct:
		name := t.Name()
		fmt.Fprintf(sb, "struct %s", name)
		if seen[t] {
			return // recursive type: the name alone breaks the cycle
		}
		seen[t] = true
		sb.WriteString("{")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				// Unexported fields do not survive serialization (gob
				// encodes exported state only), so they are not schema.
				continue
			}
			sb.WriteString(f.Name)
			sb.WriteString(" ")
			describeType(sb, f.Type, seen)
			sb.WriteString(";")
		}
		sb.WriteString("}")
	default:
		sb.WriteString(t.Kind().String())
	}
}

// sortedKeys returns a map's string keys in order — the deterministic
// iteration idiom the determinism analyzer expects of this package.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
