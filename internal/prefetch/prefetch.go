// Package prefetch defines the prefetcher interface the simulated cores
// drive, a bounded prefetch queue shared by all implementations, and the two
// classic light-weight prefetchers the paper compares against: Next-N lines
// (Smith, 1978) and the stride/reference-prediction-table prefetcher
// (Chen & Baer, 1995), configured at degree 8 as in §V-A.
package prefetch

import (
	"repro/internal/isa"
	"repro/internal/obs"
)

// DecodeInfo describes a control instruction leaving the decode stage; this
// is the feed into B-Fetch's Decoded Branch Register. The front end annotates
// it with its prediction metadata so a lookahead engine can pick up control
// flow exactly where fetch left it.
type DecodeInfo struct {
	PC        uint64 // byte address of the control instruction
	Op        isa.Op
	Target    uint64 // static target (direct branches/jumps), else 0
	PredTaken bool   // fetch-time predicted direction
	PredNext  uint64 // fetch-time predicted next PC
	GHR       uint64 // global history the fetch prediction was made with
}

// CommitInfo describes one instruction retiring in program order. Regs
// points at the committed architectural register file after the
// instruction's effects; it is owned by the core and only valid during the
// call.
type CommitInfo struct {
	PC       uint64
	Inst     isa.Inst
	EA       uint64 // memory ops: effective address
	Taken    bool   // control ops: resolved direction
	Next     uint64 // byte address of the next retired instruction
	TargetPC uint64 // direct control ops: static taken-target byte address
	Regs     *[isa.NumRegs]int64
}

// AccessInfo describes a demand access issued to the L1D.
type AccessInfo struct {
	PC    uint64
	Addr  uint64
	Write bool
	Hit   bool
}

// Request is one prefetch the engine wants issued to the L1D. LoadPC
// attributes the request to the load it anticipates, for per-load filtering
// and feedback.
type Request struct {
	Addr   uint64
	LoadPC uint64
}

// Prefetcher is the contract between a core and its prefetch engine. A
// miss-driven prefetcher typically only uses OnAccess; B-Fetch uses the
// decode and commit streams and a per-cycle AppendTick for its lookahead
// pipeline.
type Prefetcher interface {
	Name() string

	// OnDecode observes decoded control instructions.
	OnDecode(DecodeInfo)
	// OnCommit observes the in-order retirement stream.
	OnCommit(CommitInfo)
	// OnAccess observes demand L1D accesses.
	OnAccess(AccessInfo)

	// PrefetchUseful and PrefetchUseless deliver cache feedback about
	// blocks this prefetcher filled.
	PrefetchUseful(loadPC, blockAddr uint64)
	PrefetchUseless(loadPC, blockAddr uint64)

	// AppendTick advances one cycle, appends the requests to issue this
	// cycle to dst, and returns the extended slice. The caller owns dst and
	// reuses it across cycles, so implementations must not retain it; the
	// append-style contract keeps the per-cycle path allocation-free.
	AppendTick(dst []Request, now uint64) []Request

	// Idle reports whether the engine is quiescent: AppendTick would do no
	// work and emit no requests this cycle or any future cycle until one of
	// the On* hooks delivers new input. The simulation loop uses it to skip
	// dead cycles, so a correct implementation must return false whenever
	// any internal pipeline stage, sampling latch, or queue holds work.
	// When in doubt return false — that only disables the optimization.
	Idle() bool

	// ResetStats zeroes measurement counters (after warmup) without
	// touching learned state.
	ResetStats()

	// StorageBits reports the hardware state the prefetcher would occupy.
	StorageBits() int
}

// Base provides no-op hook implementations for embedding. Its Idle reports
// false — the conservative answer that keeps cycle skipping correct for
// custom engines that buffer work; implementations with visible quiescence
// should override it.
type Base struct{}

//bfetch:hotpath
func (Base) OnDecode(DecodeInfo) {}

//bfetch:hotpath
func (Base) OnCommit(CommitInfo) {}

//bfetch:hotpath
func (Base) OnAccess(AccessInfo) {}

func (Base) PrefetchUseful(uint64, uint64)  {}
func (Base) PrefetchUseless(uint64, uint64) {}

//bfetch:hotpath
func (Base) AppendTick(dst []Request, _ uint64) []Request { return dst }

//bfetch:hotpath
func (Base) Idle() bool       { return false }
func (Base) ResetStats()      {}
func (Base) StorageBits() int { return 0 }

// None is the null prefetcher (the paper's baseline). It is always idle.
type None struct{ Base }

func (None) Name() string { return "none" }

//bfetch:hotpath
func (None) Idle() bool { return true }

// Queue is the bounded prefetch request queue every engine drains through.
// It deduplicates by block address against its own contents and issues a
// fixed number of requests per cycle. Table I sizes B-Fetch's queue at 100
// entries.
type Queue struct {
	buf      []Request       //bfetch:noreset pending requests survive a stats reset
	capacity int             //bfetch:noreset configuration
	perCycle int             //bfetch:noreset configuration
	inQ      map[uint64]bool //bfetch:noreset tracks pending requests, which survive

	Enqueued    uint64
	DroppedFull uint64
	DroppedDup  uint64
}

// NewQueue returns a queue with the given capacity and per-cycle issue
// limit.
func NewQueue(capacity, perCycle int) *Queue {
	return &Queue{
		capacity: capacity,
		perCycle: perCycle,
		inQ:      make(map[uint64]bool, capacity),
	}
}

// Push enqueues a request, dropping it if the queue is full or a request for
// the same block is already pending.
func (q *Queue) Push(r Request) {
	ba := r.Addr >> 6
	if q.inQ[ba] {
		q.DroppedDup++
		return
	}
	if len(q.buf) >= q.capacity {
		q.DroppedFull++
		return
	}
	q.buf = append(q.buf, r)
	q.inQ[ba] = true
	q.Enqueued++
}

// AppendPop removes up to the per-cycle issue limit, appending the popped
// requests to dst and returning the extended slice. It never allocates once
// dst has capacity for the per-cycle limit.
//
//bfetch:hotpath
func (q *Queue) AppendPop(dst []Request) []Request {
	n := q.perCycle
	if n > len(q.buf) {
		n = len(q.buf)
	}
	for _, r := range q.buf[:n] {
		delete(q.inQ, r.Addr>>6)
		dst = append(dst, r)
	}
	q.buf = q.buf[:copy(q.buf, q.buf[n:])]
	return dst
}

// PopCycle removes and returns up to the per-cycle issue limit. Allocating
// convenience over AppendPop (tests and diagnostics); hot paths use
// AppendPop with a reused buffer.
func (q *Queue) PopCycle() []Request { return q.AppendPop(nil) }

// ResetStats zeroes the queue's traffic counters without touching pending
// requests.
func (q *Queue) ResetStats() { q.Enqueued, q.DroppedFull, q.DroppedDup = 0, 0, 0 }

// RegisterObs exports the queue's traffic counters into the metrics
// registry under prefix; every engine's RegisterObs delegates here, so the
// queue counters carry the same names for all of them.
func (q *Queue) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Func(prefix+"q_enqueued", func() uint64 { return q.Enqueued })
	reg.Func(prefix+"q_dropped_full", func() uint64 { return q.DroppedFull })
	reg.Func(prefix+"q_dropped_dup", func() uint64 { return q.DroppedDup })
}

// Len returns the number of pending requests.
func (q *Queue) Len() int { return len(q.buf) }

// StorageBits sizes the queue as hardware: one block-granular physical
// address (42 bits at 48-bit physical) per entry, which is how Table I's
// "Prefetch Queue: 100 entries, 0.51 KB" is reached.
func (q *Queue) StorageBits() int { return q.capacity * 42 }
