package prefetch

import "repro/internal/obs"

// Stride is the reference-prediction-table prefetcher of Chen & Baer,
// "Effective Hardware-Based Data Prefetching for High-Performance
// Processors" (IEEE ToC 1995): per-load-PC entries track the last address
// and observed stride through a two-bit state machine; once a stride is
// confirmed, the next Degree strided blocks are prefetched. The paper's
// evaluation found degree 8 best (§V-A) and uses that as the default.
type Stride struct {
	Base
	entries []strideEntry //bfetch:noreset learned reference-prediction table
	mask    uint64        //bfetch:noreset configuration
	degree  int           //bfetch:noreset configuration
	queue   *Queue
}

type strideState uint8

const (
	strideInitial strideState = iota
	strideTransient
	strideSteady
	strideNoPred
)

type strideEntry struct {
	valid    bool
	tag      uint64
	lastAddr uint64
	stride   int64
	state    strideState
}

// StrideConfig sizes the prefetcher.
type StrideConfig struct {
	Entries int // reference prediction table entries (power of two)
	Degree  int // strided blocks prefetched once steady
}

// DefaultStrideConfig matches the paper's configuration.
func DefaultStrideConfig() StrideConfig { return StrideConfig{Entries: 256, Degree: 8} }

// NewStride builds the prefetcher.
func NewStride(cfg StrideConfig) *Stride {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("prefetch: stride entries must be a power of two")
	}
	return &Stride{
		entries: make([]strideEntry, cfg.Entries),
		mask:    uint64(cfg.Entries - 1),
		degree:  cfg.Degree,
		queue:   NewQueue(100, 2),
	}
}

func (s *Stride) Name() string { return "stride" }

// OnAccess trains the table on every demand load and queues prefetches when
// a stride is confirmed.
//
//bfetch:hotpath
func (s *Stride) OnAccess(a AccessInfo) {
	if a.Write {
		return
	}
	idx := (a.PC >> 2) & s.mask
	e := &s.entries[idx]
	if !e.valid || e.tag != a.PC {
		*e = strideEntry{valid: true, tag: a.PC, lastAddr: a.Addr, state: strideInitial}
		return
	}
	stride := int64(a.Addr) - int64(e.lastAddr)
	correct := stride == e.stride && stride != 0
	switch e.state {
	case strideInitial:
		if correct {
			e.state = strideSteady
		} else {
			e.stride = stride
			e.state = strideTransient
		}
	case strideTransient:
		if correct {
			e.state = strideSteady
		} else {
			e.stride = stride
			e.state = strideNoPred
		}
	case strideSteady:
		if !correct {
			e.state = strideInitial
		}
	case strideNoPred:
		if correct {
			e.state = strideTransient
		} else {
			e.stride = stride
		}
	}
	e.lastAddr = a.Addr
	if e.state == strideSteady {
		for i := 1; i <= s.degree; i++ {
			addr := uint64(int64(a.Addr) + int64(i)*e.stride)
			s.queue.Push(Request{Addr: addr, LoadPC: a.PC})
		}
	}
}

// AppendTick drains the queue.
//
//bfetch:hotpath
func (s *Stride) AppendTick(dst []Request, now uint64) []Request { return s.queue.AppendPop(dst) }

// Idle reports whether the queue is drained.
//
//bfetch:hotpath
func (s *Stride) Idle() bool { return s.queue.Len() == 0 }

// ResetStats zeroes the queue counters.
func (s *Stride) ResetStats() { s.queue.ResetStats() }

// RegisterObs exports the engine's counters into the metrics registry.
func (s *Stride) RegisterObs(reg *obs.Registry, prefix string) {
	s.queue.RegisterObs(reg, prefix)
}

// StorageBits: each entry holds a tag (32 bits of PC), last address
// (42-bit block-aligned + offset ⇒ 48), stride (16) and 2-bit state.
func (s *Stride) StorageBits() int {
	return len(s.entries)*(32+48+16+2) + s.queue.StorageBits()
}

// NextN prefetches the N sequentially following blocks on every demand miss
// (Smith, 1978). It is not part of the paper's headline comparison but is
// the canonical lower bound on light-weight prefetching and is exercised by
// the examples and ablations.
type NextN struct {
	Base
	n     int //bfetch:noreset configuration
	queue *Queue
}

// NewNextN builds a next-N-lines prefetcher.
func NewNextN(n int) *NextN {
	return &NextN{n: n, queue: NewQueue(100, 2)}
}

func (p *NextN) Name() string { return "next-n" }

//bfetch:hotpath
func (p *NextN) OnAccess(a AccessInfo) {
	if a.Hit || a.Write {
		return
	}
	base := a.Addr &^ uint64(63)
	for i := 1; i <= p.n; i++ {
		p.queue.Push(Request{Addr: base + uint64(i*64), LoadPC: a.PC})
	}
}

//bfetch:hotpath
func (p *NextN) AppendTick(dst []Request, now uint64) []Request { return p.queue.AppendPop(dst) }

// Idle reports whether the queue is drained.
//
//bfetch:hotpath
func (p *NextN) Idle() bool { return p.queue.Len() == 0 }

// ResetStats zeroes the queue counters.
func (p *NextN) ResetStats() { p.queue.ResetStats() }

// RegisterObs exports the engine's counters into the metrics registry.
func (p *NextN) RegisterObs(reg *obs.Registry, prefix string) {
	p.queue.RegisterObs(reg, prefix)
}

func (p *NextN) StorageBits() int { return p.queue.StorageBits() }
