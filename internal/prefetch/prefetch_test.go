package prefetch

import (
	"testing"
	"testing/quick"
)

func drain(p Prefetcher, cycles int) []Request {
	var all []Request
	for i := 0; i < cycles; i++ {
		all = p.AppendTick(all, uint64(i))
	}
	return all
}

func TestQueueDedupAndCapacity(t *testing.T) {
	q := NewQueue(4, 2)
	q.Push(Request{Addr: 0x1000})
	q.Push(Request{Addr: 0x1008}) // same block → dup
	q.Push(Request{Addr: 0x1040})
	q.Push(Request{Addr: 0x1080})
	q.Push(Request{Addr: 0x10C0})
	q.Push(Request{Addr: 0x1100}) // full → dropped
	if q.Len() != 4 {
		t.Errorf("len = %d, want 4", q.Len())
	}
	if q.DroppedDup != 1 || q.DroppedFull != 1 {
		t.Errorf("dup=%d full=%d", q.DroppedDup, q.DroppedFull)
	}
}

func TestQueuePerCycleLimit(t *testing.T) {
	q := NewQueue(10, 2)
	for i := 0; i < 5; i++ {
		q.Push(Request{Addr: uint64(i * 64)})
	}
	if got := len(q.PopCycle()); got != 2 {
		t.Errorf("first pop = %d", got)
	}
	if got := len(q.PopCycle()); got != 2 {
		t.Errorf("second pop = %d", got)
	}
	if got := len(q.PopCycle()); got != 1 {
		t.Errorf("third pop = %d", got)
	}
	if q.PopCycle() != nil {
		t.Error("empty queue returned requests")
	}
}

func TestQueueDedupClearsAfterPop(t *testing.T) {
	q := NewQueue(4, 4)
	q.Push(Request{Addr: 0x40})
	q.PopCycle()
	q.Push(Request{Addr: 0x40})
	if q.Len() != 1 {
		t.Error("block re-pushed after pop was treated as duplicate")
	}
}

func TestStrideDetectsStream(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	pc := uint64(0x1000)
	// Three accesses with stride 64 confirm the pattern; subsequent
	// accesses emit degree-8 prefetches.
	for i := 0; i < 6; i++ {
		s.OnAccess(AccessInfo{PC: pc, Addr: uint64(0x10000 + i*64)})
	}
	reqs := drain(s, 64)
	if len(reqs) == 0 {
		t.Fatal("no prefetches for a perfect stride")
	}
	// Requests are emitted as the stream trains, so early ones may trail the
	// final head; each must be stride-aligned, ahead of the stream start,
	// and the engine must reach degree-8 past the final access.
	var maxAddr uint64
	for _, r := range reqs {
		if r.Addr <= 0x10000 {
			t.Errorf("prefetch %#x behind stream start", r.Addr)
		}
		if (r.Addr-0x10000)%64 != 0 {
			t.Errorf("prefetch %#x off-stride", r.Addr)
		}
		if r.LoadPC != pc {
			t.Errorf("request attributed to %#x", r.LoadPC)
		}
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	}
	if want := uint64(0x10000 + (5+8)*64); maxAddr != want {
		t.Errorf("furthest prefetch = %#x, want %#x (degree 8 past head)", maxAddr, want)
	}
}

func TestStrideNegativeStride(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	pc := uint64(0x2000)
	base := uint64(0x40000)
	for i := 0; i < 6; i++ {
		s.OnAccess(AccessInfo{PC: pc, Addr: base - uint64(i*128)})
	}
	reqs := drain(s, 64)
	if len(reqs) == 0 {
		t.Fatal("no prefetches for negative stride")
	}
	var minAddr uint64 = 1 << 62
	for _, r := range reqs {
		if r.Addr >= base {
			t.Errorf("prefetch %#x not below stream start %#x", r.Addr, base)
		}
		if r.Addr < minAddr {
			minAddr = r.Addr
		}
	}
	if want := base - (5+8)*128; minAddr != want {
		t.Errorf("deepest prefetch = %#x, want %#x", minAddr, want)
	}
}

func TestStrideIgnoresIrregular(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	pc := uint64(0x3000)
	addrs := []uint64{0x1000, 0x9040, 0x2300, 0x7780, 0x100, 0x5000}
	for _, a := range addrs {
		s.OnAccess(AccessInfo{PC: pc, Addr: a})
	}
	if reqs := drain(s, 64); len(reqs) != 0 {
		t.Errorf("irregular pattern produced %d prefetches", len(reqs))
	}
}

func TestStrideIgnoresStores(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	for i := 0; i < 6; i++ {
		s.OnAccess(AccessInfo{PC: 0x4000, Addr: uint64(i * 64), Write: true})
	}
	if reqs := drain(s, 64); len(reqs) != 0 {
		t.Error("stores trained the stride table")
	}
}

func TestStrideZeroStrideNoPrefetch(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	for i := 0; i < 6; i++ {
		s.OnAccess(AccessInfo{PC: 0x5000, Addr: 0x8000})
	}
	if reqs := drain(s, 64); len(reqs) != 0 {
		t.Error("zero stride produced prefetches")
	}
}

func TestNextN(t *testing.T) {
	p := NewNextN(4)
	p.OnAccess(AccessInfo{PC: 0x100, Addr: 0x1008, Hit: false})
	reqs := drain(p, 8)
	if len(reqs) != 4 {
		t.Fatalf("got %d requests, want 4", len(reqs))
	}
	for i, r := range reqs {
		want := uint64(0x1000 + (i+1)*64)
		if r.Addr != want {
			t.Errorf("req %d = %#x, want %#x", i, r.Addr, want)
		}
	}
	// Hits produce nothing.
	p.OnAccess(AccessInfo{PC: 0x100, Addr: 0x2000, Hit: true})
	if reqs := drain(p, 8); len(reqs) != 0 {
		t.Error("hit produced prefetches")
	}
}

func TestNoneIsSilent(t *testing.T) {
	var p None
	p.OnAccess(AccessInfo{Addr: 1})
	p.OnDecode(DecodeInfo{})
	p.OnCommit(CommitInfo{})
	if p.AppendTick(nil, 0) != nil || p.StorageBits() != 0 || p.Name() != "none" {
		t.Error("None is not a no-op")
	}
	if !p.Idle() {
		t.Error("None should always be idle")
	}
}

// Property: the queue never exceeds capacity and never holds two requests
// for the same block.
func TestQuickQueueInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		q := NewQueue(8, 3)
		for _, op := range ops {
			if op%5 == 0 {
				q.PopCycle()
				continue
			}
			q.Push(Request{Addr: uint64(op) * 8})
			if q.Len() > 8 {
				return false
			}
			seen := map[uint64]bool{}
			for _, r := range q.buf {
				ba := r.Addr >> 6
				if seen[ba] {
					return false
				}
				seen[ba] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
