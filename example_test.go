package bfetch_test

import (
	"fmt"
	"log"

	bfetch "repro"
)

// Measure one of the built-in SPEC-stand-in workloads on the paper's
// Table II baseline, with and without B-Fetch.
func Example() {
	opts := bfetch.RunOpts{WarmupInsts: 20_000, MeasureInsts: 50_000}

	base, err := bfetch.RunSolo(bfetch.DefaultConfig(bfetch.PFNone), "libquantum", opts)
	if err != nil {
		log.Fatal(err)
	}
	bf, err := bfetch.RunSolo(bfetch.DefaultConfig(bfetch.PFBFetch), "libquantum", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("B-Fetch speeds up libquantum:", bf.IPC[0] > base.IPC[0])
	// Output:
	// B-Fetch speeds up libquantum: true
}

// Build a custom kernel with the assembler and wrap it as a workload.
func ExampleAssemble() {
	prog, err := bfetch.Assemble(`
		movi r16, 0x8000
		movi r10, 100
	loop:
		ld   r1, 0(r16)
		addi r16, r16, 64
		addi r10, r10, -1
		bnez r10, loop
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instructions:", prog.Len())
	// Output:
	// instructions: 7
}

// List the reproduced paper artifacts.
func ExampleExperiments() {
	for _, e := range bfetch.Experiments()[:3] {
		fmt.Println(e.ID)
	}
	// Output:
	// fig3
	// fig7
	// tab1
}

// Inspect the built-in workload suite.
func ExampleWorkloads() {
	n := 0
	for _, w := range bfetch.Workloads() {
		if w.MemoryIntensive {
			n++
		}
	}
	fmt.Printf("%d workloads, %d memory-intensive\n", len(bfetch.Workloads()), n)
	// Output:
	// 18 workloads, 13 memory-intensive
}
